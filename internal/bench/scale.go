package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/netgen"
	"repro/internal/synth"
	"repro/internal/verify"
)

// ScaleEntry is one workload's measurement of the whole-network
// streaming report pipeline, in the machine-readable shape committed
// as BENCH_scale.json.
type ScaleEntry struct {
	Workload string `json:"workload"`
	Routers  int    `json:"routers"`
	Links    int    `json:"links"`
	// Sections counts the router sections the report streamed — every
	// configured router (netgen.Populate makes that every internal
	// router, so whole-network reports actually cover the network).
	Sections int `json:"sections"`
	// Constraints and TruncatedPaths describe the shared whole-network
	// encoding (MaxPathLen bounds candidate paths, so constraints
	// plateau once the topology outgrows the reachable radius).
	Constraints    int `json:"constraints"`
	TruncatedPaths int `json:"truncated_paths"`
	// MaxPathLen is the candidate-path bound the workload ran with
	// (fat-trees use a shorter bound: the dense core makes longer
	// paths combinatorially explosive and one up-down traversal
	// already reaches the provider-attached core switches).
	MaxPathLen int     `json:"max_path_len"`
	SynthMS    float64 `json:"synth_ms"`
	// ReportMS is the wall time of streaming the full report through
	// Explainer.WriteReport; StreamedBytes is what reached the writer.
	ReportMS      float64 `json:"report_ms"`
	StreamedBytes int64   `json:"streamed_bytes"`
	// PeakHeapBytes is the largest runtime.MemStats.HeapAlloc sampled
	// while the report streamed (absolute process heap, not a delta).
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
	// ScopedEncodes counts per-router encodes served by the cone-scoped
	// splice path; GroupsCopied/GroupsEncoded split the selection groups
	// it copied verbatim from the recorded whole-network encoding
	// versus re-derived inside the dirty router's cone. Copied >>
	// encoded is the point: per-router encode work tracks cone size,
	// not network size.
	ScopedEncodes       int `json:"scoped_encodes"`
	ScopedGroupsCopied  int `json:"scoped_groups_copied"`
	ScopedGroupsEncoded int `json:"scoped_groups_encoded"`
	Encodes             int `json:"encodes"`
	ReusedCandidates    int `json:"reused_candidates"`
	// ColdReportMS is the same report produced with scoped encoding
	// disabled (every router re-encoded against the whole network);
	// ColdIdentical records byte-identity of the two streams. Only the
	// designated comparison workloads pay for the cold arm (-1 / true
	// elsewhere means "not run").
	ColdReportMS  float64 `json:"cold_report_ms"`
	ColdIdentical bool    `json:"cold_identical"`
	// Verified is verify.Satisfies on the synthesized deployment. Large
	// topologies report false: the encoder's bounded-path approximation
	// (MaxPathLen) cannot forbid transit along paths longer than the
	// bound, which the concrete network still has. That is a property
	// of the synthesis encoding the explainer faithfully inherits, not
	// an explanation defect — explanations are relative to the same
	// bounded encoding the synthesizer used.
	Verified bool `json:"verified"`
}

// ScaleReport is the payload written by netbench -scalejson.
type ScaleReport struct {
	Name string `json:"name"`
	// GoMaxProcs records the parallelism the run actually had. The
	// committed baseline comes from a 1-CPU container: report wall
	// times there measure the work, not the speedup of the streaming
	// worker pool, and are pessimistic for any real multi-core host.
	GoMaxProcs int    `json:"gomaxprocs"`
	Caveats    string `json:"caveats"`
	Entries    []ScaleEntry `json:"entries"`
}

const scaleCaveats = "Wall times from a single run (no repetition); on GOMAXPROCS=1 the streaming worker pool adds no parallel speedup, so report_ms is an upper bound for multi-core hosts. peak_heap_bytes is sampled HeapAlloc (20ms period), an absolute process figure that includes the interner and all prior workloads' survivors. verified=false at large sizes reflects the MaxPathLen-bounded encoding, not an explanation bug."

// scaleCase is one workload recipe of the scaling sweep.
type scaleCase struct {
	build      func() (*netgen.Workload, error)
	maxPathLen int
	// coldArm re-runs the report with scoped encoding disabled and
	// checks byte-identity — paid on one mid-size workload per shape,
	// not the largest (the cold path re-encodes the whole network per
	// router, which is exactly the cost being avoided).
	coldArm bool
}

func scaleCases(quick bool) []scaleCase {
	grid := func(w, h int) func() (*netgen.Workload, error) {
		return func() (*netgen.Workload, error) { return netgen.Grid(w, h, false) }
	}
	rand := func(n int) func() (*netgen.Workload, error) {
		return func() (*netgen.Workload, error) { return netgen.Random(n, 2.5, 42, false) }
	}
	fattree := func(k int) func() (*netgen.Workload, error) {
		return func() (*netgen.Workload, error) { return netgen.FatTree(k, false) }
	}
	if quick {
		return []scaleCase{
			{build: grid(4, 4), maxPathLen: 7, coldArm: true},
			{build: rand(20), maxPathLen: 7},
			{build: fattree(4), maxPathLen: 7},
		}
	}
	return []scaleCase{
		{build: grid(8, 8), maxPathLen: 7},
		{build: grid(20, 20), maxPathLen: 7, coldArm: true},
		{build: grid(40, 40), maxPathLen: 7},
		{build: fattree(8), maxPathLen: 4},
		{build: fattree(16), maxPathLen: 4},
		{build: rand(300), maxPathLen: 7},
		{build: rand(1100), maxPathLen: 7},
	}
}

// countingWriter counts bytes; an optional tee keeps them (cold-arm
// byte-identity needs the actual stream, discard runs do not).
type countingWriter struct {
	n   int64
	tee *strings.Builder
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	if w.tee != nil {
		w.tee.Write(p)
	}
	return len(p), nil
}

// heapWatcher samples runtime.MemStats.HeapAlloc on a fixed period and
// keeps the peak. Sampling (rather than a before/after delta) is what
// catches the transient high-water mark of a streaming run whose whole
// point is that memory is released as sections flush.
type heapWatcher struct {
	stop chan struct{}
	done chan struct{}
	peak uint64
}

func startHeapWatcher() *heapWatcher {
	w := &heapWatcher{stop: make(chan struct{}), done: make(chan struct{})}
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > w.peak {
			w.peak = ms.HeapAlloc
		}
	}
	sample()
	go func() {
		defer close(w.done)
		t := time.NewTicker(20 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-t.C:
				sample()
			}
		}
	}()
	return w
}

// Peak stops the watcher, takes a final sample, and returns the high-
// water mark.
func (w *heapWatcher) Peak() uint64 {
	close(w.stop)
	<-w.done
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > w.peak {
		w.peak = ms.HeapAlloc
	}
	return w.peak
}

// runScaleCase synthesizes one populated workload and streams its
// whole-network report, measuring wall time, streamed bytes, peak
// heap, and the scoped-encode statistics.
func runScaleCase(ctx context.Context, cs scaleCase) (ScaleEntry, error) {
	wl, err := cs.build()
	if err != nil {
		return ScaleEntry{}, err
	}
	netgen.Populate(wl)

	opts := synth.DefaultOptions()
	opts.MaxPathLen = cs.maxPathLen
	opts.MaxCandidatesPerNode = 8

	start := time.Now()
	res, err := synth.SynthesizeContext(ctx, wl.Net, wl.Sketch, wl.Requirements(), opts)
	if err != nil {
		return ScaleEntry{}, fmt.Errorf("%s: %w", wl.Name, err)
	}
	synthMS := float64(time.Since(start).Microseconds()) / 1000

	ok, err := verify.SatisfiesContext(ctx, wl.Net, res.Deployment, wl.Requirements())
	if err != nil {
		return ScaleEntry{}, fmt.Errorf("%s: %w", wl.Name, err)
	}

	copts := core.DefaultOptions()
	copts.Synth = opts
	copts.Lift = false

	newExplainer := func() (*core.Explainer, error) {
		ex, err := core.NewExplainer(wl.Net, wl.Requirements(), res.Deployment, copts)
		if err != nil {
			return nil, err
		}
		// Bound the session report cache so the tee stops buffering the
		// rendered report once it outgrows the cap: the experiment
		// measures streaming memory, not retained-report memory.
		ex.Session.SetCacheLimits(engine.CacheLimits{ReportBytes: 1 << 20})
		return ex, nil
	}

	ex, err := newExplainer()
	if err != nil {
		return ScaleEntry{}, err
	}
	cw := &countingWriter{}
	if cs.coldArm {
		cw.tee = &strings.Builder{}
	}
	hw := startHeapWatcher()
	start = time.Now()
	n, err := ex.WriteReport(ctx, cw)
	reportMS := float64(time.Since(start).Microseconds()) / 1000
	peak := hw.Peak()
	if err != nil {
		return ScaleEntry{}, fmt.Errorf("%s: %w", wl.Name, err)
	}
	st := ex.Stats()

	e := ScaleEntry{
		Workload:            wl.Name,
		Routers:             len(wl.Net.Internals()),
		Links:               wl.Net.NumLinks(),
		Sections:            len(res.Deployment),
		Constraints:         res.Encoding.Stats.ConstraintSize,
		TruncatedPaths:      res.Encoding.Stats.TruncatedPaths,
		MaxPathLen:          cs.maxPathLen,
		SynthMS:             synthMS,
		ReportMS:            reportMS,
		StreamedBytes:       n,
		PeakHeapBytes:       peak,
		ScopedEncodes:       st.ScopedEncodes,
		ScopedGroupsCopied:  st.ScopedGroupsCopied,
		ScopedGroupsEncoded: st.ScopedGroupsEncoded,
		Encodes:             st.Encodes,
		ReusedCandidates:    st.ReusedCandidates,
		ColdReportMS:        -1,
		ColdIdentical:       true,
		Verified:            ok,
	}

	if cs.coldArm {
		cold, err := newExplainer()
		if err != nil {
			return ScaleEntry{}, err
		}
		cold.Session.DisableScopedEncoding()
		ccw := &countingWriter{tee: &strings.Builder{}}
		start = time.Now()
		if _, err := cold.WriteReport(ctx, ccw); err != nil {
			return ScaleEntry{}, fmt.Errorf("%s (cold): %w", wl.Name, err)
		}
		e.ColdReportMS = float64(time.Since(start).Microseconds()) / 1000
		e.ColdIdentical = ccw.tee.String() == cw.tee.String()
		if cst := cold.Stats(); cst.ScopedEncodes != 0 {
			return ScaleEntry{}, fmt.Errorf("%s: cold arm performed %d scoped encodes", wl.Name, cst.ScopedEncodes)
		}
	}
	return e, nil
}

// Scale runs the scaling sweep: whole-network streaming reports over
// populated grid, fat-tree, and random topologies. quick trims the
// sweep to test-size workloads.
func Scale(ctx context.Context, quick bool) (*ScaleReport, error) {
	rep := &ScaleReport{
		Name:       "scale-streaming-report",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Caveats:    scaleCaveats,
	}
	for _, cs := range scaleCases(quick) {
		e, err := runScaleCase(ctx, cs)
		if err != nil {
			return nil, err
		}
		rep.Entries = append(rep.Entries, e)
	}
	return rep, nil
}

// WriteScaleJSON runs Scale and writes the report to path, indented
// for committing alongside benchmark baselines (BENCH_scale.json).
func WriteScaleJSON(ctx context.Context, path string, quick bool) error {
	rep, err := Scale(ctx, quick)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ScaleTable runs the scalability extension (the paper leaves this
// "untested") as a text table: populated grid, fat-tree, and random
// topologies with every router explained through one streaming
// whole-network report. quick trims the sweep for test runs.
func ScaleTable(ctx context.Context, quick bool) (*Table, error) {
	t := &Table{
		ID: "scale (extension Ext-1)",
		Caption: "Whole-network streaming reports on larger topologies (no-transit workload, netgen.Populate gives every router a config; MaxCandidatesPerNode=8, Lift off). " +
			"report-ms streams every router section through one session (Explainer.WriteReport); groups copied/encoded show the cone-scoped encode splicing the recorded whole-network encoding instead of re-deriving it. " +
			"cold-ms re-runs the comparison workloads with scoped encoding disabled; identical pins byte-identity of the two streams ('-' = cold arm not run). " +
			"verified=false at large sizes reflects the MaxPathLen-bounded encoding (paths longer than the bound escape the synthesizer's control), not an explanation bug. " +
			"The paper: 'scalability ... remains untested'.",
		Columns: []string{"workload", "routers", "links", "constraints", "synth-ms", "report-ms", "KB-streamed", "peak-heap-MB", "groups-copied", "groups-encoded", "cold-ms", "identical", "verified"},
	}
	rep, err := Scale(ctx, quick)
	if err != nil {
		return nil, err
	}
	for _, e := range rep.Entries {
		coldMS, identical := "-", "-"
		if e.ColdReportMS >= 0 {
			coldMS = fmt.Sprintf("%.0f", e.ColdReportMS)
			identical = fmt.Sprintf("%t", e.ColdIdentical)
		}
		t.AddRow(e.Workload, e.Routers, e.Links, e.Constraints,
			fmt.Sprintf("%.0f", e.SynthMS), fmt.Sprintf("%.0f", e.ReportMS),
			fmt.Sprintf("%.0f", float64(e.StreamedBytes)/1024),
			fmt.Sprintf("%.0f", float64(e.PeakHeapBytes)/(1<<20)),
			e.ScopedGroupsCopied, e.ScopedGroupsEncoded,
			coldMS, identical, e.Verified)
	}
	return t, nil
}
