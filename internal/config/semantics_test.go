package config

import (
	"testing"

	"repro/internal/bgp"
	"repro/internal/topology"
)

// Semantics corner cases that the synthesizer's symbolic model and the
// concrete interpreter must agree on.

func TestSetsOnDenyClauseDoNotFire(t *testing.T) {
	// A deny clause's set lines are dead (the paper's Scenario 1
	// redundant set next-hop); concretely, the route is dropped before
	// any set could matter — and a later clause must not see their
	// effects on other routes.
	c := New("R1")
	c.AddRouteMap(&RouteMap{Name: "m", Clauses: []*Clause{
		{
			Seq:     10,
			Action:  Deny,
			Matches: []*Match{{Kind: MatchCommunity, Community: bgp.MustCommunity("1:1")}},
			Sets:    []*Set{{Kind: SetLocalPref, LocalPref: 999}},
		},
		{Seq: 20, Action: Permit},
	}})
	// Route without the community: falls to clause 20, LP untouched.
	r := bgp.Originate("C", 600, topology.MustPrefix("123.0.1.0/20"))
	got := c.ApplyRouteMap("m", r)
	if got == nil || got.LocalPref != bgp.DefaultLocalPref {
		t.Fatalf("clause-10 sets leaked: %+v", got)
	}
	// Route with the community: denied outright.
	tagged := bgp.Originate("C", 600, topology.MustPrefix("123.0.1.0/20"))
	tagged.Communities[bgp.MustCommunity("1:1")] = true
	if c.ApplyRouteMap("m", tagged) != nil {
		t.Fatal("tagged route must be denied")
	}
}

func TestMultipleMatchesAreConjunctive(t *testing.T) {
	c := New("R1")
	c.AddRouteMap(&RouteMap{Name: "m", Clauses: []*Clause{
		{
			Seq:    10,
			Action: Permit,
			Matches: []*Match{
				{Kind: MatchCommunity, Community: bgp.MustCommunity("1:1")},
				{Kind: MatchNextHopIs, NextHop: "R2"},
			},
			Sets: []*Set{{Kind: SetLocalPref, LocalPref: 200}},
		},
		{Seq: 20, Action: Permit},
	}})
	oneOfTwo := bgp.Originate("C", 600, topology.MustPrefix("123.0.1.0/20"))
	oneOfTwo.Communities[bgp.MustCommunity("1:1")] = true
	oneOfTwo.NextHop = "R3" // community matches, next-hop does not
	got := c.ApplyRouteMap("m", oneOfTwo)
	if got.LocalPref != bgp.DefaultLocalPref {
		t.Fatal("partial match must not apply the clause")
	}
	both := bgp.Originate("C", 600, topology.MustPrefix("123.0.1.0/20"))
	both.Communities[bgp.MustCommunity("1:1")] = true
	both.NextHop = "R2"
	if got := c.ApplyRouteMap("m", both); got.LocalPref != 200 {
		t.Fatal("full match must apply the clause")
	}
}

func TestSetCommunityIsAdditive(t *testing.T) {
	c := New("R1")
	c.AddRouteMap(&RouteMap{Name: "m", Clauses: []*Clause{
		{Seq: 10, Action: Permit, Sets: []*Set{{Kind: SetCommunity, Community: bgp.MustCommunity("2:2")}}},
	}})
	r := bgp.Originate("C", 600, topology.MustPrefix("123.0.1.0/20"))
	r.Communities[bgp.MustCommunity("1:1")] = true
	got := c.ApplyRouteMap("m", r)
	if !got.HasCommunity(bgp.MustCommunity("1:1")) || !got.HasCommunity(bgp.MustCommunity("2:2")) {
		t.Fatalf("set community must add, not replace: %v", got)
	}
}

func TestEmptyMatchesClauseMatchesEverything(t *testing.T) {
	c := New("R1")
	c.AddRouteMap(&RouteMap{Name: "m", Clauses: []*Clause{
		{Seq: 10, Action: Deny},
		{Seq: 20, Action: Permit}, // unreachable
	}})
	r := bgp.Originate("C", 600, topology.MustPrefix("123.0.1.0/20"))
	if c.ApplyRouteMap("m", r) != nil {
		t.Fatal("match-all deny must drop everything")
	}
}

func TestDeploymentRoundTripThroughText(t *testing.T) {
	// A deployment printed and re-parsed behaves identically in the
	// simulation — the property config files depend on.
	net := topology.Paper()
	c := New("R1")
	c.AddPrefixList(&PrefixList{Name: "pl", Entries: []PrefixEntry{
		{Seq: 10, Action: Permit, Prefix: topology.MustPrefix("123.0.1.0/20")},
	}})
	c.AddRouteMap(&RouteMap{Name: "m", Clauses: []*Clause{
		{Seq: 10, Action: Permit, Matches: []*Match{{Kind: MatchPrefixList, PrefixList: "pl"}}},
		{Seq: 100, Action: Deny},
	}})
	c.AddNeighbor("P1", "", "m")

	reparsed, err := Parse(Print(c))
	if err != nil {
		t.Fatal(err)
	}
	dep1 := Deployment{"R1": c}
	dep2 := Deployment{"R1": reparsed}
	res1, err := bgp.Simulate(net, dep1)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := bgp.Simulate(net, dep2)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Dump() != res2.Dump() {
		t.Fatal("reparsed deployment behaves differently")
	}
}
