package sat

import "testing"

func TestConflictBudgetUnknown(t *testing.T) {
	// A hard unsat instance with a tiny conflict budget must come back
	// Unknown, not hang or mis-answer.
	s := NewSolver()
	pigeonhole(s, 8, 7)
	s.ConflictBudget = 20
	got := s.Solve()
	if got != Unknown {
		t.Fatalf("Solve with tiny budget = %v, want Unknown", got)
	}
	// Removing the budget lets it finish.
	s.ConflictBudget = 0
	if got := s.Solve(); got != Unsat {
		t.Fatalf("unbudgeted Solve = %v, want Unsat", got)
	}
}

func TestBudgetDoesNotAffectEasyInstances(t *testing.T) {
	s := NewSolver()
	v := newVars(s, 4)
	s.AddClause(PosLit(v[0]), PosLit(v[1]))
	s.AddClause(NegLit(v[2]), PosLit(v[3]))
	s.ConflictBudget = 1
	if got := s.Solve(); got != Sat {
		t.Fatalf("easy instance = %v, want Sat", got)
	}
}

func TestStatusStrings(t *testing.T) {
	cases := map[Status]string{Sat: "sat", Unsat: "unsat", Unknown: "unknown"}
	for st, want := range cases {
		if st.String() != want {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), want)
		}
	}
	if LTrue.String() != "true" || LFalse.String() != "false" || LUndef.String() != "undef" {
		t.Error("LBool strings wrong")
	}
	l := PosLit(3)
	if l.String() != "x3" || l.Neg().String() != "!x3" {
		t.Errorf("lit strings: %s %s", l, l.Neg())
	}
}

func TestReduceDBUnderPressure(t *testing.T) {
	// Enough conflicts to trigger learnt-clause reduction; the solver
	// must stay correct.
	s := NewSolver()
	pigeonhole(s, 8, 7)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("PHP(8,7) = %v, want Unsat", got)
	}
	if s.Stats.Learnt == 0 {
		t.Fatal("no clauses learnt on a hard instance")
	}
}
