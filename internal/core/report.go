package core

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/spec"
)

// Report renders a whole-deployment explanation document: for every
// configured router, the seed/simplified sizes and the lifted
// subspecification — the artifact a network operator would read after
// a synthesis run (the paper's "taming complexity" workflow applied to
// every device at once).
func (e *Explainer) Report() (string, error) {
	return e.ReportContext(context.Background())
}

// ReportContext is Report with cancellation and the budget's deadline
// applied: when the context is cancelled or the deadline passes, the
// in-flight explanations abort and the first error is returned once
// every worker has exited (no goroutines are leaked).
func (e *Explainer) ReportContext(ctx context.Context) (string, error) {
	var sb strings.Builder
	if _, err := e.WriteReport(ctx, &sb); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// WriteReport streams the whole-deployment report to w, returning the
// number of bytes written. The output is byte-identical to
// ReportContext; the difference is shape, not content: router sections
// are written in report order as a bounded worker pool completes them,
// so on wide deployments the first sections reach the reader while the
// last routers are still being explained, and the peak memory held for
// rendered-but-unwritten text is bounded by the session's stream
// window rather than the whole document.
//
// On error — a failed explanation, a failed write, or cancellation —
// the stream stops at a section boundary: w has received the header
// and a (possibly empty) prefix of whole router sections, never a
// partial section. Every worker has exited before WriteReport returns.
// The error is the lowest-indexed router's non-context failure when
// one exists (independent of worker scheduling), otherwise the
// context's own error.
func (e *Explainer) WriteReport(ctx context.Context, w io.Writer) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err // dead on arrival: fail before the first byte
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	ctx, cancelBudget := e.Opts.Budget.Apply(ctx)
	defer cancelBudget()
	return e.writeReportLocked(ctx, w)
}

// writeReportLocked is the streaming pipeline shared by WriteReport and
// the ReExplain sweep. Caller holds e.mu (shared or exclusive) and has
// applied the budget.
func (e *Explainer) writeReportLocked(ctx context.Context, w io.Writer) (int64, error) {
	routers := e.reportRouters()
	if e.Session != nil && len(routers) > 1 {
		// One whole-network encode with group spans recorded, so every
		// per-router encode below splices its out-of-cone constraints
		// instead of re-deriving the network. Failure degrades to plain
		// encodes, never changes bytes.
		e.Session.PrepareScoped(ctx)
	}

	tee := newReportTee(e)
	var n int64
	write := func(s string) error {
		m, err := io.WriteString(w, s)
		n += int64(m)
		if err != nil {
			return err
		}
		tee.add(s)
		return nil
	}

	if err := write(e.renderHeader()); err != nil {
		return n, err
	}
	if len(routers) == 0 {
		tee.commit(e)
		return n, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := runtime.GOMAXPROCS(0)
	if workers > len(routers) {
		workers = len(routers)
	}
	window := 0
	if e.Session != nil {
		window = e.Session.StreamWindow()
	}
	if window <= 0 {
		window = 4 * workers
	}
	if window < workers {
		window = workers
	}

	type done struct {
		i       int
		section string
		err     error
	}
	// tokens bounds the routers issued but not yet flushed (in flight
	// in a worker, or rendered and parked out of order). results has
	// the same capacity, so workers never block on delivery and always
	// drain after an error.
	tokens := make(chan struct{}, window)
	results := make(chan done, window)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				ex, err := e.explainAll(ctx, routers[i])
				d := done{i: i, err: err}
				if err == nil {
					d.section = renderSection(routers[i], ex)
				}
				results <- d
			}
		}()
	}
	go func() {
		defer close(jobs)
		for i := range routers {
			select {
			case tokens <- struct{}{}:
			case <-ctx.Done():
				return
			}
			select {
			case jobs <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	// Flush sections strictly in router order, parking out-of-order
	// completions. After any failure, keep draining (workers must not
	// be abandoned mid-send) but write nothing further: the stream ends
	// at the last section flushed before the failure surfaced.
	parked := make(map[int]string, window)
	next := 0
	failIdx := -1
	var failErr error
	fail := func(i int, err error) {
		// A context error is cancellation fallout, not the cause: note
		// it by cancelling, but keep the lowest-indexed slot open for a
		// real failure.
		if !isContextErr(err) && (failIdx == -1 || i < failIdx) {
			failIdx, failErr = i, err
		}
		cancel()
	}
	for d := range results {
		if d.err != nil {
			fail(d.i, d.err)
		} else {
			parked[d.i] = d.section
		}
		for {
			sec, ok := parked[next]
			if !ok {
				break
			}
			delete(parked, next)
			<-tokens
			next++
			if failIdx >= 0 || ctx.Err() != nil {
				continue // drained, not written
			}
			if err := write(sec); err != nil {
				fail(next-1, err)
			}
		}
	}
	if failIdx >= 0 {
		return n, fmt.Errorf("core: explaining %s: %w", routers[failIdx], failErr)
	}
	if err := ctx.Err(); err != nil {
		return n, err
	}
	if next != len(routers) {
		return n, fmt.Errorf("core: %s not explained", routers[next])
	}
	tee.commit(e)
	return n, nil
}

// isContextErr reports whether err is (or wraps) a context
// cancellation or deadline error.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// reportRouters returns the configured routers in report order.
func (e *Explainer) reportRouters() []string {
	routers := make([]string, 0, len(e.Deployment))
	for r := range e.Deployment {
		routers = append(routers, r)
	}
	sort.Strings(routers)
	return routers
}

// explainSweep explains every listed router across a fixed-size worker
// pool and returns the explanations in the same order. Routers are
// independent explanation problems: none of the shared inputs are
// mutated, and the session cache is safe for concurrent use. A pool
// sized by GOMAXPROCS keeps memory bounded on wide deployments, where
// one goroutine per router would hold every encoder and solver alive
// at once. The first failure cancels the remaining work; the error is
// reported for the lowest-indexed failing router, so it is independent
// of worker scheduling.
func (e *Explainer) explainSweep(ctx context.Context, routers []string) ([]*Explanation, error) {
	type outcome struct {
		ex  *Explanation
		err error
	}
	results := make([]outcome, len(routers))
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	workers := runtime.GOMAXPROCS(0)
	if workers > len(routers) {
		workers = len(routers)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				ex, err := e.explainAll(ctx, routers[i])
				results[i] = outcome{ex: ex, err: err}
				if err != nil {
					cancel()
				}
			}
		}()
	}
feed:
	for i := range routers {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	for i := range results {
		if results[i].ex == nil && results[i].err == nil {
			// Never fed to a worker: the context was cancelled first.
			if err := ctx.Err(); err != nil {
				results[i].err = err
			} else {
				results[i].err = fmt.Errorf("core: %s not explained", routers[i])
			}
		}
	}
	out := make([]*Explanation, len(routers))
	for i, router := range routers {
		if results[i].err != nil {
			return nil, fmt.Errorf("core: explaining %s: %w", router, results[i].err)
		}
		out[i] = results[i].ex
	}
	return out, nil
}

// renderHeader renders the report preamble (title and global intent).
func (e *Explainer) renderHeader() string {
	var sb strings.Builder
	sb.WriteString("EXPLANATION REPORT\n")
	sb.WriteString("==================\n\n")
	sb.WriteString("Global intent:\n")
	for _, r := range e.Reqs {
		fmt.Fprintf(&sb, "    %s\n", r)
	}
	sb.WriteString("\n")
	return sb.String()
}

// renderSection renders one router's report section. Pure formatting:
// every byte is determined by the explanation.
func renderSection(router string, ex *Explanation) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "--- %s ---\n", router)
	fmt.Fprintf(&sb, "seed: %d atoms over %d variables; simplified: %d atoms (%.0fx, %d passes)\n",
		ex.SeedSize, len(ex.HoleVars), ex.SimplifiedSize, ex.Reduction(), ex.Passes)
	if ex.Subspec == nil {
		sb.WriteString("(lifting disabled)\n\n")
		return sb.String()
	}
	if ex.Subspec.IsEmpty() {
		fmt.Fprintf(&sb, "%s { }   // unconstrained: %s can do anything for this intent\n\n", router, router)
		return sb.String()
	}
	sb.WriteString(spec.PrintBlock(ex.Subspec))
	if ex.SubspecComplete {
		sb.WriteString("(necessary and sufficient)\n")
	} else {
		sb.WriteString("(necessary; sufficiency not fully verified)\n")
	}
	sb.WriteString("\n")
	return sb.String()
}

// renderReport assembles the report document from the explanations
// (in router order). Pure formatting: every byte is determined by the
// requirements and the explanations.
func (e *Explainer) renderReport(routers []string, exs []*Explanation) string {
	var sb strings.Builder
	sb.WriteString(e.renderHeader())
	for i, router := range routers {
		sb.WriteString(renderSection(router, exs[i]))
	}
	return sb.String()
}

// reportTee accumulates the rendered report as it streams so a
// successful run can be retained for ReExplain's fast path without the
// explainer holding the document itself: the bytes go to the session's
// byte-capped report cache, the explainer keeps only a key and a
// content hash. Buffering stops (and retention is skipped) once the
// document outgrows the cache's cap, so streaming a huge report never
// holds it in memory.
type reportTee struct {
	buf *strings.Builder
	cap int64
	n   int64
}

func newReportTee(e *Explainer) *reportTee {
	t := &reportTee{}
	if e.Session == nil {
		return t
	}
	t.buf = &strings.Builder{}
	if max := e.Session.ReportCache().MaxBytes(); max > 0 {
		t.cap = max
	}
	return t
}

func (t *reportTee) add(s string) {
	t.n += int64(len(s))
	if t.buf == nil {
		return
	}
	if t.cap > 0 && t.n > t.cap {
		t.buf = nil // cannot fit the cache: stop holding the prefix
		return
	}
	t.buf.WriteString(s)
}

// commit stores the completed report and records its identity on the
// explainer; called only on success. A report that outgrew the cache
// clears the retained identity instead (the fast path will re-sweep).
func (t *reportTee) commit(e *Explainer) {
	e.reportMu.Lock()
	defer e.reportMu.Unlock()
	if t.buf == nil || e.Session == nil {
		e.lastReportKey = ""
		return
	}
	out := t.buf.String()
	e.Session.ReportCache().Put(reportCacheKey, out, int64(len(out)))
	e.lastReportKey = reportCacheKey
	e.lastReportSum = sha256.Sum256([]byte(out))
	e.lastReportLen = int64(len(out))
}

// reportCacheKey is the session report-cache key holding the latest
// rendered whole-deployment report. The cache is shared along a
// session's successor chain only, so one slot suffices: a successor's
// report displaces its predecessor's, which is exactly the retention
// the fast path wants. The "report|" namespace cannot collide with the
// per-router lift keys ("lift|...").
const reportCacheKey = "report|latest"

// storeLastReport retains a fully rendered report for the fast path
// (used by the ReExplain sweep, which renders from explanations rather
// than streaming).
func (e *Explainer) storeLastReport(out string) {
	e.reportMu.Lock()
	defer e.reportMu.Unlock()
	if e.Session == nil {
		e.lastReportKey = ""
		return
	}
	e.Session.ReportCache().Put(reportCacheKey, out, int64(len(out)))
	e.lastReportKey = reportCacheKey
	e.lastReportSum = sha256.Sum256([]byte(out))
	e.lastReportLen = int64(len(out))
}

// loadLastReport returns the retained report, or "" when none was
// retained, the cache has since evicted it, or the cached bytes fail
// the recorded content hash (a foreign entry under the key). Never
// wrong, at worst a re-sweep.
func (e *Explainer) loadLastReport() string {
	e.reportMu.Lock()
	key, sum, size := e.lastReportKey, e.lastReportSum, e.lastReportLen
	e.reportMu.Unlock()
	if key == "" || e.Session == nil {
		return ""
	}
	v, ok := e.Session.ReportCache().Get(key)
	if !ok {
		return ""
	}
	out, ok := v.(string)
	if !ok || int64(len(out)) != size || sha256.Sum256([]byte(out)) != sum {
		return ""
	}
	return out
}
