package spec

// Matches reports whether the concrete node sequence path matches the
// pattern. Wildcards match zero or more nodes; all other elements must
// match exactly and in order. Matching is anchored at both ends: the
// pattern must cover the whole path.
func Matches(pattern Path, path []string) bool {
	return matchFrom(pattern, path)
}

func matchFrom(pattern Path, path []string) bool {
	if len(pattern) == 0 {
		return len(path) == 0
	}
	head := pattern[0]
	if head == Wildcard {
		// Try consuming 0..len(path) nodes.
		for skip := 0; skip <= len(path); skip++ {
			if matchFrom(pattern[1:], path[skip:]) {
				return true
			}
		}
		return false
	}
	if len(path) == 0 || path[0] != head {
		return false
	}
	return matchFrom(pattern[1:], path[1:])
}

// MatchesSubpath reports whether any contiguous subsequence of path
// matches the pattern — the interpretation used for forbidden-path
// requirements, where "!(P1->...->P2)" forbids any traffic whose route
// passes through P1 and later P2 regardless of what surrounds them.
func MatchesSubpath(pattern Path, path []string) bool {
	for start := 0; start <= len(path); start++ {
		for end := start; end <= len(path); end++ {
			if matchFrom(pattern, path[start:end]) {
				return true
			}
		}
	}
	return false
}

// ExpandConcrete enumerates the concrete paths (over the given
// adjacency) that match the pattern, up to maxLen nodes per path.
// Paths are simple (no repeated nodes), reflecting loop-free routing.
// The adjacency maps each node to its neighbors; deterministic output
// requires the caller to pass sorted neighbor lists.
func ExpandConcrete(pattern Path, adj map[string][]string, maxLen int) [][]string {
	first, last := pattern.First(), pattern.Last()
	if first == "" || last == "" {
		return nil
	}
	var out [][]string
	var walk func(node string, acc []string, visited map[string]bool)
	walk = func(node string, acc []string, visited map[string]bool) {
		if len(acc) > maxLen {
			return
		}
		if node == last && len(acc) >= 2 {
			if Matches(pattern, acc) {
				cp := make([]string, len(acc))
				copy(cp, acc)
				out = append(out, cp)
			}
			// A path may pass through `last` and return later only if
			// it were non-simple; with simple paths we can stop here.
			return
		}
		for _, nb := range adj[node] {
			if visited[nb] {
				continue
			}
			visited[nb] = true
			walk(nb, append(acc, nb), visited)
			visited[nb] = false
		}
	}
	if len(pattern) >= 2 && pattern[0] != Wildcard {
		visited := map[string]bool{first: true}
		walk(first, []string{first}, visited)
	}
	return out
}
