package bgp

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"repro/internal/topology"
)

// PolicyProvider supplies the routing policies the simulation applies
// on each edge. internal/config implements it for concrete router
// configurations; external nodes and unconfigured routers get the
// identity policy.
//
// Both hooks receive a route that already carries the sender's
// attributes and return the transformed route, or nil to drop it. The
// provided route is a private copy: implementations may mutate it.
type PolicyProvider interface {
	// Export is applied at router `at` when announcing to neighbor
	// `to`.
	Export(at, to string, r *Route) *Route
	// Import is applied at router `at` when receiving from neighbor
	// `from`.
	Import(at, from string, r *Route) *Route
}

// IdentityPolicy accepts every route unchanged.
type IdentityPolicy struct{}

// Export implements PolicyProvider.
func (IdentityPolicy) Export(_, _ string, r *Route) *Route { return r }

// Import implements PolicyProvider.
func (IdentityPolicy) Import(_, _ string, r *Route) *Route { return r }

// MaxIterations bounds the synchronous propagation rounds before the
// engine reports non-convergence. Policy-induced BGP oscillation is
// real (the "BGP wedgies" literature); the bound turns it into a
// detectable error.
const MaxIterations = 200

// Result is a converged routing state.
type Result struct {
	// RIB maps router -> prefix -> selected best route.
	RIB map[string]map[netip.Prefix]*Route
	// Iterations is how many synchronous rounds convergence took.
	Iterations int

	net *topology.Network
}

// Simulate originates every external prefix and propagates routes
// under the given policies until the network reaches a fixpoint. It
// returns an error if the policies oscillate past MaxIterations.
func Simulate(net *topology.Network, policies PolicyProvider) (*Result, error) {
	if policies == nil {
		policies = IdentityPolicy{}
	}
	// adjRIBIn[node][prefix][neighbor] = route learned from neighbor.
	type key struct {
		prefix   netip.Prefix
		neighbor string
	}
	adjIn := make(map[string]map[key]*Route)
	best := make(map[string]map[netip.Prefix]*Route)
	for _, r := range net.Routers() {
		adjIn[r.Name] = make(map[key]*Route)
		best[r.Name] = make(map[netip.Prefix]*Route)
	}

	// Origination.
	for _, r := range net.Routers() {
		if r.HasPrefix {
			best[r.Name][r.Prefix] = Originate(r.Name, r.AS, r.Prefix)
		}
	}

	names := net.RouterNames()
	for iter := 1; iter <= MaxIterations; iter++ {
		changed := false
		// Phase 1: everyone announces current best routes to all
		// neighbors (synchronous rounds make the fixpoint
		// deterministic).
		for _, from := range names {
			fromIsStub := net.Router(from).Stub
			for _, to := range net.Neighbors(from) {
				for _, route := range sortedRoutes(best[from]) {
					// Stub networks originate but never transit.
					if fromIsStub && route.Origin != from {
						continue
					}
					ann := announce(net, policies, from, to, route)
					k := key{prefix: route.Prefix, neighbor: from}
					old := adjIn[to][k]
					if ann == nil {
						if old != nil {
							delete(adjIn[to], k)
							changed = true
						}
						continue
					}
					if old == nil || !routesEqual(old, ann) {
						adjIn[to][k] = ann
						changed = true
					}
				}
				// Withdraw prefixes no longer announced.
				for k := range adjIn[to] {
					if k.neighbor != from {
						continue
					}
					if _, still := best[from][k.prefix]; !still {
						delete(adjIn[to], k)
						changed = true
					}
				}
			}
		}
		// Phase 2: selection.
		for _, node := range names {
			r := net.Router(node)
			newBest := make(map[netip.Prefix]*Route)
			if r.HasPrefix {
				newBest[r.Prefix] = Originate(node, r.AS, r.Prefix)
			}
			byPrefix := make(map[netip.Prefix][]*Route)
			for k, route := range adjIn[node] {
				byPrefix[k.prefix] = append(byPrefix[k.prefix], route)
			}
			for prefix, cands := range byPrefix {
				if _, originated := newBest[prefix]; originated {
					continue // locally originated wins
				}
				newBest[prefix] = Best(cands)
			}
			if !ribEqual(best[node], newBest) {
				best[node] = newBest
				changed = true
			}
		}
		if !changed {
			return &Result{RIB: best, Iterations: iter, net: net}, nil
		}
	}
	return nil, fmt.Errorf("bgp: no convergence after %d iterations (policy oscillation?)", MaxIterations)
}

// announce applies export policy at from, path/loop bookkeeping, and
// import policy at to.
func announce(net *topology.Network, policies PolicyProvider, from, to string, route *Route) *Route {
	// Loop prevention: never announce a route back onto a node it has
	// already visited.
	if route.PassedThrough(to) {
		return nil
	}
	out := policies.Export(from, to, route.Clone())
	if out == nil {
		return nil
	}
	// Extend the propagation path and AS path.
	out.Path = append(out.Path, to)
	toAS := net.Router(to).AS
	if out.ASPath[len(out.ASPath)-1] != toAS {
		out.ASPath = append(out.ASPath, toAS)
	}
	out.NextHop = from
	// eBGP resets local-pref on AS boundaries; the receiver's import
	// policy may set it again.
	if net.Router(from).AS != toAS {
		out.LocalPref = DefaultLocalPref
	}
	return policies.Import(to, from, out)
}

func sortedRoutes(m map[netip.Prefix]*Route) []*Route {
	out := make([]*Route, 0, len(m))
	for _, r := range m {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix.String() < out[j].Prefix.String() })
	return out
}

func routesEqual(a, b *Route) bool {
	if a.Prefix != b.Prefix || a.Origin != b.Origin || a.NextHop != b.NextHop ||
		a.LocalPref != b.LocalPref || a.MED != b.MED ||
		len(a.Path) != len(b.Path) || len(a.ASPath) != len(b.ASPath) ||
		len(a.Communities) != len(b.Communities) {
		return false
	}
	for i := range a.Path {
		if a.Path[i] != b.Path[i] {
			return false
		}
	}
	for i := range a.ASPath {
		if a.ASPath[i] != b.ASPath[i] {
			return false
		}
	}
	for c := range a.Communities {
		if !b.Communities[c] {
			return false
		}
	}
	return true
}

func ribEqual(a, b map[netip.Prefix]*Route) bool {
	if len(a) != len(b) {
		return false
	}
	for p, ra := range a {
		rb, ok := b[p]
		if !ok || !routesEqual(ra, rb) {
			return false
		}
	}
	return true
}

// Route returns the best route for prefix at node, or nil.
func (res *Result) Route(node string, prefix netip.Prefix) *Route {
	return res.RIB[node][prefix]
}

// ForwardingPath returns the node sequence traffic from src to the
// prefix follows under the converged state, ending at the originating
// node — or nil if src has no route. The result is src's best route's
// propagation path reversed.
func (res *Result) ForwardingPath(src string, prefix netip.Prefix) []string {
	r := res.Route(src, prefix)
	if r == nil {
		return nil
	}
	out := make([]string, len(r.Path))
	for i, n := range r.Path {
		out[len(r.Path)-1-i] = n
	}
	return out
}

// Reachable reports whether src holds any route to the prefix.
func (res *Result) Reachable(src string, prefix netip.Prefix) bool {
	return res.Route(src, prefix) != nil
}

// Dump renders the full routing state deterministically, for golden
// tests and the CLI tools.
func (res *Result) Dump() string {
	var sb strings.Builder
	nodes := make([]string, 0, len(res.RIB))
	for n := range res.RIB {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		fmt.Fprintf(&sb, "%s:\n", n)
		for _, r := range sortedRoutes(res.RIB[n]) {
			fmt.Fprintf(&sb, "  %s\n", r)
		}
	}
	return sb.String()
}
