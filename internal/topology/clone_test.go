package topology

import "testing"

func TestCloneIndependence(t *testing.T) {
	a := Paper()
	b := a.Clone()
	b.RemoveLink("R1", "R2")
	if !a.HasLink("R1", "R2") {
		t.Fatal("Clone shares adjacency")
	}
	if b.HasLink("R1", "R2") {
		t.Fatal("RemoveLink did not remove")
	}
	if a.NumLinks() != b.NumLinks()+1 {
		t.Fatalf("link counts: %d vs %d", a.NumLinks(), b.NumLinks())
	}
	// Router records are intentionally shared (immutable after build).
	if a.Router("R1") != b.Router("R1") {
		t.Fatal("router records should be shared")
	}
}

func TestRemoveLinkIdempotent(t *testing.T) {
	n := Paper()
	n.RemoveLink("R1", "R2")
	n.RemoveLink("R1", "R2") // no-op
	n.RemoveLink("R1", "ZZ") // unknown: no-op
	if n.HasLink("R1", "R2") {
		t.Fatal("link still present")
	}
}

func TestLinksSortedPairs(t *testing.T) {
	n := Paper()
	links := n.Links()
	if len(links) != n.NumLinks() {
		t.Fatalf("Links() = %d pairs, NumLinks = %d", len(links), n.NumLinks())
	}
	for _, l := range links {
		if l[0] >= l[1] {
			t.Fatalf("pair %v not ordered", l)
		}
		if !n.HasLink(l[0], l[1]) {
			t.Fatalf("pair %v not a link", l)
		}
	}
}

func TestCloneSurvivesSimulationShape(t *testing.T) {
	// Removing a link from a clone must not perturb path enumeration
	// on the original.
	a := Paper()
	before := len(a.SimplePaths("C", "P1", 6))
	b := a.Clone()
	b.RemoveLink("R3", "R1")
	after := len(a.SimplePaths("C", "P1", 6))
	if before != after {
		t.Fatal("clone mutation leaked into the original")
	}
	if len(b.SimplePaths("C", "P1", 6)) >= before {
		t.Fatal("removed link did not reduce path count")
	}
}
