// netexplain synthesizes a scenario and generates the localized
// explanation for one router — the paper's end-to-end pipeline.
//
//	netexplain -scenario scenario1 -router R1
//	netexplain -scenario scenario3 -router R2 -req Req1     # per-requirement
//	netexplain -scenario scenario1 -router R1 -var 'R1_to_P1/100/action'
//	netexplain -scenario scenario1 -diff old.cfg new.cfg    # incremental what-if
//	netexplain -rules                                       # list the 15 rules
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/rewrite"
	"repro/internal/scenarios"
	"repro/internal/spec"
	"repro/internal/synth"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with the process glue factored out. Exit codes follow
// the shared cmd convention: 0 success, 1 operational failure,
// 2 usage error (bad flags, malformed -var, unknown scenario or
// requirement block).
func run(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("netexplain", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scenario := fs.String("scenario", "scenario1", "paper scenario: scenario1, scenario2, scenario3")
	router := fs.String("router", "R1", "router to explain")
	reqName := fs.String("req", "", "explain one requirement block only (e.g. Req1)")
	varSpec := fs.String("var", "", "explain a single field: MAP/SEQ/action | MAP/SEQ/match/I | MAP/SEQ/set/I")
	noLift := fs.Bool("nolift", false, "skip subspecification lifting (print residual constraints only)")
	validate := fs.Bool("validate", false, "validate the deployed configuration against the lifted subspecification")
	all := fs.Bool("all", false, "print the explanation report for every configured router")
	diff := fs.Bool("diff", false, "incremental what-if: takes two positional config files OLD NEW; topology and intent come from -scenario")
	complement := fs.Bool("complement", false, "explain what the REST of the network must do, holding -router fixed")
	interp2 := fs.Bool("interp2", false, "synthesize and explain under interpretation 2 (unlisted preference paths as last resorts)")
	rules := fs.Bool("rules", false, "list the 15 simplification rules and exit")
	timeout := fs.Duration("timeout", 0, "abort synthesis and explanation after this duration (e.g. 30s; 0 = no limit)")
	outPath := fs.String("o", "", `write output to FILE instead of stdout ("-" = stdout); with -all the report streams as router sections complete`)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "netexplain:", err)
		return 1
	}
	usage := func(err error) int {
		fmt.Fprintln(stderr, "netexplain:", err)
		return 2
	}

	out := stdout
	if *outPath != "" && *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			return fail(err)
		}
		defer func() {
			if err := f.Close(); err != nil && code == 0 {
				code = fail(err)
			}
		}()
		out = f
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *rules {
		for _, r := range rewrite.AllRules {
			fmt.Fprintf(out, "%-20s %s\n", r, rewrite.Describe(r))
		}
		return 0
	}

	sc, err := scenarios.ByName(*scenario)
	if err != nil {
		return usage(err)
	}
	sopts := synth.DefaultOptions()
	sopts.AllowUnspecified = *interp2
	reqs := sc.Requirements()
	if *reqName != "" {
		b := sc.Spec.Block(*reqName)
		if b == nil {
			return usage(fmt.Errorf("no requirement block %q", *reqName))
		}
		reqs = b.Reqs
	}

	opts := core.DefaultOptions()
	opts.Synth = sopts
	opts.Lift = !*noLift

	if *diff {
		// Incremental what-if: explain the OLD deployment (warming the
		// session caches), apply the edit, and re-explain only what the
		// edit touches. The printed report is byte-identical to a cold
		// full report over NEW; the summary shows what the delta
		// machinery reused.
		rest := fs.Args()
		if len(rest) != 2 {
			return usage(fmt.Errorf("-diff needs two positional arguments: old.cfg new.cfg"))
		}
		oldDep, err := readDeployment(rest[0])
		if err != nil {
			return fail(err)
		}
		newDep, err := readDeployment(rest[1])
		if err != nil {
			return fail(err)
		}
		explainer, err := core.NewExplainer(sc.Net, reqs, oldDep, opts)
		if err != nil {
			return fail(err)
		}
		if _, err := explainer.ReportContext(ctx); err != nil {
			return fail(fmt.Errorf("explaining %s: %w", rest[0], err))
		}
		dr, err := explainer.ReExplainContext(ctx, core.Delta{Deployment: newDep})
		if err != nil {
			return fail(fmt.Errorf("re-explaining %s: %w", rest[1], err))
		}
		fmt.Fprint(out, dr.Report)
		fmt.Fprintln(out)
		fmt.Fprint(out, dr.Summary)
		return 0
	}

	res, err := synth.SynthesizeContext(ctx, sc.Net, sc.Sketch, sc.Requirements(), sopts)
	if err != nil {
		return fail(err)
	}
	explainer, err := core.NewExplainer(sc.Net, reqs, res.Deployment, opts)
	if err != nil {
		return fail(err)
	}

	if *all {
		// Stream the report: sections reach the writer in router order
		// as the worker pool completes them, so wide networks produce
		// output long before the last router is explained. On error the
		// stream ends cleanly at a section boundary.
		if _, err := explainer.WriteReport(ctx, out); err != nil {
			return fail(err)
		}
		return 0
	}
	if *complement {
		comp, err := explainer.ExplainComplementContext(ctx, *router)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(out, "holding %s fixed, the rest of the network must guarantee:\n", *router)
		fmt.Fprintf(out, "(seed %d atoms -> %d after %d passes)\n\n", comp.SeedSize, comp.SimplifiedSize, comp.Passes)
		for _, r := range comp.Routers() {
			fmt.Fprintf(out, "--- %s ---\n", r)
			for _, c := range comp.Assumptions[r] {
				fmt.Fprintf(out, "  %s\n", c)
			}
		}
		return 0
	}

	var ex *core.Explanation
	if *varSpec != "" {
		tgt, err := parseTarget(*varSpec)
		if err != nil {
			return usage(err)
		}
		ex, err = explainer.ExplainContext(ctx, *router, []core.Target{tgt})
		if err != nil {
			return fail(err)
		}
	} else {
		ex, err = explainer.ExplainAllContext(ctx, *router)
		if err != nil {
			return fail(err)
		}
	}

	fmt.Fprintf(out, "router %s: %d symbolic variables\n", ex.Router, len(ex.HoleVars))
	names := make([]string, 0, len(ex.Replaced))
	for name := range ex.Replaced {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(out, "  %s (was %s)\n", name, ex.Replaced[name])
	}
	fmt.Fprintf(out, "\nseed specification: %d constraints, %d atoms\n", ex.SeedConstraints, ex.SeedSize)
	fmt.Fprintf(out, "simplified (%d passes): %d atoms, reduction %.0fx\n", ex.Passes, ex.SimplifiedSize, ex.Reduction())
	fmt.Fprintf(out, "\nresidual constraints on %s's variables:\n%s\n", ex.Router, indent(ex.ResidualText()))
	if ex.Subspec != nil {
		fmt.Fprintf(out, "\nsubspecification:\n%s", spec.PrintBlock(ex.Subspec))
		if ex.SubspecComplete {
			fmt.Fprintln(out, "(verified complete: necessary and sufficient)")
		} else {
			fmt.Fprintln(out, "(necessary; sufficiency not fully verified)")
		}
		if *validate && !ex.Subspec.IsEmpty() {
			checks, err := explainer.CheckSubspecContext(ctx, *router, ex.Subspec)
			if err != nil {
				return fail(err)
			}
			fmt.Fprintf(out, "\nvalidating the deployed configuration against the subspecification:\n%s", core.FormatChecks(checks))
		}
	}
	return 0
}

// readDeployment loads a multi-router configuration file (stanzas
// split at "router bgp" lines).
func readDeployment(path string) (config.Deployment, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dep, err := config.ParseDeployment(string(src))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return dep, nil
}

// parseTarget parses MAP/SEQ/action, MAP/SEQ/match/I, MAP/SEQ/set/I.
func parseTarget(s string) (core.Target, error) {
	parts := strings.Split(s, "/")
	if len(parts) < 3 {
		return core.Target{}, fmt.Errorf("bad -var %q", s)
	}
	seq, err := strconv.Atoi(parts[1])
	if err != nil {
		return core.Target{}, fmt.Errorf("bad clause sequence %q", parts[1])
	}
	t := core.Target{Map: parts[0], Seq: seq}
	switch parts[2] {
	case "action":
		t.Field = core.FieldAction
		return t, nil
	case "match", "set":
		if len(parts) != 4 {
			return core.Target{}, fmt.Errorf("%s target needs an index: MAP/SEQ/%s/I", parts[2], parts[2])
		}
		idx, err := strconv.Atoi(parts[3])
		if err != nil {
			return core.Target{}, fmt.Errorf("bad index %q", parts[3])
		}
		t.Index = idx
		if parts[2] == "match" {
			t.Field = core.FieldMatch
		} else {
			t.Field = core.FieldSet
		}
		return t, nil
	}
	return core.Target{}, fmt.Errorf("field must be action, match, or set")
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(s, "\n", "\n  ")
}
