package rewrite

import (
	"repro/internal/logic"
)

// Simplifier applies the fifteen rewrite rules to fixpoint. A
// Simplifier records per-rule fire counts in Stats; it may be reused
// across terms (counts accumulate until Reset).
type Simplifier struct {
	// MaxPasses bounds the number of global fixpoint passes (each pass
	// is a full bottom-up rewrite plus a conjunction-level propagation
	// pass). The default of 64 is far above what any seed
	// specification in the experiments needs; the bound exists so a
	// hypothetical non-terminating rule interaction degrades to a
	// sound non-minimal result instead of a hang.
	MaxPasses int
	// Stats counts how many times each rule fired.
	Stats map[RuleName]int
	// Passes records how many fixpoint passes the last Simplify run
	// took.
	Passes int
	// DisableEqPropagation turns off rule S14 (equality propagation),
	// the ablation knob for the experiment that measures how much of
	// the reduction that single rule carries.
	DisableEqPropagation bool
	// Trace records the term size after each fixpoint pass of the last
	// Simplify run (index 0 is the size after the first pass).
	Trace []int
}

// New creates a Simplifier with default settings.
func New() *Simplifier {
	return &Simplifier{MaxPasses: 64, Stats: make(map[RuleName]int)}
}

// Reset clears accumulated statistics.
func (s *Simplifier) Reset() {
	s.Stats = make(map[RuleName]int)
	s.Passes = 0
	s.Trace = nil
}

func (s *Simplifier) fired(r RuleName) {
	s.Stats[r]++
}

// Simplify rewrites t to a fixpoint of the fifteen rules. The result
// is logically equivalent to t.
func (s *Simplifier) Simplify(t logic.Term) logic.Term {
	cur := t
	s.Trace = s.Trace[:0]
	for pass := 0; pass < s.MaxPasses; pass++ {
		s.Passes = pass + 1
		memo := make(map[logic.Term]logic.Term)
		next := s.mapMemo(cur, memo)
		if !s.DisableEqPropagation {
			next = s.propagateEqualities(next)
		}
		s.Trace = append(s.Trace, logic.Size(next))
		if logic.Equal(next, cur) {
			return next
		}
		cur = next
	}
	return cur
}

// mapMemo is the memoizing counterpart of logic.Map(t, s.simplifyNode):
// it rebuilds t bottom-up, but because terms are hash-consed, a subterm
// shared across many occurrences is keyed by its canonical pointer and
// simplified only once per memo table. The local rules are context-free
// (a node's rewrite depends only on the node and its already-simplified
// children), which is what makes sharing a memo across occurrences —
// and across sibling conjuncts in propagateEqualities — sound. Note the
// rule fire counters consequently count per distinct subterm, not per
// occurrence.
func (s *Simplifier) mapMemo(t logic.Term, memo map[logic.Term]logic.Term) logic.Term {
	t = logic.Intern(t)
	if r, ok := memo[t]; ok {
		return r
	}
	out := t
	if n, ok := t.(*logic.Apply); ok {
		changed := false
		args := make([]logic.Term, len(n.Args))
		for i, a := range n.Args {
			args[i] = s.mapMemo(a, memo)
			if args[i] != a {
				changed = true
			}
		}
		if changed {
			out = logic.Intern(&logic.Apply{Op: n.Op, Args: args})
		}
	}
	out = s.simplifyNode(out)
	memo[t] = out
	return out
}

// Simplify is a convenience wrapper using a fresh Simplifier.
func Simplify(t logic.Term) logic.Term { return New().Simplify(t) }

// simplifyNode applies all local (single-node) rules to a node whose
// children are already simplified, returning the replacement.
func (s *Simplifier) simplifyNode(t logic.Term) logic.Term {
	a, ok := t.(*logic.Apply)
	if !ok {
		return t
	}
	switch a.Op {
	case logic.OpNot:
		return s.simplifyNot(a)
	case logic.OpAnd:
		return s.simplifyAnd(a)
	case logic.OpOr:
		return s.simplifyOr(a)
	case logic.OpImplies:
		return s.simplifyImplies(a)
	case logic.OpIff:
		return s.simplifyIff(a)
	case logic.OpIte:
		return s.simplifyIte(a)
	case logic.OpEq, logic.OpNe:
		return s.simplifyEq(a)
	case logic.OpLt, logic.OpLe, logic.OpGt, logic.OpGe:
		return s.simplifyCmp(a)
	case logic.OpAdd, logic.OpSub:
		return s.foldArith(a)
	}
	return t
}

func (s *Simplifier) simplifyNot(a *logic.Apply) logic.Term {
	arg := a.Args[0]
	// S3: negation of constants.
	if logic.IsTrue(arg) {
		s.fired(RuleNegConst)
		return logic.False
	}
	if logic.IsFalse(arg) {
		s.fired(RuleNegConst)
		return logic.True
	}
	inner, ok := arg.(*logic.Apply)
	if !ok {
		return a
	}
	switch inner.Op {
	case logic.OpNot:
		// S2: double negation.
		s.fired(RuleDoubleNeg)
		return inner.Args[0]
	case logic.OpEq:
		// S15: !(a = b) -> a != b.
		s.fired(RuleNegNormal)
		return logic.Ne(inner.Args[0], inner.Args[1])
	case logic.OpNe:
		s.fired(RuleNegNormal)
		return logic.Eq(inner.Args[0], inner.Args[1])
	case logic.OpLt:
		s.fired(RuleNegNormal)
		return logic.Ge(inner.Args[0], inner.Args[1])
	case logic.OpLe:
		s.fired(RuleNegNormal)
		return logic.Gt(inner.Args[0], inner.Args[1])
	case logic.OpGt:
		s.fired(RuleNegNormal)
		return logic.Le(inner.Args[0], inner.Args[1])
	case logic.OpGe:
		s.fired(RuleNegNormal)
		return logic.Lt(inner.Args[0], inner.Args[1])
	}
	return a
}

func (s *Simplifier) simplifyAnd(a *logic.Apply) logic.Term {
	// S4: flatten, drop true, collapse on false, dedup.
	args := make([]logic.Term, 0, len(a.Args))
	changed := false
	for _, arg := range a.Args {
		if logic.IsTrue(arg) {
			s.fired(RuleAndIdentity)
			changed = true
			continue
		}
		if logic.IsFalse(arg) {
			s.fired(RuleAndIdentity)
			return logic.False
		}
		if nested, ok := arg.(*logic.Apply); ok && nested.Op == logic.OpAnd {
			s.fired(RuleAndIdentity)
			changed = true
			args = append(args, nested.Args...)
			continue
		}
		args = append(args, arg)
	}
	if deduped := logic.DedupTerms(args); len(deduped) != len(args) {
		s.fired(RuleAndIdentity)
		changed = true
		args = deduped
	}
	// S6: complement law.
	if hasComplementPair(args) {
		s.fired(RuleComplement)
		return logic.False
	}
	// S13: absorption — drop any disjunction conjunct containing
	// another conjunct as a disjunct.
	if filtered, fired := absorb(args, logic.OpOr); fired {
		s.fired(RuleAbsorption)
		changed = true
		args = filtered
	}
	if !changed {
		return a
	}
	return logic.And(args...)
}

func (s *Simplifier) simplifyOr(a *logic.Apply) logic.Term {
	// S5: flatten, drop false, collapse on true, dedup.
	args := make([]logic.Term, 0, len(a.Args))
	changed := false
	for _, arg := range a.Args {
		if logic.IsFalse(arg) {
			s.fired(RuleOrIdentity)
			changed = true
			continue
		}
		if logic.IsTrue(arg) {
			s.fired(RuleOrIdentity)
			return logic.True
		}
		if nested, ok := arg.(*logic.Apply); ok && nested.Op == logic.OpOr {
			s.fired(RuleOrIdentity)
			changed = true
			args = append(args, nested.Args...)
			continue
		}
		args = append(args, arg)
	}
	if deduped := logic.DedupTerms(args); len(deduped) != len(args) {
		s.fired(RuleOrIdentity)
		changed = true
		args = deduped
	}
	// S6: complement law.
	if hasComplementPair(args) {
		s.fired(RuleComplement)
		return logic.True
	}
	// S13: absorption (dual).
	if filtered, fired := absorb(args, logic.OpAnd); fired {
		s.fired(RuleAbsorption)
		changed = true
		args = filtered
	}
	if !changed {
		return a
	}
	return logic.Or(args...)
}

// hasComplementPair reports whether args contains both t and !t.
func hasComplementPair(args []logic.Term) bool {
	for i, x := range args {
		for _, y := range args[i+1:] {
			if isComplement(x, y) {
				return true
			}
		}
	}
	return false
}

func isComplement(x, y logic.Term) bool {
	if nx, ok := x.(*logic.Apply); ok && nx.Op == logic.OpNot && logic.Equal(nx.Args[0], y) {
		return true
	}
	if ny, ok := y.(*logic.Apply); ok && ny.Op == logic.OpNot && logic.Equal(ny.Args[0], x) {
		return true
	}
	return false
}

// absorb removes from args any term of the given inner operator that
// contains another member of args among its operands:
// for And-level (inner = Or):  a & (a | b)  ->  a
// for Or-level  (inner = And): a | (a & b)  ->  a
func absorb(args []logic.Term, inner logic.Op) ([]logic.Term, bool) {
	fired := false
	out := make([]logic.Term, 0, len(args))
	for i, cand := range args {
		app, ok := cand.(*logic.Apply)
		absorbed := false
		if ok && app.Op == inner {
			for j, other := range args {
				if i == j {
					continue
				}
				for _, operand := range app.Args {
					if logic.Equal(operand, other) {
						absorbed = true
						break
					}
				}
				if absorbed {
					break
				}
			}
		}
		if absorbed {
			fired = true
			continue
		}
		out = append(out, cand)
	}
	return out, fired
}

func (s *Simplifier) simplifyImplies(a *logic.Apply) logic.Term {
	l, r := a.Args[0], a.Args[1]
	switch {
	case logic.IsFalse(l), logic.IsTrue(r):
		// S7: false => a ≡ true (the rule the paper quotes); a => true ≡ true.
		s.fired(RuleImplies)
		return logic.True
	case logic.IsTrue(l):
		s.fired(RuleImplies)
		return r
	case logic.IsFalse(r):
		s.fired(RuleImplies)
		return s.simplifyNode(logic.Not(l).(*logic.Apply))
	case logic.Equal(l, r):
		s.fired(RuleImplies)
		return logic.True
	}
	return a
}

func (s *Simplifier) simplifyIff(a *logic.Apply) logic.Term {
	l, r := a.Args[0], a.Args[1]
	switch {
	case logic.Equal(l, r):
		s.fired(RuleIff)
		return logic.True
	case logic.IsTrue(l):
		s.fired(RuleIff)
		return r
	case logic.IsTrue(r):
		s.fired(RuleIff)
		return l
	case logic.IsFalse(l):
		s.fired(RuleIff)
		return s.simplifyNode(logic.Not(r).(*logic.Apply))
	case logic.IsFalse(r):
		s.fired(RuleIff)
		return s.simplifyNode(logic.Not(l).(*logic.Apply))
	case isComplement(l, r):
		s.fired(RuleIff)
		return logic.False
	}
	return a
}

func (s *Simplifier) simplifyIte(a *logic.Apply) logic.Term {
	c, thn, els := a.Args[0], a.Args[1], a.Args[2]
	switch {
	case logic.IsTrue(c):
		s.fired(RuleIte)
		return thn
	case logic.IsFalse(c):
		s.fired(RuleIte)
		return els
	case logic.Equal(thn, els):
		s.fired(RuleIte)
		return thn
	case thn.Sort().IsBool() && logic.IsTrue(thn) && logic.IsFalse(els):
		s.fired(RuleIte)
		return c
	case thn.Sort().IsBool() && logic.IsFalse(thn) && logic.IsTrue(els):
		s.fired(RuleIte)
		return s.simplifyNode(logic.Not(c).(*logic.Apply))
	}
	return a
}

func (s *Simplifier) simplifyEq(a *logic.Apply) logic.Term {
	l, r := a.Args[0], a.Args[1]
	ne := a.Op == logic.OpNe
	// S10: reflexivity on arbitrary terms.
	if logic.Equal(l, r) {
		s.fired(RuleEqRefl)
		return logic.NewBool(!ne)
	}
	// S11: distinct literals decide the (dis)equality.
	if logic.IsLit(l) && logic.IsLit(r) {
		s.fired(RuleEqConst)
		eq := literalsEqual(l, r)
		if ne {
			eq = !eq
		}
		return logic.NewBool(eq)
	}
	// S1 adjunct: boolean equality with a constant folds to the other
	// side (x = true -> x, x = false -> !x), counted as const folding.
	if l.Sort().IsBool() {
		if logic.IsTrue(l) || logic.IsTrue(r) || logic.IsFalse(l) || logic.IsFalse(r) {
			s.fired(RuleConstFold)
			other, konst := l, r
			if logic.IsLit(l) {
				other, konst = r, l
			}
			truth := logic.IsTrue(konst)
			if ne {
				truth = !truth
			}
			if truth {
				return other
			}
			return s.simplifyNode(logic.Not(other).(*logic.Apply))
		}
	}
	// S12: integer equality decided by domain disjointness.
	if decided, val := domainDecidesEq(l, r); decided {
		s.fired(RuleDomainFold)
		if ne {
			val = !val
		}
		return logic.NewBool(val)
	}
	// S12 (enum complement): over a two-valued enumeration,
	// x != v is x = v' — normalizing to the positive form lets
	// equality propagation (S14) pick the binding up.
	if ne {
		if folded := enumComplement(l, r); folded != nil {
			s.fired(RuleDomainFold)
			return folded
		}
		if folded := enumComplement(r, l); folded != nil {
			s.fired(RuleDomainFold)
			return folded
		}
	}
	return a
}

// enumComplement rewrites x != v into x = v' when x's enum sort has
// exactly two values; returns nil when not applicable.
func enumComplement(x, v logic.Term) logic.Term {
	xv, ok := x.(*logic.Var)
	if !ok || !xv.S.IsEnum() || len(xv.S.Values) != 2 {
		return nil
	}
	lit, ok := v.(*logic.EnumLit)
	if !ok {
		return nil
	}
	other := xv.S.Values[0]
	if other == lit.Val {
		other = xv.S.Values[1]
	}
	return logic.Eq(xv, logic.NewEnum(xv.S, other))
}

func literalsEqual(l, r logic.Term) bool {
	switch x := l.(type) {
	case *logic.BoolLit:
		y, ok := r.(*logic.BoolLit)
		return ok && x.Val == y.Val
	case *logic.IntLit:
		y, ok := r.(*logic.IntLit)
		return ok && x.Val == y.Val
	case *logic.EnumLit:
		y, ok := r.(*logic.EnumLit)
		return ok && x.Val == y.Val
	}
	return false
}

// domainDecidesEq reports whether an integer equality between a
// variable and a literal (or two variables) is decided purely by the
// declared domains: disjoint ranges make it false. It never returns
// decided=true with val=true, because overlap does not force equality.
func domainDecidesEq(l, r logic.Term) (decided, val bool) {
	lo1, hi1, ok1 := intRange(l)
	lo2, hi2, ok2 := intRange(r)
	if !ok1 || !ok2 {
		return false, false
	}
	if hi1 < lo2 || hi2 < lo1 {
		return true, false
	}
	return false, false
}

// intRange returns the inclusive value range of an integer term if it
// is a literal or a domain-carrying variable.
func intRange(t logic.Term) (lo, hi int64, ok bool) {
	switch n := t.(type) {
	case *logic.IntLit:
		return n.Val, n.Val, true
	case *logic.Var:
		if n.S.IsInt() && (n.Lo != 0 || n.Hi != 0) {
			return n.Lo, n.Hi, true
		}
	}
	return 0, 0, false
}

func (s *Simplifier) simplifyCmp(a *logic.Apply) logic.Term {
	l, r := a.Args[0], a.Args[1]
	// S1: fold literal comparisons.
	ll, lok := l.(*logic.IntLit)
	rl, rok := r.(*logic.IntLit)
	if lok && rok {
		s.fired(RuleConstFold)
		var v bool
		switch a.Op {
		case logic.OpLt:
			v = ll.Val < rl.Val
		case logic.OpLe:
			v = ll.Val <= rl.Val
		case logic.OpGt:
			v = ll.Val > rl.Val
		default:
			v = ll.Val >= rl.Val
		}
		return logic.NewBool(v)
	}
	// S10 analog: t < t is false, t <= t is true.
	if logic.Equal(l, r) {
		s.fired(RuleEqRefl)
		return logic.NewBool(a.Op == logic.OpLe || a.Op == logic.OpGe)
	}
	// S12: domain-decided comparisons.
	if lo1, hi1, ok1 := intRange(l); ok1 {
		if lo2, hi2, ok2 := intRange(r); ok2 {
			switch a.Op {
			case logic.OpLt:
				if hi1 < lo2 {
					s.fired(RuleDomainFold)
					return logic.True
				}
				if lo1 >= hi2 {
					s.fired(RuleDomainFold)
					return logic.False
				}
			case logic.OpLe:
				if hi1 <= lo2 {
					s.fired(RuleDomainFold)
					return logic.True
				}
				if lo1 > hi2 {
					s.fired(RuleDomainFold)
					return logic.False
				}
			case logic.OpGt:
				if lo1 > hi2 {
					s.fired(RuleDomainFold)
					return logic.True
				}
				if hi1 <= lo2 {
					s.fired(RuleDomainFold)
					return logic.False
				}
			case logic.OpGe:
				if lo1 >= hi2 {
					s.fired(RuleDomainFold)
					return logic.True
				}
				if hi1 < lo2 {
					s.fired(RuleDomainFold)
					return logic.False
				}
			}
		}
	}
	return a
}

func (s *Simplifier) foldArith(a *logic.Apply) logic.Term {
	// S1: fold arithmetic over integer literals.
	allLits := true
	for _, arg := range a.Args {
		if _, ok := arg.(*logic.IntLit); !ok {
			allLits = false
			break
		}
	}
	if !allLits {
		return a
	}
	s.fired(RuleConstFold)
	if a.Op == logic.OpSub {
		return logic.NewInt(a.Args[0].(*logic.IntLit).Val - a.Args[1].(*logic.IntLit).Val)
	}
	var sum int64
	for _, arg := range a.Args {
		sum += arg.(*logic.IntLit).Val
	}
	return logic.NewInt(sum)
}

// propagateEqualities implements rule S14 at every conjunction in the
// term: when a conjunct pins a variable (x, !x, x = literal, or
// literal = x), the binding is substituted into the sibling conjuncts.
// The defining conjunct itself is kept, so the rewrite is equivalence-
// preserving, and inner simplification then collapses the substituted
// occurrences.
func (s *Simplifier) propagateEqualities(t logic.Term) logic.Term {
	// The propagation itself is context-dependent (a binding holds only
	// inside its conjunction) and must not be memoized, but the inner
	// re-simplification after substitution applies only the context-free
	// local rules, so one memo table is shared across all conjunctions.
	memo := make(map[logic.Term]logic.Term)
	return logic.Map(t, func(u logic.Term) logic.Term {
		a, ok := u.(*logic.Apply)
		if !ok || a.Op != logic.OpAnd {
			return u
		}
		bindings := map[string]logic.Term{}
		for _, c := range a.Args {
			if name, val, ok := unitBinding(c); ok {
				if _, dup := bindings[name]; !dup {
					bindings[name] = val
				}
			}
		}
		if len(bindings) == 0 {
			return u
		}
		changed := false
		args := make([]logic.Term, len(a.Args))
		for i, c := range a.Args {
			// Do not substitute inside the defining conjunct of the
			// binding itself; drop exactly the variable bound there.
			if name, _, ok := unitBinding(c); ok {
				sub := map[string]logic.Term{}
				for k, v := range bindings {
					if k != name {
						sub[k] = v
					}
				}
				args[i] = logic.Substitute(c, sub)
			} else {
				args[i] = logic.Substitute(c, bindings)
			}
			if args[i] != c {
				changed = true
			}
		}
		if !changed {
			return u
		}
		s.fired(RuleEqPropagation)
		out := make([]logic.Term, len(args))
		for i, c := range args {
			out[i] = s.mapMemo(c, memo)
		}
		res := logic.And(out...)
		if ap, ok := res.(*logic.Apply); ok {
			return s.simplifyNode(ap)
		}
		return res
	})
}

// unitBinding recognizes conjuncts that pin a single variable to a
// literal value: x (bool), !x, x = lit, lit = x.
func unitBinding(t logic.Term) (name string, val logic.Term, ok bool) {
	switch n := t.(type) {
	case *logic.Var:
		if n.S.IsBool() {
			return n.Name, logic.True, true
		}
	case *logic.Apply:
		switch n.Op {
		case logic.OpNot:
			if v, ok := n.Args[0].(*logic.Var); ok && v.S.IsBool() {
				return v.Name, logic.False, true
			}
		case logic.OpEq:
			if v, ok := n.Args[0].(*logic.Var); ok && logic.IsLit(n.Args[1]) {
				return v.Name, n.Args[1], true
			}
			if v, ok := n.Args[1].(*logic.Var); ok && logic.IsLit(n.Args[0]) {
				return v.Name, n.Args[0], true
			}
		}
	}
	return "", nil, false
}
