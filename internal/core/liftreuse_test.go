package core

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/config"
	"repro/internal/scenarios"
)

// TestReportIdenticalAcrossWorkerCounts pins the determinism contract
// of the parallel lift: the whole-network report is byte-identical to
// the committed golden for every worker count, because candidate
// verdicts are merged in candidate order and the remaining checks are
// verdict-equal regardless of solver warmth or schedule.
func TestReportIdenticalAcrossWorkerCounts(t *testing.T) {
	for _, sc := range scenarios.All() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			dep := synthScenario(t, sc)
			want, err := os.ReadFile(filepath.Join("testdata", "report_"+sc.Name+".golden"))
			if err != nil {
				t.Fatalf("missing golden (run TestReportMatchesGolden -update): %v", err)
			}
			for _, workers := range []int{1, 2, 8} {
				opts := DefaultOptions()
				opts.LiftWorkers = workers
				e, err := NewExplainer(sc.Net, sc.Requirements(), dep, opts)
				if err != nil {
					t.Fatal(err)
				}
				got, err := e.Report()
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if got != string(want) {
					t.Errorf("workers=%d: report differs from golden", workers)
				}
			}
		})
	}
}

// TestWarmSolverReuseAcrossQueries checks that repeat queries against
// one encoding hit the session's warm-solver pool and still produce
// identical explanations.
func TestWarmSolverReuseAcrossQueries(t *testing.T) {
	sc := scenarios.All()[0]
	dep := synthScenario(t, sc)
	e := newExplainer(t, sc, dep, nil)
	router := firstConfiguredRouter(dep)
	first, err := e.ExplainAll(router)
	if err != nil {
		t.Fatal(err)
	}
	if misses := e.Stats().WarmSolverMisses; misses == 0 {
		t.Fatal("first explanation built no solvers")
	}
	second, err := e.ExplainAll(router)
	if err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.WarmSolverHits == 0 {
		t.Errorf("repeat explanation hit no warm solvers (hits=%d misses=%d)", st.WarmSolverHits, st.WarmSolverMisses)
	}
	if !reflect.DeepEqual(subspecStrings(first.Subspec), subspecStrings(second.Subspec)) {
		t.Errorf("warm repeat changed the subspec:\nfirst:  %v\nsecond: %v", subspecStrings(first.Subspec), subspecStrings(second.Subspec))
	}
	if first.SubspecComplete != second.SubspecComplete {
		t.Errorf("warm repeat changed completeness: %v vs %v", first.SubspecComplete, second.SubspecComplete)
	}
	if st.LiftQueries == 0 {
		t.Error("no lift query latencies recorded")
	}
	if st.SimplifyHits == 0 {
		t.Error("repeat explanation did not hit the simplification cache")
	}
	if st.LiftQueries > 0 && (st.LiftP50 < 0 || st.LiftP95 < st.LiftP50) {
		t.Errorf("implausible latency percentiles: p50=%v p95=%v", st.LiftP50, st.LiftP95)
	}
}

// TestCheckSubspecNecessary checks the solver-backed necessity
// validation agrees with lifting's own criterion: every clause the
// lift accepted is entailed by the seed.
func TestCheckSubspecNecessary(t *testing.T) {
	for _, sc := range scenarios.All() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			dep := synthScenario(t, sc)
			e := newExplainer(t, sc, dep, nil)
			for router := range dep {
				ex, err := e.ExplainAll(router)
				if err != nil {
					t.Fatal(err)
				}
				if ex.Subspec == nil || len(ex.Subspec.Reqs) == 0 {
					continue
				}
				checks, err := e.CheckSubspecNecessary(router, ex.Subspec)
				if err != nil {
					t.Fatal(err)
				}
				if len(checks) != len(ex.Subspec.Reqs) {
					t.Fatalf("%s: %d checks for %d clauses", router, len(checks), len(ex.Subspec.Reqs))
				}
				for _, ch := range checks {
					if !ch.Necessary {
						t.Errorf("%s: lifted clause %s reported not necessary", router, ch.Req)
					}
				}
			}
		})
	}
}

// TestComplementSatisfiable checks the complement's consistency
// verdict: the synthesized deployment itself completes the assume
// side, so it must be satisfiable.
func TestComplementSatisfiable(t *testing.T) {
	sc := scenarios.All()[0]
	dep := synthScenario(t, sc)
	e := newExplainer(t, sc, dep, nil)
	router := firstConfiguredRouter(dep)
	out, err := e.ExplainComplement(router)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Satisfiable {
		t.Errorf("complement of %s reported unsatisfiable", router)
	}
}

// firstConfiguredRouter picks the alphabetically first configured
// router, for tests that need any one device.
func firstConfiguredRouter(dep config.Deployment) string {
	names := make([]string, 0, len(dep))
	for name := range dep {
		names = append(names, name)
	}
	sort.Strings(names)
	return names[0]
}
