package rewrite

import (
	"repro/internal/logic"
)

// DefaultMaxPasses bounds equality-propagation rounds per conjunction
// (see Simplifier.MaxPasses).
const DefaultMaxPasses = 64

// Simplifier normalizes terms under the fifteen rewrite rules with a
// single memoized bottom-up pass: every distinct canonical subterm is
// rewritten exactly once and its normal form recorded in a persistent
// cache, so repeat occurrences — within a term, across terms, and
// across queries when the cache is shared — are answered by one
// pointer-keyed lookup. This replaces the earlier pass-until-fixpoint
// driver, which re-walked the whole term every global pass.
//
// A Simplifier records per-rule fire counts in Stats; it may be reused
// across terms (counts accumulate until Reset). Because rewriting is
// memoized per distinct subterm, fire counts are per distinct subterm
// normalized for the input's dependency closure, not per occurrence.
type Simplifier struct {
	// MaxPasses bounds the number of equality-propagation rounds run
	// at any single conjunction (each round substitutes the unit
	// bindings into sibling conjuncts and re-normalizes what changed).
	// The default of 64 is far above what any seed specification in
	// the experiments needs; the bound exists so a hypothetical
	// non-terminating rule interaction degrades to a sound non-minimal
	// result instead of a hang.
	MaxPasses int
	// Stats counts how many times each rule fired, accumulated across
	// Simplify calls. Counts are per distinct subterm in the input's
	// normalization closure and are reconstructed deterministically
	// from the cache, so they do not depend on cache warmth.
	Stats map[RuleName]int
	// Passes reports 1 + the maximum number of equality-propagation
	// rounds any conjunction in the last input needed — the depth of
	// iterative work the old fixpoint driver would have spread over
	// global passes.
	Passes int
	// DisableEqPropagation turns off rule S14 (equality propagation),
	// the ablation knob for the experiment that measures how much of
	// the reduction that single rule carries.
	DisableEqPropagation bool
	// Trace records the size of the last result (a one-element trace;
	// the single-pass normalizer has no per-pass intermediate sizes).
	Trace []int

	// sharedCache, when non-nil, is an externally owned cache (for
	// example engine.Session's) consulted for default-configuration
	// runs. priv is the lazily built private cache used otherwise;
	// privCfg records the configuration its entries were computed
	// under, so flipping MaxPasses or DisableEqPropagation between
	// calls discards it instead of replaying stale results.
	sharedCache *Cache
	priv        *Cache
	privCfg     simpConfig

	// Per-run state: the cache in use, the stack of entries collecting
	// rule fires and dependency edges (top receives both), and the set
	// of terms currently being normalized (cycle guard for derived
	// terms).
	cache    *Cache
	stack    []*nfEntry
	inflight map[logic.Term]struct{}
}

// simpConfig identifies the rewriting function a cache's entries were
// computed under; caches must not be shared across configurations.
type simpConfig struct {
	maxPasses int
	noEqProp  bool
}

var defaultConfig = simpConfig{maxPasses: DefaultMaxPasses}

// New creates a Simplifier with default settings and a private
// normal-form cache that persists across its Simplify calls.
func New() *Simplifier {
	return &Simplifier{MaxPasses: DefaultMaxPasses, Stats: make(map[RuleName]int)}
}

// NewShared creates a Simplifier whose default-configuration normal
// forms are answered from — and recorded into — the given shared
// cache. The shared cache is safe for concurrent use, so any number of
// NewShared simplifiers may run in parallel over it; each Simplifier
// itself is single-goroutine state and must not be shared.
func NewShared(c *Cache) *Simplifier {
	return &Simplifier{MaxPasses: DefaultMaxPasses, Stats: make(map[RuleName]int), sharedCache: c}
}

// Reset clears accumulated statistics (the normal-form caches are
// kept: they hold facts about terms, not about runs).
func (s *Simplifier) Reset() {
	s.Stats = make(map[RuleName]int)
	s.Passes = 0
	s.Trace = nil
}

// Simplify is a convenience wrapper using a fresh Simplifier.
func Simplify(t logic.Term) logic.Term { return New().Simplify(t) }

// Simplify normalizes t under the fifteen rules. The result is
// logically equivalent to t, rendered with the first-occurrence
// argument order of every surviving conjunction and disjunction
// preserved (normalization never reorders what it keeps, so reports
// print identically whether a result was computed or recalled).
func (s *Simplifier) Simplify(t logic.Term) logic.Term {
	cfg := simpConfig{maxPasses: s.MaxPasses, noEqProp: s.DisableEqPropagation}
	if s.sharedCache != nil && cfg == defaultConfig {
		s.cache = s.sharedCache
	} else {
		if s.priv == nil || s.privCfg != cfg {
			s.priv, s.privCfg = NewCache(), cfg
		}
		s.cache = s.priv
	}
	t = logic.Intern(t)
	s.inflight = make(map[logic.Term]struct{})
	s.stack = append(s.stack[:0], &nfEntry{}) // root collector; discarded
	out := s.norm(t)
	s.stack, s.inflight = s.stack[:0], nil

	fires, rounds := s.cache.collectFrom(t)
	for i, n := range fires {
		if n > 0 {
			s.Stats[AllRules[i]] += int(n)
		}
	}
	s.Passes = int(rounds) + 1
	s.Trace = append(s.Trace[:0], logic.Size(out))
	return out
}

// fired counts a rule firing against the entry being computed.
func (s *Simplifier) fired(r RuleName) {
	s.stack[len(s.stack)-1].fires[ruleIndex[r]]++
}

// firedN counts n firings of a rule.
func (s *Simplifier) firedN(r RuleName, n int) {
	s.stack[len(s.stack)-1].fires[ruleIndex[r]] += uint32(n)
}

// dep records a dependency edge from the entry being computed to t, so
// diagnostics collected for an input reach the entries of its
// subterms and derived terms.
func (s *Simplifier) dep(t logic.Term) {
	top := s.stack[len(s.stack)-1]
	if n := len(top.deps); n > 0 && top.deps[n-1] == t {
		return
	}
	top.deps = append(top.deps, t)
}

// norm returns the normal form of the canonical term t, consulting and
// filling the cache. Leaves are their own normal forms.
func (s *Simplifier) norm(t logic.Term) logic.Term {
	a, ok := t.(*logic.Apply)
	if !ok {
		return t
	}
	if e, ok := s.cache.get(t); ok {
		s.dep(t)
		return e.out
	}
	if _, busy := s.inflight[t]; busy {
		// A derived term led back to a term still being normalized.
		// Returning it unchanged is sound (it is equivalent to itself)
		// and breaks the cycle; no entry is recorded for this path.
		return t
	}
	s.inflight[t] = struct{}{}
	e := &nfEntry{}
	s.stack = append(s.stack, e)
	e.out = s.rewriteNode(a)
	s.stack = s.stack[:len(s.stack)-1]
	delete(s.inflight, t)
	s.cache.put(t, e)
	s.dep(t)
	return e.out
}

// rewriteNode normalizes the children of a, then applies the local
// rules of a's operator. If normalizing the children changed the node,
// the rebuilt node is itself normalized (and cached) so every rule
// only ever sees nodes whose children are in normal form.
func (s *Simplifier) rewriteNode(a *logic.Apply) logic.Term {
	changed := false
	args := make([]logic.Term, len(a.Args))
	for i, c := range a.Args {
		args[i] = s.norm(c)
		if args[i] != c {
			changed = true
		}
	}
	if changed {
		return s.norm(logic.Intern(&logic.Apply{Op: a.Op, Args: args}))
	}
	switch a.Op {
	case logic.OpNot:
		return s.simplifyNot(a)
	case logic.OpAnd:
		return s.simplifyAnd(a)
	case logic.OpOr:
		return s.simplifyOr(a)
	case logic.OpImplies:
		return s.simplifyImplies(a)
	case logic.OpIff:
		return s.simplifyIff(a)
	case logic.OpIte:
		return s.simplifyIte(a)
	case logic.OpEq, logic.OpNe:
		return s.simplifyEq(a)
	case logic.OpLt, logic.OpLe, logic.OpGt, logic.OpGe:
		return s.simplifyCmp(a)
	case logic.OpAdd, logic.OpSub:
		return s.foldArith(a)
	}
	return a
}

func (s *Simplifier) simplifyNot(a *logic.Apply) logic.Term {
	arg := a.Args[0]
	// S3: negation of constants.
	if logic.IsTrue(arg) {
		s.fired(RuleNegConst)
		return logic.False
	}
	if logic.IsFalse(arg) {
		s.fired(RuleNegConst)
		return logic.True
	}
	inner, ok := arg.(*logic.Apply)
	if !ok {
		return a
	}
	switch inner.Op {
	case logic.OpNot:
		// S2: double negation. The inner argument is already normal.
		s.fired(RuleDoubleNeg)
		return inner.Args[0]
	case logic.OpEq:
		// S15: !(a = b) -> a != b; the derived comparison may simplify
		// further (enum complement, domain folds), so it is normalized.
		s.fired(RuleNegNormal)
		return s.norm(logic.Ne(inner.Args[0], inner.Args[1]))
	case logic.OpNe:
		s.fired(RuleNegNormal)
		return s.norm(logic.Eq(inner.Args[0], inner.Args[1]))
	case logic.OpLt:
		s.fired(RuleNegNormal)
		return s.norm(logic.Ge(inner.Args[0], inner.Args[1]))
	case logic.OpLe:
		s.fired(RuleNegNormal)
		return s.norm(logic.Gt(inner.Args[0], inner.Args[1]))
	case logic.OpGt:
		s.fired(RuleNegNormal)
		return s.norm(logic.Le(inner.Args[0], inner.Args[1]))
	case logic.OpGe:
		s.fired(RuleNegNormal)
		return s.norm(logic.Lt(inner.Args[0], inner.Args[1]))
	}
	return a
}

// simplifyAnd normalizes a conjunction whose conjuncts are already
// normal: it loops flatten/dedup (S4), complement (S6), absorption
// (S13), and one equality-propagation round (S14) until the operand
// list is stable. The loop replaces the old driver's global passes —
// iteration happens only at conjunctions that actually need it, and
// substituted conjuncts are re-normalized through the cache.
func (s *Simplifier) simplifyAnd(a *logic.Apply) logic.Term {
	args := a.Args
	anyChange := false
	for round := 0; ; round++ {
		// S4: flatten nested &, drop true, collapse on false, dedup.
		flat, actions, collapsed := logic.FlatAnd(args)
		if collapsed {
			s.firedN(RuleAndIdentity, actions)
			return logic.False
		}
		if actions > 0 {
			s.firedN(RuleAndIdentity, actions)
			anyChange = true
			args = flat
		} else {
			args = flat
		}
		// S6: complement law, one set probe per negated conjunct.
		set := logic.NewTermSet(args)
		for _, x := range args {
			if nx, ok := x.(*logic.Apply); ok && nx.Op == logic.OpNot && set.Has(nx.Args[0]) {
				s.fired(RuleComplement)
				return logic.False
			}
		}
		// S13: absorption — drop any disjunction conjunct containing
		// another conjunct as a disjunct.
		if filtered, fired := absorb(args, set, logic.OpOr); fired {
			s.fired(RuleAbsorption)
			anyChange = true
			args = filtered
		}
		// S14: one equality-propagation round; re-enter the loop only
		// while substitution changes something (bounded by MaxPasses).
		if s.DisableEqPropagation || round >= s.MaxPasses {
			break
		}
		subArgs, changed := s.propagateOnce(args)
		if !changed {
			break
		}
		s.fired(RuleEqPropagation)
		s.stack[len(s.stack)-1].rounds++
		anyChange = true
		args = make([]logic.Term, len(subArgs))
		for i, c := range subArgs {
			args[i] = s.norm(c)
		}
	}
	if !anyChange {
		return a
	}
	return logic.And(args...)
}

// simplifyOr is the disjunction dual of simplifyAnd (no propagation:
// S14 is a conjunction rule).
func (s *Simplifier) simplifyOr(a *logic.Apply) logic.Term {
	args := a.Args
	anyChange := false
	// S5: flatten nested |, drop false, collapse on true, dedup.
	flat, actions, collapsed := logic.FlatOr(args)
	if collapsed {
		s.firedN(RuleOrIdentity, actions)
		return logic.True
	}
	if actions > 0 {
		s.firedN(RuleOrIdentity, actions)
		anyChange = true
	}
	args = flat
	// S6: complement law.
	set := logic.NewTermSet(args)
	for _, x := range args {
		if nx, ok := x.(*logic.Apply); ok && nx.Op == logic.OpNot && set.Has(nx.Args[0]) {
			s.fired(RuleComplement)
			return logic.True
		}
	}
	// S13: absorption (dual).
	if filtered, fired := absorb(args, set, logic.OpAnd); fired {
		s.fired(RuleAbsorption)
		anyChange = true
		args = filtered
	}
	if !anyChange {
		return a
	}
	return logic.Or(args...)
}

// isComplement reports whether x and y are negations of each other
// (terms are canonical, so the inner comparison is by pointer).
func isComplement(x, y logic.Term) bool {
	if nx, ok := x.(*logic.Apply); ok && nx.Op == logic.OpNot && nx.Args[0] == y {
		return true
	}
	if ny, ok := y.(*logic.Apply); ok && ny.Op == logic.OpNot && ny.Args[0] == x {
		return true
	}
	return false
}

// absorb removes from args any term of the given inner operator that
// contains another member of args among its operands:
// for And-level (inner = Or):  a & (a | b)  ->  a
// for Or-level  (inner = And): a | (a & b)  ->  a
// set must be the membership set of args; each operand check is one
// probe instead of a scan over args.
func absorb(args []logic.Term, set logic.TermSet, inner logic.Op) ([]logic.Term, bool) {
	fired := false
	out := make([]logic.Term, 0, len(args))
	for _, cand := range args {
		app, ok := cand.(*logic.Apply)
		absorbed := false
		if ok && app.Op == inner {
			for _, operand := range app.Args {
				// operand can never be cand itself (a term cannot
				// contain itself), so probing the full set is exact.
				if set.Has(operand) {
					absorbed = true
					break
				}
			}
		}
		if absorbed {
			fired = true
			continue
		}
		out = append(out, cand)
	}
	return out, fired
}

// propagateOnce implements one round of rule S14 over the conjuncts:
// when a conjunct pins a variable (x, !x, x = literal, or literal =
// x), the binding is substituted into the sibling conjuncts. The
// defining conjunct itself keeps its own variable, so the rewrite is
// equivalence-preserving; re-normalization of the changed conjuncts
// then collapses the substituted occurrences. Only the defining
// occurrence is shielded: a second conjunct binding the same variable
// to a different value does receive the substitution, so x = a & x = b
// collapses through a = b to false.
func (s *Simplifier) propagateOnce(args []logic.Term) ([]logic.Term, bool) {
	bindings := map[string]logic.Term{}
	definer := map[string]int{}
	for i, c := range args {
		if name, val, ok := unitBinding(c); ok {
			if _, dup := bindings[name]; !dup {
				bindings[name] = val
				definer[name] = i
			}
		}
	}
	if len(bindings) == 0 {
		return args, false
	}
	// One mask serves every conjunct: temporarily removing the defining
	// entry only shrinks the substitution, and an over-wide mask is
	// sound (it just prunes less).
	mask := logic.SubMask(bindings)
	changed := false
	out := make([]logic.Term, len(args))
	for i, c := range args {
		// Do not substitute inside the defining conjunct of the
		// binding itself; drop exactly the variable bound there.
		if name, _, ok := unitBinding(c); ok && definer[name] == i {
			val := bindings[name]
			delete(bindings, name)
			out[i] = logic.SubstituteMasked(c, bindings, mask)
			bindings[name] = val
		} else {
			out[i] = logic.SubstituteMasked(c, bindings, mask)
		}
		if out[i] != c {
			changed = true
		}
	}
	return out, changed
}

func (s *Simplifier) simplifyImplies(a *logic.Apply) logic.Term {
	l, r := a.Args[0], a.Args[1]
	switch {
	case logic.IsFalse(l), logic.IsTrue(r):
		// S7: false => a ≡ true (the rule the paper quotes); a => true ≡ true.
		s.fired(RuleImplies)
		return logic.True
	case logic.IsTrue(l):
		s.fired(RuleImplies)
		return r
	case logic.IsFalse(r):
		s.fired(RuleImplies)
		return s.norm(logic.Not(l))
	case l == r:
		s.fired(RuleImplies)
		return logic.True
	}
	return a
}

func (s *Simplifier) simplifyIff(a *logic.Apply) logic.Term {
	l, r := a.Args[0], a.Args[1]
	switch {
	case l == r:
		s.fired(RuleIff)
		return logic.True
	case logic.IsTrue(l):
		s.fired(RuleIff)
		return r
	case logic.IsTrue(r):
		s.fired(RuleIff)
		return l
	case logic.IsFalse(l):
		s.fired(RuleIff)
		return s.norm(logic.Not(r))
	case logic.IsFalse(r):
		s.fired(RuleIff)
		return s.norm(logic.Not(l))
	case isComplement(l, r):
		s.fired(RuleIff)
		return logic.False
	}
	return a
}

func (s *Simplifier) simplifyIte(a *logic.Apply) logic.Term {
	c, thn, els := a.Args[0], a.Args[1], a.Args[2]
	switch {
	case logic.IsTrue(c):
		s.fired(RuleIte)
		return thn
	case logic.IsFalse(c):
		s.fired(RuleIte)
		return els
	case thn == els:
		s.fired(RuleIte)
		return thn
	case thn.Sort().IsBool() && logic.IsTrue(thn) && logic.IsFalse(els):
		s.fired(RuleIte)
		return c
	case thn.Sort().IsBool() && logic.IsFalse(thn) && logic.IsTrue(els):
		s.fired(RuleIte)
		return s.norm(logic.Not(c))
	}
	return a
}

func (s *Simplifier) simplifyEq(a *logic.Apply) logic.Term {
	l, r := a.Args[0], a.Args[1]
	ne := a.Op == logic.OpNe
	// S10: reflexivity on arbitrary terms (canonical, so a pointer
	// comparison decides structural equality).
	if l == r {
		s.fired(RuleEqRefl)
		return logic.NewBool(!ne)
	}
	// S11: distinct literals decide the (dis)equality.
	if logic.IsLit(l) && logic.IsLit(r) {
		s.fired(RuleEqConst)
		eq := literalsEqual(l, r)
		if ne {
			eq = !eq
		}
		return logic.NewBool(eq)
	}
	// S1 adjunct: boolean equality with a constant folds to the other
	// side (x = true -> x, x = false -> !x), counted as const folding.
	if l.Sort().IsBool() {
		if logic.IsTrue(l) || logic.IsTrue(r) || logic.IsFalse(l) || logic.IsFalse(r) {
			s.fired(RuleConstFold)
			other, konst := l, r
			if logic.IsLit(l) {
				other, konst = r, l
			}
			truth := logic.IsTrue(konst)
			if ne {
				truth = !truth
			}
			if truth {
				return other
			}
			return s.norm(logic.Not(other))
		}
	}
	// S12: integer equality decided by domain disjointness.
	if decided, val := domainDecidesEq(l, r); decided {
		s.fired(RuleDomainFold)
		if ne {
			val = !val
		}
		return logic.NewBool(val)
	}
	// S12 (enum complement): over a two-valued enumeration,
	// x != v is x = v' — normalizing to the positive form lets
	// equality propagation (S14) pick the binding up.
	if ne {
		if folded := enumComplement(l, r); folded != nil {
			s.fired(RuleDomainFold)
			return folded
		}
		if folded := enumComplement(r, l); folded != nil {
			s.fired(RuleDomainFold)
			return folded
		}
	}
	return a
}

// enumComplement rewrites x != v into x = v' when x's enum sort has
// exactly two values; returns nil when not applicable.
func enumComplement(x, v logic.Term) logic.Term {
	xv, ok := x.(*logic.Var)
	if !ok || !xv.S.IsEnum() || len(xv.S.Values) != 2 {
		return nil
	}
	lit, ok := v.(*logic.EnumLit)
	if !ok {
		return nil
	}
	other := xv.S.Values[0]
	if other == lit.Val {
		other = xv.S.Values[1]
	}
	return logic.Eq(xv, logic.NewEnum(xv.S, other))
}

func literalsEqual(l, r logic.Term) bool {
	switch x := l.(type) {
	case *logic.BoolLit:
		y, ok := r.(*logic.BoolLit)
		return ok && x.Val == y.Val
	case *logic.IntLit:
		y, ok := r.(*logic.IntLit)
		return ok && x.Val == y.Val
	case *logic.EnumLit:
		y, ok := r.(*logic.EnumLit)
		return ok && x.Val == y.Val
	}
	return false
}

// domainDecidesEq reports whether an integer equality between a
// variable and a literal (or two variables) is decided purely by the
// declared domains: disjoint ranges make it false. It never returns
// decided=true with val=true, because overlap does not force equality.
func domainDecidesEq(l, r logic.Term) (decided, val bool) {
	lo1, hi1, ok1 := intRange(l)
	lo2, hi2, ok2 := intRange(r)
	if !ok1 || !ok2 {
		return false, false
	}
	if hi1 < lo2 || hi2 < lo1 {
		return true, false
	}
	return false, false
}

// intRange returns the inclusive value range of an integer term if it
// is a literal or a domain-carrying variable.
func intRange(t logic.Term) (lo, hi int64, ok bool) {
	switch n := t.(type) {
	case *logic.IntLit:
		return n.Val, n.Val, true
	case *logic.Var:
		if n.S.IsInt() && (n.Lo != 0 || n.Hi != 0) {
			return n.Lo, n.Hi, true
		}
	}
	return 0, 0, false
}

func (s *Simplifier) simplifyCmp(a *logic.Apply) logic.Term {
	l, r := a.Args[0], a.Args[1]
	// S1: fold literal comparisons.
	ll, lok := l.(*logic.IntLit)
	rl, rok := r.(*logic.IntLit)
	if lok && rok {
		s.fired(RuleConstFold)
		var v bool
		switch a.Op {
		case logic.OpLt:
			v = ll.Val < rl.Val
		case logic.OpLe:
			v = ll.Val <= rl.Val
		case logic.OpGt:
			v = ll.Val > rl.Val
		default:
			v = ll.Val >= rl.Val
		}
		return logic.NewBool(v)
	}
	// S10 analog: t < t is false, t <= t is true.
	if l == r {
		s.fired(RuleEqRefl)
		return logic.NewBool(a.Op == logic.OpLe || a.Op == logic.OpGe)
	}
	// S12: domain-decided comparisons.
	if lo1, hi1, ok1 := intRange(l); ok1 {
		if lo2, hi2, ok2 := intRange(r); ok2 {
			switch a.Op {
			case logic.OpLt:
				if hi1 < lo2 {
					s.fired(RuleDomainFold)
					return logic.True
				}
				if lo1 >= hi2 {
					s.fired(RuleDomainFold)
					return logic.False
				}
			case logic.OpLe:
				if hi1 <= lo2 {
					s.fired(RuleDomainFold)
					return logic.True
				}
				if lo1 > hi2 {
					s.fired(RuleDomainFold)
					return logic.False
				}
			case logic.OpGt:
				if lo1 > hi2 {
					s.fired(RuleDomainFold)
					return logic.True
				}
				if hi1 <= lo2 {
					s.fired(RuleDomainFold)
					return logic.False
				}
			case logic.OpGe:
				if lo1 >= hi2 {
					s.fired(RuleDomainFold)
					return logic.True
				}
				if hi1 < lo2 {
					s.fired(RuleDomainFold)
					return logic.False
				}
			}
		}
	}
	return a
}

func (s *Simplifier) foldArith(a *logic.Apply) logic.Term {
	// S1: fold arithmetic over integer literals.
	allLits := true
	for _, arg := range a.Args {
		if _, ok := arg.(*logic.IntLit); !ok {
			allLits = false
			break
		}
	}
	if !allLits {
		return a
	}
	s.fired(RuleConstFold)
	if a.Op == logic.OpSub {
		return logic.NewInt(a.Args[0].(*logic.IntLit).Val - a.Args[1].(*logic.IntLit).Val)
	}
	var sum int64
	for _, arg := range a.Args {
		sum += arg.(*logic.IntLit).Val
	}
	return logic.NewInt(sum)
}

// unitBinding recognizes conjuncts that pin a single variable to a
// literal value: x (bool), !x, x = lit, lit = x.
func unitBinding(t logic.Term) (name string, val logic.Term, ok bool) {
	switch n := t.(type) {
	case *logic.Var:
		if n.S.IsBool() {
			return n.Name, logic.True, true
		}
	case *logic.Apply:
		switch n.Op {
		case logic.OpNot:
			if v, ok := n.Args[0].(*logic.Var); ok && v.S.IsBool() {
				return v.Name, logic.False, true
			}
		case logic.OpEq:
			if v, ok := n.Args[0].(*logic.Var); ok && logic.IsLit(n.Args[1]) {
				return v.Name, n.Args[1], true
			}
			if v, ok := n.Args[1].(*logic.Var); ok && logic.IsLit(n.Args[0]) {
				return v.Name, n.Args[0], true
			}
		}
	}
	return "", nil, false
}
