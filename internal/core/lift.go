package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/logic"
	"repro/internal/sat"
	"repro/internal/smt"
	"repro/internal/spec"
	"repro/internal/synth"
)

// Lifting — the paper's step 4, which it outlines and leaves as future
// work — searches the specification language for a subspecification
// consistent with the (simplified) seed. The implementation here:
//
//  1. Enumerates candidate clauses from the device's local route
//     vocabulary: blanket announcement blocks "!(R->nb)", per-route
//     blocks (propagation-path prefixes crossing the device), and
//     pairwise route preferences at the device.
//  2. Encodes each candidate as a term over the device's symbolic
//     variables, using the same PathInfo machinery as the encoder.
//  3. Keeps exactly the clauses that are NECESSARY (every completion
//     of the device satisfying the seed satisfies the clause — checked
//     by the SMT solver: seed AND NOT(clause) is unsatisfiable) and
//     NOT VACUOUS (some completion violates the clause).
//  4. Prunes redundant clauses (implied by the remaining ones) and
//     verifies sufficiency by enumerating the models of the lifted
//     subspecification and checking each extends to a seed model.
//
// Clause conventions (see EXPERIMENTS.md for the mapping to the
// paper's figures, whose ordering of local paths is not uniform):
// forbid clauses are written in route-propagation order — "!(R1->P1)"
// means R1 announces nothing to P1, as in Figure 2 — while preference
// clauses are written in traffic order from the device, as in
// Figure 4.
type liftCandidate struct {
	req  spec.Requirement
	term logic.Term
	// width orders candidates general-first for redundancy pruning.
	width int
}

// MaxSufficiencyModels is the default bound on the model enumeration
// of the sufficiency check, used when the explainer's Budget does not
// set MaxModels.
const MaxSufficiencyModels = engine.DefaultMaxModels

// lift runs the lifting pipeline for the router's explanation. key is
// the encoding's session cache key; the solvers lift uses are pooled
// under it, so a repeat query against the same encoding starts from
// warm solvers instead of re-encoding and re-learning from scratch.
func (e *Explainer) lift(ctx context.Context, router, key string, enc *synth.Encoding, ex *Explanation) (*spec.Block, bool, error) {
	block := &spec.Block{Name: router}
	if len(ex.HoleVars) == 0 {
		// Nothing symbolic: the device is unconstrained by
		// construction — the paper's empty subspecification.
		return block, true, nil
	}
	holeNames := map[string]bool{}
	for n := range ex.HoleVars {
		holeNames[n] = true
	}
	holeVars := sortedHoleVars(ex.HoleVars)

	cands, err := e.liftCandidates(router, enc, holeNames)
	if err != nil {
		return nil, false, err
	}

	// Seed solver for necessity and extendability checks, checked out
	// warm from the session pool when a previous query against the same
	// encoding left one behind.
	seedSolver, seedRelease, err := e.checkoutSolver("seed|"+key, seedSolverBuild(enc))
	if err != nil {
		return nil, false, err
	}
	defer seedRelease()
	if st, err := seedSolver.SolveContext(ctx); err != nil || st != sat.Sat {
		if err != nil {
			return nil, false, err
		}
		return nil, false, fmt.Errorf("core: seed specification unsatisfiable or error (%v)", st)
	}

	// Domain solver (hole domains only) for vacuity checks and the
	// sufficiency enumeration, pooled like the seed solver; temporary
	// constraints go through guarded asserts, so it survives between
	// query families without accumulating stale assertions.
	domSolver, domRelease, err := e.checkoutSolver("domain|"+key, func(s *smt.Solver) error {
		for _, v := range holeVars {
			if err := s.Declare(v); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, false, err
	}
	defer domRelease()

	// Decide NOT VACUOUS and NECESSARY for every candidate across the
	// worker pool. Verdicts land in candidate order, so the accepted
	// list — and everything downstream — is byte-identical for every
	// worker count.
	verdicts := make([]bool, len(cands))
	err = e.runChecks(ctx, len(cands), []*smt.Solver{seedSolver, domSolver},
		func(ctx context.Context, solvers []*smt.Solver, i int, lats *[]time.Duration) error {
			seed, dom := solvers[0], solvers[1]
			// Vacuous: no completion violates it.
			st, err := timedSolve(ctx, dom, lats, logic.Not(cands[i].term))
			if err != nil {
				return err
			}
			if st != sat.Sat {
				if st == sat.Unsat {
					// The drop verdict rests on an Unsat: check it.
					if err := e.verifyUnsat(dom); err != nil {
						return err
					}
				}
				return nil // tautological over the hole space: says nothing
			}
			// Necessary: seed forces it.
			st, err = timedSolve(ctx, seed, lats, logic.Not(cands[i].term))
			if err != nil {
				return err
			}
			if st == sat.Unsat {
				if err := e.verifyUnsat(seed); err != nil {
					return err
				}
			}
			verdicts[i] = st == sat.Unsat
			return nil
		})
	if err != nil {
		return nil, false, err
	}
	var accepted []liftCandidate
	for i, ok := range verdicts {
		if ok {
			accepted = append(accepted, cands[i])
		}
	}

	// Redundancy pruning. A forbid whose pattern extends another
	// accepted forbid with more origin-side context (the shorter
	// pattern is a suffix of the longer) is implied by it — same final
	// edge, fewer matching routes — and is dropped. Distinct routes
	// are kept separately even when their encodings coincide, matching
	// the per-route granularity of the paper's Figure 5.
	sort.SliceStable(accepted, func(i, j int) bool {
		if accepted[i].width != accepted[j].width {
			return accepted[i].width < accepted[j].width
		}
		return accepted[i].req.String() < accepted[j].req.String()
	})
	var forbids []spec.Path
	for _, c := range accepted {
		if f, ok := c.req.(*spec.Forbid); ok {
			forbids = append(forbids, f.Path)
		}
	}
	var final []liftCandidate
	for _, c := range accepted {
		f, ok := c.req.(*spec.Forbid)
		if !ok {
			// A preference about routes that accepted forbids already
			// block explains nothing — drop it.
			if p, ok := c.req.(*spec.Preference); ok && preferenceBlocked(p, forbids) {
				continue
			}
			final = append(final, c)
			continue
		}
		redundant := false
		for _, kept := range final {
			kf, ok := kept.req.(*spec.Forbid)
			if ok && isPathSuffix(kf.Path, f.Path) {
				redundant = true
				break
			}
		}
		if !redundant {
			final = append(final, c)
		}
	}
	for _, c := range final {
		block.Reqs = append(block.Reqs, c.req)
	}
	block.Scope = commonScope(router, block)

	var complete bool
	if len(final) == 0 {
		// Empty subspecification: the device claims to be
		// unconstrained. Model-enumerating the full hole space is
		// infeasible, but no necessary clause over the candidate
		// vocabulary exists, so it suffices to check per-variable
		// extendability: every value of every variable participates
		// in some valid completion.
		complete, err = e.checkUnconstrained(ctx, holeVars, seedSolver)
	} else {
		complete, err = e.checkSufficiency(ctx, holeVars, final, seedSolver, domSolver)
	}
	if err != nil {
		return nil, false, err
	}
	return block, complete, nil
}

// checkUnconstrained verifies that each value of each symbolic
// variable extends to a model of the seed. The probes are independent
// assumption queries and fan out across the lift worker pool.
func (e *Explainer) checkUnconstrained(ctx context.Context, holeVars []*logic.Var, seedSolver *smt.Solver) (bool, error) {
	type probe struct {
		v   *logic.Var
		val logic.Term
	}
	var probes []probe
	for _, v := range holeVars {
		switch {
		case v.S.IsBool():
			probes = append(probes, probe{v, logic.True}, probe{v, logic.False})
		case v.S.IsInt():
			for x := v.Lo; x <= v.Hi; x++ {
				probes = append(probes, probe{v, logic.NewInt(x)})
			}
		default:
			for _, val := range v.S.Values {
				probes = append(probes, probe{v, logic.NewEnum(v.S, val)})
			}
		}
	}
	verdicts := make([]bool, len(probes))
	err := e.runChecks(ctx, len(probes), []*smt.Solver{seedSolver},
		func(ctx context.Context, solvers []*smt.Solver, i int, lats *[]time.Duration) error {
			st, err := timedSolve(ctx, solvers[0], lats, logic.Eq(probes[i].v, probes[i].val))
			if err != nil {
				return err
			}
			if st == sat.Unsat {
				// "This value never extends" is an Unsat claim: check it.
				if err := e.verifyUnsat(solvers[0]); err != nil {
					return err
				}
			}
			verdicts[i] = st == sat.Sat
			return nil
		})
	if err != nil {
		return false, err
	}
	for _, ok := range verdicts {
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// commonScope detects the Figure 5 situation — every clause of the
// block is a forbid ending at the same neighbor of the router — and
// returns that neighbor as the block's interface scope ("R2 to P2").
func commonScope(router string, block *spec.Block) string {
	if len(block.Reqs) == 0 {
		return ""
	}
	scope := ""
	for _, r := range block.Reqs {
		f, ok := r.(*spec.Forbid)
		if !ok || len(f.Path) < 2 {
			return ""
		}
		last := f.Path[len(f.Path)-1]
		prev := f.Path[len(f.Path)-2]
		if prev != router || last == spec.Wildcard {
			return ""
		}
		if scope == "" {
			scope = last
		} else if scope != last {
			return ""
		}
	}
	return scope
}

// checkSufficiency enumerates models of the lifted subspecification
// over the hole variables and verifies each extends to a model of the
// seed. Returns false (without error) when the enumeration exceeds its
// budget.
//
// The subspecification clauses are asserted under guards on the warm
// domain solver, and the enumeration's blocking clauses are scoped to
// the walk, so the solver emerges unconstrained again (plus learnt
// clauses, which stay sound) and goes back to the pool.
func (e *Explainer) checkSufficiency(ctx context.Context, holeVars []*logic.Var, final []liftCandidate, seedSolver, domSolver *smt.Solver) (bool, error) {
	guards := make([]smt.Guard, 0, len(final))
	defer func() {
		for _, g := range guards {
			domSolver.Retract(g)
		}
	}()
	for _, c := range final {
		g, err := domSolver.AssertGuarded(c.term)
		if err != nil {
			return false, err
		}
		guards = append(guards, g)
	}
	var lats []time.Duration
	defer func() { e.addLiftQueries(lats) }()
	sufficient := true
	var checkErr error
	_, exhausted, err := domSolver.EnumerateModelsRetractableContext(ctx, holeVars, e.Opts.Budget.ModelCap(), func(m logic.Assignment) bool {
		// Does this device behavior extend to a full seed model?
		var assume []logic.Term
		for _, v := range holeVars {
			assume = append(assume, logic.Eq(v, m[v.Name].Term()))
		}
		st, err := timedSolve(ctx, seedSolver, &lats, assume...)
		if err != nil {
			checkErr = err
			return false
		}
		if st != sat.Sat {
			if st == sat.Unsat {
				if err := e.verifyUnsat(seedSolver); err != nil {
					checkErr = err
					return false
				}
			}
			sufficient = false // subspec admits a behavior the seed rejects
			return false
		}
		return true
	})
	if err != nil {
		return false, err
	}
	if checkErr != nil {
		return false, checkErr
	}
	if !sufficient {
		return false, nil
	}
	// Exhausted means the enumeration's final solve came back Unsat —
	// no admitted behavior is left — so completeness itself rests on an
	// Unsat verdict; check its proof before reporting it.
	if exhausted {
		if err := e.verifyUnsat(domSolver); err != nil {
			return false, err
		}
	}
	// Otherwise the budget ran out and sufficiency is unknown.
	return exhausted, nil
}

// preferenceBlocked reports whether either side of the preference is a
// route an accepted forbid blocks. Subspec preferences are written in
// traffic order; forbids in route order, so the comparison reverses.
func preferenceBlocked(p *spec.Preference, forbids []spec.Path) bool {
	for _, traffic := range p.Paths {
		route := make([]string, len(traffic))
		for i, n := range traffic {
			route[len(traffic)-1-i] = n
		}
		for _, f := range forbids {
			if spec.MatchesSubpath(f, route) {
				return true
			}
		}
	}
	return false
}

// isPathSuffix reports whether short is a suffix of long (strictly
// shorter).
func isPathSuffix(short, long spec.Path) bool {
	if len(short) >= len(long) {
		return false
	}
	off := len(long) - len(short)
	for i := range short {
		if long[off+i] != short[i] {
			return false
		}
	}
	return true
}

// liftCandidates enumerates candidate subspecification clauses for the
// router.
func (e *Explainer) liftCandidates(router string, enc *synth.Encoding, holeNames map[string]bool) ([]liftCandidate, error) {
	infos := enc.PathInfos()
	simp := e.normalizer()
	var out []liftCandidate
	seen := map[string]bool{}

	add := func(req spec.Requirement, term logic.Term, width int) {
		key := req.String()
		if seen[key] {
			return
		}
		seen[key] = true
		t := simp.Simplify(term)
		// Candidates must speak about the device's variables:
		// constants or other-device terms explain nothing.
		if !mentionsAny(t, holeNames) {
			return
		}
		out = append(out, liftCandidate{req: req, term: t, width: width})
	}
	addForbid := func(pattern spec.Path) {
		term, occurs := e.forbidTerm(infos, pattern)
		if occurs {
			add(&spec.Forbid{Path: pattern}, term, len(pattern))
		}
	}

	// (a) Blanket announcement blocks: !(R->nb).
	for _, nb := range e.Net.Neighbors(router) {
		addForbid(spec.NewPath(router, nb))
	}

	// (b) Per-route blocks: every propagation-path prefix through a
	// hop adjacent to the router, written origin-side first.
	var patKeys []string
	seenPat := map[string]bool{}
	for _, info := range infos {
		for i := 0; i+1 < len(info.Path); i++ {
			if info.Path[i] != router && info.Path[i+1] != router {
				continue
			}
			if e.Opts.MaxPatternNodes > 0 && i+2 > e.Opts.MaxPatternNodes {
				continue
			}
			pat := strings.Join(info.Path[:i+2], "->")
			if !seenPat[pat] {
				seenPat[pat] = true
				patKeys = append(patKeys, pat)
			}
		}
	}
	sort.Strings(patKeys)
	for _, p := range patKeys {
		path, err := spec.ParsePath(p)
		if err != nil {
			return nil, err
		}
		addForbid(path)
	}

	// (c) Pairwise route preferences at the router, in traffic order.
	byPrefix := map[string][]synth.PathInfo{}
	for _, info := range infos {
		if info.Path[len(info.Path)-1] == router {
			byPrefix[info.Prefix] = append(byPrefix[info.Prefix], info)
		}
	}
	prefixes := make([]string, 0, len(byPrefix))
	for p := range byPrefix {
		prefixes = append(prefixes, p)
	}
	sort.Strings(prefixes)
	for _, prefix := range prefixes {
		list := byPrefix[prefix]
		for i := range list {
			for j := range list {
				if i == j {
					continue
				}
				a, b := list[i], list[j]
				// Only compare routes arriving via different
				// neighbors: same-neighbor pairs are internal detail.
				if len(a.Path) < 2 || len(b.Path) < 2 ||
					a.Path[len(a.Path)-2] == b.Path[len(b.Path)-2] {
					continue
				}
				req := &spec.Preference{Paths: []spec.Path{
					spec.NewPath(a.Traffic()...),
					spec.NewPath(b.Traffic()...),
				}}
				add(req, synth.PreferredTerm(a, b, e.Net), len(a.Path)+len(b.Path))
			}
		}
	}
	return out, nil
}
