package sat

import (
	"math/rand"
	"testing"
)

// The microbenchmarks below are the SAT-level half of the satcore
// performance story (BENCH_satcore.json): each one isolates a hot path
// the Glucose-class upgrade targets — binary-clause propagation,
// learnt-database reduction, and raw search on hard instances. They
// are fully deterministic (fixed seeds, no wall-clock dependence) so
// before/after runs compare the same work.

// Named seeds for the random-3SAT benchmark generators. The BENCH_*.json
// methodology notes refer to these by name: the "hard" seed pins the
// near-transition unsat instance every before/after comparison races on,
// the "sat" seed pins the below-transition satisfiable instance. Changing
// either invalidates every recorded baseline.
const (
	benchSeedHard3SAT int64 = 7 // 130 vars, 559 clauses, ratio ~4.3 (unsat)
	benchSeedSat3SAT  int64 = 3 // 200 vars, 800 clauses, ratio 4.0 (sat)
)

// addRandom3SAT asserts a fixed random 3-SAT instance over nVars fresh
// variables.
func addRandom3SAT(s *Solver, nVars, nClauses int, seed int64) {
	r := rand.New(rand.NewSource(seed))
	vars := newVars(s, nVars)
	for i := 0; i < nClauses; i++ {
		a := Var(r.Intn(nVars))
		b := Var(r.Intn(nVars))
		c := Var(r.Intn(nVars))
		s.AddClause(MkLit(vars[a], r.Intn(2) == 0), MkLit(vars[b], r.Intn(2) == 0), MkLit(vars[c], r.Intn(2) == 0))
	}
}

// BenchmarkSolvePigeonhole measures raw CDCL search on PHP(8,7):
// unsatisfiable, conflict-analysis heavy, zero binary clauses beyond
// the at-most-one pairs.
func BenchmarkSolvePigeonhole(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewSolver()
		pigeonhole(s, 8, 7)
		if s.Solve() != Unsat {
			b.Fatal("PHP(8,7) must be unsat")
		}
	}
}

// BenchmarkSolveRandom3SATHard measures search on a hard random 3-SAT
// instance near the phase transition (ratio ~4.3). The instance is
// large enough to trigger repeated learnt-database reductions, so
// clause-management cost (sorting, tier selection) shows up here too.
func BenchmarkSolveRandom3SATHard(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewSolver()
		addRandom3SAT(s, 130, 559, benchSeedHard3SAT)
		if s.Solve() == Unknown {
			b.Fatal("unexpected Unknown without a budget")
		}
	}
}

// BenchmarkSolveRandom3SATSat measures search on a satisfiable random
// instance below the transition (ratio 4.0), where restarts and phase
// saving dominate.
func BenchmarkSolveRandom3SATSat(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewSolver()
		addRandom3SAT(s, 200, 800, benchSeedSat3SAT)
		if s.Solve() == Unknown {
			b.Fatal("unexpected Unknown without a budget")
		}
	}
}

// BenchmarkPropagateBinaryChain measures pure binary-clause
// propagation: a long implication chain x0 -> x1 -> ... -> xn driven
// back and forth by alternating assumption solves. Every propagation
// is a two-literal clause, so this is the direct before/after probe
// for the dedicated binary implication lists.
func BenchmarkPropagateBinaryChain(b *testing.B) {
	const n = 4000
	s := NewSolver()
	vars := newVars(s, n)
	for i := 0; i+1 < n; i++ {
		s.AddClause(NegLit(vars[i]), PosLit(vars[i+1]))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Solve(PosLit(vars[0])) != Sat {
			b.Fatal("chain head assumption must be sat")
		}
		if s.Solve(NegLit(vars[n-1])) != Sat {
			b.Fatal("chain tail assumption must be sat")
		}
	}
}

// BenchmarkPropagateExactlyOneGrid mimics the SMT layer's dominant
// clause shape: chains of exactly-one value groups (pairwise at-most-
// one is all binary clauses) linked by binary equalities, solved under
// alternating assumptions. This is what bit-blasted finite-domain
// encodings look like to the SAT core.
func BenchmarkPropagateExactlyOneGrid(b *testing.B) {
	const groups, width = 400, 6
	s := NewSolver()
	grid := make([][]Lit, groups)
	for g := range grid {
		vs := newVars(s, width)
		lits := make([]Lit, width)
		for i, v := range vs {
			lits[i] = PosLit(v)
		}
		grid[g] = lits
		s.AddClause(lits...) // at least one
		for i := 0; i < width; i++ {
			for j := i + 1; j < width; j++ {
				s.AddClause(lits[i].Neg(), lits[j].Neg())
			}
		}
	}
	// Link consecutive groups: picking value i in group g forces value
	// i in group g+1 (all binary clauses).
	for g := 0; g+1 < groups; g++ {
		for i := 0; i < width; i++ {
			s.AddClause(grid[g][i].Neg(), grid[g+1][i])
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Solve(grid[0][i%width]) != Sat {
			b.Fatal("grid assumption must be sat")
		}
	}
}

// BenchmarkAssumptionCores measures Unsat-under-assumptions queries —
// the shape of every lift-stage necessity probe: a shared formula, a
// stream of failing assumption sets, core extraction each time.
func BenchmarkAssumptionCores(b *testing.B) {
	s := NewSolver()
	vars := newVars(s, 64)
	// xi -> xi+1 chain plus a clause forbidding the far end under x0.
	for i := 0; i+1 < len(vars); i++ {
		s.AddClause(NegLit(vars[i]), PosLit(vars[i+1]))
	}
	s.AddClause(NegLit(vars[0]), NegLit(vars[len(vars)-1]))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Solve(PosLit(vars[0]), PosLit(vars[1])) != Unsat {
			b.Fatal("assumptions must fail")
		}
		if len(s.Core()) == 0 {
			b.Fatal("missing core")
		}
	}
}
