package core

import (
	"testing"

	"repro/internal/scenarios"
)

func TestExplainComplementScenario2(t *testing.T) {
	// Hold R3 fixed; the rest of the network must uphold the tagging
	// discipline R3's selectors rely on (the paper's Section 5
	// assume/guarantee discussion: "it is essential to ensure a route
	// is tagged with community ... if received from ...").
	sc := scenarios.Scenario2()
	dep := synthScenario(t, sc)
	e := newExplainer(t, sc, dep, nil)
	comp, err := e.ExplainComplement("R3")
	if err != nil {
		t.Fatal(err)
	}
	if comp.SeedSize <= comp.SimplifiedSize {
		t.Fatalf("no reduction: %d -> %d", comp.SeedSize, comp.SimplifiedSize)
	}
	routers := comp.Routers()
	if len(routers) == 0 {
		t.Fatal("complement yields no assumptions; R1/R2 tagging should be constrained")
	}
	for _, r := range routers {
		if r == "R3" {
			t.Fatal("complement must not constrain the focused router")
		}
		if len(comp.Assumptions[r]) == 0 {
			t.Fatalf("router %s listed without assumptions", r)
		}
	}
}

func TestExplainComplementUnknownRouter(t *testing.T) {
	sc := scenarios.Scenario1()
	dep := synthScenario(t, sc)
	e := newExplainer(t, sc, dep, nil)
	if _, err := e.ExplainComplement("R9"); err == nil {
		t.Fatal("unknown router should fail")
	}
}

func TestExplainComplementOfUnconfigured(t *testing.T) {
	// Complement of R3 in scenario 1: everything except the (empty) R3
	// config is symbolic; the assumptions are the whole job.
	sc := scenarios.Scenario1()
	dep := synthScenario(t, sc)
	e := newExplainer(t, sc, dep, nil)
	comp, err := e.ExplainComplement("R3")
	if err != nil {
		t.Fatal(err)
	}
	// Both provider-facing routers must carry assumptions (their
	// export maps enforce the no-transit intent).
	for _, want := range []string{"R1", "R2"} {
		if len(comp.Assumptions[want]) == 0 {
			t.Errorf("%s has no assumptions in the complement of R3", want)
		}
	}
}
