package main

import (
	"strings"
	"testing"
)

// TestRunExitCodes pins the shared cmd convention: missing or
// contradictory problem selection and unknown scenarios/workloads are
// usage errors (2) with the complaint on stderr.
func TestRunExitCodes(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("no problem selected: exit %d, want 2 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "netsynth:") {
		t.Fatalf("error not prefixed on stderr: %q", errOut.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-scenario", "s1", "-workload", "grid:2x2"}, &out, &errOut); code != 2 {
		t.Fatalf("both -scenario and -workload: exit %d, want 2", code)
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-workload", "grid:bad"}, &out, &errOut); code != 2 {
		t.Fatalf("malformed workload: exit %d, want 2 (stderr: %s)", code, errOut.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}
