package rewrite_test

import (
	"testing"

	"repro/internal/rewrite"
	"repro/internal/scenarios"
	"repro/internal/synth"
)

// BenchmarkSimplifyNormalizer measures cold one-shot normalization of
// each paper scenario's seed specification (largest last): a fresh
// simplifier (empty normal-form cache) per iteration.
func BenchmarkSimplifyNormalizer(b *testing.B) {
	for _, name := range []string{"scenario1", "scenario2", "scenario3"} {
		b.Run(name, func(b *testing.B) {
			sc, err := scenarios.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			enc, err := synth.NewEncoder(sc.Net, sc.Sketch, synth.DefaultOptions()).Encode(sc.Requirements())
			if err != nil {
				b.Fatal(err)
			}
			seed := enc.Conjunction()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rewrite.New().Simplify(seed)
			}
		})
	}
}

// BenchmarkSimplifyWarmCache measures the same seeds answered from a
// pre-populated shared normal-form cache — the session steady state,
// where a repeat query costs one cache probe per distinct subterm it
// reaches before hitting memoized territory.
func BenchmarkSimplifyWarmCache(b *testing.B) {
	for _, name := range []string{"scenario1", "scenario2", "scenario3"} {
		b.Run(name, func(b *testing.B) {
			sc, err := scenarios.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			enc, err := synth.NewEncoder(sc.Net, sc.Sketch, synth.DefaultOptions()).Encode(sc.Requirements())
			if err != nil {
				b.Fatal(err)
			}
			seed := enc.Conjunction()
			cache := rewrite.NewCache()
			rewrite.NewShared(cache).Simplify(seed)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rewrite.NewShared(cache).Simplify(seed)
			}
		})
	}
}
