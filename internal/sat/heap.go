package sat

// varHeap is a max-heap of variables ordered by branching activity,
// with a position index so arbitrary variables can be updated or
// removed in O(log n). It is the classic MiniSat order_heap.
type varHeap struct {
	heap     []Var
	indices  []int // indices[v] = position of v in heap, or -1
	activity *[]float64
}

func newVarHeap(activity *[]float64) *varHeap {
	return &varHeap{activity: activity}
}

func (h *varHeap) less(a, b Var) bool {
	return (*h.activity)[a] > (*h.activity)[b]
}

func (h *varHeap) size() int { return len(h.heap) }

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

func (h *varHeap) contains(v Var) bool {
	return int(v) < len(h.indices) && h.indices[v] >= 0
}

// grow ensures index capacity for variable v.
func (h *varHeap) grow(v Var) {
	for len(h.indices) <= int(v) {
		h.indices = append(h.indices, -1)
	}
}

func (h *varHeap) percolateUp(i int) {
	v := h.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(v, h.heap[parent]) {
			break
		}
		h.heap[i] = h.heap[parent]
		h.indices[h.heap[i]] = i
		i = parent
	}
	h.heap[i] = v
	h.indices[v] = i
}

func (h *varHeap) percolateDown(i int) {
	v := h.heap[i]
	n := len(h.heap)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		best := left
		if right := left + 1; right < n && h.less(h.heap[right], h.heap[left]) {
			best = right
		}
		if !h.less(h.heap[best], v) {
			break
		}
		h.heap[i] = h.heap[best]
		h.indices[h.heap[i]] = i
		i = best
	}
	h.heap[i] = v
	h.indices[v] = i
}

// insert adds v if absent.
func (h *varHeap) insert(v Var) {
	h.grow(v)
	if h.contains(v) {
		return
	}
	h.heap = append(h.heap, v)
	h.indices[v] = len(h.heap) - 1
	h.percolateUp(len(h.heap) - 1)
}

// removeMax pops the highest-activity variable.
func (h *varHeap) removeMax() Var {
	v := h.heap[0]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.indices[h.heap[0]] = 0
	h.heap = h.heap[:last]
	h.indices[v] = -1
	if len(h.heap) > 0 {
		h.percolateDown(0)
	}
	return v
}

// update restores heap order after v's activity increased.
func (h *varHeap) update(v Var) {
	if h.contains(v) {
		h.percolateUp(h.indices[v])
		h.percolateDown(h.indices[v])
	}
}
