package core

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/spec"
	"repro/internal/synth"
)

// This file gives device-local subspecification clauses their formal
// meaning as terms over the device's symbolic variables, shared by the
// lifting step (which searches for clauses) and CheckSubspec (which
// validates a given clause against a configuration).
//
// A forbid clause's pattern is a route-propagation path fragment
// (origin side first). Its meaning: wherever the fragment occurs
// contiguously inside a candidate propagation path, the final edge of
// that occurrence must reject the route. A preference clause compares
// two routes arriving at the device (traffic order, device first): the
// first must win the decision process there.

// forbidTerm builds the encoding of a forbid clause over the candidate
// paths. Patterns may contain wildcards. The boolean reports whether
// the pattern occurred at all (a non-occurring pattern is vacuous).
//
// Anchoring: when the pattern's first element is a node that
// originates a prefix, the pattern describes that origin's routes and
// occurrences are anchored at the start of the propagation path
// ("!(P1->R1->R2->P2)" is about P1's announcements). Otherwise the
// pattern floats: any contiguous occurrence counts ("!(R1->P1)" blocks
// every announcement crossing that edge).
func (e *Explainer) forbidTerm(infos []synth.PathInfo, pattern spec.Path) (logic.Term, bool) {
	anchored := false
	if first := pattern.First(); first != "" && first == pattern[0] {
		if r := e.Net.Router(first); r != nil && r.HasPrefix {
			anchored = true
		}
	}
	minLen := 0 // wildcards may match zero nodes
	for _, el := range pattern {
		if el != spec.Wildcard {
			minLen++
		}
	}
	if minLen < 2 {
		minLen = 2 // an occurrence needs at least one edge
	}
	var conds []logic.Term
	for _, info := range infos {
		for s := 0; s < len(info.Path); s++ {
			if anchored && s > 0 {
				break
			}
			for end := s + minLen; end <= len(info.Path); end++ {
				if !spec.Matches(pattern, info.Path[s:end]) {
					continue
				}
				// The occurrence's final edge is Path[end-2] -> Path[end-1].
				conds = append(conds, logic.Not(info.EdgeConds[end-2]))
			}
		}
	}
	if len(conds) == 0 {
		return logic.True, false
	}
	return logic.And(logic.DedupTerms(conds)...), true
}

// preferenceTermAt resolves the preference's two routes among the
// candidates ending at router and returns the preferred-at-device
// term.
func (e *Explainer) preferenceTermAt(infos []synth.PathInfo, router string, p *spec.Preference) (logic.Term, error) {
	if len(p.Paths) != 2 {
		return nil, fmt.Errorf("core: device-local preferences are pairwise, got %d paths", len(p.Paths))
	}
	find := func(traffic spec.Path) (synth.PathInfo, error) {
		if len(traffic) == 0 || traffic[0] != router {
			return synth.PathInfo{}, fmt.Errorf("core: preference path %s does not start at %s", traffic, router)
		}
		for _, info := range infos {
			if info.Path[len(info.Path)-1] != router {
				continue
			}
			if spec.Matches(traffic, info.Traffic()) {
				return info, nil
			}
		}
		return synth.PathInfo{}, fmt.Errorf("core: no candidate route for %s at %s", traffic, router)
	}
	a, err := find(p.Paths[0])
	if err != nil {
		return nil, err
	}
	b, err := find(p.Paths[1])
	if err != nil {
		return nil, err
	}
	return synth.PreferredTerm(a, b, e.Net), nil
}

// clauseTerm builds the term of any supported subspecification clause.
func (e *Explainer) clauseTerm(infos []synth.PathInfo, router string, req spec.Requirement) (logic.Term, error) {
	switch q := req.(type) {
	case *spec.Forbid:
		t, occurs := e.forbidTerm(infos, q.Path)
		if !occurs {
			return nil, fmt.Errorf("core: forbid pattern %s matches no candidate route", q.Path)
		}
		return t, nil
	case *spec.Preference:
		return e.preferenceTermAt(infos, router, q)
	}
	return nil, fmt.Errorf("core: unsupported requirement %T", req)
}
