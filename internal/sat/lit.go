// Package sat implements a CDCL (conflict-driven clause learning)
// boolean satisfiability solver in the MiniSat tradition: two-watched
// literals, first-UIP conflict analysis with clause learning and
// non-chronological backjumping, VSIDS-style branching activity, phase
// saving, and Luby restarts.
//
// The solver is the decision engine underneath internal/smt, which
// bit-blasts the finite-domain constraints produced by the network
// synthesizer and the explanation pipeline. It is deliberately
// dependency-free (standard library only).
package sat

import "fmt"

// Var is a propositional variable index. Variables are dense,
// zero-based integers handed out by Solver.NewVar.
type Var int

// Lit is a literal: a variable together with a polarity. Internally a
// literal is 2*v for the positive literal and 2*v+1 for the negative
// one, which makes negation a single XOR and lets literals index
// watch lists directly.
type Lit int

// PosLit returns the positive literal of v.
func PosLit(v Var) Lit { return Lit(v << 1) }

// NegLit returns the negative literal of v.
func NegLit(v Var) Lit { return Lit(v<<1 | 1) }

// MkLit returns the literal of v with the given polarity (true means
// positive).
func MkLit(v Var, positive bool) Lit {
	if positive {
		return PosLit(v)
	}
	return NegLit(v)
}

// Var returns the variable underlying l.
func (l Lit) Var() Var { return Var(l >> 1) }

// IsPos reports whether l is the positive literal of its variable.
func (l Lit) IsPos() bool { return l&1 == 0 }

// Neg returns the complement of l.
func (l Lit) Neg() Lit { return l ^ 1 }

// String renders the literal as "x3" or "!x3".
func (l Lit) String() string {
	if l.IsPos() {
		return fmt.Sprintf("x%d", l.Var())
	}
	return fmt.Sprintf("!x%d", l.Var())
}

// LBool is a three-valued boolean: true, false, or undefined.
type LBool int8

const (
	// LUndef means the variable is unassigned.
	LUndef LBool = iota
	// LTrue means the variable is assigned true.
	LTrue
	// LFalse means the variable is assigned false.
	LFalse
)

// String renders the three-valued boolean.
func (b LBool) String() string {
	switch b {
	case LTrue:
		return "true"
	case LFalse:
		return "false"
	default:
		return "undef"
	}
}

func boolToLBool(b bool) LBool {
	if b {
		return LTrue
	}
	return LFalse
}

// Status is the result of a Solve call.
type Status int

const (
	// Unknown is returned when the solver hit its conflict budget
	// before deciding the instance.
	Unknown Status = iota
	// Sat means a satisfying assignment was found (readable via Value).
	Sat
	// Unsat means the instance (under the given assumptions, if any)
	// is unsatisfiable.
	Unsat
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}
