package config

import (
	"fmt"

	"repro/internal/bgp"
)

// ApplyRouteMap runs a route through the named route map of the
// configuration: the first clause whose match lines all hold decides;
// a deny clause (or no matching clause) drops the route; a permit
// clause applies its set lines. The input route is mutated and
// returned, matching the bgp.PolicyProvider contract of operating on
// private copies.
//
// It panics if the route map or any referenced prefix list is missing,
// or if the map still contains holes — those are programming errors in
// this codebase, not data errors: synthesized configurations are
// validated before application.
func (c *Config) ApplyRouteMap(name string, r *bgp.Route) *bgp.Route {
	rm, ok := c.RouteMaps[name]
	if !ok {
		panic(fmt.Sprintf("config: router %s has no route-map %q", c.Router, name))
	}
	for _, cl := range rm.Clauses {
		if cl.ActionHole != "" {
			panic(fmt.Sprintf("config: route-map %s clause %d has a symbolic action", name, cl.Seq))
		}
		if !c.clauseMatches(cl, r) {
			continue
		}
		if cl.Action == Deny {
			return nil
		}
		for _, set := range cl.Sets {
			applySet(set, r)
		}
		return r
	}
	return nil // implicit deny
}

func (c *Config) clauseMatches(cl *Clause, r *bgp.Route) bool {
	for _, m := range cl.Matches {
		if m.ValueHole != "" {
			panic(fmt.Sprintf("config: match in route-map of %s has a symbolic value", c.Router))
		}
		switch m.Kind {
		case MatchPrefixList:
			pl, ok := c.PrefixLists[m.PrefixList]
			if !ok {
				panic(fmt.Sprintf("config: router %s references unknown prefix-list %q", c.Router, m.PrefixList))
			}
			if !pl.Permits(r.Prefix) {
				return false
			}
		case MatchCommunity:
			if !r.HasCommunity(m.Community) {
				return false
			}
		case MatchNextHopIs:
			if r.NextHop != m.NextHop {
				return false
			}
		}
	}
	return true
}

func applySet(s *Set, r *bgp.Route) {
	if s.ParamHole != "" {
		panic("config: set line has a symbolic parameter")
	}
	switch s.Kind {
	case SetLocalPref:
		r.LocalPref = s.LocalPref
	case SetCommunity:
		r.Communities[s.Community] = true
	case SetMED:
		r.MED = s.MED
	case SetNextHopIP:
		// Cosmetic in this model: next-hop IP rewriting does not
		// change route selection (see the package comment and the
		// paper's Scenario 1).
	}
}

// Deployment maps router names to their configurations and implements
// bgp.PolicyProvider: routers without a configuration (externals, or
// internal routers the sketch leaves unconstrained) apply the identity
// policy.
type Deployment map[string]*Config

// Export implements bgp.PolicyProvider.
func (d Deployment) Export(at, to string, r *bgp.Route) *bgp.Route {
	c, ok := d[at]
	if !ok {
		return r
	}
	n := c.Neighbor(to)
	if n == nil || n.ExportMap == "" {
		return r
	}
	return c.ApplyRouteMap(n.ExportMap, r)
}

// Import implements bgp.PolicyProvider.
func (d Deployment) Import(at, from string, r *bgp.Route) *bgp.Route {
	c, ok := d[at]
	if !ok {
		return r
	}
	n := c.Neighbor(from)
	if n == nil || n.ImportMap == "" {
		return r
	}
	return c.ApplyRouteMap(n.ImportMap, r)
}

// Validate checks referential integrity: every neighbor binding points
// at an existing route map, every match at an existing prefix list,
// and clause sequence numbers are strictly increasing.
func (c *Config) Validate() error {
	for _, n := range c.Neighbors {
		for _, mapName := range []string{n.ImportMap, n.ExportMap} {
			if mapName == "" {
				continue
			}
			if _, ok := c.RouteMaps[mapName]; !ok {
				return fmt.Errorf("config %s: neighbor %s references unknown route-map %q", c.Router, n.Peer, mapName)
			}
		}
	}
	for _, name := range c.RouteMapNames() {
		rm := c.RouteMaps[name]
		lastSeq := -1
		for _, cl := range rm.Clauses {
			if cl.Seq <= lastSeq {
				return fmt.Errorf("config %s: route-map %s clause sequence %d not increasing", c.Router, name, cl.Seq)
			}
			lastSeq = cl.Seq
			for _, m := range cl.Matches {
				if m.Kind == MatchPrefixList && m.ValueHole == "" {
					if _, ok := c.PrefixLists[m.PrefixList]; !ok {
						return fmt.Errorf("config %s: route-map %s references unknown prefix-list %q", c.Router, name, m.PrefixList)
					}
				}
			}
		}
	}
	return nil
}
