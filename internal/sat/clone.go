package sat

// Clone returns a warm snapshot of the solver: problem clauses, learnt
// clauses, variable activities, saved phases, clause activities, and
// level-0 assignments are all carried over, so the clone resumes search
// with everything the original has learned instead of starting cold.
// This is what makes per-worker solvers cheap — one shared encode, one
// memcpy-style snapshot per worker.
//
// Clone must be called outside search (decision level 0), which is
// always the case between Solve calls: Solve backtracks to level 0
// before returning, and AddClause refuses to run mid-search.
//
// Carrying learnt clauses over is sound for any future assumption set:
// a learnt clause is derived by resolution over reason clauses only,
// and assumptions enter the search as decisions (nil reason), never as
// reasons — so every learnt is a logical consequence of the problem
// clauses alone. The one obligation on callers is the same one the
// solver already imposes: problem clauses are only ever added, never
// removed.
//
// The clone shares no mutable state with the original (clauses are
// deep-copied, watch lists remapped), so original and clone may be
// driven from different goroutines afterwards — each individually
// remains non-concurrency-safe.
//
// The clone's cumulative work counters (Solves, Conflicts, ...) start
// at zero so per-clone effort can be merged additively into session
// statistics; the structural gauges (MaxVars, Clauses) carry over.
func (s *Solver) Clone() *Solver {
	if s.decisionLevel() != 0 {
		panic("sat: Clone called during search")
	}
	c := &Solver{
		ok:             s.ok,
		varInc:         s.varInc,
		claInc:         s.claInc,
		qhead:          s.qhead,
		ConflictBudget: s.ConflictBudget,
		emptyLogged:    s.emptyLogged,
		pol:            s.pol,
		Inprocess:      s.Inprocess,
		inprocConfl:    s.inprocConfl,
	}
	c.eliminable = append([]bool(nil), s.eliminable...)
	c.elimed = append([]bool(nil), s.elimed...)
	// Elimination records are immutable once pushed, so the inner
	// clause copies may be shared; only the stack spine is copied (with
	// exact length, so appends on either side never alias).
	c.elimStack = append(make([]elimRecord, 0, len(s.elimStack)), s.elimStack...)
	// A clone inherits the original's learnt clauses, so its proof
	// trace must replay their derivations: fork the writer when it
	// supports forking, otherwise the clone runs without logging (a
	// trace that silently missed the inherited lemmas would be worse
	// than none — the checker would reject every proof built on them).
	if pc, ok := s.proof.(ProofCloner); ok {
		c.proof = pc.CloneProof()
	}

	// Deep-copy the clause database, remembering old -> new pointers so
	// watch lists and level-0 reasons can be remapped.
	remap := make(map[*clause]*clause, len(s.clauses)+len(s.learnts))
	cloneClause := func(cl *clause) *clause {
		cc := &clause{lits: append([]Lit(nil), cl.lits...), learnt: cl.learnt, activity: cl.activity, lbd: cl.lbd, protect: cl.protect}
		remap[cl] = cc
		return cc
	}
	c.clauses = make([]*clause, len(s.clauses))
	for i, cl := range s.clauses {
		c.clauses[i] = cloneClause(cl)
	}
	c.learnts = make([]*clause, len(s.learnts))
	for i, cl := range s.learnts {
		c.learnts[i] = cloneClause(cl)
	}
	c.watches = make([][]watcher, len(s.watches))
	for i, ws := range s.watches {
		if len(ws) == 0 {
			continue
		}
		cw := make([]watcher, len(ws))
		for j, w := range ws {
			cw[j] = watcher{c: remap[w.c], blocker: w.blocker}
		}
		c.watches[i] = cw
	}
	c.bins = make([][]binWatch, len(s.bins))
	for i, bs := range s.bins {
		if len(bs) == 0 {
			continue
		}
		cb := make([]binWatch, len(bs))
		for j, b := range bs {
			cb[j] = binWatch{other: b.other, c: remap[b.c]}
		}
		c.bins[i] = cb
	}
	c.terns = make([][]ternWatch, len(s.terns))
	for i, ts := range s.terns {
		if len(ts) == 0 {
			continue
		}
		ct := make([]ternWatch, len(ts))
		for j, t := range ts {
			ct[j] = ternWatch{o1: t.o1, o2: t.o2, c: remap[t.c]}
		}
		c.terns[i] = ct
	}

	c.assigns = append([]LBool(nil), s.assigns...)
	c.vals = append([]LBool(nil), s.vals...)
	c.level = append([]int(nil), s.level...)
	c.reason = make([]*clause, len(s.reason))
	for i, r := range s.reason {
		if r != nil {
			c.reason[i] = remap[r]
		}
	}
	c.trail = append([]Lit(nil), s.trail...)
	c.trailLim = append([]int(nil), s.trailLim...)
	c.activity = append([]float64(nil), s.activity...)
	c.phase = append([]bool(nil), s.phase...)
	c.targetPhase = append([]LBool(nil), s.targetPhase...)
	c.seen = make([]bool, len(s.seen))
	c.litMark = make([]uint64, len(s.litMark))
	c.model = append([]LBool(nil), s.model...)

	// Restart state carries over: the clone continues the original's
	// view of "normal" glue rather than re-warming from scratch.
	c.lbdEmaFast = s.lbdEmaFast
	c.lbdEmaSlow = s.lbdEmaSlow
	c.trailEma = s.trailEma
	c.emaConfl = s.emaConfl

	// Copy the branching heap verbatim (same activities, same layout)
	// so original and clone branch identically until their inputs
	// diverge.
	c.order = newVarHeap(&c.activity)
	c.order.heap = append([]Var(nil), s.order.heap...)
	c.order.indices = append([]int(nil), s.order.indices...)

	c.Stats = Stats{MaxVars: s.Stats.MaxVars, Clauses: s.Stats.Clauses}
	return c
}

// Sub returns the counter-wise difference a - b: the work performed
// between the snapshot b and the later snapshot a of the same solver's
// Stats. The structural gauges (MaxVars, Clauses) are taken from a.
// Use it to harvest the effort of a solver that outlives one query —
// a warm solver checked out of a pool — without double-counting work
// already merged by an earlier harvest.
//
// The subtraction saturates at zero: if a counter in a is behind its
// checkpoint in b — the solver behind a checkpoint was replaced by a
// fresh clone (whose counters start at zero) after a failed or
// cancelled solve, or the snapshots were taken from different solvers
// — the unsigned difference would wrap to an astronomically large
// value and be merged into session statistics as garbage. Saturating
// under-reports that pathological harvest instead of corrupting every
// downstream counter.
func (a Stats) Sub(b Stats) Stats {
	out := Stats{
		Solves:              satSub(a.Solves, b.Solves),
		Decisions:           satSub(a.Decisions, b.Decisions),
		Propagations:        satSub(a.Propagations, b.Propagations),
		BinPropagations:     satSub(a.BinPropagations, b.BinPropagations),
		Conflicts:           satSub(a.Conflicts, b.Conflicts),
		Restarts:            satSub(a.Restarts, b.Restarts),
		BlockedRestarts:     satSub(a.BlockedRestarts, b.BlockedRestarts),
		Learnt:              satSub(a.Learnt, b.Learnt),
		MinimizedLits:       satSub(a.MinimizedLits, b.MinimizedLits),
		LBDSum:              satSub(a.LBDSum, b.LBDSum),
		Reductions:          satSub(a.Reductions, b.Reductions),
		RemovedClauses:      satSub(a.RemovedClauses, b.RemovedClauses),
		ModeSwitches:        satSub(a.ModeSwitches, b.ModeSwitches),
		InprocessRounds:     satSub(a.InprocessRounds, b.InprocessRounds),
		VivifiedClauses:     satSub(a.VivifiedClauses, b.VivifiedClauses),
		VivifiedLits:        satSub(a.VivifiedLits, b.VivifiedLits),
		SubsumedClauses:     satSub(a.SubsumedClauses, b.SubsumedClauses),
		StrengthenedClauses: satSub(a.StrengthenedClauses, b.StrengthenedClauses),
		ElimVars:            satSub(a.ElimVars, b.ElimVars),
		InprocessDeleted:    satSub(a.InprocessDeleted, b.InprocessDeleted),
		SharedExported:      satSub(a.SharedExported, b.SharedExported),
		SharedImported:      satSub(a.SharedImported, b.SharedImported),
		SharedRejected:      satSub(a.SharedRejected, b.SharedRejected),
		PortfolioRaces:      satSub(a.PortfolioRaces, b.PortfolioRaces),
		MaxVars:             a.MaxVars,
		Clauses:             a.Clauses,
		CoreLearnts:         a.CoreLearnts,
		MidLearnts:          a.MidLearnts,
		LocalLearnts:        a.LocalLearnts,
	}
	for i := range out.LBDHist {
		out.LBDHist[i] = satSub(a.LBDHist[i], b.LBDHist[i])
	}
	for i := range out.PortfolioWins {
		out.PortfolioWins[i] = satSub(a.PortfolioWins[i], b.PortfolioWins[i])
	}
	return out
}

// satSub is a - b saturating at zero instead of wrapping.
func satSub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}
