package config

import (
	"fmt"
	"strings"
)

// Print renders the configuration in the IOS-like dialect parsed by
// Parse. Holes render as "?name". Output is deterministic.
func Print(c *Config) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "router bgp %s\n", c.Router)
	for _, n := range c.Neighbors {
		if n.ImportMap != "" {
			fmt.Fprintf(&sb, " neighbor %s route-map %s in\n", n.Peer, n.ImportMap)
		}
		if n.ExportMap != "" {
			fmt.Fprintf(&sb, " neighbor %s route-map %s out\n", n.Peer, n.ExportMap)
		}
		if n.ImportMap == "" && n.ExportMap == "" {
			fmt.Fprintf(&sb, " neighbor %s\n", n.Peer)
		}
	}
	sb.WriteString("!\n")
	for _, name := range c.PrefixListNames() {
		pl := c.PrefixLists[name]
		for _, e := range pl.Entries {
			fmt.Fprintf(&sb, "ip prefix-list %s seq %d %s %s\n", pl.Name, e.Seq, e.Action, e.Prefix)
		}
		sb.WriteString("!\n")
	}
	for _, name := range c.RouteMapNames() {
		rm := c.RouteMaps[name]
		for _, cl := range rm.Clauses {
			action := cl.Action.String()
			if cl.ActionHole != "" {
				action = "?" + cl.ActionHole
			}
			fmt.Fprintf(&sb, "route-map %s %s %d\n", rm.Name, action, cl.Seq)
			for _, m := range cl.Matches {
				sb.WriteString(" " + matchLine(m) + "\n")
			}
			for _, s := range cl.Sets {
				sb.WriteString(" " + setLine(s) + "\n")
			}
			sb.WriteString("!\n")
		}
	}
	return sb.String()
}

func matchLine(m *Match) string {
	val := func(concrete string) string {
		if m.ValueHole != "" {
			return "?" + m.ValueHole
		}
		return concrete
	}
	switch m.Kind {
	case MatchPrefixList:
		return "match ip address prefix-list " + val(m.PrefixList)
	case MatchCommunity:
		return "match community " + val(m.Community.String())
	case MatchNextHopIs:
		return "match next-hop " + val(m.NextHop)
	}
	return "match ?"
}

func setLine(s *Set) string {
	val := func(concrete string) string {
		if s.ParamHole != "" {
			return "?" + s.ParamHole
		}
		return concrete
	}
	switch s.Kind {
	case SetLocalPref:
		return "set local-preference " + val(fmt.Sprintf("%d", s.LocalPref))
	case SetCommunity:
		return "set community " + val(s.Community.String()) + " additive"
	case SetMED:
		return "set metric " + val(fmt.Sprintf("%d", s.MED))
	case SetNextHopIP:
		return "set next-hop " + val(s.NextHopIP)
	}
	return "set ?"
}

// PrintDeployment renders every configuration of the deployment in
// router-name order, separated by blank lines.
func PrintDeployment(d Deployment) string {
	names := make([]string, 0, len(d))
	for n := range d {
		names = append(names, n)
	}
	sortStrings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = Print(d[n])
	}
	return strings.Join(parts, "\n")
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}
