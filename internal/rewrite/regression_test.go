package rewrite

import (
	"strings"
	"testing"

	"repro/internal/logic"
)

// Regression and shape tests for simplifications the explanation
// pipeline depends on.

func TestEnumComplementNormalization(t *testing.T) {
	// Over a two-valued enum, != normalizes to = of the other value so
	// equality propagation can bind it (the Figure 6c shape).
	act := logic.NewEnumSort("RAct", "permit", "deny")
	v := logic.NewEnumVar("a", act)
	got := Simplify(logic.Not(logic.Eq(v, logic.NewEnum(act, "permit"))))
	if got.String() != "a = deny" {
		t.Fatalf("got %s, want a = deny", got)
	}
	// Three-valued enums stay as disequalities.
	tri := logic.NewEnumSort("Tri", "a", "b", "c")
	w := logic.NewEnumVar("w", tri)
	got = Simplify(logic.Not(logic.Eq(w, logic.NewEnum(tri, "a"))))
	if got.String() != "w != a" {
		t.Fatalf("got %s, want w != a", got)
	}
}

func TestFig6cShape(t *testing.T) {
	// The paper's Figure 6c: ((Var_Attr = Next_Hop & Var_Val = v) |
	// Var_Action = deny)-like constraints survive as-is — simplification
	// must not destroy irreducible disjunctions over hole variables.
	act := logic.NewEnumSort("Act2", "permit", "deny")
	attr := logic.NewEnumSort("Attr", "next_hop", "community")
	vAttr := logic.NewEnumVar("Var_Attr", attr)
	vAct := logic.NewEnumVar("Var_Action", act)
	c := logic.Or(
		logic.Eq(vAttr, logic.NewEnum(attr, "next_hop")),
		logic.Eq(vAct, logic.NewEnum(act, "deny")),
	)
	got := Simplify(c)
	if !logic.Equal(got, c) {
		t.Fatalf("irreducible Fig6c constraint changed: %s", got)
	}
}

func TestEqPropagationThroughIte(t *testing.T) {
	// x = 3 & (ite(x = 3, a, b)) -> x = 3 & a.
	x := logic.NewIntVar("x", 0, 9)
	a, b := logic.NewBoolVar("a"), logic.NewBoolVar("b")
	in := logic.And(
		logic.Eq(x, logic.NewInt(3)),
		logic.Ite(logic.Eq(x, logic.NewInt(3)), a, b),
	)
	got := Simplify(in)
	if got.String() != "x = 3 & a" {
		t.Fatalf("got %s", got)
	}
}

func TestDisableEqPropagation(t *testing.T) {
	x := logic.NewIntVar("x", 0, 9)
	in := logic.And(
		logic.Eq(x, logic.NewInt(3)),
		logic.Lt(x, logic.NewInt(5)),
	)
	s := New()
	s.DisableEqPropagation = true
	got := s.Simplify(in)
	if !strings.Contains(got.String(), "x < 5") {
		t.Fatalf("S14 disabled but propagation still happened: %s", got)
	}
	if s.Stats[RuleEqPropagation] != 0 {
		t.Fatal("S14 fired despite being disabled")
	}
}

func TestMaxPassesBound(t *testing.T) {
	// A chain x1 = x2 & x2 = x3 & ... & xn = 0 needs several passes to
	// fully collapse; a single pass leaves residue but stays sound.
	vars := make([]*logic.Var, 6)
	for i := range vars {
		vars[i] = logic.NewIntVar(varName(i), 0, 9)
	}
	conjuncts := []logic.Term{logic.Eq(vars[len(vars)-1], logic.NewInt(0))}
	for i := len(vars) - 1; i > 0; i-- {
		conjuncts = append(conjuncts, logic.Eq(vars[i-1], vars[i]))
	}
	in := logic.And(conjuncts...)

	one := New()
	one.MaxPasses = 1
	r1 := one.Simplify(in)

	full := New()
	rf := full.Simplify(in)

	if logic.Size(rf) > logic.Size(r1) {
		t.Fatalf("fixpoint (%d) larger than single pass (%d)", logic.Size(rf), logic.Size(r1))
	}
	if full.Passes <= 1 {
		t.Fatalf("chain should need multiple passes, took %d", full.Passes)
	}
	// Both remain equivalent to the input (spot-check one assignment).
	env := logic.Assignment{}
	for _, v := range vars {
		env[v.Name] = logic.IntValue(0)
	}
	for _, term := range []logic.Term{in, r1, rf} {
		ok, err := logic.EvalBool(term, env)
		if err != nil || !ok {
			t.Fatalf("all-zero assignment must satisfy: %v %v", ok, err)
		}
	}
}

func varName(i int) string {
	return string(rune('p'+i)) + "v"
}

func TestAbsorptionNested(t *testing.T) {
	a, b, c := logic.NewBoolVar("a"), logic.NewBoolVar("b"), logic.NewBoolVar("c")
	// a & (a | b) & (a | c) -> a.
	got := Simplify(logic.And(a, logic.Or(a, b), logic.Or(a, c)))
	if got.String() != "a" {
		t.Fatalf("got %s", got)
	}
	// (a & b) | a | c -> a | c.
	got = Simplify(logic.Or(logic.And(a, b), a, c))
	if got.String() != "a | c" {
		t.Fatalf("got %s", got)
	}
}

func TestSimplifierReuseAccumulatesStats(t *testing.T) {
	s := New()
	x := logic.NewBoolVar("x")
	s.Simplify(logic.Or(x, logic.Not(x)))
	first := s.Stats[RuleComplement]
	s.Simplify(logic.Or(x, logic.Not(x)))
	if s.Stats[RuleComplement] <= first {
		t.Fatal("stats should accumulate across Simplify calls")
	}
}
