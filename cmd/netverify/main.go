// netverify checks a deployment against a specification by BGP
// simulation, optionally under single-link failure injection.
//
//	netverify -scenario scenario2            # synthesize, then verify
//	netverify -scenario scenario2 -failures  # also check preference fallbacks
//	netverify -scenario scenario1 -rib       # dump the converged routing state
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bgp"
	"repro/internal/scenarios"
	"repro/internal/spec"
	"repro/internal/synth"
	"repro/internal/verify"
)

func main() {
	scenario := flag.String("scenario", "scenario1", "paper scenario: scenario1, scenario2, scenario3")
	failures := flag.Bool("failures", false, "check path preferences under single-link failures")
	allFailures := flag.Bool("allfailures", false, "re-check forbids under every single-link failure")
	interp2 := flag.Bool("interp2", false, "tolerate unlisted fallback paths (interpretation 2)")
	rib := flag.Bool("rib", false, "dump the converged routing state")
	flag.Parse()

	sc, err := scenarios.ByName(*scenario)
	if err != nil {
		fail(err)
	}
	res, err := synth.Synthesize(sc.Net, sc.Sketch, sc.Requirements(), synth.DefaultOptions())
	if err != nil {
		fail(err)
	}
	if *rib {
		sim, err := bgp.Simulate(sc.Net, res.Deployment)
		if err != nil {
			fail(err)
		}
		fmt.Print(sim.Dump())
		fmt.Println()
	}
	vs, err := verify.Check(sc.Net, res.Deployment, sc.Requirements())
	if err != nil {
		fail(err)
	}
	bad := len(vs)
	for _, v := range vs {
		fmt.Printf("VIOLATION: %s\n", v)
	}
	if *failures {
		for _, r := range sc.Requirements() {
			pref, ok := r.(*spec.Preference)
			if !ok {
				continue
			}
			fvs, err := verify.CheckUnderFailures(sc.Net, res.Deployment, pref, *interp2)
			if err != nil {
				fail(err)
			}
			bad += len(fvs)
			for _, v := range fvs {
				fmt.Printf("FAILURE VIOLATION: %s\n", v)
			}
		}
	}
	if *allFailures {
		fvs, err := verify.CheckUnderAllFailures(sc.Net, res.Deployment, sc.Requirements())
		if err != nil {
			fail(err)
		}
		bad += len(fvs)
		for _, v := range fvs {
			fmt.Printf("FAILURE VIOLATION: %s\n", v)
		}
	}
	if bad == 0 {
		fmt.Println("all requirements hold")
		return
	}
	os.Exit(1)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "netverify:", err)
	os.Exit(1)
}
