package synth

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/topology"
)

// Base is the invariant structure of a concrete deployment's encoding:
// every candidate propagation path with its fully-evaluated edge
// condition and route state. Explanation queries symbolize one router
// at a time and re-encode; every candidate path that avoids the
// symbolized router is identical across those encodings, so a Base
// built once lets each derived encoder (see Encoder.WithBase) skip the
// symbolic policy evaluation for the unchanged bulk of the network.
//
// A Base is immutable after construction and safe for concurrent use
// by any number of encoders: the candidates it holds are never
// mutated, and the terms they carry are immutable by construction.
type Base struct {
	net  *topology.Network
	dep  config.Deployment
	opts Options
	// cands[prefix][pathKey] indexes the base candidates.
	cands map[string]map[string]*candidate
}

// NewBase enumerates the candidate structure of a concrete deployment.
// The deployment must be concrete: symbolic holes would leak hole
// variables owned by this throwaway encoder into derived encodings.
func NewBase(ctx context.Context, net *topology.Network, dep config.Deployment, opts Options) (*Base, error) {
	for name, c := range dep {
		if !c.Concrete() {
			return nil, fmt.Errorf("synth: base deployment config %s still has holes", name)
		}
	}
	e := NewEncoder(net, dep, opts)
	if err := e.enumerateCandidates(ctx); err != nil {
		return nil, err
	}
	b := &Base{
		net:   net,
		dep:   dep,
		opts:  e.opts,
		cands: make(map[string]map[string]*candidate, len(e.cands)),
	}
	for prefix, byNode := range e.cands {
		m := map[string]*candidate{}
		for _, cs := range byNode {
			for _, c := range cs {
				m[strings.Join(c.path, "_")] = c
			}
		}
		b.cands[prefix] = m
	}
	return b, nil
}

// NumCandidates reports how many candidate paths the base holds.
func (b *Base) NumCandidates() int {
	n := 0
	for _, m := range b.cands {
		n += len(m)
	}
	return n
}
