// Package drat independently validates the proof traces emitted by the
// CDCL solver in internal/sat. It shares no code with the solver: the
// checker keeps its own clause database over plain DIMACS-style integer
// literals and re-derives every lemma by reverse unit propagation
// (RUP), so a bug in the solver's propagation, conflict analysis,
// clause management, cloning, or guarded-retraction machinery cannot
// also hide in the check.
//
// A trace is a sequence of operations (see Op):
//
//   - Input: a clause the caller asserted — the formula under test.
//   - Learn: a clause the solver claims to have derived. The checker
//     accepts it only if it is a RUP consequence of the live clauses:
//     assuming the negation of every literal and unit-propagating must
//     yield a conflict.
//   - Delete: a clause the solver dropped, so the checker's database
//     tracks the solver's.
//
// The final Learn of an unsatisfiability proof is either the empty
// clause (plain Unsat) or the negation of the assumption core
// (Unsat under assumptions); both are checked like any other lemma.
package drat

import (
	"fmt"
	"sort"
)

// OpKind discriminates trace operations.
type OpKind uint8

const (
	// Input is a caller-asserted clause.
	Input OpKind = iota
	// Learn is a solver-derived clause, subject to the RUP check.
	Learn
	// Delete removes a clause from the live database.
	Delete
)

// String names the operation kind.
func (k OpKind) String() string {
	switch k {
	case Input:
		return "input"
	case Learn:
		return "learn"
	default:
		return "delete"
	}
}

// Op is one trace operation over DIMACS-style literals: nonzero
// integers, where -l is the negation of l and variables are 1-based.
type Op struct {
	Kind OpKind
	Lits []int
}

// value codes in the checker's partial assignment.
const (
	vUndef int8 = 0
	vTrue  int8 = 1
	vFalse int8 = -1
)

// clauseRec is one stored clause.
type clauseRec struct {
	lits   []int // as given
	sorted []int // deduplicated, sorted — the deletion/lookup key
	alive  bool
	learnt bool
}

// Checker maintains the live clause database and a root-level
// assignment (the fixpoint of unit propagation over the live clauses),
// and answers RUP queries against it.
type Checker struct {
	clauses []clauseRec
	bySig   map[string][]int // sorted-lits key -> clause ids (live and dead)

	// watches[litIdx(l)] lists clauses watching l: clauses visit this
	// list when l becomes false.
	watches [][]int

	nVars  int
	val    []int8 // 1-based by variable
	trail  []int  // literals, in assignment order
	reason []int  // 1-based by variable: clause id, or -1 for assumed
	qhead  int

	// rootEnd is the length of the permanent (root) prefix of the
	// trail; everything above it belongs to an in-flight RUP query.
	rootEnd int
	// rootConflict is set once the live database is conflicting at the
	// root: every clause is then trivially RUP. rootCone remembers the
	// clause ids that produced the conflict (see setRootConflict).
	rootConflict bool
	rootCone     []int

	// deps[id] records, for lemma id, the clause ids its RUP conflict
	// cone used — the dependency graph backward trimming walks.
	deps map[int][]int

	stats Stats
}

// Stats counts checker work.
type Stats struct {
	// Inputs, Lemmas, and Deletes count applied operations.
	Inputs, Lemmas, Deletes int
	// Propagations counts literal assignments made during checking.
	Propagations uint64
}

// NewChecker returns an empty checker.
func NewChecker() *Checker {
	return &Checker{
		bySig: make(map[string][]int),
		deps:  make(map[int][]int),
	}
}

// Stats returns the work counters so far.
func (c *Checker) Stats() Stats { return c.stats }

// RootConflict reports whether the live database is already
// conflicting at the root (the empty clause has been established).
func (c *Checker) RootConflict() bool { return c.rootConflict }

func litIdx(l int) int {
	if l > 0 {
		return 2 * l
	}
	return -2*l + 1
}

func litVar(l int) int {
	if l > 0 {
		return l
	}
	return -l
}

// ensureVar grows the assignment structures to cover variable v.
func (c *Checker) ensureVar(v int) {
	if v <= c.nVars {
		return
	}
	c.nVars = v
	for len(c.val) <= v {
		c.val = append(c.val, vUndef)
	}
	for len(c.reason) <= v {
		c.reason = append(c.reason, -1)
	}
	for len(c.watches) <= 2*v+1 {
		c.watches = append(c.watches, nil)
	}
}

func (c *Checker) value(l int) int8 {
	v := c.val[litVar(l)]
	if v == vUndef || l > 0 {
		return v
	}
	return -v
}

// assign makes l true with the given reason clause id (-1: assumed).
func (c *Checker) assign(l int, reason int) {
	c.val[litVar(l)] = int8(1)
	if l < 0 {
		c.val[litVar(l)] = int8(-1)
	}
	c.reason[litVar(l)] = reason
	c.trail = append(c.trail, l)
	c.stats.Propagations++
}

// unassignTo rolls the trail back to the given length.
func (c *Checker) unassignTo(n int) {
	for i := len(c.trail) - 1; i >= n; i-- {
		v := litVar(c.trail[i])
		c.val[v] = vUndef
		c.reason[v] = -1
	}
	c.trail = c.trail[:n]
	if c.qhead > n {
		c.qhead = n
	}
}

// sig builds the sorted-deduplicated lookup key for a clause.
func sig(lits []int) (string, []int) {
	sorted := append([]int(nil), lits...)
	sort.Ints(sorted)
	out := sorted[:0]
	for i, l := range sorted {
		if i > 0 && sorted[i-1] == l {
			continue
		}
		out = append(out, l)
	}
	sorted = out
	b := make([]byte, 0, 8*len(sorted))
	for _, l := range sorted {
		b = appendInt(b, l)
		b = append(b, ' ')
	}
	return string(b), sorted
}

func appendInt(b []byte, n int) []byte {
	if n < 0 {
		b = append(b, '-')
		n = -n
	}
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	return append(b, tmp[i:]...)
}

// validate rejects malformed literals.
func validate(lits []int) error {
	for _, l := range lits {
		if l == 0 {
			return fmt.Errorf("drat: literal 0 in clause %v", lits)
		}
	}
	return nil
}

// addClause stores a clause, sets up its watches, and performs any
// root-level propagation it triggers. Returns the clause id.
func (c *Checker) addClause(lits []int, learnt bool) (int, error) {
	if err := validate(lits); err != nil {
		return -1, err
	}
	key, sorted := sig(lits)
	for _, l := range sorted {
		c.ensureVar(litVar(l))
	}
	id := len(c.clauses)
	c.clauses = append(c.clauses, clauseRec{
		lits:   append([]int(nil), lits...),
		sorted: sorted,
		alive:  true,
		learnt: learnt,
	})
	c.bySig[key] = append(c.bySig[key], id)

	if c.rootConflict {
		return id, nil
	}
	// Tautologies (l and -l both present) are always satisfied and
	// never propagate; store them without watches. sorted is strictly
	// increasing, so look each positive literal's negation up directly.
	for _, l := range sorted {
		if l > 0 {
			i := sort.SearchInts(sorted, -l)
			if i < len(sorted) && sorted[i] == -l {
				return id, nil
			}
		}
	}
	switch len(sorted) {
	case 0:
		c.setRootConflict([]int{id})
		return id, nil
	case 1:
		l := sorted[0]
		switch c.value(l) {
		case vFalse:
			// -l is root-assigned: the conflict cone is this clause
			// plus the reason chain forcing -l.
			c.setRootConflict(append([]int{id}, c.cone(-1, []int{-l})...))
		case vUndef:
			c.assign(l, id)
			if conflict := c.propagate(); conflict >= 0 {
				c.setRootConflict(append([]int{id}, c.cone(conflict, nil)...))
			}
			c.rootEnd = len(c.trail)
		}
		return id, nil
	}
	// Watch two distinct non-false literals when possible; a clause
	// unit under the root assignment propagates immediately, an
	// all-false clause conflicts. Note cl.lits may hold duplicate
	// literals (inputs are logged pre-simplification), so the second
	// watch must be a *different literal*, not just a different slot.
	cl := &c.clauses[id]
	w0, w1 := -1, -1
	for i := range cl.lits {
		if c.value(cl.lits[i]) == vFalse {
			continue
		}
		if w0 < 0 {
			w0 = i
		} else if cl.lits[i] != cl.lits[w0] {
			w1 = i
			break
		}
	}
	if w0 < 0 {
		// Every literal false at root.
		c.setRootConflict(append([]int{id}, c.cone(-1, cl.lits)...))
		return id, nil
	}
	unit := w1 < 0
	if unit {
		// Exactly one distinct non-false literal: watch it plus an
		// arbitrary other slot so the clause stays indexed. The second
		// watch may be root-false, which is safe: root assignments are
		// never undone, so its watch list is never visited again.
		w1 = 0
		if w1 == w0 {
			w1 = 1
		}
	}
	cl.lits[0], cl.lits[w0] = cl.lits[w0], cl.lits[0]
	if w1 == 0 {
		w1 = w0
	}
	cl.lits[1], cl.lits[w1] = cl.lits[w1], cl.lits[1]
	c.watches[litIdx(cl.lits[0])] = append(c.watches[litIdx(cl.lits[0])], id)
	c.watches[litIdx(cl.lits[1])] = append(c.watches[litIdx(cl.lits[1])], id)
	if unit && c.value(cl.lits[0]) == vUndef {
		c.assign(cl.lits[0], id)
		if conflict := c.propagate(); conflict >= 0 {
			c.setRootConflict(append([]int{id}, c.cone(conflict, nil)...))
		}
		c.rootEnd = len(c.trail)
	}
	return id, nil
}

// setRootConflict latches top-level unsatisfiability, remembering the
// clause ids that produced it so proof trimming can keep them: lemmas
// checked after this point verify trivially and record no dependencies
// of their own.
func (c *Checker) setRootConflict(cone []int) {
	if c.rootConflict {
		return
	}
	c.rootConflict = true
	c.rootCone = cone
}

// propagate runs unit propagation from the current queue head. It
// returns the id of a conflicting clause, or -1.
func (c *Checker) propagate() int {
	for c.qhead < len(c.trail) {
		p := c.trail[c.qhead] // p just became true; visit watchers of -p
		c.qhead++
		falseLit := -p
		ws := c.watches[litIdx(falseLit)]
		kept := ws[:0]
		var conflict = -1
		for i := 0; i < len(ws); i++ {
			id := ws[i]
			cl := &c.clauses[id]
			if !cl.alive {
				continue // lazily dropped from the watch list
			}
			if cl.lits[0] == falseLit {
				cl.lits[0], cl.lits[1] = cl.lits[1], cl.lits[0]
			}
			first := cl.lits[0]
			if c.value(first) == vTrue {
				kept = append(kept, id)
				continue
			}
			moved := false
			for k := 2; k < len(cl.lits); k++ {
				// The replacement must be a literal distinct from the
				// other watch: clauses may hold duplicate literals
				// (inputs are logged pre-simplification), and watching
				// the same literal in both slots would hide the clause
				// from unit detection when that literal is falsified.
				if c.value(cl.lits[k]) != vFalse && cl.lits[k] != cl.lits[0] {
					cl.lits[1], cl.lits[k] = cl.lits[k], cl.lits[1]
					c.watches[litIdx(cl.lits[1])] = append(c.watches[litIdx(cl.lits[1])], id)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			kept = append(kept, id)
			if c.value(first) == vFalse {
				conflict = id
				for i++; i < len(ws); i++ {
					kept = append(kept, ws[i])
				}
				c.qhead = len(c.trail)
				break
			}
			c.assign(first, id)
		}
		c.watches[litIdx(falseLit)] = kept
		if conflict >= 0 {
			return conflict
		}
	}
	return -1
}

// AddInput adds a caller-asserted clause to the database.
func (c *Checker) AddInput(lits []int) error {
	_, err := c.addClause(lits, false)
	if err == nil {
		c.stats.Inputs++
	}
	return err
}

// CheckLearn verifies that the clause is a RUP consequence of the live
// database and, on success, adds it. The empty clause checks out
// exactly when the database already conflicts at the root.
func (c *Checker) CheckLearn(lits []int) error {
	if err := validate(lits); err != nil {
		return err
	}
	cone, err := c.rup(lits)
	if err != nil {
		return err
	}
	id, err := c.addClause(lits, true)
	if err != nil {
		return err
	}
	c.deps[id] = cone
	c.stats.Lemmas++
	return nil
}

// CheckClause verifies the clause is RUP without adding it.
func (c *Checker) CheckClause(lits []int) error {
	if err := validate(lits); err != nil {
		return err
	}
	_, err := c.rup(lits)
	return err
}

// rup performs the reverse-unit-propagation check: assume the negation
// of every literal, propagate, and demand a conflict. On success it
// returns the ids of the clauses in the conflict cone (the dependency
// set backward trimming uses) and rolls the assignment back.
func (c *Checker) rup(lits []int) ([]int, error) {
	if c.rootConflict {
		return nil, nil // anything follows from a contradiction
	}
	mark := len(c.trail)
	defer c.unassignTo(mark)
	for _, l := range lits {
		c.ensureVar(litVar(l))
		switch c.value(l) {
		case vTrue:
			// Assuming -l contradicts the root assignment directly:
			// the cone is the reason chain of l.
			return c.cone(-1, []int{l}), nil
		case vUndef:
			c.assign(-l, -1)
		}
		// Already false: -l holds, nothing to assume.
	}
	c.qhead = mark
	conflict := c.propagate()
	if conflict < 0 {
		return nil, fmt.Errorf("drat: clause %v is not a RUP consequence", lits)
	}
	return c.cone(conflict, nil), nil
}

// cone collects the ids of the clauses reachable through the reason
// graph from the conflict: the conflicting clause (or the given seed
// literals), then every reason of every literal involved, transitively
// down through the root trail.
func (c *Checker) cone(conflict int, seeds []int) []int {
	var ids []int
	seen := make(map[int]bool) // variables already expanded
	var stack []int
	push := func(l int) {
		v := litVar(l)
		if !seen[v] {
			seen[v] = true
			stack = append(stack, v)
		}
	}
	if conflict >= 0 {
		ids = append(ids, conflict)
		for _, l := range c.clauses[conflict].lits {
			push(l)
		}
	}
	for _, l := range seeds {
		push(l)
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		r := c.reason[v]
		if r < 0 {
			continue // assumed literal: cone boundary
		}
		ids = append(ids, r)
		for _, l := range c.clauses[r].lits {
			push(l)
		}
	}
	return ids
}

// CheckDelete removes the clause from the live database. Deleting a
// clause that is the reason of a root-level assignment is skipped (the
// assignment would otherwise outlive its justification and let the
// checker accept propagations the remaining clauses cannot make — the
// same safeguard standard DRAT trimmers apply). Deleting an unknown
// clause is an error: the solver claimed to drop something it never
// had.
func (c *Checker) CheckDelete(lits []int) error {
	if err := validate(lits); err != nil {
		return err
	}
	key, _ := sig(lits)
	ids := c.bySig[key]
	for _, id := range ids {
		if !c.clauses[id].alive {
			continue
		}
		if c.isRootReason(id) {
			c.stats.Deletes++
			return nil // keep: justification of a permanent assignment
		}
		c.clauses[id].alive = false
		c.stats.Deletes++
		return nil
	}
	return fmt.Errorf("drat: delete of unknown clause %v", lits)
}

// isRootReason reports whether the clause justifies a root assignment.
func (c *Checker) isRootReason(id int) bool {
	for i := 0; i < c.rootEnd && i < len(c.trail); i++ {
		if c.reason[litVar(c.trail[i])] == id {
			return true
		}
	}
	return false
}

// Apply dispatches one trace operation.
func (c *Checker) Apply(op Op) error {
	switch op.Kind {
	case Input:
		return c.AddInput(op.Lits)
	case Learn:
		return c.CheckLearn(op.Lits)
	case Delete:
		return c.CheckDelete(op.Lits)
	}
	return fmt.Errorf("drat: unknown op kind %d", op.Kind)
}

// Check replays a whole trace through a fresh checker, verifying every
// lemma. It returns the checker (for follow-up shrinking or trimming)
// and the first verification failure, annotated with its position.
func Check(ops []Op) (*Checker, error) {
	c := NewChecker()
	for i, op := range ops {
		if err := c.Apply(op); err != nil {
			return c, fmt.Errorf("op %d (%s): %w", i, op.Kind, err)
		}
	}
	return c, nil
}
