// Scenario 1 (paper Section 2): identifying underspecified paths.
//
// The no-transit intent is synthesized, the subspecification at R1
// reveals that the configuration blocks ALL routes toward Provider 1,
// and adding the reachability requirement the administrator intended
// repairs the network.
//
//	go run ./examples/scenario1_underspecified
package main

import (
	"fmt"
	"log"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/scenarios"
	"repro/internal/spec"
	"repro/internal/synth"
)

func main() {
	sc := scenarios.Scenario1()
	fmt.Println("--- Scenario 1:", sc.Title, "---")
	fmt.Println()
	fmt.Print(spec.Print(sc.Spec))

	res, err := synth.Synthesize(sc.Net, sc.Sketch, sc.Requirements(), synth.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	sim, err := bgp.Simulate(sc.Net, res.Deployment)
	if err != nil {
		log.Fatal(err)
	}
	cPfx := sc.Net.Router("C").Prefix

	fmt.Println("\nAfter synthesis:")
	fmt.Printf("  transit P1->P2 possible: %v\n", sim.Reachable("P1", sc.Net.Router("P2").Prefix) &&
		pathVia(sim.ForwardingPath("P1", sc.Net.Router("P2").Prefix), "R1"))
	fmt.Printf("  P1 reaches customer:     %v\n", sim.Reachable("P1", cPfx))

	// "I want to make some changes to R1. What should I keep in mind?"
	explainer, err := core.NewExplainer(sc.Net, sc.Requirements(), res.Deployment, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	ex, err := explainer.ExplainAll("R1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSubspecification at R1 (Figure 2): make sure to drop all routes to Provider 1:")
	fmt.Print(spec.PrintBlock(ex.Subspec))

	// The set next-hop line is redundant — its per-variable
	// subspecification is empty (Section 4, observation 1).
	nh, err := explainer.Explain("R1", []core.Target{
		{Map: "R1_to_P1", Seq: 10, Field: core.FieldSet, Index: 0},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPer-variable check of 'set next-hop': %d constraints -> redundant (generated because a template is provided)\n",
		len(nh.Residual))

	// The administrator realizes customer connectivity was never
	// required, adds the missing requirement, and re-synthesizes —
	// this is Scenario 3's Req3.
	fixed := scenarios.Scenario3()
	res2, err := synth.Synthesize(fixed.Net, fixed.Sketch, fixed.Requirements(), synth.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	sim2, err := bgp.Simulate(fixed.Net, res2.Deployment)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAfter adding the reachability requirement (Req3) and re-synthesizing:")
	fmt.Printf("  P1 reaches customer:     %v (via %v)\n",
		sim2.Reachable("P1", cPfx), sim2.ForwardingPath("P1", cPfx))
	fmt.Printf("  transit still blocked:   %v\n", !transitPossible(sim2, fixed))
}

func pathVia(path []string, node string) bool {
	for _, n := range path {
		if n == node {
			return true
		}
	}
	return false
}

func transitPossible(sim *bgp.Result, sc *scenarios.Scenario) bool {
	p1 := sc.Net.Router("P1").Prefix
	p2 := sc.Net.Router("P2").Prefix
	for _, fwd := range [][]string{
		sim.ForwardingPath("P1", p2),
		sim.ForwardingPath("P2", p1),
	} {
		if fwd != nil && pathVia(fwd, "R1") {
			return true
		}
	}
	return false
}
