package synth

import (
	"context"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/logic"
	"repro/internal/scenarios"
	"repro/internal/spec"
	"repro/internal/topology"
	"repro/internal/verify"
)

func TestLPRankRoundTrip(t *testing.T) {
	for lp := 20; lp <= 170; lp += 10 {
		r, err := EncodeLP(lp)
		if err != nil {
			t.Fatalf("EncodeLP(%d): %v", lp, err)
		}
		if got := DecodeLP(r); got != lp {
			t.Fatalf("DecodeLP(EncodeLP(%d)) = %d", lp, got)
		}
	}
	if r, _ := EncodeLP(100); r != 8 {
		t.Fatalf("EncodeLP(100) = %d, want 8", r)
	}
	for _, bad := range []int{0, 95, 180, 101} {
		if _, err := EncodeLP(bad); err == nil {
			t.Errorf("EncodeLP(%d) should fail", bad)
		}
	}
}

func TestCandidateEnumeration(t *testing.T) {
	net := topology.Paper()
	e := NewEncoder(net, config.Deployment{}, DefaultOptions())
	if err := e.enumerateCandidates(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Candidates for D1's prefix at C: four paths, none through the
	// stub D1<->other provider (stubs do not transit).
	paths := e.Candidates("140.0.1.0/24", "C")
	want := map[string]bool{
		"D1 P1 R1 R3 C":    true,
		"D1 P1 R1 R2 R3 C": true,
		"D1 P2 R2 R3 C":    true,
		"D1 P2 R2 R1 R3 C": true,
	}
	if len(paths) != len(want) {
		t.Fatalf("candidates at C = %v", paths)
	}
	for _, p := range paths {
		if !want[strings.Join(p, " ")] {
			t.Errorf("unexpected candidate %v", p)
		}
	}
	// The customer's prefix must not propagate through D1 either.
	for _, p := range e.Candidates("123.0.1.0/20", "P2") {
		for _, n := range p[1 : len(p)-1] {
			if n == "D1" || n == "C" {
				t.Errorf("candidate %v transits a stub", p)
			}
		}
	}
}

func TestCandidateCapTruncates(t *testing.T) {
	net := topology.Paper()
	opts := DefaultOptions()
	opts.MaxCandidatesPerNode = 1
	e := NewEncoder(net, config.Deployment{}, opts)
	if err := e.enumerateCandidates(context.Background()); err != nil {
		t.Fatal(err)
	}
	if e.stats.TruncatedPaths == 0 {
		t.Fatal("cap of 1 must truncate on the paper topology")
	}
	for _, prefix := range e.vocab.prefixes {
		for node, cands := range e.cands[prefix] {
			limit := 1
			if node == prefixOrigin(net, prefix) {
				continue
			}
			if len(cands) > limit {
				t.Fatalf("node %s has %d candidates despite cap", node, len(cands))
			}
		}
	}
}

func prefixOrigin(net *topology.Network, prefix string) string {
	for _, r := range net.Routers() {
		if r.HasPrefix && r.Prefix.String() == prefix {
			return r.Name
		}
	}
	return ""
}

func TestEncodeStatsExceedThousand(t *testing.T) {
	// The paper: "more than 1000 constraints even in the simple
	// scenario in Section 2".
	sc := scenarios.Scenario3()
	enc, err := NewEncoder(sc.Net, sc.Sketch, DefaultOptions()).Encode(sc.Requirements())
	if err != nil {
		t.Fatal(err)
	}
	// NetComplete asserts many small constraints where this encoder
	// builds fewer aggregated terms; the comparable metric is the
	// total number of constraint atoms (term nodes).
	if enc.Stats.ConstraintSize <= 1000 {
		t.Fatalf("scenario 3 encodes to %d constraint atoms; the paper reports >1000", enc.Stats.ConstraintSize)
	}
	if enc.Stats.Constraints < 100 {
		t.Fatalf("scenario 3 encodes to only %d top-level constraints", enc.Stats.Constraints)
	}
	if enc.Stats.HoleVars == 0 || enc.Stats.SelVars == 0 {
		t.Fatalf("stats incomplete: %+v", enc.Stats)
	}
}

func TestSynthesizeScenario1(t *testing.T) {
	sc := scenarios.Scenario1()
	res, err := Synthesize(sc.Net, sc.Sketch, sc.Requirements(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for name, c := range res.Deployment {
		if !c.Concrete() {
			t.Fatalf("%s still has holes", name)
		}
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	// Ground truth: simulation shows no transit traffic.
	vs, err := verify.Check(sc.Net, res.Deployment, sc.Requirements())
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("synthesized deployment violates the spec: %v", vs)
	}
	// The scenario's punchline: the completion blocks ALL routes from
	// R1 to P1, so P1 loses customer reachability (the underspecified
	// behavior the explanation surfaces).
	ok, err := verify.Satisfies(sc.Net, res.Deployment, []spec.Requirement{
		&spec.Forbid{Path: spec.NewPath("P1", spec.Wildcard, "C")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Log("note: completion kept P1->C reachability (spec does not forbid it)")
	}
}

func TestSynthesizeScenario2(t *testing.T) {
	sc := scenarios.Scenario2()
	res, err := Synthesize(sc.Net, sc.Sketch, sc.Requirements(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	vs, err := verify.Check(sc.Net, res.Deployment, sc.Requirements())
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
	// Under failures, traffic must never use an unlisted path — the
	// NetComplete interpretation the paper's Scenario 2 is about.
	pref := sc.Requirements()[0].(*spec.Preference)
	fvs, err := verify.CheckUnderFailures(sc.Net, res.Deployment, pref, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(fvs) != 0 {
		t.Fatalf("unlisted fallback paths in use: %v", fvs)
	}
}

func TestSynthesizeScenario3(t *testing.T) {
	sc := scenarios.Scenario3()
	res, err := Synthesize(sc.Net, sc.Sketch, sc.Requirements(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	vs, err := verify.Check(sc.Net, res.Deployment, sc.Requirements())
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
	// Req3 restores what Scenario 1 broke: P1 reaches the customer.
	if got := mustPath(t, sc, res.Deployment, "P1", "123.0.1.0/20"); strings.Join(got, " ") != "P1 R1 R3 C" {
		t.Fatalf("P1->C path = %v, want P1 R1 R3 C", got)
	}
	// Req2: customer traffic to D1 goes through P1.
	if got := mustPath(t, sc, res.Deployment, "C", "140.0.1.0/24"); strings.Join(got, " ") != "C R3 R1 P1 D1" {
		t.Fatalf("C->D1 path = %v, want C R3 R1 P1 D1", got)
	}
}

func mustPath(t *testing.T, sc *scenarios.Scenario, dep config.Deployment, src, prefix string) []string {
	t.Helper()
	res, err := simulate(sc, dep)
	if err != nil {
		t.Fatal(err)
	}
	path := res.ForwardingPath(src, topology.MustPrefix(prefix))
	if path == nil {
		t.Fatalf("%s cannot reach %s:\n%s", src, prefix, res.Dump())
	}
	return path
}

func TestSynthesizeUnsat(t *testing.T) {
	// A forbid that cuts the only path to a required preference
	// destination is unsatisfiable.
	net := topology.Paper()
	sk := config.Deployment{}
	reqs := []spec.Requirement{
		&spec.Forbid{Path: spec.NewPath("C", "R3")}, // customer cut off
		&spec.Preference{Paths: []spec.Path{
			spec.NewPath("C", "R3", "R1", "P1", spec.Wildcard, "D1"),
			spec.NewPath("C", "R3", "R2", "P2", spec.Wildcard, "D1"),
		}},
	}
	if _, err := Synthesize(net, sk, reqs, DefaultOptions()); err == nil {
		t.Fatal("contradictory requirements should be unsatisfiable")
	}
}

func TestPreferenceValidation(t *testing.T) {
	net := topology.Paper()
	e := NewEncoder(net, config.Deployment{}, DefaultOptions())
	if err := e.enumerateCandidates(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Mismatched endpoints.
	err := e.encodePreference(&spec.Preference{Paths: []spec.Path{
		spec.NewPath("C", "R3", "R1", "P1", spec.Wildcard, "D1"),
		spec.NewPath("R1", "P1"),
	}})
	if err == nil {
		t.Fatal("mismatched endpoints should fail")
	}
	// Destination without a prefix.
	err = e.encodePreference(&spec.Preference{Paths: []spec.Path{
		spec.NewPath("C", "R3", "R1"),
		spec.NewPath("C", "R3", "R2", "R1"),
	}})
	if err == nil {
		t.Fatal("prefix-less destination should fail")
	}
}

func TestDecodeFillsEverything(t *testing.T) {
	sc := scenarios.Scenario1()
	res, err := Synthesize(sc.Net, sc.Sketch, sc.Requirements(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Every hole of the sketch must be assigned in the model.
	for _, c := range sc.Sketch {
		for _, h := range c.Holes() {
			if _, ok := res.Model[h.Name]; !ok {
				t.Errorf("hole %s missing from model", h.Name)
			}
		}
	}
	// Decoding with an empty model fails loudly.
	if _, err := Decode(sc.Sketch, logic.Assignment{}); err == nil {
		t.Fatal("decoding without assignments should fail")
	}
}

func TestEncodingConjunction(t *testing.T) {
	sc := scenarios.Scenario1()
	enc, err := NewEncoder(sc.Net, sc.Sketch, DefaultOptions()).Encode(sc.Requirements())
	if err != nil {
		t.Fatal(err)
	}
	conj := enc.Conjunction()
	if got := len(logic.Conjuncts(conj)); got < enc.Stats.Constraints {
		t.Fatalf("conjunction has %d conjuncts, want >= %d", got, enc.Stats.Constraints)
	}
}
