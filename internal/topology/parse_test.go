package topology

import (
	"strings"
	"testing"
)

func TestParsePrintRoundTrip(t *testing.T) {
	for _, n := range []*Network{Paper(), Grid(3, 2), FatTree(2)} {
		printed := Print(n)
		parsed, err := Parse(printed)
		if err != nil {
			t.Fatalf("Parse failed: %v\n%s", err, printed)
		}
		if Print(parsed) != printed {
			t.Fatalf("round trip unstable:\n%s\n---\n%s", printed, Print(parsed))
		}
		if parsed.NumRouters() != n.NumRouters() || parsed.NumLinks() != n.NumLinks() {
			t.Fatal("round trip changed shape")
		}
	}
}

func TestParseFormat(t *testing.T) {
	src := `
# the paper topology, abbreviated
router R1 as 100
external P1 as 500 prefix 128.0.1.0/24
stub C as 600 prefix 123.0.1.0/20
external T as 500
link R1 P1
link C R1
link T R1
`
	n, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if n.Router("R1").Role != Internal {
		t.Fatal("R1 should be internal")
	}
	if !n.Router("C").Stub || n.Router("P1").Stub {
		t.Fatal("stub flags wrong")
	}
	if n.Router("T").HasPrefix {
		t.Fatal("prefix-less external should have no prefix")
	}
	if !n.HasLink("C", "R1") {
		t.Fatal("link missing")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"frobnicate A B",
		"router R1",
		"router R1 as x",
		"router R1 as 100 prefix 10.0.0.0/8", // internals have no prefix
		"external P1 as 500 prefix bad",
		"router R1 as 100 extra tokens here",
		"link A",
		"link A B", // unknown routers
		"router R1 as 100\nrouter R1 as 100",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestPrintContainsEverything(t *testing.T) {
	out := Print(Paper())
	for _, want := range []string{
		"router R1 as 100",
		"external P1 as 500 prefix 128.0.1.0/24",
		"stub C as 600 prefix 123.0.1.0/20",
		"stub D1 as 700 prefix 140.0.1.0/24",
		"link R1 R2",
		"link D1 P2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Print misses %q:\n%s", want, out)
		}
	}
}
