package rewrite

import (
	"sync"
	"sync/atomic"

	"repro/internal/logic"
)

// numRules is the size of the per-entry rule-fire array; index a rule
// with ruleIndex.
const numRules = 15

// ruleIndex maps each rule to its position in AllRules (and in every
// fireCounts array).
var ruleIndex = func() map[RuleName]int {
	m := make(map[RuleName]int, len(AllRules))
	for i, r := range AllRules {
		m[r] = i
	}
	if len(m) != numRules {
		panic("rewrite: numRules out of sync with AllRules")
	}
	return m
}()

// fireCounts is a compact per-rule fire counter.
type fireCounts [numRules]uint32

// nfEntry is one cached normalization: the normal form of a distinct
// canonical term, plus the diagnostics of computing it. An entry's
// fires count only the rules fired at this term's own node; the work
// done inside subterms (and inside terms derived while rewriting this
// node) is reachable through deps, so a deterministic walk of the
// dependency closure reconstructs a whole seed's rule statistics
// regardless of how warm the cache was or which goroutine filled it.
// Entries are immutable once published.
type nfEntry struct {
	out    logic.Term
	fires  fireCounts
	rounds uint32 // equality-propagation rounds taken at this node
	deps   []logic.Term
}

// Cache is a persistent normal-form table keyed by canonical term
// pointer. It is safe for concurrent use: readers take an RLock,
// writers publish complete immutable entries, and racing computations
// of the same term resolve first-wins (the entries are deterministic,
// so either is correct). A Cache is only shareable between Simplifiers
// running the default configuration — see Simplifier.Simplify.
type Cache struct {
	mu     sync.RWMutex
	m      map[logic.Term]*nfEntry
	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewCache creates an empty normal-form cache.
func NewCache() *Cache {
	return &Cache{m: make(map[logic.Term]*nfEntry)}
}

// get returns the cached entry for t, counting a hit or miss.
func (c *Cache) get(t logic.Term) (*nfEntry, bool) {
	c.mu.RLock()
	e, ok := c.m[t]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return e, ok
}

// put publishes the entry for t. First writer wins; a concurrent
// duplicate (same term raced by two goroutines) is discarded, keeping
// the dependency graph stable for readers that already saw the first.
func (c *Cache) put(t logic.Term, e *nfEntry) {
	c.mu.Lock()
	if _, dup := c.m[t]; !dup {
		c.m[t] = e
	}
	c.mu.Unlock()
}

// Hits returns the number of cache lookups answered from the table.
func (c *Cache) Hits() uint64 { return c.hits.Load() }

// Misses returns the number of cache lookups that required a fresh
// normalization.
func (c *Cache) Misses() uint64 { return c.misses.Load() }

// Len returns the number of cached normal forms.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// collectFrom walks the dependency closure of t's entry and returns
// the aggregate per-rule fire counts and the maximum propagation round
// count over the closure. Each distinct term is counted once, which is
// what makes a seed's reported statistics deterministic: they depend
// only on the set of distinct subterms normalized for it, not on cache
// warmth or scheduling.
func (c *Cache) collectFrom(t logic.Term) (fires fireCounts, maxRounds uint32) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	visited := make(map[logic.Term]struct{})
	stack := []logic.Term{t}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if _, seen := visited[u]; seen {
			continue
		}
		visited[u] = struct{}{}
		e, ok := c.m[u]
		if !ok {
			continue
		}
		for i := range e.fires {
			fires[i] += e.fires[i]
		}
		if e.rounds > maxRounds {
			maxRounds = e.rounds
		}
		stack = append(stack, e.deps...)
	}
	return fires, maxRounds
}
