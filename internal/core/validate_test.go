package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/scenarios"
	"repro/internal/spec"
)

func TestCheckSubspecAcceptsOwnConfig(t *testing.T) {
	// A synthesized configuration must satisfy its own lifted
	// subspecification — the round trip the paper's workflow relies
	// on.
	for _, name := range []string{"scenario1", "scenario2"} {
		sc, err := scenarios.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		dep := synthScenario(t, sc)
		e := newExplainer(t, sc, dep, nil)
		router := "R1"
		if name == "scenario2" {
			router = "R3"
		}
		ex, err := e.ExplainAll(router)
		if err != nil {
			t.Fatal(err)
		}
		if ex.Subspec.IsEmpty() {
			t.Fatalf("%s: unexpected empty subspec", name)
		}
		checks, err := e.CheckSubspec(router, ex.Subspec)
		if err != nil {
			t.Fatal(err)
		}
		for _, ch := range checks {
			if !ch.Holds {
				t.Errorf("%s %s: clause %s does not hold on the deployed config", name, router, ch.Req)
			}
		}
		ok, err := e.SatisfiesSubspec(router, ex.Subspec)
		if err != nil || !ok {
			t.Fatalf("%s: SatisfiesSubspec = %v, %v", name, ok, err)
		}
	}
}

func TestCheckSubspecCatchesBrokenEdit(t *testing.T) {
	// The administrator's "I want to make changes to R1" moment: an
	// edit that re-permits the provider routes violates the
	// subspecification — without re-running global verification.
	sc := scenarios.Scenario1()
	dep := synthScenario(t, sc)
	e := newExplainer(t, sc, dep, nil)
	ex, err := e.ExplainAll("R1")
	if err != nil {
		t.Fatal(err)
	}

	// Break R1: change the catch-all deny to permit.
	broken := config.Deployment{}
	for n, c := range dep {
		broken[n] = c
	}
	edited := dep["R1"].Clone()
	rm := edited.RouteMaps["R1_to_P1"]
	rm.Clauses[len(rm.Clauses)-1].Action = config.Permit
	broken["R1"] = edited

	e2, err := NewExplainer(sc.Net, sc.Requirements(), broken, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ok, err := e2.SatisfiesSubspec("R1", ex.Subspec)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("broken edit should violate the subspecification")
	}
	checks, err := e2.CheckSubspec("R1", ex.Subspec)
	if err != nil {
		t.Fatal(err)
	}
	failing := 0
	for _, ch := range checks {
		if !ch.Holds {
			failing++
		}
	}
	if failing == 0 {
		t.Fatal("no failing clause reported")
	}
	if FormatChecks(checks) == "" {
		t.Fatal("FormatChecks empty")
	}
}

func TestCheckSubspecErrors(t *testing.T) {
	sc := scenarios.Scenario1()
	dep := synthScenario(t, sc)
	e := newExplainer(t, sc, dep, nil)
	if _, err := e.CheckSubspec("R9", &spec.Block{Name: "R9"}); err == nil {
		t.Fatal("unknown router should fail")
	}
	// A pattern matching no route is an error, not silently true.
	badBlock := &spec.Block{Name: "R1", Reqs: []spec.Requirement{
		&spec.Forbid{Path: spec.NewPath("P2", "P1")}, // no such link
	}}
	if _, err := e.CheckSubspec("R1", badBlock); err == nil {
		t.Fatal("non-occurring pattern should fail")
	}
	// A preference whose route does not start at the device fails.
	badPref := &spec.Block{Name: "R1", Reqs: []spec.Requirement{
		&spec.Preference{Paths: []spec.Path{
			spec.NewPath("C", "R3", "R1"),
			spec.NewPath("C", "R3", "R2", "R1"),
		}},
	}}
	if _, err := e.CheckSubspec("R1", badPref); err == nil {
		t.Fatal("preference not anchored at the device should fail")
	}
}

func TestSubspecScope(t *testing.T) {
	// Figure 5's header: the R2 subspecification for no-transit is
	// scoped to the P2 interface.
	sc := scenarios.Scenario3()
	dep := synthScenario(t, sc)
	noTransit := sc.Spec.Block("Req1")
	ex, err := newExplainer(t, sc, dep, noTransit.Reqs).ExplainAll("R2")
	if err != nil {
		t.Fatal(err)
	}
	if ex.Subspec.Scope != "P2" {
		t.Fatalf("scope = %q, want P2 (block: %s)", ex.Subspec.Scope, spec.PrintBlock(ex.Subspec))
	}
	if ex.Subspec.Title() != "R2 to P2" {
		t.Fatalf("title = %q", ex.Subspec.Title())
	}
	// Scenario 2's R3 block mixes preferences and import drops: no
	// scope.
	sc2 := scenarios.Scenario2()
	dep2 := synthScenario(t, sc2)
	ex2, err := newExplainer(t, sc2, dep2, nil).ExplainAll("R3")
	if err != nil {
		t.Fatal(err)
	}
	if ex2.Subspec.Scope != "" {
		t.Fatalf("mixed block should have no scope, got %q", ex2.Subspec.Scope)
	}
}

func TestCheckSubspecPreferenceClause(t *testing.T) {
	// Scenario 2's preference clause validates against R3's config.
	sc := scenarios.Scenario2()
	dep := synthScenario(t, sc)
	e := newExplainer(t, sc, dep, nil)
	block := &spec.Block{Name: "R3", Reqs: []spec.Requirement{
		&spec.Preference{Paths: []spec.Path{
			spec.NewPath("R3", "R1", "P1", "D1"),
			spec.NewPath("R3", "R2", "P2", "D1"),
		}},
	}}
	ok, err := e.SatisfiesSubspec("R3", block)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("synthesized R3 must satisfy the preference clause")
	}
	// The reversed preference must fail.
	rev := &spec.Block{Name: "R3", Reqs: []spec.Requirement{
		&spec.Preference{Paths: []spec.Path{
			spec.NewPath("R3", "R2", "P2", "D1"),
			spec.NewPath("R3", "R1", "P1", "D1"),
		}},
	}}
	ok, err = e.SatisfiesSubspec("R3", rev)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("reversed preference should not hold")
	}
}

func TestInterpretation2SubspecHasNoDrops(t *testing.T) {
	// Under interpretation (2) the unlisted detours stay configured-in
	// as last resorts, so the Figure 4 drop clauses must vanish from
	// R3's subspecification — only preferences remain.
	sc := scenarios.Scenario2()
	opts := synthOpts()
	opts.AllowUnspecified = true
	res, err := synthWith(sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	copts := DefaultOptions()
	copts.Synth = opts
	e, err := NewExplainer(sc.Net, sc.Requirements(), res, copts)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := e.ExplainAll("R3")
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Subspec.Forbids()) != 0 {
		t.Fatalf("interp-2 subspec should have no drops: %v", subspecStrings(ex.Subspec))
	}
	if len(ex.Subspec.Preferences()) == 0 {
		t.Fatalf("interp-2 subspec should keep the preferences: %v", subspecStrings(ex.Subspec))
	}
}
