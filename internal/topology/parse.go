package topology

import (
	"fmt"
	"net/netip"
	"sort"
	"strconv"
	"strings"
)

// Parse reads a topology from the plain-text format produced by
// Print:
//
//	# comment
//	router R1 as 100
//	external P1 as 500 prefix 128.0.1.0/24
//	stub C as 600 prefix 123.0.1.0/20
//	link R1 P1
//
// External and stub lines may omit the prefix clause.
func Parse(src string) (*Network, error) {
	n := New()
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		fail := func(format string, args ...any) error {
			return fmt.Errorf("topology: line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "router", "external", "stub":
			if len(fields) < 4 || fields[2] != "as" {
				return nil, fail("expected '%s <name> as <asn> [prefix <p>]'", fields[0])
			}
			name := fields[1]
			asn, err := strconv.Atoi(fields[3])
			if err != nil {
				return nil, fail("bad AS number %q", fields[3])
			}
			var prefix netip.Prefix
			if len(fields) == 6 && fields[4] == "prefix" {
				prefix, err = netip.ParsePrefix(fields[5])
				if err != nil {
					return nil, fail("bad prefix %q: %v", fields[5], err)
				}
			} else if len(fields) != 4 {
				return nil, fail("trailing tokens")
			}
			switch fields[0] {
			case "router":
				if prefix.IsValid() {
					return nil, fail("internal routers do not originate prefixes in this model")
				}
				err = n.AddRouter(name, asn)
			case "external":
				err = n.AddExternal(name, asn, prefix)
			default:
				err = n.AddStub(name, asn, prefix)
			}
			if err != nil {
				return nil, fail("%v", err)
			}
		case "link":
			if len(fields) != 3 {
				return nil, fail("expected 'link <a> <b>'")
			}
			if err := n.AddLink(fields[1], fields[2]); err != nil {
				return nil, fail("%v", err)
			}
		default:
			return nil, fail("unrecognized directive %q", fields[0])
		}
	}
	return n, nil
}

// Print renders the network in the format Parse reads, nodes first
// (sorted), then links (sorted).
func Print(n *Network) string {
	var sb strings.Builder
	for _, r := range n.Routers() {
		switch {
		case r.Role == Internal:
			fmt.Fprintf(&sb, "router %s as %d\n", r.Name, r.AS)
		case r.Stub:
			fmt.Fprintf(&sb, "stub %s as %d", r.Name, r.AS)
			if r.HasPrefix {
				fmt.Fprintf(&sb, " prefix %s", r.Prefix)
			}
			sb.WriteString("\n")
		default:
			fmt.Fprintf(&sb, "external %s as %d", r.Name, r.AS)
			if r.HasPrefix {
				fmt.Fprintf(&sb, " prefix %s", r.Prefix)
			}
			sb.WriteString("\n")
		}
	}
	links := n.Links()
	sort.Slice(links, func(i, j int) bool {
		if links[i][0] != links[j][0] {
			return links[i][0] < links[j][0]
		}
		return links[i][1] < links[j][1]
	})
	for _, l := range links {
		fmt.Fprintf(&sb, "link %s %s\n", l[0], l[1])
	}
	return sb.String()
}
