package bench

import (
	"context"
	"strconv"
	"strings"
	"testing"
)

func TestSeedTable(t *testing.T) {
	tbl, err := SeedTable(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tbl.Rows))
	}
	// §4-C1: every scenario's seed exceeds 1000 atoms.
	for _, row := range tbl.Rows {
		atoms, err := strconv.Atoi(row[2])
		if err != nil {
			t.Fatal(err)
		}
		if atoms <= 1000 {
			t.Errorf("%s: %d atoms, paper claims >1000", row[0], atoms)
		}
	}
}

func TestSimplifyTable(t *testing.T) {
	tbl, err := SimplifyTable(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		seed, _ := strconv.Atoi(row[2])
		simplified, _ := strconv.Atoi(row[3])
		if simplified >= seed {
			t.Errorf("%s/%s: no reduction (%d -> %d)", row[0], row[1], seed, simplified)
		}
	}
}

func TestLinearityTable(t *testing.T) {
	tbl, err := LinearityTable(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 4 {
		t.Fatalf("rows = %d, want at least 4", len(tbl.Rows))
	}
	// §4-C3: residual grows monotonically and sub-quadratically.
	prev := 0
	for i, row := range tbl.Rows {
		residual, _ := strconv.Atoi(row[1])
		if residual < prev {
			t.Errorf("row %d: residual shrank (%d -> %d)", i, prev, residual)
		}
		prev = residual
		n, _ := strconv.Atoi(row[0])
		if residual > 20*n {
			t.Errorf("residual %d at %d vars is super-linear", residual, n)
		}
	}
}

func TestPerVarTable(t *testing.T) {
	tbl, err := PerVarTable(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 { // R1 in scenario 1 has 4 fields
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
	// §4-C4: every per-variable residual is tiny.
	for _, row := range tbl.Rows {
		atoms, _ := strconv.Atoi(row[2])
		if atoms > 10 {
			t.Errorf("%s: per-variable residual %d too large", row[0], atoms)
		}
	}
}

func TestFigureTable(t *testing.T) {
	tbl, err := FigureTable(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
	byFigure := map[string]string{}
	for _, row := range tbl.Rows {
		byFigure[row[0]] = row[3]
	}
	if !strings.Contains(byFigure["Fig. 5"], "!(P1->R1->R2->P2)") {
		t.Errorf("Fig. 5 content: %q", byFigure["Fig. 5"])
	}
	if byFigure["Fig. 5 (empty)"] != "{ }" {
		t.Errorf("Fig. 5 empty subspec: %q", byFigure["Fig. 5 (empty)"])
	}
	if !strings.Contains(byFigure["Fig. 4"], ">>") {
		t.Errorf("Fig. 4 misses the preference: %q", byFigure["Fig. 4"])
	}
}

func TestInterpretationTable(t *testing.T) {
	tbl, err := InterpretationTable(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tbl.Rows))
	}
	blocked, _ := strconv.Atoi(tbl.Rows[0][1])
	lastResort, _ := strconv.Atoi(tbl.Rows[1][1])
	if lastResort <= blocked {
		t.Errorf("interpretation 2 must be more redundant: %d vs %d", lastResort, blocked)
	}
}

func TestAblationTable(t *testing.T) {
	tbl, err := AblationTable(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[string]int{}
	for _, row := range tbl.Rows {
		n, _ := strconv.Atoi(row[1])
		sizes[row[0]] = n
	}
	full := sizes["full (15 rules, fixpoint)"]
	noEq := sizes["without S14 eq-propagation"]
	seed := sizes["unsimplified seed"]
	if !(full < noEq && noEq < seed) {
		t.Errorf("ablation ordering broken: full=%d noEq=%d seed=%d", full, noEq, seed)
	}
}

func TestRuleFireTable(t *testing.T) {
	tbl, err := RuleFireTable(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 15 {
		t.Fatalf("rows = %d, want 15", len(tbl.Rows))
	}
	total := 0
	for _, row := range tbl.Rows {
		for _, cell := range row[1:] {
			n, _ := strconv.Atoi(cell)
			total += n
		}
	}
	if total == 0 {
		t.Fatal("no rules fired at all")
	}
}

func TestComplementTable(t *testing.T) {
	tbl, err := ComplementTable(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 4 {
		t.Fatalf("rows = %d, want >= 4", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[3] == "R3" {
			t.Fatal("complement must not constrain the focused router")
		}
	}
}

func TestTableJSON(t *testing.T) {
	tbl := &Table{ID: "x", Caption: "c", Columns: []string{"a", "b"}}
	tbl.AddRow(1, "two")
	j := tbl.JSON()
	rows := j["rows"].([]map[string]string)
	if len(rows) != 1 || rows[0]["a"] != "1" || rows[0]["b"] != "two" {
		t.Fatalf("JSON = %v", j)
	}
}

func TestDiffTableQuick(t *testing.T) {
	tbl, err := DiffTable(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	// Quick mode covers the three seed scenarios; every scenario has at
	// least an action-flip, a pref-change, and a med-change site.
	if len(tbl.Rows) < 9 {
		t.Fatalf("rows = %d, want >= 9", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("%s %s: incremental report not byte-identical to cold", row[0], row[1])
		}
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{ID: "x", Caption: "c", Columns: []string{"a", "bb"}}
	tbl.AddRow(1, "hello")
	tbl.AddRow(2.5, "y")
	out := tbl.Render()
	for _, want := range []string{"## x", "a    bb", "1    hello", "2.5  y"} {
		if !strings.Contains(out, want) {
			t.Errorf("render misses %q:\n%s", want, out)
		}
	}
}

// TestServeQuick drives the serving-layer harness on the seed
// scenarios and pins its acceptance properties: a nonzero response-
// cache hit rate, zero errors, and byte-identity of every served
// report with the CLI's output.
func TestServeQuick(t *testing.T) {
	rep, err := Serve(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) < 3 {
		t.Fatalf("entries = %d, want >= 3", len(rep.Entries))
	}
	for _, e := range rep.Entries {
		if e.HitRate <= 0 {
			t.Errorf("%s: hit rate %v, want > 0", e.Workload, e.HitRate)
		}
		if !e.ByteIdentical {
			t.Errorf("%s: served reports diverge from CLI output", e.Workload)
		}
		if e.Errors != 0 {
			t.Errorf("%s: %d request errors", e.Workload, e.Errors)
		}
		if e.ThroughputRPS <= 0 || e.P99MS < e.P50MS {
			t.Errorf("%s: implausible timing (rps=%v p50=%v p99=%v)", e.Workload, e.ThroughputRPS, e.P50MS, e.P99MS)
		}
	}
}
