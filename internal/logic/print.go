package logic

import (
	"fmt"
	"strconv"
	"strings"
)

// This file implements the two textual renderings of terms:
//
//   - the infix "surface syntax" used in diagnostics, examples and the
//     parser in parse.go (for example "(x = permit) & !(lp < 100)"), and
//   - an SMT-LIB 2 s-expression rendering used when dumping seed
//     specifications for offline inspection.

// precedence levels for the infix printer, loosest to tightest.
const (
	precIff = iota
	precImplies
	precOr
	precAnd
	precCmp
	precAdd
	precNot
	precAtom
)

func opPrec(o Op) int {
	switch o {
	case OpIff:
		return precIff
	case OpImplies:
		return precImplies
	case OpOr:
		return precOr
	case OpAnd:
		return precAnd
	case OpNot:
		return precNot
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return precCmp
	case OpAdd, OpSub:
		return precAdd
	}
	return precAtom
}

func infixSym(o Op) string {
	switch o {
	case OpAnd:
		return " & "
	case OpOr:
		return " | "
	case OpImplies:
		return " => "
	case OpIff:
		return " <=> "
	case OpEq:
		return " = "
	case OpNe:
		return " != "
	case OpLt:
		return " < "
	case OpLe:
		return " <= "
	case OpGt:
		return " > "
	case OpGe:
		return " >= "
	case OpAdd:
		return " + "
	case OpSub:
		return " - "
	}
	return " ?? "
}

func writeInfix(sb *strings.Builder, t Term, parentPrec int) {
	switch n := t.(type) {
	case *Var:
		sb.WriteString(n.Name)
	case *BoolLit:
		if n.Val {
			sb.WriteString("true")
		} else {
			sb.WriteString("false")
		}
	case *IntLit:
		sb.WriteString(strconv.FormatInt(n.Val, 10))
	case *EnumLit:
		sb.WriteString(n.Val)
	case *Apply:
		p := opPrec(n.Op)
		switch n.Op {
		case OpNot:
			if parentPrec > p {
				sb.WriteString("(")
			}
			sb.WriteString("!")
			writeInfix(sb, n.Args[0], p+1)
			if parentPrec > p {
				sb.WriteString(")")
			}
		case OpIte:
			sb.WriteString("ite(")
			writeInfix(sb, n.Args[0], 0)
			sb.WriteString(", ")
			writeInfix(sb, n.Args[1], 0)
			sb.WriteString(", ")
			writeInfix(sb, n.Args[2], 0)
			sb.WriteString(")")
		default:
			if parentPrec > p {
				sb.WriteString("(")
			}
			sym := infixSym(n.Op)
			for i, a := range n.Args {
				if i > 0 {
					sb.WriteString(sym)
				}
				// Children at the same precedence need parens on the
				// right for non-associative operators; for simplicity
				// we require strictly tighter children everywhere
				// except the n-ary associative connectives.
				childPrec := p + 1
				if n.Op == OpAnd || n.Op == OpOr || n.Op == OpAdd {
					childPrec = p
				}
				writeInfix(sb, a, childPrec)
			}
			if parentPrec > p {
				sb.WriteString(")")
			}
		}
	default:
		fmt.Fprintf(sb, "<unknown term %T>", t)
	}
}

// String renders v in surface syntax.
func (v *Var) String() string { return v.Name }

// String renders b in surface syntax.
func (b *BoolLit) String() string {
	if b.Val {
		return "true"
	}
	return "false"
}

// String renders i in surface syntax.
func (i *IntLit) String() string { return strconv.FormatInt(i.Val, 10) }

// String renders e in surface syntax.
func (e *EnumLit) String() string { return e.Val }

// String renders a in surface syntax.
func (a *Apply) String() string {
	var sb strings.Builder
	writeInfix(&sb, a, 0)
	return sb.String()
}

func smtOpName(o Op) string {
	switch o {
	case OpAnd:
		return "and"
	case OpOr:
		return "or"
	case OpNot:
		return "not"
	case OpImplies:
		return "=>"
	case OpIff:
		return "="
	case OpEq:
		return "="
	case OpNe:
		return "distinct"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpIte:
		return "ite"
	}
	return "?"
}

// SMTLIB renders t as an SMT-LIB 2 s-expression. Enum literals are
// rendered as bare symbols; consumers declaring the corresponding
// datatype can feed the output to an external solver for
// cross-checking.
func SMTLIB(t Term) string {
	var sb strings.Builder
	writeSMT(&sb, t)
	return sb.String()
}

func writeSMT(sb *strings.Builder, t Term) {
	switch n := t.(type) {
	case *Var:
		sb.WriteString(n.Name)
	case *BoolLit:
		if n.Val {
			sb.WriteString("true")
		} else {
			sb.WriteString("false")
		}
	case *IntLit:
		if n.Val < 0 {
			fmt.Fprintf(sb, "(- %d)", -n.Val)
		} else {
			sb.WriteString(strconv.FormatInt(n.Val, 10))
		}
	case *EnumLit:
		sb.WriteString(n.Val)
	case *Apply:
		sb.WriteString("(")
		sb.WriteString(smtOpName(n.Op))
		for _, a := range n.Args {
			sb.WriteString(" ")
			writeSMT(sb, a)
		}
		sb.WriteString(")")
	}
}

// PrintConjunction renders a conjunction one conjunct per line, for
// human inspection of seed and simplified specifications. True renders
// as "true" and an empty conjunction list as "".
func PrintConjunction(t Term) string {
	cs := Conjuncts(t)
	if len(cs) == 0 {
		return "true"
	}
	lines := make([]string, len(cs))
	for i, c := range cs {
		lines[i] = c.String()
	}
	return strings.Join(lines, "\n")
}
