package config

import "testing"

// FuzzParse checks the configuration parser never panics and that
// accepted configurations round-trip.
func FuzzParse(f *testing.F) {
	f.Add("router bgp R1\nneighbor P1 route-map m out\nroute-map m deny 10\n match community 100:2\n")
	f.Add("router bgp R1\nip prefix-list p seq 10 permit 10.0.0.0/8\n")
	f.Add("router bgp R1\nroute-map m ?hole 10\n set local-preference ?lp\n")
	f.Add("router bgp R1\nroute-map m permit 10\n match next-hop R2\n set metric 5\n")
	f.Add("garbage")
	f.Add("router bgp")
	f.Add("router bgp R1\nroute-map m permit 10\nroute-map m permit 5\n")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Parse(src)
		if err != nil {
			return
		}
		printed := Print(c)
		c2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed config does not reparse: %v\n%s", err, printed)
		}
		if Print(c2) != printed {
			t.Fatalf("print not stable:\n%s\n---\n%s", printed, Print(c2))
		}
	})
}
