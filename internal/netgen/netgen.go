// Package netgen generates synthesis workloads — topology, intent
// specification, and configuration sketch triples — at parameterized
// sizes. The paper's evaluation stops at the Figure 1b topology and
// explicitly leaves scalability "untested"; this generator powers the
// scaling experiments that extend it (grid, fat-tree, and random
// topologies with the same intent families as the paper's scenarios).
package netgen

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/spec"
	"repro/internal/topology"
)

// Workload is one complete synthesis problem instance.
type Workload struct {
	Name   string
	Net    *topology.Network
	Spec   *spec.Spec
	Sketch config.Deployment
}

// Requirements flattens the spec.
func (w *Workload) Requirements() []spec.Requirement { return w.Spec.Requirements() }

// internalNeighbors returns the internal routers adjacent to node,
// sorted.
func internalNeighbors(net *topology.Network, node string) []string {
	var out []string
	for _, nb := range net.Neighbors(node) {
		if r := net.Router(nb); r != nil && r.Role == topology.Internal {
			out = append(out, nb)
		}
	}
	return out
}

// exportTemplate mirrors scenarios.exportSketch: a symbolic
// prefix-match clause plus a symbolic catch-all on the export to peer.
func exportTemplate(router, peer string) *config.RouteMap {
	base := fmt.Sprintf("%s_to_%s", router, peer)
	return &config.RouteMap{
		Name: base,
		Clauses: []*config.Clause{
			{
				Seq:        10,
				ActionHole: base + "_10_action",
				Matches: []*config.Match{
					{Kind: config.MatchPrefixList, ValueHole: base + "_10_match"},
				},
			},
			{Seq: 100, ActionHole: base + "_100_action"},
		},
	}
}

func taggerTemplate(router, peer string) *config.RouteMap {
	base := fmt.Sprintf("%s_from_%s", router, peer)
	return &config.RouteMap{
		Name: base,
		Clauses: []*config.Clause{
			{
				Seq:    10,
				Action: config.Permit,
				Sets: []*config.Set{
					{Kind: config.SetCommunity, ParamHole: base + "_10_tag"},
				},
			},
		},
	}
}

func selectorTemplate(router, peer string) *config.RouteMap {
	base := fmt.Sprintf("%s_from_%s", router, peer)
	return &config.RouteMap{
		Name: base,
		Clauses: []*config.Clause{
			{
				Seq:        10,
				ActionHole: base + "_10_action",
				Matches: []*config.Match{
					{Kind: config.MatchCommunity, ValueHole: base + "_10_match"},
				},
				Sets: []*config.Set{
					{Kind: config.SetLocalPref, ParamHole: base + "_10_lp"},
				},
			},
			{
				Seq:        100,
				ActionHole: base + "_100_action",
				Sets: []*config.Set{
					{Kind: config.SetLocalPref, ParamHole: base + "_100_lp"},
				},
			},
		},
	}
}

// NoTransit builds the paper's Req1 intent over any topology carrying
// the standard C/P1/P2/D1 externals, with export templates at every
// provider-adjacent internal router.
func NoTransit(name string, net *topology.Network) (*Workload, error) {
	s, err := spec.Parse(`
Req1 {
    !(P1->...->P2)
    !(P2->...->P1)
}`)
	if err != nil {
		return nil, err
	}
	sketch := config.Deployment{}
	ensure := func(router string) *config.Config {
		if c, ok := sketch[router]; ok {
			return c
		}
		c := config.New(router)
		sketch[router] = c
		return c
	}
	for _, provider := range []string{"P1", "P2"} {
		if net.Router(provider) == nil {
			return nil, fmt.Errorf("netgen: topology lacks %s", provider)
		}
		for _, r := range internalNeighbors(net, provider) {
			c := ensure(r)
			rm := exportTemplate(r, provider)
			c.AddRouteMap(rm)
			c.AddNeighbor(provider, "", rm.Name)
		}
	}
	return &Workload{Name: name, Net: net, Spec: s, Sketch: sketch}, nil
}

// WithPreference extends a workload with the paper's Req2 intent —
// prefer reaching D1 through P1 over P2 — adding tagger templates at
// the provider-adjacent routers and selector templates at the
// customer-adjacent router.
func WithPreference(w *Workload) (*Workload, error) {
	s2, err := spec.Parse(`
Req2 {
    (C->...->P1->D1)
    >> (C->...->P2->D1)
}`)
	if err != nil {
		return nil, err
	}
	w.Spec.Blocks = append(w.Spec.Blocks, s2.Blocks...)

	ensure := func(router string) *config.Config {
		if c, ok := w.Sketch[router]; ok {
			return c
		}
		c := config.New(router)
		w.Sketch[router] = c
		return c
	}
	for _, provider := range []string{"P1", "P2"} {
		for _, r := range internalNeighbors(w.Net, provider) {
			c := ensure(r)
			rm := taggerTemplate(r, provider)
			c.AddRouteMap(rm)
			if n := c.Neighbor(provider); n != nil {
				n.ImportMap = rm.Name
			} else {
				c.AddNeighbor(provider, rm.Name, "")
			}
		}
	}
	if w.Net.Router("C") == nil {
		return nil, fmt.Errorf("netgen: topology lacks C")
	}
	for _, r := range internalNeighbors(w.Net, "C") {
		c := ensure(r)
		for _, nb := range internalNeighbors(w.Net, r) {
			rm := selectorTemplate(r, nb)
			c.AddRouteMap(rm)
			c.AddNeighbor(nb, rm.Name, "")
		}
	}
	return w, nil
}

// Populate gives every internal router the sketch leaves unconfigured
// a minimal concrete config: a permit-all import map on each internal
// neighbor session. The maps are semantically neutral (a single permit
// clause with no matches or sets accepts exactly what an absent map
// accepts), but they make every router a configured — hence
// explainable — device. Whole-network report experiments at scale need
// this: without it only the handful of sketch routers produce report
// sections, no matter how large the topology is.
func Populate(w *Workload) *Workload {
	for _, r := range w.Net.Internals() {
		if _, ok := w.Sketch[r.Name]; ok {
			continue
		}
		c := config.New(r.Name)
		for _, nb := range internalNeighbors(w.Net, r.Name) {
			rm := &config.RouteMap{
				Name:    fmt.Sprintf("%s_from_%s", r.Name, nb),
				Clauses: []*config.Clause{{Seq: 10, Action: config.Permit}},
			}
			c.AddRouteMap(rm)
			c.AddNeighbor(nb, rm.Name, "")
		}
		w.Sketch[r.Name] = c
	}
	return w
}

// Grid builds a no-transit workload on a w x h grid; withPref adds the
// preference intent.
func Grid(w, h int, withPref bool) (*Workload, error) {
	wl, err := NoTransit(fmt.Sprintf("grid_%dx%d", w, h), topology.Grid(w, h))
	if err != nil {
		return nil, err
	}
	if withPref {
		return WithPreference(wl)
	}
	return wl, nil
}

// Random builds a no-transit workload on a seeded random topology.
func Random(n int, avgDegree float64, seed int64, withPref bool) (*Workload, error) {
	wl, err := NoTransit(fmt.Sprintf("rand_%d_s%d", n, seed), topology.Random(n, avgDegree, seed))
	if err != nil {
		return nil, err
	}
	if withPref {
		return WithPreference(wl)
	}
	return wl, nil
}

// FatTree builds a no-transit workload on a k-ary fat-tree.
func FatTree(k int, withPref bool) (*Workload, error) {
	wl, err := NoTransit(fmt.Sprintf("fattree_%d", k), topology.FatTree(k))
	if err != nil {
		return nil, err
	}
	if withPref {
		return WithPreference(wl)
	}
	return wl, nil
}
