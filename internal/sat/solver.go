package sat

import (
	"context"
	"fmt"
	"math"
)

// Stats counts solver work, exposed for the benchmark harness.
type Stats struct {
	Solves       uint64 // Solve / SolveContext calls
	Decisions    uint64
	Propagations uint64
	Conflicts    uint64
	Restarts     uint64
	Learnt       uint64
	MaxVars      int
	Clauses      int
}

type clause struct {
	lits     []Lit
	learnt   bool
	activity float64
}

// watcher pairs a watching clause with a "blocker" literal: if the
// blocker is already true the clause is satisfied and need not be
// inspected. This is MiniSat's most important constant-factor trick.
type watcher struct {
	c       *clause
	blocker Lit
}

// Solver is a CDCL SAT solver. The zero value is not usable; create
// solvers with NewSolver. A Solver is not safe for concurrent use.
type Solver struct {
	ok      bool // false once the clause set is known unsat at level 0
	clauses []*clause
	learnts []*clause
	watches [][]watcher // indexed by Lit

	assigns  []LBool   // current assignment, by Var
	level    []int     // decision level of each assigned var
	reason   []*clause // implying clause of each assigned var (nil for decisions)
	trail    []Lit
	trailLim []int // trail positions where each decision level starts
	qhead    int   // propagation queue head (index into trail)

	activity []float64
	varInc   float64
	order    *varHeap
	phase    []bool // saved polarity per variable

	seen     []bool
	analyzeT []Lit // scratch for conflict analysis

	claInc float64

	assumptions []Lit
	core        []Lit   // filled when Solve(assumptions) returns Unsat
	model       []LBool // snapshot of the last Sat assignment

	// proof receives the derivation trace when proof logging is on
	// (see SetProof); emptyLogged latches the terminal empty-clause
	// lemma so it is recorded exactly once.
	proof       ProofWriter
	emptyLogged bool

	// ConflictBudget bounds the number of conflicts a Solve call may
	// spend before returning Unknown. Zero or negative means no bound.
	ConflictBudget int64

	Stats Stats
}

// NewSolver creates an empty solver.
func NewSolver() *Solver {
	s := &Solver{ok: true, varInc: 1.0, claInc: 1.0}
	s.order = newVarHeap(&s.activity)
	return s
}

// NewVar introduces a fresh variable and returns it.
func (s *Solver) NewVar() Var {
	v := Var(len(s.assigns))
	s.assigns = append(s.assigns, LUndef)
	s.level = append(s.level, -1)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, false)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.order.insert(v)
	if int(v)+1 > s.Stats.MaxVars {
		s.Stats.MaxVars = int(v) + 1
	}
	return v
}

// NumVars reports how many variables have been created.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NumClauses reports how many problem clauses are currently held.
func (s *Solver) NumClauses() int { return len(s.clauses) }

func (s *Solver) value(l Lit) LBool {
	v := s.assigns[l.Var()]
	if v == LUndef {
		return LUndef
	}
	if l.IsPos() {
		return v
	}
	if v == LTrue {
		return LFalse
	}
	return LTrue
}

// Value returns the assignment of v in the most recent Sat model. It
// returns LUndef if no model is available.
func (s *Solver) Value(v Var) LBool {
	if int(v) >= len(s.model) {
		return LUndef
	}
	return s.model[v]
}

// ValueLit returns the truth of literal l in the most recent Sat model.
func (s *Solver) ValueLit(l Lit) LBool {
	v := s.Value(l.Var())
	if v == LUndef || l.IsPos() {
		return v
	}
	if v == LTrue {
		return LFalse
	}
	return LTrue
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// AddClause adds a clause over the given literals. It returns false if
// the solver becomes (or already was) unsatisfiable at the top level.
// The slice is copied, and the clause is simplified: duplicate literals
// are removed, tautologies dropped, and literals already false at level
// 0 deleted.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: AddClause called during search")
	}
	// Log the clause exactly as given: the proof's input set is what
	// the caller asserted, and every simplification below (dropping
	// false literals, collapsing to a unit) is a derivation the checker
	// reproduces by unit propagation on its own.
	s.logProof(ProofInput, lits)
	// Sort-free simplification over a small scratch copy.
	out := make([]Lit, 0, len(lits))
	for _, l := range lits {
		if int(l.Var()) >= len(s.assigns) {
			panic(fmt.Sprintf("sat: clause references unknown variable %d", l.Var()))
		}
		switch s.value(l) {
		case LTrue:
			return true // satisfied at level 0
		case LFalse:
			continue // cannot help
		}
		dup, taut := false, false
		for _, m := range out {
			if m == l {
				dup = true
				break
			}
			if m == l.Neg() {
				taut = true
				break
			}
		}
		if taut {
			return true
		}
		if !dup {
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.ok = false
		s.logEmptyClause()
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		s.ok = s.propagate() == nil
		if !s.ok {
			s.logEmptyClause()
		}
		return s.ok
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.Stats.Clauses++
	s.attach(c)
	return true
}

func (s *Solver) attach(c *clause) {
	// Watch the first two literals; watch lists are indexed by the
	// *negation* of the watched literal so that when a literal becomes
	// false we visit the clauses watching it.
	s.watches[c.lits[0].Neg()] = append(s.watches[c.lits[0].Neg()], watcher{c: c, blocker: c.lits[1]})
	s.watches[c.lits[1].Neg()] = append(s.watches[c.lits[1].Neg()], watcher{c: c, blocker: c.lits[0]})
}

func (s *Solver) uncheckedEnqueue(l Lit, from *clause) {
	v := l.Var()
	s.assigns[v] = boolToLBool(l.IsPos())
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation over the two-watched-literal
// scheme. It returns the conflicting clause, or nil if propagation
// completed without conflict.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is now true; visit clauses watching !p
		s.qhead++
		s.Stats.Propagations++

		ws := s.watches[p]
		kept := ws[:0]
		var conflict *clause
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.value(w.blocker) == LTrue {
				kept = append(kept, w)
				continue
			}
			c := w.c
			// Normalize so that lits[1] is the false literal !p.
			falseLit := p.Neg()
			if c.lits[0] == falseLit {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			// If the other watched literal is true, the clause is
			// satisfied; update the blocker.
			first := c.lits[0]
			if first != w.blocker && s.value(first) == LTrue {
				kept = append(kept, watcher{c: c, blocker: first})
				continue
			}
			// Look for a new literal to watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != LFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Neg()] = append(s.watches[c.lits[1].Neg()], watcher{c: c, blocker: first})
					found = true
					break
				}
			}
			if found {
				continue // watcher moved to another list
			}
			// Clause is unit or conflicting.
			kept = append(kept, watcher{c: c, blocker: first})
			if s.value(first) == LFalse {
				// Conflict: keep remaining watchers and bail out.
				conflict = c
				for i++; i < len(ws); i++ {
					kept = append(kept, ws[i])
				}
				s.qhead = len(s.trail)
				break
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[p] = kept
		if conflict != nil {
			return conflict
		}
	}
	return nil
}

// analyze performs first-UIP conflict analysis, returning the learnt
// clause (with the asserting literal first) and the backjump level.
func (s *Solver) analyze(conflict *clause) ([]Lit, int) {
	learnt := []Lit{0} // slot 0 reserved for the asserting literal
	pathC := 0
	var p Lit = -1
	idx := len(s.trail) - 1
	c := conflict

	for {
		start := 0
		if p != -1 {
			start = 1 // skip the asserting literal of the reason clause
		}
		if c.learnt {
			s.bumpClause(c)
		}
		for _, q := range c.lits[start:] {
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if s.level[v] >= s.decisionLevel() {
				pathC++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Select next literal on the trail to resolve on.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		s.seen[v] = false
		pathC--
		if pathC == 0 {
			learnt[0] = p.Neg()
			break
		}
		c = s.reason[v]
	}

	// Conflict-clause minimization (local): drop literals implied by
	// the rest of the clause through their reason clauses. The seen
	// flags of removed literals must still be cleared afterwards, so
	// remember the full pre-minimization list.
	toClear := append([]Lit(nil), learnt...)
	out := learnt[:1]
	for _, q := range learnt[1:] {
		if !s.redundant(q) {
			out = append(out, q)
		}
	}
	learnt = out

	// Compute backjump level: the highest level among the non-asserting
	// literals, and move a literal of that level into slot 1 so it gets
	// watched.
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = s.level[learnt[1].Var()]
	}

	for _, q := range toClear {
		s.seen[q.Var()] = false
	}
	return learnt, btLevel
}

// redundant reports whether literal q of a learnt clause is implied by
// the remaining marked literals (a cheap version of clause
// minimization: q is redundant if every literal of its reason is
// already marked or at level 0).
func (s *Solver) redundant(q Lit) bool {
	r := s.reason[q.Var()]
	if r == nil {
		return false
	}
	for _, l := range r.lits[1:] {
		v := l.Var()
		if s.level[v] != 0 && !s.seen[v] {
			return false
		}
	}
	return true
}

// analyzeFinal computes the subset of assumptions responsible for
// forcing p false; used to build the unsat core when solving under
// assumptions.
func (s *Solver) analyzeFinal(p Lit) []Lit {
	out := []Lit{p}
	if s.decisionLevel() == 0 {
		return out
	}
	s.seen[p.Var()] = true
	for i := len(s.trail) - 1; i >= s.trailLim[0]; i-- {
		v := s.trail[i].Var()
		if !s.seen[v] {
			continue
		}
		if s.reason[v] == nil {
			// Decision: under assumption-driven search all decisions
			// above level 0 that appear in the cone are assumptions.
			out = append(out, s.trail[i].Neg())
		} else {
			for _, l := range s.reason[v].lits[1:] {
				if s.level[l.Var()] > 0 {
					s.seen[l.Var()] = true
				}
			}
		}
		s.seen[v] = false
	}
	s.seen[p.Var()] = false
	// Literal-level dedup: a repeated literal in the final clause would
	// surface the same assumption twice in the reported core. The cone
	// walk visits each trail entry once, so repeats should be
	// impossible by construction — this guards the invariant rather
	// than trusting it, since the core is what callers act on.
	dedup := out[:0]
	for _, l := range out {
		found := false
		for _, m := range dedup {
			if m == l {
				found = true
				break
			}
		}
		if !found {
			dedup = append(dedup, l)
		}
	}
	return dedup
}

func (s *Solver) bumpVar(v Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *Solver) decayVar() { s.varInc *= 1.0 / 0.95 }

func (s *Solver) bumpClause(c *clause) {
	c.activity += s.claInc
	if c.activity > 1e20 {
		for _, lc := range s.learnts {
			lc.activity *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) decayClause() { s.claInc *= 1.0 / 0.999 }

// cancelUntil undoes all assignments above the given decision level.
func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		l := s.trail[i]
		v := l.Var()
		s.assigns[v] = LUndef
		s.reason[v] = nil
		s.phase[v] = l.IsPos() // phase saving
		s.order.insert(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) pickBranchLit() Lit {
	for !s.order.empty() {
		v := s.order.removeMax()
		if s.assigns[v] == LUndef {
			return MkLit(v, s.phase[v])
		}
	}
	return -1
}

// luby computes the Luby restart sequence value for index i (1-based),
// scaled by base.
func luby(base float64, i uint64) float64 {
	// Find the finite subsequence containing i, then the position.
	var size, seq uint64 = 1, 0
	for size < i+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != i {
		size = (size - 1) / 2
		seq--
		i = i % size
	}
	return base * math.Pow(2, float64(seq))
}

// reduceDB deletes the less active half of the learnt clauses to keep
// the database small. Clauses that are reasons for current assignments
// or binary are kept.
func (s *Solver) reduceDB() {
	if len(s.learnts) < 2 {
		return
	}
	// Partial selection: simple sort by activity ascending.
	learnts := s.learnts
	for i := 1; i < len(learnts); i++ {
		for j := i; j > 0 && learnts[j].activity < learnts[j-1].activity; j-- {
			learnts[j], learnts[j-1] = learnts[j-1], learnts[j]
		}
	}
	locked := make(map[*clause]bool)
	for _, r := range s.reason {
		if r != nil {
			locked[r] = true
		}
	}
	keep := learnts[:0:0]
	removed := 0
	for i, c := range learnts {
		if removed < len(learnts)/2 && !locked[c] && len(c.lits) > 2 {
			s.detach(c)
			s.logProof(ProofDelete, c.lits)
			removed++
			continue
		}
		_ = i
		keep = append(keep, c)
	}
	s.learnts = keep
}

func (s *Solver) detach(c *clause) {
	for _, wl := range []Lit{c.lits[0].Neg(), c.lits[1].Neg()} {
		ws := s.watches[wl]
		for i, w := range ws {
			if w.c == c {
				ws[i] = ws[len(ws)-1]
				s.watches[wl] = ws[:len(ws)-1]
				break
			}
		}
	}
}

// Solve decides satisfiability under the given assumption literals
// (which may be empty). On Sat, Value/ValueLit expose the model. On
// Unsat under assumptions, Core returns a subset of the assumptions
// that is already unsatisfiable.
func (s *Solver) Solve(assumptions ...Lit) Status {
	st, _ := s.SolveContext(context.Background(), assumptions...)
	return st
}

// SolveContext is Solve with cancellation: the context is checked
// inside the CDCL search loop (every few conflicts) and at every
// restart, so a cancelled or expired context aborts a running solve
// within one restart interval. On cancellation the status is Unknown
// and the error is the context's error; all other outcomes return a
// nil error.
func (s *Solver) SolveContext(ctx context.Context, assumptions ...Lit) (Status, error) {
	s.Stats.Solves++
	// Clear the previous core before the early return below: Unsat on a
	// dead solver is unconditional, and a stale core from an earlier
	// assumption query would misattribute it.
	s.core = nil
	if !s.ok {
		return Unsat, nil
	}
	s.assumptions = assumptions
	defer s.cancelUntil(0)

	maxLearnts := float64(len(s.clauses))/3 + 100
	conflictsAtStart := s.Stats.Conflicts
	var restart uint64
	for {
		if err := ctx.Err(); err != nil {
			return Unknown, err
		}
		budget := int64(luby(100, restart))
		st := s.search(ctx, budget, &maxLearnts)
		if st == Sat {
			s.model = make([]LBool, len(s.assigns))
			copy(s.model, s.assigns)
			return Sat, nil
		}
		if st == Unsat {
			return Unsat, nil
		}
		if err := ctx.Err(); err != nil {
			return Unknown, err
		}
		restart++
		s.Stats.Restarts++
		if s.ConflictBudget > 0 && int64(s.Stats.Conflicts-conflictsAtStart) >= s.ConflictBudget {
			return Unknown, nil
		}
	}
}

// Core returns the assumption subset returned by the last failing
// Solve-under-assumptions call. The slice is owned by the solver.
func (s *Solver) Core() []Lit { return s.core }

// ctxCheckInterval is how many search-loop iterations pass between
// context checks. Each iteration runs a full unit propagation, so the
// check adds no measurable overhead while still bounding the abort
// latency well below a restart interval.
const ctxCheckInterval = 64

// search runs CDCL until a result, a conflict budget exhaustion
// (restart), a cancelled context (both surface as Unknown; the caller
// re-checks the context), or unsat.
func (s *Solver) search(ctx context.Context, budget int64, maxLearnts *float64) Status {
	var conflicts, iter int64
	for {
		if iter%ctxCheckInterval == 0 && ctx.Err() != nil {
			s.cancelUntil(0)
			return Unknown
		}
		iter++
		conflict := s.propagate()
		if conflict != nil {
			s.Stats.Conflicts++
			conflicts++
			if s.decisionLevel() == 0 {
				s.ok = false
				s.logEmptyClause()
				return Unsat
			}
			learnt, btLevel := s.analyze(conflict)
			// Every learnt clause — unit or not — is a lemma: the
			// checker needs units too, because the solver keeps them
			// only as trail assignments, never as clauses.
			s.logProof(ProofLearn, learnt)
			s.cancelUntil(btLevel)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], nil)
			} else {
				c := &clause{lits: learnt, learnt: true}
				s.learnts = append(s.learnts, c)
				s.Stats.Learnt++
				s.attach(c)
				s.bumpClause(c)
				s.uncheckedEnqueue(learnt[0], c)
			}
			s.decayVar()
			s.decayClause()
			continue
		}

		// No conflict.
		if conflicts >= budget {
			s.cancelUntil(0)
			return Unknown
		}
		if float64(len(s.learnts)) >= *maxLearnts {
			s.reduceDB()
			*maxLearnts *= 1.1
		}

		// Assumption-driven decisions first.
		next := Lit(-1)
		for s.decisionLevel() < len(s.assumptions) {
			p := s.assumptions[s.decisionLevel()]
			switch s.value(p) {
			case LTrue:
				// Already satisfied: open an empty decision level so
				// the level-to-assumption mapping stays aligned.
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case LFalse:
				clause := s.analyzeFinal(p.Neg())
				// The negated-assumption clause certifies the verdict:
				// it is a RUP consequence of the clause database, and
				// its literals' negations are the unsat core.
				s.logProof(ProofLearn, clause)
				s.core = make([]Lit, 0, len(clause))
				// analyzeFinal returns negations of failed assumption
				// literals; report the assumptions themselves.
				for _, l := range clause {
					s.core = append(s.core, l.Neg())
				}
				return Unsat
			default:
				next = p
			}
			break
		}
		if next == -1 {
			next = s.pickBranchLit()
			if next == -1 {
				return Sat // all variables assigned
			}
			s.Stats.Decisions++
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(next, nil)
	}
}

// Model returns a copy of the last satisfying assignment as a slice of
// booleans indexed by variable. Call only after Solve returned Sat.
func (s *Solver) Model() []bool {
	m := make([]bool, len(s.model))
	for v := range s.model {
		m[v] = s.model[v] == LTrue
	}
	return m
}

// Okay reports whether the solver is still consistent at the top level
// (false after an Unsat result without assumptions or an empty clause).
func (s *Solver) Okay() bool { return s.ok }
