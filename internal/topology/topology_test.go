package topology

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAddRouterAndLink(t *testing.T) {
	n := New()
	if err := n.AddRouter("A", 100); err != nil {
		t.Fatal(err)
	}
	if err := n.AddRouter("A", 100); err == nil {
		t.Fatal("duplicate router should fail")
	}
	if err := n.AddRouter("", 100); err == nil {
		t.Fatal("empty name should fail")
	}
	if err := n.AddRouter("B", 100); err != nil {
		t.Fatal(err)
	}
	if err := n.AddLink("A", "B"); err != nil {
		t.Fatal(err)
	}
	if err := n.AddLink("A", "A"); err == nil {
		t.Fatal("self link should fail")
	}
	if err := n.AddLink("A", "Z"); err == nil {
		t.Fatal("link to unknown router should fail")
	}
	if !n.HasLink("A", "B") || !n.HasLink("B", "A") {
		t.Fatal("links must be bidirectional")
	}
	if n.NumLinks() != 1 {
		t.Fatalf("NumLinks = %d, want 1", n.NumLinks())
	}
	// Idempotent re-add.
	n.AddLink("B", "A")
	if n.NumLinks() != 1 {
		t.Fatalf("NumLinks after re-add = %d, want 1", n.NumLinks())
	}
}

func TestPaperTopology(t *testing.T) {
	n := Paper()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if n.NumRouters() != 7 {
		t.Fatalf("NumRouters = %d, want 7", n.NumRouters())
	}
	internals := n.Internals()
	if len(internals) != 3 {
		t.Fatalf("internals = %d, want 3", len(internals))
	}
	for _, want := range []string{"R1", "R2", "R3"} {
		if n.Router(want) == nil || n.Router(want).Role != Internal {
			t.Fatalf("%s should be an internal router", want)
		}
	}
	for _, link := range [][2]string{{"R1", "R2"}, {"R1", "R3"}, {"R2", "R3"}, {"P1", "R1"}, {"P2", "R2"}, {"C", "R3"}, {"D1", "P1"}, {"D1", "P2"}} {
		if !n.HasLink(link[0], link[1]) {
			t.Errorf("missing link %v", link)
		}
	}
	if n.HasLink("P1", "P2") {
		t.Error("providers must not be directly connected")
	}
	// The customer prefix from Figure 1c.
	if c := n.Router("C"); !c.HasPrefix || c.Prefix.String() != "123.0.1.0/20" {
		t.Errorf("customer prefix = %v", c.Prefix)
	}
	if got := n.Router("P1").AS; got != 500 {
		t.Errorf("P1 AS = %d, want 500", got)
	}
}

func TestNeighborsSorted(t *testing.T) {
	n := Paper()
	nb := n.Neighbors("R1")
	want := "P1,R2,R3"
	if strings.Join(nb, ",") != want {
		t.Fatalf("Neighbors(R1) = %v, want %s", nb, want)
	}
	adj := n.Adjacency()
	if strings.Join(adj["R1"], ",") != want {
		t.Fatalf("Adjacency[R1] = %v", adj["R1"])
	}
}

func TestSimplePaths(t *testing.T) {
	n := Paper()
	paths := n.SimplePaths("C", "P1", 5)
	keys := make([]string, len(paths))
	for i, p := range paths {
		keys[i] = strings.Join(p, "-")
	}
	joined := strings.Join(keys, " ")
	for _, want := range []string{"C-R3-R1-P1", "C-R3-R2-R1-P1"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing path %s in %s", want, joined)
		}
	}
	// All returned paths must be simple and within bounds.
	for _, p := range paths {
		seen := map[string]bool{}
		for _, node := range p {
			if seen[node] {
				t.Fatalf("path %v is not simple", p)
			}
			seen[node] = true
		}
		if len(p) > 5 {
			t.Fatalf("path %v exceeds maxLen", p)
		}
	}
	// Deterministic ordering across calls.
	again := n.SimplePaths("C", "P1", 5)
	if len(again) != len(paths) {
		t.Fatal("SimplePaths not deterministic in count")
	}
	for i := range again {
		if strings.Join(again[i], "-") != keys[i] {
			t.Fatal("SimplePaths not deterministic in order")
		}
	}
	if got := n.SimplePaths("ZZ", "P1", 5); got != nil {
		t.Fatal("unknown source should yield nil")
	}
}

func TestConnectivityAndValidate(t *testing.T) {
	n := New()
	n.AddRouter("A", 100)
	n.AddRouter("B", 100)
	if n.Connected() {
		t.Fatal("two isolated nodes reported connected")
	}
	if err := n.Validate(); err == nil {
		t.Fatal("disconnected network should fail validation")
	}
	n.AddLink("A", "B")
	if !n.Connected() {
		t.Fatal("linked pair reported disconnected")
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if !New().Connected() {
		t.Fatal("empty network should be connected")
	}
}

func TestGrid(t *testing.T) {
	n := Grid(3, 2)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(n.Internals()); got != 6 {
		t.Fatalf("grid internals = %d, want 6", got)
	}
	// Interior adjacency: R1_0 connects to R0_0, R2_0, R1_1.
	for _, want := range []string{"R0_0", "R2_0", "R1_1"} {
		if !n.HasLink("R1_0", want) {
			t.Errorf("grid missing link R1_0-%s", want)
		}
	}
	// Externals attached.
	if !n.HasLink("C", "R0_0") || !n.HasLink("P1", "R2_1") || !n.HasLink("P2", "R2_0") {
		t.Error("grid externals misattached")
	}
}

func TestFatTree(t *testing.T) {
	n := FatTree(4)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	// k=4: 4 core + 4 pods * (2 agg + 2 edge) = 4 + 16 = 20 internal.
	if got := len(n.Internals()); got != 20 {
		t.Fatalf("fat-tree internals = %d, want 20", got)
	}
	mustPanic(t, func() { FatTree(3) })
	mustPanic(t, func() { FatTree(0) })
}

func TestRandomDeterminism(t *testing.T) {
	a := Random(12, 3.0, 42)
	b := Random(12, 3.0, 42)
	if a.NumLinks() != b.NumLinks() {
		t.Fatal("same seed should give same link count")
	}
	for _, r := range a.RouterNames() {
		an := strings.Join(a.Neighbors(r), ",")
		bn := strings.Join(b.Neighbors(r), ",")
		if an != bn {
			t.Fatalf("seeded topology differs at %s: %s vs %s", r, an, bn)
		}
	}
	c := Random(12, 3.0, 43)
	diff := false
	for _, r := range a.RouterNames() {
		if strings.Join(a.Neighbors(r), ",") != strings.Join(c.Neighbors(r), ",") {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds should (overwhelmingly) give different networks")
	}
	mustPanic(t, func() { Random(2, 2, 1) })
	mustPanic(t, func() { Grid(1, 1) })
}

// Property: every random network is connected and validates.
func TestQuickRandomConnected(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 3 + int(sz%40)
		net := Random(n, 2.5, seed)
		return net.Connected() && net.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: SimplePaths results always start at src, end at dst, and
// follow existing links.
func TestQuickSimplePathsWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		net := Random(8, 3, seed)
		for _, p := range net.SimplePaths("C", "P1", 6) {
			if p[0] != "C" || p[len(p)-1] != "P1" {
				return false
			}
			for i := 1; i < len(p); i++ {
				if !net.HasLink(p[i-1], p[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMustPrefix(t *testing.T) {
	if MustPrefix("10.0.0.0/8").String() != "10.0.0.0/8" {
		t.Fatal("MustPrefix round trip failed")
	}
	mustPanic(t, func() { MustPrefix("not-a-prefix") })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
