package config

import "sort"

// Fingerprint returns a stable 64-bit hash of the configuration —
// FNV-1a over the canonical Print rendering, which covers every field
// the model reads (neighbors, bindings, prefix lists, route-map
// clauses with matches and sets, holes included). Two configurations
// print identically if and only if they fingerprint identically, so
// the fingerprint is a faithful identity for delta detection across
// deployments.
func Fingerprint(c *Config) uint64 {
	return fnv1a(Print(c))
}

// FingerprintDeployment hashes every router's fingerprint in
// router-name order into one deployment identity.
func FingerprintDeployment(d Deployment) uint64 {
	names := make([]string, 0, len(d))
	for n := range d {
		names = append(names, n)
	}
	sort.Strings(names)
	h := fnvOffset64
	for _, n := range names {
		h = fnvMix(h, n)
		h = fnvMixUint64(h, Fingerprint(d[n]))
	}
	return h
}

// DiffRouters returns the sorted names of routers whose configuration
// differs between the two deployments, including routers present in
// only one of them. Configurations shared by pointer are trivially
// equal and skipped without rendering.
func DiffRouters(old, nu Deployment) []string {
	seen := map[string]bool{}
	var out []string
	for name, oc := range old {
		nc, ok := nu[name]
		if !ok {
			out = append(out, name)
			seen[name] = true
			continue
		}
		if oc != nc && Fingerprint(oc) != Fingerprint(nc) {
			out = append(out, name)
			seen[name] = true
		}
	}
	for name := range nu {
		if _, ok := old[name]; !ok && !seen[name] {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func fnv1a(s string) uint64 {
	return fnvMix(fnvOffset64, s)
}

func fnvMix(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

func fnvMixUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime64
		v >>= 8
	}
	return h
}
