package sat

// Portfolio search: a small team of diversified solvers racing on one
// formula, sharing their strongest lemmas.
//
// The design leans on two facts already established elsewhere in the
// package. First, Clone produces a warm, fully independent snapshot, so
// building a team costs one deep copy per extra worker and the workers
// may run on separate goroutines. Second, a learnt clause never depends
// on assumptions (assumptions enter the search as decisions, not
// reasons), so any worker's learnt is a logical consequence of the
// shared problem clauses and is sound to import into any peer — for
// every future assumption set.
//
// Sharing protocol: workers export units and glue clauses (LBD <=
// coreLBD) into one append-only pool as they learn them; each worker
// drains the pool at solve start and at its own restart boundaries
// (decision level 0, propagation at fixpoint), and additionally polls
// the pool every shareImportCadence conflicts mid-search, forcing an
// early restart when peers have published — short queries would
// otherwise finish before their first scheduled restart and import
// nothing. Every candidate is admitted through a RUP
// gate — assume the clause's negation on a throwaway decision level,
// propagate, and require a conflict. The gate serves two masters at
// once: it filters clauses that this worker's database cannot (yet)
// cheaply justify, and it makes every admitted import a legal ProofLearn
// on the importer's own trace, so each worker's proof stays
// self-contained and the independent checker needs no notion of
// "portfolio" at all.
//
// Verdict semantics: the first worker to return Sat or Unsat wins the
// race and the others are cancelled through their contexts; the
// winner's model, core, and proof trace become the portfolio's result.
// Sat/Unsat verdicts are semantic — every worker that terminates
// returns the same status — so anything downstream that consumes
// verdicts (the lift pipeline's necessity/vacuity checks, report
// assembly) is byte-identical at any worker count. Models and cores may
// differ run to run in *content* (a different worker may win), which is
// why the pipeline above deliberately consumes verdicts, not witnesses.

import (
	"context"
	"sync"
	"sync/atomic"
)

// shareMaxGlue is the export threshold: only units and clauses at or
// below this LBD enter the pool. It equals coreLBD — the tier the
// solver itself deems worth keeping forever.
const shareMaxGlue = coreLBD

// sharedClause is one pool entry: the exporting worker's index (so the
// exporter skips its own clauses on import), the clause, and its glue
// at export time (adopted by importers as the initial tier).
type sharedClause struct {
	from int
	lbd  int32
	lits []Lit
}

// sharePool is the lock-light clause bus of one portfolio: an
// append-only log under a mutex held only for the append or for the
// snapshot of a slice header. Entries are immutable once published, so
// readers work off their snapshots without the lock; per-worker read
// positions live on the workers (Solver.shareCursor), not in the pool.
type sharePool struct {
	mu  sync.Mutex
	log []sharedClause
	// n mirrors len(log) atomically so workers can poll for pending
	// entries from inside the search loop without taking the mutex.
	n atomic.Int64
}

// publish appends a copy of the clause to the pool.
func (p *sharePool) publish(from int, lits []Lit, lbd int32) {
	cp := append([]Lit(nil), lits...)
	p.mu.Lock()
	p.log = append(p.log, sharedClause{from: from, lbd: lbd, lits: cp})
	p.n.Store(int64(len(p.log)))
	p.mu.Unlock()
}

// pending reports whether entries beyond cursor exist — a lock-free
// hint for the in-search import poll. A false negative merely delays an
// import to the next poll or restart; a false positive cannot happen
// (the log is append-only).
func (p *sharePool) pending(cursor int) bool {
	return p.n.Load() > int64(cursor)
}

// since returns the entries published at or after cursor, and the new
// cursor. The returned slice is capped so appends by other workers
// never alias into it.
func (p *sharePool) since(cursor int) ([]sharedClause, int) {
	p.mu.Lock()
	n := len(p.log)
	out := p.log[cursor:n:n]
	p.mu.Unlock()
	return out, n
}

// importShared drains the pool and admits what the RUP gate accepts.
// Called at a restart boundary: decision level 0, propagation at
// fixpoint. It returns false when an import exposes top-level
// unsatisfiability (the empty clause is logged, exactly like a root
// conflict found by search).
func (s *Solver) importShared() bool {
	entries, next := s.share.since(s.shareCursor)
	s.shareCursor = next
	if len(entries) == 0 {
		return true
	}
	// Reach the root fixpoint before probing: the gate attributes any
	// conflict it sees to the candidate clause, so none may be pending.
	if s.propagate() != nil {
		s.ok = false
		s.logEmptyClause()
		return false
	}
	for _, e := range entries {
		if e.from == s.shareID {
			continue
		}
		if !s.importClause(e.lits, e.lbd) {
			return false
		}
	}
	return true
}

// importClause runs one pool candidate through the RUP gate and, on
// success, installs it as a learnt clause (logged as a ProofLearn on
// this solver's trace — the gate is exactly the checker's acceptance
// condition, so the trace stays checkable). Rejections are counted,
// never fatal; the return value is false only when the import proves
// the database unsatisfiable at the top level.
func (s *Solver) importClause(lits []Lit, lbd int32) bool {
	// Root-reduce against this worker's top-level assignment, and
	// refuse clauses over variables bounded elimination already
	// resolved away here (re-introducing an occurrence would break
	// model extension).
	reduced := make([]Lit, 0, len(lits))
	for _, l := range lits {
		if int(l) >= len(s.vals) || s.elimed[l.Var()] {
			s.Stats.SharedRejected++
			return true
		}
		switch s.value(l) {
		case LTrue:
			// Root-satisfied: nothing to learn.
			s.Stats.SharedRejected++
			return true
		case LFalse:
			continue
		}
		reduced = append(reduced, l)
	}
	if len(reduced) == 0 {
		// Every literal is root-false. The clause would be RUP only if
		// the database were already in root conflict, which the caller
		// just ruled out: reject.
		s.Stats.SharedRejected++
		return true
	}
	// RUP gate: assume the negation on a throwaway decision level and
	// propagate. A conflict certifies the clause.
	s.trailLim = append(s.trailLim, len(s.trail))
	for _, l := range reduced {
		if s.value(l) == LUndef {
			s.uncheckedEnqueue(l.Neg(), nil)
		}
	}
	conflict := s.propagate()
	s.cancelUntil(0)
	if conflict == nil {
		s.Stats.SharedRejected++
		return true
	}
	s.Stats.SharedImported++
	s.logProof(ProofLearn, reduced)
	if len(reduced) == 1 {
		s.uncheckedEnqueue(reduced[0], nil)
		if s.propagate() != nil {
			s.ok = false
			s.logEmptyClause()
			return false
		}
		return true
	}
	if lbd <= 0 || int(lbd) > len(reduced) {
		lbd = int32(len(reduced))
	}
	c := &clause{lits: reduced, learnt: true, lbd: lbd, protect: true}
	s.learnts = append(s.learnts, c)
	s.attach(c)
	return true
}

// WorkerPolicy returns the search profile of portfolio worker i. The
// profiles diversify along the axes that measurably split instance
// families on this codebase's benchmarks: restart schedule (short Luby
// excels on overconstrained-unsat random instances, glue-adaptive and
// the alternating default on satisfiable and structured ones), branch
// polarity (InvertPhase steers a worker into the complementary half of
// the space), target-phase use, and VSIDS decay. Worker 0 always runs
// the exact default profile, so a one-worker portfolio is the plain
// solver, byte for byte.
func WorkerPolicy(i int) Policy {
	p := DefaultPolicy()
	switch i % 4 {
	case 0:
		// The default alternating profile.
	case 1:
		// Short-phase Luby without target phases: the measured best on
		// uniformly hard unsat instances.
		p.Restart = RestartLuby
		p.LubyBase = 50
		p.NoTargetPhase = true
	case 2:
		// Glue-adaptive restarts, opposite default polarity.
		p.Restart = RestartAdaptive
		p.InvertPhase = true
	case 3:
		// Long Luby phases with fast-decaying (more reactive) VSIDS,
		// opposite polarity.
		p.Restart = RestartLuby
		p.LubyBase = 200
		p.VarDecay = 0.85
		p.InvertPhase = true
	}
	return p
}

// Portfolio is a team of diversified solvers over one formula. Worker 0
// is the base solver passed to NewPortfolio (policy untouched); the
// rest are warm clones running WorkerPolicy profiles, all wired to one
// clause pool. Like Solver, a Portfolio is not safe for concurrent use
// — one PortfolioContext call at a time — but that single call drives
// all workers concurrently internally.
type Portfolio struct {
	workers []*Solver
	pool    *sharePool
	winner  int
}

// NewPortfolio builds an n-worker team over base, taking ownership of
// it as worker 0. n < 1 is treated as 1; a one-worker portfolio has no
// pool and behaves exactly like the base solver. Must be called
// outside search (between solves), like Clone.
func NewPortfolio(base *Solver, n int) *Portfolio {
	if n < 1 {
		n = 1
	}
	p := &Portfolio{workers: make([]*Solver, n)}
	p.workers[0] = base
	if n == 1 {
		return p
	}
	p.pool = &sharePool{}
	base.share = p.pool
	base.shareID = 0
	for i := 1; i < n; i++ {
		w := base.Clone()
		w.SetPolicy(WorkerPolicy(i))
		w.share = p.pool
		w.shareID = i
		p.workers[i] = w
	}
	return p
}

// Workers reports the team size.
func (p *Portfolio) Workers() int { return len(p.workers) }

// Worker returns team member i (0 is the base solver). Intended for
// inspection — stats, proof traces — not for driving searches behind
// the portfolio's back.
func (p *Portfolio) Worker(i int) *Solver { return p.workers[i] }

// Winner returns the index of the worker whose verdict the last
// PortfolioContext call adopted (0 before any call, and for every call
// that ended without a verdict).
func (p *Portfolio) Winner() int { return p.winner }

// NewVar introduces a fresh variable on every worker and returns it.
// Workers allocate in lockstep, so the variable means the same thing
// team-wide.
func (p *Portfolio) NewVar() Var {
	v := p.workers[0].NewVar()
	for _, w := range p.workers[1:] {
		w.NewVar()
	}
	return v
}

// AddClause adds the clause on every worker. The return value is
// worker 0's (all workers agree semantically — a false return means
// the formula is unsat at the top level).
func (p *Portfolio) AddClause(lits ...Lit) bool {
	ok := p.workers[0].AddClause(lits...)
	for _, w := range p.workers[1:] {
		w.AddClause(lits...)
	}
	return ok
}

// MarkEliminable surrenders v to bounded variable elimination on every
// worker (see Solver.MarkEliminable for the contract).
func (p *Portfolio) MarkEliminable(v Var) {
	for _, w := range p.workers {
		w.MarkEliminable(v)
	}
}

// SetConflictBudget bounds each worker's per-solve conflict spend.
func (p *Portfolio) SetConflictBudget(n int64) {
	for _, w := range p.workers {
		w.ConflictBudget = n
	}
}

// Solve is PortfolioContext with a background context.
func (p *Portfolio) Solve(assumptions ...Lit) Status {
	st, _ := p.PortfolioContext(context.Background(), assumptions...)
	return st
}

// SolveContext makes Portfolio a drop-in for Solver in solve loops.
func (p *Portfolio) SolveContext(ctx context.Context, assumptions ...Lit) (Status, error) {
	return p.PortfolioContext(ctx, assumptions...)
}

// PortfolioContext races every worker on the query; the first Sat or
// Unsat verdict wins, the rest are cancelled, and the winner's model,
// core, and proof become the portfolio's result (Model, Core, Proof).
// All workers are joined before returning — no goroutine outlives the
// call, and every worker is idle (level 0) afterwards, so the team can
// be grown, cloned, or solved again immediately.
//
// When no worker reaches a verdict (per-worker conflict budgets
// exhausted, or the caller's context fired), worker 0's status and
// error are returned, keeping the no-verdict behavior identical to the
// single-solver path.
func (p *Portfolio) PortfolioContext(ctx context.Context, assumptions ...Lit) (Status, error) {
	if len(p.workers) == 1 {
		return p.workers[0].SolveContext(ctx, assumptions...)
	}
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		idx int
		st  Status
		err error
	}
	results := make(chan outcome, len(p.workers))
	for i, w := range p.workers {
		go func(i int, w *Solver) {
			st, err := w.SolveContext(rctx, assumptions...)
			results <- outcome{idx: i, st: st, err: err}
		}(i, w)
	}
	decided := outcome{idx: -1}
	all := make([]outcome, len(p.workers))
	for range p.workers {
		r := <-results
		all[r.idx] = r
		if decided.idx < 0 && (r.st == Sat || r.st == Unsat) {
			decided = r
			cancel() // first verdict wins; stop the rest within one check interval
		}
	}
	// Race-level counters live on worker 0 so they ride the ordinary
	// Stats harvesting (Sub deltas, session merging).
	w0 := p.workers[0]
	w0.Stats.PortfolioRaces++
	if decided.idx < 0 {
		p.winner = 0
		return all[0].st, all[0].err
	}
	p.winner = decided.idx
	b := decided.idx
	if b >= len(w0.Stats.PortfolioWins) {
		b = len(w0.Stats.PortfolioWins) - 1
	}
	w0.Stats.PortfolioWins[b]++
	return decided.st, decided.err
}

// Model returns the winner's model (see Solver.Model).
func (p *Portfolio) Model() []bool { return p.workers[p.winner].Model() }

// Value returns v's assignment in the winner's model.
func (p *Portfolio) Value(v Var) LBool { return p.workers[p.winner].Value(v) }

// ValueLit returns l's truth in the winner's model.
func (p *Portfolio) ValueLit(l Lit) LBool { return p.workers[p.winner].ValueLit(l) }

// Core returns the winner's assumption core (see Solver.Core).
func (p *Portfolio) Core() []Lit { return p.workers[p.winner].Core() }

// Proof returns the winner's proof writer — the trace certifying the
// verdict PortfolioContext adopted. Each worker's trace is
// self-contained (imports are RUP-gated and logged as its own learnts),
// so checking the winner's trace alone validates the verdict.
func (p *Portfolio) Proof() ProofWriter { return p.workers[p.winner].Proof() }

// WorkerProof returns worker i's proof writer.
func (p *Portfolio) WorkerProof(i int) ProofWriter { return p.workers[i].Proof() }

// Okay reports whether every worker is still consistent at the top
// level (any worker discovering top-level unsat makes the formula
// unsat).
func (p *Portfolio) Okay() bool {
	for _, w := range p.workers {
		if !w.Okay() {
			return false
		}
	}
	return true
}

// StatsSum returns the counter-wise sum of every worker's Stats — the
// team's total effort, in the same shape a single solver reports, so
// session-level harvesting (Stats.Sub against a checkout snapshot,
// engine merging) works unchanged. Structural gauges come from worker
// 0; tier gauges are maxima across the team.
func (p *Portfolio) StatsSum() Stats {
	out := p.workers[0].Stats
	for _, w := range p.workers[1:] {
		st := w.Stats
		out.Solves += st.Solves
		out.Decisions += st.Decisions
		out.Propagations += st.Propagations
		out.BinPropagations += st.BinPropagations
		out.Conflicts += st.Conflicts
		out.Restarts += st.Restarts
		out.BlockedRestarts += st.BlockedRestarts
		out.Learnt += st.Learnt
		out.MinimizedLits += st.MinimizedLits
		out.LBDSum += st.LBDSum
		for i := range out.LBDHist {
			out.LBDHist[i] += st.LBDHist[i]
		}
		out.Reductions += st.Reductions
		out.RemovedClauses += st.RemovedClauses
		out.ModeSwitches += st.ModeSwitches
		out.InprocessRounds += st.InprocessRounds
		out.VivifiedClauses += st.VivifiedClauses
		out.VivifiedLits += st.VivifiedLits
		out.SubsumedClauses += st.SubsumedClauses
		out.StrengthenedClauses += st.StrengthenedClauses
		out.ElimVars += st.ElimVars
		out.InprocessDeleted += st.InprocessDeleted
		out.SharedExported += st.SharedExported
		out.SharedImported += st.SharedImported
		out.SharedRejected += st.SharedRejected
		out.PortfolioRaces += st.PortfolioRaces
		for i := range out.PortfolioWins {
			out.PortfolioWins[i] += st.PortfolioWins[i]
		}
		if st.CoreLearnts > out.CoreLearnts {
			out.CoreLearnts = st.CoreLearnts
		}
		if st.MidLearnts > out.MidLearnts {
			out.MidLearnts = st.MidLearnts
		}
		if st.LocalLearnts > out.LocalLearnts {
			out.LocalLearnts = st.LocalLearnts
		}
	}
	return out
}
