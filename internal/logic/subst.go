package logic

import (
	"fmt"
	"sort"
)

// Substitute replaces every free occurrence of the variables named in
// sub with the corresponding replacement terms, returning a new term.
// Replacement terms must have the same sort as the variable they
// replace; Substitute panics otherwise, because a sort mismatch is
// always a programming error in this codebase.
//
// Substitution is simultaneous: replacements are not themselves
// re-substituted, so Substitute(x, {x: y, y: z}) yields y, not z.
func Substitute(t Term, sub map[string]Term) Term {
	if len(sub) == 0 {
		return t
	}
	return substitute(t, sub, SubMask(sub))
}

// SubMask returns the variable-signature mask of a substitution: the
// union of the name bits of its keys. Callers applying one substitution
// to many terms (equality propagation over a wide conjunction) compute
// it once and pass it to SubstituteMasked instead of paying a hash per
// key per call through Substitute.
func SubMask(sub map[string]Term) uint64 {
	var mask uint64
	for name := range sub {
		mask |= varBit(name)
	}
	return mask
}

// SubstituteMasked is Substitute with a precomputed SubMask. A mask
// with extra bits set is sound (it only weakens pruning), so one mask
// may serve a substitution whose entries the caller temporarily
// removes.
func SubstituteMasked(t Term, sub map[string]Term, mask uint64) Term {
	if len(sub) == 0 {
		return t
	}
	return substitute(t, sub, mask)
}

// substitute is Substitute's recursion, pruned by variable signatures:
// a subterm whose signature shares no bit with the substituted names
// provably contains none of them and is returned unchanged without a
// walk. This keeps equality propagation over wide conjunctions linear
// in the touched cone rather than the whole term.
func substitute(t Term, sub map[string]Term, mask uint64) Term {
	if sig, ok := varSigFast(t); ok && sig&mask == 0 {
		return t
	}
	switch n := t.(type) {
	case *Var:
		r, ok := sub[n.Name]
		if !ok {
			return t
		}
		if !SameSort(r.Sort(), n.S) {
			panic(fmt.Sprintf("logic: substituting %v-sorted term for %v-sorted variable %q", r.Sort(), n.S, n.Name))
		}
		return r
	case *BoolLit, *IntLit, *EnumLit:
		return t
	case *Apply:
		changed := false
		args := make([]Term, len(n.Args))
		for i, a := range n.Args {
			args[i] = substitute(a, sub, mask)
			if args[i] != a {
				changed = true
			}
		}
		if !changed {
			return t
		}
		return internApply(&Apply{Op: n.Op, Args: args})
	}
	panic(fmt.Sprintf("logic: Substitute on unknown term type %T", t))
}

// SubstituteValues replaces variables with literal terms built from the
// given assignment. Variables absent from the assignment are left
// symbolic. This is how the explanation engine "concretizes" every
// device except the one under explanation.
func SubstituteValues(t Term, a Assignment) Term {
	if len(a) == 0 {
		return t
	}
	sub := make(map[string]Term, len(a))
	for name, v := range a {
		sub[name] = v.Term()
	}
	return Substitute(t, sub)
}

// FreeVars returns the set of variables occurring in t, keyed by name.
func FreeVars(t Term) map[string]*Var {
	out := make(map[string]*Var)
	collectVars(t, out)
	return out
}

func collectVars(t Term, out map[string]*Var) {
	switch n := t.(type) {
	case *Var:
		out[n.Name] = n
	case *Apply:
		for _, a := range n.Args {
			collectVars(a, out)
		}
	}
}

// FreeVarNames returns the sorted names of the variables occurring in
// t. Sorting makes output deterministic for tests and reports.
func FreeVarNames(t Term) []string {
	vars := FreeVars(t)
	names := make([]string, 0, len(vars))
	for n := range vars {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ContainsVar reports whether the variable named name occurs in t.
func ContainsVar(t Term, name string) bool {
	switch n := t.(type) {
	case *Var:
		return n.Name == name
	case *Apply:
		for _, a := range n.Args {
			if ContainsVar(a, name) {
				return true
			}
		}
	}
	return false
}

// Walk visits every node of t in pre-order, calling f. If f returns
// false the node's children are skipped.
func Walk(t Term, f func(Term) bool) {
	if !f(t) {
		return
	}
	if a, ok := t.(*Apply); ok {
		for _, arg := range a.Args {
			Walk(arg, f)
		}
	}
}

// Map rebuilds t bottom-up, applying f to every node after its children
// have been rebuilt. f receives a node whose children are already
// mapped and returns its replacement. Map is the workhorse of the
// rewrite engine.
func Map(t Term, f func(Term) Term) Term {
	switch n := t.(type) {
	case *Apply:
		changed := false
		args := make([]Term, len(n.Args))
		for i, a := range n.Args {
			args[i] = Map(a, f)
			if args[i] != a {
				changed = true
			}
		}
		if changed {
			// Intern the rebuilt node so f sees a canonical term (and
			// memoizing callers can key on it by pointer).
			return f(internApply(&Apply{Op: n.Op, Args: args}))
		}
		return f(t)
	default:
		return f(t)
	}
}
