package netgen

import (
	"testing"

	"repro/internal/config"
)

// perturbFixture is a small concrete deployment exercising every edit
// family's site enumeration.
func perturbFixture() config.Deployment {
	r1 := config.New("R1")
	r1.AddRouteMap(&config.RouteMap{
		Name: "R1_to_P1",
		Clauses: []*config.Clause{
			{Seq: 10, Action: config.Permit, Sets: []*config.Set{
				{Kind: config.SetLocalPref, LocalPref: 120},
				{Kind: config.SetNextHopIP, NextHopIP: "10.0.0.1"},
			}},
			{Seq: 100, Action: config.Deny},
		},
	})
	r2 := config.New("R2")
	r2.AddRouteMap(&config.RouteMap{
		Name: "R2_from_P2",
		Clauses: []*config.Clause{
			{Seq: 10, Action: config.Permit, Sets: []*config.Set{
				{Kind: config.SetLocalPref, LocalPref: 80},
				{Kind: config.SetMED, MED: 30},
			}},
		},
	})
	return config.Deployment{"R1": r1, "R2": r2}
}

func TestPerturbDeterministic(t *testing.T) {
	dep := perturbFixture()
	a, ea := Perturb(dep, 7, 3)
	b, eb := Perturb(dep, 7, 3)
	if len(ea) != 3 || len(eb) != 3 {
		t.Fatalf("edit counts: %d, %d, want 3", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edit %d differs across identical calls: %+v vs %+v", i, ea[i], eb[i])
		}
	}
	for name := range dep {
		if config.Print(a[name]) != config.Print(b[name]) {
			t.Fatalf("%s differs across identical Perturb calls", name)
		}
	}
	// A different seed must (on this fixture) choose different edits.
	_, ec := Perturb(dep, 8, 3)
	same := true
	for i := range ea {
		if ea[i] != ec[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical edit lists")
	}
}

func TestPerturbSharesUneditedConfigs(t *testing.T) {
	dep := perturbFixture()
	before := map[string]string{}
	for name, c := range dep {
		before[name] = config.Print(c)
	}
	out, edits := Perturb(dep, 3, 2)
	edited := map[string]bool{}
	for _, e := range edits {
		edited[e.Router] = true
		if e.Detail == "" || e.Kind == "" {
			t.Fatalf("edit missing detail: %+v", e)
		}
	}
	for name := range dep {
		if edited[name] {
			if out[name] == dep[name] {
				t.Fatalf("edited router %s shares the input config pointer", name)
			}
			if config.Print(out[name]) == before[name] {
				t.Fatalf("edited router %s prints identically to the input", name)
			}
		} else if out[name] != dep[name] {
			t.Fatalf("unedited router %s was cloned", name)
		}
		// The input deployment is never mutated.
		if config.Print(dep[name]) != before[name] {
			t.Fatalf("Perturb mutated the input config of %s", name)
		}
	}
}

func TestPerturbStaysOnRankGrid(t *testing.T) {
	dep := perturbFixture()
	// Drive every site over many seeds; any off-grid local-preference
	// or unknown next-hop would break re-encoding downstream.
	for seed := int64(0); seed < 20; seed++ {
		out, _ := Perturb(dep, seed, 10)
		for name, c := range out {
			for _, rm := range c.RouteMapNames() {
				for _, cl := range c.RouteMaps[rm].Clauses {
					for _, s := range cl.Sets {
						if s.Kind == config.SetLocalPref {
							if s.LocalPref < 20 || s.LocalPref > 170 || s.LocalPref%10 != 0 {
								t.Fatalf("seed %d: %s local-preference %d off the rank grid", seed, name, s.LocalPref)
							}
						}
					}
				}
			}
		}
	}
}
