// Explainable verification (paper Section 5): the explanation engine
// needs no synthesizer. A hand-written deployment — the kind an
// operator already runs — is verified against an intent, and the
// explainer shows WHY it satisfies it, per router, instead of the
// verifier's bare yes/no. The complement view then shows the
// assume/guarantee split the paper sketches.
//
//	go run ./examples/explainable_verification
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/spec"
	"repro/internal/topology"
	"repro/internal/verify"
)

func main() {
	net := topology.Paper()
	intent, err := spec.Parse(`
// No transit traffic
Req1 {
    !(P1->...->P2)
    !(P2->...->P1)
}`)
	if err != nil {
		log.Fatal(err)
	}
	reqs := intent.Requirements()

	// A hand-written deployment: R1 filters by next-hop toward P1, R2
	// mirrors it toward P2 — structurally unlike anything the
	// synthesizer emits.
	r1 := config.New("R1")
	r1.AddRouteMap(&config.RouteMap{Name: "out_p1", Clauses: []*config.Clause{
		{Seq: 10, Action: config.Deny, Matches: []*config.Match{{Kind: config.MatchNextHopIs, NextHop: "R2"}}},
		{Seq: 20, Action: config.Deny, Matches: []*config.Match{{Kind: config.MatchNextHopIs, NextHop: "R3"}}},
		{Seq: 100, Action: config.Permit},
	}})
	r1.AddNeighbor("P1", "", "out_p1")

	r2 := config.New("R2")
	r2.AddRouteMap(&config.RouteMap{Name: "out_p2", Clauses: []*config.Clause{
		{Seq: 10, Action: config.Deny, Matches: []*config.Match{{Kind: config.MatchNextHopIs, NextHop: "R1"}}},
		{Seq: 20, Action: config.Deny, Matches: []*config.Match{{Kind: config.MatchNextHopIs, NextHop: "R3"}}},
		{Seq: 100, Action: config.Permit},
	}})
	r2.AddNeighbor("P2", "", "out_p2")

	dep := config.Deployment{"R1": r1, "R2": r2}

	// The traditional black-box answer:
	vs, err := verify.Check(net, dep, reqs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("black-box verifier says: %d violations\n", len(vs))
	fmt.Println("...but WHY does it hold? Ask the explainer:")

	explainer, err := core.NewExplainer(net, reqs, dep, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	report, err := explainer.Report()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(report)

	// And unlike the synthesized Scenario 1 deployment, this
	// hand-written one keeps customer connectivity:
	fmt.Println("note: this filter style blocks only fabric-learned routes,")
	fmt.Println("so P1 still reaches the customer prefix — the behavior the")
	fmt.Println("paper's administrator wanted all along.")

	// The complement view: holding R1 fixed, what must the others do?
	comp, err := explainer.ExplainComplement("R1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nholding R1 fixed, the rest of the network must guarantee (%d -> %d atoms):\n",
		comp.SeedSize, comp.SimplifiedSize)
	for _, r := range comp.Routers() {
		fmt.Printf("  %s: %d constraints\n", r, len(comp.Assumptions[r]))
	}
}
