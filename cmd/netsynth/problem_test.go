package main

import "testing"

func TestParseWorkload(t *testing.T) {
	good := []string{"grid:3x2", "rand:8:42", "fattree:2"}
	for _, s := range good {
		wl, err := parseWorkload(s, false)
		if err != nil {
			t.Errorf("parseWorkload(%q): %v", s, err)
			continue
		}
		if wl.Net == nil || wl.Spec == nil || len(wl.Sketch) == 0 {
			t.Errorf("parseWorkload(%q): incomplete workload", s)
		}
	}
	bad := []string{"", "grid", "grid:3", "grid:axb", "rand:8", "rand:x:1", "fattree", "fattree:x", "mesh:3"}
	for _, s := range bad {
		if _, err := parseWorkload(s, false); err == nil {
			t.Errorf("parseWorkload(%q) should fail", s)
		}
	}
}

func TestLoadProblem(t *testing.T) {
	if _, err := loadProblem("scenario1", "", false); err != nil {
		t.Fatal(err)
	}
	if _, err := loadProblem("", "grid:2x2", false); err != nil {
		t.Fatal(err)
	}
	if _, err := loadProblem("", "", false); err == nil {
		t.Fatal("no inputs should fail")
	}
	if _, err := loadProblem("scenario1", "grid:2x2", false); err == nil {
		t.Fatal("both inputs should fail")
	}
	if _, err := loadProblem("nope", "", false); err == nil {
		t.Fatal("unknown scenario should fail")
	}
}
