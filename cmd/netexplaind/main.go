// netexplaind serves the explanation pipeline over HTTP: a JSON API
// (POST /explain, POST /diff, GET /metrics, GET /healthz) backed by a
// pool of warm engine sessions and a content-addressed response cache.
//
//	netexplaind -addr :8080
//	netexplaind -addr :8080 -maxinflight 32 -timeout 30s -proof
//
// Request and response shapes are documented in internal/server and
// the README's netexplaind section.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// testOnListen, when set by a test, is called with the bound address
// and the serving *http.Server once the listener is up.
var testOnListen func(addr string, srv *http.Server)

// run is main with the process glue factored out. Exit codes follow
// the shared cmd convention: 0 success (clean shutdown), 1 operational
// failure, 2 usage error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("netexplaind", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	maxInflight := fs.Int("maxinflight", 16, "maximum concurrently admitted explain/diff requests")
	cacheSize := fs.Int("cachesize", 256, "response cache entries (content-addressed; -1 disables)")
	poolSize := fs.Int("poolsize", 16, "warm session pool entries (LRU-evicted)")
	timeout := fs.Duration("timeout", 2*time.Minute, "default per-request deadline when the request sets none")
	maxTimeout := fs.Duration("maxtimeout", 0, "clamp for requested deadlines (0 = same as -timeout)")
	maxSatWorkers := fs.Int("maxsatworkers", 8, "clamp for per-request sat_workers")
	maxLiftWorkers := fs.Int("maxliftworkers", 8, "clamp for per-request lift_workers")
	proof := fs.Bool("proof", false, "verify every Unsat verdict with the independent proof checker")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "netexplaind: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	if *maxInflight < 1 || *poolSize < 1 || *maxSatWorkers < 1 || *maxLiftWorkers < 1 {
		fmt.Fprintln(stderr, "netexplaind: -maxinflight, -poolsize, -maxsatworkers, and -maxliftworkers must be at least 1")
		return 2
	}
	if *timeout <= 0 {
		fmt.Fprintln(stderr, "netexplaind: -timeout must be positive")
		return 2
	}

	srv := server.New(server.Options{
		MaxInflight:       *maxInflight,
		ResponseCacheSize: *cacheSize,
		PoolSize:          *poolSize,
		DefaultTimeout:    *timeout,
		MaxTimeout:        *maxTimeout,
		MaxSatWorkers:     *maxSatWorkers,
		MaxLiftWorkers:    *maxLiftWorkers,
		VerifyProofs:      *proof,
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "netexplaind:", err)
		return 1
	}
	fmt.Fprintf(stdout, "netexplaind: listening on %s\n", l.Addr())
	httpSrv := &http.Server{Handler: srv.Handler()}
	if testOnListen != nil {
		go testOnListen(l.Addr().String(), httpSrv)
	}
	if err := httpSrv.Serve(l); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "netexplaind:", err)
		return 1
	}
	return 0
}
