package bench

import (
	"context"
	"encoding/json"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/scenarios"
)

// PerfEntry is one scenario's end-to-end measurement of the
// explanation pipeline (full report over all routers), in the
// machine-readable shape CI and the perf-tracking scripts consume.
type PerfEntry struct {
	Scenario string `json:"scenario"`
	// WallMS is the wall-clock time of the full explanation report
	// (synthesis excluded, which is the synthesizer's cost, not the
	// explainer's).
	WallMS float64 `json:"wall_ms"`
	// SynthMS is the wall-clock time of synthesizing the scenario.
	SynthMS float64 `json:"synth_ms"`
	// SATConflicts, SATSolves, and SATPropagations total the SAT effort
	// of every solver the report ran — including per-worker clones and
	// pooled warm solvers, whose deltas are harvested at checkin.
	SATConflicts    uint64 `json:"sat_conflicts"`
	SATSolves       uint64 `json:"sat_solves"`
	SATPropagations uint64 `json:"sat_propagations"`
	// SATBinPropagations is the share of propagations served by the
	// solver's binary implication lists; SATRestarts and
	// SATMinimizedLits total restarts and learnt-clause literals
	// removed by minimization; SATAvgLBD is the mean glue of learnt
	// clauses (0 when nothing was learnt).
	SATBinPropagations uint64  `json:"sat_bin_propagations"`
	SATRestarts        uint64  `json:"sat_restarts"`
	SATMinimizedLits   uint64  `json:"sat_minimized_lits"`
	SATAvgLBD          float64 `json:"sat_avg_lbd"`
	// SATTierCore/Mid/Local are the peak tiered learnt-database sizes
	// observed across the report's solvers.
	SATTierCore  int `json:"sat_tier_core"`
	SATTierMid   int `json:"sat_tier_mid"`
	SATTierLocal int `json:"sat_tier_local"`
	// SATWorkers is the portfolio width the run was configured with;
	// SATRaces counts portfolio races that reached a verdict, and the
	// shared counters total clause-sharing traffic between workers
	// (exported to the pool / admitted by an importer / refused). All
	// zero at width 1. The random-3SAT microbenchmark seeds referenced
	// by methodology notes are the named constants in
	// internal/sat/bench_test.go (benchSeedHard3SAT, benchSeedSat3SAT).
	SATWorkers        int    `json:"sat_workers"`
	SATRaces          uint64 `json:"sat_races"`
	SATSharedExported uint64 `json:"sat_shared_exported"`
	SATSharedImported uint64 `json:"sat_shared_imported"`
	SATSharedRejected uint64 `json:"sat_shared_rejected"`
	// SATInprocessRounds and SATInprocessDeleted total inprocessing
	// activity (vivification, subsumption, bounded variable
	// elimination) across the report's solvers.
	SATInprocessRounds  uint64 `json:"sat_inprocess_rounds"`
	SATInprocessDeleted uint64 `json:"sat_inprocess_deleted"`
	// LiftQueries counts individual lift-stage SMT queries; LiftP50MS
	// and LiftP95MS are their latency percentiles in milliseconds.
	LiftQueries int     `json:"lift_queries"`
	LiftP50MS   float64 `json:"lift_p50_ms"`
	LiftP95MS   float64 `json:"lift_p95_ms"`
	// WarmSolverHits and WarmSolverMisses count solver checkouts
	// answered from the session's warm pool versus built cold.
	WarmSolverHits   int `json:"warm_solver_hits"`
	WarmSolverMisses int `json:"warm_solver_misses"`
	// CacheHits counts queries answered from the session's encoding
	// cache; Encodes counts derived encodes actually performed.
	CacheHits int `json:"cache_hits"`
	Encodes   int `json:"encodes"`
	// ReusedCandidates counts candidate paths copied from the session's
	// base encoding instead of re-derived.
	ReusedCandidates int `json:"reused_candidates"`
	// NormCacheHits/Misses count subterm lookups in the session's shared
	// normal-form cache; NormCacheEntries is its final size.
	NormCacheHits    uint64 `json:"norm_cache_hits"`
	NormCacheMisses  uint64 `json:"norm_cache_misses"`
	NormCacheEntries int    `json:"norm_cache_entries"`
	// InternedTerms is the size of the shared hash-cons table after the
	// run (cumulative across entries: the table is process-wide).
	InternedTerms int `json:"interned_terms"`
	// PeakHeapBytes is the largest runtime.MemStats.HeapAlloc sampled
	// while the report streamed (absolute process heap, cumulative
	// across entries like InternedTerms); StreamedBytes is the report
	// size that reached the writer.
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
	StreamedBytes int64  `json:"streamed_bytes"`
}

// PerfReport is the payload written by netbench -benchjson.
type PerfReport struct {
	Name    string      `json:"name"`
	Entries []PerfEntry `json:"entries"`
}

// Perf measures the end-to-end explanation pipeline on every seed
// scenario. satWorkers sets the portfolio width of every solver (1 =
// plain single search).
func Perf(ctx context.Context, satWorkers int) (*PerfReport, error) {
	rep := &PerfReport{Name: "explain-pipeline"}
	for _, sc := range scenarios.All() {
		synthStart := time.Now()
		res, err := synthesizeScenario(ctx, sc)
		if err != nil {
			return nil, err
		}
		synthMS := float64(time.Since(synthStart).Microseconds()) / 1000

		copts := core.DefaultOptions()
		copts.Budget.SatWorkers = satWorkers
		ex, err := core.NewExplainer(sc.Net, sc.Requirements(), res.Deployment, copts)
		if err != nil {
			return nil, err
		}
		cw := &countingWriter{}
		hw := startHeapWatcher()
		start := time.Now()
		if _, err := ex.WriteReport(ctx, cw); err != nil {
			return nil, err
		}
		wallMS := float64(time.Since(start).Microseconds()) / 1000
		peakHeap := hw.Peak()

		st := ex.Stats()
		avgLBD := 0.0
		if st.Learnt > 0 {
			avgLBD = float64(st.LBDSum) / float64(st.Learnt)
		}
		rep.Entries = append(rep.Entries, PerfEntry{
			Scenario:            sc.Name,
			WallMS:              wallMS,
			SynthMS:             synthMS,
			SATConflicts:        st.Conflicts,
			SATSolves:           st.Solves,
			SATPropagations:     st.Propagations,
			SATBinPropagations:  st.BinPropagations,
			SATRestarts:         st.Restarts,
			SATMinimizedLits:    st.MinimizedLits,
			SATAvgLBD:           avgLBD,
			SATTierCore:         st.CoreLearnts,
			SATTierMid:          st.MidLearnts,
			SATTierLocal:        st.LocalLearnts,
			SATWorkers:          ex.Opts.Budget.SatWorkerCount(),
			SATRaces:            st.SatRaces,
			SATSharedExported:   st.SharedExported,
			SATSharedImported:   st.SharedImported,
			SATSharedRejected:   st.SharedRejected,
			SATInprocessRounds:  st.InprocessRounds,
			SATInprocessDeleted: st.InprocessDeleted,
			LiftQueries:         st.LiftQueries,
			LiftP50MS:           float64(st.LiftP50.Microseconds()) / 1000,
			LiftP95MS:           float64(st.LiftP95.Microseconds()) / 1000,
			WarmSolverHits:      st.WarmSolverHits,
			WarmSolverMisses:    st.WarmSolverMisses,
			CacheHits:           st.CacheHits,
			Encodes:             st.Encodes,
			ReusedCandidates:    st.ReusedCandidates,
			NormCacheHits:       st.NormCacheHits,
			NormCacheMisses:     st.NormCacheMisses,
			NormCacheEntries:    st.NormCacheEntries,
			InternedTerms:       logic.Default().Size(),
			PeakHeapBytes:       peakHeap,
			StreamedBytes:       cw.n,
		})
	}
	return rep, nil
}

// WritePerfJSON runs Perf and writes the report to path, indented for
// committing alongside benchmark baselines (BENCH_*.json).
func WritePerfJSON(ctx context.Context, path string, satWorkers int) error {
	rep, err := Perf(ctx, satWorkers)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
