package verify

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/scenarios"
	"repro/internal/spec"
	"repro/internal/synth"
	"repro/internal/topology"
)

func mustReq(t *testing.T, src string) []spec.Requirement {
	t.Helper()
	b, err := spec.ParseBlock(src)
	if err != nil {
		t.Fatal(err)
	}
	return b.Reqs
}

func TestUnconfiguredNetworkViolatesNoTransit(t *testing.T) {
	net := topology.Paper()
	reqs := mustReq(t, `Req1 { !(P1->...->P2) !(P2->...->P1) }`)
	vs, err := Check(net, config.Deployment{}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) == 0 {
		t.Fatal("identity policies must allow transit, expected violations")
	}
	for _, v := range vs {
		if v.Witness == nil || v.Reason == "" {
			t.Fatalf("violation lacks witness/reason: %+v", v)
		}
		if !strings.Contains(v.String(), "witness") {
			t.Fatalf("String() lacks witness: %s", v)
		}
	}
}

func TestSynthesizedScenariosSatisfy(t *testing.T) {
	for _, sc := range scenarios.All() {
		res, err := synth.Synthesize(sc.Net, sc.Sketch, sc.Requirements(), synth.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		ok, err := Satisfies(sc.Net, res.Deployment, sc.Requirements())
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if !ok {
			vs, _ := Check(sc.Net, res.Deployment, sc.Requirements())
			t.Fatalf("%s: synthesized deployment violates spec: %v", sc.Name, vs)
		}
	}
}

func TestPreferenceViolationDetected(t *testing.T) {
	net := topology.Paper()
	// Identity policies: C's route to D1 is decided by tie-breaks, so
	// demanding the P2 route first should be violated (the tie-break
	// picks the lexicographically smaller P1 path).
	reqs := mustReq(t, `Req { (C->R3->R2->P2->...->D1) >> (C->R3->R1->P1->...->D1) }`)
	vs, err := Check(net, config.Deployment{}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Fatalf("violations = %v, want exactly one", vs)
	}
	if vs[0].Witness == nil {
		t.Fatal("preference violation should carry the actual path")
	}
}

func TestPreferenceUnreachable(t *testing.T) {
	net := topology.Paper()
	// Block everything at R3 so C is cut off.
	r3 := config.New("R3")
	r3.AddRouteMap(&config.RouteMap{Name: "none", Clauses: nil})
	r3.AddNeighbor("C", "", "none")
	dep := config.Deployment{"R3": r3}
	reqs := mustReq(t, `Req { (C->R3->R1->P1->...->D1) >> (C->R3->R2->P2->...->D1) }`)
	vs, err := Check(net, dep, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || !strings.Contains(vs[0].Reason, "cannot reach") {
		t.Fatalf("violations = %v, want unreachability", vs)
	}
}

func TestPreferenceBadDestination(t *testing.T) {
	net := topology.Paper()
	reqs := []spec.Requirement{&spec.Preference{Paths: []spec.Path{
		spec.NewPath("C", "R3", "R1"),
		spec.NewPath("C", "R3", "R2", "R1"),
	}}}
	vs, err := Check(net, config.Deployment{}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || !strings.Contains(vs[0].Reason, "originates no prefix") {
		t.Fatalf("violations = %v, want bad destination", vs)
	}
}

func TestCheckUnderFailuresScenario2(t *testing.T) {
	sc := scenarios.Scenario2()
	res, err := synth.Synthesize(sc.Net, sc.Sketch, sc.Requirements(), synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pref := sc.Requirements()[0].(*spec.Preference)
	// Strict interpretation: no unlisted fallback may appear.
	vs, err := CheckUnderFailures(sc.Net, res.Deployment, pref, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("synthesized scenario 2 uses unlisted fallbacks: %v", vs)
	}
}

func TestCheckUnderFailuresFlagsUnlistedFallback(t *testing.T) {
	net := topology.Paper()
	// Identity deployment with both listed paths via P1: after failing
	// R3-R1, traffic falls back through P2 — an unlisted path.
	pref := mustReq(t, `Req { (C->R3->R1->P1->...->D1) >> (C->R3->R2->R1->P1->...->D1) }`)[0].(*spec.Preference)
	vs, err := CheckUnderFailures(net, config.Deployment{}, pref, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) == 0 {
		t.Fatal("identity deployment must use unlisted fallbacks under failure")
	}
	// Tolerant interpretation accepts them.
	vs, err = CheckUnderFailures(net, config.Deployment{}, pref, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("allowUnspecified should tolerate fallbacks: %v", vs)
	}
}

func TestForbidViolationWitnessIsConcretePath(t *testing.T) {
	net := topology.Paper()
	reqs := mustReq(t, `Req1 { !(P1->...->P2) }`)
	vs, err := Check(net, config.Deployment{}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vs {
		f := v.Req.(*spec.Forbid)
		if !spec.MatchesSubpath(f.Path, v.Witness) {
			t.Fatalf("witness %v does not match forbidden pattern %s", v.Witness, f.Path)
		}
	}
}
