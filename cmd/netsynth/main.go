// netsynth completes a configuration sketch against a path-requirement
// specification and prints the synthesized router configurations.
//
//	netsynth -scenario scenario1          # one of the paper's scenarios
//	netsynth -workload grid:3x2           # generated workload (see -help)
//	netsynth -scenario scenario2 -interp2 # unlisted paths as last resort
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/config"
	"repro/internal/spec"
	"repro/internal/synth"
	"repro/internal/verify"
)

func main() {
	scenario := flag.String("scenario", "", "paper scenario: scenario1, scenario2, scenario3")
	workload := flag.String("workload", "", "generated workload: grid:WxH, rand:N:SEED, fattree:K (no-transit intent)")
	pref := flag.Bool("pref", false, "add the D1 path-preference intent to a generated workload")
	interp2 := flag.Bool("interp2", false, "treat unlisted preference paths as last resorts (interpretation 2)")
	quiet := flag.Bool("q", false, "print only the verification verdict")
	flag.Parse()

	prob, err := loadProblem(*scenario, *workload, *pref)
	if err != nil {
		fail(err)
	}
	opts := synth.DefaultOptions()
	opts.AllowUnspecified = *interp2
	if *workload != "" {
		opts.MaxPathLen = 7
		opts.MaxCandidatesPerNode = 8
	}
	res, err := synth.Synthesize(prob.net, prob.sketch, prob.spec.Requirements(), opts)
	if err != nil {
		fail(err)
	}
	if !*quiet {
		fmt.Println("// specification")
		fmt.Print(spec.Print(prob.spec))
		fmt.Println()
		fmt.Print(config.PrintDeployment(res.Deployment))
		fmt.Printf("\n// encoding: %d constraints, %d atoms, %d holes\n",
			res.Encoding.Stats.Constraints, res.Encoding.Stats.ConstraintSize, res.Encoding.Stats.HoleVars)
	}
	vs, err := verify.Check(prob.net, res.Deployment, prob.spec.Requirements())
	if err != nil {
		fail(err)
	}
	if len(vs) == 0 {
		fmt.Println("// verification: all requirements hold")
		return
	}
	for _, v := range vs {
		fmt.Printf("// VIOLATION: %s\n", v)
	}
	os.Exit(1)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "netsynth:", err)
	os.Exit(1)
}
