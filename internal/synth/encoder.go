package synth

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/config"
	"repro/internal/logic"
	"repro/internal/spec"
	"repro/internal/topology"
)

// candidate is one potential propagation path of a prefix, ending at
// the last node of path.
type candidate struct {
	prefix string
	path   []string // propagation path, origin first
	parent *candidate
	// edgeCond is the symbolic pass condition of the final edge
	// (export at parent's node, import here).
	edgeCond logic.Term
	// state is the route's symbolic attribute state at the final node.
	state *routeState
	// sel is the selection variable ("this node picks this
	// candidate"). Nil for the origin candidate, which is always
	// selected.
	sel *logic.Var
}

// node returns the candidate's final node.
func (c *candidate) node() string { return c.path[len(c.path)-1] }

// availTerm is the condition under which the candidate is available
// for selection: the parent selected its path and the final edge
// passed.
func (c *candidate) availTerm() logic.Term {
	if c.parent == nil {
		return logic.True
	}
	parentSel := logic.Term(logic.True)
	if c.parent.sel != nil {
		parentSel = c.parent.sel
	}
	return logic.And(parentSel, c.edgeCond)
}

// selTerm is the candidate's selection condition as a term.
func (c *candidate) selTerm() logic.Term {
	if c.sel == nil {
		return logic.True
	}
	return c.sel
}

// fullPassTerm is the condition under which the route can physically
// propagate along the whole candidate path: every edge's policy chain
// permits it, regardless of what routers select. Its negation is how
// "this path must not exist" requirements are encoded (the drops at
// import interfaces in the paper's Figure 4).
func (c *candidate) fullPassTerm() logic.Term {
	if c.parent == nil {
		return logic.True
	}
	return logic.And(c.parent.fullPassTerm(), c.edgeCond)
}

func (c *candidate) key() string { return strings.Join(c.path, "_") }

// EncStats summarizes an encoding, feeding the experiment harness.
type EncStats struct {
	Constraints    int
	ConstraintSize int // total term nodes across constraints
	HoleVars       int
	SelVars        int
	Candidates     int
	TruncatedPaths int
	// ReusedCandidates counts candidates whose edge condition and
	// route state were taken from a Base instead of being recomputed
	// (see WithBase). Always <= Candidates.
	ReusedCandidates int
	// ScopedGroupsCopied / ScopedGroupsEncoded count, for a scoped
	// encode (see Encoder.WithScope), the constraint groups spliced
	// verbatim from the recorded whole-network encoding versus
	// re-derived inside the dirty cone. Zero on whole-network encodes.
	ScopedGroupsCopied  int
	ScopedGroupsEncoded int
}

// Encoding is the output of Encode: the constraint system plus the
// variable inventory needed to decode models and to explain.
type Encoding struct {
	// Constraints is the full constraint list; their conjunction is
	// the paper's "seed specification" shape.
	Constraints []logic.Term
	// HoleVars maps hole names to their logic variables.
	HoleVars map[string]*logic.Var
	// Stats summarizes encoding size.
	Stats EncStats

	// paths is materialized on first PathInfos call (lifting needs it;
	// whole-network sweeps with lifting disabled never pay for it).
	pathsOnce  sync.Once
	paths      []PathInfo
	buildPaths func() []PathInfo
}

// Conjunction returns the constraints as a single term.
func (enc *Encoding) Conjunction() logic.Term {
	return logic.And(append([]logic.Term(nil), enc.Constraints...)...)
}

// Encoder builds constraint encodings. Create with NewEncoder; one
// encoder may encode once.
type Encoder struct {
	net    *topology.Network
	sketch config.Deployment
	opts   Options
	vocab  *vocab
	in     *logic.Interner

	holeVars map[string]*logic.Var
	// cands[prefix][node] lists candidates in discovery (BFS) order.
	cands       map[string]map[string][]*candidate
	constraints []logic.Term
	stats       EncStats

	// base, when set via WithBase, lets enumerateCandidates reuse the
	// edge conditions and route states of candidates whose path avoids
	// every dirty router (a router whose sketch config differs from the
	// base deployment). Terms are immutable and compared structurally,
	// so reuse is exact: the encoding is identical to a fresh one.
	base  *Base
	dirty map[string]bool

	// scope, when set via WithScope, replaces the whole-network encode
	// with a cone-scoped splice against a recorded concrete encoding:
	// only constraint groups touching a dirty router are re-encoded,
	// the rest are copied span-by-span (see encodeScoped). scopeDirty
	// is the dirty set relative to the scope's deployment.
	scope      *ScopedBase
	scopeDirty map[string]bool
}

// NewEncoder creates an encoder over a topology and a (possibly
// symbolic) deployment sketch.
func NewEncoder(net *topology.Network, sketch config.Deployment, opts Options) *Encoder {
	return &Encoder{
		net:      net,
		sketch:   sketch,
		opts:     opts.withDefaults(),
		vocab:    buildVocab(net, sketch),
		in:       logic.Default(),
		holeVars: make(map[string]*logic.Var),
		cands:    make(map[string]map[string][]*candidate),
	}
}

// WithInterner directs the encoder to canonicalize every emitted
// constraint through in, so a session's encodings, simplifier and
// solver all share one hash-cons table (an O(1) ownership check per
// constraint when the terms were built by the logic constructors).
// Call before Encode. Returns the encoder for chaining.
func (e *Encoder) WithInterner(in *logic.Interner) *Encoder {
	if in != nil {
		e.in = in
	}
	return e
}

func (e *Encoder) assert(t logic.Term) {
	e.constraints = append(e.constraints, e.in.Intern(t))
}

// WithBase attaches a cached base encoding (see NewBase): candidates
// whose propagation path avoids every router that differs between the
// sketch and the base deployment reuse the base's symbolic edge
// conditions and route states instead of re-deriving them. The base is
// ignored (silently, falling back to a full encode) when it was built
// over a different topology or with different candidate-enumeration
// options, so attaching a base never changes the encoding — only the
// work done to produce it. Returns the encoder for chaining.
func (e *Encoder) WithBase(b *Base) *Encoder {
	if b == nil || b.net != e.net || b.opts != e.opts {
		return e
	}
	dirty := make(map[string]bool)
	for name, c := range e.sketch {
		if b.dep[name] != c {
			dirty[name] = true
		}
	}
	for name := range b.dep {
		if _, ok := e.sketch[name]; !ok {
			dirty[name] = true
		}
	}
	e.base = b
	e.dirty = dirty
	return e
}

// WithScope attaches a recorded whole-network encoding (see
// NewScopedBase): when the sketch differs from the scope's deployment
// only at a few routers — the explanation case, which symbolizes one
// router at a time — EncodeContext splices the recorded constraint list
// instead of re-encoding the network, re-deriving only the constraint
// groups whose candidates cross a dirty router. The scope is ignored
// (silently, falling back to a full encode) when it was built over a
// different topology, options, or requirement list, so attaching one
// never changes the encoding — only the work done to produce it.
// Returns the encoder for chaining.
func (e *Encoder) WithScope(sb *ScopedBase) *Encoder {
	if sb == nil || sb.net != e.net || sb.opts != e.opts {
		return e
	}
	dirty := make(map[string]bool)
	for name, c := range e.sketch {
		if sb.dep[name] != c {
			dirty[name] = true
		}
	}
	for name := range sb.dep {
		if _, ok := e.sketch[name]; !ok {
			dirty[name] = true
		}
	}
	e.scope = sb
	e.scopeDirty = dirty
	return e
}

// Encode builds the constraint system for the requirements.
func (e *Encoder) Encode(reqs []spec.Requirement) (*Encoding, error) {
	return e.EncodeContext(context.Background(), reqs)
}

// EncodeContext is Encode with cancellation: the context is checked
// between encoding phases and inside candidate enumeration.
func (e *Encoder) EncodeContext(ctx context.Context, reqs []spec.Requirement) (*Encoding, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if e.scope != nil && e.scope.matchesReqs(reqs) {
		return e.encodeScoped(ctx, reqs)
	}
	if err := e.declareAllHoles(); err != nil {
		return nil, err
	}
	if err := e.enumerateCandidates(ctx); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e.encodeSelection()
	for _, r := range reqs {
		if err := e.encodeRequirement(r); err != nil {
			return nil, err
		}
	}
	e.finishStats()
	return e.finishEncoding(), nil
}

// encodeRequirement dispatches one requirement to its encoder.
func (e *Encoder) encodeRequirement(r spec.Requirement) error {
	switch q := r.(type) {
	case *spec.Forbid:
		return e.encodeForbid(q)
	case *spec.Allow:
		return e.encodeAllow(q)
	case *spec.Preference:
		return e.encodePreference(q)
	default:
		return fmt.Errorf("synth: unsupported requirement %T", r)
	}
}

// finishStats fills the size fields computed from the final constraint
// list. The candidate-enumeration fields are already in place.
func (e *Encoder) finishStats() {
	e.stats.Constraints = len(e.constraints)
	for _, c := range e.constraints {
		e.stats.ConstraintSize += logic.Size(c)
	}
	e.stats.HoleVars = len(e.holeVars)
}

// finishEncoding packages the encoder's state. Path infos build lazily
// on first use: the candidate graph is immutable once encoded, and the
// sync.Once makes the materialization safe under the session cache's
// concurrent readers.
func (e *Encoder) finishEncoding() *Encoding {
	enc := &Encoding{
		Constraints: e.constraints,
		HoleVars:    e.holeVars,
		Stats:       e.stats,
	}
	enc.buildPaths = e.buildPathInfos
	return enc
}

// declareAllHoles walks the sketch and creates a variable for every
// hole, even holes on route maps no candidate path crosses — so models
// always cover them and explanations can report them as unconstrained.
func (e *Encoder) declareAllHoles() error {
	routers := make([]string, 0, len(e.sketch))
	for r := range e.sketch {
		routers = append(routers, r)
	}
	sort.Strings(routers)
	return e.declareHolesOf(routers)
}

// declareHolesOf declares the holes of the named sketch routers, in the
// given order.
func (e *Encoder) declareHolesOf(routers []string) error {
	for _, router := range routers {
		c := e.sketch[router]
		for _, name := range c.RouteMapNames() {
			for _, cl := range c.RouteMaps[name].Clauses {
				if cl.ActionHole != "" {
					if _, err := e.holeVar(cl.ActionHole, func() *logic.Var {
						return logic.NewEnumVar(cl.ActionHole, e.vocab.actionSort)
					}); err != nil {
						return err
					}
				}
				for _, m := range cl.Matches {
					if m.ValueHole == "" {
						continue
					}
					mk, err := e.matchHoleMaker(m)
					if err != nil {
						return err
					}
					if _, err := e.holeVar(m.ValueHole, mk); err != nil {
						return err
					}
				}
				for _, s := range cl.Sets {
					if s.ParamHole == "" {
						continue
					}
					mk, err := e.setHoleMaker(s)
					if err != nil {
						return err
					}
					if _, err := e.holeVar(s.ParamHole, mk); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

func (e *Encoder) matchHoleMaker(m *config.Match) (func() *logic.Var, error) {
	switch m.Kind {
	case config.MatchPrefixList:
		return func() *logic.Var { return logic.NewEnumVar(m.ValueHole, e.vocab.prefixSort) }, nil
	case config.MatchCommunity:
		return func() *logic.Var { return logic.NewEnumVar(m.ValueHole, e.vocab.commSort) }, nil
	case config.MatchNextHopIs:
		return func() *logic.Var { return logic.NewEnumVar(m.ValueHole, e.vocab.nbrSort) }, nil
	}
	return nil, fmt.Errorf("synth: unsupported match kind %v", m.Kind)
}

func (e *Encoder) setHoleMaker(s *config.Set) (func() *logic.Var, error) {
	switch s.Kind {
	case config.SetLocalPref, config.SetMED:
		return func() *logic.Var { return logic.NewIntVar(s.ParamHole, 0, LPRankHi) }, nil
	case config.SetCommunity:
		return func() *logic.Var { return logic.NewEnumVar(s.ParamHole, e.vocab.commSort) }, nil
	case config.SetNextHopIP:
		return func() *logic.Var { return logic.NewEnumVar(s.ParamHole, e.vocab.ipSort) }, nil
	}
	return nil, fmt.Errorf("synth: unsupported set kind %v", s.Kind)
}

// enumerateCandidates runs a BFS per originated prefix, applying edge
// policies symbolically along the way. BFS order makes candidate
// discovery shortest-first and deterministic, so the per-node
// candidate cap keeps the shortest paths. When a base is attached
// (WithBase), candidates whose path avoids every dirty router copy the
// base's edge condition and route state instead of re-deriving them —
// the BFS structure itself depends only on the topology and options,
// so discovery order (and with it the encoding) is unchanged.
func (e *Encoder) enumerateCandidates(ctx context.Context) error {
	for _, origin := range e.net.Routers() {
		if !origin.HasPrefix {
			continue
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		prefix := origin.Prefix.String()
		byNode := make(map[string][]*candidate)
		e.cands[prefix] = byNode

		root := &candidate{
			prefix: prefix,
			path:   []string{origin.Name},
			state:  originState(prefix),
		}
		byNode[origin.Name] = []*candidate{root}
		queue := []*candidate{root}
		for popped := 0; len(queue) > 0; popped++ {
			if popped%ctxCheckInterval == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			cur := queue[0]
			queue = queue[1:]
			if len(cur.path) >= e.opts.MaxPathLen {
				continue
			}
			// Stub networks never provide transit: a path may start at
			// a stub (its own origination) but never pass through one.
			if r := e.net.Router(cur.node()); r.Stub && cur.node() != origin.Name {
				continue
			}
			for _, nb := range e.net.Neighbors(cur.node()) {
				if contains(cur.path, nb) {
					continue
				}
				if e.opts.MaxCandidatesPerNode > 0 && len(byNode[nb]) >= e.opts.MaxCandidatesPerNode {
					e.stats.TruncatedPaths++
					continue
				}
				path := make([]string, len(cur.path)+1)
				copy(path, cur.path)
				path[len(cur.path)] = nb
				var cond logic.Term
				var st *routeState
				if bc := e.baseCandidate(prefix, path); bc != nil {
					cond, st = bc.edgeCond, bc.state
					e.stats.ReusedCandidates++
				} else {
					var err error
					cond, st, err = e.edgePass(cur.node(), nb, cur.state)
					if err != nil {
						return err
					}
				}
				next := &candidate{
					prefix:   prefix,
					path:     path,
					parent:   cur,
					edgeCond: cond,
					state:    st,
				}
				next.sel = logic.NewBoolVar("sel_" + prefix + "_" + next.key())
				e.stats.SelVars++
				byNode[nb] = append(byNode[nb], next)
				queue = append(queue, next)
				e.stats.Candidates++
			}
		}
	}
	return nil
}

// ctxCheckInterval is how many BFS pops pass between context checks
// during candidate enumeration.
const ctxCheckInterval = 64

// baseCandidate returns the base's candidate for the path when reuse
// is sound: a base is attached and no node of the path is dirty (every
// edge's export and import policy, and every state transformation
// along the path, is computed from configs identical to the base's).
func (e *Encoder) baseCandidate(prefix string, path []string) *candidate {
	if e.base == nil {
		return nil
	}
	for _, n := range path {
		if e.dirty[n] {
			return nil
		}
	}
	return e.base.cands[prefix][strings.Join(path, "_")]
}

func contains(path []string, node string) bool {
	for _, n := range path {
		if n == node {
			return true
		}
	}
	return false
}

// encodeSelection ties selection variables to availability and to the
// BGP decision process at every (router, prefix).
func (e *Encoder) encodeSelection() {
	e.forEachSelectionGroup(func(prefix, node string, cands []*candidate) {
		e.encodeSelectionGroup(cands)
	})
}

// forEachSelectionGroup visits every non-origin (prefix, router)
// candidate group in the canonical emission order: vocabulary prefix
// order, then router name order. Both the whole-network encode and the
// scoped splice derive their constraint layout from this walk, which is
// what makes span-copying sound (see ScopedBase).
func (e *Encoder) forEachSelectionGroup(f func(prefix, node string, cands []*candidate)) {
	for _, prefix := range e.vocab.prefixes {
		byNode := e.cands[prefix]
		for _, node := range sortedNodes(byNode) {
			cands := byNode[node]
			if len(cands) == 1 && cands[0].sel == nil {
				continue // origin
			}
			f(prefix, node, cands)
		}
	}
}

// encodeSelectionGroup emits the selection constraints of one
// (prefix, router) candidate group: sel-implies-avail, at-most-one,
// availability-implies-selection, and the decision process.
func (e *Encoder) encodeSelectionGroup(cands []*candidate) {
	var avails, sels []logic.Term
	for _, c := range cands {
		avails = append(avails, c.availTerm())
		sels = append(sels, c.sel)
		// sel implies avail.
		e.assert(logic.Implies(c.sel, c.availTerm()))
	}
	// At most one selected.
	for i := range cands {
		for j := i + 1; j < len(cands); j++ {
			e.assert(logic.Or(logic.Not(sels[i]), logic.Not(sels[j])))
		}
	}
	// Some candidate available implies one selected.
	e.assert(logic.Implies(logic.Or(avails...), logic.Or(sels...)))
	// Decision process: a selected candidate must be at least
	// as good as every available one.
	for i, ci := range cands {
		for j, cj := range cands {
			if i == j {
				continue
			}
			e.assert(logic.Implies(
				logic.And(sels[i], avails[j]),
				betterOrEqual(ci, cj, e.net),
			))
		}
	}
}

// betterOrEqual encodes "ci is at least as preferred as cj" under the
// decision process: strictly higher local-pref rank wins; at equal
// rank the concrete tie-break (AS-path length, then hop count, then
// lexicographic path) decides.
func betterOrEqual(ci, cj *candidate, net *topology.Network) logic.Term {
	if tieBreakWins(ci, cj, net) {
		return logic.Ge(ci.state.lp, cj.state.lp)
	}
	return logic.Gt(ci.state.lp, cj.state.lp)
}

// tieBreakWins decides the concrete tie-break between two candidate
// paths (mirrors bgp.Better below the local-pref step, minus MED,
// which the encoding does not model).
func tieBreakWins(ci, cj *candidate, net *topology.Network) bool {
	ai, aj := asPathLen(ci.path, net), asPathLen(cj.path, net)
	if ai != aj {
		return ai < aj
	}
	if len(ci.path) != len(cj.path) {
		return len(ci.path) < len(cj.path)
	}
	return strings.Join(ci.path, ",") < strings.Join(cj.path, ",")
}

// asPathLen counts AS-level hops of a propagation path.
func asPathLen(path []string, net *topology.Network) int {
	count := 1
	for i := 1; i < len(path); i++ {
		if net.Router(path[i]).AS != net.Router(path[i-1]).AS {
			count++
		}
	}
	return count
}

// encodeForbid forbids selecting, anywhere in the network, a route
// whose traffic path contains the pattern.
func (e *Encoder) encodeForbid(f *spec.Forbid) error {
	hit := false
	for _, prefix := range e.vocab.prefixes {
		for _, node := range sortedNodes(e.cands[prefix]) {
			for _, c := range e.cands[prefix][node] {
				if !matchesTraffic(f.Path, c.path) {
					continue
				}
				hit = true
				if c.sel == nil {
					return fmt.Errorf("synth: forbidden path %s matches an origin announcement", f.Path)
				}
				e.assert(logic.Not(c.sel))
			}
		}
	}
	if !hit {
		// A forbid that matches no candidate path is vacuously
		// satisfied; not an error (the topology may simply not allow
		// it).
		return nil
	}
	return nil
}

// encodeAllow requires traffic from the pattern's source to reach its
// destination along some matching path: at least one matching
// candidate must be selected at the source.
func (e *Encoder) encodeAllow(a *spec.Allow) error {
	src, dst := a.Path.First(), a.Path.Last()
	origin := e.net.Router(dst)
	if origin == nil || !origin.HasPrefix {
		return fmt.Errorf("synth: allow destination %q does not originate a prefix", dst)
	}
	prefix := origin.Prefix.String()
	var sels []logic.Term
	for _, c := range e.cands[prefix][src] {
		if matchesTrafficExact(a.Path, c.path) {
			sels = append(sels, c.selTerm())
		}
	}
	if len(sels) == 0 {
		return fmt.Errorf("synth: allow pattern %s matches no candidate path", a.Path)
	}
	e.assert(logic.Or(sels...))
	return nil
}

// encodePreference encodes an ordered path preference at the traffic
// source.
func (e *Encoder) encodePreference(p *spec.Preference) error {
	if len(p.Paths) < 2 {
		return fmt.Errorf("synth: preference needs at least two paths")
	}
	src := p.Paths[0].First()
	dst := p.Paths[0].Last()
	for _, q := range p.Paths[1:] {
		if q.First() != src || q.Last() != dst {
			return fmt.Errorf("synth: preference paths must share source and destination (%s vs %s)", p.Paths[0], q)
		}
	}
	origin := e.net.Router(dst)
	if origin == nil || !origin.HasPrefix {
		return fmt.Errorf("synth: preference destination %q does not originate a prefix", dst)
	}
	prefix := origin.Prefix.String()
	atSrc := e.cands[prefix][src]
	if len(atSrc) == 0 {
		return fmt.Errorf("synth: no candidate paths from %s to %s", src, dst)
	}

	// Partition the source's candidates into preference levels; a
	// candidate matching several patterns lands in the most preferred.
	level := make(map[*candidate]int)
	byLevel := make([][]*candidate, len(p.Paths))
	for _, c := range atSrc {
		assigned := false
		for i, pat := range p.Paths {
			if matchesTrafficExact(pat, c.path) {
				level[c] = i
				byLevel[i] = append(byLevel[i], c)
				assigned = true
				break
			}
		}
		if !assigned {
			level[c] = -1
		}
	}
	if len(byLevel[0]) == 0 {
		return fmt.Errorf("synth: most preferred pattern %s matches no candidate path", p.Paths[0])
	}

	// The most preferred path must actually be selected in the
	// failure-free network.
	var top []logic.Term
	for _, c := range byLevel[0] {
		top = append(top, c.selTerm())
	}
	e.assert(logic.Or(top...))

	// Every listed path must remain configured-in (available as a
	// fallback): the preference lists the admissible paths in order,
	// so none of them may be blocked outright.
	for i := range byLevel {
		for _, c := range byLevel[i] {
			e.assert(c.fullPassTerm())
		}
	}

	// Selecting a level-i path requires all more-preferred paths to be
	// blocked by configuration (not merely unselected).
	for i := 1; i < len(byLevel); i++ {
		for _, c := range byLevel[i] {
			var higher []logic.Term
			for j := 0; j < i; j++ {
				for _, hc := range byLevel[j] {
					higher = append(higher, logic.Not(hc.fullPassTerm()))
				}
			}
			e.assert(logic.Implies(c.selTerm(), logic.And(higher...)))
		}
	}

	// The preference must be configured, not accidental: at the router
	// where a more-preferred and a less-preferred path diverge, the
	// local-preference of the preferred route must be strictly higher
	// (unless the concrete tie-break already favors it). This is what
	// makes the intent hold under failures, and what surfaces as the
	// "preference { ... }" clause in the paper's Figure 4 subspec.
	for i := 0; i < len(byLevel); i++ {
		for j := i + 1; j < len(byLevel); j++ {
			for _, hi := range byLevel[i] {
				for _, lo := range byLevel[j] {
					e.assertPreferredAtDivergence(hi, lo)
				}
			}
		}
	}

	// Unlisted paths: blocked under the NetComplete interpretation
	// (the paper's Scenario 2 ambiguity). Under AllowUnspecified —
	// interpretation (2) — they instead stay configured-in but less
	// preferred than every listed path, so they serve as last resorts.
	for _, c := range atSrc {
		if level[c] != -1 {
			continue
		}
		if e.opts.AllowUnspecified {
			e.assert(c.fullPassTerm())
			for i := range byLevel {
				for _, hc := range byLevel[i] {
					e.assertPreferredAtDivergence(hc, c)
				}
			}
		} else {
			e.assert(logic.Not(c.fullPassTerm()))
		}
	}
	return nil
}

// assertPreferredAtDivergence locates the router where the traffic
// paths of hi and lo diverge and requires hi's route to win the
// decision process there: strictly higher local-pref rank, or at least
// equal when the concrete tie-break already favors hi.
func (e *Encoder) assertPreferredAtDivergence(hi, lo *candidate) {
	ti, tj := trafficPath(hi.path), trafficPath(lo.path)
	// Longest common prefix of the traffic paths; the last common node
	// is where the routes compete.
	k := 0
	for k < len(ti) && k < len(tj) && ti[k] == tj[k] {
		k++
	}
	if k == 0 {
		return
	}
	div := ti[k-1]
	if r := e.net.Router(div); r == nil || r.Role != topology.Internal {
		// Divergence outside the managed network cannot be configured;
		// the selection constraints still apply, but no local-pref
		// obligation can be imposed.
		return
	}
	chi := e.candidateAt(hi, div)
	clo := e.candidateAt(lo, div)
	if chi == nil || clo == nil || chi == clo {
		return
	}
	e.assert(betterOrEqual(chi, clo, e.net))
}

// candidateAt finds the candidate for the propagation-path prefix of c
// that ends at node (c's route as seen at an earlier hop).
func (e *Encoder) candidateAt(c *candidate, node string) *candidate {
	for cur := c; cur != nil; cur = cur.parent {
		if cur.node() == node {
			return cur
		}
	}
	return nil
}

func sortedNodes(byNode map[string][]*candidate) []string {
	out := make([]string, 0, len(byNode))
	for n := range byNode {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Candidates exposes the candidate paths of a prefix at a node (for
// the verifier's diagnostics and tests).
func (e *Encoder) Candidates(prefix, node string) [][]string {
	var out [][]string
	for _, c := range e.cands[prefix][node] {
		out = append(out, append([]string(nil), c.path...))
	}
	return out
}
