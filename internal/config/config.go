// Package config models router configurations in a simplified
// Cisco-IOS-like dialect: BGP neighbor stanzas binding route-maps to
// import/export directions, route-maps made of permit/deny clauses
// with match and set lines, prefix lists, and community lists — the
// shape of the configurations NetComplete emits (see the paper's
// Figure 1c).
//
// Configurations double as *sketches*: any clause field (the action,
// a match's attribute or value, a set line's parameter) may be a hole,
// a named symbolic variable to be filled by the synthesizer or left
// symbolic by the explainer (the paper's Figure 6b, where concrete
// lines are replaced by Var_Attr / Var_Val / Var_Action / Var_Param).
// Concrete application (the bgp.PolicyProvider implementation) refuses
// configurations that still contain holes.
package config

import (
	"fmt"
	"net/netip"
	"sort"

	"repro/internal/bgp"
)

// Action is a route-map clause disposition.
type Action int

const (
	// Deny drops the route.
	Deny Action = iota
	// Permit accepts the route (after applying set lines).
	Permit
)

// String renders the action in IOS syntax.
func (a Action) String() string {
	if a == Permit {
		return "permit"
	}
	return "deny"
}

// Direction distinguishes import from export route-map bindings.
type Direction int

const (
	// In is the import direction (routes received from the peer).
	In Direction = iota
	// Out is the export direction (routes announced to the peer).
	Out
)

// String renders the direction in IOS syntax.
func (d Direction) String() string {
	if d == In {
		return "in"
	}
	return "out"
}

// MatchKind selects what a match line inspects.
type MatchKind int

const (
	// MatchPrefixList matches the route's prefix against a named
	// prefix list.
	MatchPrefixList MatchKind = iota
	// MatchCommunity matches a community tag on the route.
	MatchCommunity
	// MatchNextHopIs matches the neighbor the route was learned from.
	MatchNextHopIs
)

// String renders the match kind.
func (k MatchKind) String() string {
	switch k {
	case MatchPrefixList:
		return "prefix-list"
	case MatchCommunity:
		return "community"
	case MatchNextHopIs:
		return "next-hop"
	}
	return "?"
}

// Match is one match line of a clause. When ValueHole is non-empty the
// matched value is symbolic (the paper's Var_Val); the Kind remains
// concrete, mirroring NetComplete's sketches where the attribute kind
// is given by the template and the value is synthesized.
type Match struct {
	Kind MatchKind
	// PrefixList names the prefix list for MatchPrefixList.
	PrefixList string
	// Community is the tag for MatchCommunity.
	Community bgp.Community
	// NextHop is the neighbor name for MatchNextHopIs.
	NextHop string
	// ValueHole, when non-empty, marks the match value symbolic under
	// that variable name.
	ValueHole string
}

// SetKind selects what a set line modifies.
type SetKind int

const (
	// SetLocalPref sets the route's local preference.
	SetLocalPref SetKind = iota
	// SetCommunity adds a community tag.
	SetCommunity
	// SetMED sets the multi-exit discriminator.
	SetMED
	// SetNextHopIP rewrites the next-hop IP. It does not influence
	// route selection in this model — it is the "cosmetic" attribute
	// whose redundancy the paper's Scenario 1 exposes.
	SetNextHopIP
)

// String renders the set kind.
func (k SetKind) String() string {
	switch k {
	case SetLocalPref:
		return "local-preference"
	case SetCommunity:
		return "community"
	case SetMED:
		return "metric"
	case SetNextHopIP:
		return "next-hop"
	}
	return "?"
}

// Set is one set line of a clause. ParamHole, when non-empty, marks
// the parameter symbolic (the paper's Var_Param).
type Set struct {
	Kind      SetKind
	LocalPref int
	Community bgp.Community
	MED       int
	NextHopIP string
	ParamHole string
}

// Clause is one numbered permit/deny clause of a route map. ActionHole,
// when non-empty, marks the action symbolic (the paper's Var_Action).
type Clause struct {
	Seq        int
	Action     Action
	ActionHole string
	Matches    []*Match
	Sets       []*Set
}

// RouteMap is an ordered list of clauses; the first clause whose
// matches all hold decides the route, and a route matching no clause
// is denied (IOS semantics).
type RouteMap struct {
	Name    string
	Clauses []*Clause
}

// PrefixEntry is one line of a prefix list.
type PrefixEntry struct {
	Seq    int
	Action Action
	Prefix netip.Prefix
}

// PrefixList is a named ordered prefix filter.
type PrefixList struct {
	Name    string
	Entries []PrefixEntry
}

// Permits reports whether the list permits the prefix: first matching
// entry decides; no match denies.
func (pl *PrefixList) Permits(p netip.Prefix) bool {
	for _, e := range pl.Entries {
		if e.Prefix == p {
			return e.Action == Permit
		}
	}
	return false
}

// Neighbor binds route-maps to a BGP session with a peer.
type Neighbor struct {
	Peer string
	// ImportMap and ExportMap name route maps ("" means accept/send
	// everything unchanged).
	ImportMap string
	ExportMap string
}

// Config is the configuration of one router.
type Config struct {
	Router      string
	Neighbors   []*Neighbor
	RouteMaps   map[string]*RouteMap
	PrefixLists map[string]*PrefixList
}

// New creates an empty configuration for the named router.
func New(router string) *Config {
	return &Config{
		Router:      router,
		RouteMaps:   make(map[string]*RouteMap),
		PrefixLists: make(map[string]*PrefixList),
	}
}

// Neighbor returns the binding for peer, or nil.
func (c *Config) Neighbor(peer string) *Neighbor {
	for _, n := range c.Neighbors {
		if n.Peer == peer {
			return n
		}
	}
	return nil
}

// AddNeighbor appends a neighbor binding, replacing any existing
// binding for the same peer.
func (c *Config) AddNeighbor(peer, importMap, exportMap string) {
	if n := c.Neighbor(peer); n != nil {
		n.ImportMap, n.ExportMap = importMap, exportMap
		return
	}
	c.Neighbors = append(c.Neighbors, &Neighbor{Peer: peer, ImportMap: importMap, ExportMap: exportMap})
}

// AddRouteMap registers a route map.
func (c *Config) AddRouteMap(rm *RouteMap) { c.RouteMaps[rm.Name] = rm }

// AddPrefixList registers a prefix list.
func (c *Config) AddPrefixList(pl *PrefixList) { c.PrefixLists[pl.Name] = pl }

// RouteMapNames returns the sorted route-map names.
func (c *Config) RouteMapNames() []string {
	out := make([]string, 0, len(c.RouteMaps))
	for n := range c.RouteMaps {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PrefixListNames returns the sorted prefix-list names.
func (c *Config) PrefixListNames() []string {
	out := make([]string, 0, len(c.PrefixLists))
	for n := range c.PrefixLists {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Hole describes one symbolic field of a configuration sketch.
type Hole struct {
	// Name is the symbolic variable name.
	Name string
	// Where locates the hole for diagnostics, e.g.
	// "route-map R1_to_P1 clause 10 action".
	Where string
}

// Holes lists the symbolic fields of the configuration in
// deterministic order.
func (c *Config) Holes() []Hole {
	var out []Hole
	for _, name := range c.RouteMapNames() {
		rm := c.RouteMaps[name]
		for _, cl := range rm.Clauses {
			at := fmt.Sprintf("route-map %s clause %d", rm.Name, cl.Seq)
			if cl.ActionHole != "" {
				out = append(out, Hole{Name: cl.ActionHole, Where: at + " action"})
			}
			for i, m := range cl.Matches {
				if m.ValueHole != "" {
					out = append(out, Hole{Name: m.ValueHole, Where: fmt.Sprintf("%s match %d (%s)", at, i, m.Kind)})
				}
			}
			for i, s := range cl.Sets {
				if s.ParamHole != "" {
					out = append(out, Hole{Name: s.ParamHole, Where: fmt.Sprintf("%s set %d (%s)", at, i, s.Kind)})
				}
			}
		}
	}
	return out
}

// Concrete reports whether the configuration has no holes.
func (c *Config) Concrete() bool { return len(c.Holes()) == 0 }

// Clone deep-copies the configuration, so sketches can be filled or
// symbolized without disturbing the original.
func (c *Config) Clone() *Config {
	out := New(c.Router)
	for _, n := range c.Neighbors {
		cp := *n
		out.Neighbors = append(out.Neighbors, &cp)
	}
	for name, rm := range c.RouteMaps {
		nrm := &RouteMap{Name: rm.Name}
		for _, cl := range rm.Clauses {
			ncl := &Clause{Seq: cl.Seq, Action: cl.Action, ActionHole: cl.ActionHole}
			for _, m := range cl.Matches {
				mc := *m
				ncl.Matches = append(ncl.Matches, &mc)
			}
			for _, s := range cl.Sets {
				sc := *s
				ncl.Sets = append(ncl.Sets, &sc)
			}
			nrm.Clauses = append(nrm.Clauses, ncl)
		}
		out.RouteMaps[name] = nrm
	}
	for name, pl := range c.PrefixLists {
		npl := &PrefixList{Name: pl.Name, Entries: append([]PrefixEntry(nil), pl.Entries...)}
		out.PrefixLists[name] = npl
	}
	return out
}
