package logic

import "fmt"

// Op enumerates the non-leaf operators of the term language.
type Op int

const (
	// OpAnd is n-ary conjunction (Bool... -> Bool).
	OpAnd Op = iota
	// OpOr is n-ary disjunction (Bool... -> Bool).
	OpOr
	// OpNot is negation (Bool -> Bool).
	OpNot
	// OpImplies is implication (Bool, Bool -> Bool).
	OpImplies
	// OpIff is bi-implication (Bool, Bool -> Bool).
	OpIff
	// OpEq is equality over any single sort (T, T -> Bool).
	OpEq
	// OpNe is disequality over any single sort (T, T -> Bool).
	OpNe
	// OpLt is strict less-than over integers (Int, Int -> Bool).
	OpLt
	// OpLe is less-or-equal over integers (Int, Int -> Bool).
	OpLe
	// OpGt is strict greater-than over integers (Int, Int -> Bool).
	OpGt
	// OpGe is greater-or-equal over integers (Int, Int -> Bool).
	OpGe
	// OpAdd is n-ary integer addition (Int... -> Int).
	OpAdd
	// OpSub is binary integer subtraction (Int, Int -> Int).
	OpSub
	// OpIte is if-then-else (Bool, T, T -> T).
	OpIte
)

var opNames = [...]string{
	OpAnd:     "and",
	OpOr:      "or",
	OpNot:     "not",
	OpImplies: "=>",
	OpIff:     "<=>",
	OpEq:      "=",
	OpNe:      "!=",
	OpLt:      "<",
	OpLe:      "<=",
	OpGt:      ">",
	OpGe:      ">=",
	OpAdd:     "+",
	OpSub:     "-",
	OpIte:     "ite",
}

// String returns the operator's surface syntax.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Term is an immutable node of the term language. The concrete node
// types are Var, BoolLit, IntLit, EnumLit, and Apply. Terms form trees;
// sharing subterms is allowed (and encouraged) because terms are never
// mutated.
type Term interface {
	// Sort returns the term's sort. It panics on ill-sorted terms,
	// which the constructors in build.go prevent from being created.
	Sort() *Sort
	// String renders the term in the package's infix surface syntax
	// (see print.go).
	String() string

	isTerm()
}

// Var is a symbolic variable. Variables are identified by name; two Var
// nodes with the same name and sort are the same variable. Integer
// variables carry an inclusive domain [Lo, Hi] so the finite-domain
// solver knows their range; for Bool and Enum variables the domain
// fields are ignored.
type Var struct {
	Name string
	S    *Sort
	// Lo and Hi bound integer variables inclusively. They are only
	// meaningful when S is the Int sort.
	Lo, Hi int64

	hash uint64
	vsig uint64
	in   *Interner
}

// Sort implements Term.
func (v *Var) Sort() *Sort { return v.S }
func (v *Var) isTerm()     {}

// BoolLit is a boolean constant.
type BoolLit struct {
	Val bool

	hash uint64
	in   *Interner
}

// Sort implements Term.
func (b *BoolLit) Sort() *Sort { return Bool }
func (b *BoolLit) isTerm()     {}

// True and False are the shared boolean constants: the only two
// BoolLit nodes in the process. Every interner canonicalizes boolean
// literals to these singletons, so pointer comparison against them is
// always safe.
var (
	True  = &BoolLit{Val: true, hash: hashBool(true)}
	False = &BoolLit{Val: false, hash: hashBool(false)}
)

// IntLit is an integer constant.
type IntLit struct {
	Val int64

	hash uint64
	in   *Interner
}

// Sort implements Term.
func (i *IntLit) Sort() *Sort { return Int }
func (i *IntLit) isTerm()     {}

// EnumLit is a constant of an enumeration sort.
type EnumLit struct {
	S   *Sort
	Val string

	hash uint64
	in   *Interner
}

// Sort implements Term.
func (e *EnumLit) Sort() *Sort { return e.S }
func (e *EnumLit) isTerm()     {}

// Apply is an operator applied to argument terms. The constructors in
// build.go validate arities and sorts, so a well-formed program never
// constructs an ill-sorted Apply by hand.
type Apply struct {
	Op   Op
	Args []Term

	hash uint64
	vsig uint64
	in   *Interner
}

// Sort implements Term.
func (a *Apply) Sort() *Sort {
	switch a.Op {
	case OpAnd, OpOr, OpNot, OpImplies, OpIff, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return Bool
	case OpAdd, OpSub:
		return Int
	case OpIte:
		return a.Args[1].Sort()
	}
	panic(fmt.Sprintf("logic: Apply with unknown op %v", a.Op))
}

func (a *Apply) isTerm() {}

// IsTrue reports whether t is the literal true.
func IsTrue(t Term) bool {
	b, ok := t.(*BoolLit)
	return ok && b.Val
}

// IsFalse reports whether t is the literal false.
func IsFalse(t Term) bool {
	b, ok := t.(*BoolLit)
	return ok && !b.Val
}

// IsLit reports whether t is a constant (boolean, integer, or enum
// literal).
func IsLit(t Term) bool {
	switch t.(type) {
	case *BoolLit, *IntLit, *EnumLit:
		return true
	}
	return false
}
