package core

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/scenarios"
)

// TestReportIdenticalAcrossSatWorkerMatrix pins the determinism
// contract of portfolio search: with proof verification on, the
// whole-network report is byte-identical to the committed golden at
// every SAT worker count crossed with every lift worker count. Racing
// workers may find different models, different cores, and different
// proofs run to run — but the report consumes verdicts, not search
// traces, and verdicts are semantic facts of the formula. Any byte
// drift here means witness data leaked into a report.
func TestReportIdenticalAcrossSatWorkerMatrix(t *testing.T) {
	for _, sc := range scenarios.All() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			dep := synthScenario(t, sc)
			want, err := os.ReadFile(filepath.Join("testdata", "report_"+sc.Name+".golden"))
			if err != nil {
				t.Fatalf("missing golden (run TestReportMatchesGolden -update): %v", err)
			}
			for _, satWorkers := range []int{1, 2, 4} {
				for _, liftWorkers := range []int{1, 2, 8} {
					opts := DefaultOptions()
					opts.VerifyProofs = true
					opts.Budget.SatWorkers = satWorkers
					opts.LiftWorkers = liftWorkers
					e, err := NewExplainer(sc.Net, sc.Requirements(), dep, opts)
					if err != nil {
						t.Fatal(err)
					}
					got, err := e.Report()
					if err != nil {
						t.Fatalf("satworkers=%d liftworkers=%d: %v", satWorkers, liftWorkers, err)
					}
					if got != string(want) {
						t.Errorf("satworkers=%d liftworkers=%d: report differs from golden", satWorkers, liftWorkers)
					}
					if satWorkers > 1 {
						if races := e.Stats().SatRaces; races == 0 {
							t.Errorf("satworkers=%d: no portfolio races recorded", satWorkers)
						}
					}
				}
			}
		})
	}
}
