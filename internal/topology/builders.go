package topology

import (
	"fmt"
	"math/rand"
)

// Paper builds the Figure 1b topology: a managed network AS100 with
// three routers R1, R2, R3 in a triangle; Provider 1 (P1, AS500)
// attached to R1; Provider 2 (P2, AS300) attached to R2; the customer
// network (C, AS600) attached to R3; and a destination network D1
// reachable through both providers.
//
//	P1 ------- D1 ------- P2
//	|                     |
//	R1 ------------------ R2
//	  \                  /
//	   \---- R3 --------/
//	         |
//	         C
func Paper() *Network {
	n := New()
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(n.AddRouter("R1", 100))
	must(n.AddRouter("R2", 100))
	must(n.AddRouter("R3", 100))
	must(n.AddExternal("P1", 500, MustPrefix("128.0.1.0/24")))
	must(n.AddExternal("P2", 300, MustPrefix("128.0.2.0/24")))
	must(n.AddStub("C", 600, MustPrefix("123.0.1.0/20"))) // the customer prefix from Fig. 1c
	must(n.AddStub("D1", 700, MustPrefix("140.0.1.0/24")))
	must(n.AddLink("R1", "R2"))
	must(n.AddLink("R1", "R3"))
	must(n.AddLink("R2", "R3"))
	must(n.AddLink("P1", "R1"))
	must(n.AddLink("P2", "R2"))
	must(n.AddLink("C", "R3"))
	must(n.AddLink("D1", "P1"))
	must(n.AddLink("D1", "P2"))
	return n
}

// Grid builds a w x h grid of internal routers named Rx_y, with a
// customer (C) attached to the south-west corner and two providers
// (P1, P2) attached to the north-east and south-east corners. Used by
// the scalability experiments.
func Grid(w, h int) *Network {
	if w < 2 || h < 1 {
		panic(fmt.Sprintf("topology: grid %dx%d too small", w, h))
	}
	n := New()
	name := func(x, y int) string { return fmt.Sprintf("R%d_%d", x, y) }
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			if err := n.AddRouter(name(x, y), 100); err != nil {
				panic(err)
			}
		}
	}
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			if x+1 < w {
				n.AddLink(name(x, y), name(x+1, y))
			}
			if y+1 < h {
				n.AddLink(name(x, y), name(x, y+1))
			}
		}
	}
	n.AddStub("C", 600, MustPrefix("123.0.1.0/20"))
	n.AddExternal("P1", 500, MustPrefix("128.0.1.0/24"))
	n.AddExternal("P2", 300, MustPrefix("128.0.2.0/24"))
	n.AddStub("D1", 700, MustPrefix("140.0.1.0/24"))
	n.AddLink("C", name(0, 0))
	n.AddLink("P1", name(w-1, h-1))
	n.AddLink("P2", name(w-1, 0))
	n.AddLink("D1", "P1")
	n.AddLink("D1", "P2")
	return n
}

// FatTree builds a k-ary fat-tree pod fabric (k even): (k/2)^2 core
// routers, k pods of k/2 aggregation and k/2 edge routers each. A
// customer hangs off the first edge router and two providers off two
// core routers, with a shared destination D1, so the same intent
// families as the paper's scenarios can be expressed on it.
func FatTree(k int) *Network {
	if k < 2 || k%2 != 0 {
		panic(fmt.Sprintf("topology: fat-tree arity %d must be even and >= 2", k))
	}
	n := New()
	half := k / 2
	core := func(i, j int) string { return fmt.Sprintf("CO%d_%d", i, j) }
	agg := func(p, i int) string { return fmt.Sprintf("AG%d_%d", p, i) }
	edge := func(p, i int) string { return fmt.Sprintf("ED%d_%d", p, i) }
	for i := 0; i < half; i++ {
		for j := 0; j < half; j++ {
			n.AddRouter(core(i, j), 100)
		}
	}
	for p := 0; p < k; p++ {
		for i := 0; i < half; i++ {
			n.AddRouter(agg(p, i), 100)
			n.AddRouter(edge(p, i), 100)
		}
		for i := 0; i < half; i++ {
			for j := 0; j < half; j++ {
				n.AddLink(agg(p, i), edge(p, j))
			}
		}
		for i := 0; i < half; i++ {
			for j := 0; j < half; j++ {
				n.AddLink(agg(p, i), core(i, j))
			}
		}
	}
	n.AddStub("C", 600, MustPrefix("123.0.1.0/20"))
	n.AddExternal("P1", 500, MustPrefix("128.0.1.0/24"))
	n.AddExternal("P2", 300, MustPrefix("128.0.2.0/24"))
	n.AddStub("D1", 700, MustPrefix("140.0.1.0/24"))
	n.AddLink("C", edge(0, 0))
	n.AddLink("P1", core(0, 0))
	n.AddLink("P2", core(half-1, half-1))
	n.AddLink("D1", "P1")
	n.AddLink("D1", "P2")
	return n
}

// Random builds a connected random network of nRouters internal
// routers with the given average degree, plus the standard C/P1/P2/D1
// externals. The same seed always yields the same network.
func Random(nRouters int, avgDegree float64, seed int64) *Network {
	if nRouters < 3 {
		panic("topology: random network needs at least 3 routers")
	}
	r := rand.New(rand.NewSource(seed))
	n := New()
	names := make([]string, nRouters)
	for i := range names {
		names[i] = fmt.Sprintf("R%d", i)
		n.AddRouter(names[i], 100)
	}
	// Random spanning tree first (guarantees connectivity).
	perm := r.Perm(nRouters)
	for i := 1; i < nRouters; i++ {
		a := names[perm[i]]
		b := names[perm[r.Intn(i)]]
		n.AddLink(a, b)
	}
	// Extra edges up to the target degree.
	target := int(avgDegree*float64(nRouters)/2) - (nRouters - 1)
	for e := 0; e < target; e++ {
		a := names[r.Intn(nRouters)]
		b := names[r.Intn(nRouters)]
		if a != b {
			n.AddLink(a, b)
		}
	}
	n.AddStub("C", 600, MustPrefix("123.0.1.0/20"))
	n.AddExternal("P1", 500, MustPrefix("128.0.1.0/24"))
	n.AddExternal("P2", 300, MustPrefix("128.0.2.0/24"))
	n.AddStub("D1", 700, MustPrefix("140.0.1.0/24"))
	n.AddLink("C", names[0])
	n.AddLink("P1", names[nRouters-1])
	n.AddLink("P2", names[nRouters/2])
	n.AddLink("D1", "P1")
	n.AddLink("D1", "P2")
	return n
}
