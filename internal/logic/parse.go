package logic

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parser parses the infix surface syntax produced by Term.String back
// into terms. Because the language is typed, the parser needs a symbol
// environment: a declaration for every variable and the enum sorts
// whose constants may appear as literals.
//
// The parser exists for tests (round-tripping), for the command-line
// tools (reading constraint files), and for loading golden seed
// specifications in the benchmark harness.
type Parser struct {
	vars  map[string]*Var
	enums map[string]*EnumLit
}

// NewParser creates a parser with the given variable declarations and
// enum sorts. Enum constants shadow nothing: it is an error for a
// variable and an enum constant to share a name, or for two enum sorts
// to share a constant name.
func NewParser(vars []*Var, enums []*Sort) (*Parser, error) {
	p := &Parser{vars: make(map[string]*Var), enums: make(map[string]*EnumLit)}
	for _, v := range vars {
		if _, dup := p.vars[v.Name]; dup {
			return nil, fmt.Errorf("logic: duplicate variable declaration %q", v.Name)
		}
		// Canonicalize the declaration so parsed terms share nodes with
		// terms built through the constructors (a no-op for variables
		// that already came from NewVar/NewIntVar).
		p.vars[v.Name] = defaultInterner.Intern(v).(*Var)
	}
	for _, s := range enums {
		if !s.IsEnum() {
			return nil, fmt.Errorf("logic: %v is not an enum sort", s)
		}
		for _, val := range s.Values {
			if _, dup := p.enums[val]; dup {
				return nil, fmt.Errorf("logic: enum constant %q appears in more than one sort", val)
			}
			if _, dup := p.vars[val]; dup {
				return nil, fmt.Errorf("logic: name %q is both a variable and an enum constant", val)
			}
			p.enums[val] = NewEnum(s, val)
		}
	}
	return p, nil
}

type lexer struct {
	src string
	pos int
	tok string // current token ("" at EOF)
}

func (l *lexer) next() error {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		l.tok = ""
		return nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
	case c >= '0' && c <= '9':
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
	default:
		// Operators, longest first.
		for _, op := range []string{"<=>", "=>", "!=", "<=", ">=", "&", "|", "!", "=", "<", ">", "+", "-", "(", ")", ","} {
			if strings.HasPrefix(l.src[l.pos:], op) {
				l.pos += len(op)
				l.tok = op
				return nil
			}
		}
		return fmt.Errorf("logic: unexpected character %q at offset %d", c, l.pos)
	}
	l.tok = l.src[start:l.pos]
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '.' || c == ':' || c == '/' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

// Parse parses a single term from src and requires the whole input to
// be consumed.
func (p *Parser) Parse(src string) (Term, error) {
	l := &lexer{src: src}
	if err := l.next(); err != nil {
		return nil, err
	}
	t, err := p.parseIff(l)
	if err != nil {
		return nil, err
	}
	if l.tok != "" {
		return nil, fmt.Errorf("logic: trailing input %q", l.tok)
	}
	return t, nil
}

func (p *Parser) parseIff(l *lexer) (Term, error) {
	left, err := p.parseImplies(l)
	if err != nil {
		return nil, err
	}
	for l.tok == "<=>" {
		if err := l.next(); err != nil {
			return nil, err
		}
		right, err := p.parseImplies(l)
		if err != nil {
			return nil, err
		}
		if err := checkAllBool("<=>", []Term{left, right}); err != nil {
			return nil, err
		}
		left = Iff(left, right)
	}
	return left, nil
}

func (p *Parser) parseImplies(l *lexer) (Term, error) {
	left, err := p.parseOr(l)
	if err != nil {
		return nil, err
	}
	if l.tok == "=>" {
		if err := l.next(); err != nil {
			return nil, err
		}
		right, err := p.parseImplies(l) // right-associative
		if err != nil {
			return nil, err
		}
		if err := checkAllBool("=>", []Term{left, right}); err != nil {
			return nil, err
		}
		return Implies(left, right), nil
	}
	return left, nil
}

func (p *Parser) parseOr(l *lexer) (Term, error) {
	left, err := p.parseAnd(l)
	if err != nil {
		return nil, err
	}
	args := []Term{left}
	for l.tok == "|" {
		if err := l.next(); err != nil {
			return nil, err
		}
		t, err := p.parseAnd(l)
		if err != nil {
			return nil, err
		}
		args = append(args, t)
	}
	if len(args) == 1 {
		return left, nil
	}
	if err := checkAllBool("|", args); err != nil {
		return nil, err
	}
	return Or(args...), nil
}

func checkAllBool(op string, args []Term) error {
	for _, a := range args {
		if !a.Sort().IsBool() {
			return fmt.Errorf("logic: operand of %q has sort %v, want Bool", op, a.Sort())
		}
	}
	return nil
}

func (p *Parser) parseAnd(l *lexer) (Term, error) {
	left, err := p.parseCmp(l)
	if err != nil {
		return nil, err
	}
	args := []Term{left}
	for l.tok == "&" {
		if err := l.next(); err != nil {
			return nil, err
		}
		t, err := p.parseCmp(l)
		if err != nil {
			return nil, err
		}
		args = append(args, t)
	}
	if len(args) == 1 {
		return left, nil
	}
	if err := checkAllBool("&", args); err != nil {
		return nil, err
	}
	return And(args...), nil
}

func (p *Parser) parseCmp(l *lexer) (Term, error) {
	left, err := p.parseSum(l)
	if err != nil {
		return nil, err
	}
	op := l.tok
	switch op {
	case "=", "!=", "<", "<=", ">", ">=":
		if err := l.next(); err != nil {
			return nil, err
		}
		right, err := p.parseSum(l)
		if err != nil {
			return nil, err
		}
		if !SameSort(left.Sort(), right.Sort()) {
			return nil, fmt.Errorf("logic: comparison %q between sorts %v and %v", op, left.Sort(), right.Sort())
		}
		if op != "=" && op != "!=" && !left.Sort().IsInt() {
			return nil, fmt.Errorf("logic: ordering %q requires Int operands, got %v", op, left.Sort())
		}
		switch op {
		case "=":
			return Eq(left, right), nil
		case "!=":
			return Ne(left, right), nil
		case "<":
			return Lt(left, right), nil
		case "<=":
			return Le(left, right), nil
		case ">":
			return Gt(left, right), nil
		default:
			return Ge(left, right), nil
		}
	}
	return left, nil
}

func (p *Parser) parseSum(l *lexer) (Term, error) {
	left, err := p.parseUnary(l)
	if err != nil {
		return nil, err
	}
	for l.tok == "+" || l.tok == "-" {
		op := l.tok
		if err := l.next(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary(l)
		if err != nil {
			return nil, err
		}
		if !left.Sort().IsInt() || !right.Sort().IsInt() {
			return nil, fmt.Errorf("logic: operand of %q has sorts %v and %v, want Int", op, left.Sort(), right.Sort())
		}
		if op == "+" {
			left = Add(left, right)
		} else {
			left = Sub(left, right)
		}
	}
	return left, nil
}

func (p *Parser) parseUnary(l *lexer) (Term, error) {
	if l.tok == "-" {
		if err := l.next(); err != nil {
			return nil, err
		}
		t, err := p.parseUnary(l)
		if err != nil {
			return nil, err
		}
		if !t.Sort().IsInt() {
			return nil, fmt.Errorf("logic: unary '-' on sort %v", t.Sort())
		}
		if lit, ok := t.(*IntLit); ok {
			return NewInt(-lit.Val), nil
		}
		return Sub(NewInt(0), t), nil
	}
	if l.tok == "!" {
		if err := l.next(); err != nil {
			return nil, err
		}
		t, err := p.parseUnary(l)
		if err != nil {
			return nil, err
		}
		if err := checkAllBool("!", []Term{t}); err != nil {
			return nil, err
		}
		return Not(t), nil
	}
	return p.parseAtom(l)
}

func (p *Parser) parseAtom(l *lexer) (Term, error) {
	tok := l.tok
	switch {
	case tok == "":
		return nil, fmt.Errorf("logic: unexpected end of input")
	case tok == "(":
		if err := l.next(); err != nil {
			return nil, err
		}
		t, err := p.parseIff(l)
		if err != nil {
			return nil, err
		}
		if l.tok != ")" {
			return nil, fmt.Errorf("logic: expected ')', got %q", l.tok)
		}
		return t, l.next()
	case tok == "true":
		return True, l.next()
	case tok == "false":
		return False, l.next()
	case tok == "ite":
		return p.parseIte(l)
	case tok[0] >= '0' && tok[0] <= '9':
		v, err := strconv.ParseInt(tok, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("logic: bad integer literal %q: %v", tok, err)
		}
		return NewInt(v), l.next()
	default:
		if v, ok := p.vars[tok]; ok {
			return v, l.next()
		}
		if e, ok := p.enums[tok]; ok {
			return e, l.next()
		}
		return nil, fmt.Errorf("logic: unknown identifier %q", tok)
	}
}

func (p *Parser) parseIte(l *lexer) (Term, error) {
	if err := l.next(); err != nil {
		return nil, err
	}
	if l.tok != "(" {
		return nil, fmt.Errorf("logic: expected '(' after ite, got %q", l.tok)
	}
	if err := l.next(); err != nil {
		return nil, err
	}
	cond, err := p.parseIff(l)
	if err != nil {
		return nil, err
	}
	if l.tok != "," {
		return nil, fmt.Errorf("logic: expected ',' in ite, got %q", l.tok)
	}
	if err := l.next(); err != nil {
		return nil, err
	}
	thn, err := p.parseIff(l)
	if err != nil {
		return nil, err
	}
	if l.tok != "," {
		return nil, fmt.Errorf("logic: expected ',' in ite, got %q", l.tok)
	}
	if err := l.next(); err != nil {
		return nil, err
	}
	els, err := p.parseIff(l)
	if err != nil {
		return nil, err
	}
	if l.tok != ")" {
		return nil, fmt.Errorf("logic: expected ')' closing ite, got %q", l.tok)
	}
	if !cond.Sort().IsBool() {
		return nil, fmt.Errorf("logic: ite condition has sort %v, want Bool", cond.Sort())
	}
	if !SameSort(thn.Sort(), els.Sort()) {
		return nil, fmt.Errorf("logic: ite branches have sorts %v and %v", thn.Sort(), els.Sort())
	}
	return Ite(cond, thn, els), l.next()
}
