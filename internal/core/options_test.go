package core

import (
	"testing"

	"repro/internal/scenarios"
	"repro/internal/spec"
)

func TestMaxPatternNodesLimitsCandidates(t *testing.T) {
	sc := scenarios.Scenario3()
	dep := synthScenario(t, sc)
	noTransit := sc.Spec.Block("Req1").Reqs

	// With a pattern cap of 3 nodes, the 5-node Figure 5 clause
	// cannot be generated; only patterns of <= 3 nodes survive.
	opts := DefaultOptions()
	opts.MaxPatternNodes = 3
	e, err := NewExplainer(sc.Net, noTransit, dep, opts)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := e.ExplainAll("R2")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ex.Subspec.Reqs {
		if f, ok := r.(*spec.Forbid); ok && len(f.Path) > 3 {
			t.Fatalf("pattern %s exceeds the cap", f.Path)
		}
	}
}

func TestExplainerHandlesRequirementSubsets(t *testing.T) {
	// Explaining against each single requirement never errors and
	// residual sizes are monotone-ish: the full spec constrains at
	// least as much as any subset at the same router.
	sc := scenarios.Scenario3()
	dep := synthScenario(t, sc)
	full := newExplainer(t, sc, dep, nil)
	opts := DefaultOptions()
	opts.Lift = false
	fullNoLift, err := NewExplainer(sc.Net, sc.Requirements(), dep, opts)
	if err != nil {
		t.Fatal(err)
	}
	exFull, err := fullNoLift.ExplainAll("R1")
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range sc.Spec.Blocks {
		sub, err := NewExplainer(sc.Net, b.Reqs, dep, opts)
		if err != nil {
			t.Fatal(err)
		}
		ex, err := sub.ExplainAll("R1")
		if err != nil {
			t.Fatalf("block %s: %v", b.Name, err)
		}
		if ex.SeedSize == 0 {
			t.Fatalf("block %s: empty seed", b.Name)
		}
	}
	_ = full
	if exFull.ResidualSize == 0 {
		t.Fatal("full spec should constrain R1")
	}
}
