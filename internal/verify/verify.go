// Package verify checks concrete deployments against path-requirement
// specifications by running the BGP simulation and inspecting the
// converged forwarding paths — the ground-truth oracle the synthesizer
// and the explanation engine are validated against.
//
// Two modes:
//
//   - Check validates the failure-free network: forbidden patterns must
//     not appear in any forwarding path, and each preference's most
//     preferred path must be the one in use.
//   - CheckUnderFailures additionally fails each link of a preference's
//     primary path (one at a time) and verifies traffic falls back only
//     to listed paths, in order — never to an unlisted path. This is
//     the observable difference between the two interpretations of
//     path preferences discussed in the paper's Scenario 2.
package verify

import (
	"context"
	"fmt"
	"net/netip"

	"repro/internal/bgp"
	"repro/internal/config"
	"repro/internal/spec"
	"repro/internal/topology"
)

// Violation reports one requirement failure.
type Violation struct {
	// Req is the violated requirement.
	Req spec.Requirement
	// Witness is the offending forwarding path (nil when the failure
	// is unreachability).
	Witness []string
	// Reason explains the violation.
	Reason string
}

// String renders the violation.
func (v Violation) String() string {
	if v.Witness != nil {
		return fmt.Sprintf("%s: %s (witness path %v)", v.Req, v.Reason, v.Witness)
	}
	return fmt.Sprintf("%s: %s", v.Req, v.Reason)
}

// Check simulates the deployment on the failure-free network and
// returns all requirement violations (empty means the deployment
// satisfies the specification).
func Check(net *topology.Network, dep config.Deployment, reqs []spec.Requirement) ([]Violation, error) {
	return CheckContext(context.Background(), net, dep, reqs)
}

// CheckContext is Check with cancellation, checked before the
// simulation and between requirements.
func CheckContext(ctx context.Context, net *topology.Network, dep config.Deployment, reqs []spec.Requirement) ([]Violation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := bgp.Simulate(net, dep)
	if err != nil {
		return nil, fmt.Errorf("verify: %w", err)
	}
	var out []Violation
	for _, r := range reqs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		switch q := r.(type) {
		case *spec.Forbid:
			out = append(out, checkForbid(net, res, q)...)
		case *spec.Allow:
			out = append(out, checkAllow(net, res, q)...)
		case *spec.Preference:
			out = append(out, checkPreference(net, res, q)...)
		default:
			return nil, fmt.Errorf("verify: unsupported requirement %T", r)
		}
	}
	return out, nil
}

// checkAllow verifies the source reaches the destination along a
// matching path.
func checkAllow(net *topology.Network, res *bgp.Result, a *spec.Allow) []Violation {
	src, dst := a.Path.First(), a.Path.Last()
	origin := net.Router(dst)
	if origin == nil || !origin.HasPrefix {
		return []Violation{{Req: a, Reason: fmt.Sprintf("destination %q originates no prefix", dst)}}
	}
	path := res.ForwardingPath(src, origin.Prefix)
	if path == nil {
		return []Violation{{Req: a, Reason: fmt.Sprintf("%s cannot reach %s", src, origin.Prefix)}}
	}
	if !spec.Matches(a.Path, path) {
		return []Violation{{
			Req:     a,
			Witness: path,
			Reason:  "traffic follows a path outside the allowed pattern",
		}}
	}
	return nil
}

// checkForbid scans every (router, prefix) forwarding path for the
// forbidden pattern.
func checkForbid(net *topology.Network, res *bgp.Result, f *spec.Forbid) []Violation {
	var out []Violation
	for _, src := range net.RouterNames() {
		for _, origin := range net.Routers() {
			if !origin.HasPrefix {
				continue
			}
			path := res.ForwardingPath(src, origin.Prefix)
			if path == nil {
				continue
			}
			if spec.MatchesSubpath(f.Path, path) {
				out = append(out, Violation{
					Req:     f,
					Witness: path,
					Reason:  fmt.Sprintf("traffic from %s to %s realizes the forbidden pattern", src, origin.Prefix),
				})
			}
		}
	}
	return out
}

// preferencePrefix resolves the destination prefix of a preference.
func preferencePrefix(net *topology.Network, p *spec.Preference) (string, netip.Prefix, error) {
	dst := p.Paths[0].Last()
	origin := net.Router(dst)
	if origin == nil || !origin.HasPrefix {
		return "", netip.Prefix{}, fmt.Errorf("verify: preference destination %q originates no prefix", dst)
	}
	return p.Paths[0].First(), origin.Prefix, nil
}

// checkPreference verifies the failure-free network uses the most
// preferred path.
func checkPreference(net *topology.Network, res *bgp.Result, p *spec.Preference) []Violation {
	src, prefix, err := preferencePrefix(net, p)
	if err != nil {
		return []Violation{{Req: p, Reason: err.Error()}}
	}
	path := res.ForwardingPath(src, prefix)
	if path == nil {
		return []Violation{{Req: p, Reason: fmt.Sprintf("%s cannot reach %s", src, prefix)}}
	}
	if !spec.Matches(p.Paths[0], path) {
		return []Violation{{
			Req:     p,
			Witness: path,
			Reason:  fmt.Sprintf("failure-free traffic does not follow the most preferred path %s", p.Paths[0]),
		}}
	}
	return nil
}

// CheckUnderFailures exercises a preference under single-link
// failures: for every link on the primary forwarding path, the link is
// removed and the network re-simulated. The resulting path (if any)
// must match one of the listed patterns; traffic on an unlisted path
// is reported as a violation. When allowUnspecified is true, unlisted
// fallback paths are tolerated (the second interpretation from the
// paper's Scenario 2).
func CheckUnderFailures(net *topology.Network, dep config.Deployment, p *spec.Preference, allowUnspecified bool) ([]Violation, error) {
	return CheckUnderFailuresContext(context.Background(), net, dep, p, allowUnspecified)
}

// CheckUnderFailuresContext is CheckUnderFailures with cancellation,
// checked before each link-failure simulation.
func CheckUnderFailuresContext(ctx context.Context, net *topology.Network, dep config.Deployment, p *spec.Preference, allowUnspecified bool) ([]Violation, error) {
	src, prefix, err := preferencePrefix(net, p)
	if err != nil {
		return nil, err
	}
	base, err := bgp.Simulate(net, dep)
	if err != nil {
		return nil, fmt.Errorf("verify: %w", err)
	}
	primary := base.ForwardingPath(src, prefix)
	if primary == nil {
		return []Violation{{Req: p, Reason: fmt.Sprintf("%s cannot reach %s before any failure", src, prefix)}}, nil
	}
	var out []Violation
	for i := 1; i < len(primary); i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		a, b := primary[i-1], primary[i]
		failed := net.Clone()
		failed.RemoveLink(a, b)
		res, err := bgp.Simulate(failed, dep)
		if err != nil {
			return nil, fmt.Errorf("verify: after failing %s-%s: %w", a, b, err)
		}
		path := res.ForwardingPath(src, prefix)
		if path == nil {
			continue // unreachable after failure: no unlisted path used
		}
		listed := false
		for _, pat := range p.Paths {
			if spec.Matches(pat, path) {
				listed = true
				break
			}
		}
		if !listed && !allowUnspecified {
			out = append(out, Violation{
				Req:     p,
				Witness: path,
				Reason:  fmt.Sprintf("after failing link %s-%s traffic uses an unlisted path", a, b),
			})
		}
	}
	return out, nil
}

// CheckUnderAllFailures re-checks the full specification under every
// single-link failure of the network (external attachment links
// included). A requirement that only holds because of the failure-free
// routing — e.g. a no-transit intent enforced by luck rather than by
// configuration — is caught here. Unreachability violations of allow
// requirements whose path crosses the failed link are excused: cutting
// a pattern's only link legitimately breaks it.
func CheckUnderAllFailures(net *topology.Network, dep config.Deployment, reqs []spec.Requirement) ([]Violation, error) {
	return CheckUnderAllFailuresContext(context.Background(), net, dep, reqs)
}

// CheckUnderAllFailuresContext is CheckUnderAllFailures with
// cancellation, checked before each link-failure simulation.
func CheckUnderAllFailuresContext(ctx context.Context, net *topology.Network, dep config.Deployment, reqs []spec.Requirement) ([]Violation, error) {
	var out []Violation
	for _, link := range net.Links() {
		failed := net.Clone()
		failed.RemoveLink(link[0], link[1])
		if !failed.Connected() {
			continue
		}
		vs, err := CheckContext(ctx, failed, dep, reqs)
		if err != nil {
			return nil, fmt.Errorf("verify: after failing %s-%s: %w", link[0], link[1], err)
		}
		for _, v := range vs {
			switch q := v.Req.(type) {
			case *spec.Allow:
				// Reachability may legitimately be lost to failures.
				_ = q
				continue
			case *spec.Preference:
				// Preference order under failures is checked by
				// CheckUnderFailures; here only forbids are strict.
				continue
			}
			v.Reason = fmt.Sprintf("after failing link %s-%s: %s", link[0], link[1], v.Reason)
			out = append(out, v)
		}
	}
	return out, nil
}

// Satisfies is a convenience wrapper: true when Check reports no
// violations.
func Satisfies(net *topology.Network, dep config.Deployment, reqs []spec.Requirement) (bool, error) {
	return SatisfiesContext(context.Background(), net, dep, reqs)
}

// SatisfiesContext is Satisfies with cancellation.
func SatisfiesContext(ctx context.Context, net *topology.Network, dep config.Deployment, reqs []spec.Requirement) (bool, error) {
	vs, err := CheckContext(ctx, net, dep, reqs)
	if err != nil {
		return false, err
	}
	return len(vs) == 0, nil
}
