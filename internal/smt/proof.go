package smt

// Proof verification.
//
// With WithProof enabled, the underlying SAT solver records every input
// clause, learnt lemma, and deletion. This file re-validates those
// traces with the independent checker in internal/drat and maps checked
// (and shrunk) cores back to the assumption terms of the failing query.
//
// Verification is incremental: one checker per Solver consumes the
// append-only trace from a cursor, so a session that issues many
// queries against one warm solver pays for each trace operation once,
// not once per verdict. Clones fork the trace (sat.Trace implements
// ProofCloner) and rebuild their own checker from the start on first
// use — the inherited prefix is identical, so the replay cost is the
// price of the fork, paid off across the clone's queries.

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/drat"
	"repro/internal/logic"
	"repro/internal/sat"
)

// ProofReport summarizes one verification pass.
type ProofReport struct {
	// Ops is how many trace operations this pass fed to the checker
	// (the delta since the previous verification on this solver).
	Ops int
	// Lemmas is how many of those were solver-derived clauses.
	Lemmas int
	// TraceLen is the total trace length after this pass.
	TraceLen int
	// CoreLits and ShrunkCoreLits give the assumption-core clause size
	// before and after deletion-based minimization; both are zero for
	// verdicts certified by the empty clause.
	CoreLits, ShrunkCoreLits int
	// Duration is the wall-clock time the checker spent.
	Duration time.Duration
}

// ProofEnabled reports whether the solver records a proof trace.
func (s *Solver) ProofEnabled() bool {
	_, _, ok := s.activeProofWorker()
	return ok
}

// ProofOps converts the recorded trace — the race winner's, in
// portfolio mode — into checker operations (1-based DIMACS literals).
// It returns nil when proof logging is off.
func (s *Solver) ProofOps() []drat.Op {
	_, tr, ok := s.activeProofWorker()
	if !ok {
		return nil
	}
	ops := make([]drat.Op, 0, tr.Len())
	for i := 0; i < tr.Len(); i++ {
		ops = append(ops, opFromTrace(tr.Op(i)))
	}
	return ops
}

func opFromTrace(op sat.ProofOp) drat.Op {
	lits := make([]int, len(op.Lits))
	for j, l := range op.Lits {
		lits[j] = dimacsLit(l)
	}
	var kind drat.OpKind
	switch op.Kind {
	case sat.ProofInput:
		kind = drat.Input
	case sat.ProofLearn:
		kind = drat.Learn
	default:
		kind = drat.Delete
	}
	return drat.Op{Kind: kind, Lits: lits}
}

func dimacsLit(l sat.Lit) int {
	v := int(l.Var()) + 1
	if !l.IsPos() {
		return -v
	}
	return v
}

// VerifyLastUnsat re-validates the proof behind the most recent Unsat
// verdict with the independent checker. Every trace operation recorded
// since the previous verification is checked (each lemma must be a RUP
// consequence of the clauses before it), and the verdict's terminal
// lemma must certify exactly this query: the empty clause for an
// unconditional Unsat, or a clause over the negated assumptions
// matching the SAT-level core for an Unsat under assumptions.
//
// It returns an error if proof logging is off, the last solve was not
// Unsat, or — the case that matters — the trace does not check.
func (s *Solver) VerifyLastUnsat() (ProofReport, error) {
	rep, _, err := s.verifyLastUnsat()
	return rep, err
}

// verifyLastUnsat is VerifyLastUnsat, additionally returning the
// shrunk core clause (DIMACS literals) for CheckedCore.
func (s *Solver) verifyLastUnsat() (ProofReport, []int, error) {
	var rep ProofReport
	w, tr, ok := s.activeProofWorker()
	if !ok {
		return rep, nil, fmt.Errorf("smt: proof logging is off (construct the solver with WithProof)")
	}
	if s.lastStatus != sat.Unsat {
		return rep, nil, fmt.Errorf("smt: last solve was %v, nothing to verify", s.lastStatus)
	}
	start := time.Now()
	// One incremental checker per worker: in portfolio mode any worker
	// can win a verdict, and each worker's trace is its own independent
	// derivation (shared imports are re-logged by the importer), so a
	// cursor into one trace says nothing about another.
	if s.chks == nil {
		s.chks = make(map[int]*drat.Checker)
		s.chkCursors = make(map[int]int)
	}
	chk := s.chks[w]
	if chk == nil {
		chk = drat.NewChecker()
		s.chks[w] = chk
		s.chkCursors[w] = 0
	}
	for cur := s.chkCursors[w]; cur < tr.Len(); cur++ {
		op := opFromTrace(tr.Op(cur))
		if err := chk.Apply(op); err != nil {
			return rep, nil, fmt.Errorf("smt: proof rejected at op %d: %w", cur, err)
		}
		s.chkCursors[w] = cur + 1
		rep.Ops++
		if op.Kind == drat.Learn {
			rep.Lemmas++
		}
	}
	rep.TraceLen = tr.Len()

	core := s.satCore()
	var shrunk []int
	if len(core) == 0 {
		// Unconditional Unsat: the checker must have derived the empty
		// clause from the inputs alone.
		if !chk.RootConflict() {
			return rep, nil, fmt.Errorf("smt: verdict is Unsat but the checked trace has no root conflict")
		}
	} else {
		// The terminal lemma is the negation of the assumption core.
		// It was RUP-checked like every other lemma above; here we pin
		// it to this verdict by matching it against the solver's core,
		// then minimize it by deletion against the checker.
		clause := make([]int, len(core))
		for i, l := range core {
			clause[i] = dimacsLit(l.Neg())
		}
		last, okLast := s.lastLearn(tr)
		if !okLast || !sameLitSet(last, clause) {
			return rep, nil, fmt.Errorf("smt: terminal lemma %v does not match the negated core %v", last, clause)
		}
		shrunk, _ = chk.ShrinkClause(clause)
		rep.CoreLits = len(clause)
		rep.ShrunkCoreLits = len(shrunk)
	}
	rep.Duration = time.Since(start)
	return rep, shrunk, nil
}

// lastLearn returns the literals of the final Learn operation in the
// trace, converted to DIMACS form.
func (s *Solver) lastLearn(tr *sat.Trace) ([]int, bool) {
	for i := tr.Len() - 1; i >= 0; i-- {
		op := tr.Op(i)
		if op.Kind == sat.ProofLearn {
			return opFromTrace(op).Lits, true
		}
	}
	return nil, false
}

// sameLitSet reports whether two clauses hold the same literal set.
func sameLitSet(a, b []int) bool {
	as := append([]int(nil), a...)
	bs := append([]int(nil), b...)
	sort.Ints(as)
	sort.Ints(bs)
	as = dedupSorted(as)
	bs = dedupSorted(bs)
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func dedupSorted(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i > 0 && xs[i-1] == x {
			continue
		}
		out = append(out, x)
	}
	return out
}

// CheckedCore returns a verified, checker-minimized unsat core for the
// last Unsat-under-assumptions verdict: the proof is re-validated
// (VerifyLastUnsat), the terminal core clause is shrunk by deletion
// against the checker, and the surviving literals are mapped back to
// the assumption terms of the failing Solve call. The result can be
// smaller than Core() — the solver's cone-based analysis is sound but
// not minimal — and is verified by construction: every drop was
// re-proved by the checker.
//
// Literals the caller never passed (active guards from AssertGuarded)
// may appear in the SAT-level core; like Core, CheckedCore reports only
// caller assumptions.
func (s *Solver) CheckedCore() ([]logic.Term, ProofReport, error) {
	rep, shrunk, err := s.verifyLastUnsat()
	if err != nil {
		return nil, rep, err
	}
	if shrunk == nil {
		// Unconditional Unsat: the core is empty.
		return nil, rep, nil
	}
	keep := make(map[int]bool, len(shrunk))
	for _, l := range shrunk {
		keep[l] = true
	}
	seen := make(map[logic.Term]bool)
	var out []logic.Term
	for i, l := range s.lastLits {
		// The clause holds negated assumptions.
		if keep[dimacsLit(l.Neg())] && !seen[s.lastAssumed[i]] {
			seen[s.lastAssumed[i]] = true
			out = append(out, s.lastAssumed[i])
		}
	}
	return out, rep, nil
}
