// Package topology models the network graph the synthesizer and
// explainer operate on: routers grouped into autonomous systems,
// bidirectional links, and announced destination prefixes.
//
// Routers are either internal — part of the managed network, and thus
// configurable by the synthesizer — or external (providers, customers,
// destination networks), whose behavior is fixed. The package also
// provides the builders used by the experiments: the paper's Figure 1b
// topology and grid / fat-tree / random families for the scaling
// studies the paper leaves as future work.
package topology

import (
	"fmt"
	"net/netip"
	"sort"
)

// Role classifies a node.
type Role int

const (
	// Internal routers belong to the managed network and receive
	// synthesized configurations.
	Internal Role = iota
	// External nodes (provider/customer ASes, destination networks)
	// have fixed behavior.
	External
)

// String renders the role.
func (r Role) String() string {
	if r == Internal {
		return "internal"
	}
	return "external"
}

// Router is a node of the network graph.
type Router struct {
	Name string
	AS   int
	Role Role
	// Prefix is the address block this node originates, if any.
	// External destination networks and ASes typically originate one.
	Prefix netip.Prefix
	// HasPrefix reports whether Prefix is meaningful.
	HasPrefix bool
	// Stub marks external nodes that originate routes but never
	// provide transit (customer and destination networks). Providers
	// are non-stub externals.
	Stub bool
}

// Network is an undirected graph of routers. The zero value is not
// usable; create networks with New.
type Network struct {
	routers map[string]*Router
	adj     map[string]map[string]bool
}

// New creates an empty network.
func New() *Network {
	return &Network{
		routers: make(map[string]*Router),
		adj:     make(map[string]map[string]bool),
	}
}

// AddRouter adds an internal router in the given AS.
func (n *Network) AddRouter(name string, as int) error {
	return n.add(&Router{Name: name, AS: as, Role: Internal})
}

// AddExternal adds an external transit node (a provider AS)
// originating the given prefix. Pass the zero Prefix for transit-only
// external nodes.
func (n *Network) AddExternal(name string, as int, prefix netip.Prefix) error {
	r := &Router{Name: name, AS: as, Role: External}
	if prefix.IsValid() {
		r.Prefix = prefix
		r.HasPrefix = true
	}
	return n.add(r)
}

// AddStub adds an external stub node (a customer or destination
// network): it originates the given prefix but never re-announces
// other nodes' routes, so it cannot be used for transit.
func (n *Network) AddStub(name string, as int, prefix netip.Prefix) error {
	r := &Router{Name: name, AS: as, Role: External, Stub: true}
	if prefix.IsValid() {
		r.Prefix = prefix
		r.HasPrefix = true
	}
	return n.add(r)
}

func (n *Network) add(r *Router) error {
	if r.Name == "" {
		return fmt.Errorf("topology: router must have a name")
	}
	if _, dup := n.routers[r.Name]; dup {
		return fmt.Errorf("topology: duplicate router %q", r.Name)
	}
	n.routers[r.Name] = r
	n.adj[r.Name] = make(map[string]bool)
	return nil
}

// AddLink connects two existing routers. Links are undirected; adding
// an existing link is a no-op.
func (n *Network) AddLink(a, b string) error {
	if a == b {
		return fmt.Errorf("topology: self-link at %q", a)
	}
	if _, ok := n.routers[a]; !ok {
		return fmt.Errorf("topology: unknown router %q", a)
	}
	if _, ok := n.routers[b]; !ok {
		return fmt.Errorf("topology: unknown router %q", b)
	}
	n.adj[a][b] = true
	n.adj[b][a] = true
	return nil
}

// Router returns the named router, or nil.
func (n *Network) Router(name string) *Router { return n.routers[name] }

// RemoveLink disconnects a and b (no-op if not linked). Used for
// failure injection by the verifier.
func (n *Network) RemoveLink(a, b string) {
	delete(n.adj[a], b)
	delete(n.adj[b], a)
}

// Clone deep-copies the network (router records are shared — they are
// immutable after construction).
func (n *Network) Clone() *Network {
	out := New()
	for name, r := range n.routers {
		out.routers[name] = r
		out.adj[name] = make(map[string]bool, len(n.adj[name]))
		for nb := range n.adj[name] {
			out.adj[name][nb] = true
		}
	}
	return out
}

// Links returns the undirected edges as sorted [a,b] pairs with a < b.
func (n *Network) Links() [][2]string {
	var out [][2]string
	for _, a := range n.RouterNames() {
		for _, b := range n.Neighbors(a) {
			if a < b {
				out = append(out, [2]string{a, b})
			}
		}
	}
	return out
}

// HasLink reports whether a and b are directly connected.
func (n *Network) HasLink(a, b string) bool { return n.adj[a][b] }

// Routers returns all routers sorted by name.
func (n *Network) Routers() []*Router {
	out := make([]*Router, 0, len(n.routers))
	for _, r := range n.routers {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RouterNames returns all router names, sorted.
func (n *Network) RouterNames() []string {
	out := make([]string, 0, len(n.routers))
	for name := range n.routers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Internals returns the internal (configurable) routers sorted by
// name.
func (n *Network) Internals() []*Router {
	var out []*Router
	for _, r := range n.Routers() {
		if r.Role == Internal {
			out = append(out, r)
		}
	}
	return out
}

// Externals returns the external nodes sorted by name.
func (n *Network) Externals() []*Router {
	var out []*Router
	for _, r := range n.Routers() {
		if r.Role == External {
			out = append(out, r)
		}
	}
	return out
}

// Neighbors returns the names of the routers adjacent to name, sorted.
func (n *Network) Neighbors(name string) []string {
	out := make([]string, 0, len(n.adj[name]))
	for nb := range n.adj[name] {
		out = append(out, nb)
	}
	sort.Strings(out)
	return out
}

// Adjacency returns the full adjacency with sorted neighbor lists —
// the shape spec.ExpandConcrete consumes.
func (n *Network) Adjacency() map[string][]string {
	out := make(map[string][]string, len(n.adj))
	for name := range n.adj {
		out[name] = n.Neighbors(name)
	}
	return out
}

// NumRouters returns the node count.
func (n *Network) NumRouters() int { return len(n.routers) }

// NumLinks returns the undirected edge count.
func (n *Network) NumLinks() int {
	total := 0
	for _, nbs := range n.adj {
		total += len(nbs)
	}
	return total / 2
}

// SimplePaths enumerates all simple paths from src to dst with at most
// maxLen nodes, in deterministic (lexicographic) order.
func (n *Network) SimplePaths(src, dst string, maxLen int) [][]string {
	var out [][]string
	if _, ok := n.routers[src]; !ok {
		return nil
	}
	visited := map[string]bool{src: true}
	var walk func(node string, acc []string)
	walk = func(node string, acc []string) {
		if len(acc) > maxLen {
			return
		}
		if node == dst {
			cp := make([]string, len(acc))
			copy(cp, acc)
			out = append(out, cp)
			return
		}
		for _, nb := range n.Neighbors(node) {
			if visited[nb] {
				continue
			}
			visited[nb] = true
			walk(nb, append(acc, nb))
			visited[nb] = false
		}
	}
	walk(src, []string{src})
	return out
}

// Connected reports whether the graph is connected (ignoring isolated
// externals is the caller's concern; every node counts here).
func (n *Network) Connected() bool {
	if len(n.routers) == 0 {
		return true
	}
	start := n.RouterNames()[0]
	seen := map[string]bool{start: true}
	queue := []string{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for nb := range n.adj[cur] {
			if !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	return len(seen) == len(n.routers)
}

// Validate checks structural invariants: connectivity and that every
// external node attaches to at least one internal router.
func (n *Network) Validate() error {
	if !n.Connected() {
		return fmt.Errorf("topology: network is not connected")
	}
	for _, r := range n.Externals() {
		touchesInternal := false
		for nb := range n.adj[r.Name] {
			if n.routers[nb].Role == Internal {
				touchesInternal = true
				break
			}
		}
		if !touchesInternal && len(n.adj[r.Name]) > 0 {
			continue // external-external chains (e.g. D1 behind P1) are fine
		}
		if len(n.adj[r.Name]) == 0 {
			return fmt.Errorf("topology: external node %q is isolated", r.Name)
		}
	}
	return nil
}

// MustPrefix parses a prefix or panics; a convenience for builders and
// tests.
func MustPrefix(s string) netip.Prefix {
	p, err := netip.ParsePrefix(s)
	if err != nil {
		panic(fmt.Sprintf("topology: bad prefix %q: %v", s, err))
	}
	return p
}
