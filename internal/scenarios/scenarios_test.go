package scenarios

import (
	"strings"
	"testing"

	"repro/internal/config"
)

func TestAllScenariosWellFormed(t *testing.T) {
	all := All()
	if len(all) != 3 {
		t.Fatalf("scenarios = %d, want 3", len(all))
	}
	for _, sc := range all {
		if sc.Name == "" || sc.Title == "" {
			t.Errorf("scenario missing metadata: %+v", sc)
		}
		if err := sc.Net.Validate(); err != nil {
			t.Errorf("%s: topology invalid: %v", sc.Name, err)
		}
		if len(sc.Requirements()) == 0 {
			t.Errorf("%s: no requirements", sc.Name)
		}
		for name, c := range sc.Sketch {
			if c.Router != name {
				t.Errorf("%s: sketch key %q vs router %q", sc.Name, name, c.Router)
			}
			if err := c.Validate(); err != nil {
				t.Errorf("%s/%s: %v", sc.Name, name, err)
			}
		}
	}
}

func TestScenarioHoleNamesUnique(t *testing.T) {
	for _, sc := range All() {
		seen := map[string]bool{}
		for _, c := range sc.Sketch {
			for _, h := range c.Holes() {
				if seen[h.Name] {
					t.Errorf("%s: duplicate hole %q", sc.Name, h.Name)
				}
				seen[h.Name] = true
			}
		}
		if sc.Name != "scenario1" && len(seen) == 0 {
			t.Errorf("%s: sketch has no holes", sc.Name)
		}
	}
}

func TestScenario1Shape(t *testing.T) {
	sc := Scenario1()
	if len(sc.Spec.Blocks) != 1 || len(sc.Spec.Blocks[0].Forbids()) != 2 {
		t.Fatal("scenario 1 must have the two no-transit forbids")
	}
	// R3 carries no policies: the empty-subspec router of Scenario 3.
	if len(sc.Sketch["R3"].RouteMapNames()) != 0 {
		t.Fatal("R3 must have no route maps in scenario 1")
	}
	// The export template mirrors Figure 1c: symbolic prefix match,
	// action, next-hop, and a symbolic catch-all.
	printed := config.Print(sc.Sketch["R1"])
	for _, want := range []string{"?R1_to_P1_10_action", "?R1_to_P1_10_match", "?R1_to_P1_10_nexthop", "?R1_to_P1_100_action"} {
		if !strings.Contains(printed, want) {
			t.Errorf("R1 sketch misses hole %q:\n%s", want, printed)
		}
	}
}

func TestScenario2Shape(t *testing.T) {
	sc := Scenario2()
	prefs := sc.Spec.Blocks[0].Preferences()
	if len(prefs) != 1 || len(prefs[0].Paths) != 2 {
		t.Fatal("scenario 2 must carry the two-path preference")
	}
	if prefs[0].Paths[0].String() != "C->R3->R1->P1->...->D1" {
		t.Fatalf("preferred path = %s", prefs[0].Paths[0])
	}
	// R3 has selector templates on both fabric interfaces.
	r3 := sc.Sketch["R3"]
	if r3.Neighbor("R1") == nil || r3.Neighbor("R2") == nil {
		t.Fatal("R3 must bind import maps on R1 and R2")
	}
}

func TestScenario3CombinesAll(t *testing.T) {
	sc := Scenario3()
	if sc.Spec.Block("Req1") == nil || sc.Spec.Block("Req2") == nil || sc.Spec.Block("Req3") == nil {
		t.Fatal("scenario 3 must carry Req1, Req2, Req3")
	}
	if len(sc.Requirements()) != 4 {
		t.Fatalf("requirements = %d, want 4 (two forbids + two preferences)", len(sc.Requirements()))
	}
	// Each provider-facing router has both import and export maps.
	for _, r := range []string{"R1", "R2"} {
		c := sc.Sketch[r]
		nb := c.Neighbors[0]
		if nb.ImportMap == "" || nb.ExportMap == "" {
			t.Errorf("%s must bind both directions, got %+v", r, nb)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("scenario2"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown scenario should fail")
	}
}

func TestScenariosAreIndependentInstances(t *testing.T) {
	a, b := Scenario1(), Scenario1()
	a.Sketch["R1"].AddNeighbor("R2", "x", "")
	if b.Sketch["R1"].Neighbor("R2") != nil {
		t.Fatal("scenario instances share state")
	}
}
