package smt

// Portfolio mode: the SMT layer over a racing SAT team.
//
// With WithSatWorkers(n>1), the first Solve clones the encoded base
// solver into a sat.Portfolio of n diversified workers that share
// glue-2 learnts and race to a verdict. Everything above the verdict is
// unchanged: the encoder keeps writing to one logical clause database
// (fan-out through the team), Model/Core/proof reads are redirected to
// the race winner, and reports stay byte-identical at any worker count
// because the pipeline consumes verdicts, never search traces.
//
// The team is created lazily at the first solve rather than at
// construction so the whole seed encoding is cloned once, instead of
// replaying every AddClause n times through the fan-out path.

import (
	"context"

	"repro/internal/sat"
)

// WithSatWorkers sets the number of SAT search workers (clamped to at
// least 1). One worker is the plain single solver — bit-for-bit the
// same search. More workers race diversified clones with clause
// sharing; the first verdict wins and the losers are cancelled.
func WithSatWorkers(n int) Option {
	return func(s *Solver) {
		if n < 1 {
			n = 1
		}
		s.satWorkers = n
	}
}

// SatWorkers reports the configured worker count.
func (s *Solver) SatWorkers() int { return s.satWorkers }

// ensureTeam builds the portfolio on first use. Called only from
// SolveContext, so every clause asserted before the first solve is in
// the base when it is cloned.
func (s *Solver) ensureTeam() {
	if s.satWorkers > 1 && s.team == nil {
		s.team = sat.NewPortfolio(s.sat, s.satWorkers)
	}
}

// The helpers below are the single seam between the encoding layer and
// the SAT backend: before the team exists (or without one) they talk to
// the base solver, afterwards they fan writes out to every worker and
// redirect reads to the race winner.

func (s *Solver) newSatVar() sat.Var {
	if s.team != nil {
		return s.team.NewVar()
	}
	return s.sat.NewVar()
}

func (s *Solver) addSatClause(lits ...sat.Lit) {
	if s.team != nil {
		s.team.AddClause(lits...)
		return
	}
	s.sat.AddClause(lits...)
}

func (s *Solver) markSatEliminable(v sat.Var) {
	if s.team != nil {
		s.team.MarkEliminable(v)
		return
	}
	s.sat.MarkEliminable(v)
}

func (s *Solver) satSolveContext(ctx context.Context, assumptions ...sat.Lit) (sat.Status, error) {
	s.ensureTeam()
	if s.team != nil {
		return s.team.PortfolioContext(ctx, assumptions...)
	}
	return s.sat.SolveContext(ctx, assumptions...)
}

// satValueLit reads a literal's model value from whichever solver
// produced the last verdict.
func (s *Solver) satValueLit(l sat.Lit) sat.LBool {
	if s.team != nil {
		return s.team.ValueLit(l)
	}
	return s.sat.ValueLit(l)
}

func (s *Solver) satCore() []sat.Lit {
	if s.team != nil {
		return s.team.Core()
	}
	return s.sat.Core()
}

// activeProofWorker identifies the proof trace behind the last verdict:
// the race winner's trace, or worker 0's (the base) when no team
// exists. The index keys the per-worker incremental checkers in
// proof.go — each worker's trace is self-contained (imports are logged
// as the importer's own RUP-gated learnts), so each needs its own
// cursor.
func (s *Solver) activeProofWorker() (int, *sat.Trace, bool) {
	if s.team != nil {
		w := s.team.Winner()
		tr, ok := s.team.WorkerProof(w).(*sat.Trace)
		return w, tr, ok
	}
	tr, ok := s.sat.Proof().(*sat.Trace)
	return 0, tr, ok
}
