package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/config"
	"repro/internal/logic"
	"repro/internal/sat"
)

// ComplementExplanation answers the question the paper's Section 5
// raises under "High-level summary of the global behaviors": holding
// one router's configuration fixed, what must the REST of the network
// do for the global intent to hold? It is produced by symbolizing
// every configured router except the one under focus and running the
// same seed-and-simplify pipeline.
type ComplementExplanation struct {
	// Router is the device held concrete.
	Router string
	// Assumptions lists, per other router, the residual constraints on
	// that router's variables — the "assume" side of an assume/
	// guarantee pair whose "guarantee" side is Explain(Router).
	Assumptions map[string][]logic.Term
	// Satisfiable reports the assume side is consistent: some
	// completion of the rest of the network satisfies the seed. The
	// synthesized deployment itself is one, so false indicates an
	// encoding-level inconsistency worth surfacing.
	Satisfiable bool

	SeedSize       int
	SimplifiedSize int
	Passes         int
}

// ExplainComplement symbolizes every configured router except the
// given one and reports the per-router residual constraints.
func (e *Explainer) ExplainComplement(router string) (*ComplementExplanation, error) {
	return e.ExplainComplementContext(context.Background(), router)
}

// ExplainComplementContext is ExplainComplement with cancellation and
// the budget's deadline applied.
func (e *Explainer) ExplainComplementContext(ctx context.Context, router string) (*ComplementExplanation, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	ctx, cancel := e.Opts.Budget.Apply(ctx)
	defer cancel()
	if e.Net.Router(router) == nil {
		return nil, fmt.Errorf("core: unknown router %q", router)
	}
	sketch := config.Deployment{}
	holeOwner := map[string]string{}
	for name, c := range e.Deployment {
		if name == router {
			sketch[name] = c
			continue
		}
		targets := AllTargets(c)
		if len(targets) == 0 {
			sketch[name] = c
			continue
		}
		sym, _, err := Symbolize(c, targets)
		if err != nil {
			return nil, err
		}
		sketch[name] = sym
		for _, t := range targets {
			holeOwner[t.HoleName()] = name
		}
	}
	enc, err := e.encode(ctx, sketch, "complement|"+router)
	if err != nil {
		return nil, err
	}
	seed := enc.Conjunction()
	sout := e.simplify(seed)
	simplified := sout.Simplified

	out := &ComplementExplanation{
		Router:         router,
		Assumptions:    map[string][]logic.Term{},
		SeedSize:       logic.Size(seed),
		SimplifiedSize: logic.Size(simplified),
		Passes:         sout.Passes,
	}
	for _, c := range logic.Conjuncts(simplified) {
		owners := map[string]bool{}
		for _, name := range logic.FreeVarNames(c) {
			if owner, ok := holeOwner[name]; ok {
				owners[owner] = true
			}
		}
		for owner := range owners {
			out.Assumptions[owner] = append(out.Assumptions[owner], c)
		}
	}

	// Consistency of the assume side, decided on the pooled warm solver
	// for this encoding (repeat complement queries — one per focus
	// router is common — reuse the solver's clause database).
	seedSolver, release, err := e.checkoutSolver("seed|complement|"+router, seedSolverBuild(enc))
	if err != nil {
		return nil, err
	}
	defer release()
	st, err := seedSolver.SolveContext(ctx)
	if err != nil {
		return nil, err
	}
	if st == sat.Unsat {
		// An inconsistent assume side is itself an Unsat verdict worth
		// trusting only with a checked proof.
		if err := e.verifyUnsat(seedSolver); err != nil {
			return nil, err
		}
	}
	out.Satisfiable = st == sat.Sat
	return out, nil
}

// Routers lists the routers with at least one assumption, sorted.
func (c *ComplementExplanation) Routers() []string {
	out := make([]string, 0, len(c.Assumptions))
	for r := range c.Assumptions {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}
