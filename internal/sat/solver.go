package sat

import (
	"context"
	"fmt"
	"math"
	"sort"
)

// Stats counts solver work, exposed for the benchmark harness.
type Stats struct {
	Solves       uint64 // Solve / SolveContext calls
	Decisions    uint64
	Propagations uint64
	// BinPropagations is the subset of Propagations driven by the
	// dedicated binary implication lists (two-literal clauses).
	BinPropagations uint64
	Conflicts       uint64
	Restarts        uint64
	// BlockedRestarts counts adaptive restarts postponed because the
	// trail was still growing (the solver looked close to a model).
	BlockedRestarts uint64
	Learnt          uint64
	// MinimizedLits totals the literals removed from learnt clauses by
	// deep (recursive) minimization and binary-resolution shrinking.
	MinimizedLits uint64
	// LBDSum totals the LBD (glue) of every stored learnt clause, so
	// LBDSum/Learnt is the mean glue. LBDHist buckets stored learnt
	// clauses by LBD: index i counts clauses of LBD i+1, with the last
	// bucket collecting everything at or above len(LBDHist).
	LBDSum  uint64
	LBDHist [8]uint64
	// Reductions counts reduceDB sweeps; RemovedClauses the learnt
	// clauses they deleted.
	Reductions     uint64
	RemovedClauses uint64
	// ModeSwitches counts restart-mode window flips (focused <->
	// stable) under the alternating restart policy.
	ModeSwitches uint64
	// Inprocessing counters: rounds run, literals removed by
	// vivification and clauses it shortened, clauses deleted by
	// subsumption, clauses shortened by self-subsuming strengthening,
	// and variables resolved away by bounded elimination.
	InprocessRounds     uint64
	VivifiedClauses     uint64
	VivifiedLits        uint64
	SubsumedClauses     uint64
	StrengthenedClauses uint64
	ElimVars            uint64
	// InprocessDeleted counts every clause deletion inprocessing logged
	// to the proof trace (satisfied, subsumed, strengthened-and-replaced,
	// or eliminated), so trace deletions stay reconcilable with stats:
	// trace deletes == RemovedClauses + InprocessDeleted.
	InprocessDeleted uint64
	// Clause-sharing counters (portfolio mode, see portfolio.go):
	// SharedExported counts low-glue learnts this solver published to
	// the portfolio pool, SharedImported the peer clauses it admitted
	// through the RUP gate, SharedRejected the candidates the gate
	// refused (redundant at this worker's root, not propagation-
	// checkable against its database, or touching one of its
	// eliminated variables).
	SharedExported uint64
	SharedImported uint64
	SharedRejected uint64
	// PortfolioRaces counts multi-worker portfolio solves; the
	// portfolio books its race-level counters on worker 0 so they flow
	// through the ordinary Stats harvesting (Sub, session merging).
	// PortfolioWins buckets race wins by worker index, the last bucket
	// collecting every higher index.
	PortfolioRaces uint64
	PortfolioWins  [8]uint64
	MaxVars        int
	Clauses        int
	// CoreLearnts, MidLearnts, and LocalLearnts gauge the tiered
	// learnt-clause database (glue<=2 / glue<=6 / rest) as of the last
	// reduction or solve.
	CoreLearnts  int
	MidLearnts   int
	LocalLearnts int
}

type clause struct {
	lits     []Lit
	learnt   bool
	activity float64
	// lbd is the literal block distance (glue) of a learnt clause: the
	// number of distinct decision levels among its literals when it was
	// derived, tightened whenever conflict analysis revisits the clause
	// at a lower value. Zero for problem clauses.
	lbd int32
	// protect grants a mid-tier learnt clause (lbd <= midLBD) one round
	// of grace in reduceDB; it is set whenever the clause participates
	// in conflict analysis and cleared by the reduction that honors it.
	protect bool
	// dead marks a clause removed by inprocessing; compactDB drops it
	// from the database slices at the end of the round. Never set
	// outside an inprocessing round.
	dead bool
}

// Clause-management tiers, following Glucose: glue clauses
// (lbd <= coreLBD) are kept forever, mid-tier clauses (lbd <= midLBD)
// survive reductions while they keep participating in conflicts, and
// everything else competes on activity.
const (
	coreLBD = 2
	midLBD  = 6
)

// watcher pairs a watching clause with a "blocker" literal: if the
// blocker is already true the clause is satisfied and need not be
// inspected. This is MiniSat's most important constant-factor trick.
type watcher struct {
	c       *clause
	blocker Lit
}

// binWatch is one entry of a binary implication list: the binary
// clause's other literal plus the clause itself, which conflict
// analysis and the locked-clause check still need as a reason pointer.
// Two-literal clauses propagate from these compact per-literal arrays
// instead of the generic watcher machinery — no blocker test, no
// watch-list surgery, no search for a replacement watch.
type binWatch struct {
	other Lit
	c     *clause
}

// ternWatch is one entry of a ternary watch list: the clause's other
// two literals inlined, plus the clause for reasons and analysis.
// Three-literal clauses — the dominant problem-clause shape after
// CNF encoding, and a large share of minimized learnts — watch all
// three literals and never relocate, so a visit is two truth-value
// loads with no clause dereference unless the clause actually
// propagates or conflicts.
type ternWatch struct {
	o1, o2 Lit
	c      *clause
}

// Adaptive restart policy parameters (see restartNow): exponential
// moving averages of learnt-clause LBD over a short and a long window,
// compared Glucose-style, with restarts blocked while the trail is
// far above its long-run average and a Luby schedule as fallback cap.
const (
	lbdEmaFastAlpha = 1.0 / 32
	lbdEmaSlowAlpha = 1.0 / 4096
	trailEmaAlpha   = 1.0 / 4096
	// restartMargin is Glucose's K (0.8) expressed as fast/slow:
	// restart once fast > slow/K.
	restartMargin = 1.25
	// blockMargin is Glucose's R: a conflict trail this far above the
	// long-run average blocks the pending restart.
	blockMargin = 1.4
	// restartMinConflicts is the EMA warm-up: no adaptive restart
	// before this many conflicts in the current search phase.
	restartMinConflicts = 32
	// lubyRestartBase scales the Luby fallback schedule that bounds
	// how long any single search phase may run even when the adaptive
	// policy never fires. It is deliberately long: the adaptive signal
	// is in charge, and the fallback only caps pathological phases.
	lubyRestartBase = 1024
)

// Mode alternation (RestartAlternating). A solve opens
// in a focused window (aggressive Luby restarts — the policy that
// predates the adaptive one, and the faster choice on uniformly
// hard, typically overconstrained-unsat instances), then flips to a
// stable window (glue-adaptive restarts with trail blocking — the
// faster choice when the instance has a model to close in on), and
// alternates with the window doubling at every flip so both regimes
// get asymptotically long runs on big instances.
//
// Why not the one-way "fall back to Luby on uniformly high glue"
// escape latch: on random 3-SAT near the phase transition, sat and
// unsat instances are statistically indistinguishable by glue EMAs
// (measured here: slow EMA ~5-6.5 on the 130-var unsat family,
// ~9-10.5 on the 200-var sat family — glue tracks instance scale, not
// satisfiability), so any threshold that catches the unsat family
// also latches satisfiable instances into a 20x regression.
// Alternation instead bounds the loss on either family by the window
// overhead, without guessing the family up front.
//
// focusedWindowInit is the first focused window's conflict budget
// (a var only so the tuning tests can sweep it).
var focusedWindowInit = int64(512)

// RestartMode selects a solver's restart schedule.
type RestartMode uint8

const (
	// RestartAlternating is the default: alternate focused windows
	// (aggressive Luby) and stable windows (glue-adaptive, trail
	// blocking) on a doubling conflict budget, opening focused.
	RestartAlternating RestartMode = iota
	// RestartAdaptive runs only the Glucose-style glue-driven policy
	// with its long Luby fallback cap — the stable half of
	// RestartAlternating, on its own.
	RestartAdaptive
	// RestartLuby runs only the plain aggressive Luby schedule — the
	// focused half of RestartAlternating, on its own.
	RestartLuby
)

// DefaultLubyBase is the phase-length scale for RestartLuby and for
// focused windows.
const DefaultLubyBase = 100

// Policy bundles the search heuristics a portfolio diversifies across
// workers. The zero value is not meaningful; start from DefaultPolicy.
type Policy struct {
	// Restart selects the restart schedule.
	Restart RestartMode
	// LubyBase scales RestartLuby phases and focused windows' Luby
	// schedule. Zero means DefaultLubyBase.
	LubyBase float64
	// VarDecay is the VSIDS activity decay factor in (0,1); smaller
	// decays faster (more reactive branching). Zero means 0.95.
	VarDecay float64
	// InvertPhase branches unsaved variables toward true instead of
	// false, steering a worker into the complementary half of the
	// search space.
	InvertPhase bool
	// NoTargetPhase disables target-phase saving: branching follows
	// plain saved phases only, never the deepest-trail snapshot.
	NoTargetPhase bool
}

// DefaultPolicy returns the solver's standard profile: alternating
// restart modes, 0.95 VSIDS decay, negative default phase.
func DefaultPolicy() Policy {
	return Policy{Restart: RestartAlternating, LubyBase: DefaultLubyBase, VarDecay: 0.95}
}

// SetPolicy installs a search policy. Call it between solves (it
// flips the saved phase of every unassigned variable to the policy's
// default polarity, so a freshly cloned portfolio worker actually
// explores the opposite half). Zero-valued numeric fields fall back to
// their defaults.
func (s *Solver) SetPolicy(p Policy) {
	if p.LubyBase == 0 {
		p.LubyBase = DefaultLubyBase
	}
	if p.VarDecay == 0 {
		p.VarDecay = 0.95
	}
	if p.InvertPhase != s.pol.InvertPhase {
		for v := range s.phase {
			if s.assigns[v] == LUndef {
				s.phase[v] = p.InvertPhase
			}
		}
	}
	s.pol = p
}

// CurrentPolicy returns the policy the solver is running.
func (s *Solver) CurrentPolicy() Policy { return s.pol }

// Solver is a CDCL SAT solver. The zero value is not usable; create
// solvers with NewSolver. A Solver is not safe for concurrent use.
type Solver struct {
	ok      bool // false once the clause set is known unsat at level 0
	clauses []*clause
	learnts []*clause
	watches [][]watcher   // indexed by Lit; clauses of three or more literals
	bins    [][]binWatch  // indexed by Lit; two-literal clauses
	terns   [][]ternWatch // indexed by Lit; three-literal clauses

	assigns  []LBool   // current assignment, by Var
	vals     []LBool   // literal-indexed shadow of assigns, by Lit
	level    []int     // decision level of each assigned var
	reason   []*clause // implying clause of each assigned var (nil for decisions)
	trail    []Lit
	trailLim []int // trail positions where each decision level starts
	qhead    int   // propagation queue head (index into trail)

	activity []float64
	varInc   float64
	order    *varHeap
	phase    []bool // saved polarity per variable

	// targetPhase remembers the polarity each variable had on the
	// deepest trail seen (a near-model), and takes precedence over the
	// plain saved phase when branching; bestTrail is that depth,
	// re-armed per solve.
	targetPhase []LBool
	bestTrail   int

	seen       []bool
	analyzeBuf []Lit // scratch for conflict analysis

	// minimization scratch: the literals whose seen flags must be
	// cleared after analyze (learnt literals plus everything marked by
	// litRedundant), and the DFS stack of litRedundant.
	toClear  []Lit
	minStack []Lit

	// litMark/litStamp is a per-literal epoch marker (binShrink);
	// levelMark/levelStamp the per-level one (computeLBD). Stamps make
	// clearing free.
	litMark    []uint64
	litStamp   uint64
	levelMark  []uint64
	levelStamp uint64

	// Adaptive restart state: EMAs of learnt LBD (short/long window)
	// and of the conflict-time trail size, plus the count of conflicts
	// folded in (for EMA warm-up) and the per-solve restart index that
	// drives the Luby fallback schedule.
	lbdEmaFast float64
	lbdEmaSlow float64
	trailEma   float64
	emaConfl   uint64
	restartIdx uint64

	// pol is the installed search policy (see SetPolicy).
	//
	// Mode-alternation state (RestartAlternating), re-armed per solve:
	// modeFocused is the active window kind, modeBudget the conflicts
	// left in it, modeWindow the current window length.
	pol         Policy
	modeFocused bool
	modeBudget  int64
	modeWindow  int64

	// debugHook, when non-nil, is called after each conflict is folded
	// into the EMAs (test instrumentation only).
	debugHook func()

	claInc float64

	assumptions []Lit
	core        []Lit   // filled when Solve(assumptions) returns Unsat
	model       []LBool // snapshot of the last Sat assignment

	// proof receives the derivation trace when proof logging is on
	// (see SetProof); emptyLogged latches the terminal empty-clause
	// lemma so it is recorded exactly once.
	proof       ProofWriter
	emptyLogged bool

	// ConflictBudget bounds the number of conflicts a Solve call may
	// spend before returning Unknown. Zero or negative means no bound.
	ConflictBudget int64

	// Inprocess tunes the between-restart simplification pass (see
	// inprocess.go). The zero value enables it with default gates.
	Inprocess InprocessConfig
	// inprocConfl is Stats.Conflicts as of the last inprocessing round.
	inprocConfl uint64
	// eliminable marks variables the caller surrendered to bounded
	// variable elimination (MarkEliminable); elimed the ones actually
	// resolved away; elimStack their deleted clauses, for model
	// extension.
	eliminable []bool
	elimed     []bool
	elimStack  []elimRecord
	// vivScratch and phaseScratch are vivification's reusable buffers.
	vivScratch   []Lit
	phaseScratch []phaseSave

	// share connects the solver to a portfolio's clause pool (nil
	// outside portfolio mode): shareID is this worker's index there and
	// shareCursor the pool position it has consumed up to. Wired by
	// NewPortfolio; deliberately not carried by Clone — a clone starts
	// detached from any pool.
	share       *sharePool
	shareID     int
	shareCursor int

	Stats Stats
}

// NewSolver creates an empty solver.
func NewSolver() *Solver {
	s := &Solver{ok: true, varInc: 1.0, claInc: 1.0, pol: DefaultPolicy()}
	s.order = newVarHeap(&s.activity)
	return s
}

// NewVar introduces a fresh variable and returns it.
func (s *Solver) NewVar() Var {
	v := Var(len(s.assigns))
	s.assigns = append(s.assigns, LUndef)
	s.vals = append(s.vals, LUndef, LUndef)
	s.level = append(s.level, -1)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, s.pol.InvertPhase)
	s.targetPhase = append(s.targetPhase, LUndef)
	s.eliminable = append(s.eliminable, false)
	s.elimed = append(s.elimed, false)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.bins = append(s.bins, nil, nil)
	s.terns = append(s.terns, nil, nil)
	s.litMark = append(s.litMark, 0, 0)
	s.order.insert(v)
	if int(v)+1 > s.Stats.MaxVars {
		s.Stats.MaxVars = int(v) + 1
	}
	return v
}

// NumVars reports how many variables have been created.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NumClauses reports how many problem clauses are currently held.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// value returns the truth of literal l under the current assignment.
// It reads the literal-indexed shadow of assigns: one load, no sign
// arithmetic — this is the hottest operation in the solver (blocker
// tests and watch scans in propagate), so the two extra writes per
// enqueue/unassign that keep the shadow current buy a measurable
// propagation speedup.
func (s *Solver) value(l Lit) LBool {
	return s.vals[l]
}

// Value returns the assignment of v in the most recent Sat model. It
// returns LUndef if no model is available.
func (s *Solver) Value(v Var) LBool {
	if int(v) >= len(s.model) {
		return LUndef
	}
	return s.model[v]
}

// ValueLit returns the truth of literal l in the most recent Sat model.
func (s *Solver) ValueLit(l Lit) LBool {
	v := s.Value(l.Var())
	if v == LUndef || l.IsPos() {
		return v
	}
	if v == LTrue {
		return LFalse
	}
	return LTrue
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// AddClause adds a clause over the given literals. It returns false if
// the solver becomes (or already was) unsatisfiable at the top level.
// The slice is copied, and the clause is simplified: duplicate literals
// are removed, tautologies dropped, and literals already false at level
// 0 deleted.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: AddClause called during search")
	}
	// Log the clause exactly as given: the proof's input set is what
	// the caller asserted, and every simplification below (dropping
	// false literals, collapsing to a unit) is a derivation the checker
	// reproduces by unit propagation on its own.
	s.logProof(ProofInput, lits)
	// Sort-free simplification over a small scratch copy.
	out := make([]Lit, 0, len(lits))
	dropped := false
	for _, l := range lits {
		if int(l.Var()) >= len(s.assigns) {
			panic(fmt.Sprintf("sat: clause references unknown variable %d", l.Var()))
		}
		if s.elimed[l.Var()] {
			panic(fmt.Sprintf("sat: clause references eliminated variable %d", l.Var()))
		}
		switch s.value(l) {
		case LTrue:
			return true // satisfied at level 0
		case LFalse:
			dropped = true
			continue // cannot help
		}
		dup, taut := false, false
		for _, m := range out {
			if m == l {
				dup = true
				break
			}
			if m == l.Neg() {
				taut = true
				break
			}
		}
		if taut {
			return true
		}
		if !dup {
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.ok = false
		s.logEmptyClause()
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		s.ok = s.propagate() == nil
		if !s.ok {
			s.logEmptyClause()
		}
		return s.ok
	}
	// When simplification dropped a root-false literal the stored
	// clause differs (as a set) from the logged input, and a later
	// inprocessing deletion would log a clause the checker never saw.
	// Log the stored form as a lemma — it is RUP from the input plus
	// the root units — so deletions always match a logged clause.
	// (Reordering and duplicate removal need no such bridge: deletion
	// matching is by sorted deduplicated literal set.)
	if dropped {
		s.logProof(ProofLearn, out)
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.Stats.Clauses++
	s.attach(c)
	return true
}

// attach indexes the clause for propagation: two-literal clauses go to
// the binary implication lists, longer ones to the two-watched-literal
// scheme. Watch lists are indexed by the *negation* of the watched
// literal so that when a literal becomes false we visit the clauses
// watching it.
func (s *Solver) attach(c *clause) {
	if len(c.lits) == 2 {
		s.bins[c.lits[0].Neg()] = append(s.bins[c.lits[0].Neg()], binWatch{other: c.lits[1], c: c})
		s.bins[c.lits[1].Neg()] = append(s.bins[c.lits[1].Neg()], binWatch{other: c.lits[0], c: c})
		return
	}
	if len(c.lits) == 3 {
		a, b, d := c.lits[0], c.lits[1], c.lits[2]
		s.terns[a.Neg()] = append(s.terns[a.Neg()], ternWatch{o1: b, o2: d, c: c})
		s.terns[b.Neg()] = append(s.terns[b.Neg()], ternWatch{o1: a, o2: d, c: c})
		s.terns[d.Neg()] = append(s.terns[d.Neg()], ternWatch{o1: a, o2: b, c: c})
		return
	}
	s.watches[c.lits[0].Neg()] = append(s.watches[c.lits[0].Neg()], watcher{c: c, blocker: c.lits[1]})
	s.watches[c.lits[1].Neg()] = append(s.watches[c.lits[1].Neg()], watcher{c: c, blocker: c.lits[0]})
}

func (s *Solver) uncheckedEnqueue(l Lit, from *clause) {
	v := l.Var()
	s.assigns[v] = boolToLBool(l.IsPos())
	s.vals[l] = LTrue
	s.vals[l.Neg()] = LFalse
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation: binary implication lists first
// (an array scan with one truth-value test per entry), then the
// two-watched-literal scheme for longer clauses. It returns the
// conflicting clause, or nil if propagation completed without conflict.
func (s *Solver) propagate() *clause {
	// Hoisted: vals is read on every watcher visit, and the compiler
	// cannot keep it in a register across the s.* method calls below.
	vals := s.vals
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is now true; visit clauses watching !p
		s.qhead++
		s.Stats.Propagations++

		// Ternary clauses containing !p: satisfied, unit, conflicting,
		// or still two-undef — decided from the two inlined literals
		// alone. Entries are static (all three literals watched), so an
		// early conflict return leaves the lists intact.
		for _, tw := range s.terns[p] {
			v1, v2 := vals[tw.o1], vals[tw.o2]
			if v1 == LTrue || v2 == LTrue {
				continue
			}
			var imp Lit
			switch {
			case v1 == LFalse && v2 == LFalse:
				s.qhead = len(s.trail)
				return tw.c
			case v1 == LFalse:
				imp = tw.o2
			case v2 == LFalse:
				imp = tw.o1
			default:
				continue // two literals still open
			}
			// Reason clauses lead with the literal they imply.
			c := tw.c
			if c.lits[0] != imp {
				if c.lits[1] == imp {
					c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
				} else {
					c.lits[0], c.lits[2] = c.lits[2], c.lits[0]
				}
			}
			s.uncheckedEnqueue(imp, c)
		}

		// Binary clauses containing !p: each either implies its other
		// literal or conflicts — nothing to relocate, no blockers.
		for _, bw := range s.bins[p] {
			switch vals[bw.other] {
			case LTrue:
			case LFalse:
				s.qhead = len(s.trail)
				return bw.c
			default:
				// Keep the implied literal in slot 0: conflict analysis
				// and the locked-clause check rely on reason clauses
				// leading with the literal they imply.
				if bw.c.lits[0] != bw.other {
					bw.c.lits[0], bw.c.lits[1] = bw.c.lits[1], bw.c.lits[0]
				}
				s.Stats.BinPropagations++
				s.uncheckedEnqueue(bw.other, bw.c)
			}
		}

		ws := s.watches[p]
		kept := ws[:0]
		var conflict *clause
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if vals[w.blocker] == LTrue {
				kept = append(kept, w)
				continue
			}
			c := w.c
			// Normalize so that lits[1] is the false literal !p.
			falseLit := p.Neg()
			if c.lits[0] == falseLit {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			// If the other watched literal is true, the clause is
			// satisfied; update the blocker.
			first := c.lits[0]
			if first != w.blocker && vals[first] == LTrue {
				kept = append(kept, watcher{c: c, blocker: first})
				continue
			}
			// Look for a new literal to watch.
			found := false
			lits := c.lits
			for k := 2; k < len(lits); k++ {
				if vals[lits[k]] != LFalse {
					lits[1], lits[k] = lits[k], lits[1]
					s.watches[lits[1].Neg()] = append(s.watches[lits[1].Neg()], watcher{c: c, blocker: first})
					found = true
					break
				}
			}
			if found {
				continue // watcher moved to another list
			}
			// Clause is unit or conflicting.
			kept = append(kept, watcher{c: c, blocker: first})
			if vals[first] == LFalse {
				// Conflict: keep remaining watchers and bail out.
				conflict = c
				for i++; i < len(ws); i++ {
					kept = append(kept, ws[i])
				}
				s.qhead = len(s.trail)
				break
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[p] = kept
		if conflict != nil {
			return conflict
		}
	}
	return nil
}

// analyze performs first-UIP conflict analysis, returning the learnt
// clause (with the asserting literal first), the backjump level, and
// the clause's LBD. The clause is minimized before it is returned:
// deep (recursive) minimization drops every literal implied by the
// rest of the clause through reason chains, and binary-resolution
// shrinking resolves away literals contradicted by a binary clause of
// the asserting literal. Both transformations keep the clause a RUP
// consequence of the database, so proof traces verify unchanged.
func (s *Solver) analyze(conflict *clause) ([]Lit, int, int32) {
	// Work in a persistent scratch buffer: the resolution loop grows
	// the clause literal by literal, and reallocating that growth on
	// every conflict is measurable. The caller gets an exact-sized
	// copy, since learnt clauses own their literal storage.
	learnt := append(s.analyzeBuf[:0], 0) // slot 0 for the asserting literal
	pathC := 0
	var p Lit = -1
	idx := len(s.trail) - 1
	c := conflict

	for {
		start := 0
		if p != -1 {
			start = 1 // skip the asserting literal of the reason clause
		}
		if c.learnt {
			s.bumpClause(c)
			// Glucose: tighten the stored glue when the clause shows up
			// in analysis at a lower LBD, and shield it from the next
			// reduction — it is earning its keep.
			if c.lbd > coreLBD {
				if nl := s.computeLBD(c.lits); nl < c.lbd {
					c.lbd = nl
				}
			}
			c.protect = true
		}
		for _, q := range c.lits[start:] {
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if s.level[v] >= s.decisionLevel() {
				pathC++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Select next literal on the trail to resolve on.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		s.seen[v] = false
		pathC--
		if pathC == 0 {
			learnt[0] = p.Neg()
			break
		}
		c = s.reason[v]
	}

	// The seen flags of every learnt literal — and everything
	// litRedundant marks below — must be cleared before returning.
	s.toClear = append(s.toClear[:0], learnt...)

	// Deep minimization: drop any literal implied by the remaining
	// marked literals through its reason chain, recursively. The
	// abstraction is MiniSat's level-set filter — a cheap necessary
	// condition that prunes most futile recursions.
	abstract := uint32(0)
	for _, q := range learnt[1:] {
		abstract |= 1 << uint(s.level[q.Var()]&31)
	}
	out := learnt[:1]
	for _, q := range learnt[1:] {
		if s.reason[q.Var()] == nil || !s.litRedundant(q, abstract) {
			out = append(out, q)
		}
	}
	s.Stats.MinimizedLits += uint64(len(learnt) - len(out))
	learnt = out

	// Binary-resolution shrinking on small, low-glue clauses.
	if len(learnt) <= 30 {
		if lbd := s.computeLBD(learnt); lbd <= midLBD {
			learnt = s.binShrink(learnt)
		}
	}
	lbd := s.computeLBD(learnt)

	// Compute backjump level: the highest level among the non-asserting
	// literals, and move a literal of that level into slot 1 so it gets
	// watched.
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = s.level[learnt[1].Var()]
	}

	for _, q := range s.toClear {
		s.seen[q.Var()] = false
	}
	s.analyzeBuf = learnt[:0:cap(learnt)]
	res := make([]Lit, len(learnt))
	copy(res, learnt)
	return res, btLevel, lbd
}

// litRedundant reports whether literal q of the learnt clause is
// implied by the clause's remaining marked literals through reason
// chains (MiniSat's recursive minimization, with an explicit stack).
// Along the way it marks the intermediate literals it proved
// redundant, so overlapping chains are checked once; the marks are
// registered in s.toClear for the caller to clear. On failure every
// mark made by this call is rolled back.
func (s *Solver) litRedundant(q Lit, abstract uint32) bool {
	top := len(s.toClear)
	s.minStack = append(s.minStack[:0], q)
	for len(s.minStack) > 0 {
		p := s.minStack[len(s.minStack)-1]
		s.minStack = s.minStack[:len(s.minStack)-1]
		c := s.reason[p.Var()]
		for _, l := range c.lits[1:] {
			v := l.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			if s.reason[v] == nil || 1<<uint(s.level[v]&31)&abstract == 0 {
				// A decision, or a level no clause literal shares:
				// cannot be absorbed. Undo this call's marks.
				for len(s.toClear) > top {
					s.seen[s.toClear[len(s.toClear)-1].Var()] = false
					s.toClear = s.toClear[:len(s.toClear)-1]
				}
				return false
			}
			s.seen[v] = true
			s.minStack = append(s.minStack, l)
			s.toClear = append(s.toClear, l)
		}
	}
	return true
}

// binShrink applies binary self-subsumption to the learnt clause: for
// every binary clause (l0 ∨ m) of the asserting literal l0, a literal
// !m in the learnt clause is resolved away — the binary forces m under
// the clause's negation, so the shrunk clause is still RUP. This is
// Glucose's "minimization with binary resolution", and it is exactly
// where dedicated binary lists pay twice: the candidate binaries are
// one dense array scan.
func (s *Solver) binShrink(learnt []Lit) []Lit {
	if len(learnt) < 2 {
		return learnt
	}
	bw := s.bins[learnt[0].Neg()] // binaries containing learnt[0]
	if len(bw) == 0 {
		return learnt
	}
	s.litStamp++
	for _, q := range learnt[1:] {
		s.litMark[q] = s.litStamp
	}
	removed := 0
	for _, w := range bw {
		neg := w.other.Neg()
		if s.litMark[neg] == s.litStamp {
			s.litMark[neg] = 0
			removed++
		}
	}
	if removed == 0 {
		return learnt
	}
	out := learnt[:1]
	for _, q := range learnt[1:] {
		if s.litMark[q] == s.litStamp {
			out = append(out, q)
		}
	}
	s.Stats.MinimizedLits += uint64(removed)
	return out
}

// computeLBD counts the distinct decision levels among the literals —
// the literal block distance (glue) of Glucose. Level-0 literals are
// ignored (they are permanently satisfied facts).
func (s *Solver) computeLBD(lits []Lit) int32 {
	s.levelStamp++
	n := int32(0)
	for _, l := range lits {
		lv := s.level[l.Var()]
		if lv <= 0 {
			continue
		}
		for len(s.levelMark) <= lv {
			s.levelMark = append(s.levelMark, 0)
		}
		if s.levelMark[lv] != s.levelStamp {
			s.levelMark[lv] = s.levelStamp
			n++
		}
	}
	return n
}

// analyzeFinal computes the subset of assumptions responsible for
// forcing p false; used to build the unsat core when solving under
// assumptions.
func (s *Solver) analyzeFinal(p Lit) []Lit {
	out := []Lit{p}
	if s.decisionLevel() == 0 {
		return out
	}
	s.seen[p.Var()] = true
	for i := len(s.trail) - 1; i >= s.trailLim[0]; i-- {
		v := s.trail[i].Var()
		if !s.seen[v] {
			continue
		}
		if s.reason[v] == nil {
			// Decision: under assumption-driven search all decisions
			// above level 0 that appear in the cone are assumptions.
			out = append(out, s.trail[i].Neg())
		} else {
			for _, l := range s.reason[v].lits[1:] {
				if s.level[l.Var()] > 0 {
					s.seen[l.Var()] = true
				}
			}
		}
		s.seen[v] = false
	}
	s.seen[p.Var()] = false
	// Literal-level dedup: a repeated literal in the final clause would
	// surface the same assumption twice in the reported core. The cone
	// walk visits each trail entry once, so repeats should be
	// impossible by construction — this guards the invariant rather
	// than trusting it, since the core is what callers act on.
	dedup := out[:0]
	for _, l := range out {
		found := false
		for _, m := range dedup {
			if m == l {
				found = true
				break
			}
		}
		if !found {
			dedup = append(dedup, l)
		}
	}
	return dedup
}

func (s *Solver) bumpVar(v Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *Solver) decayVar() { s.varInc *= 1.0 / s.pol.VarDecay }

func (s *Solver) bumpClause(c *clause) {
	c.activity += s.claInc
	if c.activity > 1e20 {
		for _, lc := range s.learnts {
			lc.activity *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) decayClause() { s.claInc *= 1.0 / 0.999 }

// cancelUntil undoes all assignments above the given decision level.
func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		l := s.trail[i]
		v := l.Var()
		s.assigns[v] = LUndef
		s.vals[l] = LUndef
		s.vals[l.Neg()] = LUndef
		s.reason[v] = nil
		s.phase[v] = l.IsPos() // phase saving
		s.order.insert(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) pickBranchLit() Lit {
	for !s.order.empty() {
		v := s.order.removeMax()
		if s.assigns[v] == LUndef && !s.elimed[v] {
			// Target phase saving: prefer the polarity the variable had
			// on the deepest trail seen during *this* solve — the
			// closest the current search has been to a model — over the
			// last-backtracked polarity.
			if tp := s.targetPhase[v]; tp != LUndef && !s.pol.NoTargetPhase {
				return MkLit(v, tp == LTrue)
			}
			return MkLit(v, s.phase[v])
		}
	}
	return -1
}

// luby computes the Luby restart sequence value for index i (1-based),
// scaled by base.
func luby(base float64, i uint64) float64 {
	// Find the finite subsequence containing i, then the position.
	var size, seq uint64 = 1, 0
	for size < i+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != i {
		size = (size - 1) / 2
		seq--
		i = i % size
	}
	return base * math.Pow(2, float64(seq))
}

// noteConflict folds one conflict's LBD and trail size into the
// restart EMAs. Warm-up uses an effective alpha of 1/n so the averages
// start as plain means instead of crawling up from zero.
func (s *Solver) noteConflict(lbd int32) {
	s.emaConfl++
	ema := func(e *float64, sample, alpha float64) {
		if inv := 1.0 / float64(s.emaConfl); inv > alpha {
			alpha = inv
		}
		*e += alpha * (sample - *e)
	}
	ema(&s.lbdEmaFast, float64(lbd), lbdEmaFastAlpha)
	ema(&s.lbdEmaSlow, float64(lbd), lbdEmaSlowAlpha)
	ema(&s.trailEma, float64(len(s.trail)), trailEmaAlpha)

	if s.pol.Restart == RestartAlternating {
		s.modeBudget--
	}
	if s.debugHook != nil {
		s.debugHook()
	}
}

// flipMode ends the current restart-mode window: the other mode takes
// over with a doubled window, its Luby index starting over.
func (s *Solver) flipMode() {
	s.modeFocused = !s.modeFocused
	s.modeWindow *= 2
	s.modeBudget = s.modeWindow
	s.restartIdx = 0
	s.Stats.ModeSwitches++
	// Re-arm the target-phase tracker: the outgoing mode's deepest
	// trail is its notion of near-model progress, and pinning the
	// incoming mode's branching to it drags the search straight back
	// into the region the old mode was stuck in.
	s.bestTrail = 0
	for i := range s.targetPhase {
		s.targetPhase[i] = LUndef
	}
}

// restartNow decides whether the current search phase should end. The
// primary signal is Glucose's: recent learnt clauses gluing much worse
// than the long-run average means the search has drifted somewhere
// unproductive. A restart that fires while the trail towers over its
// long-run average is blocked instead — the solver appears to be
// closing in on a model. The Luby schedule is a fallback cap so a
// phase cannot run unboundedly when the adaptive signal stays quiet.
func (s *Solver) restartNow(conflicts int64) bool {
	if conflicts <= 0 {
		return false
	}
	alternating := s.pol.Restart == RestartAlternating
	if alternating && s.modeBudget <= 0 {
		// Window spent: mode boundaries are restart points.
		s.flipMode()
		return true
	}
	if s.pol.Restart == RestartLuby || (alternating && s.modeFocused) {
		// Focused: plain aggressive Luby, no adaptive signal, no
		// blocking.
		return conflicts >= int64(luby(s.pol.LubyBase, s.restartIdx))
	}
	// Stable: the glue-adaptive policy.
	if conflicts >= int64(luby(lubyRestartBase, s.restartIdx)) {
		return true
	}
	if conflicts < restartMinConflicts {
		return false
	}
	if s.lbdEmaFast <= restartMargin*s.lbdEmaSlow {
		return false
	}
	if float64(len(s.trail)) > blockMargin*s.trailEma {
		s.Stats.BlockedRestarts++
		// Postpone: forget the recent glue spike so the condition must
		// re-establish itself before firing again.
		s.lbdEmaFast = s.lbdEmaSlow
		return false
	}
	return true
}

// locked reports whether the clause is the reason of a current
// assignment and therefore must not be deleted. Reason clauses lead
// with the literal they imply, so this is two loads and two compares —
// no per-reduction map.
func (s *Solver) locked(c *clause) bool {
	return s.value(c.lits[0]) == LTrue && s.reason[c.lits[0].Var()] == c
}

// reduceDB trims the learnt-clause database, Glucose-style: clauses
// are ranked worst-first by (glue descending, activity ascending) and
// the worst half is deleted — except glue clauses (lbd <= coreLBD,
// kept forever), binary clauses (kept: they cost nothing to keep and
// propagate from the dense lists), locked clauses (reasons of current
// assignments), and mid-tier clauses (lbd <= midLBD) that took part in
// a conflict since the last reduction, which spend their protection
// instead of their life.
func (s *Solver) reduceDB() {
	if len(s.learnts) < 2 {
		return
	}
	s.Stats.Reductions++
	learnts := s.learnts
	sort.Slice(learnts, func(i, j int) bool {
		a, b := learnts[i], learnts[j]
		if a.lbd != b.lbd {
			return a.lbd > b.lbd
		}
		return a.activity < b.activity
	})
	target := len(learnts) / 2
	removed := 0
	keep := learnts[:0:0]
	for _, c := range learnts {
		switch {
		case removed >= target, len(c.lits) == 2, c.lbd <= coreLBD, s.locked(c):
			keep = append(keep, c)
		case c.lbd <= midLBD && c.protect:
			c.protect = false
			keep = append(keep, c)
		default:
			s.detach(c)
			s.logProof(ProofDelete, c.lits)
			removed++
		}
	}
	s.learnts = keep
	s.Stats.RemovedClauses += uint64(removed)
	s.updateTierGauges()
}

// updateTierGauges snapshots the tiered learnt-database sizes.
func (s *Solver) updateTierGauges() {
	var core, mid, local int
	for _, c := range s.learnts {
		switch {
		case c.lbd <= coreLBD:
			core++
		case c.lbd <= midLBD:
			mid++
		default:
			local++
		}
	}
	s.Stats.CoreLearnts, s.Stats.MidLearnts, s.Stats.LocalLearnts = core, mid, local
}

// detach removes the clause from its propagation index (the binary
// lists or the watch lists).
func (s *Solver) detach(c *clause) {
	if len(c.lits) == 2 {
		for _, wl := range []Lit{c.lits[0].Neg(), c.lits[1].Neg()} {
			bw := s.bins[wl]
			for i := range bw {
				if bw[i].c == c {
					bw[i] = bw[len(bw)-1]
					s.bins[wl] = bw[:len(bw)-1]
					break
				}
			}
		}
		return
	}
	if len(c.lits) == 3 {
		for _, l := range c.lits {
			wl := l.Neg()
			tw := s.terns[wl]
			for i := range tw {
				if tw[i].c == c {
					tw[i] = tw[len(tw)-1]
					s.terns[wl] = tw[:len(tw)-1]
					break
				}
			}
		}
		return
	}
	for _, wl := range []Lit{c.lits[0].Neg(), c.lits[1].Neg()} {
		ws := s.watches[wl]
		for i, w := range ws {
			if w.c == c {
				ws[i] = ws[len(ws)-1]
				s.watches[wl] = ws[:len(ws)-1]
				break
			}
		}
	}
}

// Solve decides satisfiability under the given assumption literals
// (which may be empty). On Sat, Value/ValueLit expose the model. On
// Unsat under assumptions, Core returns a subset of the assumptions
// that is already unsatisfiable.
func (s *Solver) Solve(assumptions ...Lit) Status {
	st, _ := s.SolveContext(context.Background(), assumptions...)
	return st
}

// SolveContext is Solve with cancellation: the context is checked
// inside the CDCL search loop (every few conflicts) and at every
// restart, so a cancelled or expired context aborts a running solve
// within one restart interval. On cancellation the status is Unknown
// and the error is the context's error; all other outcomes return a
// nil error.
func (s *Solver) SolveContext(ctx context.Context, assumptions ...Lit) (Status, error) {
	s.Stats.Solves++
	// Clear the previous core before the early return below: Unsat on a
	// dead solver is unconditional, and a stale core from an earlier
	// assumption query would misattribute it.
	s.core = nil
	if !s.ok {
		return Unsat, nil
	}
	for _, a := range assumptions {
		if s.elimed[a.Var()] {
			panic(fmt.Sprintf("sat: assumption references eliminated variable %d", a.Var()))
		}
	}
	s.assumptions = assumptions
	defer s.cancelUntil(0)
	defer s.updateTierGauges()

	// Re-arm the target-phase tracker. Targets do not survive across
	// solves: under incremental use (model enumeration with blocking
	// clauses, shifting assumption sets) a stale target steers the
	// search straight back into the region the caller just forbade,
	// and measurably inflates conflicts. Plain phase saving carries
	// the long-lived polarity memory instead.
	s.bestTrail = 0
	s.restartIdx = 0
	// Re-arm restart-mode alternation: every solve opens focused.
	s.modeFocused = s.pol.Restart == RestartAlternating
	s.modeWindow = focusedWindowInit
	s.modeBudget = focusedWindowInit
	for i := range s.targetPhase {
		s.targetPhase[i] = LUndef
	}

	// Solve start, decision level 0: admit peer clauses from the
	// portfolio pool before the caller's context can end the race.
	// Short queries — won by a peer before this worker's first restart,
	// often before its first decision — used to import nothing, because
	// the only import point was the restart boundary below; draining the
	// pool up front means every worker adopts what peers published
	// during earlier solves, even when it contributes no search time to
	// this one.
	if s.share != nil && !s.importShared() {
		return Unsat, nil
	}

	maxLearnts := float64(len(s.clauses))/3 + 100
	conflictsAtStart := s.Stats.Conflicts
	for {
		if err := ctx.Err(); err != nil {
			return Unknown, err
		}
		remaining := int64(-1)
		if s.ConflictBudget > 0 {
			remaining = s.ConflictBudget - int64(s.Stats.Conflicts-conflictsAtStart)
			if remaining <= 0 {
				return Unknown, nil
			}
		}
		st := s.search(ctx, remaining, &maxLearnts)
		if st == Sat {
			// Reuse the model buffer across solves: enumeration-style
			// callers (model counting, lift probes) solve thousands of
			// times per second, and a fresh n-slot allocation per Sat
			// verdict is pure GC pressure. Model() hands out copies, so
			// no caller holds a reference into this buffer.
			if cap(s.model) < len(s.assigns) {
				s.model = make([]LBool, len(s.assigns))
			}
			s.model = s.model[:len(s.assigns)]
			copy(s.model, s.assigns)
			s.extendModel()
			return Sat, nil
		}
		if st == Unsat {
			return Unsat, nil
		}
		if err := ctx.Err(); err != nil {
			return Unknown, err
		}
		s.restartIdx++
		s.Stats.Restarts++
		if s.ConflictBudget > 0 && int64(s.Stats.Conflicts-conflictsAtStart) >= s.ConflictBudget {
			return Unknown, nil
		}
		// Restart boundary, decision level 0, propagation at fixpoint:
		// first admit peer clauses from the portfolio pool (the cadence
		// poll in search() forces an early restart onto this import when
		// peers publish mid-search), then let inprocessing rewrite the
		// database (imports are ordinary learnts by the time a round
		// sees them).
		if s.share != nil && !s.importShared() {
			return Unsat, nil
		}
		if s.inprocessDue() && !s.inprocess() {
			return Unsat, nil
		}
	}
}

// Core returns the assumption subset returned by the last failing
// Solve-under-assumptions call. The slice is owned by the solver.
func (s *Solver) Core() []Lit { return s.core }

// ctxCheckInterval is how many search-loop iterations pass between
// context checks. Each iteration runs a full unit propagation, so the
// check adds no measurable overhead while still bounding the abort
// latency well below a restart interval.
const ctxCheckInterval = 64

// shareImportCadence is how many conflicts pass between a portfolio
// worker's polls of the shared-clause pool from inside search. A poll
// that finds pending entries ends the phase (an early restart), whose
// import then runs at the top of the solve loop. Without the poll,
// short queries — the explanation pipeline's bread and butter — finish
// before their first scheduled restart and never import at all.
const shareImportCadence = 256

// search runs CDCL until a result, a restart (decided adaptively, or
// forced by the conflict budget via remaining >= 0), a cancelled
// context (both surface as Unknown; the caller re-checks the context
// and the budget), or unsat.
func (s *Solver) search(ctx context.Context, remaining int64, maxLearnts *float64) Status {
	var conflicts, iter, lastSharePoll int64
	for {
		if iter%ctxCheckInterval == 0 && ctx.Err() != nil {
			s.cancelUntil(0)
			return Unknown
		}
		iter++
		conflict := s.propagate()
		if conflict != nil {
			s.Stats.Conflicts++
			conflicts++
			if s.decisionLevel() == 0 {
				s.ok = false
				s.logEmptyClause()
				return Unsat
			}
			// Target phase saving: a conflict trail is a local maximum
			// of the search's progress; remember the deepest one as the
			// branching target.
			if !s.pol.NoTargetPhase && len(s.trail) > s.bestTrail {
				s.bestTrail = len(s.trail)
				for _, l := range s.trail {
					s.targetPhase[l.Var()] = boolToLBool(l.IsPos())
				}
			}
			learnt, btLevel, lbd := s.analyze(conflict)
			// Every learnt clause — unit or not — is a lemma: the
			// checker needs units too, because the solver keeps them
			// only as trail assignments, never as clauses.
			s.logProof(ProofLearn, learnt)
			// Portfolio clause sharing: units and glue clauses are the
			// lemmas cheap enough to ship and strong enough to matter.
			if s.share != nil && (len(learnt) == 1 || lbd <= shareMaxGlue) {
				s.share.publish(s.shareID, learnt, lbd)
				s.Stats.SharedExported++
			}
			s.noteConflict(lbd)
			s.cancelUntil(btLevel)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], nil)
			} else {
				c := &clause{lits: learnt, learnt: true, lbd: lbd, protect: true}
				s.learnts = append(s.learnts, c)
				s.Stats.Learnt++
				s.Stats.LBDSum += uint64(lbd)
				bucket := int(lbd) - 1
				if bucket < 0 {
					bucket = 0
				} else if bucket >= len(s.Stats.LBDHist) {
					bucket = len(s.Stats.LBDHist) - 1
				}
				s.Stats.LBDHist[bucket]++
				s.attach(c)
				s.bumpClause(c)
				s.uncheckedEnqueue(learnt[0], c)
			}
			s.decayVar()
			s.decayClause()
			continue
		}

		// No conflict. A restart is due when the budget slice is spent
		// or the adaptive policy fires.
		if remaining >= 0 && conflicts >= remaining {
			s.cancelUntil(0)
			return Unknown
		}
		if s.restartNow(conflicts) {
			s.cancelUntil(0)
			return Unknown
		}
		// Portfolio import poll: every shareImportCadence conflicts,
		// peek (lock-free) for peer clauses and force an early restart
		// to import them. Restart counters tick as for any restart; a
		// width-1 solver (share == nil) never polls.
		if s.share != nil && conflicts-lastSharePoll >= shareImportCadence {
			lastSharePoll = conflicts
			if s.share.pending(s.shareCursor) {
				s.cancelUntil(0)
				return Unknown
			}
		}
		if float64(len(s.learnts)) >= *maxLearnts {
			s.reduceDB()
			*maxLearnts *= 1.1
		}

		// Assumption-driven decisions first.
		next := Lit(-1)
		for s.decisionLevel() < len(s.assumptions) {
			p := s.assumptions[s.decisionLevel()]
			switch s.value(p) {
			case LTrue:
				// Already satisfied: open an empty decision level so
				// the level-to-assumption mapping stays aligned.
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case LFalse:
				clause := s.analyzeFinal(p.Neg())
				// The negated-assumption clause certifies the verdict:
				// it is a RUP consequence of the clause database, and
				// its literals' negations are the unsat core.
				s.logProof(ProofLearn, clause)
				s.core = make([]Lit, 0, len(clause))
				// analyzeFinal returns negations of failed assumption
				// literals; report the assumptions themselves.
				for _, l := range clause {
					s.core = append(s.core, l.Neg())
				}
				return Unsat
			default:
				next = p
			}
			break
		}
		if next == -1 {
			next = s.pickBranchLit()
			if next == -1 {
				return Sat // all variables assigned
			}
			s.Stats.Decisions++
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(next, nil)
	}
}

// Model returns a copy of the last satisfying assignment as a slice of
// booleans indexed by variable. Call only after Solve returned Sat.
func (s *Solver) Model() []bool {
	m := make([]bool, len(s.model))
	for v := range s.model {
		m[v] = s.model[v] == LTrue
	}
	return m
}

// Okay reports whether the solver is still consistent at the top level
// (false after an Unsat result without assumptions or an empty clause).
func (s *Solver) Okay() bool { return s.ok }
