package smt

import (
	"context"
	"fmt"

	"repro/internal/logic"
	"repro/internal/sat"
)

// EnumerateModels invokes f for every model of the asserted
// constraints, projected onto the given variables, up to max models.
// Enumeration proceeds by blocking clauses, which are permanently
// added to the solver — a solver that has been enumerated should not
// be reused for other queries.
//
// f may return false to stop early. EnumerateModels returns the number
// of models visited and whether the projection was exhausted (false
// means max was hit or f stopped the walk).
func (s *Solver) EnumerateModels(vars []*logic.Var, max int, f func(logic.Assignment) bool) (int, bool, error) {
	return s.EnumerateModelsContext(context.Background(), vars, max, f)
}

// EnumerateModelsContext is EnumerateModels with cancellation: the
// context is checked before every model query, and threaded into each
// underlying solve, so a cancelled or expired context stops the walk
// promptly with the context's error.
func (s *Solver) EnumerateModelsContext(ctx context.Context, vars []*logic.Var, max int, f func(logic.Assignment) bool) (int, bool, error) {
	return s.enumerate(ctx, vars, max, nil, f)
}

// EnumerateModelsRetractableContext is EnumerateModelsContext with the
// blocking clauses scoped to the walk: every blocking clause is emitted
// under one fresh guard that is retracted when the walk returns, so the
// solver remains fully usable afterwards — the warm-solver path of the
// lift stage enumerates sufficiency models on a solver it keeps for
// later queries. Clauses learnt during the walk stay sound after the
// retraction (see AssertGuarded).
func (s *Solver) EnumerateModelsRetractableContext(ctx context.Context, vars []*logic.Var, max int, f func(logic.Assignment) bool) (int, bool, error) {
	g := sat.PosLit(s.newSatVar())
	s.guards = append(s.guards, g)
	defer s.Retract(Guard{lit: g})
	return s.enumerate(ctx, vars, max, []sat.Lit{g.Neg()}, f)
}

// enumerate is the shared model walk. Each blocking clause is prefixed
// with the given literals (empty prefix: permanent blocking; a negated
// active guard: blocking scoped to the guard's lifetime).
func (s *Solver) enumerate(ctx context.Context, vars []*logic.Var, max int, prefix []sat.Lit, f func(logic.Assignment) bool) (int, bool, error) {
	if len(vars) == 0 {
		return 0, true, fmt.Errorf("smt: EnumerateModels needs at least one variable")
	}
	for _, v := range vars {
		if err := s.Declare(v); err != nil {
			return 0, false, err
		}
	}
	count := 0
	for count < max {
		st, err := s.SolveContext(ctx)
		if err != nil {
			return count, false, err
		}
		if st == sat.Unsat {
			return count, true, nil
		}
		if st != sat.Sat {
			// Unknown: a conflict budget ran out mid-walk. That is not
			// exhaustion — claiming it was would let a truncated walk
			// masquerade as a complete one (and, under proof
			// verification, there would be no Unsat verdict to check).
			return count, false, nil
		}
		full, err := s.Model()
		if err != nil {
			return count, false, err
		}
		projected := logic.Assignment{}
		blocking := make([]sat.Lit, 0, len(prefix)+len(vars))
		blocking = append(blocking, prefix...)
		for _, v := range vars {
			val, ok := full[v.Name]
			if !ok {
				return count, false, fmt.Errorf("smt: model misses %q", v.Name)
			}
			projected[v.Name] = val
			l, err := s.modelLit(v)
			if err != nil {
				return count, false, err
			}
			blocking = append(blocking, l.Neg())
		}
		count++
		if !f(projected) {
			return count, false, nil
		}
		// Block the model with one SAT-level clause over the variables'
		// already-encoded selector literals — no term construction and
		// no per-model Tseitin encoding. The clause is equivalent to
		// asserting Or(Ne(v, value)...) over the projection: each
		// selector literal is exactly "v takes its model value".
		s.addSatClause(blocking...)
	}
	return count, false, nil
}

// modelLit returns the already-encoded literal that is true exactly
// when the declared variable takes its value in the current model: the
// boolean variable's own literal (or its negation), or the value
// list's selector for the chosen value.
func (s *Solver) modelLit(v *logic.Var) (sat.Lit, error) {
	e, ok := s.enc[v.Name]
	if !ok {
		return 0, fmt.Errorf("smt: variable %q not declared", v.Name)
	}
	if v.S.IsBool() {
		if s.satValueLit(e.boolLit) == sat.LTrue {
			return e.boolLit, nil
		}
		return e.boolLit.Neg(), nil
	}
	for _, l := range e.vl.lits {
		if s.satValueLit(l) == sat.LTrue {
			return l, nil
		}
	}
	return 0, fmt.Errorf("smt: no value selected for %q in model", v.Name)
}

// CountModels counts the models projected onto vars, up to max.
func (s *Solver) CountModels(vars []*logic.Var, max int) (int, bool, error) {
	return s.EnumerateModels(vars, max, func(logic.Assignment) bool { return true })
}
