package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/spec"
)

// Report renders a whole-deployment explanation document: for every
// configured router, the seed/simplified sizes and the lifted
// subspecification — the artifact a network operator would read after
// a synthesis run (the paper's "taming complexity" workflow applied to
// every device at once).
func (e *Explainer) Report() (string, error) {
	return e.ReportContext(context.Background())
}

// ReportContext is Report with cancellation and the budget's deadline
// applied: when the context is cancelled or the deadline passes, the
// in-flight explanations abort and the first error is returned once
// every worker has exited (no goroutines are leaked).
func (e *Explainer) ReportContext(ctx context.Context) (string, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	ctx, cancelBudget := e.Opts.Budget.Apply(ctx)
	defer cancelBudget()

	routers := e.reportRouters()
	exs, err := e.explainSweep(ctx, routers)
	if err != nil {
		return "", err
	}
	out := e.renderReport(routers, exs)
	e.reportMu.Lock()
	e.lastReport = out
	e.reportMu.Unlock()
	return out, nil
}

// reportRouters returns the configured routers in report order.
func (e *Explainer) reportRouters() []string {
	routers := make([]string, 0, len(e.Deployment))
	for r := range e.Deployment {
		routers = append(routers, r)
	}
	sort.Strings(routers)
	return routers
}

// explainSweep explains every listed router across a fixed-size worker
// pool and returns the explanations in the same order. Routers are
// independent explanation problems: none of the shared inputs are
// mutated, and the session cache is safe for concurrent use. A pool
// sized by GOMAXPROCS keeps memory bounded on wide deployments, where
// one goroutine per router would hold every encoder and solver alive
// at once. The first failure cancels the remaining work; the error is
// reported for the lowest-indexed failing router, so it is independent
// of worker scheduling.
func (e *Explainer) explainSweep(ctx context.Context, routers []string) ([]*Explanation, error) {
	type outcome struct {
		ex  *Explanation
		err error
	}
	results := make([]outcome, len(routers))
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	workers := runtime.GOMAXPROCS(0)
	if workers > len(routers) {
		workers = len(routers)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				ex, err := e.explainAll(ctx, routers[i])
				results[i] = outcome{ex: ex, err: err}
				if err != nil {
					cancel()
				}
			}
		}()
	}
feed:
	for i := range routers {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	for i := range results {
		if results[i].ex == nil && results[i].err == nil {
			// Never fed to a worker: the context was cancelled first.
			if err := ctx.Err(); err != nil {
				results[i].err = err
			} else {
				results[i].err = fmt.Errorf("core: %s not explained", routers[i])
			}
		}
	}
	out := make([]*Explanation, len(routers))
	for i, router := range routers {
		if results[i].err != nil {
			return nil, fmt.Errorf("core: explaining %s: %w", router, results[i].err)
		}
		out[i] = results[i].ex
	}
	return out, nil
}

// renderReport assembles the report document from the explanations
// (in router order). Pure formatting: every byte is determined by the
// requirements and the explanations.
func (e *Explainer) renderReport(routers []string, exs []*Explanation) string {
	var sb strings.Builder
	sb.WriteString("EXPLANATION REPORT\n")
	sb.WriteString("==================\n\n")
	sb.WriteString("Global intent:\n")
	for _, r := range e.Reqs {
		fmt.Fprintf(&sb, "    %s\n", r)
	}
	sb.WriteString("\n")
	for i, router := range routers {
		ex := exs[i]
		fmt.Fprintf(&sb, "--- %s ---\n", router)
		fmt.Fprintf(&sb, "seed: %d atoms over %d variables; simplified: %d atoms (%.0fx, %d passes)\n",
			ex.SeedSize, len(ex.HoleVars), ex.SimplifiedSize, ex.Reduction(), ex.Passes)
		if ex.Subspec == nil {
			sb.WriteString("(lifting disabled)\n\n")
			continue
		}
		if ex.Subspec.IsEmpty() {
			fmt.Fprintf(&sb, "%s { }   // unconstrained: %s can do anything for this intent\n\n", router, router)
			continue
		}
		sb.WriteString(spec.PrintBlock(ex.Subspec))
		if ex.SubspecComplete {
			sb.WriteString("(necessary and sufficient)\n")
		} else {
			sb.WriteString("(necessary; sufficiency not fully verified)\n")
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
