package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/logic"
	"repro/internal/rewrite"
	"repro/internal/sat"
	"repro/internal/spec"
	"repro/internal/synth"
	"repro/internal/topology"
)

// Options tunes the explanation pipeline.
type Options struct {
	// Synth configures the underlying encoder (must match what the
	// synthesizer used, so the seed specification is consistent with
	// the synthesizer's interpretation — the paper stresses this).
	Synth synth.Options
	// Lift enables the subspecification lifting step (step 4).
	Lift bool
	// MaxPatternNodes bounds the length of candidate subspecification
	// path patterns during lifting.
	MaxPatternNodes int
	// LiftWorkers bounds the worker pool that checks lift candidates in
	// parallel (each worker owns warm clones of the seed and domain
	// solvers). Zero means GOMAXPROCS; 1 forces the sequential path.
	// The explanation output is identical for every value — verdicts
	// are merged in candidate order — so this is purely a resource
	// knob.
	LiftWorkers int
	// Budget bounds the resources explanation queries may spend: a
	// wall-clock deadline, a per-solve conflict cap, and the model
	// cap of the sufficiency check. The zero value means unlimited.
	Budget engine.Budget
	// VerifyProofs makes every solver record a DRAT-style proof trace
	// and re-validates each Unsat verdict with the independent checker
	// (internal/drat) before the pipeline relies on it. A verdict whose
	// proof fails aborts the query with an error instead of silently
	// standing. Explanations produced with verification on are stamped
	// Verified; the checker's effort lands in the session statistics.
	VerifyProofs bool
}

// DefaultOptions returns the settings used by the experiments.
func DefaultOptions() Options {
	return Options{Synth: synth.DefaultOptions(), Lift: true, MaxPatternNodes: 8}
}

// Explanation is the output of Explain for one device.
type Explanation struct {
	// Router is the device under explanation.
	Router string
	// Targets lists the symbolized fields.
	Targets []Target
	// Replaced maps hole names to the concrete values they had in the
	// synthesized configuration.
	Replaced map[string]string
	// HoleVars are the symbolic variables of the seed specification.
	HoleVars map[string]*logic.Var

	// Seed is the seed specification (step 2), the constraint
	// conjunction over the symbolic variables plus the encoder's
	// auxiliary routing variables.
	Seed logic.Term
	// Simplified is the seed after rewrite simplification (step 3).
	Simplified logic.Term
	// Residual lists the simplified conjuncts that still mention the
	// device's symbolic variables — the low-level subspecification the
	// paper's prototype stops at.
	Residual []logic.Term

	// Subspec is the lifted subspecification block (step 4), nil when
	// lifting is disabled.
	Subspec *spec.Block
	// SubspecComplete reports whether the lifted subspecification was
	// verified to be not only necessary but also sufficient (every
	// device behavior satisfying it lets the network meet the global
	// intent).
	SubspecComplete bool

	// Sizes for the experiment tables.
	SeedConstraints int // top-level seed conjuncts
	SeedSize        int // seed term nodes
	SimplifiedSize  int // simplified term nodes
	ResidualSize    int // nodes over conjuncts mentioning device vars
	// RuleStats counts rewrite-rule firings; Passes the fixpoint
	// rounds; SimplifyTrace the term size after each pass.
	RuleStats     map[rewrite.RuleName]int
	Passes        int
	SimplifyTrace []int

	// Verified reports that proof verification was on for this
	// explanation and every Unsat verdict it rests on carried a proof
	// the independent checker accepted. (A failing proof aborts the
	// explanation with an error, so a returned explanation under
	// Options.VerifyProofs is always Verified. A spliced explanation
	// — see Explainer.ReExplain — carries the verdicts, and proofs,
	// of the run that first computed it; the splice gate only accepts
	// entries produced under the same VerifyProofs setting.)
	Verified bool

	// liftSpliced marks an explanation whose lift stage was served from
	// the cross-deployment report cache instead of recomputed (only
	// possible during ReExplain).
	liftSpliced bool
}

// Explainer explains devices of one synthesized deployment.
//
// An Explainer is safe for concurrent use: read-style queries
// (Explain*, Report*, CheckSubspec*, ExplainComplement*, Stats) may
// run in parallel — they share the session's concurrency-safe caches —
// while ReExplain, which retargets the explainer at an edited problem
// (swapping Deployment, Reqs, and Session in place), excludes every
// other call for its duration. Direct writes to the exported fields
// are not synchronized; set them before sharing the explainer.
type Explainer struct {
	Net        *topology.Network
	Reqs       []spec.Requirement
	Deployment config.Deployment
	Opts       Options
	// Session caches encodings across queries against this deployment
	// (one base encode of the invariant structure, derived encodes
	// cached by symbolization targets). NewExplainer installs one; a
	// nil Session falls back to a fresh full encode per query, which
	// produces identical results, only slower.
	Session *engine.Session

	// mu is the re-entrancy lock: read-style queries hold it shared,
	// ReExplainContext — the only method that mutates the problem
	// fields — holds it exclusively. Internal helpers never touch it,
	// so a query never re-locks on its own call path.
	mu sync.RWMutex

	// lastReportKey/Sum/Len identify the most recent whole-deployment
	// report: the rendered bytes live in the session's byte-capped
	// report cache under lastReportKey, the explainer holds only the
	// key, a sha256 content hash, and the length. ReExplain's fast path
	// reloads the bytes through loadLastReport, which verifies the hash
	// — an evicted or displaced entry costs a re-sweep, never a wrong
	// report, and the explainer itself no longer pins a full document
	// in memory. Guarded by reportMu (a leaf lock: concurrent
	// ReportContext calls share mu but still race on these fields
	// without it).
	reportMu      sync.Mutex
	lastReportKey string
	lastReportSum [32]byte
	lastReportLen int64

	// spliceLift, set only for the duration of a ReExplain sweep,
	// lets explain() serve a router's lift stage from the report cache
	// when the cached entry validates against the live encoding.
	// Ordinary queries always recompute (and refresh the cache), which
	// keeps repeat-query semantics — warm solver reuse included —
	// unchanged.
	spliceLift bool

	// diffInfo collects per-router delta diagnostics during a ReExplain
	// sweep (nil outside one); diffMu guards it against the parallel
	// report workers.
	diffMu   sync.Mutex
	diffInfo map[string]*routerDelta
}

// routerDelta is one router's delta diagnostics from a ReExplain
// sweep: whether its lift stage was spliced, how many raw seed
// conjuncts changed against the cached generation (-1 when no cached
// generation exists), and how many conjuncts of the new seed fall in
// the edit's cone of influence.
type routerDelta struct {
	spliced   bool
	seedDelta int
	coneAtoms int
}

// NewExplainer builds an explainer for a synthesis problem's output.
// The deployment must be concrete (fully synthesized).
func NewExplainer(net *topology.Network, reqs []spec.Requirement, dep config.Deployment, opts Options) (*Explainer, error) {
	for name, c := range dep {
		if !c.Concrete() {
			return nil, fmt.Errorf("core: deployment config %s still has holes", name)
		}
	}
	sess := engine.NewSession(net, reqs, dep, opts.Synth)
	sess.Budget = opts.Budget
	sess.VerifyProofs = opts.VerifyProofs
	return &Explainer{Net: net, Reqs: reqs, Deployment: dep, Opts: opts, Session: sess}, nil
}

// Stats returns the session's merged statistics (encode effort, cache
// hits, solver work). Zero when the explainer has no session.
func (e *Explainer) Stats() engine.Stats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.Session == nil {
		return engine.Stats{}
	}
	return e.Session.Stats()
}

// encodeKey names a sketch in the session cache: the router under
// symbolization plus the symbolized fields. ExplainAll and
// CheckSubspec symbolize the same fields of the same router and so
// share one cached encoding.
func encodeKey(router string, targets []Target) string {
	names := make([]string, len(targets))
	for i, t := range targets {
		names[i] = t.HoleName()
	}
	sort.Strings(names)
	return "explain|" + router + "|" + strings.Join(names, ",")
}

// encode produces the sketch's encoding, through the session cache
// when one is installed.
func (e *Explainer) encode(ctx context.Context, sketch config.Deployment, key string) (*synth.Encoding, error) {
	if e.Session != nil {
		return e.Session.Encode(ctx, sketch, key)
	}
	return synth.NewEncoder(e.Net, sketch, e.Opts.Synth).EncodeContext(ctx, e.Reqs)
}

// addSolverStats folds SAT effort into the session statistics.
func (e *Explainer) addSolverStats(st sat.Stats) {
	if e.Session != nil {
		e.Session.AddSolverStats(st)
	}
}

// simplify normalizes a seed term, through the session's
// simplification cache when one is installed.
func (e *Explainer) simplify(seed logic.Term) *engine.SimplifyOutcome {
	if e.Session != nil {
		return e.Session.Simplify(seed)
	}
	simp := rewrite.New()
	return &engine.SimplifyOutcome{
		Simplified: simp.Simplify(seed),
		Passes:     simp.Passes,
		Trace:      append([]int(nil), simp.Trace...),
		Stats:      simp.Stats,
	}
}

// normalizer builds a simplifier for auxiliary rewriting (lift
// candidates, complement seeds), backed by the session's shared
// normal-form cache when a session is installed. The returned
// simplifier is single-goroutine state; build one per worker.
func (e *Explainer) normalizer() *rewrite.Simplifier {
	if e.Session != nil {
		return rewrite.NewShared(e.Session.NormCache())
	}
	return rewrite.New()
}

// ExplainAll explains every symbolizable field of the router at once:
// "what must this device as a whole do".
func (e *Explainer) ExplainAll(router string) (*Explanation, error) {
	return e.ExplainAllContext(context.Background(), router)
}

// ExplainAllContext is ExplainAll with cancellation and the budget's
// deadline applied.
func (e *Explainer) ExplainAllContext(ctx context.Context, router string) (*Explanation, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	ctx, cancel := e.Opts.Budget.Apply(ctx)
	defer cancel()
	return e.explainAll(ctx, router)
}

func (e *Explainer) explainAll(ctx context.Context, router string) (*Explanation, error) {
	c, ok := e.Deployment[router]
	if !ok {
		// A router with no configuration is trivially unconstrained:
		// the paper's empty subspecification (Scenario 3, R3).
		if e.Net.Router(router) == nil {
			return nil, fmt.Errorf("core: unknown router %q", router)
		}
		return e.explain(ctx, router, nil)
	}
	return e.explain(ctx, router, AllTargets(c))
}

// Explain generates the explanation for the chosen fields of the
// router. An empty target list yields the trivially empty
// subspecification (the device is not being asked about).
func (e *Explainer) Explain(router string, targets []Target) (*Explanation, error) {
	return e.ExplainContext(context.Background(), router, targets)
}

// ExplainContext is Explain with cancellation and the budget's
// deadline applied: a cancelled or expired context aborts encoding and
// any running solver call promptly.
func (e *Explainer) ExplainContext(ctx context.Context, router string, targets []Target) (*Explanation, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	ctx, cancel := e.Opts.Budget.Apply(ctx)
	defer cancel()
	return e.explain(ctx, router, targets)
}

func (e *Explainer) explain(ctx context.Context, router string, targets []Target) (*Explanation, error) {
	node := e.Net.Router(router)
	if node == nil {
		return nil, fmt.Errorf("core: unknown router %q", router)
	}
	ex := &Explanation{
		Router:    router,
		Targets:   targets,
		Replaced:  map[string]string{},
		RuleStats: map[rewrite.RuleName]int{},
	}

	// Step 1: partial symbolization.
	sketch := config.Deployment{}
	for name, c := range e.Deployment {
		sketch[name] = c
	}
	if len(targets) > 0 {
		base, ok := e.Deployment[router]
		if !ok {
			return nil, fmt.Errorf("core: router %q has no deployed configuration to symbolize", router)
		}
		sym, replaced, err := Symbolize(base, targets)
		if err != nil {
			return nil, err
		}
		sketch[router] = sym
		ex.Replaced = replaced
	}

	// Step 2: the seed specification, produced by the synthesizer's
	// own encoder over the partially symbolic deployment.
	key := encodeKey(router, targets)
	enc, err := e.encode(ctx, sketch, key)
	if err != nil {
		return nil, err
	}
	ex.Seed = enc.Conjunction()
	ex.HoleVars = enc.HoleVars
	ex.SeedConstraints = enc.Stats.Constraints
	ex.SeedSize = enc.Stats.ConstraintSize

	// Step 3: simplification to fixpoint, answered from the session's
	// cache on repeat queries (the seed term is pointer-identical when
	// the encoding came from the cache).
	sout := e.simplify(ex.Seed)
	ex.Simplified = sout.Simplified
	ex.SimplifiedSize = logic.Size(ex.Simplified)
	ex.Passes = sout.Passes
	ex.SimplifyTrace = append([]int(nil), sout.Trace...)
	for r, n := range sout.Stats {
		ex.RuleStats[r] = n
	}

	// Residual: the conjuncts that still constrain the device's
	// variables (the rest is auxiliary routing structure).
	holeNames := map[string]bool{}
	for name := range ex.HoleVars {
		holeNames[name] = true
	}
	for _, c := range logic.Conjuncts(ex.Simplified) {
		if mentionsAny(c, holeNames) {
			ex.Residual = append(ex.Residual, c)
			ex.ResidualSize += logic.Size(c)
		}
	}

	// Step 4: lifting — spliced from the cross-deployment report cache
	// during a ReExplain sweep when the cached entry still matches the
	// live encoding, recomputed (and cached) otherwise.
	if e.Opts.Lift {
		liftKey := "lift|" + key
		var cache *engine.ReportCache
		if e.Session != nil {
			cache = e.Session.ReportCache()
		}
		spliced := false
		if e.spliceLift && cache != nil {
			if v, ok := cache.Get(liftKey); ok {
				if ent, ok := v.(*liftEntry); ok {
					if e.liftEntryValid(ent, ex, enc) {
						ex.Subspec = ent.block
						ex.SubspecComplete = ent.complete
						ex.liftSpliced = true
						spliced = true
					}
					e.noteDelta(router, ent, enc, spliced)
				}
			} else {
				e.noteMissing(router)
			}
		}
		if !spliced {
			block, complete, err := e.lift(ctx, router, key, enc, ex)
			if err != nil {
				return nil, err
			}
			ex.Subspec = block
			ex.SubspecComplete = complete
		}
		if cache != nil {
			// Refresh even on a splice: the entry's raw seed must track
			// the current generation so the next delta diffs against it.
			ent := &liftEntry{
				seed:       enc.Constraints,
				simplified: ex.Simplified,
				holes:      ex.HoleVars,
				paths:      enc.PathInfos(),
				optsSig:    e.liftOptsSig(),
				block:      ex.Subspec,
				complete:   ex.SubspecComplete,
			}
			cache.Put(liftKey, ent, ent.size())
		}
	}
	// Every Unsat verdict this explanation rests on was re-validated by
	// the independent checker (failures abort above with an error).
	ex.Verified = e.Opts.VerifyProofs
	return ex, nil
}

// liftEntry is one router's cached lift outcome in the
// cross-deployment report cache, together with everything needed to
// decide whether it can be spliced into a later generation's report.
// The lift stage is a pure function of (seed semantics, candidate
// paths, hole domains, lift options): terms are hash-consed, so
// "same semantics" is certified by pointer equality on the simplified
// normal form, "same candidates" by pointer equality on the path
// infos' terms, and "same domains" by pointer equality on the hole
// variables (variables intern with their sort, so a changed enum
// domain yields a different pointer). See DESIGN.md ("Incremental
// re-explanation") for the splice-safety argument.
type liftEntry struct {
	seed       []logic.Term // raw seed conjuncts of the generation that produced the entry
	simplified logic.Term
	holes      map[string]*logic.Var
	paths      []synth.PathInfo
	optsSig    string
	block      *spec.Block
	complete   bool
}

// size estimates the marginal bytes retaining the entry costs the
// report cache. Terms and hole variables are hash-consed and alive in
// the session's interner regardless, so they count at pointer size;
// the slices, strings, and the lifted block are what the entry pins.
func (ent *liftEntry) size() int64 {
	size := int64(256) // struct, map and slice headers
	size += int64(len(ent.seed)) * 8
	size += int64(len(ent.holes)) * 48
	for i := range ent.paths {
		p := &ent.paths[i]
		size += 96 + int64(len(p.Prefix)) + int64(len(p.EdgeConds))*8
		for _, n := range p.Path {
			size += 24 + int64(len(n))
		}
	}
	if ent.block != nil {
		size += 64
		for _, r := range ent.block.Reqs {
			size += int64(len(r.String())) + 48
		}
	}
	return size
}

// liftOptsSig captures every option the lift stage's outcome depends
// on; entries produced under a different signature never splice.
func (e *Explainer) liftOptsSig() string {
	return fmt.Sprintf("p%d|m%d|c%d|v%t",
		e.Opts.MaxPatternNodes, e.Opts.Budget.ModelCap(), e.Opts.Budget.MaxConflicts, e.Opts.VerifyProofs)
}

// liftEntryValid reports whether the cached entry's lift inputs are
// identical to the live encoding's. Every term comparison is a pointer
// comparison (hash-consing).
func (e *Explainer) liftEntryValid(ent *liftEntry, ex *Explanation, enc *synth.Encoding) bool {
	if ent.optsSig != e.liftOptsSig() || ent.simplified != ex.Simplified {
		return false
	}
	if len(ent.holes) != len(ex.HoleVars) {
		return false
	}
	for n, v := range ex.HoleVars {
		if ent.holes[n] != v {
			return false
		}
	}
	paths := enc.PathInfos()
	if len(ent.paths) != len(paths) {
		return false
	}
	for i := range paths {
		a, b := &ent.paths[i], &paths[i]
		if a.Prefix != b.Prefix || a.Sel != b.Sel || a.LP != b.LP ||
			len(a.EdgeConds) != len(b.EdgeConds) || len(a.Path) != len(b.Path) {
			return false
		}
		for j := range a.EdgeConds {
			if a.EdgeConds[j] != b.EdgeConds[j] {
				return false
			}
		}
		for j := range a.Path {
			if a.Path[j] != b.Path[j] {
				return false
			}
		}
	}
	return true
}

// noteDelta records one router's delta diagnostics during a ReExplain
// sweep: the raw-seed symmetric difference against the cached
// generation and, when non-empty, the size of the edit's cone of
// influence within the new seed (rewrite.Cone over the changed
// conjuncts' free-variable signatures).
func (e *Explainer) noteDelta(router string, ent *liftEntry, enc *synth.Encoding, spliced bool) {
	if e.diffInfo == nil {
		return
	}
	old := make(map[logic.Term]bool, len(ent.seed))
	for _, c := range ent.seed {
		old[c] = true
	}
	var editSig uint64
	delta := 0
	for _, c := range enc.Constraints {
		if old[c] {
			delete(old, c)
			continue
		}
		delta++
		editSig |= logic.Signature(c)
	}
	for c := range old {
		delta++
		editSig |= logic.Signature(c)
	}
	cone := 0
	if delta > 0 {
		cone = len(rewrite.Cone(enc.Constraints, editSig))
	}
	e.diffMu.Lock()
	e.diffInfo[router] = &routerDelta{spliced: spliced, seedDelta: delta, coneAtoms: cone}
	e.diffMu.Unlock()
}

// noteMissing records that a router had no cached generation to diff
// against (treated as dirty: nothing is known about it).
func (e *Explainer) noteMissing(router string) {
	if e.diffInfo == nil {
		return
	}
	e.diffMu.Lock()
	e.diffInfo[router] = &routerDelta{seedDelta: -1}
	e.diffMu.Unlock()
}

// mentionsAny reports whether t contains any of the named variables.
func mentionsAny(t logic.Term, names map[string]bool) bool {
	found := false
	logic.Walk(t, func(u logic.Term) bool {
		if found {
			return false
		}
		if v, ok := u.(*logic.Var); ok && names[v.Name] {
			found = true
			return false
		}
		return true
	})
	return found
}

// ResidualText renders the residual constraints one per line, the
// low-level view shown in the paper's Figure 6c.
func (ex *Explanation) ResidualText() string {
	if len(ex.Residual) == 0 {
		return "true"
	}
	lines := make([]string, len(ex.Residual))
	for i, c := range ex.Residual {
		lines[i] = c.String()
	}
	sort.Strings(lines)
	out := lines[0]
	for _, l := range lines[1:] {
		out += "\n" + l
	}
	return out
}

// Reduction reports the size reduction factor achieved by
// simplification (seed nodes / simplified nodes).
func (ex *Explanation) Reduction() float64 {
	if ex.SimplifiedSize == 0 {
		return float64(ex.SeedSize)
	}
	return float64(ex.SeedSize) / float64(ex.SimplifiedSize)
}
