package synth

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/config"
	"repro/internal/logic"
	"repro/internal/topology"
)

// Base is the invariant structure of a concrete deployment's encoding:
// every candidate propagation path with its fully-evaluated edge
// condition and route state. Explanation queries symbolize one router
// at a time and re-encode; every candidate path that avoids the
// symbolized router is identical across those encodings, so a Base
// built once lets each derived encoder (see Encoder.WithBase) skip the
// symbolic policy evaluation for the unchanged bulk of the network.
//
// A Base is immutable after construction and safe for concurrent use
// by any number of encoders: the candidates it holds are never
// mutated, and the terms they carry are immutable by construction.
type Base struct {
	net  *topology.Network
	dep  config.Deployment
	opts Options
	// cands[prefix][pathKey] indexes the base candidates.
	cands map[string]map[string]*candidate
}

// NewBase enumerates the candidate structure of a concrete deployment.
// The deployment must be concrete: symbolic holes would leak hole
// variables owned by this throwaway encoder into derived encodings.
func NewBase(ctx context.Context, net *topology.Network, dep config.Deployment, opts Options) (*Base, error) {
	return newBase(ctx, net, dep, opts, nil)
}

// NewBaseFrom is NewBase reusing a prior base of an edited variant of
// the same deployment: candidates whose propagation path avoids every
// router whose config pointer differs from the prior's deployment are
// copied (pointer-shared) from the prior instead of re-derived. The
// result is identical to a fresh NewBase — sharing is an exactness-
// preserving optimization (see Encoder.WithBase) — but pointer-shared
// candidates additionally let DiffBases compare the two bases in O(1)
// per unchanged candidate. A nil prior degrades to NewBase.
func NewBaseFrom(ctx context.Context, net *topology.Network, dep config.Deployment, opts Options, prior *Base) (*Base, error) {
	return newBase(ctx, net, dep, opts, prior)
}

func newBase(ctx context.Context, net *topology.Network, dep config.Deployment, opts Options, prior *Base) (*Base, error) {
	for name, c := range dep {
		if !c.Concrete() {
			return nil, fmt.Errorf("synth: base deployment config %s still has holes", name)
		}
	}
	e := NewEncoder(net, dep, opts).WithBase(prior)
	if err := e.enumerateCandidates(ctx); err != nil {
		return nil, err
	}
	b := &Base{
		net:   net,
		dep:   dep,
		opts:  e.opts,
		cands: make(map[string]map[string]*candidate, len(e.cands)),
	}
	for prefix, byNode := range e.cands {
		m := map[string]*candidate{}
		for _, cs := range byNode {
			for _, c := range cs {
				m[strings.Join(c.path, "_")] = c
			}
		}
		b.cands[prefix] = m
	}
	return b, nil
}

// NumCandidates reports how many candidate paths the base holds.
func (b *Base) NumCandidates() int {
	n := 0
	for _, m := range b.cands {
		n += len(m)
	}
	return n
}

// BaseDiff is the outcome of comparing two bases (DiffBases).
type BaseDiff struct {
	// Comparable is false when the bases were built over different
	// topologies or candidate-enumeration options, in which case no
	// finer comparison was attempted (Identical is false and EditSig
	// covers every variable).
	Comparable bool
	// Identical reports that every candidate's symbolic edge condition
	// and route state is pointer-identical between the bases: the two
	// deployments are indistinguishable to the encoder, so every
	// derived encoding — and everything downstream of it — coincides.
	Identical bool
	// Changed lists, sorted, the endpoints of edges that introduced a
	// differing candidate: the routers whose modeled contribution the
	// edit actually reached. Edges inheriting a difference from an
	// upstream hop are not re-attributed (their introduction point
	// already is).
	Changed []string
	// EditSig is the union of the free-variable Bloom signatures
	// (logic.Signature) of every differing candidate's old and new
	// terms — the seed-level footprint of the edit, feeding the cone
	// computation (rewrite.Cone).
	EditSig uint64
}

// DiffBases compares the modeled contribution of every candidate path
// between two bases of the same topology. Terms are hash-consed, so
// "unchanged" is a pointer comparison per candidate regardless of how
// the bases were built; NewBaseFrom merely makes the bases cheaper to
// produce.
func DiffBases(old, nu *Base) *BaseDiff {
	if old == nil || nu == nil || old.net != nu.net || old.opts != nu.opts {
		return &BaseDiff{Comparable: false, EditSig: ^uint64(0)}
	}
	d := &BaseDiff{Comparable: true, Identical: true}
	changed := map[string]bool{}

	prefixes := map[string]bool{}
	for p := range old.cands {
		prefixes[p] = true
	}
	for p := range nu.cands {
		prefixes[p] = true
	}
	for prefix := range prefixes {
		oc, nc := old.cands[prefix], nu.cands[prefix]
		keys := make([]string, 0, len(oc))
		seen := map[string]bool{}
		for k := range oc {
			keys = append(keys, k)
			seen[k] = true
		}
		for k := range nc {
			if !seen[k] {
				keys = append(keys, k)
			}
		}
		// Shortest paths first, so a differing candidate knows whether
		// its parent already differed (the difference is inherited, not
		// introduced on this edge).
		sort.Slice(keys, func(i, j int) bool {
			ci, cj := strings.Count(keys[i], "_"), strings.Count(keys[j], "_")
			if ci != cj {
				return ci < cj
			}
			return keys[i] < keys[j]
		})
		dirtyKey := map[string]bool{}
		for _, k := range keys {
			co, cn := oc[k], nc[k]
			if candidateSame(co, cn) {
				continue
			}
			d.Identical = false
			dirtyKey[k] = true
			d.EditSig |= candidateSig(co) | candidateSig(cn)
			path := strings.Split(k, "_")
			if len(path) < 2 {
				continue
			}
			parentKey := strings.Join(path[:len(path)-1], "_")
			if dirtyKey[parentKey] {
				continue // inherited from upstream; attributed there
			}
			changed[path[len(path)-2]] = true
			changed[path[len(path)-1]] = true
		}
	}
	for r := range changed {
		d.Changed = append(d.Changed, r)
	}
	sort.Strings(d.Changed)
	return d
}

// candidateSame reports whether two candidates carry the same symbolic
// content. Terms are canonical in one interner, so every comparison is
// a pointer comparison.
func candidateSame(a, b *candidate) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a == b {
		return true
	}
	if a.edgeCond != b.edgeCond {
		return false
	}
	sa, sb := a.state, b.state
	if (sa == nil) != (sb == nil) {
		return false
	}
	if sa == nil || sa == sb {
		return true
	}
	if sa.lp != sb.lp || sa.nextHop != sb.nextHop || len(sa.comms) != len(sb.comms) {
		return false
	}
	for c, t := range sa.comms {
		if sb.comms[c] != t {
			return false
		}
	}
	return true
}

// candidateSig unions the free-variable signatures of a candidate's
// symbolic terms (edge condition, local-pref rank, community
// conditions, selection variable).
func candidateSig(c *candidate) uint64 {
	if c == nil {
		return 0
	}
	var sig uint64
	if c.edgeCond != nil {
		sig |= logic.Signature(c.edgeCond)
	}
	if c.sel != nil {
		sig |= logic.Signature(c.sel)
	}
	if c.state != nil {
		if c.state.lp != nil {
			sig |= logic.Signature(c.state.lp)
		}
		for _, t := range c.state.comms {
			sig |= logic.Signature(t)
		}
	}
	return sig
}
