package main

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/config"
	"repro/internal/netgen"
	"repro/internal/scenarios"
	"repro/internal/spec"
	"repro/internal/topology"
)

// problem bundles the synthesis inputs, resolved from flags.
type problem struct {
	net    *topology.Network
	spec   *spec.Spec
	sketch config.Deployment
}

// loadProblem resolves -scenario / -workload flags into a problem.
func loadProblem(scenario, workload string, pref bool) (*problem, error) {
	switch {
	case scenario != "" && workload != "":
		return nil, fmt.Errorf("pass either -scenario or -workload, not both")
	case scenario != "":
		sc, err := scenarios.ByName(scenario)
		if err != nil {
			return nil, err
		}
		return &problem{net: sc.Net, spec: sc.Spec, sketch: sc.Sketch}, nil
	case workload != "":
		wl, err := parseWorkload(workload, pref)
		if err != nil {
			return nil, err
		}
		return &problem{net: wl.Net, spec: wl.Spec, sketch: wl.Sketch}, nil
	}
	return nil, fmt.Errorf("pass -scenario or -workload")
}

// parseWorkload parses grid:WxH, rand:N:SEED, fattree:K.
func parseWorkload(s string, pref bool) (*netgen.Workload, error) {
	parts := strings.Split(s, ":")
	switch parts[0] {
	case "grid":
		if len(parts) != 2 {
			return nil, fmt.Errorf("grid workload is grid:WxH")
		}
		dims := strings.Split(parts[1], "x")
		if len(dims) != 2 {
			return nil, fmt.Errorf("grid workload is grid:WxH")
		}
		w, err1 := strconv.Atoi(dims[0])
		h, err2 := strconv.Atoi(dims[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad grid dimensions %q", parts[1])
		}
		return netgen.Grid(w, h, pref)
	case "rand":
		if len(parts) != 3 {
			return nil, fmt.Errorf("random workload is rand:N:SEED")
		}
		n, err1 := strconv.Atoi(parts[1])
		seed, err2 := strconv.ParseInt(parts[2], 10, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad random workload %q", s)
		}
		return netgen.Random(n, 2.5, seed, pref)
	case "fattree":
		if len(parts) != 2 {
			return nil, fmt.Errorf("fat-tree workload is fattree:K")
		}
		k, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("bad fat-tree arity %q", parts[1])
		}
		return netgen.FatTree(k, pref)
	}
	return nil, fmt.Errorf("unknown workload family %q (grid, rand, fattree)", parts[0])
}
