package logic

import "fmt"

// The constructors in this file are deliberately "dumb": they validate
// sorts and arities but perform no simplification beyond trivial
// zero/one-argument collapsing of the n-ary connectives. Simplification
// is the job of internal/rewrite — keeping construction and rewriting
// separate lets the explanation pipeline measure how much the rewrite
// rules actually reduce a seed specification, which is one of the
// paper's reported results.
//
// Every constructor routes its node through the package-default
// interner (see intern.go), so structurally equal terms are
// pointer-identical and carry their structural hash from birth.

// internApply canonicalizes a freshly built application node.
func internApply(a *Apply) Term { return defaultInterner.Intern(a) }

// NewVar creates a variable of the given sort. For integer variables
// use NewIntVar so the domain is recorded.
func NewVar(name string, s *Sort) *Var {
	if name == "" {
		panic("logic: variable must have a name")
	}
	if s == nil {
		panic(fmt.Sprintf("logic: variable %q must have a sort", name))
	}
	if s.Kind == KindInt {
		panic(fmt.Sprintf("logic: use NewIntVar for integer variable %q", name))
	}
	return defaultInterner.Intern(&Var{Name: name, S: s}).(*Var)
}

// NewBoolVar creates a boolean variable.
func NewBoolVar(name string) *Var { return NewVar(name, Bool) }

// NewEnumVar creates a variable of an enumeration sort.
func NewEnumVar(name string, s *Sort) *Var {
	if !s.IsEnum() {
		panic(fmt.Sprintf("logic: NewEnumVar %q: sort %v is not an enum", name, s))
	}
	return NewVar(name, s)
}

// NewIntVar creates an integer variable with the inclusive domain
// [lo, hi]. The finite-domain SMT layer requires every integer variable
// to have a domain.
func NewIntVar(name string, lo, hi int64) *Var {
	if name == "" {
		panic("logic: variable must have a name")
	}
	if lo > hi {
		panic(fmt.Sprintf("logic: integer variable %q has empty domain [%d,%d]", name, lo, hi))
	}
	return defaultInterner.Intern(&Var{Name: name, S: Int, Lo: lo, Hi: hi}).(*Var)
}

// NewBool returns the boolean literal for v (one of the shared True or
// False nodes).
func NewBool(v bool) *BoolLit {
	if v {
		return True
	}
	return False
}

// NewInt returns an integer literal.
func NewInt(v int64) *IntLit { return defaultInterner.Intern(&IntLit{Val: v}).(*IntLit) }

// NewEnum returns a literal of the enumeration sort s. It panics if val
// is not a member of s.
func NewEnum(s *Sort, val string) *EnumLit {
	if _, ok := s.ValueIndex(val); !ok {
		panic(fmt.Sprintf("logic: %q is not a value of sort %v", val, s))
	}
	return defaultInterner.Intern(&EnumLit{S: s, Val: val}).(*EnumLit)
}

func requireBool(op Op, args ...Term) {
	for i, a := range args {
		if a == nil {
			panic(fmt.Sprintf("logic: %v: argument %d is nil", op, i))
		}
		if !a.Sort().IsBool() {
			panic(fmt.Sprintf("logic: %v: argument %d has sort %v, want Bool", op, i, a.Sort()))
		}
	}
}

func requireInt(op Op, args ...Term) {
	for i, a := range args {
		if a == nil {
			panic(fmt.Sprintf("logic: %v: argument %d is nil", op, i))
		}
		if !a.Sort().IsInt() {
			panic(fmt.Sprintf("logic: %v: argument %d has sort %v, want Int", op, i, a.Sort()))
		}
	}
}

// And builds an n-ary conjunction. And() is True; And(x) is x.
func And(args ...Term) Term {
	requireBool(OpAnd, args...)
	switch len(args) {
	case 0:
		return True
	case 1:
		return args[0]
	}
	return internApply(&Apply{Op: OpAnd, Args: args})
}

// Or builds an n-ary disjunction. Or() is False; Or(x) is x.
func Or(args ...Term) Term {
	requireBool(OpOr, args...)
	switch len(args) {
	case 0:
		return False
	case 1:
		return args[0]
	}
	return internApply(&Apply{Op: OpOr, Args: args})
}

// Not builds a negation.
func Not(a Term) Term {
	requireBool(OpNot, a)
	return internApply(&Apply{Op: OpNot, Args: []Term{a}})
}

// Implies builds an implication a => b.
func Implies(a, b Term) Term {
	requireBool(OpImplies, a, b)
	return internApply(&Apply{Op: OpImplies, Args: []Term{a, b}})
}

// Iff builds a bi-implication a <=> b.
func Iff(a, b Term) Term {
	requireBool(OpIff, a, b)
	return internApply(&Apply{Op: OpIff, Args: []Term{a, b}})
}

func requireSameSort(op Op, a, b Term) {
	if a == nil || b == nil {
		panic(fmt.Sprintf("logic: %v: nil argument", op))
	}
	if !SameSort(a.Sort(), b.Sort()) {
		panic(fmt.Sprintf("logic: %v: mismatched sorts %v and %v", op, a.Sort(), b.Sort()))
	}
}

// Eq builds an equality between two terms of the same sort.
func Eq(a, b Term) Term {
	requireSameSort(OpEq, a, b)
	return internApply(&Apply{Op: OpEq, Args: []Term{a, b}})
}

// Ne builds a disequality between two terms of the same sort.
func Ne(a, b Term) Term {
	requireSameSort(OpNe, a, b)
	return internApply(&Apply{Op: OpNe, Args: []Term{a, b}})
}

// Lt builds a < b over integers.
func Lt(a, b Term) Term {
	requireInt(OpLt, a, b)
	return internApply(&Apply{Op: OpLt, Args: []Term{a, b}})
}

// Le builds a <= b over integers.
func Le(a, b Term) Term {
	requireInt(OpLe, a, b)
	return internApply(&Apply{Op: OpLe, Args: []Term{a, b}})
}

// Gt builds a > b over integers.
func Gt(a, b Term) Term {
	requireInt(OpGt, a, b)
	return internApply(&Apply{Op: OpGt, Args: []Term{a, b}})
}

// Ge builds a >= b over integers.
func Ge(a, b Term) Term {
	requireInt(OpGe, a, b)
	return internApply(&Apply{Op: OpGe, Args: []Term{a, b}})
}

// Add builds an n-ary integer sum. Add() is 0; Add(x) is x.
func Add(args ...Term) Term {
	requireInt(OpAdd, args...)
	switch len(args) {
	case 0:
		return NewInt(0)
	case 1:
		return args[0]
	}
	return internApply(&Apply{Op: OpAdd, Args: args})
}

// Sub builds integer subtraction a - b.
func Sub(a, b Term) Term {
	requireInt(OpSub, a, b)
	return internApply(&Apply{Op: OpSub, Args: []Term{a, b}})
}

// Ite builds if cond then thn else els. The two branches must share a
// sort, which becomes the sort of the whole term.
func Ite(cond, thn, els Term) Term {
	requireBool(OpIte, cond)
	requireSameSort(OpIte, thn, els)
	return internApply(&Apply{Op: OpIte, Args: []Term{cond, thn, els}})
}

// Conjuncts flattens nested conjunctions into a list. A non-And term is
// returned as a single-element list; True yields an empty list.
func Conjuncts(t Term) []Term {
	var out []Term
	var walk func(Term)
	walk = func(u Term) {
		if IsTrue(u) {
			return
		}
		if a, ok := u.(*Apply); ok && a.Op == OpAnd {
			for _, arg := range a.Args {
				walk(arg)
			}
			return
		}
		out = append(out, u)
	}
	walk(t)
	return out
}

// Disjuncts flattens nested disjunctions into a list. A non-Or term is
// returned as a single-element list; False yields an empty list.
func Disjuncts(t Term) []Term {
	var out []Term
	var walk func(Term)
	walk = func(u Term) {
		if IsFalse(u) {
			return
		}
		if a, ok := u.(*Apply); ok && a.Op == OpOr {
			for _, arg := range a.Args {
				walk(arg)
			}
			return
		}
		out = append(out, u)
	}
	walk(t)
	return out
}

// Size counts the nodes of the term tree. It is used by the experiment
// harness to measure specification sizes before and after
// simplification.
func Size(t Term) int {
	switch n := t.(type) {
	case *Apply:
		s := 1
		for _, a := range n.Args {
			s += Size(a)
		}
		return s
	default:
		return 1
	}
}

// Depth returns the height of the term tree (a leaf has depth 1).
func Depth(t Term) int {
	a, ok := t.(*Apply)
	if !ok {
		return 1
	}
	max := 0
	for _, arg := range a.Args {
		if d := Depth(arg); d > max {
			max = d
		}
	}
	return max + 1
}
