package logic

import "sort"

// This file gives the interner first-class support for canonical flat
// n-ary AND/OR construction and for set-style membership over a node's
// children. The rewrite engine's hot loops — complement detection
// (a & !a), absorption (a & (a|b)), duplicate removal — were O(n²·k)
// pairwise Equal scans; over canonical terms they reduce to flattening
// plus hash-sorted set lookups, with every comparison a pointer
// comparison.

// FlatNary flattens one construction of the n-ary operator op (OpAnd
// or OpOr) over args: nested applications of op are spliced in, the
// operator's identity element is dropped, duplicates are removed
// (pointer comparison over canonical terms), and an occurrence of the
// annihilator collapses the whole construction. The first occurrence
// order of the surviving operands is preserved, which is what keeps
// rendered output stable for callers that print terms.
//
// It returns the surviving operands, the number of individual
// simplification actions taken (0 means out is args unchanged), and
// whether the annihilator collapsed the construction (out is nil and
// the caller should use the annihilator constant).
func (in *Interner) FlatNary(op Op, args []Term) (out []Term, actions int, collapsed bool) {
	if op != OpAnd && op != OpOr {
		panic("logic: FlatNary on non-AND/OR operator")
	}
	identity, annihilator := Term(True), Term(False)
	if op == OpOr {
		identity, annihilator = False, True
	}
	seen := make(map[Term]struct{}, len(args))
	out = make([]Term, 0, len(args))
	var walk func(ts []Term) bool
	walk = func(ts []Term) bool {
		for _, t := range ts {
			t = in.Intern(t)
			if t == identity {
				actions++
				continue
			}
			if t == annihilator {
				actions++
				return false
			}
			if ap, ok := t.(*Apply); ok && ap.Op == op {
				actions++
				if !walk(ap.Args) {
					return false
				}
				continue
			}
			if _, dup := seen[t]; dup {
				actions++
				continue
			}
			seen[t] = struct{}{}
			out = append(out, t)
		}
		return true
	}
	if !walk(args) {
		return nil, actions, true
	}
	return out, actions, false
}

// FlatAnd is FlatNary(OpAnd, args) on the package-default interner.
func FlatAnd(args []Term) (out []Term, actions int, collapsed bool) {
	return defaultInterner.FlatNary(OpAnd, args)
}

// FlatOr is FlatNary(OpOr, args) on the package-default interner.
func FlatOr(args []Term) (out []Term, actions int, collapsed bool) {
	return defaultInterner.FlatNary(OpOr, args)
}

// TermSet is an immutable membership set over terms, stored as a
// hash-sorted slice (binary search on the cached structural hash, then
// a pointer-fast Equal over the — almost always singleton — run of
// equal hashes). Built once per child set, it turns the rewrite
// engine's pairwise scans into O(log n) probes.
type TermSet struct {
	hs []uint64
	ts []Term
}

// NewTermSet builds a set over the given terms. The input slice is not
// retained.
func NewTermSet(args []Term) TermSet {
	s := TermSet{hs: make([]uint64, len(args)), ts: make([]Term, len(args))}
	copy(s.ts, args)
	for i, t := range args {
		s.hs[i] = Hash(t)
	}
	sort.Sort(&s)
	return s
}

// Len, Less, Swap implement sort.Interface for the construction sort.
func (s *TermSet) Len() int           { return len(s.hs) }
func (s *TermSet) Less(i, j int) bool { return s.hs[i] < s.hs[j] }
func (s *TermSet) Swap(i, j int) {
	s.hs[i], s.hs[j] = s.hs[j], s.hs[i]
	s.ts[i], s.ts[j] = s.ts[j], s.ts[i]
}

// Size returns the number of members.
func (s TermSet) Size() int { return len(s.ts) }

// Has reports whether t is a member. Over terms canonical in one
// interner every comparison is a pointer comparison.
func (s TermSet) Has(t Term) bool {
	h := Hash(t)
	i := sort.Search(len(s.hs), func(i int) bool { return s.hs[i] >= h })
	for ; i < len(s.hs) && s.hs[i] == h; i++ {
		if s.ts[i] == t || Equal(s.ts[i], t) {
			return true
		}
	}
	return false
}

// varBit maps a variable name to one bit of the 64-bit variable
// signature space.
func varBit(name string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * fnvPrime
	}
	return 1 << (h & 63)
}

// varSigFast returns the term's variable signature — a 64-bit Bloom
// filter of the free-variable names occurring in it — when it is
// available in O(1): leaves compute it directly, canonical Apply nodes
// carry it from intern time. ok is false for hand-built (unowned)
// Apply nodes, whose signature would take a walk to compute.
//
// The signature admits false positives (two names may share a bit) but
// no false negatives, so sig&mask == 0 proves none of the masked
// variables occur.
// Signature returns the term's 64-bit free-variable Bloom signature:
// one bit per (hashed) variable name occurring free in the term.
// Interned nodes answer in O(1) from the signature cached at intern
// time; hand-built nodes fall back to a walk. The signature admits
// false positives (two names may share a bit) but no false negatives:
// Signature(a)&Signature(b) == 0 proves a and b share no variables.
func Signature(t Term) uint64 {
	if sig, ok := varSigFast(t); ok {
		return sig
	}
	var sig uint64
	Walk(t, func(u Term) bool {
		if s, ok := varSigFast(u); ok {
			sig |= s
			return false
		}
		return true
	})
	return sig
}

func varSigFast(t Term) (sig uint64, ok bool) {
	switch n := t.(type) {
	case *Var:
		if n.in != nil {
			return n.vsig, true
		}
		return varBit(n.Name), true
	case *BoolLit, *IntLit, *EnumLit:
		return 0, true
	case *Apply:
		if n.in != nil {
			return n.vsig, true
		}
		return 0, false
	}
	return 0, true
}
