package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/netgen"
	"repro/internal/scenarios"
	"repro/internal/synth"
	"repro/internal/verify"
)

// SatTable measures the CDCL core under the full explanation pipeline:
// the three seed scenarios plus the netgen Grid/FatTree/Random presets
// (which are far bigger than anything the paper evaluates), with the
// lifting step on so the SAT solver is the bottleneck. The per-solver
// counters — binary propagations, learnt-clause glue, minimized
// literals, restart behavior, tier sizes — are the observability half
// of BENCH_satcore.json; the wall-clock columns are the speed half.
// satWorkers sets the portfolio width of every solver the pipeline
// builds (1 = plain single search); the races and shared columns stay
// zero at width 1.
func SatTable(ctx context.Context, satWorkers int) (*Table, error) {
	t := &Table{
		ID:      "satcore (extension Ext-3)",
		Caption: fmt.Sprintf("CDCL core behavior across seed scenarios and netgen workloads (lift on, satworkers=%d). explain-ms covers every configured router through one session; bin-props is the share of propagations served by the binary implication lists; min-lits the learnt literals removed by minimization; avg-lbd the mean glue; tiers the peak core/mid/local learnt-database split; races the portfolio races run; shared the clause-sharing traffic as exported/imported/rejected.", satWorkers),
		Columns: []string{"workload", "synth-ms", "explain-ms", "solves", "conflicts", "props", "bin-props", "restarts", "blocked", "learnts", "min-lits", "avg-lbd", "tiers", "races", "shared"},
	}

	type job struct {
		name string
		run  func() (*core.Explainer, float64, error) // explainer + synth-ms
	}
	var jobs []job
	for _, sc := range scenarios.All() {
		sc := sc
		jobs = append(jobs, job{name: sc.Name, run: func() (*core.Explainer, float64, error) {
			start := time.Now()
			res, err := synthesizeScenario(ctx, sc)
			if err != nil {
				return nil, 0, err
			}
			synthMS := float64(time.Since(start).Microseconds()) / 1000
			copts := core.DefaultOptions()
			copts.Budget.SatWorkers = satWorkers
			ex, err := core.NewExplainer(sc.Net, sc.Requirements(), res.Deployment, copts)
			return ex, synthMS, err
		}})
	}
	for _, wl := range satWorkloads() {
		wl := wl
		jobs = append(jobs, job{name: wl.Name, run: func() (*core.Explainer, float64, error) {
			opts := synth.DefaultOptions()
			opts.MaxPathLen = 7
			opts.MaxCandidatesPerNode = 8
			start := time.Now()
			res, err := synth.SynthesizeContext(ctx, wl.Net, wl.Sketch, wl.Requirements(), opts)
			if err != nil {
				return nil, 0, fmt.Errorf("%s: %w", wl.Name, err)
			}
			synthMS := float64(time.Since(start).Microseconds()) / 1000
			if ok, err := verify.SatisfiesContext(ctx, wl.Net, res.Deployment, wl.Requirements()); err != nil || !ok {
				return nil, 0, fmt.Errorf("%s: synthesized deployment does not verify (%v)", wl.Name, err)
			}
			copts := core.DefaultOptions()
			copts.Synth = opts
			copts.Budget.SatWorkers = satWorkers
			ex, err := core.NewExplainer(wl.Net, wl.Requirements(), res.Deployment, copts)
			return ex, synthMS, err
		}})
	}

	for _, j := range jobs {
		ex, synthMS, err := j.run()
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := ex.ReportContext(ctx); err != nil {
			return nil, fmt.Errorf("%s report: %w", j.name, err)
		}
		explainMS := float64(time.Since(start).Microseconds()) / 1000
		st := ex.Stats()
		avgLBD := 0.0
		if st.Learnt > 0 {
			avgLBD = float64(st.LBDSum) / float64(st.Learnt)
		}
		t.AddRow(j.name,
			fmt.Sprintf("%.1f", synthMS), fmt.Sprintf("%.1f", explainMS),
			st.Solves, st.Conflicts, st.Propagations, st.BinPropagations,
			st.Restarts, st.BlockedRestarts, st.Learnt, st.MinimizedLits,
			fmt.Sprintf("%.2f", avgLBD),
			fmt.Sprintf("%d/%d/%d", st.CoreLearnts, st.MidLearnts, st.LocalLearnts),
			st.SatRaces,
			fmt.Sprintf("%d/%d/%d", st.SharedExported, st.SharedImported, st.SharedRejected))
	}
	return t, nil
}

// satWorkloads returns the netgen presets the satcore benchmark runs:
// deliberately larger than the scaling sweep's, since the CDCL upgrade
// targets exactly the instances where search dominates.
func satWorkloads() []*netgen.Workload {
	var out []*netgen.Workload
	if wl, err := netgen.Grid(4, 4, false); err == nil {
		out = append(out, wl)
	}
	if wl, err := netgen.FatTree(4, false); err == nil {
		out = append(out, wl)
	}
	if wl, err := netgen.Random(24, 3.0, 42, false); err == nil {
		out = append(out, wl)
	}
	return out
}
