package core

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/scenarios"
	"repro/internal/spec"
	"repro/internal/synth"
)

// synthScenario synthesizes a scenario once per test binary run.
func synthScenario(t *testing.T, sc *scenarios.Scenario) config.Deployment {
	t.Helper()
	res, err := synth.Synthesize(sc.Net, sc.Sketch, sc.Requirements(), synth.DefaultOptions())
	if err != nil {
		t.Fatalf("synthesize %s: %v", sc.Name, err)
	}
	return res.Deployment
}

func newExplainer(t *testing.T, sc *scenarios.Scenario, dep config.Deployment, reqs []spec.Requirement) *Explainer {
	t.Helper()
	if reqs == nil {
		reqs = sc.Requirements()
	}
	e, err := NewExplainer(sc.Net, reqs, dep, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func subspecStrings(b *spec.Block) []string {
	var out []string
	for _, r := range b.Reqs {
		out = append(out, r.String())
	}
	return out
}

func TestSymbolize(t *testing.T) {
	sc := scenarios.Scenario1()
	dep := synthScenario(t, sc)
	r1 := dep["R1"]
	targets := AllTargets(r1)
	if len(targets) == 0 {
		t.Fatal("no targets on R1")
	}
	sym, replaced, err := Symbolize(r1, targets)
	if err != nil {
		t.Fatal(err)
	}
	holes := sym.Holes()
	if len(holes) != len(targets) {
		t.Fatalf("holes = %d, targets = %d", len(holes), len(targets))
	}
	if len(replaced) != len(targets) {
		t.Fatalf("replaced = %d, want %d", len(replaced), len(targets))
	}
	// Original untouched.
	if !r1.Concrete() {
		t.Fatal("Symbolize mutated the original")
	}
	// Double symbolization fails.
	if _, _, err := Symbolize(sym, targets[:1]); err == nil {
		t.Fatal("re-symbolizing should fail")
	}
	// Bad targets fail.
	if _, _, err := Symbolize(r1, []Target{{Map: "nope", Seq: 1, Field: FieldAction}}); err == nil {
		t.Fatal("unknown map should fail")
	}
	if _, _, err := Symbolize(r1, []Target{{Map: targets[0].Map, Seq: 9999, Field: FieldAction}}); err == nil {
		t.Fatal("unknown clause should fail")
	}
}

func TestTargetNaming(t *testing.T) {
	tg := Target{Map: "R1_to_P1", Seq: 10, Field: FieldAction}
	if tg.HoleName() != "Var_Action_R1_to_P1_10" {
		t.Fatalf("HoleName = %q", tg.HoleName())
	}
	tg2 := Target{Map: "m", Seq: 5, Field: FieldMatch, Index: 1}
	if tg2.HoleName() != "Var_Val_m_5_1" {
		t.Fatalf("HoleName = %q", tg2.HoleName())
	}
	if !strings.Contains(tg.String(), "action") || !strings.Contains(tg2.String(), "match") {
		t.Fatal("Target.String lacks field kind")
	}
}

// TestScenario1SubspecAtR1 reproduces Figure 2: the explanation at R1
// for the no-transit intent shows that R1's job is to block the
// provider-to-provider routes through it.
func TestScenario1SubspecAtR1(t *testing.T) {
	sc := scenarios.Scenario1()
	dep := synthScenario(t, sc)
	ex, err := newExplainer(t, sc, dep, nil).ExplainAll("R1")
	if err != nil {
		t.Fatal(err)
	}
	// The seed must be big (the paper: >1000 constraint atoms) and the
	// simplified form must be small.
	if ex.SeedSize < 1000 {
		t.Fatalf("seed size = %d, expected >1000 atoms", ex.SeedSize)
	}
	if ex.SimplifiedSize >= ex.SeedSize/10 {
		t.Fatalf("simplification too weak: %d -> %d", ex.SeedSize, ex.SimplifiedSize)
	}
	if ex.Subspec == nil {
		t.Fatal("no subspec")
	}
	got := subspecStrings(ex.Subspec)
	// R1 must drop the provider routes that would otherwise transit:
	// the P2-side routes crossing R1 toward P1.
	joined := strings.Join(got, "\n")
	if !strings.Contains(joined, "P2->R2->R1->P1") {
		t.Fatalf("subspec misses the transit block:\n%s", joined)
	}
	for _, s := range got {
		if !strings.HasPrefix(s, "!(") {
			t.Fatalf("unexpected non-forbid clause in no-transit subspec: %s", s)
		}
	}
	if !ex.SubspecComplete {
		t.Fatal("lifted subspec should be verified complete")
	}
}

// TestScenario3EmptySubspecAtR3 reproduces the Scenario 3 observation:
// asked about the no-transit requirement alone, R3's subspecification
// is empty — R3 can do anything.
func TestScenario3EmptySubspecAtR3(t *testing.T) {
	sc := scenarios.Scenario3()
	dep := synthScenario(t, sc)
	noTransit := sc.Spec.Block("Req1")
	var reqs []spec.Requirement
	reqs = append(reqs, noTransit.Reqs...)
	ex, err := newExplainer(t, sc, dep, reqs).ExplainAll("R3")
	if err != nil {
		t.Fatal(err)
	}
	if ex.Subspec == nil || !ex.Subspec.IsEmpty() {
		t.Fatalf("expected empty subspec at R3, got %v", subspecStrings(ex.Subspec))
	}
	if !ex.SubspecComplete {
		t.Fatal("empty subspec at R3 must verify as complete (R3 truly unconstrained)")
	}
}

// TestScenario3SubspecAtR2 reproduces Figure 5: for the no-transit
// requirement, R2 must drop the P1-side routes toward P2.
func TestScenario3SubspecAtR2(t *testing.T) {
	sc := scenarios.Scenario3()
	dep := synthScenario(t, sc)
	noTransit := sc.Spec.Block("Req1")
	ex, err := newExplainer(t, sc, dep, noTransit.Reqs).ExplainAll("R2")
	if err != nil {
		t.Fatal(err)
	}
	if ex.Subspec == nil || ex.Subspec.IsEmpty() {
		t.Fatal("expected non-empty subspec at R2")
	}
	joined := strings.Join(subspecStrings(ex.Subspec), "\n")
	// Figure 5's two clauses, in route-propagation order.
	for _, want := range []string{"P1->R1->R2->P2", "P1->R1->R3->R2->P2"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("subspec misses %q:\n%s", want, joined)
		}
	}
}

// TestScenario2SubspecAtR3 reproduces Figure 4: the subspecification
// at R3 for the path-preference requirement shows (1) the preference
// between the two provider routes and (2) the drops of the two
// unlisted routes.
func TestScenario2SubspecAtR3(t *testing.T) {
	sc := scenarios.Scenario2()
	dep := synthScenario(t, sc)
	ex, err := newExplainer(t, sc, dep, nil).ExplainAll("R3")
	if err != nil {
		t.Fatal(err)
	}
	if ex.Subspec == nil {
		t.Fatal("no subspec")
	}
	prefs := ex.Subspec.Preferences()
	if len(prefs) == 0 {
		t.Fatalf("subspec at R3 misses the preference clause:\n%s", strings.Join(subspecStrings(ex.Subspec), "\n"))
	}
	foundPref := false
	for _, p := range prefs {
		if p.String() == "(R3->R1->P1->D1) >> (R3->R2->P2->D1)" {
			foundPref = true
		}
	}
	if !foundPref {
		t.Fatalf("preference clause mismatch: %v", subspecStrings(ex.Subspec))
	}
	joined := strings.Join(subspecStrings(ex.Subspec), "\n")
	// The two unlisted-route drops (Figure 4's forbids, in route
	// order, after suffix generalization: the P1->R1->R2 leg entering
	// R3 covers every prefix routed that way).
	for _, want := range []string{"P1->R1->R2->R3", "P2->R2->R1->R3"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("subspec misses drop %q:\n%s", want, joined)
		}
	}
}

// TestPerVariableExplanation reproduces the paper's one-variable-at-a-
// time strategy (Section 4, observation 2): explaining only the
// catch-all clause's action of R1's export map yields a tiny residual
// pinning it to deny.
func TestPerVariableExplanation(t *testing.T) {
	sc := scenarios.Scenario1()
	dep := synthScenario(t, sc)
	e := newExplainer(t, sc, dep, nil)
	tgt := Target{Map: "R1_to_P1", Seq: 100, Field: FieldAction}
	ex, err := e.Explain("R1", []Target{tgt})
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.HoleVars) != 1 {
		t.Fatalf("hole vars = %d, want 1", len(ex.HoleVars))
	}
	if ex.ResidualSize == 0 || ex.ResidualSize > 40 {
		t.Fatalf("per-variable residual size = %d, want small and nonzero:\n%s", ex.ResidualSize, ex.ResidualText())
	}
	// The catch-all must deny (everything else concrete blocks nothing).
	if !strings.Contains(ex.ResidualText(), "deny") {
		t.Fatalf("residual does not pin the action:\n%s", ex.ResidualText())
	}
	if got := ex.Replaced[tgt.HoleName()]; got != "deny" {
		t.Fatalf("replaced value = %q, want deny", got)
	}
}

// TestRedundantSetNextHop reproduces Scenario 1's redundancy finding:
// the set next-hop parameter is unconstrained — the subspecification
// for it is empty.
func TestRedundantSetNextHop(t *testing.T) {
	sc := scenarios.Scenario1()
	dep := synthScenario(t, sc)
	e := newExplainer(t, sc, dep, nil)
	// The sketch's clause 10 set line (index 0) is the next-hop set.
	tgt := Target{Map: "R1_to_P1", Seq: 10, Field: FieldSet, Index: 0}
	ex, err := e.Explain("R1", []Target{tgt})
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Residual) != 0 {
		t.Fatalf("set next-hop should be unconstrained, residual:\n%s", ex.ResidualText())
	}
	if ex.Subspec == nil || !ex.Subspec.IsEmpty() {
		t.Fatalf("subspec should be empty: %v", subspecStrings(ex.Subspec))
	}
	if !ex.SubspecComplete {
		t.Fatal("empty subspec over an unconstrained variable is complete")
	}
}

func TestReductionFactorLarge(t *testing.T) {
	// The paper's headline quantitative claim: seed specifications of
	// >1000 constraints reduce to "a few constraints".
	sc := scenarios.Scenario3()
	dep := synthScenario(t, sc)
	e := newExplainer(t, sc, dep, nil)
	for _, router := range []string{"R1", "R2", "R3"} {
		ex, err := e.ExplainAll(router)
		if err != nil {
			t.Fatal(err)
		}
		if ex.Reduction() < 5 {
			t.Errorf("%s: reduction factor %.1f too small (%d -> %d)",
				router, ex.Reduction(), ex.SeedSize, ex.SimplifiedSize)
		}
		if ex.Passes < 1 || len(ex.RuleStats) == 0 {
			t.Errorf("%s: rewrite stats not recorded", router)
		}
	}
}

func TestExplainUnknownRouter(t *testing.T) {
	sc := scenarios.Scenario1()
	dep := synthScenario(t, sc)
	e := newExplainer(t, sc, dep, nil)
	if _, err := e.ExplainAll("R9"); err == nil {
		t.Fatal("unknown router should fail")
	}
}

func TestExplainUnconfiguredRouterIsEmpty(t *testing.T) {
	sc := scenarios.Scenario1()
	dep := synthScenario(t, sc)
	delete(dep, "R3") // R3 has no policies anyway
	e := newExplainer(t, sc, dep, nil)
	ex, err := e.ExplainAll("R3")
	if err != nil {
		t.Fatal(err)
	}
	if ex.Subspec == nil || !ex.Subspec.IsEmpty() || !ex.SubspecComplete {
		t.Fatal("unconfigured router must have the empty, complete subspec")
	}
	if len(ex.Residual) != 0 {
		t.Fatal("unconfigured router must have no residual constraints")
	}
}

func TestNewExplainerRejectsHoles(t *testing.T) {
	sc := scenarios.Scenario1()
	if _, err := NewExplainer(sc.Net, sc.Requirements(), sc.Sketch, DefaultOptions()); err == nil {
		t.Fatal("sketch with holes must be rejected")
	}
}

func TestExplanationTextHelpers(t *testing.T) {
	sc := scenarios.Scenario1()
	dep := synthScenario(t, sc)
	e := newExplainer(t, sc, dep, nil)
	ex, err := e.ExplainAll("R1")
	if err != nil {
		t.Fatal(err)
	}
	if ex.ResidualText() == "" {
		t.Fatal("ResidualText empty")
	}
	if spec.PrintBlock(ex.Subspec) == "" {
		t.Fatal("subspec does not print")
	}
	// Lifting disabled.
	opts := DefaultOptions()
	opts.Lift = false
	e2, err := NewExplainer(sc.Net, sc.Requirements(), dep, opts)
	if err != nil {
		t.Fatal(err)
	}
	ex2, err := e2.ExplainAll("R1")
	if err != nil {
		t.Fatal(err)
	}
	if ex2.Subspec != nil {
		t.Fatal("lift disabled should leave Subspec nil")
	}
}

func TestExplainTargetsWithoutConfigFails(t *testing.T) {
	sc := scenarios.Scenario1()
	dep := synthScenario(t, sc)
	delete(dep, "R3")
	e := newExplainer(t, sc, dep, nil)
	_, err := e.Explain("R3", []Target{{Map: "m", Seq: 1, Field: FieldAction}})
	if err == nil {
		t.Fatal("symbolizing an unconfigured router should fail cleanly")
	}
}

func synthOpts() synth.Options { return synth.DefaultOptions() }

func synthWith(sc *scenarios.Scenario, opts synth.Options) (config.Deployment, error) {
	res, err := synth.Synthesize(sc.Net, sc.Sketch, sc.Requirements(), opts)
	if err != nil {
		return nil, err
	}
	return res.Deployment, nil
}
