package sat

import "testing"

// TestPortfolioImportsAcrossShortSolves pins the fix for a sharing
// blind spot: a query that finishes before its first scheduled restart
// used to import nothing — the only import point was the restart
// boundary — so pipelines made of many short solves saw
// SharedImported = 0 at any width. Imports now also run at the top of
// every solve (draining what peers published during earlier solves)
// and via the mid-search cadence poll, so a sequence of short races on
// one team must move clauses in BOTH directions: exports and imports.
func TestPortfolioImportsAcrossShortSolves(t *testing.T) {
	base := NewSolver()
	tr := NewTrace()
	if err := base.SetProof(tr); err != nil {
		t.Fatal(err)
	}
	addRandom3SAT(base, 110, 470, benchSeedHard3SAT)
	p := NewPortfolio(base, 2)
	// Several short queries under shifting assumptions — the explanation
	// pipeline's access pattern. Each query alone is far below the first
	// restart interval of most profiles.
	for v := Var(0); v < 8; v++ {
		p.Solve(MkLit(v, v%2 == 0))
	}
	sum := p.StatsSum()
	if sum.SharedExported == 0 {
		t.Fatal("no worker exported a clause across 8 queries")
	}
	if sum.SharedImported == 0 {
		t.Fatalf("no worker imported a clause across 8 queries (exported %d, rejected %d)",
			sum.SharedExported, sum.SharedRejected)
	}
	// Every import was RUP-gated onto the importer's own trace; worker
	// 0's trace must still check end to end.
	mustCheckTrace(t, tr)
}
