package synth

import (
	"repro/internal/bgp"
	"repro/internal/config"
	"repro/internal/scenarios"
)

// simulate runs the deployment on the scenario's network.
func simulate(sc *scenarios.Scenario, dep config.Deployment) (*bgp.Result, error) {
	return bgp.Simulate(sc.Net, dep)
}
