package synth

import (
	"fmt"

	"repro/internal/bgp"
	"repro/internal/config"
	"repro/internal/logic"
)

// applyMapSymbolic applies a route map to a symbolic route state,
// producing the condition under which the route passes and the state
// it has afterwards (meaningful only under the pass condition). This
// is the symbolic counterpart of config.ApplyRouteMap, with IOS
// first-match semantics: clause i applies iff its matches hold and no
// earlier clause matched; a route matching no clause is denied.
func (e *Encoder) applyMapSymbolic(c *config.Config, mapName string, st *routeState) (logic.Term, *routeState, error) {
	rm, ok := c.RouteMaps[mapName]
	if !ok {
		return nil, nil, fmt.Errorf("synth: router %s has no route-map %q", c.Router, mapName)
	}
	out := st.clone()
	var passDisjuncts []logic.Term
	noneBefore := logic.Term(logic.True)

	for _, cl := range rm.Clauses {
		matchCond, err := e.clauseMatchCond(c, cl, st)
		if err != nil {
			return nil, nil, err
		}
		applied := logic.And(noneBefore, matchCond)

		permitCond, err := e.clausePermitCond(cl)
		if err != nil {
			return nil, nil, err
		}
		passDisjuncts = append(passDisjuncts, logic.And(applied, permitCond))

		// Set lines take effect when the clause applies and permits.
		takes := logic.And(applied, permitCond)
		if err := e.applySetsSymbolic(cl, takes, out); err != nil {
			return nil, nil, err
		}
		noneBefore = logic.And(noneBefore, logic.Not(matchCond))
	}
	return logic.Or(passDisjuncts...), out, nil
}

// clauseMatchCond builds the conjunction of the clause's match lines
// over the state.
func (e *Encoder) clauseMatchCond(c *config.Config, cl *config.Clause, st *routeState) (logic.Term, error) {
	cond := logic.Term(logic.True)
	for _, m := range cl.Matches {
		var this logic.Term
		switch m.Kind {
		case config.MatchPrefixList:
			if m.ValueHole == "" {
				pl, ok := c.PrefixLists[m.PrefixList]
				if !ok {
					return nil, fmt.Errorf("synth: router %s references unknown prefix-list %q", c.Router, m.PrefixList)
				}
				this = logic.NewBool(permitsPrefix(pl, st.prefix))
			} else {
				v, err := e.holeVar(m.ValueHole, func() *logic.Var {
					return logic.NewEnumVar(m.ValueHole, e.vocab.prefixSort)
				})
				if err != nil {
					return nil, err
				}
				this = logic.Eq(v, e.vocab.prefixConst(st.prefix))
			}
		case config.MatchCommunity:
			if m.ValueHole == "" {
				this = st.hasComm(m.Community)
			} else {
				v, err := e.holeVar(m.ValueHole, func() *logic.Var {
					return logic.NewEnumVar(m.ValueHole, e.vocab.commSort)
				})
				if err != nil {
					return nil, err
				}
				var alts []logic.Term
				for _, comm := range e.vocab.communities {
					alts = append(alts, logic.And(logic.Eq(v, e.vocab.commConst(comm)), st.hasComm(comm)))
				}
				this = logic.Or(alts...)
			}
		case config.MatchNextHopIs:
			if st.nextHop == "" {
				this = logic.False // origins have no learned next hop
			} else if m.ValueHole == "" {
				this = logic.NewBool(st.nextHop == m.NextHop)
			} else {
				v, err := e.holeVar(m.ValueHole, func() *logic.Var {
					return logic.NewEnumVar(m.ValueHole, e.vocab.nbrSort)
				})
				if err != nil {
					return nil, err
				}
				this = logic.Eq(v, logic.NewEnum(e.vocab.nbrSort, st.nextHop))
			}
		default:
			return nil, fmt.Errorf("synth: unsupported match kind %v", m.Kind)
		}
		cond = logic.And(cond, this)
	}
	return cond, nil
}

// clausePermitCond builds the condition under which the clause's
// action is permit.
func (e *Encoder) clausePermitCond(cl *config.Clause) (logic.Term, error) {
	if cl.ActionHole == "" {
		return logic.NewBool(cl.Action == config.Permit), nil
	}
	v, err := e.holeVar(cl.ActionHole, func() *logic.Var {
		return logic.NewEnumVar(cl.ActionHole, e.vocab.actionSort)
	})
	if err != nil {
		return nil, err
	}
	return logic.Eq(v, logic.NewEnum(e.vocab.actionSort, actionPermit)), nil
}

// applySetsSymbolic folds the clause's set lines into the state under
// the given application condition.
func (e *Encoder) applySetsSymbolic(cl *config.Clause, takes logic.Term, st *routeState) error {
	for _, s := range cl.Sets {
		switch s.Kind {
		case config.SetLocalPref:
			var val logic.Term
			if s.ParamHole == "" {
				rank, err := EncodeLP(s.LocalPref)
				if err != nil {
					return err
				}
				val = logic.NewInt(rank)
			} else {
				v, err := e.holeVar(s.ParamHole, func() *logic.Var {
					return logic.NewIntVar(s.ParamHole, 0, LPRankHi)
				})
				if err != nil {
					return err
				}
				val = v
			}
			st.lp = logic.Ite(takes, val, st.lp)

		case config.SetCommunity:
			if s.ParamHole == "" {
				st.comms[s.Community] = logic.Or(st.hasComm(s.Community), takes)
			} else {
				v, err := e.holeVar(s.ParamHole, func() *logic.Var {
					return logic.NewEnumVar(s.ParamHole, e.vocab.commSort)
				})
				if err != nil {
					return err
				}
				for _, comm := range e.vocab.communities {
					st.comms[comm] = logic.Or(st.hasComm(comm),
						logic.And(takes, logic.Eq(v, e.vocab.commConst(comm))))
				}
			}

		case config.SetMED:
			// MED does not participate in the symbolic decision
			// process (see the package comment); concrete MED set
			// lines are accepted and ignored here. Symbolic MED
			// parameters still get a variable so explanations can
			// report them (typically as unconstrained).
			if s.ParamHole != "" {
				if _, err := e.holeVar(s.ParamHole, func() *logic.Var {
					return logic.NewIntVar(s.ParamHole, 0, LPRankHi)
				}); err != nil {
					return err
				}
			}

		case config.SetNextHopIP:
			// Cosmetic (does not affect routing outcomes) — exactly
			// the redundancy the paper's Scenario 1 uncovers. A
			// symbolic parameter is declared but never constrained,
			// so the explanation pipeline reports it as free.
			if s.ParamHole != "" {
				if _, err := e.holeVar(s.ParamHole, func() *logic.Var {
					return logic.NewEnumVar(s.ParamHole, e.vocab.ipSort)
				}); err != nil {
					return err
				}
			}

		default:
			return fmt.Errorf("synth: unsupported set kind %v", s.Kind)
		}
	}
	return nil
}

// permitsPrefix evaluates a concrete prefix list against a prefix
// string.
func permitsPrefix(pl *config.PrefixList, prefix string) bool {
	for _, e := range pl.Entries {
		if e.Prefix.String() == prefix {
			return e.Action == config.Permit
		}
	}
	return false
}

// edgePass walks the route state across one edge u -> v: export map at
// u, the eBGP local-pref reset on AS boundaries, then the import map
// at v. It returns the pass condition and the state as seen at v.
func (e *Encoder) edgePass(u, v string, st *routeState) (logic.Term, *routeState, error) {
	pass := logic.Term(logic.True)
	cur := st.clone()

	if cu, ok := e.sketch[u]; ok {
		if n := cu.Neighbor(v); n != nil && n.ExportMap != "" {
			p, next, err := e.applyMapSymbolic(cu, n.ExportMap, cur)
			if err != nil {
				return nil, nil, err
			}
			pass = logic.And(pass, p)
			cur = next
		}
	}
	if e.net.Router(u).AS != e.net.Router(v).AS {
		cur.lp = logic.NewInt(lpRankDefault)
	}
	cur.nextHop = u
	if cv, ok := e.sketch[v]; ok {
		if n := cv.Neighbor(u); n != nil && n.ImportMap != "" {
			p, next, err := e.applyMapSymbolic(cv, n.ImportMap, cur)
			if err != nil {
				return nil, nil, err
			}
			pass = logic.And(pass, p)
			cur = next
		}
	}
	return pass, cur, nil
}

// communityVocabulary exposes the encoder's community vocabulary (for
// tests).
func (e *Encoder) communityVocabulary() []bgp.Community { return e.vocab.communities }
