package synth

import (
	"context"
	"testing"

	"repro/internal/config"
	"repro/internal/scenarios"
	"repro/internal/spec"
)

// scopedScenario synthesizes a scenario and returns its pieces for the
// scoped-encode tests.
func scopedScenario(t *testing.T, sc *scenarios.Scenario) (config.Deployment, []spec.Requirement) {
	t.Helper()
	res, err := Synthesize(sc.Net, sc.Sketch, sc.Requirements(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return res.Deployment, sc.Requirements()
}

// TestScopedEncodeIdentical is the localization claim at the constraint
// level: for every router, symbolizing it and encoding through a
// ScopedBase yields a constraint list element-wise pointer-identical to
// the whole-network encode of the same sketch (terms are hash-consed,
// so pointer equality is structural equality).
func TestScopedEncodeIdentical(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		sc   *scenarios.Scenario
	}{
		{"scenario1", scenarios.Scenario1()},
		{"scenario2", scenarios.Scenario2()},
		{"scenario3", scenarios.Scenario3()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dep, reqs := scopedScenario(t, tc.sc)
			opts := DefaultOptions()
			base, err := NewBase(ctx, tc.sc.Net, dep, opts)
			if err != nil {
				t.Fatal(err)
			}
			sb, err := NewScopedBase(ctx, tc.sc.Net, dep, opts, reqs, base, nil)
			if err != nil {
				t.Fatal(err)
			}
			for name := range dep {
				sym, ok := tc.sc.Sketch[name]
				if !ok || sym.Concrete() {
					continue // nothing to symbolize back to
				}
				sketch := config.Deployment{}
				for n, c := range dep {
					sketch[n] = c
				}
				sketch[name] = sym

				cold, err := NewEncoder(tc.sc.Net, sketch, opts).WithBase(base).EncodeContext(ctx, reqs)
				if err != nil {
					t.Fatal(err)
				}
				scoped, err := NewEncoder(tc.sc.Net, sketch, opts).WithScope(sb).EncodeContext(ctx, reqs)
				if err != nil {
					t.Fatal(err)
				}

				if scoped.Stats.ScopedGroupsCopied == 0 {
					t.Fatalf("%s: scoped encode copied no groups (scope not taken?)", name)
				}
				if len(cold.Constraints) != len(scoped.Constraints) {
					t.Fatalf("%s: %d cold vs %d scoped constraints", name, len(cold.Constraints), len(scoped.Constraints))
				}
				for i := range cold.Constraints {
					if cold.Constraints[i] != scoped.Constraints[i] {
						t.Fatalf("%s: constraint %d differs:\ncold:   %s\nscoped: %s",
							name, i, cold.Constraints[i], scoped.Constraints[i])
					}
				}
				if len(cold.HoleVars) != len(scoped.HoleVars) {
					t.Fatalf("%s: hole vars differ: %d vs %d", name, len(cold.HoleVars), len(scoped.HoleVars))
				}
				for n, v := range cold.HoleVars {
					if scoped.HoleVars[n] != v {
						t.Fatalf("%s: hole var %s differs", name, n)
					}
				}
				cs, ss := cold.Stats, scoped.Stats
				if cs.Constraints != ss.Constraints || cs.ConstraintSize != ss.ConstraintSize ||
					cs.HoleVars != ss.HoleVars || cs.SelVars != ss.SelVars ||
					cs.Candidates != ss.Candidates || cs.TruncatedPaths != ss.TruncatedPaths ||
					cs.ReusedCandidates != ss.ReusedCandidates {
					t.Fatalf("%s: stats differ:\ncold:   %+v\nscoped: %+v", name, cs, ss)
				}

				cp, sp := cold.PathInfos(), scoped.PathInfos()
				if len(cp) != len(sp) {
					t.Fatalf("%s: %d cold vs %d scoped path infos", name, len(cp), len(sp))
				}
				for i := range cp {
					a, b := &cp[i], &sp[i]
					if a.Prefix != b.Prefix || a.Sel != b.Sel || a.LP != b.LP {
						t.Fatalf("%s: path info %d differs", name, i)
					}
					for j := range a.EdgeConds {
						if a.EdgeConds[j] != b.EdgeConds[j] {
							t.Fatalf("%s: path info %d edge cond %d differs", name, i, j)
						}
					}
				}
			}
		})
	}
}

// TestScopedFallsBackOnDifferentReqs pins the safety property: a scope
// recorded for one requirement list silently falls back to the
// whole-network encode for another, producing an identical encoding.
func TestScopedFallsBackOnDifferentReqs(t *testing.T) {
	ctx := context.Background()
	sc := scenarios.Scenario1()
	dep, reqs := scopedScenario(t, sc)
	opts := DefaultOptions()
	sb, err := NewScopedBase(ctx, sc.Net, dep, opts, reqs, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	other := []spec.Requirement{&spec.Forbid{Path: spec.NewPath("P2", spec.Wildcard, "C")}}
	cold, err := NewEncoder(sc.Net, dep, opts).EncodeContext(ctx, other)
	if err != nil {
		t.Fatal(err)
	}
	scoped, err := NewEncoder(sc.Net, dep, opts).WithScope(sb).EncodeContext(ctx, other)
	if err != nil {
		t.Fatal(err)
	}
	if scoped.Stats.ScopedGroupsCopied != 0 || scoped.Stats.ScopedGroupsEncoded != 0 {
		t.Fatal("scope must not be taken for a different requirement list")
	}
	if len(cold.Constraints) != len(scoped.Constraints) {
		t.Fatalf("fallback encode differs: %d vs %d constraints", len(cold.Constraints), len(scoped.Constraints))
	}
	for i := range cold.Constraints {
		if cold.Constraints[i] != scoped.Constraints[i] {
			t.Fatalf("fallback constraint %d differs", i)
		}
	}
}

// TestScopedBaseRejectsHoles pins the concreteness requirement.
func TestScopedBaseRejectsHoles(t *testing.T) {
	sc := scenarios.Scenario1()
	if _, err := NewScopedBase(context.Background(), sc.Net, sc.Sketch, DefaultOptions(), sc.Requirements(), nil, nil); err == nil {
		t.Fatal("a sketch with holes must be rejected")
	}
}
