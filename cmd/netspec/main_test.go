package main

import (
	"io"
	"strings"
	"testing"

	"repro/internal/spec"
	"repro/internal/topology"
)

func TestLintCleanSpec(t *testing.T) {
	net := topology.Paper()
	s, err := spec.Parse(`
Req1 { !(P1->...->P2) }
Req2 { (C->R3->R1->P1->...->D1) >> (C->R3->R2->P2->...->D1) }
Req3 { +(P1->R1->R3->C) }`)
	if err != nil {
		t.Fatal(err)
	}
	if got := lint(s, net, io.Discard); got != 0 {
		t.Fatalf("clean spec produced %d warnings", got)
	}
}

func TestLintFindsProblems(t *testing.T) {
	net := topology.Paper()
	s, err := spec.Parse(`
Bad {
    !(P9->...->P2)
    (C->R3->P1) >> (C->R3->R1->P1)
    +(C->...->R1)
}`)
	if err != nil {
		t.Fatal(err)
	}
	got := lint(s, net, io.Discard)
	// P9 unknown; R3-P1 link nonexistent; preference/allow destinations
	// P1 (ok, has prefix) and R1 (no prefix).
	if got < 3 {
		t.Fatalf("lint found only %d problems", got)
	}
}

// TestRunExitCodes pins the shared cmd convention: unknown scenario is
// a usage error (2); unreadable input, parse errors, and lint warnings
// are operational failures (1).
func TestRunExitCodes(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-scenario", "nope"}, strings.NewReader(""), &out, &errOut); code != 2 {
		t.Fatalf("unknown scenario: exit %d, want 2 (stderr: %s)", code, errOut.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-spec", "/no/such/file"}, strings.NewReader(""), &out, &errOut); code != 1 {
		t.Fatalf("missing spec file: exit %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "netspec:") {
		t.Fatalf("error not prefixed on stderr: %q", errOut.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run(nil, strings.NewReader("Req { this is not a spec"), &out, &errOut); code != 1 {
		t.Fatalf("parse error: exit %d, want 1 (stderr: %s)", code, errOut.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-no-such-flag"}, strings.NewReader(""), &out, &errOut); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}

// TestRunFormatsStdin pins the success path: a valid spec from stdin is
// reprinted to stdout with exit 0.
func TestRunFormatsStdin(t *testing.T) {
	var out, errOut strings.Builder
	in := strings.NewReader("Req1 { !(P1->...->P2) }")
	if code := run(nil, in, &out, &errOut); code != 0 {
		t.Fatalf("format: exit %d (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(out.String(), "Req1") {
		t.Fatalf("formatted output missing block: %q", out.String())
	}
}
