package netgen

import (
	"testing"

	"repro/internal/config"
	"repro/internal/synth"
	"repro/internal/topology"
	"repro/internal/verify"
)

func TestNoTransitOnPaperTopology(t *testing.T) {
	wl, err := NoTransit("paper", topology.Paper())
	if err != nil {
		t.Fatal(err)
	}
	if len(wl.Sketch) != 2 { // R1 and R2 are provider-adjacent
		t.Fatalf("sketch covers %d routers, want 2", len(wl.Sketch))
	}
	res, err := synth.Synthesize(wl.Net, wl.Sketch, wl.Requirements(), synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ok, err := verify.Satisfies(wl.Net, res.Deployment, wl.Requirements())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("synthesized no-transit workload violates its spec")
	}
}

func TestGridWorkloadSynthesizes(t *testing.T) {
	wl, err := Grid(3, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	opts := synth.DefaultOptions()
	opts.MaxPathLen = 7
	opts.MaxCandidatesPerNode = 8
	res, err := synth.Synthesize(wl.Net, wl.Sketch, wl.Requirements(), opts)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := verify.Satisfies(wl.Net, res.Deployment, wl.Requirements())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("grid workload violates its spec after synthesis")
	}
}

func TestRandomWorkloadDeterministic(t *testing.T) {
	a, err := Random(8, 2.5, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(8, 2.5, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Sketch) != len(b.Sketch) {
		t.Fatal("same seed should give same sketch shape")
	}
	for r := range a.Sketch {
		if _, ok := b.Sketch[r]; !ok {
			t.Fatalf("sketch router sets differ at %s", r)
		}
	}
}

func TestWithPreferenceAddsTemplates(t *testing.T) {
	wl, err := Grid(3, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(wl.Spec.Blocks) != 2 {
		t.Fatalf("spec blocks = %d, want 2", len(wl.Spec.Blocks))
	}
	// Customer-adjacent router (R0_0) must carry selector maps.
	c, ok := wl.Sketch["R0_0"]
	if !ok {
		t.Fatal("customer-adjacent router not sketched")
	}
	if len(c.RouteMapNames()) == 0 {
		t.Fatal("no selector maps at the customer-adjacent router")
	}
	// Provider-adjacent routers carry both export and tagger maps.
	p1r := wl.Sketch["R2_1"]
	if p1r == nil || len(p1r.RouteMapNames()) < 2 {
		t.Fatalf("provider-adjacent router lacks templates: %v", p1r.RouteMapNames())
	}
}

func TestFatTreeWorkload(t *testing.T) {
	wl, err := FatTree(2, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := wl.Net.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(wl.Sketch) == 0 {
		t.Fatal("empty sketch")
	}
}

func TestMissingExternals(t *testing.T) {
	bare := topology.New()
	bare.AddRouter("R0", 100)
	if _, err := NoTransit("bare", bare); err == nil {
		t.Fatal("topology without providers should fail")
	}
}

// TestPopulate pins the scale-workload contract: after Populate every
// internal router has a config, sketch routers are untouched, and the
// added maps are the neutral permit-all shape (one concrete permit
// clause per internal-neighbor import, no holes).
func TestPopulate(t *testing.T) {
	wl, err := Grid(4, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	sketched := make(map[string]int)
	for name, c := range wl.Sketch {
		sketched[name] = len(c.RouteMapNames())
	}
	Populate(wl)
	for _, r := range wl.Net.Internals() {
		c, ok := wl.Sketch[r.Name]
		if !ok {
			t.Fatalf("router %s still unconfigured after Populate", r.Name)
		}
		if n, was := sketched[r.Name]; was {
			if got := len(c.RouteMapNames()); got != n {
				t.Errorf("sketch router %s changed: %d maps, had %d", r.Name, got, n)
			}
			continue
		}
		if !c.Concrete() {
			t.Errorf("populated router %s has holes", r.Name)
		}
		if len(c.Neighbors) == 0 {
			t.Errorf("populated router %s has no neighbor bindings", r.Name)
		}
		for _, rm := range c.RouteMaps {
			if len(rm.Clauses) != 1 || rm.Clauses[0].Action != config.Permit ||
				len(rm.Clauses[0].Matches) != 0 || len(rm.Clauses[0].Sets) != 0 {
				t.Errorf("router %s map %s is not a bare permit-all", r.Name, rm.Name)
			}
		}
	}
}
