// Package bgp implements the BGP routing substrate: route
// announcements with the standard attributes, the BGP decision
// process, and a synchronous route-propagation engine that runs a
// network of policy-applying routers to a stable routing state.
//
// The model follows the abstraction NetComplete uses: routers exchange
// per-prefix announcements over topology edges; import and export
// policies (route maps, supplied by internal/config) transform or drop
// announcements; each router selects one best route per prefix via the
// decision process. Router-level propagation paths are tracked so the
// verifier can check path-shaped intents ("no path P1->...->P2")
// directly against the converged state.
package bgp

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
)

// Community is a BGP community tag, written "high:low" (e.g. "100:2").
type Community struct {
	High, Low uint16
}

// ParseCommunity parses "high:low".
func ParseCommunity(s string) (Community, error) {
	var h, l int
	if _, err := fmt.Sscanf(s, "%d:%d", &h, &l); err != nil {
		return Community{}, fmt.Errorf("bgp: bad community %q: %v", s, err)
	}
	if h < 0 || h > 0xffff || l < 0 || l > 0xffff {
		return Community{}, fmt.Errorf("bgp: community %q out of range", s)
	}
	return Community{High: uint16(h), Low: uint16(l)}, nil
}

// MustCommunity parses a community or panics; for tests and builders.
func MustCommunity(s string) Community {
	c, err := ParseCommunity(s)
	if err != nil {
		panic(err)
	}
	return c
}

// String renders the community.
func (c Community) String() string { return fmt.Sprintf("%d:%d", c.High, c.Low) }

// DefaultLocalPref is the local preference assigned to routes that no
// policy has touched, per BGP convention.
const DefaultLocalPref = 100

// Route is one BGP announcement as seen at some router. Routes are
// treated as immutable: policies and the engine copy before modifying.
type Route struct {
	// Prefix is the destination address block.
	Prefix netip.Prefix
	// Origin is the node that originated the announcement.
	Origin string
	// Path is the router-level propagation path, origin first and the
	// current holder last. The forwarding path of traffic is its
	// reverse.
	Path []string
	// ASPath is the AS-level path, origin AS first.
	ASPath []int
	// NextHop is the neighbor the route was learned from ("" on the
	// originator).
	NextHop string
	// LocalPref ranks routes within a router; higher wins.
	LocalPref int
	// MED breaks ties between routes from the same neighboring AS;
	// lower wins.
	MED int
	// Communities carries the route's community tags.
	Communities map[Community]bool
}

// Originate creates the self-announcement of prefix at the named node
// in the given AS.
func Originate(node string, as int, prefix netip.Prefix) *Route {
	return &Route{
		Prefix:      prefix,
		Origin:      node,
		Path:        []string{node},
		ASPath:      []int{as},
		LocalPref:   DefaultLocalPref,
		Communities: map[Community]bool{},
	}
}

// Clone returns a deep copy of the route.
func (r *Route) Clone() *Route {
	cp := *r
	cp.Path = append([]string(nil), r.Path...)
	cp.ASPath = append([]int(nil), r.ASPath...)
	cp.Communities = make(map[Community]bool, len(r.Communities))
	for c := range r.Communities {
		cp.Communities[c] = true
	}
	return &cp
}

// HasCommunity reports whether the route carries the tag.
func (r *Route) HasCommunity(c Community) bool { return r.Communities[c] }

// PassedThrough reports whether the propagation path visits node.
func (r *Route) PassedThrough(node string) bool {
	for _, n := range r.Path {
		if n == node {
			return true
		}
	}
	return false
}

// communityList renders the communities sorted, for String.
func (r *Route) communityList() string {
	if len(r.Communities) == 0 {
		return ""
	}
	cs := make([]string, 0, len(r.Communities))
	for c := range r.Communities {
		cs = append(cs, c.String())
	}
	sort.Strings(cs)
	return " comm=" + strings.Join(cs, ",")
}

// String renders the route for diagnostics.
func (r *Route) String() string {
	return fmt.Sprintf("%s via %s lp=%d med=%d path=%s%s",
		r.Prefix, strings.Join(r.Path, "<-"), r.LocalPref, r.MED,
		asPathString(r.ASPath), r.communityList())
}

func asPathString(asp []int) string {
	parts := make([]string, len(asp))
	for i, a := range asp {
		parts[i] = fmt.Sprintf("%d", a)
	}
	return strings.Join(parts, " ")
}

// Better reports whether r is preferred over s by the BGP decision
// process: higher local-pref, then shorter AS path, then lower MED,
// then shorter router-level propagation path (standing in for the
// prefer-lowest-IGP-metric step), then a deterministic lexicographic
// tie-break. Both routes must be for the same prefix.
func Better(r, s *Route) bool {
	if r.LocalPref != s.LocalPref {
		return r.LocalPref > s.LocalPref
	}
	if len(r.ASPath) != len(s.ASPath) {
		return len(r.ASPath) < len(s.ASPath)
	}
	if r.MED != s.MED {
		return r.MED < s.MED
	}
	if len(r.Path) != len(s.Path) {
		return len(r.Path) < len(s.Path)
	}
	// Deterministic tie-break on the propagation path.
	rp, sp := strings.Join(r.Path, ","), strings.Join(s.Path, ",")
	return rp < sp
}

// Best selects the most preferred route from candidates, or nil.
func Best(candidates []*Route) *Route {
	var best *Route
	for _, c := range candidates {
		if best == nil || Better(c, best) {
			best = c
		}
	}
	return best
}
