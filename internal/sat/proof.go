package sat

import (
	"fmt"
	"io"
)

// Proof logging.
//
// Every localized-explanation verdict the pipeline emits ultimately
// rests on an Unsat answer from this solver, so the solver can record a
// DRAT-style derivation trace that an independent checker
// (internal/drat) re-validates by reverse unit propagation: each learnt
// clause must be a RUP consequence of the clauses that preceded it, and
// the final lemma — the empty clause, or the negation of the assumption
// core — certifies the verdict itself.
//
// The trace records three kinds of operations, in solver order:
//
//   - ProofInput: a clause handed to AddClause, exactly as given
//     (before any simplification). The inputs are the formula the
//     verdict is about.
//   - ProofLearn: a clause the solver derived — a 1UIP learnt clause
//     (including learnt units, which the solver itself keeps only on
//     the trail), the empty clause on a top-level conflict, or the
//     negated assumption core on an Unsat-under-assumptions answer.
//   - ProofDelete: a learnt clause dropped by reduceDB, so the checker
//     can keep its clause database as small as the solver's.
//
// Logging is observation only: it never changes the search, so an
// explanation run is byte-identical with and without a proof attached.

// ProofOpKind discriminates trace operations.
type ProofOpKind uint8

const (
	// ProofInput records a caller-added clause (pre-simplification).
	ProofInput ProofOpKind = iota
	// ProofLearn records a clause derived by the solver.
	ProofLearn
	// ProofDelete records a learnt clause deleted by reduceDB.
	ProofDelete
)

// String names the operation kind.
func (k ProofOpKind) String() string {
	switch k {
	case ProofInput:
		return "input"
	case ProofLearn:
		return "learn"
	default:
		return "delete"
	}
}

// ProofOp is one trace operation. Lits is owned by the trace and must
// not be mutated.
type ProofOp struct {
	Kind ProofOpKind
	Lits []Lit
}

// ProofWriter receives the solver's proof trace. Implementations must
// copy lits if they retain them beyond the call: the solver may pass
// scratch slices.
type ProofWriter interface {
	Proof(kind ProofOpKind, lits []Lit)
}

// ProofCloner is implemented by proof writers that can fork themselves
// when the solver is cloned: the clone's trace must replay everything
// the original recorded, because the clone inherits the original's
// learnt clauses. Solver.Clone drops the proof writer of a writer that
// cannot fork.
type ProofCloner interface {
	CloneProof() ProofWriter
}

// Trace is the standard in-memory ProofWriter: an append-only log of
// proof operations. A Trace is not safe for concurrent use (it is
// driven by exactly one solver, which itself is single-threaded).
type Trace struct {
	ops     []ProofOp
	inputs  int
	learns  int
	deletes int
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Proof implements ProofWriter, copying lits.
func (t *Trace) Proof(kind ProofOpKind, lits []Lit) {
	cp := make([]Lit, len(lits))
	copy(cp, lits)
	t.ops = append(t.ops, ProofOp{Kind: kind, Lits: cp})
	switch kind {
	case ProofInput:
		t.inputs++
	case ProofLearn:
		t.learns++
	default:
		t.deletes++
	}
}

// Len reports how many operations have been recorded.
func (t *Trace) Len() int { return len(t.ops) }

// Inputs reports how many input clauses have been recorded.
func (t *Trace) Inputs() int { return t.inputs }

// Learns reports how many derived clauses have been recorded.
func (t *Trace) Learns() int { return t.learns }

// Deletes reports how many deletions have been recorded.
func (t *Trace) Deletes() int { return t.deletes }

// Op returns the i-th recorded operation. The returned Lits slice is
// owned by the trace.
func (t *Trace) Op(i int) ProofOp { return t.ops[i] }

// Snapshot returns a copy of the operation log. The Lits slices are
// shared (they are immutable once recorded).
func (t *Trace) Snapshot() []ProofOp {
	return append([]ProofOp(nil), t.ops...)
}

// Clone forks the trace: the copy replays every recorded operation and
// then diverges independently.
func (t *Trace) Clone() *Trace {
	return &Trace{
		// Copy with exact length so appends on either side never alias.
		ops:     append(make([]ProofOp, 0, len(t.ops)), t.ops...),
		inputs:  t.inputs,
		learns:  t.learns,
		deletes: t.deletes,
	}
}

// CloneProof implements ProofCloner.
func (t *Trace) CloneProof() ProofWriter { return t.Clone() }

// WriteDRAT renders the trace in a DRAT-style textual form: inputs as
// "i ..." lines (an extension carrying the original CNF alongside the
// proof), derived clauses as plain clause lines, deletions as "d ..."
// lines, all zero-terminated with 1-based DIMACS literals.
func (t *Trace) WriteDRAT(w io.Writer) error {
	for _, op := range t.ops {
		prefix := ""
		switch op.Kind {
		case ProofInput:
			prefix = "i "
		case ProofDelete:
			prefix = "d "
		}
		if _, err := io.WriteString(w, prefix); err != nil {
			return err
		}
		for _, l := range op.Lits {
			v := int(l.Var()) + 1
			if !l.IsPos() {
				v = -v
			}
			if _, err := fmt.Fprintf(w, "%d ", v); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "0\n"); err != nil {
			return err
		}
	}
	return nil
}

// SetProof attaches a proof writer to the solver. It must be called on
// a pristine solver — before any clause is added — because the trace
// must contain every input clause for the checker to reproduce the
// solver's derivations; attaching mid-life would leave the checker
// blind to the clauses already in the database.
func (s *Solver) SetProof(w ProofWriter) error {
	if len(s.clauses) > 0 || len(s.learnts) > 0 || len(s.trail) > 0 || !s.ok {
		return fmt.Errorf("sat: SetProof on a solver that already holds clauses")
	}
	s.proof = w
	return nil
}

// Proof returns the attached proof writer (nil when logging is off).
func (s *Solver) Proof() ProofWriter { return s.proof }

// logProof forwards one operation to the attached writer.
func (s *Solver) logProof(kind ProofOpKind, lits []Lit) {
	if s.proof != nil {
		s.proof.Proof(kind, lits)
	}
}

// logEmptyClause records the final empty-clause lemma exactly once:
// several paths can discover top-level unsatisfiability (AddClause
// simplification, top-level propagation, a level-0 conflict in search)
// and re-deriving the same verdict must not duplicate the terminal
// step.
func (s *Solver) logEmptyClause() {
	if s.proof == nil || s.emptyLogged {
		return
	}
	s.emptyLogged = true
	s.proof.Proof(ProofLearn, nil)
}
