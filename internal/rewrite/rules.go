// Package rewrite implements the constraint-simplification procedure
// the paper builds its explanation pipeline on (step 3 of the
// subspecification generation flow, following Nazari et al., OOPSLA
// 2023): a set of fifteen rewrite rules applied iteratively to a "seed
// specification" until no rule applies, yielding a minimal constraint
// that captures exactly what the symbolic configuration variables must
// satisfy.
//
// The paper cites two of the fifteen rules explicitly:
//
//	False → a  ≡  True        (rule S7 below)
//	a ∨ ¬a     ≡  True        (rule S6 below)
//
// The full rule set here covers constant folding, boolean identity and
// annihilator laws, complement and absorption laws, implication /
// bi-implication / if-then-else simplification, equality and ordering
// evaluation over literals, domain-aware comparison folding, negation
// normalization, and equality propagation within conjunctions. Every
// rule is semantics-preserving; the property tests in this package
// verify preservation against both brute-force evaluation and the SMT
// solver.
package rewrite

// RuleName identifies one of the fifteen simplification rules, for
// reporting which rules fired during a simplification run.
type RuleName string

// The fifteen rules. The experiment harness reports per-rule fire
// counts, reproducing the flavor of the paper's discussion about which
// simplifications carry the reduction.
const (
	RuleConstFold     RuleName = "S1:const-fold"      // evaluate operators over literals
	RuleDoubleNeg     RuleName = "S2:double-negation" // !!a -> a
	RuleNegConst      RuleName = "S3:neg-const"       // !true -> false, !false -> true
	RuleAndIdentity   RuleName = "S4:and-identity"    // true&a -> a, false&a -> false, dedup, flatten
	RuleOrIdentity    RuleName = "S5:or-identity"     // false|a -> a, true|a -> true, dedup, flatten
	RuleComplement    RuleName = "S6:complement"      // a & !a -> false, a | !a -> true
	RuleImplies       RuleName = "S7:implies"         // false=>a -> true, true=>a -> a, a=>true -> true, a=>false -> !a, a=>a -> true
	RuleIff           RuleName = "S8:iff"             // a<=>a -> true, a<=>true -> a, a<=>false -> !a, a<=>!a -> false
	RuleIte           RuleName = "S9:ite"             // ite(true,a,b) -> a, ite(c,a,a) -> a, ite(c,true,false) -> c, ...
	RuleEqRefl        RuleName = "S10:eq-reflexive"   // t = t -> true, t != t -> false
	RuleEqConst       RuleName = "S11:eq-const"       // distinct literals: c1 = c2 -> false
	RuleDomainFold    RuleName = "S12:domain-fold"    // x <= hi(x) -> true, x < lo(x) -> false, ...
	RuleAbsorption    RuleName = "S13:absorption"     // a & (a|b) -> a, a | (a&b) -> a
	RuleEqPropagation RuleName = "S14:eq-propagation" // (x = c) & phi -> (x = c) & phi[c/x]
	RuleNegNormal     RuleName = "S15:neg-normal"     // !(a = b) -> a != b, !(a < b) -> a >= b, ...
)

// AllRules lists the fifteen rules in order, for reports.
var AllRules = []RuleName{
	RuleConstFold, RuleDoubleNeg, RuleNegConst, RuleAndIdentity,
	RuleOrIdentity, RuleComplement, RuleImplies, RuleIff, RuleIte,
	RuleEqRefl, RuleEqConst, RuleDomainFold, RuleAbsorption,
	RuleEqPropagation, RuleNegNormal,
}

// ruleDescriptions gives a one-line statement of each rule for the
// command-line tools' --explain-rules output.
var ruleDescriptions = map[RuleName]string{
	RuleConstFold:     "evaluate any operator whose arguments are all literals",
	RuleDoubleNeg:     "!!a => a",
	RuleNegConst:      "!true => false ; !false => true",
	RuleAndIdentity:   "drop true conjuncts, collapse on false, flatten nested &, remove duplicates",
	RuleOrIdentity:    "drop false disjuncts, collapse on true, flatten nested |, remove duplicates",
	RuleComplement:    "a & !a => false ; a | !a => true",
	RuleImplies:       "false=>a => true ; true=>a => a ; a=>true => true ; a=>false => !a ; a=>a => true",
	RuleIff:           "a<=>a => true ; a<=>true => a ; a<=>false => !a ; a<=>!a => false",
	RuleIte:           "ite(true,a,b) => a ; ite(false,a,b) => b ; ite(c,a,a) => a ; ite(c,true,false) => c",
	RuleEqRefl:        "t=t => true ; t!=t => false (any sort)",
	RuleEqConst:       "c1=c2 => false and c1!=c2 => true for distinct literals",
	RuleDomainFold:    "fold comparisons decided by a variable's declared domain",
	RuleAbsorption:    "a & (a|b) => a ; a | (a&b) => a",
	RuleEqPropagation: "substitute x:=c into sibling conjuncts when x=c is a conjunct",
	RuleNegNormal:     "push negation through comparisons: !(a<b) => a>=b etc.",
}

// Describe returns the one-line description of a rule.
func Describe(r RuleName) string { return ruleDescriptions[r] }
