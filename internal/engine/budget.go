// Package engine provides the session layer of the explanation stack:
// a shared encoding cache over the synthesizer's encoder, a unified
// resource budget plumbed down to the SAT search, and merged
// statistics across all layers.
//
// The explanation workflows in internal/core are many small queries
// against one deployment — explain every router, explain one variable
// at a time, validate a subspecification — and each query re-encodes a
// deployment that is almost entirely unchanged. A Session encodes the
// concrete deployment's invariant structure once (the base encode) and
// derives each query's partially-symbolic seed specification from it,
// so a whole-network report performs one base encode plus cheap
// derivations instead of O(routers) full encodes.
package engine

import (
	"context"
	"time"
)

// DefaultMaxModels is the model-enumeration cap used when a Budget
// does not set MaxModels (the sufficiency check of the lifting step
// enumerates subspecification models up to this bound).
const DefaultMaxModels = 512

// Budget bounds the resources an explanation query may spend, across
// every layer of the stack. The zero value means unlimited (except for
// model enumeration, which falls back to DefaultMaxModels). It
// replaces the ad-hoc per-layer knobs (the raw SAT conflict budget and
// the lifting model cap) with one value plumbed down from the top.
type Budget struct {
	// Deadline is the wall-clock instant after which queries abort
	// with context.DeadlineExceeded. Zero means no deadline.
	Deadline time.Time
	// MaxConflicts bounds the conflicts any single SAT solve may
	// spend before returning Unknown. Zero or negative means no bound.
	MaxConflicts int64
	// MaxModels bounds model enumeration during sufficiency checking.
	// Zero means DefaultMaxModels.
	MaxModels int
	// SatWorkers is the number of diversified SAT search workers each
	// solver races per query (smt.WithSatWorkers). Zero or one means a
	// single plain search; reports are byte-identical at any value
	// because the pipeline consumes verdicts, never search traces.
	SatWorkers int
}

// SatWorkerCount returns the effective worker count (at least 1).
func (b Budget) SatWorkerCount() int {
	if b.SatWorkers > 1 {
		return b.SatWorkers
	}
	return 1
}

// Apply derives a context carrying the budget's deadline. The returned
// cancel function must be called to release the deadline timer; when
// the budget has no deadline, ctx is returned unchanged with a no-op
// cancel.
func (b Budget) Apply(ctx context.Context) (context.Context, context.CancelFunc) {
	if b.Deadline.IsZero() {
		return ctx, func() {}
	}
	return context.WithDeadline(ctx, b.Deadline)
}

// ModelCap returns the effective model-enumeration bound.
func (b Budget) ModelCap() int {
	if b.MaxModels > 0 {
		return b.MaxModels
	}
	return DefaultMaxModels
}

// Stats merges the work counters of every layer touched by a session:
// encoding effort (and how much of it the cache absorbed) plus
// SAT-level solving effort reported back by the explanation pipeline.
type Stats struct {
	// BaseEncodes counts whole-network (invariant-structure) encodes:
	// the shared base, plus the scoped recording when a report sweep
	// prepares one (PrepareScoped). A session performs at most one of
	// each unless an attempt fails.
	BaseEncodes int
	// Encodes counts derived (per-query) encodes actually performed.
	Encodes int
	// CacheHits counts queries answered from the encoding cache.
	CacheHits int
	// Candidates and ReusedCandidates total the candidate paths built
	// by derived encodes and how many of them were copied from the
	// base instead of re-derived.
	Candidates       int
	ReusedCandidates int
	// EncodeTime is the wall-clock time spent encoding (base and
	// derived, cache hits excluded).
	EncodeTime time.Duration
	// ScopedEncodes counts derived encodes answered by the cone-scoped
	// splice path (Encoder.WithScope): recorded constraint groups copied
	// verbatim, only the symbolized router's cone re-derived.
	// ScopedGroupsCopied and ScopedGroupsEncoded total the constraint
	// groups spliced versus re-encoded across those encodes — their
	// ratio is the measured locality of the deployment's explanations.
	ScopedEncodes       int
	ScopedGroupsCopied  int
	ScopedGroupsEncoded int
	// Solves, Conflicts, Propagations, Decisions, and Learnt total the
	// SAT-level effort reported via AddSolverStats. Every solver the
	// pipeline runs — including per-worker clones and pooled warm
	// solvers — is harvested into these, so no path drops its counts.
	Solves       uint64
	Conflicts    uint64
	Propagations uint64
	Decisions    uint64
	Learnt       uint64
	// BinPropagations is the subset of Propagations served by the
	// solver's dedicated binary implication lists; Restarts and
	// MinimizedLits total search restarts and the literals deleted
	// from learnt clauses by minimization; LBDSum totals learnt-clause
	// glue (LBDSum/Learnt is the mean LBD); LBDHist buckets learnt
	// clauses by glue (bucket i = LBD i+1, last bucket absorbs
	// overflow) — fixed-size array, so serialized order is stable.
	BinPropagations uint64
	Restarts        uint64
	BlockedRestarts uint64
	MinimizedLits   uint64
	LBDSum          uint64
	LBDHist         [8]uint64
	// CoreLearnts, MidLearnts, and LocalLearnts are the peak sizes of
	// the tiered learnt-clause database observed across every solver
	// harvested into the session.
	CoreLearnts  int
	MidLearnts   int
	LocalLearnts int
	// SatRaces counts portfolio races that reached a verdict; SatWins
	// histograms them by winning worker index (the last bucket absorbs
	// overflow). Both stay zero at SatWorkers <= 1.
	SatRaces uint64
	SatWins  [8]uint64
	// SharedExported, SharedImported, and SharedRejected total the
	// clause-sharing traffic between portfolio workers: learnts
	// published to the pool, peer clauses admitted at restart
	// boundaries (after the importer's own RUP re-check), and peer
	// clauses refused (elimination conflicts or failed checks).
	SharedExported uint64
	SharedImported uint64
	SharedRejected uint64
	// InprocessRounds and InprocessDeleted total inprocessing activity
	// (vivification, subsumption, bounded variable elimination) across
	// every harvested solver.
	InprocessRounds  uint64
	InprocessDeleted uint64
	// WarmSolverHits and WarmSolverMisses count solver checkouts
	// answered from the session's warm pool versus built cold.
	// WarmSolverDropped counts checkins refused because the solver was
	// not pristine (active guarded assertions left by a cancelled or
	// errored query); WarmSolverEvicted counts pooled solvers displaced
	// by the pool's size cap or a Trim.
	WarmSolverHits    int
	WarmSolverMisses  int
	WarmSolverDropped int
	WarmSolverEvicted int
	// SimplifyHits counts seed simplifications answered from the
	// session's per-seed outcome cache without touching the normalizer;
	// SimplifyEntries is the cache's current size and SimplifyEvictions
	// counts entries displaced by its size cap.
	SimplifyHits      int
	SimplifyEntries   int
	SimplifyEvictions int
	// ReportCacheHits and ReportCacheMisses count lookups in the
	// cross-deployment report cache (per-router lift artifacts reused
	// by delta re-explanation). Cumulative across the session chain:
	// successor sessions share one cache. ReportCacheEvictions counts
	// entries displaced by the cache's byte cap; ReportCacheBytes is
	// the cache's current accounted size (a gauge).
	ReportCacheHits      int
	ReportCacheMisses    int
	ReportCacheEvictions int
	ReportCacheBytes     int64
	// NormCacheHits and NormCacheMisses count subterm lookups in the
	// session's shared normal-form cache (the rewrite engine's
	// memoization table); NormCacheEntries is the number of distinct
	// subterm normal forms it holds. A high hit rate means repeat
	// queries and sibling routers are reusing one another's
	// normalization work.
	NormCacheHits    uint64
	NormCacheMisses  uint64
	NormCacheEntries int
	// LiftQueries counts individual lift-stage SMT queries; LiftP50 and
	// LiftP95 are their latency percentiles (nearest-rank over every
	// recorded query).
	LiftQueries int
	LiftP50     time.Duration
	LiftP95     time.Duration
	// ProofChecks counts Unsat verdicts re-validated by the independent
	// DRAT checker; ProofOps and ProofLemmas total the trace operations
	// and solver-derived lemmas it consumed; ProofTime is the wall-clock
	// time it spent. CoreLits and ShrunkCoreLits total assumption-core
	// clause sizes before and after deletion-based minimization — their
	// ratio is the core shrink factor.
	ProofChecks    int
	ProofOps       int
	ProofLemmas    int
	ProofTime      time.Duration
	CoreLits       int
	ShrunkCoreLits int
}

// Add folds o into s for cross-session aggregation (a session pool
// summing retired and live sessions into one snapshot). Counters are
// summed; the tier gauges (peak learnt-database sizes) and cache-size
// gauges take the max, since they are point-in-time peaks rather than
// flows. The lift percentiles are zeroed: they cannot be combined from
// two summaries — aggregators recompute them over the merged sample
// windows (Session.LiftSamples).
func (s *Stats) Add(o Stats) {
	s.BaseEncodes += o.BaseEncodes
	s.Encodes += o.Encodes
	s.CacheHits += o.CacheHits
	s.Candidates += o.Candidates
	s.ReusedCandidates += o.ReusedCandidates
	s.EncodeTime += o.EncodeTime
	s.ScopedEncodes += o.ScopedEncodes
	s.ScopedGroupsCopied += o.ScopedGroupsCopied
	s.ScopedGroupsEncoded += o.ScopedGroupsEncoded
	s.Solves += o.Solves
	s.Conflicts += o.Conflicts
	s.Propagations += o.Propagations
	s.Decisions += o.Decisions
	s.Learnt += o.Learnt
	s.BinPropagations += o.BinPropagations
	s.Restarts += o.Restarts
	s.BlockedRestarts += o.BlockedRestarts
	s.MinimizedLits += o.MinimizedLits
	s.LBDSum += o.LBDSum
	for i := range o.LBDHist {
		s.LBDHist[i] += o.LBDHist[i]
	}
	if o.CoreLearnts > s.CoreLearnts {
		s.CoreLearnts = o.CoreLearnts
	}
	if o.MidLearnts > s.MidLearnts {
		s.MidLearnts = o.MidLearnts
	}
	if o.LocalLearnts > s.LocalLearnts {
		s.LocalLearnts = o.LocalLearnts
	}
	s.SatRaces += o.SatRaces
	for i := range o.SatWins {
		s.SatWins[i] += o.SatWins[i]
	}
	s.SharedExported += o.SharedExported
	s.SharedImported += o.SharedImported
	s.SharedRejected += o.SharedRejected
	s.InprocessRounds += o.InprocessRounds
	s.InprocessDeleted += o.InprocessDeleted
	s.WarmSolverHits += o.WarmSolverHits
	s.WarmSolverMisses += o.WarmSolverMisses
	s.WarmSolverDropped += o.WarmSolverDropped
	s.WarmSolverEvicted += o.WarmSolverEvicted
	s.SimplifyHits += o.SimplifyHits
	if o.SimplifyEntries > s.SimplifyEntries {
		s.SimplifyEntries = o.SimplifyEntries
	}
	s.SimplifyEvictions += o.SimplifyEvictions
	s.ReportCacheHits += o.ReportCacheHits
	s.ReportCacheMisses += o.ReportCacheMisses
	s.ReportCacheEvictions += o.ReportCacheEvictions
	if o.ReportCacheBytes > s.ReportCacheBytes {
		s.ReportCacheBytes = o.ReportCacheBytes
	}
	s.NormCacheHits += o.NormCacheHits
	s.NormCacheMisses += o.NormCacheMisses
	if o.NormCacheEntries > s.NormCacheEntries {
		s.NormCacheEntries = o.NormCacheEntries
	}
	s.LiftQueries += o.LiftQueries
	s.LiftP50 = 0
	s.LiftP95 = 0
	s.ProofChecks += o.ProofChecks
	s.ProofOps += o.ProofOps
	s.ProofLemmas += o.ProofLemmas
	s.ProofTime += o.ProofTime
	s.CoreLits += o.CoreLits
	s.ShrunkCoreLits += o.ShrunkCoreLits
}
