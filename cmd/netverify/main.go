// netverify checks a deployment against a specification by BGP
// simulation, optionally under single-link failure injection.
//
//	netverify -scenario scenario2            # synthesize, then verify
//	netverify -scenario scenario2 -failures  # also check preference fallbacks
//	netverify -scenario scenario1 -rib       # dump the converged routing state
//	netverify -scenario scenario1 -proof     # explanation report, every Unsat proof-checked
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bgp"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/scenarios"
	"repro/internal/spec"
	"repro/internal/synth"
	"repro/internal/verify"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with the process glue factored out: flags come from args,
// output goes to the given writers, and the exit code is returned.
// Exit codes follow the shared cmd convention: 0 success, 1 operational
// failure (including verification violations and rejected proofs),
// 2 usage error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("netverify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scenario := fs.String("scenario", "scenario1", "paper scenario: scenario1, scenario2, scenario3")
	failures := fs.Bool("failures", false, "check path preferences under single-link failures")
	allFailures := fs.Bool("allfailures", false, "re-check forbids under every single-link failure")
	interp2 := fs.Bool("interp2", false, "tolerate unlisted fallback paths (interpretation 2)")
	rib := fs.Bool("rib", false, "dump the converged routing state")
	proof := fs.Bool("proof", false, "generate the explanation report with every Unsat verdict proof-checked")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	sc, err := scenarios.ByName(*scenario)
	if err != nil {
		fmt.Fprintln(stderr, "netverify:", err)
		return 2
	}
	res, err := synth.Synthesize(sc.Net, sc.Sketch, sc.Requirements(), synth.DefaultOptions())
	if err != nil {
		fmt.Fprintln(stderr, "netverify:", err)
		return 1
	}
	if *rib {
		sim, err := bgp.Simulate(sc.Net, res.Deployment)
		if err != nil {
			fmt.Fprintln(stderr, "netverify:", err)
			return 1
		}
		fmt.Fprint(stdout, sim.Dump())
		fmt.Fprintln(stdout)
	}
	vs, err := verify.Check(sc.Net, res.Deployment, sc.Requirements())
	if err != nil {
		fmt.Fprintln(stderr, "netverify:", err)
		return 1
	}
	bad := len(vs)
	for _, v := range vs {
		fmt.Fprintf(stdout, "VIOLATION: %s\n", v)
	}
	if *failures {
		for _, r := range sc.Requirements() {
			pref, ok := r.(*spec.Preference)
			if !ok {
				continue
			}
			fvs, err := verify.CheckUnderFailures(sc.Net, res.Deployment, pref, *interp2)
			if err != nil {
				fmt.Fprintln(stderr, "netverify:", err)
				return 1
			}
			bad += len(fvs)
			for _, v := range fvs {
				fmt.Fprintf(stdout, "FAILURE VIOLATION: %s\n", v)
			}
		}
	}
	if *allFailures {
		fvs, err := verify.CheckUnderAllFailures(sc.Net, res.Deployment, sc.Requirements())
		if err != nil {
			fmt.Fprintln(stderr, "netverify:", err)
			return 1
		}
		bad += len(fvs)
		for _, v := range fvs {
			fmt.Fprintf(stdout, "FAILURE VIOLATION: %s\n", v)
		}
	}
	if *proof {
		if code := runProof(sc, res.Deployment, stdout, stderr); code != 0 {
			return code
		}
	}
	if bad == 0 {
		fmt.Fprintln(stdout, "all requirements hold")
		return 0
	}
	return 1
}

// runProof generates the full explanation report with proof
// verification on: the SAT core logs a DRAT-style trace, and every
// Unsat verdict the report rests on must be accepted by the
// independent checker in internal/drat before the report is printed.
// The report body is identical to an unverified run; the proof
// statistics are appended as comment lines so the report itself stays
// byte-comparable.
func runProof(sc *scenarios.Scenario, dep config.Deployment, stdout, stderr io.Writer) int {
	opts := core.DefaultOptions()
	opts.VerifyProofs = true
	e, err := core.NewExplainer(sc.Net, sc.Requirements(), dep, opts)
	if err != nil {
		fmt.Fprintln(stderr, "netverify:", err)
		return 1
	}
	rep, err := e.Report()
	if err != nil {
		fmt.Fprintln(stderr, "netverify: proof-checked report:", err)
		return 1
	}
	fmt.Fprint(stdout, rep)
	st := e.Stats()
	fmt.Fprintf(stdout, "# proofs: %d unsat verdicts checked (%d trace ops, %d lemmas, %v)\n",
		st.ProofChecks, st.ProofOps, st.ProofLemmas, st.ProofTime)
	if st.CoreLits > 0 {
		fmt.Fprintf(stdout, "# cores: %d literals shrunk to %d by the checker\n",
			st.CoreLits, st.ShrunkCoreLits)
	}
	return 0
}
