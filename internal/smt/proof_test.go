package smt

import (
	"context"
	"testing"

	"repro/internal/logic"
	"repro/internal/sat"
)

func TestVerifyUnsatWithoutAssumptions(t *testing.T) {
	s := NewSolver(WithProof())
	x := logic.NewBoolVar("x")
	y := logic.NewBoolVar("y")
	mustAssert(t, s, logic.Or(x, y))
	mustAssert(t, s, logic.Or(x, logic.Not(y)))
	mustAssert(t, s, logic.Or(logic.Not(x), y))
	mustAssert(t, s, logic.Or(logic.Not(x), logic.Not(y)))
	mustSolve(t, s, sat.Unsat)
	rep, err := s.VerifyLastUnsat()
	if err != nil {
		t.Fatalf("VerifyLastUnsat: %v", err)
	}
	if rep.Ops == 0 || rep.TraceLen == 0 {
		t.Fatalf("empty proof report: %+v", rep)
	}
	if rep.CoreLits != 0 || rep.ShrunkCoreLits != 0 {
		t.Fatalf("assumption-core stats on an unconditional Unsat: %+v", rep)
	}
}

func TestVerifyErrors(t *testing.T) {
	s := NewSolver()
	x := logic.NewBoolVar("x")
	mustAssert(t, s, x)
	mustSolve(t, s, sat.Sat)
	if _, err := s.VerifyLastUnsat(); err == nil {
		t.Fatalf("VerifyLastUnsat succeeded with proof logging off")
	}

	p := NewSolver(WithProof())
	mustAssert(t, p, x)
	mustSolve(t, p, sat.Sat)
	if _, err := p.VerifyLastUnsat(); err == nil {
		t.Fatalf("VerifyLastUnsat succeeded after a Sat verdict")
	}
}

func TestCheckedCoreShrinks(t *testing.T) {
	// a→x, b→x, b→¬x: {a,b} fails, but {b} alone already fails. The
	// solver's cone analysis reports both; the checked core must not.
	s := NewSolver(WithProof())
	a := logic.NewBoolVar("a")
	b := logic.NewBoolVar("b")
	x := logic.NewBoolVar("x")
	mustAssert(t, s, logic.Implies(a, x))
	mustAssert(t, s, logic.Implies(b, x))
	mustAssert(t, s, logic.Implies(b, logic.Not(x)))
	mustSolve(t, s, sat.Unsat, a, b)

	plain := s.Core()
	checked, rep, err := s.CheckedCore()
	if err != nil {
		t.Fatalf("CheckedCore: %v", err)
	}
	if len(checked) > len(plain) {
		t.Fatalf("checked core %v larger than plain core %v", checked, plain)
	}
	if len(checked) != 1 || checked[0] != logic.Term(b) {
		t.Fatalf("checked core = %v, want [b]", checked)
	}
	if rep.ShrunkCoreLits > rep.CoreLits {
		t.Fatalf("shrink grew the core clause: %+v", rep)
	}

	// The shrunk core must still be unsatisfiable — re-solve with it.
	mustSolve(t, s, sat.Unsat, checked...)
	if _, err := s.VerifyLastUnsat(); err != nil {
		t.Fatalf("re-verify with shrunk core: %v", err)
	}
}

func TestCoreDeduplicatesRepeatedAssumptions(t *testing.T) {
	s := NewSolver(WithProof())
	a := logic.NewBoolVar("a")
	mustAssert(t, s, logic.Not(a))
	mustSolve(t, s, sat.Unsat, a, a, a)
	core := s.Core()
	if len(core) != 1 {
		t.Fatalf("core = %v, want exactly one entry for a repeated assumption", core)
	}
	checked, _, err := s.CheckedCore()
	if err != nil {
		t.Fatalf("CheckedCore: %v", err)
	}
	if len(checked) != 1 {
		t.Fatalf("checked core = %v, want one entry", checked)
	}
}

func TestVerifyAcrossGuardedRetraction(t *testing.T) {
	// One warm solver, several verdicts: the incremental checker must
	// follow the trace across guarded assertion, Unsat, retraction, and
	// a second Unsat — paying for each trace operation once.
	s := NewSolver(WithProof())
	a := logic.NewBoolVar("a")
	b := logic.NewBoolVar("b")
	mustAssert(t, s, logic.Or(a, b))

	g, err := s.AssertGuarded(logic.Not(a))
	if err != nil {
		t.Fatalf("AssertGuarded: %v", err)
	}
	mustSolve(t, s, sat.Unsat, a)
	rep1, err := s.VerifyLastUnsat()
	if err != nil {
		t.Fatalf("verify under guard: %v", err)
	}

	s.Retract(g)
	mustSolve(t, s, sat.Sat, a)

	mustSolve(t, s, sat.Unsat, logic.Not(a), logic.Not(b))
	rep2, err := s.VerifyLastUnsat()
	if err != nil {
		t.Fatalf("verify after retraction: %v", err)
	}
	if rep2.TraceLen <= rep1.TraceLen {
		t.Fatalf("trace did not grow across verdicts: %d then %d", rep1.TraceLen, rep2.TraceLen)
	}
	if rep2.Ops >= rep2.TraceLen {
		t.Fatalf("second verification re-checked the whole trace (%d ops of %d)", rep2.Ops, rep2.TraceLen)
	}
}

func TestVerifyOnClone(t *testing.T) {
	s := NewSolver(WithProof())
	a := logic.NewBoolVar("a")
	b := logic.NewBoolVar("b")
	mustAssert(t, s, logic.Implies(a, b))
	mustSolve(t, s, sat.Unsat, a, logic.Not(b))

	c := s.Clone()
	if !c.ProofEnabled() {
		t.Fatalf("clone lost proof logging")
	}
	mustAssert(t, c, logic.Not(b))
	mustSolve(t, c, sat.Unsat, a)
	if _, err := c.VerifyLastUnsat(); err != nil {
		t.Fatalf("verify on clone: %v", err)
	}

	// The original is unaffected and still verifies its own verdict.
	if _, err := s.VerifyLastUnsat(); err != nil {
		t.Fatalf("verify on original after clone: %v", err)
	}
}

func TestEnumerationBlockingClausesStayChecked(t *testing.T) {
	// Retractable model enumeration adds guarded blocking clauses; a
	// subsequent Unsat verdict's proof must still check.
	s := NewSolver(WithProof())
	n := logic.NewIntVar("n", 0, 3)
	if err := s.Declare(n); err != nil {
		t.Fatalf("Declare: %v", err)
	}
	mustAssert(t, s, logic.Le(n, logic.NewInt(1)))
	count, exhausted, err := s.EnumerateModelsRetractableContext(
		context.Background(), []*logic.Var{n}, 10,
		func(m logic.Assignment) bool { return true })
	if err != nil {
		t.Fatalf("EnumerateModelsRetractableContext: %v", err)
	}
	if count != 2 || !exhausted {
		t.Fatalf("enumerated %d models (exhausted=%v), want 2 models exhaustively", count, exhausted)
	}
	mustSolve(t, s, sat.Unsat, logic.Ge(n, logic.NewInt(2)))
	if _, err := s.VerifyLastUnsat(); err != nil {
		t.Fatalf("verify after enumeration: %v", err)
	}
}
