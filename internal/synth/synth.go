package synth

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/bgp"
	"repro/internal/config"
	"repro/internal/logic"
	"repro/internal/sat"
	"repro/internal/smt"
	"repro/internal/spec"
	"repro/internal/topology"
)

// Result is the outcome of a synthesis run.
type Result struct {
	// Deployment is the concrete configuration for every sketched
	// router, with all holes filled from the model.
	Deployment config.Deployment
	// Model assigns every hole variable.
	Model logic.Assignment
	// Encoding is the constraint system that was solved.
	Encoding *Encoding
	// SolverStats reports SAT-level effort.
	SolverStats sat.Stats
}

// Synthesize completes a configuration sketch against the
// requirements: it encodes, solves, and decodes. It returns an error
// if the constraints are unsatisfiable (no completion of the sketch
// meets the requirements) or if the encoding fails.
func Synthesize(net *topology.Network, sketch config.Deployment, reqs []spec.Requirement, opts Options) (*Result, error) {
	return SynthesizeContext(context.Background(), net, sketch, reqs, opts)
}

// SynthesizeContext is Synthesize with cancellation: the context is
// threaded through encoding and the constraint solve, so a cancelled
// or expired context aborts a running synthesis promptly.
func SynthesizeContext(ctx context.Context, net *topology.Network, sketch config.Deployment, reqs []spec.Requirement, opts Options) (*Result, error) {
	enc, err := NewEncoder(net, sketch, opts).EncodeContext(ctx, reqs)
	if err != nil {
		return nil, err
	}
	solver := smt.NewSolver()
	for _, v := range sortedVars(enc.HoleVars) {
		if err := solver.Declare(v); err != nil {
			return nil, err
		}
	}
	if err := solver.AssertAll(enc.Constraints); err != nil {
		return nil, err
	}
	st, err := solver.SolveContext(ctx)
	if err != nil {
		return nil, err
	}
	if st != sat.Sat {
		return nil, fmt.Errorf("synth: requirements are unsatisfiable for this sketch (solver: %v)", st)
	}
	model, err := solver.Model()
	if err != nil {
		return nil, err
	}
	dep, err := Decode(sketch, model)
	if err != nil {
		return nil, err
	}
	return &Result{
		Deployment:  dep,
		Model:       model,
		Encoding:    enc,
		SolverStats: solver.Stats(),
	}, nil
}

func sortedVars(m map[string]*logic.Var) []*logic.Var {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	// insertion sort to keep imports lean
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	out := make([]*logic.Var, len(names))
	for i, n := range names {
		out[i] = m[n]
	}
	return out
}

// Decode fills every hole of the sketch from a model, returning a
// fresh concrete deployment. Holes absent from the model (possible
// when decoding hand-built assignments) get safe defaults and are
// reported in the error only if strict decoding is required by the
// caller checking Concrete().
func Decode(sketch config.Deployment, model logic.Assignment) (config.Deployment, error) {
	out := config.Deployment{}
	for name, c := range sketch {
		dc, err := decodeConfig(c, model)
		if err != nil {
			return nil, fmt.Errorf("synth: decoding %s: %w", name, err)
		}
		out[name] = dc
	}
	return out, nil
}

func decodeConfig(c *config.Config, model logic.Assignment) (*config.Config, error) {
	out := c.Clone()
	autoList := 0
	for _, name := range out.RouteMapNames() {
		rm := out.RouteMaps[name]
		for _, cl := range rm.Clauses {
			if cl.ActionHole != "" {
				v, ok := model[cl.ActionHole]
				if !ok {
					return nil, fmt.Errorf("model misses action hole %q", cl.ActionHole)
				}
				if v.E == actionPermit {
					cl.Action = config.Permit
				} else {
					cl.Action = config.Deny
				}
				cl.ActionHole = ""
			}
			for _, m := range cl.Matches {
				if m.ValueHole == "" {
					continue
				}
				v, ok := model[m.ValueHole]
				if !ok {
					return nil, fmt.Errorf("model misses match hole %q", m.ValueHole)
				}
				switch m.Kind {
				case config.MatchPrefixList:
					// Materialize a one-entry prefix list for the
					// chosen prefix.
					autoList++
					listName := fmt.Sprintf("auto_%s_%d", out.Router, autoList)
					out.AddPrefixList(&config.PrefixList{
						Name: listName,
						Entries: []config.PrefixEntry{
							{Seq: 10, Action: config.Permit, Prefix: topology.MustPrefix(v.E)},
						},
					})
					m.PrefixList = listName
				case config.MatchCommunity:
					comm, err := bgp.ParseCommunity(strings.TrimPrefix(v.E, "c"))
					if err != nil {
						return nil, err
					}
					m.Community = comm
				case config.MatchNextHopIs:
					m.NextHop = v.E
				}
				m.ValueHole = ""
			}
			for _, s := range cl.Sets {
				if s.ParamHole == "" {
					continue
				}
				v, ok := model[s.ParamHole]
				if !ok {
					return nil, fmt.Errorf("model misses set hole %q", s.ParamHole)
				}
				switch s.Kind {
				case config.SetLocalPref:
					s.LocalPref = DecodeLP(v.I)
				case config.SetMED:
					s.MED = int(v.I)
				case config.SetCommunity:
					comm, err := bgp.ParseCommunity(strings.TrimPrefix(v.E, "c"))
					if err != nil {
						return nil, err
					}
					s.Community = comm
				case config.SetNextHopIP:
					s.NextHopIP = v.E
				}
				s.ParamHole = ""
			}
		}
	}
	if !out.Concrete() {
		return nil, fmt.Errorf("config still has holes after decoding")
	}
	return out, nil
}
