package config

import (
	"strings"
	"testing"

	"repro/internal/bgp"
	"repro/internal/topology"
)

func r1Fig1c() *Config {
	// The paper's Figure 1c: R1 blocks the customer prefix toward P1
	// (and resets next-hop, which is redundant), ending with a
	// deny-all clause.
	c := New("R1")
	c.AddPrefixList(&PrefixList{
		Name: "ip_list_R1_1",
		Entries: []PrefixEntry{
			{Seq: 10, Action: Permit, Prefix: topology.MustPrefix("123.0.1.0/20")},
		},
	})
	c.AddRouteMap(&RouteMap{
		Name: "R1_to_P1",
		Clauses: []*Clause{
			{
				Seq:    1,
				Action: Deny,
				Matches: []*Match{
					{Kind: MatchPrefixList, PrefixList: "ip_list_R1_1"},
				},
				Sets: []*Set{
					{Kind: SetNextHopIP, NextHopIP: "10.0.0.1"},
				},
			},
			{Seq: 100, Action: Deny},
		},
	})
	c.AddNeighbor("P1", "", "R1_to_P1")
	return c
}

func custRoute() *bgp.Route {
	r := bgp.Originate("C", 600, topology.MustPrefix("123.0.1.0/20"))
	r.Path = []string{"C", "R3", "R1"}
	r.NextHop = "R3"
	return r
}

func TestApplyRouteMapDeny(t *testing.T) {
	c := r1Fig1c()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.ApplyRouteMap("R1_to_P1", custRoute()); got != nil {
		t.Fatal("customer prefix must be denied toward P1")
	}
	// A different prefix falls through to the catch-all deny.
	other := bgp.Originate("D1", 700, topology.MustPrefix("140.0.1.0/24"))
	if got := c.ApplyRouteMap("R1_to_P1", other); got != nil {
		t.Fatal("catch-all deny must drop other prefixes")
	}
}

func TestApplyRouteMapPermitSets(t *testing.T) {
	c := New("R3")
	c.AddRouteMap(&RouteMap{
		Name: "R3_from_R1",
		Clauses: []*Clause{
			{
				Seq:    10,
				Action: Permit,
				Sets: []*Set{
					{Kind: SetLocalPref, LocalPref: 200},
					{Kind: SetCommunity, Community: bgp.MustCommunity("100:2")},
					{Kind: SetMED, MED: 30},
				},
			},
		},
	})
	r := custRoute()
	got := c.ApplyRouteMap("R3_from_R1", r)
	if got == nil {
		t.Fatal("permit clause must pass the route")
	}
	if got.LocalPref != 200 || got.MED != 30 || !got.HasCommunity(bgp.MustCommunity("100:2")) {
		t.Fatalf("sets not applied: %+v", got)
	}
}

func TestFirstMatchWins(t *testing.T) {
	c := New("R1")
	c.AddRouteMap(&RouteMap{
		Name: "m",
		Clauses: []*Clause{
			{Seq: 10, Action: Permit, Matches: []*Match{{Kind: MatchCommunity, Community: bgp.MustCommunity("1:1")}},
				Sets: []*Set{{Kind: SetLocalPref, LocalPref: 300}}},
			{Seq: 20, Action: Permit, Sets: []*Set{{Kind: SetLocalPref, LocalPref: 50}}},
		},
	})
	tagged := custRoute()
	tagged.Communities[bgp.MustCommunity("1:1")] = true
	if got := c.ApplyRouteMap("m", tagged); got.LocalPref != 300 {
		t.Fatalf("first clause should win, lp=%d", got.LocalPref)
	}
	plain := custRoute()
	if got := c.ApplyRouteMap("m", plain); got.LocalPref != 50 {
		t.Fatalf("second clause should catch, lp=%d", got.LocalPref)
	}
}

func TestMatchNextHop(t *testing.T) {
	c := New("R3")
	c.AddRouteMap(&RouteMap{
		Name: "m",
		Clauses: []*Clause{
			{Seq: 10, Action: Deny, Matches: []*Match{{Kind: MatchNextHopIs, NextHop: "R1"}}},
			{Seq: 20, Action: Permit},
		},
	})
	fromR1 := custRoute()
	fromR1.NextHop = "R1"
	if c.ApplyRouteMap("m", fromR1) != nil {
		t.Fatal("route from R1 must be denied")
	}
	fromR2 := custRoute()
	fromR2.NextHop = "R2"
	if c.ApplyRouteMap("m", fromR2) == nil {
		t.Fatal("route from R2 must pass")
	}
}

func TestImplicitDeny(t *testing.T) {
	c := New("R1")
	c.AddRouteMap(&RouteMap{Name: "empty"})
	if c.ApplyRouteMap("empty", custRoute()) != nil {
		t.Fatal("empty route map must deny")
	}
}

func TestApplyPanicsOnHoles(t *testing.T) {
	c := New("R1")
	c.AddRouteMap(&RouteMap{Name: "m", Clauses: []*Clause{{Seq: 1, ActionHole: "va"}}})
	mustPanic(t, func() { c.ApplyRouteMap("m", custRoute()) })
	c2 := New("R1")
	c2.AddRouteMap(&RouteMap{Name: "m", Clauses: []*Clause{
		{Seq: 1, Action: Permit, Matches: []*Match{{Kind: MatchCommunity, ValueHole: "vv"}}}}})
	mustPanic(t, func() { c2.ApplyRouteMap("m", custRoute()) })
	mustPanic(t, func() { c.ApplyRouteMap("missing", custRoute()) })
}

func TestHolesEnumeration(t *testing.T) {
	c := New("R1")
	c.AddRouteMap(&RouteMap{Name: "m", Clauses: []*Clause{
		{
			Seq:        1,
			ActionHole: "Var_Action",
			Matches:    []*Match{{Kind: MatchPrefixList, ValueHole: "Var_Val"}},
			Sets:       []*Set{{Kind: SetNextHopIP, ParamHole: "Var_Param"}},
		},
	}})
	holes := c.Holes()
	if len(holes) != 3 {
		t.Fatalf("holes = %d, want 3", len(holes))
	}
	names := []string{holes[0].Name, holes[1].Name, holes[2].Name}
	if strings.Join(names, ",") != "Var_Action,Var_Val,Var_Param" {
		t.Fatalf("hole names = %v", names)
	}
	for _, h := range holes {
		if !strings.Contains(h.Where, "route-map m clause 1") {
			t.Fatalf("hole location = %q", h.Where)
		}
	}
	if c.Concrete() {
		t.Fatal("config with holes reported concrete")
	}
	if !r1Fig1c().Concrete() {
		t.Fatal("concrete config reported non-concrete")
	}
}

func TestCloneIndependence(t *testing.T) {
	c := r1Fig1c()
	cp := c.Clone()
	cp.RouteMaps["R1_to_P1"].Clauses[0].Action = Permit
	cp.PrefixLists["ip_list_R1_1"].Entries[0].Action = Deny
	cp.Neighbors[0].ExportMap = "other"
	if c.RouteMaps["R1_to_P1"].Clauses[0].Action != Deny {
		t.Fatal("Clone shares clauses")
	}
	if c.PrefixLists["ip_list_R1_1"].Entries[0].Action != Permit {
		t.Fatal("Clone shares prefix lists")
	}
	if c.Neighbors[0].ExportMap != "R1_to_P1" {
		t.Fatal("Clone shares neighbors")
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	c := r1Fig1c()
	// Add every construct so the round trip covers the full dialect.
	c.AddRouteMap(&RouteMap{
		Name: "R1_from_R2",
		Clauses: []*Clause{
			{
				Seq:    10,
				Action: Permit,
				Matches: []*Match{
					{Kind: MatchCommunity, Community: bgp.MustCommunity("100:2")},
					{Kind: MatchNextHopIs, NextHop: "R2"},
				},
				Sets: []*Set{
					{Kind: SetLocalPref, LocalPref: 150},
					{Kind: SetCommunity, Community: bgp.MustCommunity("100:3")},
					{Kind: SetMED, MED: 5},
				},
			},
		},
	})
	c.AddNeighbor("R2", "R1_from_R2", "")
	printed := Print(c)
	parsed, err := Parse(printed)
	if err != nil {
		t.Fatalf("Parse failed: %v\n%s", err, printed)
	}
	if Print(parsed) != printed {
		t.Fatalf("round trip unstable:\n%s\n---\n%s", printed, Print(parsed))
	}
}

func TestPrintParseHoles(t *testing.T) {
	c := New("R1")
	c.AddNeighbor("P1", "", "m")
	c.AddRouteMap(&RouteMap{Name: "m", Clauses: []*Clause{
		{
			Seq:        1,
			ActionHole: "Var_Action",
			Matches:    []*Match{{Kind: MatchCommunity, ValueHole: "Var_Val"}},
			Sets:       []*Set{{Kind: SetLocalPref, ParamHole: "Var_Param"}},
		},
	}})
	printed := Print(c)
	for _, want := range []string{"?Var_Action", "?Var_Val", "?Var_Param"} {
		if !strings.Contains(printed, want) {
			t.Fatalf("printed sketch missing %q:\n%s", want, printed)
		}
	}
	parsed, err := Parse(printed)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Holes()) != 3 {
		t.Fatalf("holes after round trip = %d, want 3", len(parsed.Holes()))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"neighbor P1",                  // before router stanza
		"router bgp R1\nrouter bgp R2", // duplicate stanza
		"router bgp R1\nneighbor",      // malformed
		"router bgp R1\nneighbor P1 route-map m sideways",                             // bad direction
		"router bgp R1\nmatch community 1:1",                                          // match outside clause
		"router bgp R1\nset metric 5",                                                 // set outside clause
		"router bgp R1\nroute-map m permit x",                                         // bad seq
		"router bgp R1\nroute-map m permit 10\n match ip address prefix-list missing", // unknown list
		"router bgp R1\nroute-map m maybe 10",                                         // bad action
		"router bgp R1\nip prefix-list p seq 1 permit nonsense",                       // bad prefix
		"router bgp R1\nroute-map m permit 10\n match community nonsense",
		"router bgp R1\nroute-map m permit 10\n set local-preference abc",
		"router bgp R1\nroute-map m permit 10\nroute-map m permit 10", // non-increasing seq
		"router bgp R1\ngarbage here",
		"router bgp R1\nneighbor P1 route-map missing out", // unknown map
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestDeploymentPolicy(t *testing.T) {
	net := topology.Paper()
	dep := Deployment{"R1": r1Fig1c()}
	res, err := bgp.Simulate(net, dep)
	if err != nil {
		t.Fatal(err)
	}
	// R1 blocks the customer prefix toward P1 (and everything else via
	// the catch-all deny): P1 must not learn C through R1.
	cPfx := net.Router("C").Prefix
	path := res.ForwardingPath("P1", cPfx)
	for i, n := range path {
		if n == "R1" && i == 1 {
			t.Fatalf("P1 still routes to C via R1: %v", path)
		}
	}
	// Other routers unaffected.
	if !res.Reachable("R2", cPfx) {
		t.Fatal("R2 lost reachability to C")
	}
}

func TestDeploymentIdentityForUnknownRouters(t *testing.T) {
	dep := Deployment{}
	r := custRoute()
	if got := dep.Export("R9", "P1", r); got != r {
		t.Fatal("unknown router should be identity")
	}
	if got := dep.Import("R9", "P1", r); got != r {
		t.Fatal("unknown router should be identity")
	}
	// Known router, unbound neighbor: identity.
	dep["R1"] = r1Fig1c()
	if got := dep.Export("R1", "R2", r); got != r {
		t.Fatal("unbound neighbor should be identity")
	}
	// Bound neighbor applies the map.
	if got := dep.Export("R1", "P1", custRoute()); got != nil {
		t.Fatal("bound export map should deny")
	}
}

func TestValidate(t *testing.T) {
	c := r1Fig1c()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	c.AddNeighbor("R2", "missing", "")
	if err := c.Validate(); err == nil {
		t.Fatal("unknown route map should fail validation")
	}
}

func TestPrefixListPermits(t *testing.T) {
	pl := &PrefixList{Name: "p", Entries: []PrefixEntry{
		{Seq: 10, Action: Deny, Prefix: topology.MustPrefix("10.0.0.0/8")},
		{Seq: 20, Action: Permit, Prefix: topology.MustPrefix("10.0.0.0/8")}, // shadowed
		{Seq: 30, Action: Permit, Prefix: topology.MustPrefix("11.0.0.0/8")},
	}}
	if pl.Permits(topology.MustPrefix("10.0.0.0/8")) {
		t.Fatal("first entry (deny) must win")
	}
	if !pl.Permits(topology.MustPrefix("11.0.0.0/8")) {
		t.Fatal("explicit permit must pass")
	}
	if pl.Permits(topology.MustPrefix("12.0.0.0/8")) {
		t.Fatal("no match must deny")
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestPrintDeployment(t *testing.T) {
	dep := Deployment{"R1": r1Fig1c(), "R2": New("R2")}
	out := PrintDeployment(dep)
	if !strings.Contains(out, "router bgp R1") || !strings.Contains(out, "router bgp R2") {
		t.Fatalf("deployment print incomplete:\n%s", out)
	}
	// Deterministic order: R1 before R2.
	if strings.Index(out, "router bgp R1") > strings.Index(out, "router bgp R2") {
		t.Fatal("deployment print not sorted")
	}
}
