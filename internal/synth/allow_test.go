package synth

import (
	"context"
	"strings"
	"testing"

	"repro/internal/bgp"
	"repro/internal/scenarios"
	"repro/internal/spec"
	"repro/internal/topology"
	"repro/internal/verify"
)

// TestAllowRestoresCustomerReachability re-runs the Scenario 1 repair
// using the DSL's allow requirement instead of the two-path preference
// Scenario 3 uses: `+(P1->...->C)` is exactly what the paper's
// administrator adds.
func TestAllowRestoresCustomerReachability(t *testing.T) {
	sc := scenarios.Scenario1()
	s2, err := spec.Parse(`
Req1 {
    !(P1->...->P2)
    !(P2->...->P1)
}
Req4 {
    +(P1->...->C)
}`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Synthesize(sc.Net, sc.Sketch, s2.Requirements(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	vs, err := verify.Check(sc.Net, res.Deployment, s2.Requirements())
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
	sim, err := bgp.Simulate(sc.Net, res.Deployment)
	if err != nil {
		t.Fatal(err)
	}
	cPfx := sc.Net.Router("C").Prefix
	path := sim.ForwardingPath("P1", cPfx)
	if path == nil {
		t.Fatal("allow requirement did not restore reachability")
	}
	if strings.Contains(strings.Join(path, " "), "P2") {
		t.Fatalf("path %v goes through the other provider", path)
	}
}

func TestAllowErrors(t *testing.T) {
	net := topology.Paper()
	e := NewEncoder(net, nil, DefaultOptions())
	if err := e.enumerateCandidates(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Destination without a prefix.
	if err := e.encodeAllow(&spec.Allow{Path: spec.NewPath("C", "R3")}); err == nil {
		t.Fatal("prefix-less destination should fail")
	}
	// Pattern matching no candidate.
	if err := e.encodeAllow(&spec.Allow{Path: spec.NewPath("P1", "P2")}); err == nil {
		t.Fatal("impossible pattern should fail")
	}
}

func TestAllowConflictsWithForbid(t *testing.T) {
	net := topology.Paper()
	reqs := []spec.Requirement{
		&spec.Forbid{Path: spec.NewPath("P1", spec.Wildcard, "C")},
		&spec.Allow{Path: spec.NewPath("P1", spec.Wildcard, "C")},
	}
	if _, err := Synthesize(net, nil, reqs, DefaultOptions()); err == nil {
		t.Fatal("allow and forbid of the same traffic must be unsatisfiable")
	}
}
