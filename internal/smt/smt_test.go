package smt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/logic"
	"repro/internal/sat"
)

var colorSort = logic.NewEnumSort("Color", "red", "green", "blue")

func mustAssert(t *testing.T, s *Solver, f logic.Term) {
	t.Helper()
	if err := s.Assert(f); err != nil {
		t.Fatalf("Assert(%s): %v", f, err)
	}
}

func mustSolve(t *testing.T, s *Solver, want sat.Status, assumptions ...logic.Term) {
	t.Helper()
	got, err := s.Solve(assumptions...)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if got != want {
		t.Fatalf("Solve = %v, want %v", got, want)
	}
}

func TestBoolBasics(t *testing.T) {
	s := NewSolver()
	x, y := logic.NewBoolVar("x"), logic.NewBoolVar("y")
	mustAssert(t, s, logic.Or(x, y))
	mustAssert(t, s, logic.Not(x))
	mustSolve(t, s, sat.Sat)
	m, err := s.Model()
	if err != nil {
		t.Fatal(err)
	}
	if m["x"].B || !m["y"].B {
		t.Fatalf("model = %v, want x=false y=true", m)
	}
	mustAssert(t, s, logic.Not(y))
	mustSolve(t, s, sat.Unsat)
}

func TestIntComparisons(t *testing.T) {
	s := NewSolver()
	n := logic.NewIntVar("n", 0, 10)
	m := logic.NewIntVar("m", 0, 10)
	mustAssert(t, s, logic.Lt(n, m))
	mustAssert(t, s, logic.Ge(n, logic.NewInt(9)))
	mustSolve(t, s, sat.Sat)
	mod, err := s.Model()
	if err != nil {
		t.Fatal(err)
	}
	if mod["n"].I != 9 || mod["m"].I != 10 {
		t.Fatalf("model = %v, want n=9 m=10", mod)
	}
}

func TestIntArithmetic(t *testing.T) {
	s := NewSolver()
	a := logic.NewIntVar("a", 0, 7)
	b := logic.NewIntVar("b", 0, 7)
	mustAssert(t, s, logic.Eq(logic.Add(a, b), logic.NewInt(9)))
	mustAssert(t, s, logic.Eq(logic.Sub(a, b), logic.NewInt(3)))
	mustSolve(t, s, sat.Sat)
	m, err := s.Model()
	if err != nil {
		t.Fatal(err)
	}
	if m["a"].I != 6 || m["b"].I != 3 {
		t.Fatalf("model = %v, want a=6 b=3", m)
	}
}

func TestEnumReasoning(t *testing.T) {
	s := NewSolver()
	c1 := logic.NewEnumVar("c1", colorSort)
	c2 := logic.NewEnumVar("c2", colorSort)
	c3 := logic.NewEnumVar("c3", colorSort)
	// Three mutually distinct colors over a 3-value enum: forces a
	// permutation.
	mustAssert(t, s, logic.Ne(c1, c2))
	mustAssert(t, s, logic.Ne(c2, c3))
	mustAssert(t, s, logic.Ne(c1, c3))
	mustSolve(t, s, sat.Sat)
	m, err := s.Model()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{m["c1"].E: true, m["c2"].E: true, m["c3"].E: true}
	if len(seen) != 3 {
		t.Fatalf("model is not a permutation: %v", m)
	}
	// Pin two of them and force the third.
	mustAssert(t, s, logic.Eq(c1, logic.NewEnum(colorSort, "red")))
	mustAssert(t, s, logic.Eq(c2, logic.NewEnum(colorSort, "green")))
	mustSolve(t, s, sat.Sat)
	m, _ = s.Model()
	if m["c3"].E != "blue" {
		t.Fatalf("c3 = %v, want blue", m["c3"])
	}
}

func TestIte(t *testing.T) {
	s := NewSolver()
	x := logic.NewBoolVar("x")
	n := logic.NewIntVar("n", 0, 5)
	// n = ite(x, 4, 1) and n > 2 forces x.
	mustAssert(t, s, logic.Eq(n, logic.Ite(x, logic.NewInt(4), logic.NewInt(1))))
	mustAssert(t, s, logic.Gt(n, logic.NewInt(2)))
	mustSolve(t, s, sat.Sat)
	m, err := s.Model()
	if err != nil {
		t.Fatal(err)
	}
	if !m["x"].B || m["n"].I != 4 {
		t.Fatalf("model = %v, want x=true n=4", m)
	}
}

func TestBoolIte(t *testing.T) {
	s := NewSolver()
	x, y, z := logic.NewBoolVar("x"), logic.NewBoolVar("y"), logic.NewBoolVar("z")
	mustAssert(t, s, logic.Ite(x, y, z))
	mustAssert(t, s, x)
	mustAssert(t, s, logic.Not(z))
	mustSolve(t, s, sat.Sat)
	m, _ := s.Model()
	if !m["y"].B {
		t.Fatal("y must be true when x selects the then-branch")
	}
}

func TestAssumptionsAndCore(t *testing.T) {
	s := NewSolver()
	n := logic.NewIntVar("n", 0, 10)
	mustAssert(t, s, logic.Le(n, logic.NewInt(5)))

	a1 := logic.Ge(n, logic.NewInt(3))
	a2 := logic.Ge(n, logic.NewInt(7)) // conflicts with assertion
	a3 := logic.Le(n, logic.NewInt(9))

	mustSolve(t, s, sat.Sat, a1, a3)
	mustSolve(t, s, sat.Unsat, a1, a2, a3)
	core := s.Core()
	if len(core) == 0 {
		t.Fatal("expected non-empty core")
	}
	hasA2 := false
	for _, c := range core {
		if logic.Equal(c, a2) {
			hasA2 = true
		}
		if logic.Equal(c, a3) {
			t.Fatal("a3 cannot be in a minimal-ish core")
		}
	}
	if !hasA2 {
		t.Fatalf("core %v must contain the conflicting assumption", core)
	}
	// Solver stays usable.
	mustSolve(t, s, sat.Sat)
}

func TestValidAndSatisfiable(t *testing.T) {
	s := NewSolver()
	n := logic.NewIntVar("n", 0, 10)
	mustAssert(t, s, logic.Ge(n, logic.NewInt(4)))

	v, err := s.Valid(logic.Ge(n, logic.NewInt(2)))
	if err != nil || !v {
		t.Fatalf("n>=2 should be valid given n>=4 (err=%v)", err)
	}
	v, err = s.Valid(logic.Ge(n, logic.NewInt(6)))
	if err != nil || v {
		t.Fatalf("n>=6 should not be valid given n>=4 (err=%v)", err)
	}
	ok, err := s.Satisfiable(logic.Eq(n, logic.NewInt(10)))
	if err != nil || !ok {
		t.Fatalf("n=10 should be satisfiable (err=%v)", err)
	}
	ok, err = s.Satisfiable(logic.Eq(n, logic.NewInt(3)))
	if err != nil || ok {
		t.Fatalf("n=3 should be unsatisfiable (err=%v)", err)
	}
}

func TestDeclare(t *testing.T) {
	s := NewSolver()
	n := logic.NewIntVar("n", 0, 3)
	if err := s.Declare(n); err != nil {
		t.Fatal(err)
	}
	// Redeclaring identically is fine.
	if err := s.Declare(logic.NewIntVar("n", 0, 3)); err != nil {
		t.Fatal(err)
	}
	// Redeclaring with a different domain is an error.
	if err := s.Declare(logic.NewIntVar("n", 0, 5)); err == nil {
		t.Fatal("redeclaration with different domain should fail")
	}
	if err := s.Declare(logic.NewBoolVar("n")); err == nil {
		t.Fatal("redeclaration with different sort should fail")
	}
	// Declared-but-unconstrained variables appear in the model.
	mustSolve(t, s, sat.Sat)
	m, err := s.Model()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := m["n"]; !ok || v.I < 0 || v.I > 3 {
		t.Fatalf("model for unconstrained n = %v, want in [0,3]", m["n"])
	}
}

func TestDomainCap(t *testing.T) {
	s := NewSolver()
	big := logic.NewIntVar("big", 0, MaxValueListSize+10)
	if err := s.Assert(logic.Eq(big, logic.NewInt(0))); err == nil {
		t.Fatal("oversized domain should be rejected")
	}
}

func TestAssertNonBool(t *testing.T) {
	s := NewSolver()
	if err := s.Assert(logic.NewInt(3)); err == nil {
		t.Fatal("asserting an int term should fail")
	}
	if _, err := s.Solve(logic.NewInt(3)); err == nil {
		t.Fatal("assuming an int term should fail")
	}
}

func TestLargeDomainExactlyOne(t *testing.T) {
	// Exercises the sequential at-most-one encoding (domain > 6).
	s := NewSolver()
	n := logic.NewIntVar("n", 0, 50)
	mustAssert(t, s, logic.Eq(n, logic.NewInt(37)))
	mustSolve(t, s, sat.Sat)
	m, err := s.Model()
	if err != nil {
		t.Fatal(err)
	}
	if m["n"].I != 37 {
		t.Fatalf("n = %d, want 37", m["n"].I)
	}
}

func TestSharedSubtermMemoization(t *testing.T) {
	s := NewSolver()
	n := logic.NewIntVar("n", 0, 20)
	shared := logic.Ge(n, logic.NewInt(10))
	mustAssert(t, s, logic.Or(shared, logic.Eq(n, logic.NewInt(0))))
	before := s.NumSATVars()
	mustAssert(t, s, logic.Implies(shared, logic.Le(n, logic.NewInt(15))))
	after := s.NumSATVars()
	// The shared comparison must not be re-encoded: only the new
	// comparison and connective overhead may allocate variables.
	if after-before > 30 {
		t.Fatalf("memoization broken: %d new sat vars for reusing a shared subterm", after-before)
	}
	mustSolve(t, s, sat.Sat)
}

// --- Differential property tests against the term evaluator. ---

// Vocabulary mirroring the one in logic's quick tests, kept small so
// exhaustive model enumeration is cheap.
var (
	dvBools = []*logic.Var{logic.NewBoolVar("p"), logic.NewBoolVar("q")}
	dvInts  = []*logic.Var{logic.NewIntVar("i", 0, 3), logic.NewIntVar("j", -2, 2)}
	dvEnum  = logic.NewEnumVar("col", colorSort)
)

func randTerm(r *rand.Rand, depth int) logic.Term {
	if depth <= 0 {
		switch r.Intn(5) {
		case 0:
			return dvBools[r.Intn(2)]
		case 1:
			return logic.NewBool(r.Intn(2) == 0)
		case 2:
			return logic.Eq(dvEnum, logic.NewEnum(colorSort, colorSort.Values[r.Intn(3)]))
		case 3:
			return logic.Le(dvInts[r.Intn(2)], logic.NewInt(int64(r.Intn(7)-3)))
		default:
			return logic.Eq(logic.Add(dvInts[0], dvInts[1]), logic.NewInt(int64(r.Intn(9)-4)))
		}
	}
	switch r.Intn(6) {
	case 0:
		return logic.And(randTerm(r, depth-1), randTerm(r, depth-1))
	case 1:
		return logic.Or(randTerm(r, depth-1), randTerm(r, depth-1))
	case 2:
		return logic.Not(randTerm(r, depth-1))
	case 3:
		return logic.Implies(randTerm(r, depth-1), randTerm(r, depth-1))
	case 4:
		return logic.Iff(randTerm(r, depth-1), randTerm(r, depth-1))
	default:
		return logic.Ite(randTerm(r, depth-1), randTerm(r, depth-1), randTerm(r, depth-1))
	}
}

// forEachAssignment enumerates the full (small) assignment space.
func forEachAssignment(f func(logic.Assignment) bool) bool {
	for pb := 0; pb < 2; pb++ {
		for qb := 0; qb < 2; qb++ {
			for i := int64(0); i <= 3; i++ {
				for j := int64(-2); j <= 2; j++ {
					for c := 0; c < 3; c++ {
						a := logic.Assignment{
							"p":   logic.BoolValue(pb == 1),
							"q":   logic.BoolValue(qb == 1),
							"i":   logic.IntValue(i),
							"j":   logic.IntValue(j),
							"col": logic.EnumValue(colorSort, colorSort.Values[c]),
						}
						if !f(a) {
							return false
						}
					}
				}
			}
		}
	}
	return true
}

// Property: the SMT solver agrees with brute-force evaluation — a term
// is satisfiable iff some assignment evaluates it true, and models
// returned actually satisfy the term.
func TestQuickAgainstEvaluator(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		term := randTerm(r, 3)

		wantSat := false
		forEachAssignment(func(a logic.Assignment) bool {
			v, err := logic.EvalBool(term, a)
			if err != nil {
				t.Logf("eval error: %v", err)
				return false
			}
			if v {
				wantSat = true
				return false
			}
			return true
		})

		s := NewSolver()
		for _, v := range dvBools {
			s.Declare(v)
		}
		for _, v := range dvInts {
			s.Declare(v)
		}
		s.Declare(dvEnum)
		if err := s.Assert(term); err != nil {
			t.Logf("assert: %v", err)
			return false
		}
		st, err := s.Solve()
		if err != nil {
			t.Logf("solve: %v", err)
			return false
		}
		if (st == sat.Sat) != wantSat {
			t.Logf("mismatch on %s: smt=%v brute=%v", term, st, wantSat)
			return false
		}
		if st == sat.Sat {
			m, err := s.Model()
			if err != nil {
				t.Logf("model: %v", err)
				return false
			}
			ok, err := logic.EvalBool(term, m)
			if err != nil || !ok {
				t.Logf("model %v does not satisfy %s (err=%v)", m, term, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: Valid agrees with brute-force universal truth over the
// empty assertion set.
func TestQuickValidity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		term := randTerm(r, 2)

		wantValid := forEachAssignment(func(a logic.Assignment) bool {
			v, err := logic.EvalBool(term, a)
			return err == nil && v
		})

		s := NewSolver()
		for _, v := range dvBools {
			s.Declare(v)
		}
		for _, v := range dvInts {
			s.Declare(v)
		}
		s.Declare(dvEnum)
		got, err := s.Valid(term)
		if err != nil {
			t.Logf("valid: %v", err)
			return false
		}
		if got != wantValid {
			t.Logf("validity mismatch on %s: smt=%v brute=%v", term, got, wantValid)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAssertAll(t *testing.T) {
	s := NewSolver()
	n := logic.NewIntVar("n", 0, 9)
	err := s.AssertAll([]logic.Term{
		logic.Ge(n, logic.NewInt(4)),
		logic.Le(n, logic.NewInt(4)),
	})
	if err != nil {
		t.Fatal(err)
	}
	mustSolve(t, s, sat.Sat)
	m, _ := s.Model()
	if m["n"].I != 4 {
		t.Fatalf("n = %d, want 4", m["n"].I)
	}
	if err := s.AssertAll([]logic.Term{logic.NewInt(1)}); err == nil {
		t.Fatal("non-bool in AssertAll should fail")
	}
}
