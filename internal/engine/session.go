package engine

import (
	"container/list"
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/logic"
	"repro/internal/rewrite"
	"repro/internal/sat"
	"repro/internal/smt"
	"repro/internal/spec"
	"repro/internal/synth"
	"repro/internal/topology"
)

// DefaultLiftSampleCap bounds the per-session lift-latency sample
// window. A one-shot CLI run records a few hundred queries; a served
// session records queries for hours, so the window keeps percentile
// memory bounded while still reflecting recent behavior.
const DefaultLiftSampleCap = 1 << 14

// CacheLimits bounds the growable per-session caches. Zero fields mean
// unlimited (the CLI default, where a session lives for one run); a
// serving layer that holds sessions for hours sets every field. Limits
// on the report and simplify caches travel with the caches themselves,
// so successor sessions (NewSessionFrom) inherit them.
type CacheLimits struct {
	// ReportBytes caps the cross-deployment report cache (per-router
	// lift artifacts and rendered whole-network reports) by its total
	// accounted byte size, evicted least-recently-used. Byte accounting
	// — not entry counting — is what keeps a handful of 1000-router
	// reports from pinning a server's heap while thousands of small
	// lift entries still fit.
	ReportBytes int64
	// Simplify caps the per-seed simplification outcome cache, evicted
	// least-recently-used.
	Simplify int
	// Solvers caps the warm-solver pool, evicted least-recently-used.
	Solvers int
	// LiftSamples caps the lift-latency sample window the percentile
	// stats are computed over (most recent samples are kept).
	LiftSamples int
	// StreamWindow bounds how many rendered router sections a streaming
	// report (core.Explainer.WriteReport) may hold buffered awaiting
	// in-order flush. Zero picks a default proportional to the worker
	// count.
	StreamWindow int
}

// Session is the shared state of one deployment's explanation queries:
// the base encoding of the concrete deployment (built once, lazily)
// and a cache of derived encodings keyed by the caller's sketch key.
// A Session is safe for concurrent use; concurrent requests for the
// same key are coalesced into one encode (single flight).
type Session struct {
	net  *topology.Network
	reqs []spec.Requirement
	dep  config.Deployment
	opts synth.Options

	// in is the hash-cons table shared by every encode and solve run
	// through this session, so structurally equal terms are pointer-
	// identical across queries (set once at construction; immutable
	// afterwards, hence safe to read concurrently).
	in *logic.Interner

	// Budget bounds the resources of queries run through this session.
	// Callers read it to derive deadlines and solver budgets; it is not
	// mutated by the session itself and must be set before the session
	// is shared across goroutines.
	Budget Budget

	// VerifyProofs directs solvers built for this session to record
	// DRAT-style proof traces and the pipeline to re-validate every
	// Unsat verdict with the independent checker (internal/drat). Like
	// Budget, set it before the session is shared.
	VerifyProofs bool

	baseMu   sync.Mutex
	base     *synth.Base
	baseDead bool // base build failed for a non-context reason; stop retrying

	// scoped is the recorded whole-network encoding the cone-scoped
	// encode path splices from (see synth.ScopedBase). Built lazily by
	// PrepareScoped — whole-network sweeps call it once up front; single
	// queries never pay for it. scopedDead latches a non-context build
	// failure; scopedOff disables the path entirely (cold benchmark
	// arms, byte-identity tests).
	scopedMu   sync.Mutex
	scoped     *synth.ScopedBase
	scopedDead bool
	scopedOff  bool

	mu sync.Mutex
	entries  map[string]*entry
	stats    Stats
	liftNS  []int64 // recent per-query lift latencies, nanoseconds
	liftAll int     // every lift query ever recorded (window may be smaller)
	liftCap int     // sample-window cap (0 = DefaultLiftSampleCap)
	// streamWin is CacheLimits.StreamWindow (0 = derive from workers).
	streamWin int

	// solvMu guards the warm-solver pool: idle solvers keyed by the
	// encoding key they were built for. Checkout removes the solver
	// (exclusive use — smt.Solver is not concurrency-safe), checkin
	// returns it warm for the next query against the same encoding.
	// The pool is LRU-ordered so a size cap evicts the coldest key.
	solvMu    sync.Mutex
	solvers   map[string]*list.Element
	solvLRU   *list.List // of solvEntry, front = most recent
	solvLimit int        // 0 = unlimited

	// simps is the per-seed outcome cache, keyed by the canonical
	// (interned) seed term. Simplification is a pure function of the
	// term, so repeat queries over a cached encoding skip normalization
	// entirely. Successor sessions (NewSessionFrom) share the cache:
	// purity makes it sound across deployments, and an edited network's
	// unchanged routers present pointer-identical seeds.
	simps *simpCache

	// nf is the session-lifetime normal-form cache shared by every
	// simplification run through this session: distinct seeds that
	// share subterms (sibling routers of one deployment share most of
	// their encodings) reuse one another's normalization work at
	// subterm granularity. The cache is safe for concurrent readers
	// and writers, so parallel report workers simplify through it
	// directly. Shared with successor sessions.
	nf *rewrite.Cache

	// reports is the cross-deployment report cache successor sessions
	// inherit: opaque per-router artifacts (the explainer's lift
	// results) keyed by encoding key. Values are validated by the
	// caller against the current encoding before reuse — the cache
	// itself only stores and counts.
	reports *ReportCache

	// prevBase is the predecessor session's base encoding (set by
	// NewSessionFrom): ensureBase derives this session's base from it,
	// sharing every candidate whose path avoids the edited routers.
	prevBase *synth.Base
}

// solvEntry is one pooled warm solver with its encoding key.
type solvEntry struct {
	key string
	sv  *smt.Solver
}

// simpCache is the sharable per-seed simplification cache (see
// Session.simps), LRU-bounded when a limit is set.
type simpCache struct {
	mu        sync.Mutex
	m         map[logic.Term]*list.Element
	lru       *list.List // of simpEntry, front = most recent
	limit     int
	evictions int
}

type simpEntry struct {
	seed logic.Term
	out  *SimplifyOutcome
}

func newSimpCache() *simpCache {
	return &simpCache{m: make(map[logic.Term]*list.Element), lru: list.New()}
}

func (c *simpCache) get(seed logic.Term) (*SimplifyOutcome, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[seed]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(simpEntry).out, true
}

func (c *simpCache) put(seed logic.Term, out *SimplifyOutcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[seed]; ok {
		c.lru.MoveToFront(el)
		el.Value = simpEntry{seed: seed, out: out}
		return
	}
	c.m[seed] = c.lru.PushFront(simpEntry{seed: seed, out: out})
	c.shedLocked()
}

func (c *simpCache) setLimit(n int) {
	c.mu.Lock()
	c.limit = n
	c.shedLocked()
	c.mu.Unlock()
}

func (c *simpCache) shedLocked() {
	if c.limit <= 0 {
		return
	}
	for c.lru.Len() > c.limit {
		el := c.lru.Back()
		c.lru.Remove(el)
		delete(c.m, el.Value.(simpEntry).seed)
		c.evictions++
	}
}

func (c *simpCache) counters() (entries, evictions int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len(), c.evictions
}

// ReportCache stores per-router explanation artifacts across
// deployment generations. Keys are the session encoding keys; values
// are opaque to the engine (the core layer stores its lift outcomes
// and re-validates them against the live encoding before splicing, so
// a stale entry costs a recompute, never a wrong answer). Safe for
// concurrent use.
//
// Entries are accounted by the byte size the caller declares at Put
// time; with a byte cap set (SetMaxBytes) the cache evicts least-
// recently-used entries until it fits — an eviction costs a later
// recompute, never a wrong answer, for the same reason. A single entry
// larger than the whole cap is dropped rather than stored: the cap is
// a heap bound, not a target.
type ReportCache struct {
	mu        sync.Mutex
	m         map[string]*list.Element
	lru       *list.List // of reportEntry, front = most recent
	maxBytes  int64
	bytes     int64
	hits      int
	misses    int
	evictions int
}

type reportEntry struct {
	key  string
	v    any
	size int64
}

// NewReportCache creates an empty, unbounded report cache.
func NewReportCache() *ReportCache {
	return &ReportCache{m: make(map[string]*list.Element), lru: list.New()}
}

// SetMaxBytes bounds the cache's total accounted size (0 = unlimited),
// evicting immediately if it is already over.
func (rc *ReportCache) SetMaxBytes(n int64) {
	rc.mu.Lock()
	rc.maxBytes = n
	rc.shedLocked()
	rc.mu.Unlock()
}

// Get returns the entry stored under key, counting a hit or miss.
func (rc *ReportCache) Get(key string) (any, bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	el, ok := rc.m[key]
	if !ok {
		rc.misses++
		return nil, false
	}
	rc.hits++
	rc.lru.MoveToFront(el)
	return el.Value.(reportEntry).v, true
}

// Put stores an entry under key with its accounted byte size (the
// caller's estimate of what retaining v costs), displacing any previous
// entry under the key and evicting least-recently-used entries while
// the cache exceeds its byte cap.
func (rc *ReportCache) Put(key string, v any, size int64) {
	if size < 0 {
		size = 0
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if el, ok := rc.m[key]; ok {
		rc.bytes += size - el.Value.(reportEntry).size
		el.Value = reportEntry{key: key, v: v, size: size}
		rc.lru.MoveToFront(el)
		rc.shedLocked()
		return
	}
	rc.m[key] = rc.lru.PushFront(reportEntry{key: key, v: v, size: size})
	rc.bytes += size
	rc.shedLocked()
}

func (rc *ReportCache) shedLocked() {
	if rc.maxBytes <= 0 {
		return
	}
	for rc.bytes > rc.maxBytes && rc.lru.Len() > 0 {
		el := rc.lru.Back()
		rc.lru.Remove(el)
		ent := el.Value.(reportEntry)
		delete(rc.m, ent.key)
		rc.bytes -= ent.size
		rc.evictions++
	}
}

// Len returns the number of stored entries.
func (rc *ReportCache) Len() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.lru.Len()
}

// MaxBytes returns the cache's byte cap (0 = unlimited). Callers that
// buffer a value before storing it (the streaming report tee) use it to
// stop buffering early once the value cannot fit anyway.
func (rc *ReportCache) MaxBytes() int64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.maxBytes
}

// Bytes returns the cache's current accounted size.
func (rc *ReportCache) Bytes() int64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.bytes
}

// Counters returns the cumulative hit and miss counts (callers wanting
// per-phase figures snapshot before and after).
func (rc *ReportCache) Counters() (hits, misses int) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.hits, rc.misses
}

// Evictions returns how many entries the size limit has displaced.
func (rc *ReportCache) Evictions() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.evictions
}

// SimplifyOutcome is one seed's cached simplification: the simplified
// term plus the simplifier's diagnostics, which explanations report.
// Outcomes are shared across queries and must be treated as immutable.
type SimplifyOutcome struct {
	Simplified logic.Term
	Passes     int
	Trace      []int
	Stats      map[rewrite.RuleName]int
}

type entry struct {
	ready chan struct{} // closed when enc/err are set
	enc   *synth.Encoding
	err   error
}

// NewSession creates a session over a synthesis problem's output. The
// deployment is the concrete synthesized deployment whose invariant
// structure the session caches; reqs and opts must match what derived
// queries will encode with.
func NewSession(net *topology.Network, reqs []spec.Requirement, dep config.Deployment, opts synth.Options) *Session {
	return &Session{
		net:     net,
		reqs:    reqs,
		dep:     dep,
		opts:    opts,
		in:      logic.Default(),
		entries: make(map[string]*entry),
		solvers: make(map[string]*list.Element),
		solvLRU: list.New(),
		simps:   newSimpCache(),
		nf:      rewrite.NewCache(),
		reports: NewReportCache(),
	}
}

// NewSessionFrom creates the successor session for an edited variant
// of prev's problem: same topology and encoder options, new
// requirements and deployment. The successor shares prev's pure
// cross-deployment state — the term table, the normal-form cache, the
// per-seed simplification cache, and the report cache — and derives
// its base encoding from prev's (candidates on paths avoiding the
// edited routers are pointer-shared). Deployment-specific state is NOT
// shared: encoding entries and the warm-solver pool start empty, since
// their contents assert the predecessor deployment's constraints.
// Budget, VerifyProofs, and the cache limits are copied from prev
// (shared-cache limits travel with the shared caches themselves).
func NewSessionFrom(prev *Session, reqs []spec.Requirement, dep config.Deployment) *Session {
	s := &Session{
		net:          prev.net,
		reqs:         reqs,
		dep:          dep,
		opts:         prev.opts,
		in:           prev.in,
		Budget:       prev.Budget,
		VerifyProofs: prev.VerifyProofs,
		entries:      make(map[string]*entry),
		solvers:      make(map[string]*list.Element),
		solvLRU:      list.New(),
		simps:        prev.simps,
		nf:           prev.nf,
		reports:      prev.reports,
	}
	prev.solvMu.Lock()
	s.solvLimit = prev.solvLimit
	prev.solvMu.Unlock()
	prev.mu.Lock()
	s.liftCap = prev.liftCap
	s.streamWin = prev.streamWin
	prev.mu.Unlock()
	prev.baseMu.Lock()
	s.prevBase = prev.base
	prev.baseMu.Unlock()
	// The scoped recording is deployment-specific and does NOT carry
	// over; the successor rebuilds its own on the next whole-network
	// sweep. The off switch is a session-chain policy and does carry.
	prev.scopedMu.Lock()
	s.scopedOff = prev.scopedOff
	prev.scopedMu.Unlock()
	return s
}

// SetCacheLimits bounds the session's growable caches (see
// CacheLimits). Call before heavy traffic; limits on the shared report
// and simplify caches apply to every session sharing them.
func (s *Session) SetCacheLimits(l CacheLimits) {
	s.reports.SetMaxBytes(l.ReportBytes)
	s.simps.setLimit(l.Simplify)
	s.solvMu.Lock()
	s.solvLimit = l.Solvers
	s.shedSolversLocked()
	s.solvMu.Unlock()
	s.mu.Lock()
	s.liftCap = l.LiftSamples
	s.streamWin = l.StreamWindow
	s.trimLiftLocked()
	s.mu.Unlock()
}

// StreamWindow returns the configured streaming-report buffer bound
// (CacheLimits.StreamWindow); zero means the caller derives a default
// from its worker count.
func (s *Session) StreamWindow() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.streamWin
}

// Trim sheds the session's rebuildable warm state: the warm-solver
// pool is emptied (pooled solvers are pure accelerators — the next
// query rebuilds one cold) and the lift-latency window is compacted.
// The report and simplify caches stay, already bounded by their
// limits. A serving layer calls this on idle or memory pressure; a
// trimmed session keeps answering every query correctly.
func (s *Session) Trim() {
	s.solvMu.Lock()
	dropped := s.solvLRU.Len()
	s.solvers = make(map[string]*list.Element)
	s.solvLRU.Init()
	s.solvMu.Unlock()
	s.mu.Lock()
	s.stats.WarmSolverEvicted += dropped
	s.trimLiftLocked()
	s.mu.Unlock()
}

// trimLiftLocked keeps only the most recent liftCap samples. Caller
// holds s.mu.
func (s *Session) trimLiftLocked() {
	cap := s.liftCap
	if cap <= 0 {
		cap = DefaultLiftSampleCap
	}
	if len(s.liftNS) > cap {
		s.liftNS = append(s.liftNS[:0], s.liftNS[len(s.liftNS)-cap:]...)
	}
}

// ReportCache returns the session's cross-deployment report cache.
func (s *Session) ReportCache() *ReportCache { return s.reports }

// Interner returns the session's shared term table. Solvers working on
// this session's encodings should adopt it (smt.Solver.UseInterner) so
// their memo tables key on the same canonical pointers the encodings
// hold.
func (s *Session) Interner() *logic.Interner { return s.in }

// NormCache returns the session's shared normal-form cache. Callers
// that simplify terms outside Simplify (for example the lift stage's
// candidate rewriting) should build their simplifier with
// rewrite.NewShared over it, so their work lands in — and is answered
// from — the session-lifetime table. The cache is safe for concurrent
// use; the per-goroutine Simplifier wrapping it is not.
func (s *Session) NormCache() *rewrite.Cache { return s.nf }

// Encode returns the encoding of the (possibly partially symbolic)
// sketch, caching by key. The key must uniquely determine the sketch
// given the session's deployment — callers derive both from the same
// symbolization targets. The first call builds the base encoding of
// the concrete deployment; every call derives its sketch's encoding
// from that base, so candidates untouched by the symbolization are
// reused rather than re-derived. Failed encodes are not cached (a
// query cancelled by its context can be retried).
func (s *Session) Encode(ctx context.Context, sketch config.Deployment, key string) (*synth.Encoding, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.mu.Unlock()
		select {
		case <-e.ready:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if e.err == nil {
			s.mu.Lock()
			s.stats.CacheHits++
			s.mu.Unlock()
		}
		return e.enc, e.err
	}
	e := &entry{ready: make(chan struct{})}
	s.entries[key] = e
	s.mu.Unlock()

	e.enc, e.err = s.encode(ctx, sketch)
	close(e.ready)
	if e.err != nil {
		s.mu.Lock()
		delete(s.entries, key)
		s.mu.Unlock()
	}
	return e.enc, e.err
}

// encode performs one derived encode, attaching the base — and, when
// one has been prepared, the scoped recording — so the encoder can
// splice instead of re-deriving the whole network.
func (s *Session) encode(ctx context.Context, sketch config.Deployment) (*synth.Encoding, error) {
	base := s.ensureBase(ctx)
	scoped := s.currentScoped()
	start := time.Now()
	enc, err := synth.NewEncoder(s.net, sketch, s.opts).WithBase(base).WithScope(scoped).WithInterner(s.in).EncodeContext(ctx, s.reqs)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.stats.Encodes++
	s.stats.Candidates += enc.Stats.Candidates
	s.stats.ReusedCandidates += enc.Stats.ReusedCandidates
	if enc.Stats.ScopedGroupsCopied+enc.Stats.ScopedGroupsEncoded > 0 {
		s.stats.ScopedEncodes++
		s.stats.ScopedGroupsCopied += enc.Stats.ScopedGroupsCopied
		s.stats.ScopedGroupsEncoded += enc.Stats.ScopedGroupsEncoded
	}
	s.stats.EncodeTime += time.Since(start)
	s.mu.Unlock()
	return enc, nil
}

// currentScoped returns the prepared scoped recording, nil when none
// exists or the path is disabled.
func (s *Session) currentScoped() *synth.ScopedBase {
	s.scopedMu.Lock()
	defer s.scopedMu.Unlock()
	if s.scopedOff {
		return nil
	}
	return s.scoped
}

// PrepareScoped builds the session's scoped recording once: a single
// whole-network encode of the concrete deployment with per-group
// constraint spans recorded (synth.NewScopedBase). Whole-network report
// sweeps call it up front so every per-router encode splices instead of
// re-deriving the network; single queries never call it and stay on the
// plain path (one extra full encode would not amortize). Like
// ensureBase, a failure for a non-context reason is latched and the
// path degrades to whole-network encodes — never to a wrong answer.
// Returns the recording, or nil when unavailable or disabled.
func (s *Session) PrepareScoped(ctx context.Context) *synth.ScopedBase {
	s.scopedMu.Lock()
	defer s.scopedMu.Unlock()
	if s.scopedOff || s.scopedDead {
		return nil
	}
	if s.scoped != nil {
		return s.scoped
	}
	base := s.ensureBase(ctx)
	start := time.Now()
	sb, err := synth.NewScopedBase(ctx, s.net, s.dep, s.opts, s.reqs, base, s.in)
	if err != nil {
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			s.scopedDead = true
		}
		return nil
	}
	s.scoped = sb
	s.mu.Lock()
	s.stats.BaseEncodes++
	s.stats.EncodeTime += time.Since(start)
	s.mu.Unlock()
	return sb
}

// DisableScopedEncoding forces every encode of this session (and its
// successors) onto the whole-network path. Benchmark cold arms and
// byte-identity tests use it; results are identical either way, only
// slower.
func (s *Session) DisableScopedEncoding() {
	s.scopedMu.Lock()
	s.scopedOff = true
	s.scoped = nil
	s.scopedMu.Unlock()
}

// ensureBase builds the base encoding once. Base construction is an
// optimization: if it fails for a reason other than cancellation the
// failure is latched and derived encodes simply proceed without reuse
// (they would surface any real encoding error themselves); a
// cancelled build is retried by the next query.
func (s *Session) ensureBase(ctx context.Context) *synth.Base {
	s.baseMu.Lock()
	defer s.baseMu.Unlock()
	if s.base != nil || s.baseDead {
		return s.base
	}
	start := time.Now()
	base, err := synth.NewBaseFrom(ctx, s.net, s.dep, s.opts, s.prevBase)
	if err != nil {
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			s.baseDead = true
		}
		return nil
	}
	s.base = base
	s.mu.Lock()
	s.stats.BaseEncodes++
	s.stats.EncodeTime += time.Since(start)
	s.mu.Unlock()
	return base
}

// EnsureBase builds (or returns) the session's base encoding — the
// concrete deployment's candidate structure. Nil when base
// construction failed; derived encodes then proceed without reuse.
// Exported for the delta layer, which diffs the predecessor's and
// successor's bases to locate an edit's modeled footprint.
func (s *Session) EnsureBase(ctx context.Context) *synth.Base {
	return s.ensureBase(ctx)
}

// Simplify normalizes the seed term through the session's shared
// normal-form cache, caching the per-seed outcome by the term's
// canonical pointer — with hash-consed encodings a repeat query over a
// cached encoding presents the very same seed pointer, so the whole
// simplification is answered by one map lookup. A miss still reuses
// every subterm normal form earlier seeds left in the shared cache.
// Concurrent misses on the same term may compute it twice; the
// function is pure and deterministic (outcome diagnostics are
// reconstructed from the cache's dependency graph, not from the order
// work happened to be done in), so either result is the same.
func (s *Session) Simplify(seed logic.Term) *SimplifyOutcome {
	seed = s.in.Intern(seed)
	if out, ok := s.simps.get(seed); ok {
		s.mu.Lock()
		s.stats.SimplifyHits++
		s.mu.Unlock()
		return out
	}
	simp := rewrite.NewShared(s.nf)
	out := &SimplifyOutcome{
		Simplified: simp.Simplify(seed),
		Passes:     simp.Passes,
		Trace:      append([]int(nil), simp.Trace...),
		Stats:      simp.Stats,
	}
	s.simps.put(seed, out)
	return out
}

// CheckoutSolver removes and returns the idle warm solver held for
// key, or nil when none is pooled (build one, use it, and CheckinSolver
// it when done). The caller owns the returned solver exclusively until
// checkin. Every call is counted as a warm hit or miss.
func (s *Session) CheckoutSolver(key string) *smt.Solver {
	s.solvMu.Lock()
	var sv *smt.Solver
	if el, ok := s.solvers[key]; ok {
		sv = el.Value.(solvEntry).sv
		s.solvLRU.Remove(el)
		delete(s.solvers, key)
	}
	s.solvMu.Unlock()
	s.mu.Lock()
	if sv != nil {
		s.stats.WarmSolverHits++
	} else {
		s.stats.WarmSolverMisses++
	}
	s.mu.Unlock()
	return sv
}

// CheckinSolver parks a solver for later reuse under key. The solver
// must be in the state the key promises: exactly the constraints the
// keyed encoding asserts (learnt clauses and retracted guards on top
// are fine — they are consequences, not new constraints). Checkin
// verifies the promise where it can: a solver that still holds active
// guarded assertions — the signature of a query that was cancelled or
// errored out between asserting a temporary constraint and retracting
// it — is dropped instead of pooled, because its extra constraints
// would silently change the verdicts of every later query under the
// key. A solver already pooled under the key is displaced (kept: the
// newer one, which has seen more queries and is warmer), and a full
// pool evicts its least-recently-used key.
func (s *Session) CheckinSolver(key string, sv *smt.Solver) {
	if sv == nil {
		return
	}
	if sv.ActiveGuards() > 0 {
		// Not pristine: temporary constraints are still in force. The
		// guard handles are gone, so the state cannot be restored —
		// drop the solver rather than let it poison later queries.
		s.mu.Lock()
		s.stats.WarmSolverDropped++
		s.mu.Unlock()
		return
	}
	evicted := 0
	s.solvMu.Lock()
	if el, ok := s.solvers[key]; ok {
		s.solvLRU.Remove(el)
	}
	s.solvers[key] = s.solvLRU.PushFront(solvEntry{key: key, sv: sv})
	evicted = s.shedSolversLocked()
	s.solvMu.Unlock()
	if evicted > 0 {
		s.mu.Lock()
		s.stats.WarmSolverEvicted += evicted
		s.mu.Unlock()
	}
}

// shedSolversLocked evicts least-recently-used pooled solvers until
// the pool respects its limit, returning how many were dropped. Caller
// holds s.solvMu.
func (s *Session) shedSolversLocked() int {
	if s.solvLimit <= 0 {
		return 0
	}
	n := 0
	for s.solvLRU.Len() > s.solvLimit {
		el := s.solvLRU.Back()
		s.solvLRU.Remove(el)
		delete(s.solvers, el.Value.(solvEntry).key)
		n++
	}
	return n
}

// PooledSolvers reports how many idle solvers the warm pool holds.
func (s *Session) PooledSolvers() int {
	s.solvMu.Lock()
	defer s.solvMu.Unlock()
	return s.solvLRU.Len()
}

// AddSolverStats folds SAT-level effort (from a solver that has
// finished its work, or the Stats().Sub(checkpoint) delta of one that
// lives on in the pool) into the session's merged statistics.
func (s *Session) AddSolverStats(st sat.Stats) {
	s.mu.Lock()
	s.stats.Solves += st.Solves
	s.stats.Conflicts += st.Conflicts
	s.stats.Propagations += st.Propagations
	s.stats.Decisions += st.Decisions
	s.stats.Learnt += st.Learnt
	s.stats.BinPropagations += st.BinPropagations
	s.stats.Restarts += st.Restarts
	s.stats.BlockedRestarts += st.BlockedRestarts
	s.stats.MinimizedLits += st.MinimizedLits
	s.stats.LBDSum += st.LBDSum
	for i := range st.LBDHist {
		s.stats.LBDHist[i] += st.LBDHist[i]
	}
	s.stats.SatRaces += st.PortfolioRaces
	for i := range st.PortfolioWins {
		s.stats.SatWins[i] += st.PortfolioWins[i]
	}
	s.stats.SharedExported += st.SharedExported
	s.stats.SharedImported += st.SharedImported
	s.stats.SharedRejected += st.SharedRejected
	s.stats.InprocessRounds += st.InprocessRounds
	s.stats.InprocessDeleted += st.InprocessDeleted
	if st.CoreLearnts > s.stats.CoreLearnts {
		s.stats.CoreLearnts = st.CoreLearnts
	}
	if st.MidLearnts > s.stats.MidLearnts {
		s.stats.MidLearnts = st.MidLearnts
	}
	if st.LocalLearnts > s.stats.LocalLearnts {
		s.stats.LocalLearnts = st.LocalLearnts
	}
	s.mu.Unlock()
}

// AddProofStats folds one proof verification into the session's merged
// statistics.
func (s *Session) AddProofStats(rep smt.ProofReport) {
	s.mu.Lock()
	s.stats.ProofChecks++
	s.stats.ProofOps += rep.Ops
	s.stats.ProofLemmas += rep.Lemmas
	s.stats.ProofTime += rep.Duration
	s.stats.CoreLits += rep.CoreLits
	s.stats.ShrunkCoreLits += rep.ShrunkCoreLits
	s.mu.Unlock()
}

// AddLiftQueries records the latencies of individual lift-stage SMT
// queries (vacuity, necessity, extendability probes), batched per
// worker to keep the lock off the hot path. The sample window is
// bounded (CacheLimits.LiftSamples, DefaultLiftSampleCap by default):
// the total query count keeps growing, the percentiles are computed
// over the most recent window.
func (s *Session) AddLiftQueries(ds []time.Duration) {
	if len(ds) == 0 {
		return
	}
	s.mu.Lock()
	for _, d := range ds {
		s.liftNS = append(s.liftNS, d.Nanoseconds())
	}
	s.liftAll += len(ds)
	s.trimLiftLocked()
	s.mu.Unlock()
}

// LiftSamples returns a copy of the retained lift-latency sample
// window (nanoseconds, unsorted). A pool aggregating several sessions
// merges the windows and computes percentiles over the union.
func (s *Session) LiftSamples() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int64(nil), s.liftNS...)
}

// Stats returns a snapshot of the merged statistics. The lift-query
// latency percentiles are computed over the retained sample window.
func (s *Session) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.NormCacheHits = s.nf.Hits()
	st.NormCacheMisses = s.nf.Misses()
	st.NormCacheEntries = s.nf.Len()
	st.ReportCacheHits, st.ReportCacheMisses = s.reports.Counters()
	st.ReportCacheEvictions = s.reports.Evictions()
	st.ReportCacheBytes = s.reports.Bytes()
	st.SimplifyEntries, st.SimplifyEvictions = s.simps.counters()
	st.LiftQueries = s.liftAll
	if n := len(s.liftNS); n > 0 {
		ns := append([]int64(nil), s.liftNS...)
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		st.LiftP50 = time.Duration(ns[(n-1)*50/100])
		st.LiftP95 = time.Duration(ns[(n-1)*95/100])
	}
	return st
}
