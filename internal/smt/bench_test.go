package smt

import (
	"fmt"
	"testing"

	"repro/internal/logic"
)

// sharedSubtermFormula builds a boolean formula whose subterms are
// heavily shared: a ladder f_i = (f_{i-1} & a_i) | (f_{i-1} & b_i),
// where every f_{i-1} occurs twice. Without O(1) structural sharing
// the Tseitin memo pays O(|f_{i-1}|) per probe, so encoding the ladder
// is quadratic in its depth.
func sharedSubtermFormula(depth int) logic.Term {
	f := logic.Term(logic.NewBoolVar("x0"))
	for i := 1; i <= depth; i++ {
		a := logic.NewBoolVar(fmt.Sprintf("a%d", i))
		b := logic.NewBoolVar(fmt.Sprintf("b%d", i))
		f = logic.Or(logic.And(f, a), logic.And(f, b))
	}
	return f
}

// BenchmarkEncodeSharedSubterms measures asserting a formula with
// pervasive subterm sharing — the litOf/valueListOf memo hot path.
func BenchmarkEncodeSharedSubterms(b *testing.B) {
	f := sharedSubtermFormula(14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSolver()
		if err := s.Assert(f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnumerate50Models measures enumerating 50 models of a
// two-variable constraint — the blocking-clause hot path.
func BenchmarkEnumerate50Models(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewSolver()
		n := logic.NewIntVar("n", 0, 63)
		m := logic.NewIntVar("m", 0, 63)
		if err := s.Assert(logic.Ne(n, m)); err != nil {
			b.Fatal(err)
		}
		count, _, err := s.EnumerateModels([]*logic.Var{n, m}, 50, func(logic.Assignment) bool { return true })
		if err != nil {
			b.Fatal(err)
		}
		if count != 50 {
			b.Fatalf("count = %d, want 50", count)
		}
	}
}
