package smt

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/sat"
)

// litOf returns a propositional literal equisatisfiable with the
// Bool-sorted term t (a Tseitin encoding: the literal is constrained to
// be equivalent to t). Results are memoized by canonical pointer so
// shared subterms are encoded once, and each probe is a single map
// lookup: t is interned on entry (an O(1) ownership check for terms
// built by the logic constructors), and the arguments of a canonical
// term are canonical themselves, so the recursion never re-interns.
func (s *Solver) litOf(t logic.Term) (sat.Lit, error) {
	t = s.in.Intern(t)
	if l, ok := s.boolMemo[t]; ok {
		return l, nil
	}
	l, err := s.encodeBool(t)
	if err != nil {
		return 0, err
	}
	s.boolMemo[t] = l
	return l, nil
}

func (s *Solver) encodeBool(t logic.Term) (sat.Lit, error) {
	switch n := t.(type) {
	case *logic.BoolLit:
		if n.Val {
			return s.litTrue, nil
		}
		return s.litFalse, nil
	case *logic.Var:
		if err := s.Declare(n); err != nil {
			return 0, err
		}
		e := s.enc[n.Name]
		if !n.S.IsBool() {
			return 0, fmt.Errorf("smt: boolean encoding of non-bool variable %q", n.Name)
		}
		return e.boolLit, nil
	case *logic.Apply:
		return s.encodeBoolApply(n)
	}
	return 0, fmt.Errorf("smt: cannot encode %v (type %T) as boolean", t, t)
}

func (s *Solver) encodeBoolApply(n *logic.Apply) (sat.Lit, error) {
	switch n.Op {
	case logic.OpNot:
		l, err := s.litOf(n.Args[0])
		if err != nil {
			return 0, err
		}
		return l.Neg(), nil

	case logic.OpAnd, logic.OpOr:
		lits := make([]sat.Lit, len(n.Args))
		for i, a := range n.Args {
			l, err := s.litOf(a)
			if err != nil {
				return 0, err
			}
			lits[i] = l
		}
		if n.Op == logic.OpAnd {
			return s.andLit(lits), nil
		}
		return s.orLit(lits), nil

	case logic.OpImplies:
		l, err := s.litOf(n.Args[0])
		if err != nil {
			return 0, err
		}
		r, err := s.litOf(n.Args[1])
		if err != nil {
			return 0, err
		}
		return s.orLit([]sat.Lit{l.Neg(), r}), nil

	case logic.OpIff:
		l, err := s.litOf(n.Args[0])
		if err != nil {
			return 0, err
		}
		r, err := s.litOf(n.Args[1])
		if err != nil {
			return 0, err
		}
		return s.iffLit(l, r), nil

	case logic.OpEq, logic.OpNe:
		eq, err := s.eqLit(n.Args[0], n.Args[1])
		if err != nil {
			return 0, err
		}
		if n.Op == logic.OpNe {
			return eq.Neg(), nil
		}
		return eq, nil

	case logic.OpLt, logic.OpLe, logic.OpGt, logic.OpGe:
		return s.cmpLit(n.Op, n.Args[0], n.Args[1])

	case logic.OpIte:
		// Boolean-sorted ite: (c & t) | (!c & e).
		c, err := s.litOf(n.Args[0])
		if err != nil {
			return 0, err
		}
		tl, err := s.litOf(n.Args[1])
		if err != nil {
			return 0, err
		}
		el, err := s.litOf(n.Args[2])
		if err != nil {
			return 0, err
		}
		a := s.andLit([]sat.Lit{c, tl})
		b := s.andLit([]sat.Lit{c.Neg(), el})
		return s.orLit([]sat.Lit{a, b}), nil
	}
	return 0, fmt.Errorf("smt: cannot encode operator %v as boolean", n.Op)
}

// andLit returns a literal equivalent to the conjunction of lits.
func (s *Solver) andLit(lits []sat.Lit) sat.Lit {
	switch len(lits) {
	case 0:
		return s.litTrue
	case 1:
		return lits[0]
	}
	a := sat.PosLit(s.newSatVar())
	long := make([]sat.Lit, 0, len(lits)+1)
	long = append(long, a)
	for _, l := range lits {
		s.addSatClause(a.Neg(), l) // a -> l
		long = append(long, l.Neg())
	}
	s.addSatClause(long...) // (l1 & ... & ln) -> a
	return a
}

// orLit returns a literal equivalent to the disjunction of lits.
func (s *Solver) orLit(lits []sat.Lit) sat.Lit {
	switch len(lits) {
	case 0:
		return s.litFalse
	case 1:
		return lits[0]
	}
	a := sat.PosLit(s.newSatVar())
	long := make([]sat.Lit, 0, len(lits)+1)
	long = append(long, a.Neg())
	for _, l := range lits {
		s.addSatClause(a, l.Neg()) // l -> a
		long = append(long, l)
	}
	s.addSatClause(long...) // a -> (l1 | ... | ln)
	return a
}

// iffLit returns a literal equivalent to l <-> r.
func (s *Solver) iffLit(l, r sat.Lit) sat.Lit {
	a := sat.PosLit(s.newSatVar())
	s.addSatClause(a.Neg(), l.Neg(), r)
	s.addSatClause(a.Neg(), l, r.Neg())
	s.addSatClause(a, l, r)
	s.addSatClause(a, l.Neg(), r.Neg())
	return a
}

// eqLit encodes equality between two same-sorted terms.
func (s *Solver) eqLit(a, b logic.Term) (sat.Lit, error) {
	if a.Sort().IsBool() {
		l, err := s.litOf(a)
		if err != nil {
			return 0, err
		}
		r, err := s.litOf(b)
		if err != nil {
			return 0, err
		}
		return s.iffLit(l, r), nil
	}
	va, err := s.valueListOf(a)
	if err != nil {
		return 0, err
	}
	vb, err := s.valueListOf(b)
	if err != nil {
		return 0, err
	}
	// OR over equal value pairs of (guardA & guardB).
	var ors []sat.Lit
	for i, x := range va.vals {
		for j, y := range vb.vals {
			if x == y {
				ors = append(ors, s.andLit([]sat.Lit{va.lits[i], vb.lits[j]}))
			}
		}
	}
	return s.orLit(ors), nil
}

// cmpLit encodes an integer comparison.
func (s *Solver) cmpLit(op logic.Op, a, b logic.Term) (sat.Lit, error) {
	va, err := s.valueListOf(a)
	if err != nil {
		return 0, err
	}
	vb, err := s.valueListOf(b)
	if err != nil {
		return 0, err
	}
	holds := func(x, y int64) bool {
		switch op {
		case logic.OpLt:
			return x < y
		case logic.OpLe:
			return x <= y
		case logic.OpGt:
			return x > y
		default:
			return x >= y
		}
	}
	var ors []sat.Lit
	for i, x := range va.vals {
		for j, y := range vb.vals {
			if holds(x, y) {
				ors = append(ors, s.andLit([]sat.Lit{va.lits[i], vb.lits[j]}))
			}
		}
	}
	return s.orLit(ors), nil
}

// valueListOf returns the value-list encoding of a non-boolean term,
// memoized by canonical pointer (see litOf).
func (s *Solver) valueListOf(t logic.Term) (*valueList, error) {
	t = s.in.Intern(t)
	if vl, ok := s.valMemo[t]; ok {
		return vl, nil
	}
	vl, err := s.encodeValue(t)
	if err != nil {
		return nil, err
	}
	s.valMemo[t] = vl
	return vl, nil
}

func (s *Solver) encodeValue(t logic.Term) (*valueList, error) {
	switch n := t.(type) {
	case *logic.IntLit:
		return &valueList{sort: logic.Int, vals: []int64{n.Val}, lits: []sat.Lit{s.litTrue}}, nil
	case *logic.EnumLit:
		i, ok := n.S.ValueIndex(n.Val)
		if !ok {
			return nil, fmt.Errorf("smt: enum literal %q not in sort %v", n.Val, n.S)
		}
		return &valueList{sort: n.S, vals: []int64{int64(i)}, lits: []sat.Lit{s.litTrue}}, nil
	case *logic.Var:
		if err := s.Declare(n); err != nil {
			return nil, err
		}
		e := s.enc[n.Name]
		if e.vl == nil {
			return nil, fmt.Errorf("smt: value encoding of boolean variable %q", n.Name)
		}
		return e.vl, nil
	case *logic.Apply:
		return s.encodeValueApply(n)
	}
	return nil, fmt.Errorf("smt: cannot value-encode %v (type %T)", t, t)
}

func (s *Solver) encodeValueApply(n *logic.Apply) (*valueList, error) {
	switch n.Op {
	case logic.OpAdd, logic.OpSub:
		acc, err := s.valueListOf(n.Args[0])
		if err != nil {
			return nil, err
		}
		for _, arg := range n.Args[1:] {
			vb, err := s.valueListOf(arg)
			if err != nil {
				return nil, err
			}
			combine := func(x, y int64) int64 { return x + y }
			if n.Op == logic.OpSub {
				combine = func(x, y int64) int64 { return x - y }
			}
			acc, err = s.combineValueLists(acc, vb, combine)
			if err != nil {
				return nil, err
			}
		}
		return acc, nil

	case logic.OpIte:
		c, err := s.litOf(n.Args[0])
		if err != nil {
			return nil, err
		}
		va, err := s.valueListOf(n.Args[1])
		if err != nil {
			return nil, err
		}
		vb, err := s.valueListOf(n.Args[2])
		if err != nil {
			return nil, err
		}
		guards := make(map[int64][]sat.Lit)
		for i, x := range va.vals {
			guards[x] = append(guards[x], s.andLit([]sat.Lit{c, va.lits[i]}))
		}
		for i, x := range vb.vals {
			guards[x] = append(guards[x], s.andLit([]sat.Lit{c.Neg(), vb.lits[i]}))
		}
		return s.mergedValueList(va.sort, guards)
	}
	return nil, fmt.Errorf("smt: cannot value-encode operator %v", n.Op)
}

// combineValueLists builds the value list of f(a, b) over the cross
// product of the operand domains, merging guards of coinciding values.
func (s *Solver) combineValueLists(a, b *valueList, f func(int64, int64) int64) (*valueList, error) {
	if len(a.vals)*len(b.vals) > MaxValueListSize {
		return nil, fmt.Errorf("smt: arithmetic cross product of %d x %d values exceeds cap %d",
			len(a.vals), len(b.vals), MaxValueListSize)
	}
	guards := make(map[int64][]sat.Lit)
	for i, x := range a.vals {
		for j, y := range b.vals {
			guards[f(x, y)] = append(guards[f(x, y)], s.andLit([]sat.Lit{a.lits[i], b.lits[j]}))
		}
	}
	return s.mergedValueList(logic.Int, guards)
}

// mergedValueList turns a value -> guard-disjunction map into a value
// list, in ascending value order for determinism. The exactly-one
// invariant is inherited from the operand lists: for each model
// exactly one (value, guard) pair fires.
func (s *Solver) mergedValueList(sort *logic.Sort, guards map[int64][]sat.Lit) (*valueList, error) {
	if len(guards) > MaxValueListSize {
		return nil, fmt.Errorf("smt: value list of %d entries exceeds cap %d", len(guards), MaxValueListSize)
	}
	vals := make([]int64, 0, len(guards))
	for v := range guards {
		vals = append(vals, v)
	}
	// insertion sort (n small, avoids importing sort for int64 pre-1.21 style)
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	lits := make([]sat.Lit, len(vals))
	for i, v := range vals {
		lits[i] = s.orLit(guards[v])
	}
	return &valueList{sort: sort, vals: vals, lits: lits}, nil
}
