package config

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"

	"repro/internal/bgp"
)

// Parse reads a single router configuration in the IOS-like dialect
// produced by Print. Lines starting with "!" are separators/comments.
func Parse(src string) (*Config, error) {
	var c *Config
	var curMap *RouteMap
	var curClause *Clause
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "!") {
			continue
		}
		fields := strings.Fields(line)
		fail := func(format string, args ...any) error {
			return fmt.Errorf("config: line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}
		switch {
		case fields[0] == "router":
			if len(fields) != 3 || fields[1] != "bgp" {
				return nil, fail("expected 'router bgp <name>'")
			}
			if c != nil {
				return nil, fail("multiple 'router bgp' stanzas")
			}
			c = New(fields[2])

		case fields[0] == "neighbor":
			if c == nil {
				return nil, fail("'neighbor' before 'router bgp'")
			}
			switch len(fields) {
			case 2:
				c.AddNeighbor(fields[1], "", "")
			case 5:
				if fields[2] != "route-map" {
					return nil, fail("expected 'neighbor <peer> route-map <map> in|out'")
				}
				peer, mapName, dir := fields[1], fields[3], fields[4]
				n := c.Neighbor(peer)
				if n == nil {
					c.AddNeighbor(peer, "", "")
					n = c.Neighbor(peer)
				}
				switch dir {
				case "in":
					n.ImportMap = mapName
				case "out":
					n.ExportMap = mapName
				default:
					return nil, fail("direction must be in or out, got %q", dir)
				}
			default:
				return nil, fail("malformed neighbor line")
			}

		case fields[0] == "ip" && len(fields) >= 2 && fields[1] == "prefix-list":
			if c == nil {
				return nil, fail("'ip prefix-list' before 'router bgp'")
			}
			// ip prefix-list NAME seq N permit|deny PREFIX
			if len(fields) != 7 || fields[3] != "seq" {
				return nil, fail("expected 'ip prefix-list <name> seq <n> permit|deny <prefix>'")
			}
			name := fields[2]
			seq, err := strconv.Atoi(fields[4])
			if err != nil {
				return nil, fail("bad sequence number %q", fields[4])
			}
			action, err := parseAction(fields[5])
			if err != nil {
				return nil, fail("%v", err)
			}
			prefix, err := netip.ParsePrefix(fields[6])
			if err != nil {
				return nil, fail("bad prefix %q: %v", fields[6], err)
			}
			pl := c.PrefixLists[name]
			if pl == nil {
				pl = &PrefixList{Name: name}
				c.AddPrefixList(pl)
			}
			pl.Entries = append(pl.Entries, PrefixEntry{Seq: seq, Action: action, Prefix: prefix})

		case fields[0] == "route-map":
			if c == nil {
				return nil, fail("'route-map' before 'router bgp'")
			}
			if len(fields) != 3 && len(fields) != 4 {
				return nil, fail("expected 'route-map <name> permit|deny <seq>'")
			}
			name := fields[1]
			seq, err := strconv.Atoi(fields[len(fields)-1])
			if err != nil {
				return nil, fail("bad sequence number %q", fields[len(fields)-1])
			}
			cl := &Clause{Seq: seq}
			actionTok := fields[2]
			if strings.HasPrefix(actionTok, "?") {
				cl.ActionHole = actionTok[1:]
			} else {
				action, err := parseAction(actionTok)
				if err != nil {
					return nil, fail("%v", err)
				}
				cl.Action = action
			}
			rm := c.RouteMaps[name]
			if rm == nil {
				rm = &RouteMap{Name: name}
				c.AddRouteMap(rm)
			}
			rm.Clauses = append(rm.Clauses, cl)
			curMap, curClause = rm, cl

		case fields[0] == "match":
			if curClause == nil {
				return nil, fail("'match' outside a route-map clause")
			}
			m, err := parseMatch(fields)
			if err != nil {
				return nil, fail("%v", err)
			}
			curClause.Matches = append(curClause.Matches, m)

		case fields[0] == "set":
			if curClause == nil {
				return nil, fail("'set' outside a route-map clause")
			}
			s, err := parseSet(fields)
			if err != nil {
				return nil, fail("%v", err)
			}
			curClause.Sets = append(curClause.Sets, s)

		default:
			return nil, fail("unrecognized line %q", line)
		}
	}
	if c == nil {
		return nil, fmt.Errorf("config: no 'router bgp' stanza")
	}
	_ = curMap
	return c, c.Validate()
}

// ParseDeployment reads a multi-router deployment in the dialect
// produced by PrintDeployment: one Print rendering per router, each
// opened by its "router bgp <name>" line. Router names must be unique.
func ParseDeployment(src string) (Deployment, error) {
	var chunks []string
	var cur []string
	flush := func() {
		// Drop chunks with no content (blank lines and comments before
		// the first stanza).
		content := false
		for _, l := range cur {
			if t := strings.TrimSpace(l); t != "" && !strings.HasPrefix(t, "!") {
				content = true
				break
			}
		}
		if content {
			chunks = append(chunks, strings.Join(cur, "\n"))
		}
		cur = nil
	}
	for _, raw := range strings.Split(src, "\n") {
		if strings.HasPrefix(strings.TrimSpace(raw), "router bgp ") {
			flush()
		}
		cur = append(cur, raw)
	}
	flush()
	if len(chunks) == 0 {
		return nil, fmt.Errorf("config: no 'router bgp' stanza")
	}
	dep := Deployment{}
	for _, chunk := range chunks {
		c, err := Parse(chunk)
		if err != nil {
			return nil, err
		}
		if _, ok := dep[c.Router]; ok {
			return nil, fmt.Errorf("config: duplicate configuration for router %s", c.Router)
		}
		dep[c.Router] = c
	}
	return dep, nil
}

func parseAction(tok string) (Action, error) {
	switch tok {
	case "permit":
		return Permit, nil
	case "deny":
		return Deny, nil
	}
	return Deny, fmt.Errorf("bad action %q", tok)
}

func parseMatch(fields []string) (*Match, error) {
	rest := fields[1:]
	switch {
	case len(rest) == 4 && rest[0] == "ip" && rest[1] == "address" && rest[2] == "prefix-list":
		m := &Match{Kind: MatchPrefixList}
		if strings.HasPrefix(rest[3], "?") {
			m.ValueHole = rest[3][1:]
		} else {
			m.PrefixList = rest[3]
		}
		return m, nil
	case len(rest) == 2 && rest[0] == "community":
		m := &Match{Kind: MatchCommunity}
		if strings.HasPrefix(rest[1], "?") {
			m.ValueHole = rest[1][1:]
			return m, nil
		}
		comm, err := bgp.ParseCommunity(rest[1])
		if err != nil {
			return nil, err
		}
		m.Community = comm
		return m, nil
	case len(rest) == 2 && rest[0] == "next-hop":
		m := &Match{Kind: MatchNextHopIs}
		if strings.HasPrefix(rest[1], "?") {
			m.ValueHole = rest[1][1:]
		} else {
			m.NextHop = rest[1]
		}
		return m, nil
	}
	return nil, fmt.Errorf("unrecognized match line %q", strings.Join(fields, " "))
}

func parseSet(fields []string) (*Set, error) {
	rest := fields[1:]
	hole := func(tok string) (string, bool) {
		if strings.HasPrefix(tok, "?") {
			return tok[1:], true
		}
		return "", false
	}
	switch {
	case len(rest) == 2 && rest[0] == "local-preference":
		s := &Set{Kind: SetLocalPref}
		if h, ok := hole(rest[1]); ok {
			s.ParamHole = h
			return s, nil
		}
		v, err := strconv.Atoi(rest[1])
		if err != nil {
			return nil, fmt.Errorf("bad local-preference %q", rest[1])
		}
		s.LocalPref = v
		return s, nil
	case len(rest) >= 2 && rest[0] == "community":
		s := &Set{Kind: SetCommunity}
		if h, ok := hole(rest[1]); ok {
			s.ParamHole = h
			return s, nil
		}
		comm, err := bgp.ParseCommunity(rest[1])
		if err != nil {
			return nil, err
		}
		s.Community = comm
		return s, nil
	case len(rest) == 2 && rest[0] == "metric":
		s := &Set{Kind: SetMED}
		if h, ok := hole(rest[1]); ok {
			s.ParamHole = h
			return s, nil
		}
		v, err := strconv.Atoi(rest[1])
		if err != nil {
			return nil, fmt.Errorf("bad metric %q", rest[1])
		}
		s.MED = v
		return s, nil
	case len(rest) == 2 && rest[0] == "next-hop":
		s := &Set{Kind: SetNextHopIP}
		if h, ok := hole(rest[1]); ok {
			s.ParamHole = h
			return s, nil
		}
		s.NextHopIP = rest[1]
		return s, nil
	}
	return nil, fmt.Errorf("unrecognized set line %q", strings.Join(fields, " "))
}
