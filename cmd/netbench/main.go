// netbench regenerates the paper's evaluation: every figure and
// quantitative claim, plus the scaling and ablation extensions, as
// text tables.
//
//	netbench                        # all experiments
//	netbench -table seed            # one experiment
//	netbench -quick                 # trimmed scaling sweep
//	netbench -benchjson BENCH_x.json  # machine-readable pipeline timings
//	netbench -cpuprofile cpu.pprof  # profile the run
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/bench"
)

func main() {
	table := flag.String("table", "all",
		"experiment to run: seed, simplify, linearity, pervar, figures, interpretation, ablation, rules, complement, lift, scale, all")
	quick := flag.Bool("quick", false, "trim the scaling sweep")
	format := flag.String("format", "text", "output format: text or json")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (e.g. 30s, 5m; 0 = no limit)")
	benchJSON := flag.String("benchjson", "", "write machine-readable pipeline measurements (scenario, wall time, SAT conflicts, cache hits) to this file and exit")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "netbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "netbench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "netbench:", err)
			}
		}()
	}

	if *benchJSON != "" {
		if err := bench.WritePerfJSON(ctx, *benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, "netbench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *benchJSON)
		return
	}

	emit := func(tables []*bench.Table) {
		if *format == "json" {
			payload := make([]map[string]any, len(tables))
			for i, t := range tables {
				payload[i] = t.JSON()
			}
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(payload); err != nil {
				fmt.Fprintln(os.Stderr, "netbench:", err)
				os.Exit(1)
			}
			return
		}
		for _, t := range tables {
			fmt.Println(t.Render())
		}
	}
	run := func(t *bench.Table, err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "netbench:", err)
			os.Exit(1)
		}
		emit([]*bench.Table{t})
	}

	switch *table {
	case "seed":
		run(bench.SeedTable(ctx))
	case "simplify":
		run(bench.SimplifyTable(ctx))
	case "linearity":
		run(bench.LinearityTable(ctx))
	case "pervar":
		run(bench.PerVarTable(ctx))
	case "figures":
		run(bench.FigureTable(ctx))
	case "interpretation":
		run(bench.InterpretationTable(ctx))
	case "ablation":
		run(bench.AblationTable(ctx))
	case "rules":
		run(bench.RuleFireTable(ctx))
	case "complement":
		run(bench.ComplementTable(ctx))
	case "lift":
		run(bench.LiftTable(ctx))
	case "scale":
		run(bench.ScaleTable(ctx, *quick))
	case "all":
		tables, err := bench.All(ctx, *quick)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netbench:", err)
			os.Exit(1)
		}
		emit(tables)
	default:
		fmt.Fprintf(os.Stderr, "netbench: unknown table %q\n", *table)
		os.Exit(2)
	}
}
