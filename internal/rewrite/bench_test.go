package rewrite_test

import (
	"testing"

	"repro/internal/rewrite"
	"repro/internal/scenarios"
	"repro/internal/synth"
)

// BenchmarkSimplifyFixpoint measures the full fixpoint simplification
// of each paper scenario's seed specification (largest last).
func BenchmarkSimplifyFixpoint(b *testing.B) {
	for _, name := range []string{"scenario1", "scenario2", "scenario3"} {
		b.Run(name, func(b *testing.B) {
			sc, err := scenarios.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			enc, err := synth.NewEncoder(sc.Net, sc.Sketch, synth.DefaultOptions()).Encode(sc.Requirements())
			if err != nil {
				b.Fatal(err)
			}
			seed := enc.Conjunction()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rewrite.New().Simplify(seed)
			}
		})
	}
}
