package synth

import (
	"context"
	"testing"

	"repro/internal/bgp"
	"repro/internal/config"
	"repro/internal/scenarios"
	"repro/internal/spec"
	"repro/internal/topology"
	"repro/internal/verify"
)

// TestInterpretation2KeepsRedundancy checks that AllowUnspecified
// (interpretation 2 of the paper's Scenario 2) synthesizes
// configurations where unlisted paths remain usable after failures.
func TestInterpretation2KeepsRedundancy(t *testing.T) {
	sc := scenarios.Scenario2()
	opts := DefaultOptions()
	opts.AllowUnspecified = true
	res, err := Synthesize(sc.Net, sc.Sketch, sc.Requirements(), opts)
	if err != nil {
		t.Fatal(err)
	}
	// Failure-free behavior still satisfies the spec.
	ok, err := verify.Satisfies(sc.Net, res.Deployment, sc.Requirements())
	if err != nil || !ok {
		t.Fatalf("interp-2 deployment fails failure-free verification: %v", err)
	}
	// With the two preferred attachments down, the unlisted detour via
	// R2-R1 still reaches D1 under interpretation 2.
	failed := sc.Net.Clone()
	failed.RemoveLink("R3", "R1")
	failed.RemoveLink("R2", "P2")
	sim, err := bgp.Simulate(failed, res.Deployment)
	if err != nil {
		t.Fatal(err)
	}
	d1 := sc.Net.Router("D1").Prefix
	if !sim.Reachable("C", d1) {
		t.Fatalf("interp-2 lost the unlisted fallback:\n%s", sim.Dump())
	}
}

func TestInterpretation1BlocksUnlisted(t *testing.T) {
	sc := scenarios.Scenario2()
	res, err := Synthesize(sc.Net, sc.Sketch, sc.Requirements(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	failed := sc.Net.Clone()
	failed.RemoveLink("R3", "R1")
	failed.RemoveLink("R2", "P2")
	sim, err := bgp.Simulate(failed, res.Deployment)
	if err != nil {
		t.Fatal(err)
	}
	d1 := sc.Net.Router("D1").Prefix
	if sim.Reachable("C", d1) {
		t.Fatal("interpretation 1 should have blocked the unlisted detour")
	}
}

func TestCandidateCapStillVerifies(t *testing.T) {
	// Truncating candidates keeps synthesis sound (the encoding covers
	// fewer paths, but the simulation-based verifier approves the
	// result on this topology).
	sc := scenarios.Scenario1()
	opts := DefaultOptions()
	opts.MaxCandidatesPerNode = 2
	res, err := Synthesize(sc.Net, sc.Sketch, sc.Requirements(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Encoding.Stats.TruncatedPaths == 0 {
		t.Fatal("cap of 2 should truncate on the paper topology")
	}
	ok, err := verify.Satisfies(sc.Net, res.Deployment, sc.Requirements())
	if err != nil || !ok {
		t.Fatalf("capped synthesis fails verification: %v", err)
	}
}

func TestPathInfosConsistent(t *testing.T) {
	sc := scenarios.Scenario2()
	enc, err := NewEncoder(sc.Net, sc.Sketch, DefaultOptions()).Encode(sc.Requirements())
	if err != nil {
		t.Fatal(err)
	}
	infos := enc.PathInfos()
	if len(infos) == 0 {
		t.Fatal("no path infos")
	}
	for _, info := range infos {
		if len(info.EdgeConds) != len(info.Path)-1 {
			t.Fatalf("%v: %d conds for %d nodes", info.Path, len(info.EdgeConds), len(info.Path))
		}
		if info.LP == nil {
			t.Fatalf("%v: missing LP term", info.Path)
		}
		// Traffic view is the reverse.
		tr := info.Traffic()
		for i := range tr {
			if tr[i] != info.Path[len(info.Path)-1-i] {
				t.Fatalf("Traffic() not reversed: %v vs %v", tr, info.Path)
			}
		}
		// Adjacent nodes are linked.
		for i := 1; i < len(info.Path); i++ {
			if !sc.Net.HasLink(info.Path[i-1], info.Path[i]) {
				t.Fatalf("%v: non-adjacent hop", info.Path)
			}
		}
	}
}

func TestPreferredTermShape(t *testing.T) {
	sc := scenarios.Scenario2()
	enc, err := NewEncoder(sc.Net, sc.Sketch, DefaultOptions()).Encode(sc.Requirements())
	if err != nil {
		t.Fatal(err)
	}
	var a, b *PathInfo
	for i, info := range enc.PathInfos() {
		if info.Prefix != "140.0.1.0/24" || info.Path[len(info.Path)-1] != "R3" {
			continue
		}
		switch len(info.Path) {
		case 4:
			if info.Path[1] == "P1" {
				a = &enc.PathInfos()[i]
			} else {
				b = &enc.PathInfos()[i]
			}
		}
	}
	if a == nil || b == nil {
		t.Fatal("expected both short candidates at R3")
	}
	term := PreferredTerm(*a, *b, sc.Net)
	if !term.Sort().IsBool() {
		t.Fatal("PreferredTerm must be boolean")
	}
}

func TestEncoderRejectsConflictingHoleSorts(t *testing.T) {
	// The same hole name used at two sorts must be rejected.
	net := topology.Paper()
	c := config.New("R1")
	c.AddRouteMap(&config.RouteMap{Name: "m", Clauses: []*config.Clause{
		{
			Seq:     10,
			Action:  config.Permit,
			Matches: []*config.Match{{Kind: config.MatchPrefixList, ValueHole: "dup"}},
			Sets:    []*config.Set{{Kind: config.SetLocalPref, ParamHole: "dup"}},
		},
	}})
	c.AddNeighbor("P1", "", "m")
	_, err := NewEncoder(net, config.Deployment{"R1": c}, DefaultOptions()).Encode(nil)
	if err == nil {
		t.Fatal("conflicting hole sorts should fail")
	}
}

func TestForbidMatchingOriginErrors(t *testing.T) {
	net := topology.Paper()
	e := NewEncoder(net, config.Deployment{}, DefaultOptions())
	if err := e.enumerateCandidates(context.Background()); err != nil {
		t.Fatal(err)
	}
	// A pattern matching a bare origin announcement is a specification
	// error (you cannot forbid a network from originating itself).
	err := e.encodeForbid(&spec.Forbid{Path: spec.NewPath(spec.Wildcard, "D1")})
	if err == nil {
		t.Fatal("origin-matching forbid should fail")
	}
}
