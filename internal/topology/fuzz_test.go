package topology

import "testing"

// FuzzParse checks the topology parser never panics and that accepted
// topologies round-trip.
func FuzzParse(f *testing.F) {
	f.Add("router R1 as 100\nexternal P1 as 500 prefix 128.0.1.0/24\nlink R1 P1\n")
	f.Add("stub C as 600 prefix 123.0.1.0/20\n")
	f.Add("# comment\nrouter A as 1\nrouter B as 2\nlink A B\n")
	f.Add("link X Y")
	f.Add("router")
	f.Add("external P as -5")
	f.Fuzz(func(t *testing.T, src string) {
		n, err := Parse(src)
		if err != nil {
			return
		}
		printed := Print(n)
		n2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed topology does not reparse: %v\n%s", err, printed)
		}
		if Print(n2) != printed {
			t.Fatalf("print not stable:\n%s\n---\n%s", printed, Print(n2))
		}
	})
}
