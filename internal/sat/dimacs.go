package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteDIMACS serializes the solver's problem clauses in DIMACS CNF,
// the standard SAT interchange format — useful for cross-checking an
// encoding against an external solver. Learnt clauses are not
// exported. Level-0 unit assignments are exported as unit clauses so
// the formula is equisatisfiable with the solver's state.
func (s *Solver) WriteDIMACS(w io.Writer) error {
	bw := bufio.NewWriter(w)
	units := 0
	for _, l := range s.trail {
		if s.level[l.Var()] == 0 {
			units++
		}
	}
	if !s.ok {
		// Unsatisfiable at level 0: export the canonical empty-clause
		// formula.
		if _, err := fmt.Fprintf(bw, "p cnf %d 1\n0\n", s.NumVars()); err != nil {
			return err
		}
		return bw.Flush()
	}
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", s.NumVars(), len(s.clauses)+units); err != nil {
		return err
	}
	writeLit := func(l Lit) error {
		v := int(l.Var()) + 1 // DIMACS variables are 1-based
		if !l.IsPos() {
			v = -v
		}
		_, err := fmt.Fprintf(bw, "%d ", v)
		return err
	}
	for _, l := range s.trail {
		if s.level[l.Var()] != 0 {
			continue
		}
		if err := writeLit(l); err != nil {
			return err
		}
		if _, err := bw.WriteString("0\n"); err != nil {
			return err
		}
	}
	for _, c := range s.clauses {
		for _, l := range c.lits {
			if err := writeLit(l); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("0\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadDIMACS parses a DIMACS CNF problem into a fresh solver. Comment
// lines ("c ...") are skipped; the problem line ("p cnf V C") sizes
// the variable pool; clause counts are not enforced strictly (trailing
// clauses beyond the declared count are accepted, as most solvers do).
func ReadDIMACS(r io.Reader) (*Solver, error) {
	s := NewSolver()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	declared := -1
	var pending []Lit
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("sat: line %d: malformed problem line %q", lineNo, line)
			}
			nVars, err := strconv.Atoi(fields[2])
			if err != nil || nVars < 0 {
				return nil, fmt.Errorf("sat: line %d: bad variable count %q", lineNo, fields[2])
			}
			declared = nVars
			for s.NumVars() < nVars {
				s.NewVar()
			}
			continue
		}
		if declared < 0 {
			return nil, fmt.Errorf("sat: line %d: clause before problem line", lineNo)
		}
		for _, tok := range strings.Fields(line) {
			n, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("sat: line %d: bad literal %q", lineNo, tok)
			}
			if n == 0 {
				s.AddClause(pending...)
				pending = pending[:0]
				continue
			}
			v := n
			if v < 0 {
				v = -v
			}
			if v > declared {
				return nil, fmt.Errorf("sat: line %d: literal %d exceeds declared variables", lineNo, n)
			}
			pending = append(pending, MkLit(Var(v-1), n > 0))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(pending) > 0 {
		s.AddClause(pending...)
	}
	return s, nil
}
