package bgp

import (
	"strings"
	"testing"

	"repro/internal/topology"
)

// These tests exercise the engine under richer policies and degraded
// topologies than bgp_test.go's basics.

func TestStubDoesNotTransit(t *testing.T) {
	// D1 is a stub attached to both providers: routes between P1 and
	// P2 must never propagate THROUGH D1.
	net := topology.Paper()
	res, err := Simulate(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	for node, rib := range res.RIB {
		for _, r := range rib {
			// Interior positions only: paths may start (origination)
			// or end (delivery) at a stub, but never pass through one.
			for i := 1; i < len(r.Path)-1; i++ {
				if n := r.Path[i]; n == "D1" || n == "C" {
					t.Fatalf("route at %s transits stub %s: %v", node, n, r.Path)
				}
			}
		}
	}
}

func TestStubStillOriginates(t *testing.T) {
	net := topology.Paper()
	res, err := Simulate(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	d1 := net.Router("D1").Prefix
	if !res.Reachable("R3", d1) {
		t.Fatal("stub origination lost")
	}
}

// medPolicy sets MED on export from a given router.
type medPolicy struct {
	at  string
	med int
}

func (p medPolicy) Export(at, _ string, r *Route) *Route {
	if at == p.at {
		r.MED = p.med
	}
	return r
}
func (p medPolicy) Import(_, _ string, r *Route) *Route { return r }

func TestMEDBreaksTies(t *testing.T) {
	// Two routes with equal local-pref and AS-path length: the lower
	// MED wins before the path-length tie-break.
	p := topology.MustPrefix("10.0.0.0/8")
	a := &Route{Prefix: p, Path: []string{"O", "X", "A"}, ASPath: []int{1, 2}, LocalPref: 100, MED: 10}
	b := &Route{Prefix: p, Path: []string{"O", "B"}, ASPath: []int{1, 2}, LocalPref: 100, MED: 5}
	// b has higher hop-count tie-break loss but lower MED: MED decides
	// first.
	if !Better(b, a) {
		t.Fatal("lower MED must win before path-length tie-break")
	}
}

func TestLinkFailureReconvergence(t *testing.T) {
	net := topology.Paper()
	d1 := net.Router("D1").Prefix
	base, err := Simulate(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	basePath := strings.Join(base.ForwardingPath("C", d1), " ")

	failed := net.Clone()
	failed.RemoveLink("R3", "R1")
	res, err := Simulate(failed, nil)
	if err != nil {
		t.Fatal(err)
	}
	newPath := strings.Join(res.ForwardingPath("C", d1), " ")
	if newPath == basePath {
		t.Fatalf("path did not change after failing its link: %s", newPath)
	}
	if !res.Reachable("C", d1) {
		t.Fatal("C lost D1 despite alternate paths existing")
	}
	for _, n := range res.ForwardingPath("C", d1) {
		if n == "R1" {
			// Via R2 is fine; reaching R1 without the R3-R1 link means
			// going through R2 first — check adjacency integrity.
			path := res.ForwardingPath("C", d1)
			for i := 1; i < len(path); i++ {
				if !failed.HasLink(path[i-1], path[i]) {
					t.Fatalf("path %v uses removed link", path)
				}
			}
		}
	}
}

// chainPolicy both tags at one router and matches at another,
// exercising community propagation through the engine.
type chainPolicy struct{}

func (chainPolicy) Export(_, _ string, r *Route) *Route { return r }
func (chainPolicy) Import(at, from string, r *Route) *Route {
	if at == "R1" && from == "P1" {
		r.Communities[MustCommunity("500:1")] = true
	}
	if at == "R3" && from == "R1" && r.HasCommunity(MustCommunity("500:1")) {
		r.LocalPref = 300
	}
	return r
}

func TestCommunityPropagation(t *testing.T) {
	net := topology.Paper()
	res, err := Simulate(net, chainPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	// R3 must hold the P1 prefix with the boosted local-pref and tag.
	p1 := net.Router("P1").Prefix
	r := res.Route("R3", p1)
	if r == nil {
		t.Fatal("R3 lost P1's prefix")
	}
	if !r.HasCommunity(MustCommunity("500:1")) {
		t.Fatalf("community was not propagated: %v", r)
	}
	if r.LocalPref != 300 {
		t.Fatalf("local-pref = %d, want 300", r.LocalPref)
	}
	// The D1 prefix routed via P1 also carries the tag (set on all P1
	// imports) and thus prefers the P1 side at R3.
	d1 := net.Router("D1").Prefix
	path := strings.Join(res.ForwardingPath("R3", d1), " ")
	if path != "R3 R1 P1 D1" {
		t.Fatalf("R3->D1 path = %q, want via P1", path)
	}
}

func TestIterationsReported(t *testing.T) {
	res, err := Simulate(topology.Paper(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 3 || res.Iterations > 20 {
		t.Fatalf("iterations = %d, implausible for the paper topology", res.Iterations)
	}
}

func TestIBGPLocalPrefPreserved(t *testing.T) {
	// Local-pref set at R1 (import from P1) must survive the iBGP hop
	// R1 -> R3 (same AS) but reset crossing to the customer AS.
	net := topology.Paper()
	res, err := Simulate(net, prefPolicy{at: "R1", from: "P1", pref: 250})
	if err != nil {
		t.Fatal(err)
	}
	p1 := net.Router("P1").Prefix
	atR3 := res.Route("R3", p1)
	if atR3 == nil || atR3.LocalPref != 250 {
		t.Fatalf("iBGP hop lost local-pref: %v", atR3)
	}
	atC := res.Route("C", p1)
	if atC == nil || atC.LocalPref != DefaultLocalPref {
		t.Fatalf("eBGP hop kept local-pref: %v", atC)
	}
}
