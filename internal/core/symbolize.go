// Package core implements the paper's contribution: localized
// explanations for synthesized network configurations. Given the
// synthesis problem's inputs and output — the topology, the global
// intent, and the concrete synthesized deployment — it produces, for a
// chosen device, a subspecification in the intent language that states
// what that device's configuration must do for the network to satisfy
// the global intent.
//
// The pipeline follows the paper's Section 3 (Figure 6):
//
//  1. Partial symbolization: selected fields of the device's concrete
//     configuration are replaced by symbolic variables (Var_Action,
//     Var_Val, Var_Param), yielding a partially symbolic configuration.
//  2. Seed specification: the same encoder the synthesizer uses
//     (internal/synth) encodes the partially symbolic configuration
//     together with the other devices' concrete configurations and the
//     global requirements into a constraint system over the symbolic
//     variables.
//  3. Simplification: the fifteen rewrite rules (internal/rewrite) are
//     applied to a fixpoint, collapsing the seed to a small constraint.
//  4. Lifting (the step the paper leaves as future work, implemented
//     here as an extension): candidate subspecification clauses in the
//     intent language are enumerated from the device's local path
//     vocabulary and validated against the seed with the SMT solver;
//     the necessary, non-vacuous, non-redundant ones form the
//     subspecification block.
package core

import (
	"fmt"
	"sort"

	"repro/internal/config"
)

// FieldKind selects which part of a route-map clause to symbolize.
type FieldKind int

const (
	// FieldAction symbolizes the clause's permit/deny action
	// (Var_Action).
	FieldAction FieldKind = iota
	// FieldMatch symbolizes the value of the clause's i-th match line
	// (Var_Val).
	FieldMatch
	// FieldSet symbolizes the parameter of the clause's i-th set line
	// (Var_Param).
	FieldSet
)

// String renders the field kind with the paper's variable naming.
func (k FieldKind) String() string {
	switch k {
	case FieldAction:
		return "Var_Action"
	case FieldMatch:
		return "Var_Val"
	case FieldSet:
		return "Var_Param"
	}
	return "Var_?"
}

// Target identifies one symbolizable field of a device configuration.
type Target struct {
	// Map is the route-map name.
	Map string
	// Seq is the clause sequence number.
	Seq int
	// Field selects the clause part.
	Field FieldKind
	// Index selects among multiple match/set lines (0-based; ignored
	// for FieldAction).
	Index int
}

// HoleName derives the deterministic symbolic variable name of the
// target, following the paper's Var_* convention.
func (t Target) HoleName() string {
	if t.Field == FieldAction {
		return fmt.Sprintf("%s_%s_%d", t.Field, t.Map, t.Seq)
	}
	return fmt.Sprintf("%s_%s_%d_%d", t.Field, t.Map, t.Seq, t.Index)
}

// String renders the target location.
func (t Target) String() string {
	if t.Field == FieldAction {
		return fmt.Sprintf("route-map %s clause %d action", t.Map, t.Seq)
	}
	kind := "match"
	if t.Field == FieldSet {
		kind = "set"
	}
	return fmt.Sprintf("route-map %s clause %d %s %d", t.Map, t.Seq, kind, t.Index)
}

// AllTargets enumerates every symbolizable field of a configuration in
// deterministic order — symbolizing all of them asks "what must this
// whole device do".
func AllTargets(c *config.Config) []Target {
	var out []Target
	names := c.RouteMapNames()
	sort.Strings(names)
	for _, name := range names {
		rm := c.RouteMaps[name]
		for _, cl := range rm.Clauses {
			out = append(out, Target{Map: name, Seq: cl.Seq, Field: FieldAction})
			for i := range cl.Matches {
				out = append(out, Target{Map: name, Seq: cl.Seq, Field: FieldMatch, Index: i})
			}
			for i := range cl.Sets {
				out = append(out, Target{Map: name, Seq: cl.Seq, Field: FieldSet, Index: i})
			}
		}
	}
	return out
}

// Symbolize returns a copy of the configuration with the targeted
// fields replaced by holes (the paper's step 1). The returned map
// relates hole names to the concrete values they replaced, so
// explanations can show "currently: deny".
func Symbolize(c *config.Config, targets []Target) (*config.Config, map[string]string, error) {
	out := c.Clone()
	replaced := map[string]string{}
	for _, t := range targets {
		rm, ok := out.RouteMaps[t.Map]
		if !ok {
			return nil, nil, fmt.Errorf("core: %s has no route-map %q", c.Router, t.Map)
		}
		var cl *config.Clause
		for _, cand := range rm.Clauses {
			if cand.Seq == t.Seq {
				cl = cand
				break
			}
		}
		if cl == nil {
			return nil, nil, fmt.Errorf("core: route-map %s has no clause %d", t.Map, t.Seq)
		}
		name := t.HoleName()
		switch t.Field {
		case FieldAction:
			if cl.ActionHole != "" {
				return nil, nil, fmt.Errorf("core: clause %d action already symbolic", t.Seq)
			}
			replaced[name] = cl.Action.String()
			cl.ActionHole = name
		case FieldMatch:
			if t.Index < 0 || t.Index >= len(cl.Matches) {
				return nil, nil, fmt.Errorf("core: clause %d has no match %d", t.Seq, t.Index)
			}
			m := cl.Matches[t.Index]
			if m.ValueHole != "" {
				return nil, nil, fmt.Errorf("core: clause %d match %d already symbolic", t.Seq, t.Index)
			}
			replaced[name] = concreteMatchValue(m)
			m.ValueHole = name
		case FieldSet:
			if t.Index < 0 || t.Index >= len(cl.Sets) {
				return nil, nil, fmt.Errorf("core: clause %d has no set %d", t.Seq, t.Index)
			}
			s := cl.Sets[t.Index]
			if s.ParamHole != "" {
				return nil, nil, fmt.Errorf("core: clause %d set %d already symbolic", t.Seq, t.Index)
			}
			replaced[name] = concreteSetValue(s)
			s.ParamHole = name
		}
	}
	return out, replaced, nil
}

func concreteMatchValue(m *config.Match) string {
	switch m.Kind {
	case config.MatchPrefixList:
		return m.PrefixList
	case config.MatchCommunity:
		return m.Community.String()
	case config.MatchNextHopIs:
		return m.NextHop
	}
	return "?"
}

func concreteSetValue(s *config.Set) string {
	switch s.Kind {
	case config.SetLocalPref:
		return fmt.Sprintf("%d", s.LocalPref)
	case config.SetCommunity:
		return s.Community.String()
	case config.SetMED:
		return fmt.Sprintf("%d", s.MED)
	case config.SetNextHopIP:
		return s.NextHopIP
	}
	return "?"
}
