// Scenario 3 (paper Section 2): taming complexity.
//
// With all requirements combined, the configurations overwhelm the
// administrator. Asking about each requirement individually isolates
// the relevant configuration lines: the no-transit requirement yields
// an EMPTY subspecification at R3 (R3 can do anything) and the drop
// subspecifications at R1/R2 (Figure 5).
//
//	go run ./examples/scenario3_complexity
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/scenarios"
	"repro/internal/spec"
	"repro/internal/synth"
	"repro/internal/verify"
)

func main() {
	sc := scenarios.Scenario3()
	fmt.Println("--- Scenario 3:", sc.Title, "---")
	fmt.Println()
	fmt.Print(spec.Print(sc.Spec))

	res, err := synth.Synthesize(sc.Net, sc.Sketch, sc.Requirements(), synth.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	ok, err := verify.Satisfies(sc.Net, res.Deployment, sc.Requirements())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsynthesis ok, all requirements verified: %v\n", ok)

	// The combined configuration volume:
	lines := 0
	for _, name := range []string{"R1", "R2", "R3"} {
		lines += len(splitLines(config.Print(res.Deployment[name])))
	}
	fmt.Printf("total synthesized configuration: %d lines across 3 routers\n", lines)

	// Ask about the no-transit requirement alone.
	noTransit := sc.Spec.Block("Req1").Reqs
	explainer, err := core.NewExplainer(sc.Net, noTransit, res.Deployment, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nAsking only about the no-transit requirement:")
	for _, router := range []string{"R1", "R2", "R3"} {
		ex, err := explainer.ExplainAll(router)
		if err != nil {
			log.Fatal(err)
		}
		if ex.Subspec.IsEmpty() {
			fmt.Printf("\n%s { }   // empty: %s can do anything for this requirement\n", router, router)
			continue
		}
		fmt.Println()
		fmt.Print(spec.PrintBlock(ex.Subspec))
	}
	fmt.Println("\nThe administrator can focus validation on R1 and R2 alone.")

	// And about the path preference alone: only R3 matters.
	prefReq := sc.Spec.Block("Req2").Reqs
	explainer2, err := core.NewExplainer(sc.Net, prefReq, res.Deployment, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAsking only about the D1 path preference:")
	for _, router := range []string{"R1", "R2", "R3"} {
		ex, err := explainer2.ExplainAll(router)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s: %d subspec clauses (seed %d atoms -> %d residual)\n",
			router, len(ex.Subspec.Reqs), ex.SeedSize, ex.ResidualSize)
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
