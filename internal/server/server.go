// Package server implements netexplaind's HTTP serving layer: a JSON
// API over the explanation pipeline, backed by a pool of warm
// engine.Sessions, a content-addressed response cache, and admission
// control that maps per-request deadlines onto engine.Budget.
//
// Endpoints:
//
//	POST /explain  {topology, configs, spec, ...}          → {"report": ...}
//	POST /explain  {..., "stream": true}                    → text/plain report, sections flushed as explained
//	POST /diff     {topology, configs, edited_configs, ...} → {"report", "summary", "stats"}
//	GET  /metrics  engine.Stats + server counters as JSON (byte-stable)
//	GET  /healthz  liveness probe
//
// Request texts are the same formats the CLIs consume
// (topology.Parse, config.ParseDeployment, spec.Parse), and a served
// report is byte-identical to `netexplain -all` over the same inputs:
// the response cache can therefore ignore resource knobs (timeout,
// sat_workers, lift_workers) — they never change a report byte.
package server

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/spec"
	"repro/internal/topology"
)

// Options configures a Server. The zero value of each field selects
// the documented default.
type Options struct {
	// MaxInflight caps concurrently admitted explain/diff requests
	// (default 4× GOMAXPROCS is the caller's business — the server
	// defaults to 16). Requests beyond the cap queue; a request whose
	// context ends while queued is turned away with 503.
	MaxInflight int
	// ResponseCacheSize caps the content-addressed response cache
	// (default 256 entries, 0 < n; negative disables caching).
	ResponseCacheSize int
	// PoolSize caps the session pool (default 16 idle problems).
	PoolSize int
	// DefaultTimeout is the per-request deadline when the request sets
	// none (default 2m). MaxTimeout clamps requested deadlines
	// (default: DefaultTimeout).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxSatWorkers and MaxLiftWorkers clamp the per-request resource
	// knobs (defaults 8). Requests asking for more are clamped, not
	// rejected — the knobs never change response bytes.
	MaxSatWorkers  int
	MaxLiftWorkers int
	// VerifyProofs turns on proof verification for every served query.
	VerifyProofs bool
	// CacheLimits bounds each pooled session's internal caches. The
	// zero value applies serving defaults (report bytes 64 MiB,
	// simplify 4096, solvers 32, lift samples DefaultLiftSampleCap,
	// stream window 4x workers) rather than the CLI's unlimited ones;
	// set a field negative to make it unlimited.
	CacheLimits engine.CacheLimits
}

// withDefaults resolves the zero values.
func (o Options) withDefaults() Options {
	if o.MaxInflight == 0 {
		o.MaxInflight = 16
	}
	if o.ResponseCacheSize == 0 {
		o.ResponseCacheSize = 256
	}
	if o.PoolSize == 0 {
		o.PoolSize = 16
	}
	if o.DefaultTimeout == 0 {
		o.DefaultTimeout = 2 * time.Minute
	}
	if o.MaxTimeout == 0 {
		o.MaxTimeout = o.DefaultTimeout
	}
	if o.MaxSatWorkers == 0 {
		o.MaxSatWorkers = 8
	}
	if o.MaxLiftWorkers == 0 {
		o.MaxLiftWorkers = 8
	}
	o.CacheLimits = resolveLimits(o.CacheLimits)
	return o
}

// resolveLimits maps the zero value of each cache limit to the serving
// default and negative values to unlimited (engine zero).
func resolveLimits(l engine.CacheLimits) engine.CacheLimits {
	def := func(v, d int) int {
		switch {
		case v == 0:
			return d
		case v < 0:
			return 0
		}
		return v
	}
	def64 := func(v, d int64) int64 {
		switch {
		case v == 0:
			return d
		case v < 0:
			return 0
		}
		return v
	}
	return engine.CacheLimits{
		ReportBytes:  def64(l.ReportBytes, 64<<20),
		Simplify:     def(l.Simplify, 4096),
		Solvers:      def(l.Solvers, 32),
		LiftSamples:  def(l.LiftSamples, engine.DefaultLiftSampleCap),
		StreamWindow: l.StreamWindow,
	}
}

// Server is the netexplaind request handler. Create with New; serve
// via Handler.
type Server struct {
	opts Options
	pool *engine.SessionPool
	sem  chan struct{}

	respMu   sync.Mutex
	resp     map[string]*list.Element
	respLRU  *list.List // of respEntry, front = most recent
	inflight atomic.Int64

	ctrMu sync.Mutex
	ctr   counters
}

type respEntry struct {
	key  string
	body []byte
}

// counters are the server-level metrics (engine-level ones come from
// the session pool).
type counters struct {
	Requests          int
	ExplainRequests   int
	DiffRequests      int
	BadRequests       int
	Errors            int
	Rejected          int
	ResponseCacheHits int
	ResponseCacheMiss int
	ResponseCacheEvic int
}

// New creates a server.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	return &Server{
		opts:    opts,
		pool:    engine.NewSessionPool(opts.PoolSize),
		sem:     make(chan struct{}, opts.MaxInflight),
		resp:    make(map[string]*list.Element),
		respLRU: list.New(),
	}
}

// Pool exposes the session pool (read-only use: gauges in tests and
// the load harness).
func (s *Server) Pool() *engine.SessionPool { return s.pool }

// Handler returns the server's routed handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/explain", func(w http.ResponseWriter, r *http.Request) { s.serveQuery(w, r, false) })
	mux.HandleFunc("/diff", func(w http.ResponseWriter, r *http.Request) { s.serveQuery(w, r, true) })
	mux.HandleFunc("/metrics", s.serveMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// request is the JSON body of /explain and /diff.
type request struct {
	// Topology, Configs, and Spec are the problem texts (topology.Parse,
	// config.ParseDeployment, spec.Parse formats).
	Topology string `json:"topology"`
	Configs  string `json:"configs"`
	Spec     string `json:"spec"`
	// EditedConfigs (diff only) is the edited deployment text; the
	// report explains it, incrementally against the base problem.
	EditedConfigs string `json:"edited_configs,omitempty"`
	// TimeoutMS bounds the request's wall clock (0 = server default,
	// clamped to the server max).
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// SatWorkers and LiftWorkers tune the per-request solver portfolio
	// width and lift worker pool (0 = default, clamped to the server
	// maxima). They never change response bytes.
	SatWorkers  int `json:"sat_workers,omitempty"`
	LiftWorkers int `json:"lift_workers,omitempty"`
	// NoLift skips subspecification lifting (reports show sizes only).
	NoLift bool `json:"nolift,omitempty"`
	// Stream (explain only) streams the report as text/plain instead of
	// a JSON envelope: router sections are flushed to the client in
	// order as the worker pool completes them, so wide networks produce
	// output long before the last router is explained. The bytes are
	// exactly the JSON response's report field. A failure after the
	// first byte aborts the connection (the status line is already
	// committed); the client has received whole sections only. Ignored
	// on /diff.
	Stream bool `json:"stream,omitempty"`
}

// explainResponse is the /explain response body.
type explainResponse struct {
	Report string `json:"report"`
}

// diffResponse is the /diff response body.
type diffResponse struct {
	Report  string         `json:"report"`
	Summary string         `json:"summary"`
	Stats   core.DiffStats `json:"stats"`
}

// errorResponse is every non-200 body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) failRequest(w http.ResponseWriter, status int, err error) {
	s.ctrMu.Lock()
	if status == http.StatusBadRequest {
		s.ctr.BadRequests++
	} else if status == http.StatusServiceUnavailable {
		s.ctr.Rejected++
	} else {
		s.ctr.Errors++
	}
	s.ctrMu.Unlock()
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// cacheKey content-addresses a request: endpoint plus every byte that
// can influence the response body. The resource knobs (timeout,
// workers) are deliberately excluded — reports are byte-identical
// across them (pinned by the repo's worker-matrix golden tests).
func cacheKey(endpoint string, req *request) string {
	h := sha256.New()
	for _, part := range []string{endpoint, req.Topology, req.Configs, req.Spec, req.EditedConfigs, fmt.Sprintf("lift=%t,stream=%t", !req.NoLift, req.Stream)} {
		fmt.Fprintf(h, "%d:", len(part))
		h.Write([]byte(part))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// problemKey names the problem a warm session is valid for: the
// normalized (parse→print round-tripped) problem texts plus the lift
// flag, which decides what the explainer's last report contains.
func problemKey(net *topology.Network, dep config.Deployment, sp *spec.Spec, lift bool) string {
	h := sha256.New()
	for _, part := range []string{topology.Print(net), config.PrintDeployment(dep), spec.Print(sp), fmt.Sprintf("lift=%t", lift)} {
		fmt.Fprintf(h, "%d:", len(part))
		h.Write([]byte(part))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// cachedResponse returns the cached body for key, updating recency.
func (s *Server) cachedResponse(key string) ([]byte, bool) {
	if s.opts.ResponseCacheSize < 0 {
		return nil, false
	}
	s.respMu.Lock()
	defer s.respMu.Unlock()
	el, ok := s.resp[key]
	if !ok {
		return nil, false
	}
	s.respLRU.MoveToFront(el)
	return el.Value.(respEntry).body, true
}

// storeResponse caches a successful response body.
func (s *Server) storeResponse(key string, body []byte) {
	if s.opts.ResponseCacheSize < 0 {
		return
	}
	s.respMu.Lock()
	defer s.respMu.Unlock()
	if el, ok := s.resp[key]; ok {
		el.Value = respEntry{key: key, body: body}
		s.respLRU.MoveToFront(el)
		return
	}
	s.resp[key] = s.respLRU.PushFront(respEntry{key: key, body: body})
	for s.respLRU.Len() > s.opts.ResponseCacheSize {
		el := s.respLRU.Back()
		s.respLRU.Remove(el)
		delete(s.resp, el.Value.(respEntry).key)
		s.ctrMu.Lock()
		s.ctr.ResponseCacheEvic++
		s.ctrMu.Unlock()
	}
}

// admit blocks until an in-flight slot frees up or the context ends.
func (s *Server) admit(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server at capacity: %w", ctx.Err())
	}
}

// budgetFor clamps the request's resource knobs against the server
// limits and builds the per-request budget. MaxConflicts and MaxModels
// stay zero: they are part of the lift splice signature, and varying
// them per request would needlessly invalidate cached lift artifacts.
func (s *Server) budgetFor(req *request) (engine.Budget, int, time.Duration) {
	d := s.opts.DefaultTimeout
	if req.TimeoutMS > 0 {
		d = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if d > s.opts.MaxTimeout {
		d = s.opts.MaxTimeout
	}
	sat := req.SatWorkers
	if sat < 1 {
		sat = 1
	}
	if sat > s.opts.MaxSatWorkers {
		sat = s.opts.MaxSatWorkers
	}
	lift := req.LiftWorkers
	if lift < 0 {
		lift = 0 // GOMAXPROCS
	}
	if lift > s.opts.MaxLiftWorkers {
		lift = s.opts.MaxLiftWorkers
	}
	return engine.Budget{Deadline: time.Now().Add(d), SatWorkers: sat}, lift, d
}

// parseProblem parses the three problem texts.
func parseProblem(req *request) (*topology.Network, config.Deployment, *spec.Spec, error) {
	net, err := topology.Parse(req.Topology)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("topology: %w", err)
	}
	dep, err := config.ParseDeployment(req.Configs)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("configs: %w", err)
	}
	sp, err := spec.Parse(req.Spec)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("spec: %w", err)
	}
	if err := depMatchesNet(net, dep); err != nil {
		return nil, nil, nil, fmt.Errorf("configs: %w", err)
	}
	return net, dep, sp, nil
}

// depMatchesNet rejects configurations for routers the topology does
// not declare — a malformed problem, caught before any engine work.
func depMatchesNet(net *topology.Network, dep config.Deployment) error {
	for name := range dep {
		if net.Router(name) == nil {
			return fmt.Errorf("config for router %q not in the topology", name)
		}
	}
	return nil
}

// explainerFor checks out (or builds) the explainer for the problem.
// The returned item is leased exclusively; exactly one of
// pool.Checkin/pool.Drop must follow.
func (s *Server) explainerFor(key string, net *topology.Network, dep config.Deployment, sp *spec.Spec, lift bool) (*engine.PoolItem, *core.Explainer, error) {
	if item, ok := s.pool.Checkout(key); ok {
		return item, item.Value.(*core.Explainer), nil
	}
	opts := core.DefaultOptions()
	opts.Lift = lift
	opts.VerifyProofs = s.opts.VerifyProofs
	e, err := core.NewExplainer(net, sp.Requirements(), dep, opts)
	if err != nil {
		s.pool.Drop(nil)
		return nil, nil, err
	}
	e.Session.SetCacheLimits(s.opts.CacheLimits)
	return &engine.PoolItem{Key: key, Session: e.Session, Value: e}, e, nil
}

// serveQuery handles /explain (diff=false) and /diff (diff=true).
func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request, diff bool) {
	s.ctrMu.Lock()
	s.ctr.Requests++
	if diff {
		s.ctr.DiffRequests++
	} else {
		s.ctr.ExplainRequests++
	}
	s.ctrMu.Unlock()

	if r.Method != http.MethodPost {
		s.failRequest(w, http.StatusBadRequest, errors.New("POST required"))
		return
	}
	var req request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	if err := dec.Decode(&req); err != nil {
		s.failRequest(w, http.StatusBadRequest, fmt.Errorf("request body: %w", err))
		return
	}
	if req.Topology == "" || req.Configs == "" || req.Spec == "" {
		s.failRequest(w, http.StatusBadRequest, errors.New("topology, configs, and spec are required"))
		return
	}
	endpoint := "/explain"
	if diff {
		endpoint = "/diff"
		if req.EditedConfigs == "" {
			s.failRequest(w, http.StatusBadRequest, errors.New("edited_configs is required for /diff"))
			return
		}
	}

	stream := req.Stream && !diff
	contentType := "application/json"
	if stream {
		contentType = "text/plain; charset=utf-8"
	}
	key := cacheKey(endpoint, &req)
	if body, ok := s.cachedResponse(key); ok {
		s.ctrMu.Lock()
		s.ctr.ResponseCacheHits++
		s.ctrMu.Unlock()
		w.Header().Set("Content-Type", contentType)
		w.Header().Set("X-Cache", "hit")
		w.Write(body)
		return
	}
	s.ctrMu.Lock()
	s.ctr.ResponseCacheMiss++
	s.ctrMu.Unlock()

	if err := s.admit(r.Context()); err != nil {
		s.failRequest(w, http.StatusServiceUnavailable, err)
		return
	}
	s.inflight.Add(1)
	defer func() {
		s.inflight.Add(-1)
		<-s.sem
	}()

	net, dep, sp, err := parseProblem(&req)
	if err != nil {
		s.failRequest(w, http.StatusBadRequest, err)
		return
	}
	var edited config.Deployment
	if diff {
		edited, err = config.ParseDeployment(req.EditedConfigs)
		if err == nil {
			err = depMatchesNet(net, edited)
		}
		if err != nil {
			s.failRequest(w, http.StatusBadRequest, fmt.Errorf("edited_configs: %w", err))
			return
		}
	}

	budget, liftWorkers, timeout := s.budgetFor(&req)
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	lift := !req.NoLift
	item, e, err := s.explainerFor(problemKey(net, dep, sp, lift), net, dep, sp, lift)
	if err != nil {
		s.failRequest(w, http.StatusBadRequest, err)
		return
	}
	// The lease is exclusive: the per-request knobs can be set directly.
	// MaxConflicts/MaxModels stay zero so the lift splice signature is
	// constant across requests (see budgetFor).
	e.Opts.Lift = lift
	e.Opts.Budget = budget
	e.Opts.LiftWorkers = liftWorkers
	e.Session.Budget = budget

	if stream {
		sr := &streamRecorder{w: w, cap: streamCacheCap, contentType: contentType}
		if f, ok := w.(http.Flusher); ok {
			sr.f = f
		}
		_, rerr := e.WriteReport(ctx, sr)
		s.pool.Checkin(item)
		if rerr != nil {
			if !sr.wrote {
				s.failRequest(w, statusFor(rerr), rerr)
				return
			}
			// The status line went out with the first section; the only
			// honest failure signal left is killing the connection. The
			// client holds whole sections only (WriteReport stops at a
			// section boundary).
			s.ctrMu.Lock()
			s.ctr.Errors++
			s.ctrMu.Unlock()
			panic(http.ErrAbortHandler)
		}
		if sr.buf != nil {
			s.storeResponse(key, sr.buf)
		}
		return
	}

	var body []byte
	if diff {
		dr, derr := s.runDiff(ctx, e, edited)
		if derr != nil {
			// The session survives failed queries (failed encodes are not
			// cached; non-pristine solvers are dropped at checkin) — but
			// ReExplain may have retargeted the explainer, so re-key.
			s.checkinCurrent(item, e, sp, lift)
			s.failRequest(w, statusFor(derr), derr)
			return
		}
		s.checkinCurrent(item, e, sp, lift)
		body = mustJSON(diffResponse{Report: dr.Report, Summary: dr.Summary, Stats: dr.Stats})
	} else {
		report, rerr := e.ReportContext(ctx)
		if rerr != nil {
			s.pool.Checkin(item)
			s.failRequest(w, statusFor(rerr), rerr)
			return
		}
		s.pool.Checkin(item)
		body = mustJSON(explainResponse{Report: report})
	}

	s.storeResponse(key, body)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", "miss")
	w.Write(body)
}

// streamCacheCap bounds the streamed bodies retained in the response
// cache: a report too large to be worth pinning in the entry-capped
// LRU is streamed and forgotten (a repeat request re-explains against
// the warm session instead).
const streamCacheCap = 8 << 20

// streamRecorder adapts the ResponseWriter for a streamed report: it
// commits the text content type on the first byte, flushes after every
// section so the client sees progress, and records the body for the
// response cache until it outgrows streamCacheCap.
type streamRecorder struct {
	w           http.ResponseWriter
	f           http.Flusher
	contentType string
	buf         []byte
	cap         int
	wrote       bool
}

func (sr *streamRecorder) Write(p []byte) (int, error) {
	if !sr.wrote {
		sr.w.Header().Set("Content-Type", sr.contentType)
		sr.w.Header().Set("X-Cache", "miss")
		sr.wrote = true
		sr.buf = make([]byte, 0, 4096)
	}
	m, err := sr.w.Write(p)
	if sr.buf != nil {
		if len(sr.buf)+m > sr.cap {
			sr.buf = nil
		} else {
			sr.buf = append(sr.buf, p[:m]...)
		}
	}
	if sr.f != nil {
		sr.f.Flush()
	}
	return m, err
}

// runDiff produces the incremental report for the edited deployment.
// A pooled explainer carries its base report from the request that
// warmed it; a fresh one renders the base report first (warming every
// cache the splice sweep draws from).
func (s *Server) runDiff(ctx context.Context, e *core.Explainer, edited config.Deployment) (*core.DiffReport, error) {
	if _, err := e.ReportContext(ctx); err != nil {
		return nil, fmt.Errorf("base report: %w", err)
	}
	dr, err := e.ReExplainContext(ctx, core.Delta{Deployment: edited})
	if err != nil {
		return nil, fmt.Errorf("re-explain: %w", err)
	}
	return dr, nil
}

// checkinCurrent returns the explainer to the pool under the key of
// whatever problem it now targets (ReExplain retargets it at the
// edited deployment, making the warm state reusable by follow-up
// requests for that problem).
func (s *Server) checkinCurrent(item *engine.PoolItem, e *core.Explainer, sp *spec.Spec, lift bool) {
	item.Key = problemKey(e.Net, e.Deployment, sp, lift)
	item.Session = e.Session
	s.pool.Checkin(item)
}

// statusFor maps a query error to an HTTP status: deadline and
// cancellation are the client's budget running out (504), everything
// else is a server-side failure (500).
func statusFor(err error) int {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return http.StatusGatewayTimeout
	}
	return http.StatusInternalServerError
}

func mustJSON(v any) []byte {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(b, '\n')
}

// Metrics is the /metrics payload. A fixed struct (no maps, no
// timestamps), so repeated scrapes of a quiescent server are
// byte-stable — pinned by TestMetricsDeterministic.
type Metrics struct {
	Server struct {
		Requests               int `json:"requests"`
		ExplainRequests        int `json:"explain_requests"`
		DiffRequests           int `json:"diff_requests"`
		BadRequests            int `json:"bad_requests"`
		Errors                 int `json:"errors"`
		Rejected               int `json:"rejected"`
		Inflight               int `json:"inflight"`
		ResponseCacheHits      int `json:"response_cache_hits"`
		ResponseCacheMisses    int `json:"response_cache_misses"`
		ResponseCacheEntries   int `json:"response_cache_entries"`
		ResponseCacheEvictions int `json:"response_cache_evictions"`
		Pool                   struct {
			Idle      int `json:"idle"`
			Leased    int `json:"leased"`
			Hits      int `json:"hits"`
			Misses    int `json:"misses"`
			Evictions int `json:"evictions"`
		} `json:"pool"`
	} `json:"server"`
	// Engine aggregates engine.Stats across the pool (retired + idle
	// sessions); lift percentiles are recomputed over the union of the
	// idle sessions' sample windows.
	Engine engine.Stats `json:"engine"`
}

// Snapshot assembles the current metrics.
func (s *Server) Snapshot() Metrics {
	var m Metrics
	s.ctrMu.Lock()
	c := s.ctr
	s.ctrMu.Unlock()
	s.respMu.Lock()
	entries := s.respLRU.Len()
	s.respMu.Unlock()
	g := s.pool.Gauges()

	m.Server.Requests = c.Requests
	m.Server.ExplainRequests = c.ExplainRequests
	m.Server.DiffRequests = c.DiffRequests
	m.Server.BadRequests = c.BadRequests
	m.Server.Errors = c.Errors
	m.Server.Rejected = c.Rejected
	m.Server.Inflight = int(s.inflight.Load())
	m.Server.ResponseCacheHits = c.ResponseCacheHits
	m.Server.ResponseCacheMisses = c.ResponseCacheMiss
	m.Server.ResponseCacheEntries = entries
	m.Server.ResponseCacheEvictions = c.ResponseCacheEvic
	m.Server.Pool.Idle = g.Idle
	m.Server.Pool.Leased = g.Leased
	m.Server.Pool.Hits = g.Hits
	m.Server.Pool.Misses = g.Misses
	m.Server.Pool.Evictions = g.Evictions
	m.Engine = s.pool.StatsSnapshot()
	return m
}

// serveMetrics renders the metrics JSON. Scraping is side-effect-free:
// /metrics requests are not counted anywhere, so two back-to-back
// scrapes of an idle server serve identical bytes.
func (s *Server) serveMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}
