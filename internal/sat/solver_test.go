package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newVars(s *Solver, n int) []Var {
	vs := make([]Var, n)
	for i := range vs {
		vs[i] = s.NewVar()
	}
	return vs
}

func TestTrivialSat(t *testing.T) {
	s := NewSolver()
	v := newVars(s, 2)
	if !s.AddClause(PosLit(v[0]), PosLit(v[1])) {
		t.Fatal("AddClause failed")
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
	if s.Value(v[0]) != LTrue && s.Value(v[1]) != LTrue {
		t.Fatal("model does not satisfy the clause")
	}
}

func TestEmptyProblemIsSat(t *testing.T) {
	s := NewSolver()
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
}

func TestEmptyClauseIsUnsat(t *testing.T) {
	s := NewSolver()
	if s.AddClause() {
		t.Fatal("empty clause should report failure")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want Unsat", got)
	}
	if s.Okay() {
		t.Fatal("Okay should be false after empty clause")
	}
}

func TestUnitPropagationConflict(t *testing.T) {
	s := NewSolver()
	v := newVars(s, 1)
	s.AddClause(PosLit(v[0]))
	if s.AddClause(NegLit(v[0])) {
		t.Fatal("contradictory units should report failure")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want Unsat", got)
	}
}

func TestTautologyAndDuplicates(t *testing.T) {
	s := NewSolver()
	v := newVars(s, 2)
	// Tautological clause is dropped entirely.
	if !s.AddClause(PosLit(v[0]), NegLit(v[0])) {
		t.Fatal("tautology should be accepted")
	}
	if s.NumClauses() != 0 {
		t.Fatalf("tautology should not be stored, have %d clauses", s.NumClauses())
	}
	// Duplicate literals are merged; the clause is stored once with 2 lits.
	if !s.AddClause(PosLit(v[0]), PosLit(v[0]), PosLit(v[1])) {
		t.Fatal("AddClause failed")
	}
	if s.NumClauses() != 1 {
		t.Fatalf("NumClauses = %d, want 1", s.NumClauses())
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
}

// xorClauses encodes a XOR b XOR c = rhs into CNF.
func xorClauses(s *Solver, a, b, c Var, rhs bool) {
	for i := 0; i < 8; i++ {
		x, y, z := i&1 == 1, i&2 == 2, i&4 == 4
		if (x != y != z) != rhs {
			// This assignment violates the XOR; forbid it.
			s.AddClause(MkLit(a, !x), MkLit(b, !y), MkLit(c, !z))
		}
	}
}

func TestXorChainSat(t *testing.T) {
	s := NewSolver()
	v := newVars(s, 9)
	xorClauses(s, v[0], v[1], v[2], true)
	xorClauses(s, v[2], v[3], v[4], true)
	xorClauses(s, v[4], v[5], v[6], false)
	xorClauses(s, v[6], v[7], v[8], true)
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
	m := s.Model()
	x := func(i int) bool { return m[v[i]] }
	if (x(0) != x(1) != x(2)) != true {
		t.Fatal("xor 1 violated")
	}
	if (x(4) != x(5) != x(6)) != false {
		t.Fatal("xor 3 violated")
	}
}

// pigeonhole encodes PHP(n+1, n): n+1 pigeons into n holes — classically
// unsatisfiable and exercising deep conflict analysis.
func pigeonhole(s *Solver, pigeons, holes int) {
	p := make([][]Var, pigeons)
	for i := range p {
		p[i] = newVars(s, holes)
		lits := make([]Lit, holes)
		for j := range lits {
			lits[j] = PosLit(p[i][j])
		}
		s.AddClause(lits...) // each pigeon in some hole
	}
	for j := 0; j < holes; j++ {
		for i := 0; i < pigeons; i++ {
			for k := i + 1; k < pigeons; k++ {
				s.AddClause(NegLit(p[i][j]), NegLit(p[k][j]))
			}
		}
	}
}

func TestPigeonholeUnsat(t *testing.T) {
	for n := 2; n <= 6; n++ {
		s := NewSolver()
		pigeonhole(s, n+1, n)
		if got := s.Solve(); got != Unsat {
			t.Fatalf("PHP(%d,%d) = %v, want Unsat", n+1, n, got)
		}
	}
}

func TestPigeonholeSatWhenEnoughHoles(t *testing.T) {
	s := NewSolver()
	pigeonhole(s, 5, 5)
	if got := s.Solve(); got != Sat {
		t.Fatalf("PHP(5,5) = %v, want Sat", got)
	}
}

func TestAssumptions(t *testing.T) {
	s := NewSolver()
	v := newVars(s, 3)
	s.AddClause(PosLit(v[0]), PosLit(v[1]))
	s.AddClause(NegLit(v[1]), PosLit(v[2]))

	if got := s.Solve(NegLit(v[0])); got != Sat {
		t.Fatalf("Solve(!x0) = %v, want Sat", got)
	}
	if s.Value(v[1]) != LTrue {
		t.Fatal("x1 must be true when x0 is assumed false")
	}
	// Conflicting assumptions.
	if got := s.Solve(NegLit(v[0]), NegLit(v[1])); got != Unsat {
		t.Fatalf("Solve(!x0,!x1) = %v, want Unsat", got)
	}
	core := s.Core()
	if len(core) == 0 {
		t.Fatal("expected a non-empty core")
	}
	// Core must be a subset of the assumptions.
	for _, l := range core {
		if l != NegLit(v[0]) && l != NegLit(v[1]) {
			t.Fatalf("core literal %v is not an assumption", l)
		}
	}
	// Solver must remain usable: solve again without assumptions.
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve() after failed assumptions = %v, want Sat", got)
	}
}

func TestAssumptionOfLevel0Unit(t *testing.T) {
	s := NewSolver()
	v := newVars(s, 2)
	s.AddClause(PosLit(v[0]))               // unit at level 0
	s.AddClause(NegLit(v[0]), PosLit(v[1])) // forces x1
	if got := s.Solve(NegLit(v[0])); got != Unsat {
		t.Fatalf("assuming the negation of a level-0 unit = %v, want Unsat", got)
	}
	if got := s.Solve(PosLit(v[0]), PosLit(v[1])); got != Sat {
		t.Fatalf("compatible assumptions = %v, want Sat", got)
	}
}

func TestStatsPopulated(t *testing.T) {
	s := NewSolver()
	pigeonhole(s, 6, 5)
	s.Solve()
	if s.Stats.Conflicts == 0 || s.Stats.Propagations == 0 || s.Stats.Decisions == 0 {
		t.Fatalf("stats not populated: %+v", s.Stats)
	}
}

func TestLuby(t *testing.T) {
	want := []float64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(1, uint64(i)); got != w {
			t.Fatalf("luby(1,%d) = %v, want %v", i, got, w)
		}
	}
}

func TestAddClauseDuringSearchPanics(t *testing.T) {
	// AddClause at a nonzero decision level is a programming error.
	s := NewSolver()
	v := s.NewVar()
	s.trailLim = append(s.trailLim, 0) // simulate being mid-search
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.AddClause(PosLit(v))
}

// --- Reference brute-force solver for differential testing. ---

type cnf struct {
	nVars   int
	clauses [][]Lit
}

func (f *cnf) satisfiable() bool {
	assign := make([]bool, f.nVars)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == f.nVars {
			for _, c := range f.clauses {
				ok := false
				for _, l := range c {
					if assign[l.Var()] == l.IsPos() {
						ok = true
						break
					}
				}
				if !ok {
					return false
				}
			}
			return true
		}
		assign[i] = false
		if rec(i + 1) {
			return true
		}
		assign[i] = true
		return rec(i + 1)
	}
	return rec(0)
}

func randomCNF(r *rand.Rand, nVars, nClauses, maxLen int) *cnf {
	f := &cnf{nVars: nVars}
	for i := 0; i < nClauses; i++ {
		n := 1 + r.Intn(maxLen)
		c := make([]Lit, 0, n)
		for j := 0; j < n; j++ {
			c = append(c, MkLit(Var(r.Intn(nVars)), r.Intn(2) == 0))
		}
		f.clauses = append(f.clauses, c)
	}
	return f
}

// Property: CDCL agrees with brute force on random small CNFs, and on
// Sat instances the model actually satisfies every clause.
func TestQuickAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nVars := 3 + r.Intn(10)
		form := randomCNF(r, nVars, 2+r.Intn(40), 3)
		want := form.satisfiable()

		s := NewSolver()
		newVars(s, nVars)
		for _, c := range form.clauses {
			s.AddClause(c...)
		}
		got := s.Solve()
		if (got == Sat) != want {
			t.Logf("mismatch: brute force %v, solver %v", want, got)
			return false
		}
		if got == Sat {
			m := s.Model()
			for _, c := range form.clauses {
				ok := false
				for _, l := range c {
					if m[l.Var()] == l.IsPos() {
						ok = true
						break
					}
				}
				if !ok {
					t.Logf("model violates clause %v", c)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: under assumptions, Unsat cores are sound — re-solving with
// only the core assumptions is still Unsat.
func TestQuickCoreSoundness(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nVars := 4 + r.Intn(8)
		form := randomCNF(r, nVars, 5+r.Intn(30), 3)

		s := NewSolver()
		newVars(s, nVars)
		for _, c := range form.clauses {
			s.AddClause(c...)
		}
		// Random assumptions over the first few variables.
		var assume []Lit
		for v := 0; v < nVars/2; v++ {
			assume = append(assume, MkLit(Var(v), r.Intn(2) == 0))
		}
		if s.Solve(assume...) != Unsat {
			return true // nothing to check
		}
		core := append([]Lit(nil), s.Core()...)
		if len(core) > len(assume) {
			t.Logf("core larger than assumption set")
			return false
		}
		if s.Solve(core...) != Unsat {
			t.Logf("core %v is not itself unsat", core)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: solving the same instance twice (with intervening failed
// assumption solves) is deterministic in status.
func TestQuickResolveStability(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nVars := 3 + r.Intn(8)
		form := randomCNF(r, nVars, 2+r.Intn(25), 3)
		s := NewSolver()
		newVars(s, nVars)
		for _, c := range form.clauses {
			s.AddClause(c...)
		}
		first := s.Solve()
		s.Solve(MkLit(0, r.Intn(2) == 0))
		second := s.Solve()
		return first == second
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
