package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/logic"
	"repro/internal/sat"
	"repro/internal/smt"
	"repro/internal/synth"
)

// Solver lifecycle plumbing for the explanation pipeline.
//
// Every solver the pipeline runs goes through checkoutSolver: queries
// against the same encoding reuse one warm solver from the session
// pool (clause database, learnt clauses, saved phases, branching
// activity all retained), and independent query batches fan out across
// runChecks workers that each own warm clones of the prototypes.
// Solver work is always harvested into the session statistics — as the
// full Stats of a clone (which starts zeroed), or as a delta for a
// pooled solver that lives on.

// newSolver builds an SMT solver with the explainer's conflict budget
// applied, the session's shared term table adopted, and — under
// VerifyProofs — a proof trace attached (logging must start before the
// first clause, so this is the only place it can be turned on).
func (e *Explainer) newSolver() *smt.Solver {
	var opts []smt.Option
	if e.Opts.VerifyProofs {
		opts = append(opts, smt.WithProof())
	}
	if n := e.Opts.Budget.SatWorkerCount(); n > 1 {
		opts = append(opts, smt.WithSatWorkers(n))
	}
	s := smt.NewSolver(opts...)
	if e.Session != nil {
		s.UseInterner(e.Session.Interner())
	}
	if e.Opts.Budget.MaxConflicts > 0 {
		s.SetConflictBudget(e.Opts.Budget.MaxConflicts)
	}
	return s
}

// verifyUnsat re-validates the solver's most recent Unsat verdict with
// the independent DRAT checker when proof verification is on, folding
// the checker's effort into the session statistics. Call it at every
// site that is about to rely on an Unsat answer; a proof the checker
// rejects surfaces as an error, so no unverified verdict reaches a
// report.
func (e *Explainer) verifyUnsat(s *smt.Solver) error {
	if !e.Opts.VerifyProofs {
		return nil
	}
	rep, err := s.VerifyLastUnsat()
	if err != nil {
		return fmt.Errorf("core: unsat verdict failed proof check: %w", err)
	}
	if e.Session != nil {
		e.Session.AddProofStats(rep)
	}
	return nil
}

// checkoutSolver returns a solver for key — warm from the session pool
// when a previous query against the same encoding checked one in, cold
// via build otherwise. The caller owns the solver exclusively until it
// calls release, which folds the work the solver did while checked out
// into the session statistics (as a delta, so a pooled solver's counts
// are never double-harvested) and parks it for the next query.
func (e *Explainer) checkoutSolver(key string, build func(*smt.Solver) error) (*smt.Solver, func(), error) {
	var sv *smt.Solver
	if e.Session != nil {
		sv = e.Session.CheckoutSolver(key)
	}
	var before sat.Stats
	if sv == nil {
		sv = e.newSolver()
		if err := build(sv); err != nil {
			e.addSolverStats(sv.Stats())
			return nil, nil, err
		}
	} else {
		before = sv.Stats()
	}
	s := sv
	release := func() {
		e.addSolverStats(s.Stats().Sub(before))
		if e.Session != nil {
			e.Session.CheckinSolver(key, s)
		}
	}
	return sv, release, nil
}

// seedSolverBuild declares the encoding's hole variables (in sorted
// order, for deterministic SAT variable numbering) and asserts the
// seed constraints.
func seedSolverBuild(enc *synth.Encoding) func(*smt.Solver) error {
	return func(s *smt.Solver) error {
		for _, v := range sortedHoleVars(enc.HoleVars) {
			if err := s.Declare(v); err != nil {
				return err
			}
		}
		return s.AssertAll(enc.Constraints)
	}
}

func sortedHoleVars(m map[string]*logic.Var) []*logic.Var {
	out := make([]*logic.Var, 0, len(m))
	for _, v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// addLiftQueries records per-query lift latencies in the session.
func (e *Explainer) addLiftQueries(ds []time.Duration) {
	if e.Session != nil {
		e.Session.AddLiftQueries(ds)
	}
}

// timedSolve runs one SMT query and records its latency.
func timedSolve(ctx context.Context, s *smt.Solver, lats *[]time.Duration, assume ...logic.Term) (sat.Status, error) {
	start := time.Now()
	st, err := s.SolveContext(ctx, assume...)
	*lats = append(*lats, time.Since(start))
	return st, err
}

// liftWorkers picks the worker count for n independent checks. Cloning
// a warm solver copies its whole clause database, so parallelism only
// pays once each worker has a batch of queries to amortize its clone;
// under two queries per worker the sweep shrinks or stays sequential.
func (e *Explainer) liftWorkers(n int) int {
	w := e.Opts.LiftWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w > 1 && n < 2*w {
		w = n / 2
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runChecks executes check(i) for every i in [0,n), fanning out across
// the lift worker pool when n is large enough to pay for it. protos
// are the prototype solvers: worker 0 borrows them directly (so their
// learnt clauses keep accumulating for later stages), every other
// worker gets warm clones — an smt.Solver is not concurrency-safe, so
// workers never share one. Candidates are dealt round-robin and check
// must write its result to an index-disjoint slot, which makes the
// combined outcome independent of the worker count and schedule.
func (e *Explainer) runChecks(ctx context.Context, n int, protos []*smt.Solver, check func(ctx context.Context, solvers []*smt.Solver, i int, lats *[]time.Duration) error) error {
	workers := e.liftWorkers(n)
	if workers <= 1 {
		var lats []time.Duration
		defer func() { e.addLiftQueries(lats) }()
		for i := 0; i < n; i++ {
			if err := check(ctx, protos, i, &lats); err != nil {
				return err
			}
		}
		return nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, workers)
	// All clones are taken before any worker starts: cloning snapshots
	// the clause database, which must not happen while worker 0 is
	// already solving on the prototypes.
	perWorker := make([][]*smt.Solver, workers)
	perWorker[0] = protos
	for w := 1; w < workers; w++ {
		solvers := make([]*smt.Solver, len(protos))
		for i, p := range protos {
			solvers[i] = p.Clone()
		}
		perWorker[w] = solvers
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		solvers := perWorker[w]
		wg.Add(1)
		go func(w int, solvers []*smt.Solver) {
			defer wg.Done()
			if w > 0 {
				// Clones start with zeroed counters: their whole Stats
				// are this worker's work.
				defer func() {
					for _, s := range solvers {
						e.addSolverStats(s.Stats())
					}
				}()
			}
			var lats []time.Duration
			defer func() { e.addLiftQueries(lats) }()
			for i := w; i < n; i += workers {
				if err := check(ctx, solvers, i, &lats); err != nil {
					errs[w] = err
					cancel()
					return
				}
			}
		}(w, solvers)
	}
	wg.Wait()
	// Deterministic error selection: prefer the failure that triggered
	// the cancellation over the cancellations it caused.
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil || (errors.Is(first, context.Canceled) && !errors.Is(err, context.Canceled)) {
			first = err
		}
	}
	return first
}
