package rewrite

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/logic"
	"repro/internal/sat"
	"repro/internal/smt"
)

var actSort = logic.NewEnumSort("Act", "permit", "deny")

func simp(t *testing.T, in logic.Term) logic.Term {
	t.Helper()
	return Simplify(in)
}

func wantStr(t *testing.T, in logic.Term, want string) {
	t.Helper()
	got := Simplify(in)
	if got.String() != want {
		t.Errorf("Simplify(%s) = %s, want %s", in, got, want)
	}
}

func TestPaperQuotedRules(t *testing.T) {
	a := logic.NewBoolVar("a")
	// The two rules quoted in the paper (Section 3):
	// False -> a == True
	wantStr(t, logic.Implies(logic.False, a), "true")
	// a \/ !a == True
	wantStr(t, logic.Or(a, logic.Not(a)), "true")
}

func TestConstFold(t *testing.T) {
	wantStr(t, logic.Eq(logic.NewInt(3), logic.NewInt(3)), "true")
	wantStr(t, logic.Lt(logic.NewInt(2), logic.NewInt(1)), "false")
	wantStr(t, logic.Ge(logic.NewInt(2), logic.NewInt(2)), "true")
	wantStr(t, logic.Eq(logic.Add(logic.NewInt(2), logic.NewInt(5)), logic.NewInt(7)), "true")
	wantStr(t, logic.Eq(logic.Sub(logic.NewInt(2), logic.NewInt(5)), logic.NewInt(-3)), "true")
	wantStr(t, logic.Eq(logic.NewEnum(actSort, "permit"), logic.NewEnum(actSort, "deny")), "false")
	wantStr(t, logic.Ne(logic.NewEnum(actSort, "permit"), logic.NewEnum(actSort, "deny")), "true")
}

func TestBoolEqConstant(t *testing.T) {
	x := logic.NewBoolVar("x")
	wantStr(t, logic.Eq(x, logic.True), "x")
	wantStr(t, logic.Eq(x, logic.False), "!x")
	wantStr(t, logic.Ne(x, logic.True), "!x")
	wantStr(t, logic.Ne(x, logic.False), "x")
	wantStr(t, logic.Eq(logic.True, x), "x")
}

func TestDoubleNegation(t *testing.T) {
	x := logic.NewBoolVar("x")
	wantStr(t, logic.Not(logic.Not(x)), "x")
	wantStr(t, logic.Not(logic.Not(logic.Not(x))), "!x")
	wantStr(t, logic.Not(logic.True), "false")
	wantStr(t, logic.Not(logic.False), "true")
}

func TestAndOrIdentity(t *testing.T) {
	x, y := logic.NewBoolVar("x"), logic.NewBoolVar("y")
	wantStr(t, logic.And(logic.True, x), "x")
	wantStr(t, logic.And(logic.False, x), "false")
	wantStr(t, logic.Or(logic.False, x), "x")
	wantStr(t, logic.Or(logic.True, x), "true")
	wantStr(t, logic.And(x, x, y, x), "x & y")
	wantStr(t, logic.Or(x, x), "x")
	// Flattening.
	wantStr(t, logic.And(logic.And(x, y), x), "x & y")
	wantStr(t, logic.Or(logic.Or(x, y), y), "x | y")
}

func TestComplement(t *testing.T) {
	x := logic.NewBoolVar("x")
	wantStr(t, logic.And(x, logic.Not(x)), "false")
	wantStr(t, logic.Or(logic.Not(x), x), "true")
	// Complement recognized through other conjuncts.
	y := logic.NewBoolVar("y")
	wantStr(t, logic.And(x, y, logic.Not(x)), "false")
}

func TestImplicationRules(t *testing.T) {
	a, b := logic.NewBoolVar("a"), logic.NewBoolVar("b")
	wantStr(t, logic.Implies(logic.True, a), "a")
	wantStr(t, logic.Implies(a, logic.True), "true")
	wantStr(t, logic.Implies(a, logic.False), "!a")
	wantStr(t, logic.Implies(a, a), "true")
	if got := simp(t, logic.Implies(a, b)); got.String() != "a => b" {
		t.Errorf("irreducible implication changed: %s", got)
	}
}

func TestIffRules(t *testing.T) {
	a, b := logic.NewBoolVar("a"), logic.NewBoolVar("b")
	wantStr(t, logic.Iff(a, a), "true")
	wantStr(t, logic.Iff(a, logic.True), "a")
	wantStr(t, logic.Iff(logic.True, a), "a")
	wantStr(t, logic.Iff(a, logic.False), "!a")
	wantStr(t, logic.Iff(a, logic.Not(a)), "false")
	if got := simp(t, logic.Iff(a, b)); got.String() != "a <=> b" {
		t.Errorf("irreducible iff changed: %s", got)
	}
}

func TestIteRules(t *testing.T) {
	c := logic.NewBoolVar("c")
	x := logic.NewIntVar("x", 0, 9)
	wantStr(t, logic.Eq(logic.Ite(logic.True, logic.NewInt(1), x), logic.NewInt(1)), "true")
	wantStr(t, logic.Eq(logic.Ite(logic.False, x, logic.NewInt(2)), logic.NewInt(2)), "true")
	wantStr(t, logic.Eq(logic.Ite(c, x, x), x), "true")
	wantStr(t, logic.Ite(c, logic.True, logic.False), "c")
	wantStr(t, logic.Ite(c, logic.False, logic.True), "!c")
}

func TestEqReflexive(t *testing.T) {
	x := logic.NewIntVar("x", 0, 9)
	e := logic.NewEnumVar("e", actSort)
	wantStr(t, logic.Eq(x, x), "true")
	wantStr(t, logic.Ne(x, x), "false")
	wantStr(t, logic.Eq(e, e), "true")
	wantStr(t, logic.Lt(x, x), "false")
	wantStr(t, logic.Le(x, x), "true")
	wantStr(t, logic.Ge(x, x), "true")
	wantStr(t, logic.Gt(x, x), "false")
}

func TestDomainFold(t *testing.T) {
	x := logic.NewIntVar("x", 0, 10)
	// Comparisons decided by the declared domain.
	wantStr(t, logic.Le(x, logic.NewInt(10)), "true")
	wantStr(t, logic.Le(x, logic.NewInt(12)), "true")
	wantStr(t, logic.Ge(x, logic.NewInt(0)), "true")
	wantStr(t, logic.Lt(x, logic.NewInt(0)), "false")
	wantStr(t, logic.Gt(x, logic.NewInt(10)), "false")
	wantStr(t, logic.Eq(x, logic.NewInt(11)), "false")
	wantStr(t, logic.Ne(x, logic.NewInt(-1)), "true")
	// Two variables with disjoint domains.
	y := logic.NewIntVar("y", 20, 30)
	wantStr(t, logic.Lt(x, y), "true")
	wantStr(t, logic.Eq(x, y), "false")
	// Overlapping domains stay symbolic.
	z := logic.NewIntVar("z", 5, 15)
	if got := simp(t, logic.Lt(x, z)); got.String() != "x < z" {
		t.Errorf("overlapping-domain comparison changed: %s", got)
	}
}

func TestAbsorption(t *testing.T) {
	a, b := logic.NewBoolVar("a"), logic.NewBoolVar("b")
	wantStr(t, logic.And(a, logic.Or(a, b)), "a")
	wantStr(t, logic.Or(a, logic.And(a, b)), "a")
}

func TestEqPropagation(t *testing.T) {
	x := logic.NewIntVar("x", 0, 9)
	y := logic.NewIntVar("y", 0, 9)
	e := logic.NewEnumVar("e", actSort)
	b := logic.NewBoolVar("b")

	// x = 3 & x < 5  ->  x = 3 (the second conjunct becomes 3 < 5 = true)
	wantStr(t, logic.And(logic.Eq(x, logic.NewInt(3)), logic.Lt(x, logic.NewInt(5))), "x = 3")
	// x = 3 & x > 5  ->  false
	wantStr(t, logic.And(logic.Eq(x, logic.NewInt(3)), logic.Gt(x, logic.NewInt(5))), "false")
	// Reversed orientation literal = var.
	wantStr(t, logic.And(logic.Eq(logic.NewInt(3), x), logic.Gt(x, logic.NewInt(5))), "false")
	// Boolean units propagate: b & (b => y < 2) -> b & y < 2.
	wantStr(t, logic.And(b, logic.Implies(b, logic.Lt(y, logic.NewInt(2)))), "b & y < 2")
	// Negative boolean unit.
	wantStr(t, logic.And(logic.Not(b), logic.Or(b, logic.Eq(x, logic.NewInt(1)))), "!b & x = 1")
	// Enum propagation.
	wantStr(t,
		logic.And(
			logic.Eq(e, logic.NewEnum(actSort, "deny")),
			logic.Implies(logic.Eq(e, logic.NewEnum(actSort, "deny")), logic.Eq(x, logic.NewInt(0))),
		),
		"e = deny & x = 0")
	// Chained propagation across two variables.
	wantStr(t,
		logic.And(
			logic.Eq(x, logic.NewInt(4)),
			logic.Eq(y, x),
		),
		"x = 4 & y = 4")
}

func TestNegNormal(t *testing.T) {
	x := logic.NewIntVar("x", 0, 100)
	y := logic.NewIntVar("y", 0, 100)
	wantStr(t, logic.Not(logic.Eq(x, y)), "x != y")
	wantStr(t, logic.Not(logic.Ne(x, y)), "x = y")
	wantStr(t, logic.Not(logic.Lt(x, y)), "x >= y")
	wantStr(t, logic.Not(logic.Le(x, y)), "x > y")
	wantStr(t, logic.Not(logic.Gt(x, y)), "x <= y")
	wantStr(t, logic.Not(logic.Ge(x, y)), "x < y")
}

func TestStatsAndPasses(t *testing.T) {
	s := New()
	a := logic.NewBoolVar("a")
	s.Simplify(logic.Or(a, logic.Not(a)))
	if s.Stats[RuleComplement] == 0 {
		t.Fatalf("complement rule did not fire: %v", s.Stats)
	}
	if s.Passes < 1 {
		t.Fatal("Passes not recorded")
	}
	s.Reset()
	if len(s.Stats) != 0 || s.Passes != 0 {
		t.Fatal("Reset did not clear stats")
	}
}

func TestDescribeAllRules(t *testing.T) {
	if len(AllRules) != 15 {
		t.Fatalf("expected exactly 15 rules, have %d", len(AllRules))
	}
	for _, r := range AllRules {
		if Describe(r) == "" {
			t.Errorf("rule %s has no description", r)
		}
	}
}

func TestLargeSeedCollapse(t *testing.T) {
	// A synthetic "seed specification": one symbolic variable buried in
	// hundreds of concrete constraints. Simplification should collapse
	// everything but the constraint on the symbolic variable — the
	// effect the paper's Section 4 reports.
	act := logic.NewEnumVar("R1_act", actSort)
	conjuncts := []logic.Term{
		logic.Implies(
			logic.Eq(act, logic.NewEnum(actSort, "permit")),
			logic.False, // permitting violates the global spec
		),
	}
	for i := 0; i < 300; i++ {
		n := logic.NewIntVar("pref", 0, 200)
		c := logic.Implies(
			logic.Eq(logic.NewInt(int64(i%7)), logic.NewInt(int64(i%7))),
			logic.Or(logic.Le(n, logic.NewInt(200)), logic.Eq(n, logic.NewInt(int64(i)))),
		)
		conjuncts = append(conjuncts, c)
	}
	seed := logic.And(conjuncts...)
	got := Simplify(seed)
	if logic.Size(got) > 10 {
		t.Fatalf("seed of size %d only simplified to size %d: %s",
			logic.Size(seed), logic.Size(got), got)
	}
	// The surviving constraint must mention the symbolic variable.
	if !logic.ContainsVar(got, "R1_act") {
		t.Fatalf("simplified seed lost the symbolic variable: %s", got)
	}
}

func TestIdempotence(t *testing.T) {
	x := logic.NewIntVar("x", 0, 9)
	b := logic.NewBoolVar("b")
	in := logic.And(
		logic.Implies(b, logic.Lt(x, logic.NewInt(5))),
		logic.Or(b, logic.Eq(x, logic.NewInt(7))),
	)
	once := Simplify(in)
	twice := Simplify(once)
	if !logic.Equal(once, twice) {
		t.Fatalf("not idempotent: %s vs %s", once, twice)
	}
}

// --- Property tests. ---

var (
	pBools = []*logic.Var{logic.NewBoolVar("p"), logic.NewBoolVar("q")}
	pInts  = []*logic.Var{logic.NewIntVar("i", 0, 3), logic.NewIntVar("j", 0, 3)}
	pEnum  = logic.NewEnumVar("act", actSort)
)

func randTerm(r *rand.Rand, depth int) logic.Term {
	if depth <= 0 {
		switch r.Intn(6) {
		case 0:
			return pBools[r.Intn(2)]
		case 1:
			return logic.NewBool(r.Intn(2) == 0)
		case 2:
			return logic.Eq(pEnum, logic.NewEnum(actSort, actSort.Values[r.Intn(2)]))
		case 3:
			return logic.Le(pInts[r.Intn(2)], logic.NewInt(int64(r.Intn(6)-1)))
		case 4:
			return logic.Eq(pInts[r.Intn(2)], logic.NewInt(int64(r.Intn(6)-1)))
		default:
			return logic.Lt(pInts[0], pInts[1])
		}
	}
	switch r.Intn(7) {
	case 0:
		return logic.And(randTerm(r, depth-1), randTerm(r, depth-1))
	case 1:
		return logic.And(randTerm(r, depth-1), randTerm(r, depth-1), randTerm(r, depth-1))
	case 2:
		return logic.Or(randTerm(r, depth-1), randTerm(r, depth-1))
	case 3:
		return logic.Not(randTerm(r, depth-1))
	case 4:
		return logic.Implies(randTerm(r, depth-1), randTerm(r, depth-1))
	case 5:
		return logic.Iff(randTerm(r, depth-1), randTerm(r, depth-1))
	default:
		return logic.Ite(randTerm(r, depth-1), randTerm(r, depth-1), randTerm(r, depth-1))
	}
}

func forEachAssignment(f func(logic.Assignment) bool) bool {
	for pb := 0; pb < 2; pb++ {
		for qb := 0; qb < 2; qb++ {
			for i := int64(0); i <= 3; i++ {
				for j := int64(0); j <= 3; j++ {
					for e := 0; e < 2; e++ {
						a := logic.Assignment{
							"p":   logic.BoolValue(pb == 1),
							"q":   logic.BoolValue(qb == 1),
							"i":   logic.IntValue(i),
							"j":   logic.IntValue(j),
							"act": logic.EnumValue(actSort, actSort.Values[e]),
						}
						if !f(a) {
							return false
						}
					}
				}
			}
		}
	}
	return true
}

// Property: simplification preserves truth under every assignment.
func TestQuickSoundnessBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		term := randTerm(r, 4)
		simplified := Simplify(term)
		ok := forEachAssignment(func(a logic.Assignment) bool {
			v1, err1 := logic.EvalBool(term, a)
			v2, err2 := logic.EvalBool(simplified, a)
			if err1 != nil || err2 != nil {
				return false
			}
			return v1 == v2
		})
		if !ok {
			t.Logf("simplification changed meaning:\n  in:  %s\n  out: %s", term, simplified)
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: simplification never grows a term.
func TestQuickNeverGrows(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		term := randTerm(r, 4)
		simplified := Simplify(term)
		if logic.Size(simplified) > logic.Size(term) {
			t.Logf("grew: %s (%d) -> %s (%d)", term, logic.Size(term), simplified, logic.Size(simplified))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: simplification is idempotent.
func TestQuickIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		term := randTerm(r, 4)
		once := Simplify(term)
		twice := Simplify(once)
		if !logic.Equal(once, twice) {
			t.Logf("not idempotent:\n  in:    %s\n  once:  %s\n  twice: %s", term, once, twice)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property (cross-checked with the SMT solver): term <=> Simplify(term)
// is valid.
func TestQuickSoundnessSMT(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		term := randTerm(r, 3)
		simplified := Simplify(term)
		s := smt.NewSolver()
		st, err := s.Solve(logic.Not(logic.Iff(term, simplified)))
		if err != nil {
			t.Logf("smt error: %v", err)
			return false
		}
		if st != sat.Unsat {
			t.Logf("SMT found a divergence:\n  in:  %s\n  out: %s", term, simplified)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
