// netbench regenerates the paper's evaluation: every figure and
// quantitative claim, plus the scaling and ablation extensions, as
// text tables.
//
//	netbench              # all experiments
//	netbench -table seed  # one experiment
//	netbench -quick       # trimmed scaling sweep
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	table := flag.String("table", "all",
		"experiment to run: seed, simplify, linearity, pervar, figures, interpretation, ablation, rules, complement, scale, all")
	quick := flag.Bool("quick", false, "trim the scaling sweep")
	format := flag.String("format", "text", "output format: text or json")
	flag.Parse()

	emit := func(tables []*bench.Table) {
		if *format == "json" {
			payload := make([]map[string]any, len(tables))
			for i, t := range tables {
				payload[i] = t.JSON()
			}
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(payload); err != nil {
				fmt.Fprintln(os.Stderr, "netbench:", err)
				os.Exit(1)
			}
			return
		}
		for _, t := range tables {
			fmt.Println(t.Render())
		}
	}
	run := func(t *bench.Table, err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "netbench:", err)
			os.Exit(1)
		}
		emit([]*bench.Table{t})
	}

	switch *table {
	case "seed":
		run(bench.SeedTable())
	case "simplify":
		run(bench.SimplifyTable())
	case "linearity":
		run(bench.LinearityTable())
	case "pervar":
		run(bench.PerVarTable())
	case "figures":
		run(bench.FigureTable())
	case "interpretation":
		run(bench.InterpretationTable())
	case "ablation":
		run(bench.AblationTable())
	case "rules":
		run(bench.RuleFireTable())
	case "complement":
		run(bench.ComplementTable())
	case "scale":
		run(bench.ScaleTable(*quick))
	case "all":
		tables, err := bench.All(*quick)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netbench:", err)
			os.Exit(1)
		}
		emit(tables)
	default:
		fmt.Fprintf(os.Stderr, "netbench: unknown table %q\n", *table)
		os.Exit(2)
	}
}
