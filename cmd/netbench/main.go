// netbench regenerates the paper's evaluation: every figure and
// quantitative claim, plus the scaling and ablation extensions, as
// text tables.
//
//	netbench                        # all experiments
//	netbench -table seed            # one experiment
//	netbench -quick                 # trimmed scaling sweep
//	netbench -benchjson BENCH_x.json  # machine-readable pipeline timings
//	netbench -scalejson BENCH_scale.json  # whole-network streaming-report scaling
//	netbench -cpuprofile cpu.pprof  # profile the run
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with the process glue factored out. Exit codes follow
// the shared cmd convention: 0 success, 1 operational failure,
// 2 usage error (bad flags, unknown -table or -format value).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("netbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	table := fs.String("table", "all",
		"experiment to run: seed, simplify, linearity, pervar, figures, interpretation, ablation, rules, complement, rewrite, lift, sat, scale, diff, serve, all")
	quick := fs.Bool("quick", false, "trim the scaling sweep")
	format := fs.String("format", "text", "output format: text or json")
	timeout := fs.Duration("timeout", 0, "abort the run after this duration (e.g. 30s, 5m; 0 = no limit)")
	benchJSON := fs.String("benchjson", "", "write machine-readable pipeline measurements (scenario, wall time, SAT conflicts, cache hits) to this file and exit")
	diffJSON := fs.String("diffjson", "", "write machine-readable incremental re-explanation measurements (cold vs incremental wall time, dirty sets, cache hit rates) to this file and exit")
	scaleJSON := fs.String("scalejson", "", "write machine-readable whole-network streaming-report measurements (wall time, peak heap, streamed bytes, scoped-encode stats) to this file and exit; -quick trims the sweep")
	serveJSON := fs.String("servejson", "", "write machine-readable serving-layer measurements (throughput, latency percentiles, response-cache hit rate, CLI byte-identity) to this file and exit")
	satWorkers := fs.Int("satworkers", 1, "SAT portfolio width: diversified search workers racing per solve with clause sharing (1 = plain single search; affects -table sat and -benchjson)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *format != "text" && *format != "json" {
		fmt.Fprintf(stderr, "netbench: unknown format %q (want text or json)\n", *format)
		return 2
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(stderr, "netbench:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "netbench:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(stderr, "netbench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "netbench:", err)
			}
		}()
	}

	if *benchJSON != "" {
		if err := bench.WritePerfJSON(ctx, *benchJSON, *satWorkers); err != nil {
			fmt.Fprintln(stderr, "netbench:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", *benchJSON)
		return 0
	}
	if *diffJSON != "" {
		if err := bench.WriteDiffJSON(ctx, *diffJSON); err != nil {
			fmt.Fprintln(stderr, "netbench:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", *diffJSON)
		return 0
	}
	if *scaleJSON != "" {
		if err := bench.WriteScaleJSON(ctx, *scaleJSON, *quick); err != nil {
			fmt.Fprintln(stderr, "netbench:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", *scaleJSON)
		return 0
	}
	if *serveJSON != "" {
		if err := bench.WriteServeJSON(ctx, *serveJSON, *quick); err != nil {
			fmt.Fprintln(stderr, "netbench:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", *serveJSON)
		return 0
	}

	emit := func(tables []*bench.Table) int {
		if *format == "json" {
			payload := make([]map[string]any, len(tables))
			for i, t := range tables {
				payload[i] = t.JSON()
			}
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(payload); err != nil {
				fmt.Fprintln(stderr, "netbench:", err)
				return 1
			}
			return 0
		}
		for _, t := range tables {
			fmt.Fprintln(stdout, t.Render())
		}
		return 0
	}
	one := func(t *bench.Table, err error) int {
		if err != nil {
			fmt.Fprintln(stderr, "netbench:", err)
			return 1
		}
		return emit([]*bench.Table{t})
	}

	switch *table {
	case "seed":
		return one(bench.SeedTable(ctx))
	case "simplify":
		return one(bench.SimplifyTable(ctx))
	case "linearity":
		return one(bench.LinearityTable(ctx))
	case "pervar":
		return one(bench.PerVarTable(ctx))
	case "figures":
		return one(bench.FigureTable(ctx))
	case "interpretation":
		return one(bench.InterpretationTable(ctx))
	case "ablation":
		return one(bench.AblationTable(ctx))
	case "rules":
		return one(bench.RuleFireTable(ctx))
	case "complement":
		return one(bench.ComplementTable(ctx))
	case "lift":
		return one(bench.LiftTable(ctx))
	case "rewrite":
		return one(bench.RewriteTable(ctx))
	case "sat":
		return one(bench.SatTable(ctx, *satWorkers))
	case "scale":
		return one(bench.ScaleTable(ctx, *quick))
	case "diff":
		return one(bench.DiffTable(ctx, *quick))
	case "serve":
		return one(bench.ServeTable(ctx, *quick))
	case "all":
		tables, err := bench.All(ctx, *quick)
		if err != nil {
			fmt.Fprintln(stderr, "netbench:", err)
			return 1
		}
		return emit(tables)
	default:
		fmt.Fprintf(stderr, "netbench: unknown table %q\n", *table)
		return 2
	}
}
