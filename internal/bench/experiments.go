package bench

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/rewrite"
	"repro/internal/scenarios"
	"repro/internal/smt"
	"repro/internal/spec"
	"repro/internal/synth"
)

// synthesizeScenario synthesizes one scenario (shared helper).
func synthesizeScenario(ctx context.Context, sc *scenarios.Scenario) (*synth.Result, error) {
	return synth.SynthesizeContext(ctx, sc.Net, sc.Sketch, sc.Requirements(), synth.DefaultOptions())
}

// SeedTable reproduces claim §4-C1: seed specifications exceed 1000
// constraints even on the simple Figure 1b scenarios. Reported per
// scenario: encoder constraints, constraint atoms, SAT clauses after
// bit-blasting, hole and selection variables.
func SeedTable(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:      "seed (§4-C1)",
		Caption: "Seed specification sizes per scenario. Paper: 'more than 1000 constraints even in the simple scenario'.",
		Columns: []string{"scenario", "constraints", "atoms", "sat-clauses", "sat-vars", "holes", "sel-vars"},
	}
	for _, sc := range scenarios.All() {
		enc, err := synth.NewEncoder(sc.Net, sc.Sketch, synth.DefaultOptions()).EncodeContext(ctx, sc.Requirements())
		if err != nil {
			return nil, err
		}
		s := smt.NewSolver()
		if err := s.AssertAll(enc.Constraints); err != nil {
			return nil, err
		}
		t.AddRow(sc.Name, enc.Stats.Constraints, enc.Stats.ConstraintSize,
			s.NumSATClauses(), s.NumSATVars(), enc.Stats.HoleVars, enc.Stats.SelVars)
	}
	return t, nil
}

// SimplifyTable reproduces claim §4-C2: simplification reduces the
// seed to a few constraints. Reported per (scenario, router): seed
// atoms, simplified atoms, residual atoms over the device's variables,
// and the reduction factor.
func SimplifyTable(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:      "simplify (§4-C2, Figure 6)",
		Caption: "Rewrite-rule simplification of the seed, explaining each router in full. Paper: reduction 'resulted in only a few constraints'.",
		Columns: []string{"scenario", "router", "seed-atoms", "simplified", "residual", "reduction", "passes", "subspec-clauses"},
	}
	for _, sc := range scenarios.All() {
		res, err := synthesizeScenario(ctx, sc)
		if err != nil {
			return nil, err
		}
		ex, err := core.NewExplainer(sc.Net, sc.Requirements(), res.Deployment, core.DefaultOptions())
		if err != nil {
			return nil, err
		}
		for _, router := range []string{"R1", "R2", "R3"} {
			e, err := ex.ExplainAllContext(ctx, router)
			if err != nil {
				return nil, err
			}
			clauses := 0
			if e.Subspec != nil {
				clauses = len(e.Subspec.Reqs)
			}
			t.AddRow(sc.Name, router, e.SeedSize, e.SimplifiedSize, e.ResidualSize,
				fmt.Sprintf("%.0fx", e.Reduction()), e.Passes, clauses)
		}
	}
	return t, nil
}

// LinearityTable reproduces claim §4-C3: subspecification size is
// linear in the number of symbolic configuration variables. R1's
// fields in scenario 3 are symbolized one more at a time.
func LinearityTable(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:      "linearity (§4-C3)",
		Caption: "Residual subspecification size vs number of symbolized variables at R1 (scenario 3). Paper: 'linear in relation to the configuration variables in question'.",
		Columns: []string{"symbolized-vars", "residual-atoms", "residual-conjuncts", "atoms-per-var"},
	}
	sc := scenarios.Scenario3()
	res, err := synthesizeScenario(ctx, sc)
	if err != nil {
		return nil, err
	}
	ex, err := core.NewExplainer(sc.Net, sc.Requirements(), res.Deployment, core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	all := core.AllTargets(res.Deployment["R1"])
	opts := core.DefaultOptions()
	opts.Lift = false // size measurement only
	exNoLift, err := core.NewExplainer(sc.Net, sc.Requirements(), res.Deployment, opts)
	if err != nil {
		return nil, err
	}
	_ = ex
	for n := 1; n <= len(all); n++ {
		e, err := exNoLift.ExplainContext(ctx, "R1", all[:n])
		if err != nil {
			return nil, err
		}
		perVar := float64(e.ResidualSize) / float64(n)
		t.AddRow(n, e.ResidualSize, len(e.Residual), perVar)
	}
	return t, nil
}

// PerVarTable reproduces claim §4-C4: one-variable-at-a-time
// explanations stay small and interpretable. Every field of R1 in
// scenario 1 is explained on its own.
func PerVarTable(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:      "pervar (§4-C4)",
		Caption: "Per-variable explanations of R1 (scenario 1). Paper: 'generating and inspecting sub-specifications one variable at a time was an effective strategy'.",
		Columns: []string{"variable", "was", "residual-atoms", "constraint"},
	}
	sc := scenarios.Scenario1()
	res, err := synthesizeScenario(ctx, sc)
	if err != nil {
		return nil, err
	}
	opts := core.DefaultOptions()
	opts.Lift = false
	ex, err := core.NewExplainer(sc.Net, sc.Requirements(), res.Deployment, opts)
	if err != nil {
		return nil, err
	}
	for _, tgt := range core.AllTargets(res.Deployment["R1"]) {
		e, err := ex.ExplainContext(ctx, "R1", []core.Target{tgt})
		if err != nil {
			return nil, err
		}
		text := e.ResidualText()
		if len(e.Residual) == 0 {
			text = "(unconstrained: redundant line)"
		} else if len(text) > 60 {
			text = text[:57] + "..."
		}
		t.AddRow(tgt.HoleName(), e.Replaced[tgt.HoleName()], e.ResidualSize, text)
	}
	return t, nil
}

// FigureTable regenerates the content of Figures 2, 4, and 5: the
// lifted subspecifications for the scenario/router pairs the paper
// shows.
func FigureTable(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:      "figures (Fig. 2, 4, 5)",
		Caption: "Lifted subspecifications for the routers the paper's figures show (forbids in route order, preferences in traffic order).",
		Columns: []string{"figure", "scenario", "router", "subspecification", "complete"},
	}
	type q struct {
		figure, scenario, router string
		reqsOf                   func(*scenarios.Scenario) []spec.Requirement
	}
	queries := []q{
		{"Fig. 2", "scenario1", "R1", func(sc *scenarios.Scenario) []spec.Requirement { return sc.Requirements() }},
		{"Fig. 4", "scenario2", "R3", func(sc *scenarios.Scenario) []spec.Requirement { return sc.Requirements() }},
		{"Fig. 5", "scenario3", "R2", func(sc *scenarios.Scenario) []spec.Requirement { return sc.Spec.Block("Req1").Reqs }},
		{"Fig. 5 (empty)", "scenario3", "R3", func(sc *scenarios.Scenario) []spec.Requirement { return sc.Spec.Block("Req1").Reqs }},
	}
	for _, query := range queries {
		sc, err := scenarios.ByName(query.scenario)
		if err != nil {
			return nil, err
		}
		res, err := synthesizeScenario(ctx, sc)
		if err != nil {
			return nil, err
		}
		ex, err := core.NewExplainer(sc.Net, query.reqsOf(sc), res.Deployment, core.DefaultOptions())
		if err != nil {
			return nil, err
		}
		e, err := ex.ExplainAllContext(ctx, query.router)
		if err != nil {
			return nil, err
		}
		text := "{ }"
		if !e.Subspec.IsEmpty() {
			var parts []string
			for _, r := range e.Subspec.Reqs {
				parts = append(parts, r.String())
			}
			sort.Strings(parts)
			text = parts[0]
			for _, p := range parts[1:] {
				text += " ; " + p
			}
		}
		t.AddRow(query.figure, query.scenario, query.router, text, e.SubspecComplete)
	}
	return t, nil
}

// InterpretationTable quantifies the Scenario 2 ambiguity (Figure 3/4
// discussion): reachability of D1 from C under double link failures,
// for the two interpretations of the preference.
func InterpretationTable(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:      "interpretation (Scenario 2)",
		Caption: "C->D1 reachability under double link failures for the two preference interpretations. Interpretation (1) blocks unlisted paths (less redundancy).",
		Columns: []string{"interpretation", "reachable-after-failure", "total-double-failures"},
	}
	sc := scenarios.Scenario2()
	links := [][2]string{{"R3", "R1"}, {"R3", "R2"}, {"R1", "P1"}, {"R2", "P2"}}
	for _, allow := range []bool{false, true} {
		opts := synth.DefaultOptions()
		opts.AllowUnspecified = allow
		res, err := synth.SynthesizeContext(ctx, sc.Net, sc.Sketch, sc.Requirements(), opts)
		if err != nil {
			return nil, err
		}
		reach, total := 0, 0
		d1 := sc.Net.Router("D1").Prefix
		for i := 0; i < len(links); i++ {
			for j := i + 1; j < len(links); j++ {
				total++
				failed := sc.Net.Clone()
				failed.RemoveLink(links[i][0], links[i][1])
				failed.RemoveLink(links[j][0], links[j][1])
				sim, err := bgp.Simulate(failed, res.Deployment)
				if err != nil {
					return nil, err
				}
				if sim.Reachable("C", d1) {
					reach++
				}
			}
		}
		name := "(1) block unlisted"
		if allow {
			name = "(2) last resort"
		}
		t.AddRow(name, reach, total)
	}
	return t, nil
}

// AblationTable measures what the simplification machinery
// contributes: full rule set, without equality propagation (S14), and
// a single pass instead of the fixpoint.
func AblationTable(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:      "ablation (simplifier)",
		Caption: "Simplified size of scenario 3's R1 seed under ablated simplifiers.",
		Columns: []string{"configuration", "simplified-atoms", "passes"},
	}
	sc := scenarios.Scenario3()
	res, err := synthesizeScenario(ctx, sc)
	if err != nil {
		return nil, err
	}
	opts := core.DefaultOptions()
	opts.Lift = false
	ex, err := core.NewExplainer(sc.Net, sc.Requirements(), res.Deployment, opts)
	if err != nil {
		return nil, err
	}
	e, err := ex.ExplainContext(ctx, "R1", core.AllTargets(res.Deployment["R1"]))
	if err != nil {
		return nil, err
	}
	seed := e.Seed

	run := func(name string, s *rewrite.Simplifier) {
		out := s.Simplify(seed)
		t.AddRow(name, logic.Size(out), s.Passes)
	}
	run("full (15 rules, fixpoint)", rewrite.New())
	noEq := rewrite.New()
	noEq.DisableEqPropagation = true
	run("without S14 eq-propagation", noEq)
	onePass := rewrite.New()
	onePass.MaxPasses = 1
	run("single pass", onePass)
	t.AddRow("unsimplified seed", logic.Size(seed), 0)
	return t, nil
}

// RuleFireTable reports which of the fifteen rules carry the
// simplification (per scenario, explaining R1 fully).
func RuleFireTable(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:      "rules (15 rewrite rules)",
		Caption: "Rule fire counts while simplifying the R1 seed of each scenario.",
		Columns: []string{"rule", "scenario1", "scenario2", "scenario3"},
	}
	counts := make([]map[rewrite.RuleName]int, 0, 3)
	for _, sc := range scenarios.All() {
		res, err := synthesizeScenario(ctx, sc)
		if err != nil {
			return nil, err
		}
		opts := core.DefaultOptions()
		opts.Lift = false
		ex, err := core.NewExplainer(sc.Net, sc.Requirements(), res.Deployment, opts)
		if err != nil {
			return nil, err
		}
		e, err := ex.ExplainAllContext(ctx, "R1")
		if err != nil {
			return nil, err
		}
		counts = append(counts, e.RuleStats)
	}
	for _, r := range rewrite.AllRules {
		t.AddRow(string(r), counts[0][r], counts[1][r], counts[2][r])
	}
	return t, nil
}

// ComplementTable runs the Section 5 extension: for each scenario,
// hold R3 fixed and report what the rest of the network must
// guarantee (the assume/guarantee split the paper sketches under
// "High-level summary of the global behaviors").
func ComplementTable(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:      "complement (extension, paper §5)",
		Caption: "Assume/guarantee view: holding R3 fixed, residual constraints on every other router.",
		Columns: []string{"scenario", "seed-atoms", "simplified", "router", "assumptions"},
	}
	for _, sc := range scenarios.All() {
		res, err := synthesizeScenario(ctx, sc)
		if err != nil {
			return nil, err
		}
		ex, err := core.NewExplainer(sc.Net, sc.Requirements(), res.Deployment, core.DefaultOptions())
		if err != nil {
			return nil, err
		}
		comp, err := ex.ExplainComplementContext(ctx, "R3")
		if err != nil {
			return nil, err
		}
		routers := comp.Routers()
		if len(routers) == 0 {
			t.AddRow(sc.Name, comp.SeedSize, comp.SimplifiedSize, "-", 0)
			continue
		}
		for _, r := range routers {
			t.AddRow(sc.Name, comp.SeedSize, comp.SimplifiedSize, r, len(comp.Assumptions[r]))
		}
	}
	return t, nil
}

// All returns every experiment table. quick trims the scaling sweep
// and restricts the diff benchmark to the seed scenarios.
func All(ctx context.Context, quick bool) ([]*Table, error) {
	builders := []func(context.Context) (*Table, error){
		SeedTable, SimplifyTable, LinearityTable, PerVarTable,
		FigureTable, InterpretationTable, AblationTable, RuleFireTable,
		ComplementTable, RewriteTable, LiftTable,
		func(ctx context.Context) (*Table, error) { return ScaleTable(ctx, quick) },
		func(ctx context.Context) (*Table, error) { return DiffTable(ctx, quick) },
		func(ctx context.Context) (*Table, error) { return ServeTable(ctx, quick) },
	}
	var out []*Table
	for _, b := range builders {
		t, err := b(ctx)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
