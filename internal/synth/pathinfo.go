package synth

import (
	"sort"
	"strings"

	"repro/internal/logic"
	"repro/internal/topology"
)

// PathInfo exposes one candidate propagation path with its symbolic
// ingredients — the explanation engine's lifting step builds candidate
// subspecification encodings from these.
type PathInfo struct {
	// Prefix is the destination prefix string.
	Prefix string
	// Path is the propagation path, origin first.
	Path []string
	// EdgeConds[i] is the symbolic condition under which the route
	// passes the edge Path[i] -> Path[i+1] (export policy at Path[i],
	// import policy at Path[i+1]).
	EdgeConds []logic.Term
	// LP is the local-preference rank term of the route as held at the
	// final node.
	LP logic.Term
	// Sel is the selection variable at the final node (nil at the
	// origin).
	Sel *logic.Var
}

// Traffic returns the traffic-direction view of the path (destination
// side last).
func (p PathInfo) Traffic() []string { return reverse(p.Path) }

// PathInfos lists every candidate of the encoding, sorted by prefix
// then path, rebuilt from the encoder's candidate graph. The list is
// materialized on first call (concurrency-safe) and cached; callers get
// a fresh copy of the slice header each time.
func (enc *Encoding) PathInfos() []PathInfo {
	enc.pathsOnce.Do(func() {
		if enc.buildPaths != nil {
			enc.paths = enc.buildPaths()
			enc.buildPaths = nil
		}
	})
	out := append([]PathInfo(nil), enc.paths...)
	return out
}

// buildPathInfos flattens the candidate graph.
func (e *Encoder) buildPathInfos() []PathInfo {
	var out []PathInfo
	prefixes := make([]string, 0, len(e.cands))
	for p := range e.cands {
		prefixes = append(prefixes, p)
	}
	sort.Strings(prefixes)
	for _, prefix := range prefixes {
		byNode := e.cands[prefix]
		var all []*candidate
		for _, cs := range byNode {
			all = append(all, cs...)
		}
		sort.Slice(all, func(i, j int) bool {
			return strings.Join(all[i].path, ",") < strings.Join(all[j].path, ",")
		})
		for _, c := range all {
			if c.parent == nil {
				continue // origins carry no edges
			}
			// Collect the edge conditions along the chain.
			var chain []*candidate
			for cur := c; cur.parent != nil; cur = cur.parent {
				chain = append(chain, cur)
			}
			conds := make([]logic.Term, len(chain))
			for i := range chain {
				conds[len(chain)-1-i] = chain[i].edgeCond
			}
			out = append(out, PathInfo{
				Prefix:    prefix,
				Path:      append([]string(nil), c.path...),
				EdgeConds: conds,
				LP:        c.state.lp,
				Sel:       c.sel,
			})
		}
	}
	return out
}

// PreferredTerm builds the condition under which route a is at least
// as preferred as route b at their (shared) final node: strictly
// higher local-pref rank, or at least equal when the concrete
// tie-break already favors a. Both paths must end at the same node and
// concern the same prefix.
func PreferredTerm(a, b PathInfo, net *topology.Network) logic.Term {
	if tieWins(a.Path, b.Path, net) {
		return logic.Ge(a.LP, b.LP)
	}
	return logic.Gt(a.LP, b.LP)
}

func tieWins(pi, pj []string, net *topology.Network) bool {
	ai, aj := asPathLen(pi, net), asPathLen(pj, net)
	if ai != aj {
		return ai < aj
	}
	if len(pi) != len(pj) {
		return len(pi) < len(pj)
	}
	return strings.Join(pi, ",") < strings.Join(pj, ",")
}
