package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/netgen"
	"repro/internal/scenarios"
	"repro/internal/spec"
	"repro/internal/synth"
	"repro/internal/topology"
	"repro/internal/verify"
)

// DiffEntry is one (workload, edit-kind) measurement of the incremental
// re-explanation machinery: the wall time of a cold full report over
// the edited network versus re-explaining the same edit through a warm
// explainer, plus the delta statistics ReExplain reports. ByteIdentical
// is the correctness bit — the incremental report compared byte for
// byte against the cold one.
type DiffEntry struct {
	Workload string `json:"workload"`
	EditKind string `json:"edit_kind"`
	// Edit is the applied edit's router and detail string.
	Edit string `json:"edit"`
	// ColdMS is a cold full report over the edited network (fresh
	// explainer, no session to reuse); IncrementalMS is ReExplain of the
	// same edit against a warm explainer.
	ColdMS        float64 `json:"cold_ms"`
	IncrementalMS float64 `json:"incremental_ms"`
	Speedup       float64 `json:"speedup"`
	Routers       int     `json:"routers"`
	// DirtyRouters is the size of the observed dirty set (routers whose
	// seed specification changed); Spliced and Recomputed split the lift
	// stage's work; FastPath marks edits proven model-invisible and
	// answered with the previous report verbatim.
	DirtyRouters int  `json:"dirty_routers"`
	Spliced      int  `json:"spliced"`
	Recomputed   int  `json:"recomputed"`
	FastPath     bool `json:"fast_path"`
	// CacheHits and CacheMisses are the report-cache lookups the
	// re-explanation performed; ConeAtoms totals the dirty routers' seed
	// conjuncts inside the edit's cone of influence.
	CacheHits     int  `json:"cache_hits"`
	CacheMisses   int  `json:"cache_misses"`
	ConeAtoms     int  `json:"cone_atoms"`
	ByteIdentical bool `json:"byte_identical"`
}

// DiffPerfReport is the payload written by netbench -diffjson
// (BENCH_diff.json).
type DiffPerfReport struct {
	Name    string      `json:"name"`
	Entries []DiffEntry `json:"entries"`
}

// diffEditKinds is the edit-family sweep, one representative edit per
// family per workload. The families deliberately span the delta
// machinery's regimes: action-flip and pref-change are visible to the
// encoding (dirty cone, partial splice); nexthop-change folds to
// nothing the encoder models for every router but still shifts the
// edited router's vocabulary contribution (full splice); med-change on
// a clause without a metric line adds one, growing the edited router's
// symbolization surface (dirty). The separately staged med-retune —
// changing an EXISTING metric's value — is the fully invisible edit
// that takes the fast path.
var diffEditKinds = []string{"action-flip", "pref-change", "med-change", "nexthop-change"}

// diffJob is one workload the diff benchmark measures.
type diffJob struct {
	name string
	net  *topology.Network
	reqs []spec.Requirement
	dep  config.Deployment
	opts core.Options
}

// diffJobs synthesizes the benchmark workloads: the three seed
// scenarios always, plus the netgen Grid/FatTree/Random presets unless
// quick is set.
func diffJobs(ctx context.Context, quick bool) ([]diffJob, error) {
	var jobs []diffJob
	for _, sc := range scenarios.All() {
		res, err := synthesizeScenario(ctx, sc)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, diffJob{sc.Name, sc.Net, sc.Requirements(), res.Deployment, core.DefaultOptions()})
	}
	if quick {
		return jobs, nil
	}
	for _, wl := range satWorkloads() {
		opts := synth.DefaultOptions()
		opts.MaxPathLen = 7
		opts.MaxCandidatesPerNode = 8
		res, err := synth.SynthesizeContext(ctx, wl.Net, wl.Sketch, wl.Requirements(), opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", wl.Name, err)
		}
		if ok, err := verify.SatisfiesContext(ctx, wl.Net, res.Deployment, wl.Requirements()); err != nil || !ok {
			return nil, fmt.Errorf("%s: synthesized deployment does not verify (%v)", wl.Name, err)
		}
		copts := core.DefaultOptions()
		copts.Synth = opts
		jobs = append(jobs, diffJob{wl.Name, wl.Net, wl.Requirements(), res.Deployment, copts})
	}
	return jobs, nil
}

// editCandidate is one single-edit variant of a workload's deployment.
type editCandidate struct {
	dep  config.Deployment
	edit netgen.Edit
}

// editCandidates enumerates deterministic single edits of the wanted
// family by scanning Perturb seeds, deduplicated by edit site. Several
// candidates are returned because a behavior-visible edit can make the
// intent unsatisfiable — the benchmark then moves to the next site.
func editCandidates(dep config.Deployment, kind string, max int) []editCandidate {
	seen := map[string]bool{}
	var out []editCandidate
	for seed := int64(0); seed < 64 && len(out) < max; seed++ {
		edited, edits := netgen.Perturb(dep, seed, 1)
		if len(edits) != 1 || edits[0].Kind != kind {
			continue
		}
		key := edits[0].Router + "|" + edits[0].Detail
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, editCandidate{edited, edits[0]})
	}
	return out
}

// diffEntries runs the full measurement: per workload, warm one
// explainer with a full report, then for each edit family measure
// ReExplain of a single representative edit and compare — in bytes and
// in wall time — against a cold full report over the edited network.
// Between families the warm explainer is steered back to the baseline
// deployment through the same incremental path, so every measured edit
// starts from a session warmed on the unedited network.
func diffEntries(ctx context.Context, quick bool) ([]DiffEntry, error) {
	jobs, err := diffJobs(ctx, quick)
	if err != nil {
		return nil, err
	}
	var entries []DiffEntry
	for _, j := range jobs {
		e, err := core.NewExplainer(j.net, j.reqs, j.dep, j.opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", j.name, err)
		}
		if _, err := e.ReportContext(ctx); err != nil {
			return nil, fmt.Errorf("%s: warm report: %w", j.name, err)
		}
		onBaseline := true
		// rewarm steers the explainer back to the baseline deployment,
		// rebuilding it cold if the incremental revert fails.
		rewarm := func() error {
			if onBaseline {
				return nil
			}
			if _, err := e.ReExplainContext(ctx, core.Delta{Deployment: j.dep}); err == nil {
				onBaseline = true
				return nil
			}
			e, err = core.NewExplainer(j.net, j.reqs, j.dep, j.opts)
			if err != nil {
				return err
			}
			if _, err := e.ReportContext(ctx); err != nil {
				return err
			}
			onBaseline = true
			return nil
		}
		// measure re-explains one edit through the warm explainer and,
		// on success, records an entry verified against a cold report.
		// ok=false means the edit broke the intent (a cold explainer
		// rejects it the same way) and the caller should try another.
		measure := func(kind string, cand editCandidate) (bool, error) {
			start := time.Now()
			dr, err := e.ReExplainContext(ctx, core.Delta{Deployment: cand.dep})
			onBaseline = false
			if err != nil {
				if ctx.Err() != nil {
					return false, ctx.Err()
				}
				return false, nil
			}
			incrMS := float64(time.Since(start).Microseconds()) / 1000

			cold, err := core.NewExplainer(j.net, j.reqs, cand.dep, j.opts)
			if err != nil {
				return false, fmt.Errorf("%s %s: cold explainer: %w", j.name, kind, err)
			}
			start = time.Now()
			want, err := cold.ReportContext(ctx)
			if err != nil {
				return false, fmt.Errorf("%s %s: cold report: %w", j.name, kind, err)
			}
			coldMS := float64(time.Since(start).Microseconds()) / 1000

			speedup := 0.0
			if incrMS > 0 {
				speedup = coldMS / incrMS
			}
			entries = append(entries, DiffEntry{
				Workload:      j.name,
				EditKind:      kind,
				Edit:          cand.edit.Router + " " + cand.edit.Detail,
				ColdMS:        coldMS,
				IncrementalMS: incrMS,
				Speedup:       speedup,
				Routers:       dr.Stats.Routers,
				DirtyRouters:  len(dr.Stats.PredictedDirty),
				Spliced:       dr.Stats.Spliced,
				Recomputed:    dr.Stats.Recomputed,
				FastPath:      dr.Stats.FastPath,
				CacheHits:     dr.Stats.CacheHits,
				CacheMisses:   dr.Stats.CacheMisses,
				ConeAtoms:     dr.Stats.ConeAtoms,
				ByteIdentical: dr.Report == want,
			})
			return true, nil
		}

		for _, kind := range diffEditKinds {
			for _, cand := range editCandidates(j.dep, kind, 6) {
				if err := rewarm(); err != nil {
					return nil, fmt.Errorf("%s: rewarm baseline: %w", j.name, err)
				}
				ok, err := measure(kind, cand)
				if err != nil {
					return nil, err
				}
				if ok {
					break
				}
			}
		}

		// med-retune: changing the VALUE of an existing metric — the
		// canonical model-invisible edit an operator makes ("retune the
		// link weight"). Synthesized deployments carry no metric lines,
		// so stage one med-change to introduce the line (that deployment
		// becomes the warm baseline) and measure retuning the same line.
		if cands := editCandidates(j.dep, "med-change", 1); len(cands) == 1 {
			staged, first := cands[0].dep, cands[0].edit
			site, _, _ := strings.Cut(first.Detail, ":")
			for _, cand := range editCandidates(staged, "med-change", 8) {
				if cand.edit.Router != first.Router || !strings.HasPrefix(cand.edit.Detail, site+":") {
					continue
				}
				if _, err := e.ReExplainContext(ctx, core.Delta{Deployment: staged}); err != nil {
					break
				}
				onBaseline = false
				if _, err := measure("med-retune", cand); err != nil {
					return nil, err
				}
				break
			}
		}
	}
	return entries, nil
}

// DiffTable measures the incremental what-if machinery (extension
// Ext-4): cold-report versus ReExplain wall time for one representative
// edit of every family, over the seed scenarios and (unless quick) the
// netgen Grid/FatTree/Random presets.
func DiffTable(ctx context.Context, quick bool) (*Table, error) {
	entries, err := diffEntries(ctx, quick)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "diff (extension Ext-4)",
		Caption: "Incremental re-explanation after a single-router edit. cold-ms is a full report by a fresh explainer over the edited network; incr-ms re-explains the same edit through an explainer warmed on the unedited network. dirty is the observed dirty set (routers whose seed specification changed); spliced/recomp split the lift stage's work; fast marks edits proven invisible to the encoding and answered with the previous report verbatim; cache is report-cache hits/misses; bytes-ok confirms the incremental report is byte-identical to the cold one.",
		Columns: []string{"workload", "edit", "cold-ms", "incr-ms", "speedup", "routers", "dirty", "spliced", "recomp", "fast", "cache", "bytes-ok"},
	}
	for _, en := range entries {
		t.AddRow(en.Workload, en.EditKind,
			fmt.Sprintf("%.1f", en.ColdMS), fmt.Sprintf("%.1f", en.IncrementalMS),
			fmt.Sprintf("%.1fx", en.Speedup),
			en.Routers, en.DirtyRouters, en.Spliced, en.Recomputed,
			en.FastPath,
			fmt.Sprintf("%d/%d", en.CacheHits, en.CacheMisses),
			en.ByteIdentical)
	}
	return t, nil
}

// WriteDiffJSON runs the full diff benchmark (netgen presets included)
// and writes the report to path, indented for committing alongside the
// benchmark baselines (BENCH_diff.json).
func WriteDiffJSON(ctx context.Context, path string) error {
	entries, err := diffEntries(ctx, false)
	if err != nil {
		return err
	}
	rep := &DiffPerfReport{Name: "incremental-reexplain", Entries: entries}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
