package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/netgen"
	"repro/internal/scenarios"
	"repro/internal/server"
	"repro/internal/spec"
	"repro/internal/synth"
	"repro/internal/topology"
)

// ServeEntry is one workload's measurement of the netexplaind serving
// layer, driven through the HTTP handler in-process.
type ServeEntry struct {
	Workload string `json:"workload"`
	// Requests is the number of explain/diff requests issued;
	// Concurrency is how many clients issued them at once.
	Requests    int `json:"requests"`
	Concurrency int `json:"concurrency"`
	// CacheHits/CacheMisses are the server's response-cache counters
	// after the run (scraped from /metrics); HitRate is their ratio.
	CacheHits   int     `json:"cache_hits"`
	CacheMisses int     `json:"cache_misses"`
	HitRate     float64 `json:"hit_rate"`
	// ThroughputRPS is requests divided by the run's wall time.
	ThroughputRPS float64 `json:"throughput_rps"`
	// P50MS/P99MS are per-request latency percentiles in milliseconds
	// (cache hits included — that is the latency clients observe).
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
	// ByteIdentical reports every served explain/diff report matched
	// the netexplain CLI's output for the same problem, byte for byte.
	ByteIdentical bool `json:"byte_identical"`
	// Errors counts non-200 responses (0 in a healthy run).
	Errors int `json:"errors"`
}

// ServeReport is the payload written by netbench -servejson.
type ServeReport struct {
	Name    string       `json:"name"`
	Entries []ServeEntry `json:"entries"`
}

// serveWorkload is one problem rendered in the wire formats, plus an
// edited variant for diff traffic and the CLI-equivalent ground-truth
// reports.
type serveWorkload struct {
	name                       string
	topo, configs, spc, edited string
	lift                       bool
	wantBase, wantEdited       string
	wantDiffSummaryMark        string
}

// serveSeedWorkload renders one seed scenario for the harness.
func serveSeedWorkload(ctx context.Context, sc *scenarios.Scenario) (*serveWorkload, error) {
	res, err := synthesizeScenario(ctx, sc)
	if err != nil {
		return nil, err
	}
	return newServeWorkload(ctx, sc.Name, sc.Net, sc.Spec, res.Deployment, true)
}

// serveGridWorkload renders the netgen grid preset. Lift is disabled
// for parity with the scale experiment (the grid's interest is
// encoding volume, not lifted interpretation).
func serveGridWorkload(ctx context.Context, w, h int) (*serveWorkload, error) {
	wl, err := netgen.Grid(w, h, false)
	if err != nil {
		return nil, err
	}
	opts := synth.DefaultOptions()
	opts.MaxPathLen = 7
	opts.MaxCandidatesPerNode = 8
	res, err := synth.SynthesizeContext(ctx, wl.Net, wl.Sketch, wl.Requirements(), opts)
	if err != nil {
		return nil, err
	}
	return newServeWorkload(ctx, wl.Name, wl.Net, wl.Spec, res.Deployment, false)
}

func newServeWorkload(ctx context.Context, name string, net *topology.Network, sp *spec.Spec, dep config.Deployment, lift bool) (*serveWorkload, error) {
	edited, edits := netgen.Perturb(dep, 1, 1)
	if len(edits) == 0 {
		return nil, fmt.Errorf("serve: %s has no edit sites", name)
	}
	w := &serveWorkload{
		name:    name,
		topo:    topology.Print(net),
		configs: config.PrintDeployment(dep),
		spc:     spec.Print(sp),
		edited:  config.PrintDeployment(edited),
		lift:    lift,
	}
	// Ground truth through the same core path the netexplain CLI
	// prints verbatim.
	copts := core.DefaultOptions()
	copts.Lift = lift
	base, err := core.NewExplainer(net, sp.Requirements(), dep, copts)
	if err != nil {
		return nil, err
	}
	if w.wantBase, err = base.ReportContext(ctx); err != nil {
		return nil, err
	}
	ed, err := core.NewExplainer(net, sp.Requirements(), edited, copts)
	if err != nil {
		return nil, fmt.Errorf("serve: %s edited variant: %w", name, err)
	}
	if w.wantEdited, err = ed.ReportContext(ctx); err != nil {
		return nil, fmt.Errorf("serve: %s edited variant: %w", name, err)
	}
	w.wantDiffSummaryMark = "WHAT-IF DELTA SUMMARY"
	return w, nil
}

// serveRequest mirrors the server's wire request shape.
type serveRequest struct {
	Topology      string `json:"topology"`
	Configs       string `json:"configs"`
	Spec          string `json:"spec"`
	EditedConfigs string `json:"edited_configs,omitempty"`
	NoLift        bool   `json:"nolift,omitempty"`
}

// driveServe fires n requests at the handler from conc clients. The
// traffic mix is the serving layer's steady state: repeated identical
// base explains (response-cache hits after the first), explains of the
// edited problem, and what-if diffs from base to edited.
func driveServe(ctx context.Context, h http.Handler, w *serveWorkload, n, conc int) (latencies []time.Duration, identical bool, errs int) {
	kinds := []serveRequest{
		{Topology: w.topo, Configs: w.configs, Spec: w.spc, NoLift: !w.lift},
		{Topology: w.topo, Configs: w.edited, Spec: w.spc, NoLift: !w.lift},
		{Topology: w.topo, Configs: w.configs, Spec: w.spc, EditedConfigs: w.edited, NoLift: !w.lift},
	}
	paths := []string{"/explain", "/explain", "/diff"}
	wants := []string{w.wantBase, w.wantEdited, w.wantEdited}

	latencies = make([]time.Duration, n)
	identical = true
	var mu sync.Mutex
	doReq := func(i int) {
		k := i % len(kinds)
		body, _ := json.Marshal(kinds[k])
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, paths[k], bytes.NewReader(body)).WithContext(ctx)
		start := time.Now()
		h.ServeHTTP(rec, req)
		elapsed := time.Since(start)

		ok := rec.Code == http.StatusOK
		match := false
		if ok {
			var resp struct {
				Report  string `json:"report"`
				Summary string `json:"summary"`
			}
			if json.Unmarshal(rec.Body.Bytes(), &resp) == nil {
				match = resp.Report == wants[k]
				if paths[k] == "/diff" {
					match = match && bytes.Contains([]byte(resp.Summary), []byte(w.wantDiffSummaryMark))
				}
			}
		}
		mu.Lock()
		latencies[i] = elapsed
		if !ok {
			errs++
		} else if !match {
			identical = false
		}
		mu.Unlock()
	}

	// One sequential pass over the request kinds first: it populates
	// the response cache (and warms the session pool) so the measured
	// flood exercises the steady state rather than a thundering herd
	// of identical cold misses.
	warm := len(kinds)
	if warm > n {
		warm = n
	}
	for i := 0; i < warm; i++ {
		doReq(i)
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				doReq(i)
			}
		}()
	}
	for i := warm; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return latencies, identical, errs
}

// latencyPercentile returns the p-th percentile (0 < p <= 100) of the
// given latencies in milliseconds.
func latencyPercentile(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p/100*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx].Microseconds()) / 1000
}

// Serve measures the netexplaind serving layer on the seed scenarios
// plus a netgen grid preset (skipped when quick), driving the HTTP
// handler in-process. Each workload gets a fresh server so cache
// counters are per-workload.
func Serve(ctx context.Context, quick bool) (*ServeReport, error) {
	var workloads []*serveWorkload
	for _, sc := range scenarios.All() {
		w, err := serveSeedWorkload(ctx, sc)
		if err != nil {
			return nil, err
		}
		workloads = append(workloads, w)
	}
	if !quick {
		w, err := serveGridWorkload(ctx, 3, 3)
		if err != nil {
			return nil, err
		}
		workloads = append(workloads, w)
	}

	const conc = 16
	n := 48
	if quick {
		n = 12
	}
	rep := &ServeReport{Name: "serve-pipeline"}
	for _, w := range workloads {
		srv := server.New(server.Options{
			MaxInflight:       conc,
			ResponseCacheSize: 256,
			PoolSize:          4,
		})
		h := srv.Handler()
		start := time.Now()
		lat, identical, errs := driveServe(ctx, h, w, n, conc)
		wall := time.Since(start)

		snap := srv.Snapshot()
		hits, misses := snap.Server.ResponseCacheHits, snap.Server.ResponseCacheMisses
		hitRate := 0.0
		if hits+misses > 0 {
			hitRate = float64(hits) / float64(hits+misses)
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		rep.Entries = append(rep.Entries, ServeEntry{
			Workload:      w.name,
			Requests:      n,
			Concurrency:   conc,
			CacheHits:     hits,
			CacheMisses:   misses,
			HitRate:       hitRate,
			ThroughputRPS: float64(n) / wall.Seconds(),
			P50MS:         latencyPercentile(lat, 50),
			P99MS:         latencyPercentile(lat, 99),
			ByteIdentical: identical,
			Errors:        errs,
		})
	}
	return rep, nil
}

// ServeTable renders the serve measurement as an experiment table.
func ServeTable(ctx context.Context, quick bool) (*Table, error) {
	rep, err := Serve(ctx, quick)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "serve (extension Ext-5)",
		Caption: "netexplaind serving layer: concurrent explain/diff traffic through the HTTP handler. hit-rate is the content-addressed response cache; byte-identical checks every served report against the netexplain CLI's output for the same problem.",
		Columns: []string{"workload", "requests", "conc", "hit-rate", "rps", "p50-ms", "p99-ms", "byte-identical", "errors"},
	}
	for _, e := range rep.Entries {
		t.AddRow(e.Workload, e.Requests, e.Concurrency,
			fmt.Sprintf("%.2f", e.HitRate), fmt.Sprintf("%.1f", e.ThroughputRPS),
			fmt.Sprintf("%.1f", e.P50MS), fmt.Sprintf("%.1f", e.P99MS),
			e.ByteIdentical, e.Errors)
	}
	return t, nil
}

// WriteServeJSON runs Serve and writes the report to path, indented
// for committing alongside benchmark baselines (BENCH_serve.json).
func WriteServeJSON(ctx context.Context, path string, quick bool) error {
	rep, err := Serve(ctx, quick)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
