// Quickstart: the full pipeline of the paper on Scenario 1 — from the
// global no-transit intent and the Figure 1b topology, through
// constraint-based synthesis, to the localized explanation at router
// R1 (Figures 1, 2, and 6).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/bgp"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/scenarios"
	"repro/internal/spec"
	"repro/internal/synth"
	"repro/internal/topology"
	"repro/internal/verify"
)

func section(title string) {
	fmt.Printf("\n=== %s ===\n\n", title)
}

func main() {
	sc := scenarios.Scenario1()

	section("Global specification (Figure 1a)")
	fmt.Print(spec.Print(sc.Spec))

	section("Topology (Figure 1b)")
	fmt.Print(topology.Print(sc.Net))

	section("Configuration sketch at R1 (holes marked ?)")
	fmt.Print(config.Print(sc.Sketch["R1"]))

	// Synthesis: complete the sketch so the global intent holds.
	res, err := synth.Synthesize(sc.Net, sc.Sketch, sc.Requirements(), synth.DefaultOptions())
	if err != nil {
		log.Fatalf("synthesis failed: %v", err)
	}
	section("Synthesized configuration at R1 (Figure 1c)")
	fmt.Print(config.Print(res.Deployment["R1"]))
	fmt.Printf("encoding: %d constraints, %d constraint atoms, %d hole variables\n",
		res.Encoding.Stats.Constraints, res.Encoding.Stats.ConstraintSize, res.Encoding.Stats.HoleVars)

	// Ground truth: the simulation confirms the intent holds.
	vs, err := verify.Check(sc.Net, res.Deployment, sc.Requirements())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verification: %d violations\n", len(vs))

	// Explanation (Figure 6): symbolize R1, extract the seed
	// specification, simplify, lift.
	explainer, err := core.NewExplainer(sc.Net, sc.Requirements(), res.Deployment, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	ex, err := explainer.ExplainAll("R1")
	if err != nil {
		log.Fatal(err)
	}

	section("Seed specification (Figure 6b -> constraints)")
	fmt.Printf("seed: %d constraints, %d atoms over %d symbolic variables\n",
		ex.SeedConstraints, ex.SeedSize, len(ex.HoleVars))

	section("Simplified constraints (Figure 6c)")
	fmt.Printf("after %d passes of the 15 rewrite rules: %d atoms (reduction %.0fx)\n",
		ex.Passes, ex.SimplifiedSize, ex.Reduction())
	fmt.Printf("size per pass: %d", ex.SeedSize)
	for _, sz := range ex.SimplifyTrace {
		fmt.Printf(" -> %d", sz)
	}
	fmt.Printf("\n\n%s\n", ex.ResidualText())

	section("Subspecification at R1 (Figure 2)")
	fmt.Print(spec.PrintBlock(ex.Subspec))
	if ex.SubspecComplete {
		fmt.Println("\n(verified: necessary and sufficient for the global intent)")
	}

	section("The underspecification the explanation reveals")
	// The subspec shows R1's whole job is dropping routes toward P1 —
	// nothing requires customer connectivity, so the synthesized
	// configuration also cut P1 off from the customer network.
	sim, err := bgp.Simulate(sc.Net, res.Deployment)
	if err != nil {
		log.Fatal(err)
	}
	cPfx := sc.Net.Router("C").Prefix
	if path := sim.ForwardingPath("P1", cPfx); path == nil {
		fmt.Println("P1 can no longer reach the customer prefix 123.0.1.0/20 -")
		fmt.Println("satisfying the letter of the intent while breaking connectivity.")
		fmt.Println("Scenario 3 adds the reachability requirement that fixes this.")
	} else {
		fmt.Printf("P1 reaches the customer via %v\n", path)
	}
}
