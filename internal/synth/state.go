package synth

import (
	"fmt"
	"sort"

	"repro/internal/bgp"
	"repro/internal/config"
	"repro/internal/logic"
	"repro/internal/topology"
)

// vocab holds the finite sorts the encoding ranges over: route-map
// actions, the network's prefixes, the community vocabulary, and the
// neighbor names usable in next-hop matches.
type vocab struct {
	actionSort *logic.Sort
	prefixSort *logic.Sort
	commSort   *logic.Sort
	nbrSort    *logic.Sort
	ipSort     *logic.Sort

	prefixes    []string // sorted prefix strings
	communities []bgp.Community
	ips         []string
}

// actionPermit and actionDeny are the two constants of the action
// sort.
const (
	actionPermit = "permit"
	actionDeny   = "deny"
)

func buildVocab(net *topology.Network, sketch config.Deployment) *vocab {
	v := &vocab{}
	v.actionSort = logic.NewEnumSort("RMAction", actionPermit, actionDeny)

	seenP := map[string]bool{}
	for _, r := range net.Routers() {
		if r.HasPrefix {
			seenP[r.Prefix.String()] = true
		}
	}
	for p := range seenP {
		v.prefixes = append(v.prefixes, p)
	}
	sort.Strings(v.prefixes)
	v.prefixSort = logic.NewEnumSort("Prefix", v.prefixes...)

	// The base vocabulary is always available so community holes have
	// room to choose, and — critically for the explainer — so the
	// vocabulary does not shrink when a concrete tag is symbolized
	// away (the encoding must stay comparable across symbolizations).
	seenC := map[bgp.Community]bool{
		bgp.MustCommunity("100:1"): true,
		bgp.MustCommunity("100:2"): true,
	}
	for _, c := range sketch {
		for _, name := range c.RouteMapNames() {
			for _, cl := range c.RouteMaps[name].Clauses {
				for _, m := range cl.Matches {
					if m.Kind == config.MatchCommunity && m.ValueHole == "" {
						seenC[m.Community] = true
					}
				}
				for _, s := range cl.Sets {
					if s.Kind == config.SetCommunity && s.ParamHole == "" {
						seenC[s.Community] = true
					}
				}
			}
		}
	}
	for c := range seenC {
		v.communities = append(v.communities, c)
	}
	sort.Slice(v.communities, func(i, j int) bool {
		return v.communities[i].String() < v.communities[j].String()
	})
	commNames := make([]string, len(v.communities))
	for i, c := range v.communities {
		commNames[i] = "c" + c.String()
	}
	v.commSort = logic.NewEnumSort("Community", commNames...)

	v.nbrSort = logic.NewEnumSort("Neighbor", net.RouterNames()...)

	seenIP := map[string]bool{"10.0.0.1": true, "10.0.0.2": true}
	for _, c := range sketch {
		for _, name := range c.RouteMapNames() {
			for _, cl := range c.RouteMaps[name].Clauses {
				for _, s := range cl.Sets {
					if s.Kind == config.SetNextHopIP && s.ParamHole == "" && s.NextHopIP != "" {
						seenIP[s.NextHopIP] = true
					}
				}
			}
		}
	}
	for ip := range seenIP {
		v.ips = append(v.ips, ip)
	}
	sort.Strings(v.ips)
	v.ipSort = logic.NewEnumSort("NextHopIP", v.ips...)
	return v
}

// VocabContribFingerprint hashes one configuration's contribution to
// the encoder's deployment-dependent vocabulary: the concrete
// community tags and next-hop IPs its route-maps mention (buildVocab
// folds these into the enum sorts every hole variable of the
// deployment ranges over). Explanation encodings symbolize one router
// at a time, so the vocabulary seen when explaining router Y is the
// union of every OTHER router's contribution — if each router's
// contribution is unchanged between two deployments, every derived
// encoding's sorts are unchanged too. Prefixes and neighbor names come
// from the topology and need no fingerprinting.
func VocabContribFingerprint(c *config.Config) uint64 {
	var items []string
	for _, name := range c.RouteMapNames() {
		for _, cl := range c.RouteMaps[name].Clauses {
			for _, m := range cl.Matches {
				if m.Kind == config.MatchCommunity && m.ValueHole == "" {
					items = append(items, "c"+m.Community.String())
				}
			}
			for _, s := range cl.Sets {
				if s.Kind == config.SetCommunity && s.ParamHole == "" {
					items = append(items, "c"+s.Community.String())
				}
				if s.Kind == config.SetNextHopIP && s.ParamHole == "" && s.NextHopIP != "" {
					items = append(items, "ip"+s.NextHopIP)
				}
			}
		}
	}
	sort.Strings(items)
	// Deduplicate: the vocabulary is a set, so repeating a tag is not a
	// contribution change.
	h := uint64(14695981039346656037)
	prev := ""
	for _, it := range items {
		if it == prev {
			continue
		}
		prev = it
		for i := 0; i < len(it); i++ {
			h = (h ^ uint64(it[i])) * 1099511628211
		}
		h = (h ^ 0xff) * 1099511628211
	}
	return h
}

// ModeledFingerprint hashes a configuration modulo the concrete values
// the encoding ignores: MED metrics and next-hop IP rewrites are
// masked before hashing, while the lines themselves still count
// (symbolization surfaces a hole variable per set line, so adding or
// removing one changes the explanation problem even when its value
// never constrains anything). Two concrete configurations with equal
// modeled fingerprints and equal vocabulary contributions
// (VocabContribFingerprint) yield identical constraint systems under
// every symbolization of the surrounding deployment.
func ModeledFingerprint(c *config.Config) uint64 {
	masked := c.Clone()
	for _, name := range masked.RouteMapNames() {
		for _, cl := range masked.RouteMaps[name].Clauses {
			for _, s := range cl.Sets {
				switch s.Kind {
				case config.SetMED:
					s.MED = 0
				case config.SetNextHopIP:
					if s.ParamHole == "" {
						s.NextHopIP = ""
					}
				}
			}
		}
	}
	return config.Fingerprint(masked)
}

// commConst returns the enum literal of a community.
func (v *vocab) commConst(c bgp.Community) *logic.EnumLit {
	return logic.NewEnum(v.commSort, "c"+c.String())
}

// prefixConst returns the enum literal of a prefix string.
func (v *vocab) prefixConst(p string) *logic.EnumLit {
	return logic.NewEnum(v.prefixSort, p)
}

// routeState is the symbolic attribute state of a route announcement
// at some point along a candidate propagation path.
type routeState struct {
	// prefix is the (always concrete) destination prefix string.
	prefix string
	// lp is the local-preference rank at the current node, an
	// Int-sorted term.
	lp logic.Term
	// comms maps each vocabulary community to the (Bool-sorted)
	// condition under which the route carries it. Absent means false.
	comms map[bgp.Community]logic.Term
	// nextHop is the neighbor the current node learned the route from
	// ("" at the origin). Always concrete: it is determined by the
	// candidate path.
	nextHop string
}

func originState(prefix string) *routeState {
	return &routeState{
		prefix: prefix,
		lp:     logic.NewInt(lpRankDefault),
		comms:  map[bgp.Community]logic.Term{},
	}
}

func (s *routeState) clone() *routeState {
	cp := *s
	cp.comms = make(map[bgp.Community]logic.Term, len(s.comms))
	for c, t := range s.comms {
		cp.comms[c] = t
	}
	return &cp
}

// hasComm returns the condition under which the route carries c.
func (s *routeState) hasComm(c bgp.Community) logic.Term {
	if t, ok := s.comms[c]; ok {
		return t
	}
	return logic.False
}

// holeVar creates (or reuses) the logic variable for a hole. The hole
// kind determines the sort.
func (e *Encoder) holeVar(name string, mk func() *logic.Var) (*logic.Var, error) {
	if v, ok := e.holeVars[name]; ok {
		fresh := mk()
		if !logic.SameSort(v.S, fresh.S) {
			return nil, fmt.Errorf("synth: hole %q used at two sorts (%v and %v)", name, v.S, fresh.S)
		}
		return v, nil
	}
	v := mk()
	e.holeVars[name] = v
	return v, nil
}
