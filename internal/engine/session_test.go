package engine_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/scenarios"
	"repro/internal/synth"
)

func newSession(t *testing.T) *engine.Session {
	t.Helper()
	sc := scenarios.Scenario1()
	res, err := synth.Synthesize(sc.Net, sc.Sketch, sc.Requirements(), synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return engine.NewSession(sc.Net, sc.Requirements(), res.Deployment, synth.DefaultOptions())
}

func TestSessionEncodeCaches(t *testing.T) {
	s := newSession(t)
	sc := scenarios.Scenario1()
	res, err := synth.Synthesize(sc.Net, sc.Sketch, sc.Requirements(), synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	enc1, err := s.Encode(ctx, res.Deployment, "k")
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := s.Encode(ctx, res.Deployment, "k")
	if err != nil {
		t.Fatal(err)
	}
	if enc1 != enc2 {
		t.Error("same key returned distinct encodings")
	}
	st := s.Stats()
	if st.BaseEncodes != 1 || st.Encodes != 1 || st.CacheHits != 1 {
		t.Errorf("stats = base %d, encodes %d, hits %d; want 1, 1, 1",
			st.BaseEncodes, st.Encodes, st.CacheHits)
	}

	// A different key encodes again but shares the base.
	if _, err := s.Encode(ctx, res.Deployment, "k2"); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.BaseEncodes != 1 || st.Encodes != 2 {
		t.Errorf("after second key: base %d, encodes %d; want 1, 2", st.BaseEncodes, st.Encodes)
	}
	if st.ReusedCandidates == 0 {
		t.Error("derived encode of the unchanged deployment reused no candidates")
	}
}

func TestSessionSingleFlight(t *testing.T) {
	s := newSession(t)
	sc := scenarios.Scenario1()
	res, err := synth.Synthesize(sc.Net, sc.Sketch, sc.Requirements(), synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Encode(context.Background(), res.Deployment, "shared")
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	st := s.Stats()
	if st.BaseEncodes != 1 {
		t.Errorf("BaseEncodes = %d under concurrency, want 1", st.BaseEncodes)
	}
	if st.Encodes != 1 {
		t.Errorf("Encodes = %d for one shared key, want 1 (single flight)", st.Encodes)
	}
	if st.CacheHits != n-1 {
		t.Errorf("CacheHits = %d, want %d", st.CacheHits, n-1)
	}
}

func TestSessionCancelledEncodeNotCached(t *testing.T) {
	s := newSession(t)
	sc := scenarios.Scenario1()
	res, err := synth.Synthesize(sc.Net, sc.Sketch, sc.Requirements(), synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Encode(cancelled, res.Deployment, "k"); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Encode err = %v, want context.Canceled", err)
	}
	// The failure must not poison the key: a live context succeeds.
	if _, err := s.Encode(context.Background(), res.Deployment, "k"); err != nil {
		t.Fatalf("retry after cancellation failed: %v", err)
	}
}

func TestBudgetApply(t *testing.T) {
	var b engine.Budget
	ctx, cancel := b.Apply(context.Background())
	if _, ok := ctx.Deadline(); ok {
		t.Error("zero budget must not set a deadline")
	}
	cancel()

	when := time.Now().Add(time.Hour)
	b = engine.Budget{Deadline: when}
	ctx, cancel = b.Apply(context.Background())
	defer cancel()
	if d, ok := ctx.Deadline(); !ok || !d.Equal(when) {
		t.Errorf("deadline = %v, %v; want %v", d, ok, when)
	}

	if got := (engine.Budget{}).ModelCap(); got != engine.DefaultMaxModels {
		t.Errorf("default ModelCap = %d, want %d", got, engine.DefaultMaxModels)
	}
	if got := (engine.Budget{MaxModels: 7}).ModelCap(); got != 7 {
		t.Errorf("ModelCap = %d, want 7", got)
	}
}
