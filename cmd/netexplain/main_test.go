package main

import (
	"testing"

	"repro/internal/core"
)

func TestParseTarget(t *testing.T) {
	cases := []struct {
		in   string
		want core.Target
	}{
		{"R1_to_P1/100/action", core.Target{Map: "R1_to_P1", Seq: 100, Field: core.FieldAction}},
		{"m/10/match/0", core.Target{Map: "m", Seq: 10, Field: core.FieldMatch, Index: 0}},
		{"m/10/set/2", core.Target{Map: "m", Seq: 10, Field: core.FieldSet, Index: 2}},
	}
	for _, c := range cases {
		got, err := parseTarget(c.in)
		if err != nil {
			t.Errorf("parseTarget(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("parseTarget(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	bad := []string{"", "m", "m/10", "m/x/action", "m/10/weird", "m/10/match", "m/10/set/x"}
	for _, s := range bad {
		if _, err := parseTarget(s); err == nil {
			t.Errorf("parseTarget(%q) should fail", s)
		}
	}
}
