package sat

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestSolveContextCancelled(t *testing.T) {
	// An already-cancelled context must abort before any search.
	s := NewSolver()
	pigeonhole(s, 8, 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := s.SolveContext(ctx)
	if st != Unknown {
		t.Fatalf("SolveContext = %v, want Unknown", st)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSolveContextCancelMidSearch(t *testing.T) {
	// Cancelling while the solver grinds on a hard unsat instance must
	// return promptly — within one restart interval — rather than after
	// the full refutation.
	s := NewSolver()
	pigeonhole(s, 9, 8)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var st Status
	var err error
	go func() {
		defer close(done)
		st, err = s.SolveContext(ctx)
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("SolveContext did not return within 5s of cancellation")
	}
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want nil or context.Canceled", err)
	}
	// The instance may have been refuted before the cancel landed; if
	// not, the abort must be reported as Unknown + Canceled.
	if err == nil && st != Unsat {
		t.Fatalf("uncancelled solve = %v, want Unsat", st)
	}
	if err != nil && st != Unknown {
		t.Fatalf("cancelled solve = (%v, %v), want Unknown", st, err)
	}

	// The solver must remain usable after a cancelled solve.
	if got := s.Solve(); got != Unsat {
		t.Fatalf("re-solve after cancel = %v, want Unsat", got)
	}
}

func TestSolveContextDeadline(t *testing.T) {
	s := NewSolver()
	pigeonhole(s, 10, 9)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	st, err := s.SolveContext(ctx)
	if err == nil {
		// Finished before the deadline on a fast machine: fine, but the
		// verdict must then be the true one.
		if st != Unsat {
			t.Fatalf("solve = %v, want Unsat", st)
		}
		return
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if st != Unknown {
		t.Fatalf("status = %v, want Unknown", st)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline abort took %v", elapsed)
	}
}

func TestSolveCountsSolves(t *testing.T) {
	s := NewSolver()
	v := newVars(s, 2)
	s.AddClause(PosLit(v[0]), PosLit(v[1]))
	s.Solve()
	s.Solve(NegLit(v[0]))
	if s.Stats.Solves != 2 {
		t.Fatalf("Stats.Solves = %d, want 2", s.Stats.Solves)
	}
}
