package logic

import (
	"strings"
	"testing"
)

var actionSort = NewEnumSort("Action", "permit", "deny")

func TestNewEnumValidation(t *testing.T) {
	mustPanic(t, func() { NewEnumSort("", "a") })
	mustPanic(t, func() { NewEnumSort("E") })
	mustPanic(t, func() { NewEnumSort("E", "a", "a") })
	s := NewEnumSort("E", "a", "b", "c")
	if i, ok := s.ValueIndex("b"); !ok || i != 1 {
		t.Fatalf("ValueIndex(b) = %d, %v; want 1, true", i, ok)
	}
	if _, ok := s.ValueIndex("z"); ok {
		t.Fatal("ValueIndex(z) should not be a member")
	}
}

func TestSameSort(t *testing.T) {
	if !SameSort(Bool, Bool) || !SameSort(Int, Int) {
		t.Fatal("shared sorts must be SameSort with themselves")
	}
	if SameSort(Bool, Int) {
		t.Fatal("Bool and Int must differ")
	}
	e1 := NewEnumSort("E", "a", "b")
	e2 := NewEnumSort("E", "a", "b")
	e3 := NewEnumSort("E", "b", "a")
	if !SameSort(e1, e2) {
		t.Fatal("structurally identical enums must be SameSort")
	}
	if SameSort(e1, e3) {
		t.Fatal("enums with different value order must differ")
	}
}

func TestConstructorValidation(t *testing.T) {
	x := NewBoolVar("x")
	n := NewIntVar("n", 0, 10)
	mustPanic(t, func() { NewVar("", Bool) })
	mustPanic(t, func() { NewVar("k", Int) }) // must use NewIntVar
	mustPanic(t, func() { NewIntVar("k", 5, 4) })
	mustPanic(t, func() { NewEnumVar("k", Bool) })
	mustPanic(t, func() { NewEnum(actionSort, "nope") })
	mustPanic(t, func() { And(x, n) })
	mustPanic(t, func() { Not(n) })
	mustPanic(t, func() { Eq(x, n) })
	mustPanic(t, func() { Lt(x, x) })
	mustPanic(t, func() { Ite(n, x, x) })
	mustPanic(t, func() { Ite(x, x, n) })
}

func TestNAryCollapse(t *testing.T) {
	x := NewBoolVar("x")
	if And() != True {
		t.Fatal("And() should be True")
	}
	if Or() != False {
		t.Fatal("Or() should be False")
	}
	if And(x) != x {
		t.Fatal("And(x) should be x")
	}
	if Or(x) != x {
		t.Fatal("Or(x) should be x")
	}
	if got := Add().String(); got != "0" {
		t.Fatalf("Add() = %s, want 0", got)
	}
}

func TestSortsOfApplications(t *testing.T) {
	x, y := NewBoolVar("x"), NewBoolVar("y")
	n := NewIntVar("n", 0, 100)
	cases := []struct {
		t    Term
		want *Sort
	}{
		{And(x, y), Bool},
		{Or(x, y), Bool},
		{Not(x), Bool},
		{Implies(x, y), Bool},
		{Iff(x, y), Bool},
		{Eq(n, NewInt(3)), Bool},
		{Lt(n, NewInt(3)), Bool},
		{Add(n, NewInt(1)), Int},
		{Sub(n, NewInt(1)), Int},
		{Ite(x, n, NewInt(0)), Int},
		{Ite(x, NewEnum(actionSort, "permit"), NewEnum(actionSort, "deny")), actionSort},
	}
	for _, c := range cases {
		if !SameSort(c.t.Sort(), c.want) {
			t.Errorf("%s has sort %v, want %v", c.t, c.t.Sort(), c.want)
		}
	}
}

func TestPrinting(t *testing.T) {
	x, y, z := NewBoolVar("x"), NewBoolVar("y"), NewBoolVar("z")
	n := NewIntVar("n", 0, 100)
	cases := []struct {
		t    Term
		want string
	}{
		{And(x, Or(y, z)), "x & (y | z)"},
		{Or(And(x, y), z), "x & y | z"},
		{Not(And(x, y)), "!(x & y)"},
		{Not(x), "!x"},
		{Implies(x, Implies(y, z)), "x => (y => z)"},
		{Eq(n, NewInt(5)), "n = 5"},
		{Ne(NewEnumVar("a", actionSort), NewEnum(actionSort, "deny")), "a != deny"},
		{Ite(x, NewInt(1), NewInt(0)), "ite(x, 1, 0)"},
		{Le(Add(n, NewInt(1)), NewInt(7)), "n + 1 <= 7"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestSMTLIB(t *testing.T) {
	x := NewBoolVar("x")
	n := NewIntVar("n", 0, 100)
	got := SMTLIB(And(x, Eq(n, NewInt(-3))))
	want := "(and x (= n (- 3)))"
	if got != want {
		t.Fatalf("SMTLIB = %q, want %q", got, want)
	}
}

func TestParseRoundTrip(t *testing.T) {
	x, y := NewBoolVar("x"), NewBoolVar("y")
	n := NewIntVar("n", 0, 100)
	a := NewEnumVar("act", actionSort)
	p, err := NewParser([]*Var{x, y, n, a}, []*Sort{actionSort})
	if err != nil {
		t.Fatal(err)
	}
	terms := []Term{
		And(x, Or(y, Not(x))),
		Implies(Eq(n, NewInt(7)), Ne(a, NewEnum(actionSort, "deny"))),
		Iff(x, y),
		Ite(x, NewInt(1), NewInt(2)),
		Le(Sub(n, NewInt(1)), Add(n, NewInt(2), NewInt(3))),
		Not(Not(x)),
		True,
		False,
	}
	for _, want := range terms {
		src := want.String()
		got, err := p.Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if got.String() != src {
			t.Errorf("round trip %q -> %q", src, got.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	x := NewBoolVar("x")
	n := NewIntVar("n", 0, 100)
	p, err := NewParser([]*Var{x, n}, []*Sort{actionSort})
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{
		"", "x &", "x & & x", "(x", "unknown_ident", "x = n",
		"x )", "ite(x, 1)", "n = permit", "9999999999999999999999",
		// Regressions found by FuzzParse: sort errors in arithmetic
		// and ordering must be errors, not panics.
		"x + 0", "x > x", "1 - x", "-x", "n < x",
	} {
		if _, err := p.Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParserEnvValidation(t *testing.T) {
	x := NewBoolVar("permit")
	if _, err := NewParser([]*Var{x}, []*Sort{actionSort}); err == nil {
		t.Fatal("variable shadowing an enum constant should be rejected")
	}
	if _, err := NewParser([]*Var{NewBoolVar("a"), NewBoolVar("a")}, nil); err == nil {
		t.Fatal("duplicate variable declarations should be rejected")
	}
	other := NewEnumSort("Other", "permit")
	if _, err := NewParser(nil, []*Sort{actionSort, other}); err == nil {
		t.Fatal("enum constant in two sorts should be rejected")
	}
	if _, err := NewParser(nil, []*Sort{Bool}); err == nil {
		t.Fatal("non-enum sort in enum list should be rejected")
	}
}

func TestEval(t *testing.T) {
	x, y := NewBoolVar("x"), NewBoolVar("y")
	n := NewIntVar("n", 0, 100)
	a := NewEnumVar("act", actionSort)
	env := Assignment{
		"x":   BoolValue(true),
		"y":   BoolValue(false),
		"n":   IntValue(7),
		"act": EnumValue(actionSort, "permit"),
	}
	cases := []struct {
		t    Term
		want bool
	}{
		{And(x, Not(y)), true},
		{Or(y, y), false},
		{Implies(y, x), true},
		{Implies(x, y), false},
		{Iff(x, Not(y)), true},
		{Eq(n, NewInt(7)), true},
		{Ne(n, NewInt(7)), false},
		{Lt(n, NewInt(8)), true},
		{Le(n, NewInt(7)), true},
		{Gt(n, NewInt(7)), false},
		{Ge(n, NewInt(7)), true},
		{Eq(a, NewEnum(actionSort, "permit")), true},
		{Eq(Add(n, NewInt(3)), NewInt(10)), true},
		{Eq(Sub(n, NewInt(3)), NewInt(4)), true},
		{Eq(Ite(x, NewInt(1), NewInt(0)), NewInt(1)), true},
	}
	for _, c := range cases {
		got, err := EvalBool(c.t, env)
		if err != nil {
			t.Fatalf("EvalBool(%s): %v", c.t, err)
		}
		if got != c.want {
			t.Errorf("EvalBool(%s) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	x := NewBoolVar("x")
	n := NewIntVar("n", 0, 100)
	if _, err := Eval(x, Assignment{}); err == nil {
		t.Fatal("unassigned variable should error")
	}
	if _, err := Eval(x, Assignment{"x": IntValue(1)}); err == nil {
		t.Fatal("wrong-sorted assignment should error")
	}
	if _, err := EvalBool(n, Assignment{"n": IntValue(1)}); err == nil {
		t.Fatal("EvalBool on int term should error")
	}
	// Short-circuit still surfaces errors from unassigned later args.
	if _, err := Eval(And(x, x), Assignment{}); err == nil {
		t.Fatal("error must propagate out of And")
	}
}

func TestSubstitute(t *testing.T) {
	x, y := NewBoolVar("x"), NewBoolVar("y")
	n := NewIntVar("n", 0, 100)
	t1 := And(x, Or(y, x))
	got := Substitute(t1, map[string]Term{"x": True})
	if got.String() != "true & (y | true)" {
		t.Fatalf("Substitute = %q", got.String())
	}
	// Simultaneous, not sequential.
	t2 := Substitute(And(x, y), map[string]Term{"x": y, "y": x})
	if t2.String() != "y & x" {
		t.Fatalf("simultaneous substitution = %q", t2.String())
	}
	// Unchanged subtrees are shared.
	t3 := Substitute(t1, map[string]Term{"z": True})
	if t3 != t1 {
		t.Fatal("substitution with irrelevant variables should return the original term")
	}
	mustPanic(t, func() { Substitute(x, map[string]Term{"x": NewInt(1)}) })
	got = SubstituteValues(Eq(n, NewInt(3)), Assignment{"n": IntValue(3)})
	if got.String() != "3 = 3" {
		t.Fatalf("SubstituteValues = %q", got.String())
	}
	if s := SubstituteValues(x, nil); s != x {
		t.Fatal("empty assignment should return original term")
	}
}

func TestFreeVars(t *testing.T) {
	x, y := NewBoolVar("x"), NewBoolVar("y")
	n := NewIntVar("n", 0, 100)
	t1 := And(x, Or(y, Eq(n, NewInt(1))), x)
	names := FreeVarNames(t1)
	if strings.Join(names, ",") != "n,x,y" {
		t.Fatalf("FreeVarNames = %v", names)
	}
	if !ContainsVar(t1, "n") || ContainsVar(t1, "zz") {
		t.Fatal("ContainsVar mismatch")
	}
}

func TestConjunctsDisjuncts(t *testing.T) {
	x, y, z := NewBoolVar("x"), NewBoolVar("y"), NewBoolVar("z")
	c := Conjuncts(And(And(x, y), z, True))
	if len(c) != 3 {
		t.Fatalf("Conjuncts = %d elements, want 3", len(c))
	}
	if len(Conjuncts(True)) != 0 {
		t.Fatal("Conjuncts(True) should be empty")
	}
	d := Disjuncts(Or(x, Or(y, z), False))
	if len(d) != 3 {
		t.Fatalf("Disjuncts = %d elements, want 3", len(d))
	}
	if len(Disjuncts(False)) != 0 {
		t.Fatal("Disjuncts(False) should be empty")
	}
	if got := Conjuncts(x); len(got) != 1 || got[0] != x {
		t.Fatal("Conjuncts of a non-And should be the term itself")
	}
}

func TestSizeDepth(t *testing.T) {
	x, y := NewBoolVar("x"), NewBoolVar("y")
	t1 := And(x, Or(y, Not(x)))
	if got := Size(t1); got != 6 {
		t.Fatalf("Size = %d, want 6", got)
	}
	if got := Depth(t1); got != 4 {
		t.Fatalf("Depth = %d, want 4", got)
	}
	if Size(x) != 1 || Depth(x) != 1 {
		t.Fatal("leaf size/depth should be 1")
	}
}

func TestEqualAndHash(t *testing.T) {
	x1 := NewBoolVar("x")
	x2 := NewBoolVar("x")
	y := NewBoolVar("y")
	n := NewIntVar("n", 0, 5)
	a := NewEnumVar("a", actionSort)
	pairsEqual := [][2]Term{
		{x1, x2},
		{And(x1, y), And(x2, y)},
		{NewInt(3), NewInt(3)},
		{NewEnum(actionSort, "deny"), NewEnum(actionSort, "deny")},
		{Not(Eq(n, NewInt(1))), Not(Eq(n, NewInt(1)))},
		{Eq(a, NewEnum(actionSort, "permit")), Eq(a, NewEnum(actionSort, "permit"))},
	}
	for _, p := range pairsEqual {
		if !Equal(p[0], p[1]) {
			t.Errorf("Equal(%s, %s) = false", p[0], p[1])
		}
		if Hash(p[0]) != Hash(p[1]) {
			t.Errorf("Hash(%s) != Hash(%s)", p[0], p[1])
		}
	}
	pairsDiff := [][2]Term{
		{x1, y},
		{And(x1, y), And(y, x1)},
		{And(x1, y), Or(x1, y)},
		{NewInt(3), NewInt(4)},
		{True, False},
		{NewEnum(actionSort, "deny"), NewEnum(actionSort, "permit")},
		{x1, True},
	}
	for _, p := range pairsDiff {
		if Equal(p[0], p[1]) {
			t.Errorf("Equal(%s, %s) = true", p[0], p[1])
		}
	}
}

func TestDedupTerms(t *testing.T) {
	x, y := NewBoolVar("x"), NewBoolVar("y")
	in := []Term{x, y, NewBoolVar("x"), And(x, y), And(x, y), y}
	out := DedupTerms(in)
	if len(out) != 3 {
		t.Fatalf("DedupTerms kept %d terms, want 3", len(out))
	}
	if out[0] != x || out[1] != y {
		t.Fatal("DedupTerms must preserve first occurrences in order")
	}
}

func TestWalkAndMap(t *testing.T) {
	x, y := NewBoolVar("x"), NewBoolVar("y")
	t1 := And(x, Or(y, Not(x)))
	count := 0
	Walk(t1, func(Term) bool { count++; return true })
	if count != 6 {
		t.Fatalf("Walk visited %d nodes, want 6", count)
	}
	// Pruned walk stops at the Or.
	count = 0
	Walk(t1, func(u Term) bool {
		count++
		a, ok := u.(*Apply)
		return !ok || a.Op != OpOr
	})
	if count != 3 {
		t.Fatalf("pruned Walk visited %d nodes, want 3", count)
	}
	// Map rename x -> z.
	z := NewBoolVar("z")
	got := Map(t1, func(u Term) Term {
		if v, ok := u.(*Var); ok && v.Name == "x" {
			return z
		}
		return u
	})
	if got.String() != "z & (y | !z)" {
		t.Fatalf("Map = %q", got.String())
	}
	// Identity map shares structure.
	same := Map(t1, func(u Term) Term { return u })
	if same != t1 {
		t.Fatal("identity Map should return the original term")
	}
}

func TestValueHelpers(t *testing.T) {
	v := EnumValue(actionSort, "deny")
	if v.String() != "deny" {
		t.Fatalf("Value.String = %q", v.String())
	}
	if !v.Equal(EnumValue(actionSort, "deny")) || v.Equal(EnumValue(actionSort, "permit")) {
		t.Fatal("Value.Equal mismatch")
	}
	if v.Equal(IntValue(0)) {
		t.Fatal("values of different sorts must differ")
	}
	if v.Term().String() != "deny" {
		t.Fatal("Value.Term round trip failed")
	}
	if BoolValue(true).String() != "true" || BoolValue(false).String() != "false" {
		t.Fatal("BoolValue.String mismatch")
	}
	if IntValue(42).Term().String() != "42" {
		t.Fatal("IntValue.Term mismatch")
	}
	mustPanic(t, func() { EnumValue(actionSort, "nope") })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
