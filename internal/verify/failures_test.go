package verify

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/scenarios"
	"repro/internal/synth"
	"repro/internal/topology"
)

func TestNoTransitHoldsUnderAllFailures(t *testing.T) {
	// The synthesized no-transit deployment enforces the intent by
	// configuration, so it must survive every single-link failure.
	sc := scenarios.Scenario1()
	res, err := synth.Synthesize(sc.Net, sc.Sketch, sc.Requirements(), synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	vs, err := CheckUnderAllFailures(sc.Net, res.Deployment, sc.Requirements())
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("no-transit broke under failures: %v", vs)
	}
}

func TestLuckyRoutingCaughtUnderFailures(t *testing.T) {
	// A deployment that satisfies a forbid only because of failure-free
	// path selection — not by configuration — is flagged once a link
	// failure reroutes traffic onto the forbidden pattern.
	net := topology.Paper()
	reqs := mustReq(t, `Req { !(C->R3->R2->...->D1) }`)
	// With identity policies, C's failure-free route to D1 goes via R1
	// (tie-break), so the forbid holds by luck.
	vs, err := Check(net, config.Deployment{}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("failure-free network should (by luck) satisfy the forbid: %v", vs)
	}
	// Failing R3-R1 pushes traffic onto the forbidden pattern.
	fvs, err := CheckUnderAllFailures(net, config.Deployment{}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(fvs) == 0 {
		t.Fatal("lucky routing not caught under failures")
	}
	found := false
	for _, v := range fvs {
		if strings.Contains(v.Reason, "after failing link") {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations lack failure context: %v", fvs)
	}
}

func TestAllowExcusedUnderFailures(t *testing.T) {
	// Allow requirements may break under failures without being
	// reported by CheckUnderAllFailures.
	net := topology.Paper()
	reqs := mustReq(t, `Req { +(C->...->D1) }`)
	vs, err := CheckUnderAllFailures(net, config.Deployment{}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("allow should be excused under failures: %v", vs)
	}
}

func TestCheckAllowViolations(t *testing.T) {
	net := topology.Paper()
	// Unreachable destination: C is cut off by a deny-everything at R3.
	r3 := config.New("R3")
	r3.AddRouteMap(&config.RouteMap{Name: "none"})
	r3.AddNeighbor("C", "", "none")
	dep := config.Deployment{"R3": r3}
	reqs := mustReq(t, `Req { +(C->...->D1) }`)
	vs, err := Check(net, dep, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || !strings.Contains(vs[0].Reason, "cannot reach") {
		t.Fatalf("violations = %v", vs)
	}
	// Wrong path shape: demand the P2 side while tie-breaks pick P1.
	reqs = mustReq(t, `Req { +(C->R3->R2->P2->...->D1) }`)
	vs, err = Check(net, config.Deployment{}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || vs[0].Witness == nil {
		t.Fatalf("violations = %v", vs)
	}
	// Bad destination.
	reqs = mustReq(t, `Req { +(C->...->R1) }`)
	vs, err = Check(net, config.Deployment{}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || !strings.Contains(vs[0].Reason, "originates no prefix") {
		t.Fatalf("violations = %v", vs)
	}
}

func TestDeterministicViolations(t *testing.T) {
	net := topology.Paper()
	reqs := mustReq(t, `Req1 { !(P1->...->P2) !(P2->...->P1) }`)
	a, err := Check(net, config.Deployment{}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Check(net, config.Deployment{}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("violation count not deterministic")
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatal("violation order not deterministic")
		}
	}
}
