// Package synth implements a constraint-based network configuration
// synthesizer in the style of NetComplete, the system the paper builds
// on: given a topology, a configuration sketch (router configurations
// with symbolic holes), and a path-requirement specification, it
// encodes BGP route propagation and selection symbolically, solves the
// resulting finite-domain constraints with internal/smt, and decodes
// the model back into concrete router configurations.
//
// The same encoder is reused by the explanation engine (internal/core):
// the paper's "seed specification" is exactly this encoding, produced
// with every router concrete except the device under explanation.
//
// # Encoding overview
//
// For every destination prefix p (originated by an external node) the
// encoder enumerates candidate propagation paths from the origin to
// every router, bounded in length. Walking a candidate path applies
// each edge's export and import route-maps *symbolically*: match and
// set lines over holes produce terms instead of values, so a path's
// pass condition and resulting local-preference are logic terms over
// the hole variables. Boolean selection variables — sel(v, p, pi) —
// say which candidate each router picks, and constraints tie them to
// availability and to the BGP decision process (local-pref first, then
// concrete tie-breaks). Requirements become constraints over the
// selection variables: forbidden paths must not be selected anywhere;
// path preferences force the listed paths to be chosen in order of
// availability.
//
// # Local-preference ranks
//
// Symbolic local-preferences range over a small rank domain [0, 15]
// rather than the raw 32-bit BGP space, keeping the finite-domain
// encoding compact (NetComplete similarly restricts hole domains).
// Rank r corresponds to the concrete value 100 + (r-8)*10; the default
// local preference 100 is rank 8. EncodeLP and DecodeLP convert.
package synth

import (
	"fmt"

	"repro/internal/spec"
)

// Options tunes the encoder.
type Options struct {
	// MaxPathLen bounds candidate propagation paths in nodes.
	MaxPathLen int
	// MaxCandidatesPerNode caps how many candidate paths are encoded
	// per (router, prefix), shortest first. Zero means unlimited. When
	// the cap truncates, Encoding.Stats.TruncatedPaths counts the
	// drops — no silent truncation.
	MaxCandidatesPerNode int
	// AllowUnspecified selects the second interpretation of path
	// preferences from the paper's Scenario 2: paths not listed in a
	// preference requirement remain usable as a last resort. The
	// default (false) reproduces NetComplete's behavior of blocking
	// unlisted paths — the ambiguity the scenario is about.
	AllowUnspecified bool
}

// DefaultOptions returns the settings used by the experiments.
func DefaultOptions() Options {
	return Options{MaxPathLen: 8, MaxCandidatesPerNode: 0}
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.MaxPathLen == 0 {
		o.MaxPathLen = 8
	}
	return o
}

// LPRankHi is the top of the local-preference rank domain.
const LPRankHi = 15

// lpRankDefault is the rank of the conventional default local
// preference (100).
const lpRankDefault = 8

// EncodeLP converts a concrete local-preference value to its rank. The
// value must lie on the rank grid 100 + 10*k for k in [-8, 7].
func EncodeLP(lp int) (int64, error) {
	r := (lp-100)/10 + lpRankDefault
	if (lp-100)%10 != 0 || r < 0 || r > LPRankHi {
		return 0, fmt.Errorf("synth: local-preference %d is not on the rank grid [20..170 step 10]", lp)
	}
	return int64(r), nil
}

// DecodeLP converts a rank back to the concrete local-preference
// value.
func DecodeLP(rank int64) int { return 100 + (int(rank)-lpRankDefault)*10 }

// reverse returns a reversed copy of a node path.
func reverse(p []string) []string {
	out := make([]string, len(p))
	for i, n := range p {
		out[len(p)-1-i] = n
	}
	return out
}

// trafficPath converts a propagation path (origin first) to the
// traffic path (source first) that spec patterns describe.
func trafficPath(propagation []string) []string { return reverse(propagation) }

// matchesTraffic reports whether the traffic view of a propagation
// path contains the pattern as a subpath.
func matchesTraffic(pattern spec.Path, propagation []string) bool {
	return spec.MatchesSubpath(pattern, trafficPath(propagation))
}

// matchesTrafficExact reports whether the traffic view of a
// propagation path matches the pattern end-to-end.
func matchesTrafficExact(pattern spec.Path, propagation []string) bool {
	return spec.Matches(pattern, trafficPath(propagation))
}
