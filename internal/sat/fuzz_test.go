package sat

import (
	"strings"
	"testing"
)

// FuzzReadDIMACS checks the DIMACS reader never panics and that
// accepted formulas survive a write/read round trip with the same
// satisfiability.
func FuzzReadDIMACS(f *testing.F) {
	f.Add("p cnf 2 2\n1 -2 0\n2 0\n")
	f.Add("c comment\np cnf 1 1\n1 0\n")
	f.Add("p cnf 3 1\n1 2 3 0")
	f.Add("p cnf 0 0\n")
	f.Add("1 0")
	f.Add("p cnf x y")
	f.Fuzz(func(t *testing.T, src string) {
		s, err := ReadDIMACS(strings.NewReader(src))
		if err != nil {
			return
		}
		if s.NumVars() > 24 || s.NumClauses() > 300 {
			return // keep the fuzz round trip cheap
		}
		want := s.Solve()
		var sb strings.Builder
		if err := s.WriteDIMACS(&sb); err != nil {
			t.Fatal(err)
		}
		s2, err := ReadDIMACS(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("rewritten DIMACS does not reparse: %v\n%s", err, sb.String())
		}
		if got := s2.Solve(); got != want {
			t.Fatalf("round trip changed satisfiability: %v -> %v", want, got)
		}
	})
}
