package main

import (
	"strings"
	"testing"
)

// TestRunExitCodes pins the shared cmd convention: usage errors exit 2
// with the complaint on stderr, operational output goes to stdout.
func TestRunExitCodes(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-scenario", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown scenario: exit %d, want 2 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "netverify:") {
		t.Fatalf("error not prefixed on stderr: %q", errOut.String())
	}
	if out.Len() != 0 {
		t.Fatalf("usage error wrote to stdout: %q", out.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}

// TestRunProofMode exercises the -proof end-to-end path: the report is
// generated with every Unsat verdict proof-checked, the proof trailer
// is printed, and the verdict line still appears.
func TestRunProofMode(t *testing.T) {
	if testing.Short() {
		t.Skip("full synthesis + verified report")
	}
	var out, errOut strings.Builder
	if code := run([]string{"-scenario", "scenario1", "-proof"}, &out, &errOut); code != 0 {
		t.Fatalf("proof mode failed: exit %d\nstderr: %s", code, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "# proofs:") {
		t.Fatalf("missing proof trailer in output:\n%s", got)
	}
	if !strings.Contains(got, "all requirements hold") {
		t.Fatalf("missing verdict line in output:\n%s", got)
	}
}
