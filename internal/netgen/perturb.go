package netgen

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/config"
	"repro/internal/synth"
)

// Edit records one deterministic single-router perturbation applied by
// Perturb.
type Edit struct {
	// Router is the edited device.
	Router string
	// Kind names the edit family: "action-flip", "pref-change",
	// "med-change", or "nexthop-change".
	Kind string
	// Detail locates and describes the edit (route-map, clause, old and
	// new value).
	Detail string
}

// editSite is one place an edit could land, in deterministic
// enumeration order.
type editSite struct {
	router string
	rm     string
	clause int // index into Clauses
	kind   string
	setIdx int // index into Sets for set edits, -1 otherwise
}

// Perturb applies nEdits deterministic single-router edits to a
// concrete deployment and returns the edited deployment plus the edit
// list. The same (deployment, seed, nEdits) always produces the same
// edits. Edited routers' configurations are deep-cloned; unedited
// routers share the input's pointers, so callers (and the incremental
// re-explainer) can detect untouched configs by identity.
//
// The edit families model the what-if questions an operator asks of a
// synthesized network:
//
//   - action-flip: a route-map clause's permit/deny is inverted
//     (a filter policy change — visible to the encoding).
//   - pref-change: a set local-preference value is moved
//     (a preference policy change — visible to the encoding).
//   - med-change: a clause's MED metric is added or adjusted (the
//     classic "link weight" tweak; MED is outside the modeled
//     selection semantics, so the encoding is unchanged).
//   - nexthop-change: a set next-hop-ip line is toggled between the
//     base vocabulary addresses (cosmetic rewrite, forwarding
//     semantics unmodeled).
//
// Sites are enumerated in sorted router / route-map / clause order and
// chosen by a seeded permutation, at most one edit per site.
func Perturb(dep config.Deployment, seed int64, nEdits int) (config.Deployment, []Edit) {
	var sites []editSite
	routers := make([]string, 0, len(dep))
	for r := range dep {
		routers = append(routers, r)
	}
	sort.Strings(routers)
	for _, r := range routers {
		c := dep[r]
		for _, name := range c.RouteMapNames() {
			rm := c.RouteMaps[name]
			for ci, cl := range rm.Clauses {
				if cl.ActionHole == "" {
					sites = append(sites, editSite{r, name, ci, "action-flip", -1})
				}
				sites = append(sites, editSite{r, name, ci, "med-change", -1})
				for si, s := range cl.Sets {
					if s.ParamHole != "" {
						continue
					}
					switch s.Kind {
					case config.SetLocalPref:
						// Only preferences already on the modeled rank
						// grid can be moved along it.
						if _, err := synth.EncodeLP(s.LocalPref); err == nil {
							sites = append(sites, editSite{r, name, ci, "pref-change", si})
						}
					case config.SetNextHopIP:
						sites = append(sites, editSite{r, name, ci, "nexthop-change", si})
					}
				}
			}
		}
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(sites))
	if nEdits > len(sites) {
		nEdits = len(sites)
	}

	out := config.Deployment{}
	for name, c := range dep {
		out[name] = c // pointer-shared until edited
	}
	cloned := map[string]bool{}
	edits := make([]Edit, 0, nEdits)
	for _, idx := range perm[:nEdits] {
		site := sites[idx]
		if !cloned[site.router] {
			out[site.router] = out[site.router].Clone()
			cloned[site.router] = true
		}
		cl := out[site.router].RouteMaps[site.rm].Clauses[site.clause]
		at := fmt.Sprintf("%s seq %d", site.rm, cl.Seq)
		var detail string
		switch site.kind {
		case "action-flip":
			old := cl.Action
			if cl.Action == config.Permit {
				cl.Action = config.Deny
			} else {
				cl.Action = config.Permit
			}
			detail = fmt.Sprintf("%s: %v -> %v", at, old, cl.Action)
		case "pref-change":
			s := cl.Sets[site.setIdx]
			old := s.LocalPref
			// Step along the modeled rank grid [20..170 step 10]; for
			// any on-grid value, one of the two directions stays inside.
			delta := 10 * (1 + rng.Intn(3))
			nu := old + delta
			if _, err := synth.EncodeLP(nu); err != nil {
				nu = old - delta
			}
			s.LocalPref = nu
			detail = fmt.Sprintf("%s: local-preference %d -> %d", at, old, nu)
		case "med-change":
			var med *config.Set
			for _, s := range cl.Sets {
				if s.Kind == config.SetMED && s.ParamHole == "" {
					med = s
					break
				}
			}
			if med == nil {
				med = &config.Set{Kind: config.SetMED}
				cl.Sets = append(cl.Sets, med)
			}
			old := med.MED
			med.MED = old + 5*(1+rng.Intn(4))
			detail = fmt.Sprintf("%s: med %d -> %d", at, old, med.MED)
		case "nexthop-change":
			s := cl.Sets[site.setIdx]
			old := s.NextHopIP
			// Toggle between the encoder's base vocabulary addresses
			// (always in the vocabulary), so the edit cannot grow the
			// enum sorts the encodings range over.
			if s.NextHopIP == "10.0.0.1" {
				s.NextHopIP = "10.0.0.2"
			} else {
				s.NextHopIP = "10.0.0.1"
			}
			detail = fmt.Sprintf("%s: next-hop %s -> %s", at, old, s.NextHopIP)
		}
		edits = append(edits, Edit{Router: site.router, Kind: site.kind, Detail: detail})
	}
	return out, edits
}
