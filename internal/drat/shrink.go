package drat

// Proof and core shrinking.
//
// Two post-verification passes run over a checked trace:
//
//   - ShrinkClause minimizes a verified clause (in practice: the final
//     negated-assumption-core lemma) by deletion: drop one literal at a
//     time and keep the drop whenever the remaining clause still checks
//     out by RUP. The solver's cone-based analyzeFinal gives sound but
//     not necessarily minimal cores; this pass closes the gap with the
//     checker itself as the oracle, so a shrunk core is verified by
//     construction.
//
//   - Trim discards lemmas the final verdict never relied on. The
//     forward check records, for every lemma, the clause ids its RUP
//     conflict used; walking that dependency graph backward from the
//     final lemma marks the needed cone, and everything unmarked is
//     dropped. The kept/total ratio is the shrink-ratio statistic the
//     engine reports.

// ShrinkClause returns a subset of lits that still passes the RUP check
// against the checker's current database, found by deletion: each
// literal is removed in turn and left out whenever the remainder still
// checks. The input clause must itself be RUP (e.g. a lemma this
// checker already accepted); the first argument of the returned pair is
// the shrunk clause, the second reports whether any literal was
// dropped.
//
// The checker's database may include the clause being shrunk (a checked
// lemma is added to the database). That is sound, not circular: every
// database clause is a consequence of the inputs, so anything RUP
// against the database is a consequence of the inputs too.
func (c *Checker) ShrinkClause(lits []int) ([]int, bool) {
	cur := append([]int(nil), lits...)
	shrunk := false
	for i := 0; i < len(cur); {
		cand := make([]int, 0, len(cur)-1)
		cand = append(cand, cur[:i]...)
		cand = append(cand, cur[i+1:]...)
		if err := c.CheckClause(cand); err == nil {
			cur = cand
			shrunk = true
			continue // same index now names the next literal
		}
		i++
	}
	return cur, shrunk
}

// TrimResult reports the outcome of a Trim pass.
type TrimResult struct {
	// Ops is the trimmed trace: all inputs, the needed lemmas, no
	// deletions (dropping deletions only enlarges the checker's
	// database, which can never break a RUP check).
	Ops []Op
	// KeptLemmas and TotalLemmas give the shrink ratio.
	KeptLemmas, TotalLemmas int
}

// Trim re-checks the trace while recording each lemma's dependency
// cone, then walks the graph backward from the final lemma and drops
// every lemma the verdict never relied on. The trimmed trace is
// re-verified before being returned; if that re-check fails — which
// would indicate a bookkeeping bug, not an invalid proof — the original
// trace is returned untrimmed, so Trim can only ever return a trace the
// checker accepts.
//
// Trim fails if the trace itself does not check.
func Trim(ops []Op) (TrimResult, error) {
	c := NewChecker()
	// Clause ids are assigned in op order over the non-delete ops;
	// remember each id's op index so marked ids map back to ops.
	idToOp := make([]int, 0, len(ops))
	lastLearn := -1
	total := 0
	for i, op := range ops {
		if err := c.Apply(op); err != nil {
			return TrimResult{}, err
		}
		if op.Kind != Delete {
			idToOp = append(idToOp, i)
		}
		if op.Kind == Learn {
			lastLearn = i
			total++
		}
	}
	if lastLearn < 0 {
		// Nothing to trim: a trace with no lemmas proves nothing.
		return TrimResult{Ops: ops, KeptLemmas: 0, TotalLemmas: 0}, nil
	}

	// Backward mark from the final lemma plus whatever clause ids
	// latched a root conflict (lemmas checked after that point verify
	// trivially and record no dependencies).
	needed := make(map[int]bool) // clause id -> needed
	var stack []int
	push := func(id int) {
		if !needed[id] {
			needed[id] = true
			stack = append(stack, id)
		}
	}
	// The final lemma's id is the count of non-delete ops before it.
	finalID := -1
	for id, opIdx := range idToOp {
		if opIdx == lastLearn {
			finalID = id
		}
	}
	push(finalID)
	for _, id := range c.rootCone {
		push(id)
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, dep := range c.deps[id] {
			push(dep)
		}
	}

	kept := 0
	trimmed := make([]Op, 0, len(ops))
	for id, opIdx := range idToOp {
		op := ops[opIdx]
		switch op.Kind {
		case Input:
			trimmed = append(trimmed, op)
		case Learn:
			if needed[id] || opIdx == lastLearn {
				trimmed = append(trimmed, op)
				kept++
			}
		}
	}

	if _, err := Check(trimmed); err != nil {
		// Conservative fallback: never emit a trace that fails.
		return TrimResult{Ops: ops, KeptLemmas: total, TotalLemmas: total}, nil
	}
	return TrimResult{Ops: trimmed, KeptLemmas: kept, TotalLemmas: total}, nil
}
