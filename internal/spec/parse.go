package spec

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse reads a specification document. The grammar, matching the
// paper's figures:
//
//	spec       := block*
//	block      := IDENT ("to" IDENT)? "{" clause* "}"
//	clause     := forbid | allow | preference | prefGroup
//	forbid     := "!" "(" path ")"
//	allow      := "+" "(" path ")"
//	preference := pathAtom (">>" pathAtom)+
//	prefGroup  := "preference" "{" preference* "}"
//	pathAtom   := "(" path ")" | path
//	path       := elem ("->" elem)*
//	elem       := IDENT | "..."
//
// Line comments start with "//" and run to end of line.
func Parse(src string) (*Spec, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	s := &Spec{}
	for !p.eof() {
		b, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		s.Blocks = append(s.Blocks, b)
	}
	return s, nil
}

// ParseBlock parses a single block (convenience for tests and tools).
func ParseBlock(src string) (*Block, error) {
	s, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(s.Blocks) != 1 {
		return nil, fmt.Errorf("spec: expected exactly one block, found %d", len(s.Blocks))
	}
	return s.Blocks[0], nil
}

// ParsePath parses a bare path pattern like "P1->...->P2".
func ParsePath(src string) (Path, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	path, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("spec: trailing input %q in path", p.peek().text)
	}
	return path, nil
}

type token struct {
	text string
	line int
}

func tokenize(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case unicode.IsSpace(rune(c)):
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case strings.HasPrefix(src[i:], "..."):
			toks = append(toks, token{Wildcard, line})
			i += 3
		case strings.HasPrefix(src[i:], "->"):
			toks = append(toks, token{"->", line})
			i += 2
		case strings.HasPrefix(src[i:], ">>"):
			toks = append(toks, token{">>", line})
			i += 2
		case c == '{' || c == '}' || c == '(' || c == ')' || c == '!' || c == '+':
			toks = append(toks, token{string(c), line})
			i++
		case isNodeChar(c):
			start := i
			for i < len(src) && isNodeChar(src[i]) {
				i++
			}
			toks = append(toks, token{src[start:i], line})
		default:
			return nil, fmt.Errorf("spec: line %d: unexpected character %q", line, c)
		}
	}
	return toks, nil
}

func isNodeChar(c byte) bool {
	return c == '_' || c == '.' || c == ':' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) eof() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() token {
	if p.eof() {
		return token{"", -1}
	}
	return p.toks[p.pos]
}

func (p *parser) next() token {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) expect(text string) error {
	t := p.next()
	if t.text != text {
		return fmt.Errorf("spec: line %d: expected %q, got %q", t.line, text, t.text)
	}
	return nil
}

func isIdent(text string) bool {
	if text == "" || text == Wildcard {
		return false
	}
	return isNodeChar(text[0])
}

func (p *parser) parseBlock() (*Block, error) {
	name := p.next()
	if !isIdent(name.text) {
		return nil, fmt.Errorf("spec: line %d: expected block name, got %q", name.line, name.text)
	}
	b := &Block{Name: name.text}
	if p.peek().text == "to" {
		p.next()
		scope := p.next()
		if !isIdent(scope.text) {
			return nil, fmt.Errorf("spec: line %d: expected scope node after 'to', got %q", scope.line, scope.text)
		}
		b.Scope = scope.text
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	for p.peek().text != "}" {
		if p.eof() {
			return nil, fmt.Errorf("spec: unexpected end of input in block %q", b.Name)
		}
		if p.peek().text == "preference" {
			reqs, err := p.parsePrefGroup()
			if err != nil {
				return nil, err
			}
			b.Reqs = append(b.Reqs, reqs...)
			continue
		}
		r, err := p.parseClause()
		if err != nil {
			return nil, err
		}
		b.Reqs = append(b.Reqs, r)
	}
	p.next() // consume '}'
	return b, nil
}

func (p *parser) parsePrefGroup() ([]Requirement, error) {
	p.next() // 'preference'
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var out []Requirement
	for p.peek().text != "}" {
		if p.eof() {
			return nil, fmt.Errorf("spec: unexpected end of input in preference group")
		}
		r, err := p.parseClause()
		if err != nil {
			return nil, err
		}
		pref, ok := r.(*Preference)
		if !ok {
			return nil, fmt.Errorf("spec: preference group may contain only path preferences, found %s", r)
		}
		out = append(out, pref)
	}
	p.next() // '}'
	return out, nil
}

func (p *parser) parseClause() (Requirement, error) {
	if tok := p.peek().text; tok == "!" || tok == "+" {
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		path, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		if tok == "+" {
			return &Allow{Path: path}, nil
		}
		return &Forbid{Path: path}, nil
	}
	// Preference chain: pathAtom (">>" pathAtom)*. A single path with
	// no ">>" is not a valid clause on its own.
	first, err := p.parsePathAtom()
	if err != nil {
		return nil, err
	}
	paths := []Path{first}
	for p.peek().text == ">>" {
		p.next()
		next, err := p.parsePathAtom()
		if err != nil {
			return nil, err
		}
		paths = append(paths, next)
	}
	if len(paths) < 2 {
		return nil, fmt.Errorf("spec: line %d: a bare path is not a requirement; expected '>>' or '!'", p.peek().line)
	}
	return &Preference{Paths: paths}, nil
}

func (p *parser) parsePathAtom() (Path, error) {
	if p.peek().text == "(" {
		p.next()
		path, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return path, nil
	}
	return p.parsePath()
}

func (p *parser) parsePath() (Path, error) {
	var path Path
	for {
		t := p.next()
		if t.text != Wildcard && !isIdent(t.text) {
			return nil, fmt.Errorf("spec: line %d: expected path element, got %q", t.line, t.text)
		}
		path = append(path, t.text)
		if p.peek().text != "->" {
			break
		}
		p.next()
	}
	if len(path) < 2 {
		return nil, fmt.Errorf("spec: a path needs at least two elements, got %q", path.String())
	}
	if path[0] == Wildcard && path[len(path)-1] == Wildcard {
		return nil, fmt.Errorf("spec: path %q cannot start and end with wildcards", path.String())
	}
	for i := 1; i < len(path); i++ {
		if path[i] == Wildcard && path[i-1] == Wildcard {
			return nil, fmt.Errorf("spec: path %q has adjacent wildcards", path.String())
		}
	}
	return path, nil
}
