package spec

import (
	"strings"
	"testing"
)

func TestParseNoTransit(t *testing.T) {
	src := `
// No transit traffic
Req1 {
    !(P1->...->P2)
    !(P2->...->P1)
}`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(s.Blocks))
	}
	b := s.Blocks[0]
	if b.Name != "Req1" || b.Scope != "" {
		t.Fatalf("header = %q/%q", b.Name, b.Scope)
	}
	forbids := b.Forbids()
	if len(forbids) != 2 {
		t.Fatalf("forbids = %d, want 2", len(forbids))
	}
	if forbids[0].Path.String() != "P1->...->P2" {
		t.Fatalf("forbid 0 = %s", forbids[0].Path)
	}
	if forbids[1].Path.String() != "P2->...->P1" {
		t.Fatalf("forbid 1 = %s", forbids[1].Path)
	}
}

func TestParsePreference(t *testing.T) {
	src := `
// For D1, prefer routes through P1 over routes through P2
Req2 {
    (C->R3->R1->P1->...->D1)
    >> (C->R3->R2->P2->...->D1)
}`
	b, err := ParseBlock(src)
	if err != nil {
		t.Fatal(err)
	}
	prefs := b.Preferences()
	if len(prefs) != 1 {
		t.Fatalf("prefs = %d, want 1", len(prefs))
	}
	if len(prefs[0].Paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(prefs[0].Paths))
	}
	if prefs[0].Paths[0].String() != "C->R3->R1->P1->...->D1" {
		t.Fatalf("path 0 = %s", prefs[0].Paths[0])
	}
}

func TestParseSubspecWithPreferenceGroup(t *testing.T) {
	src := `
R3 {
    preference {
        (R3->R1->P1->...->D1) >> (R3->R2->P2->...->D1)
    }
    !(R3->R1->R2->P2->...->D1)
    !(R3->R2->R1->P1->...->D1)
}`
	b, err := ParseBlock(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Preferences()) != 1 || len(b.Forbids()) != 2 {
		t.Fatalf("prefs=%d forbids=%d, want 1/2", len(b.Preferences()), len(b.Forbids()))
	}
}

func TestParseScopedBlock(t *testing.T) {
	src := `
R2 to P2 {
    !(P1->R1->R2->P2)
    !(P1->R1->R3->R2->P2)
}`
	b, err := ParseBlock(src)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != "R2" || b.Scope != "P2" {
		t.Fatalf("header = %q/%q, want R2/P2", b.Name, b.Scope)
	}
	if b.Title() != "R2 to P2" {
		t.Fatalf("Title = %q", b.Title())
	}
	if len(b.Forbids()) != 2 {
		t.Fatalf("forbids = %d, want 2", len(b.Forbids()))
	}
}

func TestParseEmptyBlock(t *testing.T) {
	b, err := ParseBlock("R3 { }")
	if err != nil {
		t.Fatal(err)
	}
	if !b.IsEmpty() {
		t.Fatal("block should be empty")
	}
}

func TestParseMultipleBlocks(t *testing.T) {
	src := `
Req1 { !(P1->...->P2) }
Req2 { (A->B) >> (A->C->B) }
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Blocks) != 2 {
		t.Fatalf("blocks = %d, want 2", len(s.Blocks))
	}
	if s.Block("Req2") == nil || s.Block("Nope") != nil {
		t.Fatal("Block lookup broken")
	}
	if len(s.Requirements()) != 2 {
		t.Fatalf("requirements = %d, want 2", len(s.Requirements()))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                                // handled: empty spec has zero blocks — not an error; skip below
		"Req1 {",                          // unterminated
		"Req1 { !(P1) }",                  // single-element path
		"Req1 { !(P1->P2 }",               // missing paren
		"Req1 { (A->B) }",                 // bare path is not a clause
		"Req1 { preference { !(A->B) } }", // forbid inside preference group
		"{ !(A->B) }",                     // missing name
		"Req1 { !(...->...) }",            // double wildcard ends
		"Req1 { !(A->...->...->B) }",      // adjacent wildcards
		"Req1 @",                          // bad char
		"Req1 to { }",                     // missing scope
	}
	for _, src := range bad[1:] {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
	if s, err := Parse(""); err != nil || len(s.Blocks) != 0 {
		t.Error("empty input should parse to an empty spec")
	}
	if _, err := ParseBlock("A { } B { }"); err == nil {
		t.Error("ParseBlock should reject multiple blocks")
	}
}

func TestParsePath(t *testing.T) {
	p, err := ParsePath("P1->...->P2")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(NewPath("P1", Wildcard, "P2")) {
		t.Fatalf("path = %v", p)
	}
	if _, err := ParsePath("P1"); err == nil {
		t.Fatal("single-node path should fail")
	}
	if _, err := ParsePath("P1->P2 extra"); err == nil {
		t.Fatal("trailing tokens should fail")
	}
}

func TestPrintRoundTrip(t *testing.T) {
	src := `
Req1 {
    !(P1->...->P2)
    !(P2->...->P1)
}
Req2 {
    (C->R3->R1->P1->...->D1) >> (C->R3->R2->P2->...->D1)
}
R3 {
    preference {
        (R3->R1->P1->...->D1) >> (R3->R2->P2->...->D1)
    }
    !(R3->R1->R2->P2->...->D1)
}`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	printed := Print(s)
	s2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse of %q: %v", printed, err)
	}
	if Print(s2) != printed {
		t.Fatalf("print not stable:\n%s\nvs\n%s", printed, Print(s2))
	}
	if len(s2.Blocks) != 3 {
		t.Fatalf("blocks after round trip = %d", len(s2.Blocks))
	}
}

func TestPathHelpers(t *testing.T) {
	p := NewPath("P1", Wildcard, "P2")
	if p.IsConcrete() {
		t.Fatal("wildcard path reported concrete")
	}
	if p.First() != "P1" || p.Last() != "P2" {
		t.Fatalf("First/Last = %q/%q", p.First(), p.Last())
	}
	q := NewPath("A", "B", "A")
	if !q.IsConcrete() {
		t.Fatal("concrete path reported wildcard")
	}
	nodes := q.Nodes()
	if len(nodes) != 2 || nodes[0] != "A" || nodes[1] != "B" {
		t.Fatalf("Nodes = %v", nodes)
	}
	w := NewPath(Wildcard, "X")
	if w.First() != "X" || w.Last() != "X" {
		t.Fatalf("First/Last over leading wildcard = %q/%q", w.First(), w.Last())
	}
}

func TestRequirementMentions(t *testing.T) {
	f := &Forbid{Path: NewPath("P1", Wildcard, "P2")}
	if !f.Mentions("P1") || f.Mentions("R9") {
		t.Fatal("Forbid.Mentions broken")
	}
	pr := &Preference{Paths: []Path{NewPath("A", "B"), NewPath("A", "C", "B")}}
	if !pr.Mentions("C") || pr.Mentions("Z") {
		t.Fatal("Preference.Mentions broken")
	}
	if f.String() != "!(P1->...->P2)" {
		t.Fatalf("Forbid.String = %q", f.String())
	}
	if pr.String() != "(A->B) >> (A->C->B)" {
		t.Fatalf("Preference.String = %q", pr.String())
	}
}

func TestMatches(t *testing.T) {
	cases := []struct {
		pattern string
		path    []string
		want    bool
	}{
		{"P1->...->P2", []string{"P1", "P2"}, true},
		{"P1->...->P2", []string{"P1", "R1", "P2"}, true},
		{"P1->...->P2", []string{"P1", "R1", "R2", "P2"}, true},
		{"P1->...->P2", []string{"P2", "R1", "P1"}, false},
		{"P1->P2", []string{"P1", "R1", "P2"}, false},
		{"P1->P2", []string{"P1", "P2"}, true},
		{"A->...->B->...->C", []string{"A", "B", "C"}, true},
		{"A->...->B->...->C", []string{"A", "X", "B", "Y", "C"}, true},
		{"A->...->B->...->C", []string{"A", "C"}, false},
		{"...->C", []string{"X", "Y", "C"}, true},
		{"...->C", []string{"C"}, false}, // path of length 1 vs pattern needing C at end with >=2 elements? wildcard matches empty, so ["C"] matches
	}
	for _, c := range cases {
		pat, err := ParsePath(c.pattern)
		if err != nil {
			t.Fatalf("ParsePath(%q): %v", c.pattern, err)
		}
		got := Matches(pat, c.path)
		// Special-case documented above: "...->C" vs ["C"] matches
		// because the wildcard consumes zero nodes.
		if c.pattern == "...->C" && len(c.path) == 1 {
			if !got {
				t.Errorf("Matches(%q, %v): wildcard should match empty prefix", c.pattern, c.path)
			}
			continue
		}
		if got != c.want {
			t.Errorf("Matches(%q, %v) = %v, want %v", c.pattern, c.path, got, c.want)
		}
	}
}

func TestMatchesSubpath(t *testing.T) {
	pat, _ := ParsePath("P1->...->P2")
	if !MatchesSubpath(pat, []string{"C", "P1", "R1", "P2", "D"}) {
		t.Fatal("subpath through P1..P2 should match")
	}
	if MatchesSubpath(pat, []string{"C", "P2", "R1", "P1"}) {
		t.Fatal("reversed order should not match")
	}
	exact, _ := ParsePath("R1->P1")
	if !MatchesSubpath(exact, []string{"C", "R1", "P1"}) {
		t.Fatal("exact adjacent pair should match as subpath")
	}
	if MatchesSubpath(exact, []string{"C", "R1", "X", "P1"}) {
		t.Fatal("non-adjacent pair should not match exact pattern")
	}
}

func TestExpandConcrete(t *testing.T) {
	adj := map[string][]string{
		"A": {"B", "C"},
		"B": {"A", "C", "D"},
		"C": {"A", "B", "D"},
		"D": {"B", "C"},
	}
	pat, _ := ParsePath("A->...->D")
	paths := ExpandConcrete(pat, adj, 4)
	if len(paths) == 0 {
		t.Fatal("no concrete paths found")
	}
	want := map[string]bool{
		"A B D":   true,
		"A C D":   true,
		"A B C D": true,
		"A C B D": true,
	}
	for _, p := range paths {
		key := strings.Join(p, " ")
		if !want[key] {
			t.Errorf("unexpected path %v", p)
		}
		delete(want, key)
	}
	if len(want) != 0 {
		t.Errorf("missing paths: %v", want)
	}
	// Exact pattern.
	exact, _ := ParsePath("A->B->D")
	paths = ExpandConcrete(exact, adj, 4)
	if len(paths) != 1 || strings.Join(paths[0], " ") != "A B D" {
		t.Fatalf("exact expansion = %v", paths)
	}
	// Length cap.
	paths = ExpandConcrete(pat, adj, 2)
	for _, p := range paths {
		if len(p) > 2 {
			t.Fatalf("path %v exceeds cap", p)
		}
	}
}

func TestSpecNodes(t *testing.T) {
	src := `
Req1 { !(P1->...->P2) }
Req2 { (C->R3->P1) >> (C->R3->P2) }
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	nodes := s.Nodes()
	want := []string{"P1", "P2", "C", "R3"}
	if len(nodes) != len(want) {
		t.Fatalf("Nodes = %v, want %v", nodes, want)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("Nodes = %v, want %v", nodes, want)
		}
	}
}
