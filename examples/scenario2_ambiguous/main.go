// Scenario 2 (paper Section 2): resolving ambiguous specifications.
//
// The path preference for destination D1 admits two interpretations:
// (1) unlisted paths are blocked; (2) unlisted paths remain as a last
// resort. The synthesizer follows interpretation (1) — the
// subspecification at R3 (Figure 4) exposes the drops, and failure
// injection shows the lost redundancy.
//
//	go run ./examples/scenario2_ambiguous
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/scenarios"
	"repro/internal/spec"
	"repro/internal/synth"
	"repro/internal/verify"
)

func main() {
	sc := scenarios.Scenario2()
	fmt.Println("--- Scenario 2:", sc.Title, "---")
	fmt.Println()
	fmt.Print(spec.Print(sc.Spec))

	res, err := synth.Synthesize(sc.Net, sc.Sketch, sc.Requirements(), synth.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	vs, err := verify.Check(sc.Net, res.Deployment, sc.Requirements())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsynthesis ok, failure-free verification: %d violations\n", len(vs))

	// The subspecification at R3 reveals what the synthesizer actually
	// did: prefer P1 over P2, and DROP the two unlisted detours.
	explainer, err := core.NewExplainer(sc.Net, sc.Requirements(), res.Deployment, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	ex, err := explainer.ExplainAll("R3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSubspecification at R3 (Figure 4):")
	fmt.Print(spec.PrintBlock(ex.Subspec))
	fmt.Println("\nThe drops reveal interpretation (1): paths not explicitly")
	fmt.Println("specified are blocked, reducing path redundancy.")

	// Failure injection quantifies the redundancy loss: under
	// interpretation (1) the blocked detours cannot serve as backups,
	// which shows up once both direct provider attachments fail.
	pref := sc.Requirements()[0].(*spec.Preference)
	fmt.Println("\nTwo-link failures (internal fabric + provider links):")
	reach, total := failureReachability(sc, res)
	fmt.Printf("  interpretation (1): destination reachable after %d/%d double failures\n", reach, total)

	// Re-synthesize under interpretation (2): unlisted paths stay
	// configured-in as last resorts.
	opts := synth.DefaultOptions()
	opts.AllowUnspecified = true
	res2, err := synth.Synthesize(sc.Net, sc.Sketch, sc.Requirements(), opts)
	if err != nil {
		log.Fatal(err)
	}
	vs2, err := verify.Check(sc.Net, res2.Deployment, sc.Requirements())
	if err != nil {
		log.Fatal(err)
	}
	reach2, total2 := failureReachability(sc, res2)
	fmt.Printf("  interpretation (2): destination reachable after %d/%d double failures (%d failure-free violations)\n",
		reach2, total2, len(vs2))
	fmt.Println("\nThe administrator intended interpretation (2); the subspecification")
	fmt.Println("made the divergence visible before it bit in production.")
	_ = pref
}

// failureReachability fails every pair of links drawn from the two
// provider-facing links and the two R3 fabric links, and counts how
// often C still reaches D1.
func failureReachability(sc *scenarios.Scenario, res *synth.Result) (reachable, total int) {
	d1 := sc.Net.Router("D1").Prefix
	links := [][2]string{{"R3", "R1"}, {"R3", "R2"}, {"R1", "P1"}, {"R2", "P2"}}
	for i := 0; i < len(links); i++ {
		for j := i + 1; j < len(links); j++ {
			total++
			failed := sc.Net.Clone()
			failed.RemoveLink(links[i][0], links[i][1])
			failed.RemoveLink(links[j][0], links[j][1])
			sim, err := simulate(failed, res)
			if err != nil {
				log.Fatal(err)
			}
			if sim.Reachable("C", d1) {
				reachable++
			}
		}
	}
	return reachable, total
}
