package synth

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/config"
	"repro/internal/logic"
	"repro/internal/spec"
	"repro/internal/topology"
)

// ScopedBase is the paper's localization claim turned into a data
// structure: one whole-network encoding of the concrete deployment,
// recorded together with the span of every constraint group — the
// selection group of each (prefix, router) pair and the block of each
// requirement. An explanation encoder symbolizes a single router; every
// group whose candidates avoid that router is byte-for-byte the same
// constraint slice (terms are hash-consed, so "the same" is pointer
// equality), and Encoder.WithScope copies those spans verbatim. Only
// the groups inside the symbolized router's cone of influence — the
// candidates whose propagation path crosses it — are re-derived, so
// per-router symbolic work scales with the cone, not the network.
//
// A ScopedBase is immutable after construction and safe for concurrent
// use by any number of encoders.
type ScopedBase struct {
	net  *topology.Network
	dep  config.Deployment
	opts Options
	// reqStrs identifies the requirement list the recorded spans were
	// emitted for; a scoped encode against different requirements falls
	// back to the whole-network path.
	reqStrs []string

	// enc is the recorded whole-network encoding; selGroups and
	// reqGroups partition its constraint list.
	enc       *Encoding
	selGroups []selGroup
	reqGroups []span

	// cands is the recording encoder's candidate graph, kept so a
	// scoped encode can rebuild its graph by mapping each candidate
	// (share when clean, re-derive when its path crosses a dirty
	// router) without re-running the BFS.
	cands map[string]map[string][]*candidate

	// stats are the recording encoder's enumeration stats; the BFS
	// structure depends only on topology and options, so they transfer
	// verbatim to every scoped encode.
	stats EncStats
}

// span is a [start, end) slice of the recorded constraint list, with
// the total term size of the slice (so scoped encodes can maintain
// ConstraintSize without re-measuring copied spans).
type span struct {
	start, end int
	size       int
}

// selGroup is the recorded selection-constraint span of one
// (prefix, router) candidate group.
type selGroup struct {
	prefix, node string
	span
}

// NewScopedBase encodes the concrete deployment once, whole-network,
// recording the constraint span of every selection group and
// requirement block. The deployment must be concrete. A prior Base (may
// be nil) makes candidate enumeration cheaper, exactly as in NewBase;
// in is the interner the derived encodings must share (nil for the
// process default).
func NewScopedBase(ctx context.Context, net *topology.Network, dep config.Deployment, opts Options, reqs []spec.Requirement, prior *Base, in *logic.Interner) (*ScopedBase, error) {
	for name, c := range dep {
		if !c.Concrete() {
			return nil, fmt.Errorf("synth: scoped base deployment config %s still has holes", name)
		}
	}
	e := NewEncoder(net, dep, opts).WithBase(prior).WithInterner(in)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := e.declareAllHoles(); err != nil {
		return nil, err
	}
	if err := e.enumerateCandidates(ctx); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	sb := &ScopedBase{
		net:   net,
		dep:   dep,
		opts:  e.opts,
		cands: e.cands,
	}
	for _, r := range reqs {
		sb.reqStrs = append(sb.reqStrs, r.String())
	}

	measure := func(start int) span {
		sp := span{start: start, end: len(e.constraints)}
		for _, c := range e.constraints[sp.start:sp.end] {
			sp.size += logic.Size(c)
		}
		return sp
	}
	e.forEachSelectionGroup(func(prefix, node string, cands []*candidate) {
		start := len(e.constraints)
		e.encodeSelectionGroup(cands)
		sb.selGroups = append(sb.selGroups, selGroup{prefix: prefix, node: node, span: measure(start)})
	})
	for _, r := range reqs {
		start := len(e.constraints)
		if err := e.encodeRequirement(r); err != nil {
			return nil, err
		}
		sb.reqGroups = append(sb.reqGroups, measure(start))
	}
	e.finishStats()
	sb.enc = e.finishEncoding()
	sb.stats = e.stats
	return sb, nil
}

// Encoding returns the recorded whole-network encoding of the concrete
// deployment (shared, immutable).
func (sb *ScopedBase) Encoding() *Encoding { return sb.enc }

// matchesReqs reports whether the requirement list matches the one the
// spans were recorded for.
func (sb *ScopedBase) matchesReqs(reqs []spec.Requirement) bool {
	if len(reqs) != len(sb.reqStrs) {
		return false
	}
	for i, r := range reqs {
		if r.String() != sb.reqStrs[i] {
			return false
		}
	}
	return true
}

// scopedCtxInterval is how many constraint groups pass between context
// checks during a scoped splice.
const scopedCtxInterval = 256

// encodeScoped is the cone-scoped encode: rebuild the candidate graph
// by mapping the scope's candidates (pointer-shared when the path
// avoids every dirty router, re-derived otherwise), then walk the
// recorded groups in order, copying clean spans and re-emitting dirty
// ones. The result is element-wise pointer-identical to the
// whole-network encode of the same sketch: shared candidates carry the
// exact terms WithBase would reuse, re-derived ones run the same
// edgePass over pointer-identical inputs, and group emission is a
// deterministic function of the candidates — so everything downstream
// (simplification, lifting, reports) is byte-identical.
func (e *Encoder) encodeScoped(ctx context.Context, reqs []spec.Requirement) (*Encoding, error) {
	sb := e.scope
	if err := e.declareScopedHoles(); err != nil {
		return nil, err
	}

	// Map every candidate of the scope into this encoder's graph.
	mappedBy := make(map[*candidate]*candidate)
	rederived := 0
	var mapCand func(bc *candidate) (*candidate, error)
	mapCand = func(bc *candidate) (*candidate, error) {
		if nc, ok := mappedBy[bc]; ok {
			return nc, nil
		}
		if bc.parent == nil || e.pathClean(bc.path) {
			// Origin states depend only on the prefix; clean paths carry
			// edge conditions and states no dirty config can reach.
			mappedBy[bc] = bc
			return bc, nil
		}
		parent, err := mapCand(bc.parent)
		if err != nil {
			return nil, err
		}
		cond, st, err := e.edgePass(parent.node(), bc.node(), parent.state)
		if err != nil {
			return nil, err
		}
		nc := &candidate{
			prefix:   bc.prefix,
			path:     bc.path,
			parent:   parent,
			edgeCond: cond,
			state:    st,
			sel:      bc.sel, // interned by name: identical to a fresh encode's
		}
		rederived++
		mappedBy[bc] = nc
		return nc, nil
	}

	// dirtyGroup marks the (prefix, router) groups containing at least
	// one re-derived candidate: exactly the groups whose constraints
	// must be re-emitted.
	dirtyGroup := make(map[[2]string]bool)
	for prefix, byNode := range sb.cands {
		nm := make(map[string][]*candidate, len(byNode))
		for node, cs := range byNode {
			list := make([]*candidate, len(cs))
			changed := false
			for i, bc := range cs {
				nc, err := mapCand(bc)
				if err != nil {
					return nil, err
				}
				list[i] = nc
				changed = changed || nc != bc
			}
			nm[node] = list
			if changed {
				dirtyGroup[[2]string{prefix, node}] = true
			}
		}
		e.cands[prefix] = nm
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	size := 0
	copied, encoded := 0, 0
	emitFresh := func(start int) {
		for _, c := range e.constraints[start:] {
			size += logic.Size(c)
		}
		encoded++
	}
	for i, g := range sb.selGroups {
		if i%scopedCtxInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if !dirtyGroup[[2]string{g.prefix, g.node}] {
			e.constraints = append(e.constraints, sb.enc.Constraints[g.start:g.end]...)
			size += g.size
			copied++
			continue
		}
		start := len(e.constraints)
		e.encodeSelectionGroup(e.cands[g.prefix][g.node])
		emitFresh(start)
	}
	for i, r := range reqs {
		g := sb.reqGroups[i]
		if !e.reqNeedsReencode(r, dirtyGroup) {
			// Forbid and Allow blocks mention only selection variables,
			// which are shared; a clean-source Preference block's full
			// chains are clean too. Copy verbatim.
			e.constraints = append(e.constraints, sb.enc.Constraints[g.start:g.end]...)
			size += g.size
			copied++
			continue
		}
		start := len(e.constraints)
		if err := e.encodeRequirement(r); err != nil {
			return nil, err
		}
		emitFresh(start)
	}

	// Enumeration stats transfer from the recording encoder (the BFS is
	// a function of topology and options alone); reuse counts match the
	// whole-network WithBase path, which shares exactly the clean-path
	// candidates.
	e.stats.Candidates = sb.stats.Candidates
	e.stats.SelVars = sb.stats.SelVars
	e.stats.TruncatedPaths = sb.stats.TruncatedPaths
	e.stats.ReusedCandidates = sb.stats.Candidates - rederived
	e.stats.Constraints = len(e.constraints)
	e.stats.ConstraintSize = size
	e.stats.HoleVars = len(e.holeVars)
	e.stats.ScopedGroupsCopied = copied
	e.stats.ScopedGroupsEncoded = encoded
	return e.finishEncoding(), nil
}

// reqNeedsReencode reports whether a requirement's recorded constraint
// block can be affected by the dirty set. Forbid and Allow emit terms
// over selection variables only — shared across scoped encodes by
// construction — so their blocks always copy. A Preference block
// additionally mentions edge conditions and local-pref states along the
// source router's candidate chains, so it re-encodes when the source's
// selection group is dirty (a chain candidate is dirty only if the
// source candidate extending it is, since the chain's path is a prefix
// of the source candidate's).
func (e *Encoder) reqNeedsReencode(r spec.Requirement, dirtyGroup map[[2]string]bool) bool {
	p, ok := r.(*spec.Preference)
	if !ok {
		return false
	}
	if len(p.Paths) == 0 {
		return true // malformed: let encodeRequirement produce the error
	}
	src, dst := p.Paths[0].First(), p.Paths[0].Last()
	origin := e.net.Router(dst)
	if origin == nil || !origin.HasPrefix {
		return true // malformed: let encodeRequirement produce the error
	}
	return dirtyGroup[[2]string{origin.Prefix.String(), src}]
}

// pathClean reports whether no node of the path is dirty relative to
// the scope's deployment.
func (e *Encoder) pathClean(path []string) bool {
	for _, n := range path {
		if e.scopeDirty[n] {
			return false
		}
	}
	return true
}

// declareScopedHoles declares the hole variables of the sketch. Only
// dirty routers can carry holes — the scope's deployment is concrete,
// and a config equal (by pointer) to a concrete config has no holes —
// so the walk is bounded by the dirty set, yet declares exactly the
// variables declareAllHoles would.
func (e *Encoder) declareScopedHoles() error {
	routers := make([]string, 0, len(e.scopeDirty))
	for r := range e.scopeDirty {
		if _, ok := e.sketch[r]; ok {
			routers = append(routers, r)
		}
	}
	sort.Strings(routers)
	return e.declareHolesOf(routers)
}
