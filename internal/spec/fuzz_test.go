package spec

import "testing"

// FuzzParse checks the specification parser never panics and that
// anything it accepts round-trips through the printer.
func FuzzParse(f *testing.F) {
	f.Add("Req1 { !(P1->...->P2) }")
	f.Add("R2 to P2 { !(P1->R1->R2->P2) }")
	f.Add("Req { (A->B) >> (A->C->B) +(A->...->B) }")
	f.Add("R3 { preference { (R3->R1->D) >> (R3->R2->D) } }")
	f.Add("// comment only")
	f.Add("X {")
	f.Add("}{}{}!(")
	f.Add("Req { !(...->...) }")
	f.Fuzz(func(t *testing.T, src string) {
		s, err := Parse(src)
		if err != nil {
			return
		}
		printed := Print(s)
		s2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed spec does not reparse: %v\n%s", err, printed)
		}
		if Print(s2) != printed {
			t.Fatalf("print not stable:\n%s\n---\n%s", printed, Print(s2))
		}
	})
}
