package synth_test

import (
	"testing"

	"repro/internal/netgen"
	"repro/internal/synth"
	"repro/internal/verify"
)

// TestSynthesisSoundnessAcrossWorkloads is the stack's end-to-end
// soundness property: for seeded random workloads, whenever the
// constraint-based synthesizer reports success, the independent
// BGP-simulation verifier must agree. The encoder and the simulator
// are separate implementations of BGP semantics, so this differential
// check catches divergence in either.
func TestSynthesisSoundnessAcrossWorkloads(t *testing.T) {
	opts := synth.DefaultOptions()
	opts.MaxPathLen = 7
	opts.MaxCandidatesPerNode = 8
	for seed := int64(1); seed <= 12; seed++ {
		for _, withPref := range []bool{false, true} {
			wl, err := netgen.Random(5+int(seed%5), 2.5, seed, withPref)
			if err != nil {
				t.Fatal(err)
			}
			res, err := synth.Synthesize(wl.Net, wl.Sketch, wl.Requirements(), opts)
			if err != nil {
				// Some generated instances are genuinely
				// unsatisfiable (e.g. the preference's primary pattern
				// has no candidate under the caps); that is not a
				// soundness issue.
				continue
			}
			vs, err := verify.Check(wl.Net, res.Deployment, wl.Requirements())
			if err != nil {
				t.Fatalf("%s (pref=%v): %v", wl.Name, withPref, err)
			}
			if len(vs) != 0 {
				t.Fatalf("%s (pref=%v): synthesizer said sat but the simulation disagrees: %v",
					wl.Name, withPref, vs)
			}
		}
	}
}

// TestSynthesisDeterminism: the same workload always synthesizes to
// the same deployment (solver and encoder are deterministic).
func TestSynthesisDeterminism(t *testing.T) {
	wl, err := netgen.Random(8, 2.5, 99, true)
	if err != nil {
		t.Fatal(err)
	}
	opts := synth.DefaultOptions()
	opts.MaxPathLen = 7
	opts.MaxCandidatesPerNode = 8
	a, errA := synth.Synthesize(wl.Net, wl.Sketch, wl.Requirements(), opts)
	b, errB := synth.Synthesize(wl.Net, wl.Sketch, wl.Requirements(), opts)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("determinism broken: %v vs %v", errA, errB)
	}
	if errA != nil {
		t.Skip("instance unsatisfiable; nothing to compare")
	}
	for name := range a.Deployment {
		if got, want := a.Deployment[name], b.Deployment[name]; got == nil || want == nil {
			t.Fatalf("router %s missing", name)
		}
	}
	for name, v := range a.Model {
		if !v.Equal(b.Model[name]) {
			t.Fatalf("model differs at %s: %v vs %v", name, v, b.Model[name])
		}
	}
}
