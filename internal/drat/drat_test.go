package drat_test

import (
	"testing"

	"repro/internal/drat"
	"repro/internal/sat"
)

// traceOps converts a solver trace to checker operations using the
// same literal mapping as Trace.WriteDRAT: 1-based DIMACS integers.
func traceOps(t *sat.Trace) []drat.Op {
	ops := make([]drat.Op, 0, t.Len())
	for i := 0; i < t.Len(); i++ {
		op := t.Op(i)
		lits := make([]int, len(op.Lits))
		for j, l := range op.Lits {
			v := int(l.Var()) + 1
			if !l.IsPos() {
				v = -v
			}
			lits[j] = v
		}
		var kind drat.OpKind
		switch op.Kind {
		case sat.ProofInput:
			kind = drat.Input
		case sat.ProofLearn:
			kind = drat.Learn
		default:
			kind = drat.Delete
		}
		ops = append(ops, drat.Op{Kind: kind, Lits: lits})
	}
	return ops
}

// tracedSolver returns a fresh solver with a proof trace attached and n
// allocated variables.
func tracedSolver(t *testing.T, n int) (*sat.Solver, *sat.Trace, []sat.Lit) {
	t.Helper()
	s := sat.NewSolver()
	tr := sat.NewTrace()
	if err := s.SetProof(tr); err != nil {
		t.Fatalf("SetProof: %v", err)
	}
	lits := make([]sat.Lit, n)
	for i := range lits {
		lits[i] = sat.MkLit(s.NewVar(), true)
	}
	return s, tr, lits
}

func TestCheckPlainUnsat(t *testing.T) {
	// (a∨b)(a∨¬b)(¬a∨b)(¬a∨¬b): unsat, requires search and learning.
	s, tr, v := tracedSolver(t, 2)
	a, b := v[0], v[1]
	s.AddClause(a, b)
	s.AddClause(a, b.Neg())
	s.AddClause(a.Neg(), b)
	s.AddClause(a.Neg(), b.Neg())
	if st := s.Solve(); st != sat.Unsat {
		t.Fatalf("Solve = %v, want Unsat", st)
	}
	ops := traceOps(tr)
	c, err := drat.Check(ops)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if !c.RootConflict() {
		t.Fatalf("checker did not reach a root conflict")
	}
	last := ops[len(ops)-1]
	if last.Kind != drat.Learn || len(last.Lits) != 0 {
		t.Fatalf("final op = %v %v, want empty Learn", last.Kind, last.Lits)
	}
}

func TestCheckAssumptionCoreAndShrink(t *testing.T) {
	// (¬a∨x)(¬b∨x)(¬b∨¬x) under assumptions [a, b]: the solver's
	// cone-based analyzeFinal reports {a, b}, but {b} alone is already
	// unsatisfiable — the checker's deletion-based shrink must find it.
	s, tr, v := tracedSolver(t, 3)
	a, b, x := v[0], v[1], v[2]
	s.AddClause(a.Neg(), x)
	s.AddClause(b.Neg(), x)
	s.AddClause(b.Neg(), x.Neg())
	if st := s.Solve(a, b); st != sat.Unsat {
		t.Fatalf("Solve = %v, want Unsat", st)
	}
	core := s.Core()
	for i, l := range core {
		for _, m := range core[i+1:] {
			if l == m {
				t.Fatalf("duplicate literal %v in core %v", l, core)
			}
		}
	}

	ops := traceOps(tr)
	c, err := drat.Check(ops)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	last := ops[len(ops)-1]
	if last.Kind != drat.Learn || len(last.Lits) == 0 {
		t.Fatalf("final op = %v %v, want non-empty Learn (negated core)", last.Kind, last.Lits)
	}
	shrunk, changed := c.ShrinkClause(last.Lits)
	if len(core) > 1 && !changed {
		t.Fatalf("core %v not shrunk; checker kept %v", core, shrunk)
	}
	// DIMACS for b is 2; the minimal core clause is its negation alone.
	if len(shrunk) != 1 || shrunk[0] != -2 {
		t.Fatalf("shrunk core clause = %v, want [-2]", shrunk)
	}
}

func TestCorruptedLearnRejected(t *testing.T) {
	// A solver bug that emits a lemma that is not a consequence of the
	// formula must be caught. Simulate one by replacing a learnt clause
	// with a unit over a fresh, unconstrained variable — never RUP.
	s, tr, v := tracedSolver(t, 2)
	a, b := v[0], v[1]
	s.AddClause(a, b)
	s.AddClause(a, b.Neg())
	s.AddClause(a.Neg(), b)
	s.AddClause(a.Neg(), b.Neg())
	if st := s.Solve(); st != sat.Unsat {
		t.Fatalf("Solve = %v, want Unsat", st)
	}
	ops := traceOps(tr)
	corrupted := false
	for i, op := range ops {
		if op.Kind == drat.Learn && len(op.Lits) > 0 {
			ops[i].Lits = []int{99}
			corrupted = true
			break
		}
	}
	if !corrupted {
		t.Fatalf("no non-empty learnt clause in trace to corrupt")
	}
	if _, err := drat.Check(ops); err == nil {
		t.Fatalf("checker accepted a corrupted learnt clause")
	}
}

func TestCorruptedLearnSignFlipRejected(t *testing.T) {
	// Flipping a literal's sign in the final core lemma of the crafted
	// instance turns it into a clause the formula does not entail.
	s, tr, v := tracedSolver(t, 3)
	a, b, x := v[0], v[1], v[2]
	s.AddClause(a.Neg(), x)
	s.AddClause(b.Neg(), x)
	s.AddClause(b.Neg(), x.Neg())
	if st := s.Solve(a, b); st != sat.Unsat {
		t.Fatalf("Solve = %v, want Unsat", st)
	}
	ops := traceOps(tr)
	last := &ops[len(ops)-1]
	if last.Kind != drat.Learn || len(last.Lits) == 0 {
		t.Fatalf("final op = %v %v, want non-empty Learn", last.Kind, last.Lits)
	}
	// The final lemma is a subset of {¬a, ¬b}; flipping ¬b to b (or, if
	// absent, ¬a to a) yields a clause satisfied by neither semantics.
	for i, l := range last.Lits {
		if l == -2 {
			last.Lits[i] = 2
		} else if l == -1 {
			last.Lits[i] = 1
		}
	}
	if _, err := drat.Check(ops); err == nil {
		t.Fatalf("checker accepted a sign-flipped core lemma")
	}
}

func TestCheckLearnRejectsNonConsequence(t *testing.T) {
	c := drat.NewChecker()
	if err := c.AddInput([]int{1, 2}); err != nil {
		t.Fatalf("AddInput: %v", err)
	}
	if err := c.CheckLearn([]int{1}); err == nil {
		t.Fatalf("accepted [1], which (1∨2) does not entail")
	}
	if err := c.CheckLearn([]int{1, 2, 3}); err != nil {
		t.Fatalf("rejected a weakening of an input clause: %v", err)
	}
}

func TestDeleteUnknownClauseRejected(t *testing.T) {
	c := drat.NewChecker()
	if err := c.AddInput([]int{1, 2}); err != nil {
		t.Fatalf("AddInput: %v", err)
	}
	if err := c.CheckDelete([]int{1, 3}); err == nil {
		t.Fatalf("accepted deletion of a clause never added")
	}
	// Deletion matches clauses by literal *set*, since the solver
	// reorders clause literals in place during search.
	if err := c.CheckDelete([]int{2, 1}); err != nil {
		t.Fatalf("rejected set-equal deletion: %v", err)
	}
	// The clause is gone now, so its lemma no longer checks.
	if err := c.CheckClause([]int{1, 2}); err == nil {
		t.Fatalf("deleted clause still participates in RUP")
	}
}

func TestDeleteRootReasonKept(t *testing.T) {
	c := drat.NewChecker()
	if err := c.AddInput([]int{1}); err != nil {
		t.Fatalf("AddInput: %v", err)
	}
	if err := c.AddInput([]int{-1, 2}); err != nil {
		t.Fatalf("AddInput: %v", err)
	}
	// [1] justifies the root assignment of 1; deleting it must be
	// skipped so the permanent trail keeps its justification.
	if err := c.CheckDelete([]int{1}); err != nil {
		t.Fatalf("CheckDelete: %v", err)
	}
	if err := c.CheckClause([]int{2}); err != nil {
		t.Fatalf("root propagation lost after root-reason delete: %v", err)
	}
}

func TestTautologyInputHarmless(t *testing.T) {
	c := drat.NewChecker()
	if err := c.AddInput([]int{1, -1}); err != nil {
		t.Fatalf("AddInput tautology: %v", err)
	}
	if err := c.AddInput([]int{2}); err != nil {
		t.Fatalf("AddInput: %v", err)
	}
	if err := c.CheckClause([]int{2}); err != nil {
		t.Fatalf("CheckClause: %v", err)
	}
	if err := c.CheckLearn([]int{1}); err == nil {
		t.Fatalf("tautology (1∨¬1) was treated as asserting 1")
	}
}

func TestTrim(t *testing.T) {
	// An unsat pair of units buried among irrelevant clauses: trimming
	// should keep few lemmas and the trimmed trace must still check.
	s, tr, v := tracedSolver(t, 8)
	a, b := v[0], v[1]
	// Irrelevant satisfiable clutter.
	for i := 2; i < 8; i++ {
		s.AddClause(v[i], v[(i+3)%8])
	}
	s.AddClause(a, b)
	s.AddClause(a, b.Neg())
	s.AddClause(a.Neg(), b)
	s.AddClause(a.Neg(), b.Neg())
	if st := s.Solve(); st != sat.Unsat {
		t.Fatalf("Solve = %v, want Unsat", st)
	}
	res, err := drat.Trim(traceOps(tr))
	if err != nil {
		t.Fatalf("Trim: %v", err)
	}
	if res.KeptLemmas > res.TotalLemmas {
		t.Fatalf("kept %d of %d lemmas", res.KeptLemmas, res.TotalLemmas)
	}
	if _, err := drat.Check(res.Ops); err != nil {
		t.Fatalf("trimmed trace does not check: %v", err)
	}
}

func TestCloneTraceChecks(t *testing.T) {
	// A clone inherits learnt clauses, so its forked trace must replay
	// their derivations and keep checking independently.
	s, tr, v := tracedSolver(t, 3)
	a, b, x := v[0], v[1], v[2]
	s.AddClause(a.Neg(), x)
	s.AddClause(b.Neg(), x)
	s.AddClause(b.Neg(), x.Neg())
	if st := s.Solve(a, b); st != sat.Unsat {
		t.Fatalf("Solve = %v, want Unsat", st)
	}
	c := s.Clone()
	ctr, ok := c.Proof().(*sat.Trace)
	if !ok {
		t.Fatalf("clone lost its proof trace")
	}
	if st := c.Solve(b); st != sat.Unsat {
		t.Fatalf("clone Solve = %v, want Unsat", st)
	}
	if _, err := drat.Check(traceOps(ctr)); err != nil {
		t.Fatalf("clone trace: %v", err)
	}
	// The original's trace is unaffected by the clone's extra lemma.
	if _, err := drat.Check(traceOps(tr)); err != nil {
		t.Fatalf("original trace after clone solve: %v", err)
	}
}

// TestPortfolioWorkerTracesCheck races a clause-sharing team on an
// unsatisfiable instance and replays EVERY worker's trace — winner and
// cancelled losers alike — through the independent checker. Shared
// imports are logged as the importer's own RUP-gated learnts, so each
// trace must stand alone; a loser's trace simply checks without
// reaching a root conflict.
func TestPortfolioWorkerTracesCheck(t *testing.T) {
	base, _, _ := tracedSolver(t, 0)
	// PHP(7,6): pigeon i gets hole j is variable p[i][j].
	const pigeons, holes = 7, 6
	p := make([][]sat.Lit, pigeons)
	for i := range p {
		p[i] = make([]sat.Lit, holes)
		for j := range p[i] {
			p[i][j] = sat.MkLit(base.NewVar(), true)
		}
	}
	team := sat.NewPortfolio(base, 3)
	for i := 0; i < pigeons; i++ {
		team.AddClause(p[i]...)
		for j := 0; j < holes; j++ {
			for k := i + 1; k < pigeons; k++ {
				team.AddClause(p[i][j].Neg(), p[k][j].Neg())
			}
		}
	}
	if st := team.Solve(); st != sat.Unsat {
		t.Fatalf("PHP(7,6) = %v, want Unsat", st)
	}
	winner := team.Winner()
	for i := 0; i < team.Workers(); i++ {
		wtr, ok := team.WorkerProof(i).(*sat.Trace)
		if !ok {
			t.Fatalf("worker %d has no trace", i)
		}
		c, err := drat.Check(traceOps(wtr))
		if err != nil {
			t.Fatalf("worker %d trace rejected: %v", i, err)
		}
		if i == winner && !c.RootConflict() {
			t.Fatalf("winner %d's trace has no root conflict", i)
		}
	}
}
