package sat

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestPortfolioSingleWorkerMatchesSolver pins the determinism anchor of
// portfolio mode: a one-worker portfolio IS the plain solver — same
// verdicts, same search trajectory (conflicts, decisions), no pool.
func TestPortfolioSingleWorkerMatchesSolver(t *testing.T) {
	plain := NewSolver()
	addRandom3SAT(plain, 130, 559, benchSeedHard3SAT)
	stPlain := plain.Solve()

	base := NewSolver()
	addRandom3SAT(base, 130, 559, benchSeedHard3SAT)
	p := NewPortfolio(base, 1)
	stPort := p.Solve()

	if stPlain != stPort {
		t.Fatalf("verdicts diverge: solver %v, one-worker portfolio %v", stPlain, stPort)
	}
	if plain.Stats.Conflicts != base.Stats.Conflicts || plain.Stats.Decisions != base.Stats.Decisions {
		t.Fatalf("trajectories diverge: solver %d/%d conflicts/decisions, portfolio %d/%d",
			plain.Stats.Conflicts, plain.Stats.Decisions, base.Stats.Conflicts, base.Stats.Decisions)
	}
	if base.share != nil {
		t.Fatal("one-worker portfolio wired a share pool")
	}
}

// TestPortfolioDifferential races a three-worker team against a fresh
// single solver across a family of random instances. Verdicts must
// agree, and every Unsat verdict's winning trace must pass the
// independent proof checker — imports included, since the importer logs
// them as its own RUP-gated learnts.
func TestPortfolioDifferential(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		single := NewSolver()
		addRandom3SAT(single, 110, 470, seed)
		want := single.Solve()

		base := NewSolver()
		tr := NewTrace()
		if err := base.SetProof(tr); err != nil {
			t.Fatal(err)
		}
		addRandom3SAT(base, 110, 470, seed)
		p := NewPortfolio(base, 3)
		got := p.Solve()

		if got != want {
			t.Fatalf("seed %d: portfolio %v, single solver %v", seed, got, want)
		}
		if got == Unsat {
			wtr, ok := p.Proof().(*Trace)
			if !ok {
				t.Fatalf("seed %d: winner (worker %d) has no trace", seed, p.Winner())
			}
			c := mustCheckTrace(t, wtr)
			if !c.RootConflict() {
				t.Fatalf("seed %d: winner's checked trace has no root conflict", seed)
			}
		}
		if got == Sat {
			// The winner's model must satisfy the instance as the
			// single solver sees it.
			m := p.Model()
			check := NewSolver()
			addRandom3SAT(check, 110, 470, seed)
			for _, cl := range check.clauses {
				satisfied := false
				for _, l := range cl.lits {
					if m[l.Var()] == l.IsPos() {
						satisfied = true
						break
					}
				}
				if !satisfied {
					t.Fatalf("seed %d: winner's model falsifies clause %v", seed, cl.lits)
				}
			}
		}
	}
}

// TestPortfolioSharing drives a team on an instance long enough for
// restart boundaries to pass and checks the sharing machinery actually
// moves clauses: someone exports, someone imports, and every import was
// RUP-gated onto a trace that still checks.
func TestPortfolioSharing(t *testing.T) {
	base := NewSolver()
	tr := NewTrace()
	if err := base.SetProof(tr); err != nil {
		t.Fatal(err)
	}
	pigeonhole(base, 8, 7)
	p := NewPortfolio(base, 3)
	if st := p.Solve(); st != Unsat {
		t.Fatalf("PHP(8,7) = %v, want Unsat", st)
	}
	sum := p.StatsSum()
	if sum.SharedExported == 0 {
		t.Fatal("no worker exported a clause on a 4000-conflict unsat instance")
	}
	wtr, ok := p.Proof().(*Trace)
	if !ok {
		t.Fatal("winner has no trace")
	}
	c := mustCheckTrace(t, wtr)
	if !c.RootConflict() {
		t.Fatal("winner's checked trace has no root conflict")
	}
}

// TestPortfolioUnderAssumptions checks the assumption path end to end:
// the team returns Unsat under assumptions, the winner's core names a
// subset of the assumptions, and dropping the core's assumptions flips
// the verdict.
func TestPortfolioUnderAssumptions(t *testing.T) {
	base := NewSolver()
	vars := newVars(base, 3)
	a, b, c := PosLit(vars[0]), PosLit(vars[1]), PosLit(vars[2])
	base.AddClause(a.Neg(), b)
	base.AddClause(b.Neg(), c)
	p := NewPortfolio(base, 2)
	if st := p.Solve(a, c.Neg()); st != Unsat {
		t.Fatalf("Solve(a, !c) = %v, want Unsat", st)
	}
	core := p.Core()
	if len(core) == 0 {
		t.Fatal("empty core for Unsat under assumptions")
	}
	allowed := map[Lit]bool{a: true, c.Neg(): true}
	for _, l := range core {
		if !allowed[l] {
			t.Fatalf("core literal %d is not one of the assumptions", l)
		}
	}
	if st := p.Solve(a); st != Sat {
		t.Fatalf("Solve(a) = %v, want Sat", st)
	}
}

// TestPortfolioCancellation cancels a race mid-search on a hard
// instance and checks the contract: Unknown with the context's error,
// every worker goroutine joined (no leak), the team immediately usable
// again, and Stats.Sub still saturation-safe on the portfolio counters.
func TestPortfolioCancellation(t *testing.T) {
	before := runtime.NumGoroutine()

	base := NewSolver()
	pigeonhole(base, 10, 9) // far beyond the cancellation horizon
	p := NewPortfolio(base, 4)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	st, err := p.PortfolioContext(ctx)
	if st != Unknown || err == nil {
		t.Fatalf("cancelled race = (%v, %v), want (Unknown, context error)", st, err)
	}

	// All workers joined: the goroutine count settles back to the
	// baseline (give the runtime a moment to retire them).
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, n)
	}

	// The team is idle and reusable: a budgeted re-solve returns
	// deterministically.
	p.SetConflictBudget(50)
	if st := p.Solve(); st != Unknown {
		t.Fatalf("budgeted re-solve = %v, want Unknown", st)
	}

	// Harvest arithmetic stays safe even if a checkpoint outruns the
	// current counters (solver swapped for a fresh clone).
	ckpt := p.StatsSum()
	ckpt.PortfolioRaces += 100
	ckpt.SharedExported += 100
	d := p.StatsSum().Sub(ckpt)
	if d.PortfolioRaces != 0 || d.SharedExported != 0 {
		t.Fatalf("portfolio counters must saturate at zero, got %+v", d)
	}
}

// TestConcurrentCloneWithProof clones one proof-logging solver from
// several goroutines at once — the checkout pattern of a pre-cloned
// warm team — and lets every clone finish an Unsat search whose forked
// trace must check independently.
func TestConcurrentCloneWithProof(t *testing.T) {
	base := NewSolver()
	tr := NewTrace()
	if err := base.SetProof(tr); err != nil {
		t.Fatal(err)
	}
	addRandom3SAT(base, 140, 600, 5) // unsat family instance
	base.ConflictBudget = 40
	if st := base.Solve(); st != Unknown {
		t.Fatalf("warmup solve = %v, want Unknown (budgeted)", st)
	}
	base.ConflictBudget = 0

	const clones = 4
	var wg sync.WaitGroup
	traces := make([]*Trace, clones)
	for i := 0; i < clones; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := base.Clone()
			if st := c.Solve(); st != Unsat {
				t.Errorf("clone %d: Solve = %v, want Unsat", i, st)
				return
			}
			ctr, ok := c.Proof().(*Trace)
			if !ok {
				t.Errorf("clone %d: proof writer not forked", i)
				return
			}
			traces[i] = ctr
		}(i)
	}
	wg.Wait()
	for i, ctr := range traces {
		if ctr == nil {
			continue // an earlier Errorf already failed the test
		}
		c := mustCheckTrace(t, ctr)
		if !c.RootConflict() {
			t.Fatalf("clone %d: checked trace has no root conflict", i)
		}
	}
}
