package smt

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/sat"
)

// php builds a pigeonhole constraint over enum variables: p pigeons,
// each assigned one of h holes, all distinct — unsat when p > h.
func php(t *testing.T, s *Solver, p, h int) []*logic.Var {
	t.Helper()
	holes := make([]string, h)
	for j := range holes {
		holes[j] = string(rune('a' + j))
	}
	sort := logic.NewEnumSort("hole", holes...)
	vars := make([]*logic.Var, p)
	for i := range vars {
		vars[i] = logic.NewEnumVar("p"+string(rune('0'+i)), sort)
	}
	for i := 0; i < p; i++ {
		for j := i + 1; j < p; j++ {
			mustAssert(t, s, logic.Ne(vars[i], vars[j]))
		}
	}
	return vars
}

// TestPortfolioModeVerdictsAndProofs drives a proof-logging portfolio
// solver through the full query mix — unconditional Unsat, Sat with
// model extraction, Unsat under assumptions with a checked core — and
// verifies every Unsat verdict against the winner's trace.
func TestPortfolioModeVerdictsAndProofs(t *testing.T) {
	s := NewSolver(WithProof(), WithSatWorkers(3))
	if s.SatWorkers() != 3 {
		t.Fatalf("SatWorkers = %d, want 3", s.SatWorkers())
	}
	php(t, s, 4, 3)
	mustSolve(t, s, sat.Unsat)
	if _, err := s.VerifyLastUnsat(); err != nil {
		t.Fatalf("VerifyLastUnsat (unconditional): %v", err)
	}

	// A fresh satisfiable portfolio query: model must be consistent.
	s2 := NewSolver(WithProof(), WithSatWorkers(3))
	vars := php(t, s2, 3, 3)
	mustSolve(t, s2, sat.Sat)
	m, err := s2.Model()
	if err != nil {
		t.Fatalf("Model: %v", err)
	}
	seen := map[string]bool{}
	for _, v := range vars {
		val, ok := m[v.Name]
		if !ok {
			t.Fatalf("model misses %q", v.Name)
		}
		if seen[val.String()] {
			t.Fatalf("model assigns hole %v twice: %v", val, m)
		}
		seen[val.String()] = true
	}

	// Unsat under assumptions on the same warm solver: the team solved
	// before, so this exercises the already-built-team path.
	a := logic.NewBoolVar("a")
	x := logic.NewBoolVar("x")
	mustAssert(t, s2, logic.Implies(a, x))
	mustSolve(t, s2, sat.Unsat, a, logic.Not(x))
	core := s2.Core()
	if len(core) == 0 {
		t.Fatal("empty core for Unsat under assumptions")
	}
	if _, err := s2.VerifyLastUnsat(); err != nil {
		t.Fatalf("VerifyLastUnsat (assumptions): %v", err)
	}
	checked, _, err := s2.CheckedCore()
	if err != nil {
		t.Fatalf("CheckedCore: %v", err)
	}
	if len(checked) == 0 || len(checked) > len(core) {
		t.Fatalf("CheckedCore = %v, solver core %v", checked, core)
	}
}

// TestPortfolioModeAgreesWithSingle runs the same query family at 1 and
// 3 workers and demands identical verdicts everywhere — the property
// that makes the worker count invisible in reports.
func TestPortfolioModeAgreesWithSingle(t *testing.T) {
	build := func(n int) (*Solver, *logic.Var, *logic.Var) {
		s := NewSolver(WithSatWorkers(n))
		x := logic.NewIntVar("x", 0, 15)
		y := logic.NewIntVar("y", 0, 15)
		mustAssert(t, s, logic.Lt(x, y))
		mustAssert(t, s, logic.Le(y, logic.NewInt(9)))
		return s, x, y
	}
	queries := func(s *Solver, x, y *logic.Var) []sat.Status {
		var out []sat.Status
		for _, q := range []logic.Term{
			logic.Eq(x, logic.NewInt(9)),  // unsat: x<y<=9
			logic.Eq(x, logic.NewInt(8)),  // sat: y=9
			logic.Gt(y, logic.NewInt(9)),  // unsat
			logic.Eq(y, logic.NewInt(12)), // unsat
		} {
			st, err := s.Solve(q)
			if err != nil {
				t.Fatalf("Solve(%v): %v", q, err)
			}
			out = append(out, st)
		}
		return out
	}
	s1, x1, y1 := build(1)
	s3, x3, y3 := build(3)
	v1 := queries(s1, x1, y1)
	v3 := queries(s3, x3, y3)
	for i := range v1 {
		if v1[i] != v3[i] {
			t.Fatalf("query %d: 1 worker %v, 3 workers %v", i, v1[i], v3[i])
		}
	}
}

// TestPortfolioModeCloneAndGuards checks the warm-reuse path: a clone
// of a portfolio solver carries the worker count, rebuilds its own
// team, and guarded assertion/retraction works across team solves.
func TestPortfolioModeCloneAndGuards(t *testing.T) {
	s := NewSolver(WithSatWorkers(2))
	x := logic.NewIntVar("x", 0, 30)
	mustAssert(t, s, logic.Ge(x, logic.NewInt(10)))
	mustSolve(t, s, sat.Sat) // builds the team

	c := s.Clone()
	if c.SatWorkers() != 2 {
		t.Fatalf("clone SatWorkers = %d, want 2", c.SatWorkers())
	}
	g, err := c.AssertGuarded(logic.Lt(x, logic.NewInt(10)))
	if err != nil {
		t.Fatalf("AssertGuarded: %v", err)
	}
	mustSolve(t, c, sat.Unsat)
	c.Retract(g)
	mustSolve(t, c, sat.Sat)

	// The original is unaffected by the clone's guard traffic.
	mustSolve(t, s, sat.Sat)

	// Enumeration on a portfolio solver: 21 values of x remain.
	n, exhausted, err := c.EnumerateModelsRetractableContext(t.Context(), []*logic.Var{x}, 100, func(logic.Assignment) bool { return true })
	if err != nil {
		t.Fatalf("enumerate: %v", err)
	}
	if n != 21 || !exhausted {
		t.Fatalf("enumerate = (%d, %v), want (21, true)", n, exhausted)
	}
	mustSolve(t, c, sat.Sat)
}
