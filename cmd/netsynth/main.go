// netsynth completes a configuration sketch against a path-requirement
// specification and prints the synthesized router configurations.
//
//	netsynth -scenario scenario1          # one of the paper's scenarios
//	netsynth -workload grid:3x2           # generated workload (see -help)
//	netsynth -scenario scenario2 -interp2 # unlisted paths as last resort
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/config"
	"repro/internal/spec"
	"repro/internal/synth"
	"repro/internal/verify"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with the process glue factored out. Exit codes follow
// the shared cmd convention: 0 success, 1 operational failure
// (synthesis or verification failure, violations), 2 usage error
// (bad flags, unknown scenario or workload).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("netsynth", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scenario := fs.String("scenario", "", "paper scenario: scenario1, scenario2, scenario3")
	workload := fs.String("workload", "", "generated workload: grid:WxH, rand:N:SEED, fattree:K (no-transit intent)")
	pref := fs.Bool("pref", false, "add the D1 path-preference intent to a generated workload")
	interp2 := fs.Bool("interp2", false, "treat unlisted preference paths as last resorts (interpretation 2)")
	quiet := fs.Bool("q", false, "print only the verification verdict")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	prob, err := loadProblem(*scenario, *workload, *pref)
	if err != nil {
		// A problem that cannot be loaded is a bad -scenario/-workload
		// combination: the user asked for something that does not exist.
		fmt.Fprintln(stderr, "netsynth:", err)
		return 2
	}
	opts := synth.DefaultOptions()
	opts.AllowUnspecified = *interp2
	if *workload != "" {
		opts.MaxPathLen = 7
		opts.MaxCandidatesPerNode = 8
	}
	res, err := synth.Synthesize(prob.net, prob.sketch, prob.spec.Requirements(), opts)
	if err != nil {
		fmt.Fprintln(stderr, "netsynth:", err)
		return 1
	}
	if !*quiet {
		fmt.Fprintln(stdout, "// specification")
		fmt.Fprint(stdout, spec.Print(prob.spec))
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, config.PrintDeployment(res.Deployment))
		fmt.Fprintf(stdout, "\n// encoding: %d constraints, %d atoms, %d holes\n",
			res.Encoding.Stats.Constraints, res.Encoding.Stats.ConstraintSize, res.Encoding.Stats.HoleVars)
	}
	vs, err := verify.Check(prob.net, res.Deployment, prob.spec.Requirements())
	if err != nil {
		fmt.Fprintln(stderr, "netsynth:", err)
		return 1
	}
	if len(vs) == 0 {
		fmt.Fprintln(stdout, "// verification: all requirements hold")
		return 0
	}
	for _, v := range vs {
		fmt.Fprintf(stdout, "// VIOLATION: %s\n", v)
	}
	return 1
}
