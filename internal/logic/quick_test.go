package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Random term generation for property-based tests. Terms are generated
// over a fixed vocabulary of three bool vars, two int vars, and one
// enum var, so random assignments can always evaluate them.

var (
	qbVars = []*Var{NewBoolVar("p"), NewBoolVar("q"), NewBoolVar("r")}
	qiVars = []*Var{NewIntVar("m", -8, 8), NewIntVar("k", 0, 15)}
	qeSort = NewEnumSort("QE", "red", "green", "blue")
	qeVar  = NewEnumVar("col", qeSort)
)

// randBoolTerm generates a random boolean term of bounded depth.
func randBoolTerm(r *rand.Rand, depth int) Term {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return qbVars[r.Intn(len(qbVars))]
		case 1:
			return NewBool(r.Intn(2) == 0)
		case 2:
			return Eq(qeVar, NewEnum(qeSort, qeSort.Values[r.Intn(3)]))
		default:
			return Lt(qiVars[r.Intn(2)], NewInt(int64(r.Intn(17)-8)))
		}
	}
	switch r.Intn(7) {
	case 0:
		return And(randBoolTerm(r, depth-1), randBoolTerm(r, depth-1))
	case 1:
		return Or(randBoolTerm(r, depth-1), randBoolTerm(r, depth-1))
	case 2:
		return Not(randBoolTerm(r, depth-1))
	case 3:
		return Implies(randBoolTerm(r, depth-1), randBoolTerm(r, depth-1))
	case 4:
		return Iff(randBoolTerm(r, depth-1), randBoolTerm(r, depth-1))
	case 5:
		return Ite(randBoolTerm(r, depth-1), randBoolTerm(r, depth-1), randBoolTerm(r, depth-1))
	default:
		return randBoolTerm(r, 0)
	}
}

// randAssignment assigns every vocabulary variable a random in-domain
// value.
func randAssignment(r *rand.Rand) Assignment {
	a := Assignment{}
	for _, v := range qbVars {
		a[v.Name] = BoolValue(r.Intn(2) == 0)
	}
	for _, v := range qiVars {
		a[v.Name] = IntValue(v.Lo + r.Int63n(v.Hi-v.Lo+1))
	}
	a[qeVar.Name] = EnumValue(qeSort, qeSort.Values[r.Intn(3)])
	return a
}

func quickParser(t *testing.T) *Parser {
	t.Helper()
	vars := append(append([]*Var{}, qbVars...), qiVars...)
	vars = append(vars, qeVar)
	p, err := NewParser(vars, []*Sort{qeSort})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// Property: printing then parsing is stable (the reparsed term prints
// identically) and preserves meaning under every assignment we try.
// Structural equality is too strong a property here: nested binary
// conjunctions and flat n-ary conjunctions print identically by design.
func TestQuickPrintParseRoundTrip(t *testing.T) {
	p := quickParser(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		term := randBoolTerm(r, 4)
		got, err := p.Parse(term.String())
		if err != nil {
			t.Logf("parse %q: %v", term.String(), err)
			return false
		}
		if got.String() != term.String() {
			t.Logf("round trip %q -> %q", term.String(), got.String())
			return false
		}
		for i := 0; i < 8; i++ {
			env := randAssignment(r)
			a, err1 := EvalBool(term, env)
			b, err2 := EvalBool(got, env)
			if err1 != nil || err2 != nil || a != b {
				t.Logf("semantic mismatch on %q", term.String())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Equal terms hash equally, and Equal is reflexive under Map
// identity.
func TestQuickHashConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randBoolTerm(r, 4)
		b := Map(a, func(u Term) Term { return u })
		return Equal(a, b) && Hash(a) == Hash(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: substitution of a variable by its assigned value does not
// change the evaluation result.
func TestQuickSubstitutionPreservesEval(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		term := randBoolTerm(r, 4)
		env := randAssignment(r)
		want, err := EvalBool(term, env)
		if err != nil {
			return false
		}
		// Concretize one random variable.
		name := qbVars[r.Intn(len(qbVars))].Name
		partial := SubstituteValues(term, Assignment{name: env[name]})
		got, err := EvalBool(partial, env)
		if err != nil {
			return false
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Conjuncts preserves meaning — the conjunction of the parts
// evaluates like the whole.
func TestQuickConjunctsPreserveEval(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		term := And(randBoolTerm(r, 3), randBoolTerm(r, 3), randBoolTerm(r, 3))
		env := randAssignment(r)
		want, err := EvalBool(term, env)
		if err != nil {
			return false
		}
		got := true
		for _, c := range Conjuncts(term) {
			b, err := EvalBool(c, env)
			if err != nil {
				return false
			}
			got = got && b
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Size and Depth are positive and Size >= Depth.
func TestQuickSizeDepthSanity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		term := randBoolTerm(r, 5)
		s, d := Size(term), Depth(term)
		return s >= 1 && d >= 1 && s >= d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
