package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/scenarios"
)

// LiftTable measures what query reuse buys the lift stage: each
// scenario's whole-network report runs twice through one explainer —
// the first pass cold (caches and solver pool empty), the second warm
// (encodings cached, solvers checked out with their clause databases,
// learnt clauses, and saved phases intact). The per-query latency
// percentiles cover every lift-stage SMT query of both passes.
func LiftTable(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:      "lift-reuse (extension Ext-2)",
		Caption: "Warm-solver reuse in the lift stage. cold-ms is a first whole-network report (empty caches); warm-ms repeats it through the same session with pooled warm solvers. p50/p95 are per-lift-query latencies over both passes.",
		Columns: []string{"scenario", "cold-ms", "warm-ms", "speedup", "queries", "p50-ms", "p95-ms", "warm-hits", "warm-misses"},
	}
	for _, sc := range scenarios.All() {
		res, err := synthesizeScenario(ctx, sc)
		if err != nil {
			return nil, err
		}
		ex, err := core.NewExplainer(sc.Net, sc.Requirements(), res.Deployment, core.DefaultOptions())
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := ex.ReportContext(ctx); err != nil {
			return nil, fmt.Errorf("%s cold report: %w", sc.Name, err)
		}
		coldMS := float64(time.Since(start).Microseconds()) / 1000
		start = time.Now()
		if _, err := ex.ReportContext(ctx); err != nil {
			return nil, fmt.Errorf("%s warm report: %w", sc.Name, err)
		}
		warmMS := float64(time.Since(start).Microseconds()) / 1000
		speedup := 0.0
		if warmMS > 0 {
			speedup = coldMS / warmMS
		}
		st := ex.Stats()
		t.AddRow(sc.Name,
			fmt.Sprintf("%.1f", coldMS), fmt.Sprintf("%.1f", warmMS),
			fmt.Sprintf("%.2fx", speedup), st.LiftQueries,
			fmt.Sprintf("%.3f", float64(st.LiftP50.Microseconds())/1000),
			fmt.Sprintf("%.3f", float64(st.LiftP95.Microseconds())/1000),
			st.WarmSolverHits, st.WarmSolverMisses)
	}
	return t, nil
}
