package logic

import "testing"

// SMTLIB rendering coverage for every operator, so dumps fed to an
// external solver are syntactically dependable.
func TestSMTLIBAllOps(t *testing.T) {
	x, y := NewBoolVar("x"), NewBoolVar("y")
	n := NewIntVar("n", 0, 9)
	e := NewEnumVar("e", actionSort)
	cases := []struct {
		t    Term
		want string
	}{
		{And(x, y), "(and x y)"},
		{Or(x, y), "(or x y)"},
		{Not(x), "(not x)"},
		{Implies(x, y), "(=> x y)"},
		{Iff(x, y), "(= x y)"},
		{Eq(n, NewInt(3)), "(= n 3)"},
		{Ne(n, NewInt(3)), "(distinct n 3)"},
		{Lt(n, NewInt(3)), "(< n 3)"},
		{Le(n, NewInt(3)), "(<= n 3)"},
		{Gt(n, NewInt(3)), "(> n 3)"},
		{Ge(n, NewInt(3)), "(>= n 3)"},
		{Add(n, NewInt(1)), "(+ n 1)"},
		{Sub(n, NewInt(1)), "(- n 1)"},
		{Ite(x, n, NewInt(0)), "(ite x n 0)"},
		{Eq(e, NewEnum(actionSort, "deny")), "(= e deny)"},
		{NewInt(-7), "(- 7)"},
		{True, "true"},
		{False, "false"},
	}
	for _, c := range cases {
		if got := SMTLIB(c.t); got != c.want {
			t.Errorf("SMTLIB(%s) = %q, want %q", c.t, got, c.want)
		}
	}
}

func TestPrintConjunction(t *testing.T) {
	x, y := NewBoolVar("x"), NewBoolVar("y")
	if got := PrintConjunction(True); got != "true" {
		t.Fatalf("PrintConjunction(true) = %q", got)
	}
	got := PrintConjunction(And(x, y))
	if got != "x\ny" {
		t.Fatalf("PrintConjunction = %q", got)
	}
}

func TestHashDistributes(t *testing.T) {
	// Sanity: distinct small terms do not all collide.
	terms := []Term{
		NewBoolVar("a"), NewBoolVar("b"), NewInt(1), NewInt(2),
		True, False, And(NewBoolVar("a"), NewBoolVar("b")),
		Or(NewBoolVar("a"), NewBoolVar("b")),
		NewEnum(actionSort, "permit"), NewEnum(actionSort, "deny"),
	}
	seen := map[uint64]bool{}
	collisions := 0
	for _, tm := range terms {
		h := Hash(tm)
		if seen[h] {
			collisions++
		}
		seen[h] = true
	}
	if collisions > 1 {
		t.Fatalf("%d hash collisions among %d tiny terms", collisions, len(terms))
	}
}
