package core

import (
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/scenarios"
)

// TestReportWithProofsMatchesGolden regenerates every scenario's report
// with proof verification on and pins three properties at once: the
// report is byte-identical to the committed golden (logging and
// checking are observation only), every Unsat verdict along the way
// carried a proof the independent checker accepted (a rejected proof
// aborts the report with an error), and the checker actually ran.
func TestReportWithProofsMatchesGolden(t *testing.T) {
	for _, sc := range scenarios.All() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			dep := synthScenario(t, sc)
			opts := DefaultOptions()
			opts.VerifyProofs = true
			e, err := NewExplainer(sc.Net, sc.Requirements(), dep, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.Report()
			if err != nil {
				t.Fatalf("report with proof verification: %v", err)
			}
			path := filepath.Join("testdata", "report_"+sc.Name+".golden")
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden: %v", err)
			}
			if got != string(want) {
				t.Errorf("verified report for %s differs from golden %s.\ngot:\n%s", sc.Name, path, got)
			}
			st := e.Stats()
			if st.ProofChecks == 0 {
				t.Fatalf("no proofs were checked while generating the report")
			}
			if st.ProofOps == 0 || st.ProofLemmas == 0 {
				t.Fatalf("proof stats empty: %+v", st)
			}
		})
	}
}

// TestExplanationVerifiedFlag pins the Verified stamp: on with
// verification, off without.
func TestExplanationVerifiedFlag(t *testing.T) {
	sc := scenarios.All()[0]
	dep := synthScenario(t, sc)

	plain := newExplainer(t, sc, dep, nil)
	var routers []string
	for name := range dep {
		routers = append(routers, name)
	}
	sort.Strings(routers)
	router := routers[0]
	ex, err := plain.ExplainAll(router)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Verified {
		t.Fatalf("explanation stamped Verified without proof verification")
	}

	opts := DefaultOptions()
	opts.VerifyProofs = true
	verified, err := NewExplainer(sc.Net, sc.Requirements(), dep, opts)
	if err != nil {
		t.Fatal(err)
	}
	vex, err := verified.ExplainAll(router)
	if err != nil {
		t.Fatal(err)
	}
	if !vex.Verified {
		t.Fatalf("explanation not stamped Verified under VerifyProofs")
	}
	if vex.Subspec == nil || ex.Subspec == nil {
		t.Fatalf("expected lifted subspecs in both runs")
	}
	if got, want := subspecStrings(vex.Subspec), subspecStrings(ex.Subspec); len(got) != len(want) {
		t.Fatalf("verification changed the subspec: %v vs %v", got, want)
	}
}

// TestReportWithProofsIdenticalAcrossWorkerCounts combines the two
// contracts above: with proof verification on, the report stays
// byte-identical to the committed golden at every lift worker count.
// Parallel lift hands warm solver clones to workers, and a clone forks
// the proof trace — this pins that the forked traces all check and
// that neither scheduling nor verification perturbs the output.
func TestReportWithProofsIdenticalAcrossWorkerCounts(t *testing.T) {
	for _, sc := range scenarios.All() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			dep := synthScenario(t, sc)
			want, err := os.ReadFile(filepath.Join("testdata", "report_"+sc.Name+".golden"))
			if err != nil {
				t.Fatalf("missing golden: %v", err)
			}
			for _, workers := range []int{1, 2, 8} {
				opts := DefaultOptions()
				opts.VerifyProofs = true
				opts.LiftWorkers = workers
				e, err := NewExplainer(sc.Net, sc.Requirements(), dep, opts)
				if err != nil {
					t.Fatal(err)
				}
				got, err := e.Report()
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if got != string(want) {
					t.Errorf("workers=%d: verified report differs from golden", workers)
				}
				if e.Stats().ProofChecks == 0 {
					t.Fatalf("workers=%d: no proofs were checked", workers)
				}
			}
		})
	}
}
