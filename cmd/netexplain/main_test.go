package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/netgen"
	"repro/internal/scenarios"
	"repro/internal/synth"
)

func TestParseTarget(t *testing.T) {
	cases := []struct {
		in   string
		want core.Target
	}{
		{"R1_to_P1/100/action", core.Target{Map: "R1_to_P1", Seq: 100, Field: core.FieldAction}},
		{"m/10/match/0", core.Target{Map: "m", Seq: 10, Field: core.FieldMatch, Index: 0}},
		{"m/10/set/2", core.Target{Map: "m", Seq: 10, Field: core.FieldSet, Index: 2}},
	}
	for _, c := range cases {
		got, err := parseTarget(c.in)
		if err != nil {
			t.Errorf("parseTarget(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("parseTarget(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	bad := []string{"", "m", "m/10", "m/x/action", "m/10/weird", "m/10/match", "m/10/set/x"}
	for _, s := range bad {
		if _, err := parseTarget(s); err == nil {
			t.Errorf("parseTarget(%q) should fail", s)
		}
	}
}

// TestRunExitCodes pins the shared cmd convention: usage errors —
// unknown scenario, malformed -var, unknown requirement block — exit 2
// with the complaint on stderr.
func TestRunExitCodes(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-scenario", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown scenario: exit %d, want 2 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "netexplain:") {
		t.Fatalf("error not prefixed on stderr: %q", errOut.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-scenario", "scenario1", "-var", "not-a-target"}, &out, &errOut); code != 2 {
		t.Fatalf("bad -var: exit %d, want 2 (stderr: %s)", code, errOut.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}

// TestRunRules pins the one flag that must not touch the pipeline:
// -rules prints the rule catalog and exits 0.
func TestRunRules(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-rules"}, &out, &errOut); code != 0 {
		t.Fatalf("-rules: exit %d (stderr: %s)", code, errOut.String())
	}
	if out.Len() == 0 {
		t.Fatal("-rules printed nothing")
	}
}

// TestRunDiff drives the incremental what-if mode end to end: explain
// OLD, re-explain NEW, print the full (byte-identical-to-cold) report
// plus the delta summary.
func TestRunDiff(t *testing.T) {
	sc := scenarios.Scenario1()
	res, err := synth.Synthesize(sc.Net, sc.Sketch, sc.Requirements(), synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	edited, edits := netgen.Perturb(res.Deployment, 1, 1)
	if len(edits) != 1 {
		t.Fatalf("wanted 1 edit, got %v", edits)
	}
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.cfg")
	newPath := filepath.Join(dir, "new.cfg")
	if err := os.WriteFile(oldPath, []byte(config.PrintDeployment(res.Deployment)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte(config.PrintDeployment(edited)), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errOut strings.Builder
	if code := run([]string{"-scenario", "scenario1", "-diff", oldPath, newPath}, &out, &errOut); code != 0 {
		t.Fatalf("-diff exit %d (stderr: %s)", code, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "EXPLANATION REPORT") {
		t.Fatalf("no report in output:\n%s", got)
	}
	if !strings.Contains(got, "WHAT-IF DELTA SUMMARY") {
		t.Fatalf("no delta summary in output:\n%s", got)
	}
	if !strings.Contains(got, "edited configs:") {
		t.Fatalf("summary missing edited configs line:\n%s", got)
	}

	// Usage errors: missing positional args, unreadable file.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-scenario", "scenario1", "-diff", oldPath}, &out, &errOut); code != 2 {
		t.Fatalf("-diff with one arg: exit %d, want 2", code)
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-scenario", "scenario1", "-diff", oldPath, filepath.Join(dir, "missing.cfg")}, &out, &errOut); code != 1 {
		t.Fatalf("-diff with missing file: exit %d, want 1", code)
	}
}

// TestRunAllToFile pins the -o flag: the streamed -all report lands in
// the file, byte-identical to the stdout report.
func TestRunAllToFile(t *testing.T) {
	var want, errOut strings.Builder
	if code := run([]string{"-scenario", "scenario1", "-all"}, &want, &errOut); code != 0 {
		t.Fatalf("-all exit %d (stderr: %s)", code, errOut.String())
	}
	path := filepath.Join(t.TempDir(), "report.txt")
	var out strings.Builder
	errOut.Reset()
	if code := run([]string{"-scenario", "scenario1", "-all", "-o", path}, &out, &errOut); code != 0 {
		t.Fatalf("-all -o exit %d (stderr: %s)", code, errOut.String())
	}
	if out.Len() != 0 {
		t.Fatalf("-o still wrote to stdout: %q", out.String())
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want.String() {
		t.Errorf("-o report differs from stdout report:\n%s", string(got))
	}
	// An unwritable path is an operational failure, not a usage error.
	errOut.Reset()
	if code := run([]string{"-all", "-o", filepath.Join(path, "nope")}, &out, &errOut); code != 1 {
		t.Fatalf("bad -o path: exit %d, want 1", code)
	}
}
