package spec

import "strings"

// Print renders a specification document in the paper's surface
// syntax, one block per paragraph.
func Print(s *Spec) string {
	parts := make([]string, len(s.Blocks))
	for i, b := range s.Blocks {
		parts[i] = PrintBlock(b)
	}
	return strings.Join(parts, "\n")
}

// PrintBlock renders one block. Preference requirements of
// device-scoped blocks are grouped in a "preference { ... }" section,
// matching the paper's Figure 4; forbid clauses follow.
func PrintBlock(b *Block) string {
	var sb strings.Builder
	sb.WriteString(b.Title())
	sb.WriteString(" {\n")
	prefs := b.Preferences()
	forbids := b.Forbids()
	if len(prefs) > 0 && len(forbids) > 0 {
		sb.WriteString("    preference {\n")
		for _, p := range prefs {
			sb.WriteString("        ")
			sb.WriteString(p.String())
			sb.WriteString("\n")
		}
		sb.WriteString("    }\n")
	} else {
		for _, p := range prefs {
			sb.WriteString("    ")
			sb.WriteString(p.String())
			sb.WriteString("\n")
		}
	}
	for _, a := range b.Allows() {
		sb.WriteString("    ")
		sb.WriteString(a.String())
		sb.WriteString("\n")
	}
	for _, f := range forbids {
		sb.WriteString("    ")
		sb.WriteString(f.String())
		sb.WriteString("\n")
	}
	sb.WriteString("}\n")
	return sb.String()
}
