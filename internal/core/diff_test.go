package core

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/netgen"
	"repro/internal/scenarios"
	"repro/internal/spec"
)

// coldReport builds a fresh explainer over dep and renders its report —
// the ground truth every incremental path must reproduce byte for byte.
func coldReport(t *testing.T, sc *scenarios.Scenario, dep config.Deployment, reqs []spec.Requirement, opts Options) (string, error) {
	t.Helper()
	if reqs == nil {
		reqs = sc.Requirements()
	}
	e, err := NewExplainer(sc.Net, reqs, dep, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e.Report()
}

// TestReExplainByteIdentity is the tentpole's differential pin: for
// every seed scenario and a battery of deterministic random edits, the
// incremental re-explanation must produce byte-for-byte the report a
// cold explainer produces on the edited network — with proof
// verification on, so spliced verdicts stand on checked proofs.
func TestReExplainByteIdentity(t *testing.T) {
	opts := DefaultOptions()
	opts.VerifyProofs = true
	for _, sc := range scenarios.All() {
		dep := synthScenario(t, sc)
		for seed := int64(1); seed <= 3; seed++ {
			edited, edits := netgen.Perturb(dep, seed, 2)
			if len(edits) == 0 {
				t.Fatalf("%s seed %d: no edit sites", sc.Name, seed)
			}
			e, err := NewExplainer(sc.Net, sc.Requirements(), dep, opts)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := e.Report(); err != nil {
				t.Fatalf("%s: cold report: %v", sc.Name, err)
			}
			dr, incErr := e.ReExplain(Delta{Deployment: edited})
			want, coldErr := coldReport(t, sc, edited, nil, opts)
			if coldErr != nil {
				if incErr == nil {
					t.Fatalf("%s seed %d: cold explain fails (%v) but ReExplain succeeded", sc.Name, seed, coldErr)
				}
				continue
			}
			if incErr != nil {
				t.Fatalf("%s seed %d: ReExplain: %v (edits: %v)", sc.Name, seed, incErr, edits)
			}
			if dr.Report != want {
				t.Fatalf("%s seed %d: incremental report diverges from cold report (edits: %v)\n-- incremental --\n%s\n-- cold --\n%s",
					sc.Name, seed, edits, dr.Report, want)
			}
			if dr.Stats.Spliced+dr.Stats.Recomputed != dr.Stats.Routers && !dr.Stats.FastPath {
				t.Fatalf("%s seed %d: spliced %d + recomputed %d != routers %d",
					sc.Name, seed, dr.Stats.Spliced, dr.Stats.Recomputed, dr.Stats.Routers)
			}
			if !strings.Contains(dr.Summary, "WHAT-IF DELTA SUMMARY") {
				t.Fatalf("%s seed %d: malformed summary:\n%s", sc.Name, seed, dr.Summary)
			}
		}
	}
}

// TestReExplainWorkerMatrix pins byte-identity across the resource
// knobs: SAT portfolio width times lift worker pool size must never
// change a single byte of the incremental report.
func TestReExplainWorkerMatrix(t *testing.T) {
	sc := scenarios.Scenario2()
	dep := synthScenario(t, sc)
	edited, _ := netgen.Perturb(dep, 5, 1)
	want, coldErr := coldReport(t, sc, edited, nil, DefaultOptions())
	if coldErr != nil {
		t.Fatalf("cold report on edited network: %v", coldErr)
	}
	for _, satW := range []int{1, 2} {
		for _, liftW := range []int{1, 4} {
			opts := DefaultOptions()
			opts.Budget.SatWorkers = satW
			opts.LiftWorkers = liftW
			e, err := NewExplainer(sc.Net, sc.Requirements(), dep, opts)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := e.Report(); err != nil {
				t.Fatal(err)
			}
			dr, err := e.ReExplain(Delta{Deployment: edited})
			if err != nil {
				t.Fatalf("sat=%d lift=%d: %v", satW, liftW, err)
			}
			if dr.Report != want {
				t.Fatalf("sat=%d lift=%d: incremental report diverges from cold report", satW, liftW)
			}
		}
	}
}

// TestReExplainModelInvisibleEditFastPath: changing the VALUE of a MED
// metric (outside the modeled selection semantics; the set line itself
// stays, so the symbolization surface is unchanged) must take the fast
// path — previous report reused verbatim — and that report must still
// be byte-identical to a cold report over the edited network.
func TestReExplainModelInvisibleEditFastPath(t *testing.T) {
	sc := scenarios.Scenario2()
	synthDep := synthScenario(t, sc)

	// Baseline network: R2 carries a concrete MED metric.
	withMED := func(base config.Deployment, med int) (config.Deployment, *config.Set) {
		out := config.Deployment{}
		for name, c := range base {
			out[name] = c
		}
		c := base["R2"].Clone()
		out["R2"] = c
		cl := c.RouteMaps[c.RouteMapNames()[0]].Clauses[0]
		s := &config.Set{Kind: config.SetMED, MED: med}
		cl.Sets = append(cl.Sets, s)
		return out, s
	}
	dep, _ := withMED(synthDep, 50)
	// Edited network: same line, different metric.
	edited, _ := withMED(synthDep, 70)

	e := newExplainer(t, sc, dep, nil)
	prior, err := e.Report()
	if err != nil {
		t.Fatal(err)
	}
	dr, err := e.ReExplain(Delta{Deployment: edited})
	if err != nil {
		t.Fatal(err)
	}
	if !dr.Stats.FastPath {
		t.Fatalf("MED-only edit did not take the fast path: %+v\n%s", dr.Stats, dr.Summary)
	}
	if dr.Report != prior {
		t.Fatal("fast path did not reuse the previous report verbatim")
	}
	if len(dr.Stats.EditedConfigs) != 1 || dr.Stats.EditedConfigs[0] != "R2" {
		t.Fatalf("EditedConfigs = %v, want [R2]", dr.Stats.EditedConfigs)
	}
	want, coldErr := coldReport(t, sc, edited, nil, DefaultOptions())
	if coldErr != nil {
		t.Fatal(coldErr)
	}
	if dr.Report != want {
		t.Fatal("fast-path report diverges from a cold report over the edited network")
	}
	// The explainer now targets the edited network.
	if e.Deployment["R2"] != edited["R2"] {
		t.Fatal("ReExplain did not adopt the edited deployment")
	}
}

// TestReExplainSpecOnlyEditDirtiesCone: editing only the requirements
// leaves every config untouched; the dirty set must be exactly the
// routers whose seed constraints intersect the edit's cone of
// influence, and exactly those routers' lift stages recompute — every
// other router splices.
func TestReExplainSpecOnlyEditDirtiesCone(t *testing.T) {
	sc := scenarios.Scenario3()
	dep := synthScenario(t, sc)
	e := newExplainer(t, sc, dep, nil)
	if _, err := e.Report(); err != nil {
		t.Fatal(err)
	}
	reqs := sc.Requirements()
	if len(reqs) < 2 {
		t.Fatalf("scenario needs >= 2 requirements, has %d", len(reqs))
	}
	newReqs := reqs[:len(reqs)-1] // drop one requirement: a pure spec edit
	dr, err := e.ReExplain(Delta{Reqs: newReqs})
	if err != nil {
		t.Fatal(err)
	}
	if dr.Stats.FastPath {
		t.Fatal("a requirements change must not take the fast path")
	}
	if len(dr.Stats.EditedConfigs) != 0 {
		t.Fatalf("no config changed, but EditedConfigs = %v", dr.Stats.EditedConfigs)
	}
	// The dirty set and the recomputed set must coincide: a router whose
	// seed is outside the edit's cone has a pointer-identical simplified
	// form and splices; a router inside it recomputes.
	if dr.Stats.Recomputed != len(dr.Stats.PredictedDirty) {
		t.Fatalf("recomputed %d routers, but dirty set is %v", dr.Stats.Recomputed, dr.Stats.PredictedDirty)
	}
	if dr.Stats.Spliced+dr.Stats.Recomputed != dr.Stats.Routers {
		t.Fatalf("spliced %d + recomputed %d != routers %d", dr.Stats.Spliced, dr.Stats.Recomputed, dr.Stats.Routers)
	}
	want, coldErr := coldReport(t, sc, dep, newReqs, DefaultOptions())
	if coldErr != nil {
		t.Fatal(coldErr)
	}
	if dr.Report != want {
		t.Fatal("spec-only incremental report diverges from cold report")
	}
}

// TestReExplainChainedEdits drives several generations of edits through
// one explainer — the interactive what-if session the feature exists
// for — checking byte-identity at every step.
func TestReExplainChainedEdits(t *testing.T) {
	sc := scenarios.Scenario3()
	dep := synthScenario(t, sc)
	e := newExplainer(t, sc, dep, nil)
	if _, err := e.Report(); err != nil {
		t.Fatal(err)
	}
	cur := dep
	for gen := int64(10); gen < 13; gen++ {
		edited, edits := netgen.Perturb(cur, gen, 1)
		dr, incErr := e.ReExplain(Delta{Deployment: edited})
		want, coldErr := coldReport(t, sc, edited, nil, DefaultOptions())
		if coldErr != nil {
			if incErr == nil {
				t.Fatalf("gen %d: cold fails (%v) but incremental succeeded", gen, coldErr)
			}
			return
		}
		if incErr != nil {
			t.Fatalf("gen %d: ReExplain: %v (edits: %v)", gen, incErr, edits)
		}
		if dr.Report != want {
			t.Fatalf("gen %d: incremental report diverges from cold (edits: %v)", gen, edits)
		}
		cur = edited
	}
}
