package bgp

import (
	"net/netip"
	"strings"
	"testing"

	"repro/internal/topology"
)

func TestCommunity(t *testing.T) {
	c, err := ParseCommunity("100:2")
	if err != nil {
		t.Fatal(err)
	}
	if c.High != 100 || c.Low != 2 || c.String() != "100:2" {
		t.Fatalf("community = %+v / %s", c, c)
	}
	for _, bad := range []string{"", "abc", "1:", "70000:1", "1:70000", "-1:2"} {
		if _, err := ParseCommunity(bad); err == nil {
			t.Errorf("ParseCommunity(%q) should fail", bad)
		}
	}
	mustPanic(t, func() { MustCommunity("bad") })
}

func TestOriginateAndClone(t *testing.T) {
	p := topology.MustPrefix("10.0.0.0/8")
	r := Originate("D1", 700, p)
	if r.Origin != "D1" || r.LocalPref != DefaultLocalPref || len(r.Path) != 1 {
		t.Fatalf("originated route = %+v", r)
	}
	cp := r.Clone()
	cp.Path = append(cp.Path, "X")
	cp.Communities[MustCommunity("1:1")] = true
	cp.ASPath[0] = 999
	if len(r.Path) != 1 || len(r.Communities) != 0 || r.ASPath[0] != 700 {
		t.Fatal("Clone is not deep")
	}
}

func TestDecisionProcess(t *testing.T) {
	p := topology.MustPrefix("10.0.0.0/8")
	base := func() *Route {
		return &Route{Prefix: p, Path: []string{"O", "A"}, ASPath: []int{1, 2}, LocalPref: 100}
	}
	hi := base()
	hi.LocalPref = 200
	if !Better(hi, base()) || Better(base(), hi) {
		t.Fatal("higher local-pref must win")
	}
	short := base()
	long := base()
	long.ASPath = []int{1, 2, 3}
	if !Better(short, long) {
		t.Fatal("shorter AS path must win at equal local-pref")
	}
	lowMed := base()
	highMed := base()
	highMed.MED = 50
	if !Better(lowMed, highMed) {
		t.Fatal("lower MED must win")
	}
	a := base()
	b := base()
	b.Path = []string{"O", "B"}
	if !Better(a, b) || Better(b, a) {
		t.Fatal("tie-break must be deterministic and asymmetric")
	}
	if Best(nil) != nil {
		t.Fatal("Best(nil) should be nil")
	}
	if Best([]*Route{long, hi, short}) != hi {
		t.Fatal("Best should pick the decision-process winner")
	}
}

func TestSimulateIdentityPaperTopology(t *testing.T) {
	net := topology.Paper()
	res, err := Simulate(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	d1 := net.Router("D1").Prefix
	// Everyone reaches D1.
	for _, node := range []string{"C", "R1", "R2", "R3", "P1", "P2"} {
		if !res.Reachable(node, d1) {
			t.Fatalf("%s cannot reach D1:\n%s", node, res.Dump())
		}
	}
	// C's path to D1 goes through R3 and one of the providers, with
	// the shortest AS path winning.
	path := res.ForwardingPath("C", d1)
	if path[0] != "C" || path[len(path)-1] != "D1" {
		t.Fatalf("forwarding path = %v", path)
	}
	if len(path) != 5 { // C R3 {R1,R2} {P1,P2} D1
		t.Fatalf("expected 5-hop path, got %v", path)
	}
	// R1 reaches D1 directly via P1 (AS path length 3 beats 4).
	r1path := res.ForwardingPath("R1", d1)
	want := "R1 P1 D1"
	if strings.Join(r1path, " ") != want {
		t.Fatalf("R1 path = %v, want %s", r1path, want)
	}
	// With identity policies transit IS possible: P2 reaches P1's
	// prefix through the fabric. (This is exactly what the no-transit
	// scenario's synthesized configs must prevent.)
	if !res.Reachable("P2", net.Router("P1").Prefix) {
		t.Fatal("unfiltered network should allow transit")
	}
}

// prefPolicy raises local-pref for routes imported from a given
// neighbor at a given router.
type prefPolicy struct {
	at, from string
	pref     int
}

func (p prefPolicy) Export(_, _ string, r *Route) *Route { return r }
func (p prefPolicy) Import(at, from string, r *Route) *Route {
	if at == p.at && from == p.from {
		r.LocalPref = p.pref
	}
	return r
}

func TestSimulateLocalPrefSteersPath(t *testing.T) {
	net := topology.Paper()
	d1 := net.Router("D1").Prefix
	// Make R3 prefer routes from R2 (hence via P2).
	res, err := Simulate(net, prefPolicy{at: "R3", from: "R2", pref: 200})
	if err != nil {
		t.Fatal(err)
	}
	path := strings.Join(res.ForwardingPath("C", d1), " ")
	if path != "C R3 R2 P2 D1" {
		t.Fatalf("C path = %q, want C R3 R2 P2 D1", path)
	}
}

// dropPolicy drops all exports from at to to.
type dropPolicy struct{ at, to string }

func (p dropPolicy) Export(at, to string, r *Route) *Route {
	if at == p.at && to == p.to {
		return nil
	}
	return r
}
func (p dropPolicy) Import(_, _ string, r *Route) *Route { return r }

func TestSimulateDropPolicy(t *testing.T) {
	net := topology.Paper()
	p1 := net.Router("P1").Prefix
	// R1 refuses to export anything to P1 (the paper's Scenario 1
	// configuration): P1 loses reachability to everything except what
	// it can reach through D1-P2.
	res, err := Simulate(net, dropPolicy{at: "R1", to: "P1"})
	if err != nil {
		t.Fatal(err)
	}
	c := topology.Paper().Router("C").Prefix
	// P1 must not learn the customer prefix via R1; the only remaining
	// path would be D1<-P2<-R2<-R3<-C... but that is blocked? No:
	// identity everywhere else, so P1 still learns C via D1-P2-R2-R3.
	path := res.ForwardingPath("P1", c)
	if len(path) > 0 && path[1] == "R1" {
		t.Fatalf("P1 still routes via R1: %v", path)
	}
	_ = p1
}

func TestSimulateWithdrawal(t *testing.T) {
	// A policy that drops based on communities set elsewhere exercises
	// re-announcement; here we just check the engine reaches a stable
	// state with a policy that filters one prefix entirely.
	net := topology.Paper()
	d1 := net.Router("D1").Prefix
	pol := filterPrefix{prefix: d1}
	res, err := Simulate(net, pol)
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range []string{"C", "R1", "R2", "R3"} {
		if res.Reachable(node, d1) {
			t.Fatalf("%s should not reach filtered prefix", node)
		}
	}
	// Other prefixes unaffected.
	if !res.Reachable("C", net.Router("P1").Prefix) {
		t.Fatal("unfiltered prefix lost")
	}
}

type filterPrefix struct{ prefix netip.Prefix }

func (p filterPrefix) Export(_, _ string, r *Route) *Route { return r }
func (p filterPrefix) Import(at, _ string, r *Route) *Route {
	// Internal routers refuse the filtered prefix.
	if r.Prefix == p.prefix && strings.HasPrefix(at, "R") {
		return nil
	}
	return r
}

func TestLoopPrevention(t *testing.T) {
	net := topology.Paper()
	res, err := Simulate(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	for node, rib := range res.RIB {
		for _, r := range rib {
			seen := map[string]bool{}
			for _, n := range r.Path {
				if seen[n] {
					t.Fatalf("route at %s has loop: %v", node, r.Path)
				}
				seen[n] = true
			}
		}
	}
}

// oscillate builds the classic "bad gadget": three routers around an
// origin, each preferring the route that goes through its clockwise
// neighbor. No stable assignment exists.
type badGadget struct{}

func (badGadget) Export(_, _ string, r *Route) *Route { return r }
func (badGadget) Import(at, from string, r *Route) *Route {
	prefer := map[string]string{"A": "B", "B": "C", "C": "A"}
	if prefer[at] == from {
		r.LocalPref = 500
	}
	return r
}

func TestNonConvergenceDetected(t *testing.T) {
	net := topology.New()
	net.AddExternal("O", 10, topology.MustPrefix("10.0.0.0/8"))
	for _, n := range []string{"A", "B", "C"} {
		net.AddRouter(n, 100)
		net.AddLink("O", n)
	}
	net.AddLink("A", "B")
	net.AddLink("B", "C")
	net.AddLink("C", "A")
	_, err := Simulate(net, badGadget{})
	if err == nil {
		t.Fatal("bad gadget should be reported as non-converging")
	}
	if !strings.Contains(err.Error(), "convergence") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestResultHelpers(t *testing.T) {
	net := topology.Paper()
	res, err := Simulate(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	d1 := net.Router("D1").Prefix
	if res.Route("C", d1) == nil {
		t.Fatal("Route lookup failed")
	}
	if res.Route("C", topology.MustPrefix("1.2.3.0/24")) != nil {
		t.Fatal("unknown prefix should have no route")
	}
	if res.ForwardingPath("C", topology.MustPrefix("1.2.3.0/24")) != nil {
		t.Fatal("no route should mean nil path")
	}
	dump := res.Dump()
	for _, want := range []string{"C:", "R1:", "140.0.1.0/24"} {
		if !strings.Contains(dump, want) {
			t.Fatalf("dump missing %q:\n%s", want, dump)
		}
	}
	if res.Iterations < 2 {
		t.Fatalf("iterations = %d, expected at least 2", res.Iterations)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Simulate(topology.Paper(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(topology.Paper(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Dump() != b.Dump() {
		t.Fatal("simulation is not deterministic")
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
