package bench

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/netgen"
	"repro/internal/synth"
)

// TestScaleTableQuick runs the trimmed scaling sweep end to end: every
// quick workload synthesizes, streams its whole-network report, passes
// the cold-arm byte-identity check where armed, and verifies.
func TestScaleTableQuick(t *testing.T) {
	tbl, err := ScaleTable(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 3 {
		t.Fatalf("rows = %d, want >= 3", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("%s: verification failed", row[0])
		}
		if id := row[len(row)-2]; id != "-" && id != "true" {
			t.Errorf("%s: cold-vs-scoped streams differ", row[0])
		}
	}
}

// TestScaleSmoke streams a whole-network report over a 400-router
// populated grid — the CI-sized pin that per-router encode work rides
// the cone-scoped path and the stream covers every router.
func TestScaleSmoke(t *testing.T) {
	e, err := runScaleCase(context.Background(), scaleCase{
		build:      func() (*netgen.Workload, error) { return netgen.Grid(20, 20, false) },
		maxPathLen: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.Routers < 400 {
		t.Fatalf("routers = %d, want >= 400", e.Routers)
	}
	if e.Sections != e.Routers {
		t.Errorf("sections = %d, want %d (every router explained)", e.Sections, e.Routers)
	}
	if e.ScopedEncodes != e.Sections {
		t.Errorf("scoped encodes = %d, want %d (every section through the scoped path)", e.ScopedEncodes, e.Sections)
	}
	if e.ScopedGroupsCopied <= e.ScopedGroupsEncoded {
		t.Errorf("groups copied = %d <= encoded = %d: scoping is not localizing work",
			e.ScopedGroupsCopied, e.ScopedGroupsEncoded)
	}
	if e.StreamedBytes == 0 || e.PeakHeapBytes == 0 {
		t.Errorf("missing measurements: streamed=%d peakHeap=%d", e.StreamedBytes, e.PeakHeapBytes)
	}
}

// TestScaleByteIdentity pins cold-vs-scoped byte-identity on the
// netgen preset shapes, with proof verification on and across the
// SatWorkers x LiftWorkers matrix on the lifted workload. The seed
// scenarios have the same pin in internal/core (golden worker-matrix
// reports run through the streaming path).
func TestScaleByteIdentity(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name   string
		build  func() (*netgen.Workload, error)
		mpl    int
		lift   bool
		matrix bool
	}{
		{"grid_3x3_lift", func() (*netgen.Workload, error) { return netgen.Grid(3, 3, false) }, 7, true, true},
		{"fattree_4", func() (*netgen.Workload, error) { return netgen.FatTree(4, false) }, 4, false, false},
		{"rand_20", func() (*netgen.Workload, error) { return netgen.Random(20, 2.5, 42, false) }, 7, false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wl, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			netgen.Populate(wl)
			sopts := synth.DefaultOptions()
			sopts.MaxPathLen = tc.mpl
			sopts.MaxCandidatesPerNode = 8
			res, err := synth.SynthesizeContext(ctx, wl.Net, wl.Sketch, wl.Requirements(), sopts)
			if err != nil {
				t.Fatal(err)
			}

			report := func(satWorkers, liftWorkers int, scoped bool) string {
				opts := core.DefaultOptions()
				opts.Synth = sopts
				opts.Lift = tc.lift
				opts.VerifyProofs = true
				opts.Budget.SatWorkers = satWorkers
				opts.LiftWorkers = liftWorkers
				ex, err := core.NewExplainer(wl.Net, wl.Requirements(), res.Deployment, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !scoped {
					ex.Session.DisableScopedEncoding()
				}
				var sb strings.Builder
				if _, err := ex.WriteReport(ctx, &sb); err != nil {
					t.Fatal(err)
				}
				if st := ex.Stats(); scoped && st.ScopedEncodes == 0 {
					t.Error("scoped run performed no scoped encodes")
				} else if !scoped && st.ScopedEncodes != 0 {
					t.Error("cold run performed scoped encodes")
				}
				return sb.String()
			}

			want := report(1, 1, false)
			configs := [][2]int{{1, 1}}
			if tc.matrix {
				configs = [][2]int{{1, 1}, {2, 1}, {1, 2}, {2, 2}}
			}
			for _, c := range configs {
				if got := report(c[0], c[1], true); got != want {
					t.Errorf("satWorkers=%d liftWorkers=%d: scoped report differs from cold report", c[0], c[1])
				}
			}
		})
	}
}
