// netspec parses, lints, and normalizes intent specifications.
//
//	netspec -spec intents.txt -topology net.txt   # lint against a topology
//	netspec -scenario scenario3                   # print a scenario's spec
//	echo 'Req { !(P1->...->P2) }' | netspec       # format stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/scenarios"
	"repro/internal/spec"
	"repro/internal/topology"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is main with the process glue factored out. Exit codes follow
// the shared cmd convention: 0 success, 1 operational failure
// (unreadable or unparsable input, lint warnings), 2 usage error
// (bad flags, unknown scenario).
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("netspec", flag.ContinueOnError)
	fs.SetOutput(stderr)
	specFile := fs.String("spec", "", "specification file ('-' or empty reads stdin)")
	topoFile := fs.String("topology", "", "optional topology file to lint node references against")
	scenario := fs.String("scenario", "", "print a paper scenario's specification instead")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "netspec:", err)
		return 1
	}

	if *scenario != "" {
		sc, err := scenarios.ByName(*scenario)
		if err != nil {
			fmt.Fprintln(stderr, "netspec:", err)
			return 2
		}
		fmt.Fprint(stdout, spec.Print(sc.Spec))
		return 0
	}

	var src []byte
	var err error
	if *specFile == "" || *specFile == "-" {
		src, err = io.ReadAll(stdin)
	} else {
		src, err = os.ReadFile(*specFile)
	}
	if err != nil {
		return fail(err)
	}
	s, err := spec.Parse(string(src))
	if err != nil {
		return fail(err)
	}

	warnings := 0
	if *topoFile != "" {
		topoSrc, err := os.ReadFile(*topoFile)
		if err != nil {
			return fail(err)
		}
		net, err := topology.Parse(string(topoSrc))
		if err != nil {
			return fail(err)
		}
		warnings = lint(s, net, stderr)
	}

	fmt.Fprint(stdout, spec.Print(s))
	if warnings > 0 {
		fmt.Fprintf(stderr, "netspec: %d warning(s)\n", warnings)
		return 1
	}
	return 0
}

// lint reports references the topology cannot satisfy.
func lint(s *spec.Spec, net *topology.Network, stderr io.Writer) int {
	warnings := 0
	warn := func(format string, args ...any) {
		fmt.Fprintf(stderr, "warning: "+format+"\n", args...)
		warnings++
	}
	for _, node := range s.Nodes() {
		if net.Router(node) == nil {
			warn("node %q is not in the topology", node)
		}
	}
	for _, b := range s.Blocks {
		for _, r := range b.Reqs {
			switch q := r.(type) {
			case *spec.Preference:
				checkEndpoints(q.Paths, warn, net)
			case *spec.Allow:
				checkEndpoints([]spec.Path{q.Path}, warn, net)
			}
		}
	}
	return warnings
}

func checkEndpoints(paths []spec.Path, warn func(string, ...any), net *topology.Network) {
	for _, p := range paths {
		dst := p.Last()
		if r := net.Router(dst); r != nil && !r.HasPrefix {
			warn("destination %q of %s originates no prefix", dst, p)
		}
		// Adjacent concrete hops must be linked.
		for i := 1; i < len(p); i++ {
			a, b := p[i-1], p[i]
			if a == spec.Wildcard || b == spec.Wildcard {
				continue
			}
			if net.Router(a) != nil && net.Router(b) != nil && !net.HasLink(a, b) {
				warn("path %s uses nonexistent link %s-%s", p, a, b)
			}
		}
	}
}
