package smt

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/sat"
)

func TestIncrementalAssertAfterSolve(t *testing.T) {
	// Assert, solve, assert more, solve again: the solver is
	// incremental and must stay consistent.
	s := NewSolver()
	n := logic.NewIntVar("n", 0, 10)
	mustAssert(t, s, logic.Ge(n, logic.NewInt(3)))
	mustSolve(t, s, sat.Sat)
	mustAssert(t, s, logic.Le(n, logic.NewInt(5)))
	mustSolve(t, s, sat.Sat)
	m, err := s.Model()
	if err != nil {
		t.Fatal(err)
	}
	if m["n"].I < 3 || m["n"].I > 5 {
		t.Fatalf("n = %d outside [3,5]", m["n"].I)
	}
	mustAssert(t, s, logic.Gt(n, logic.NewInt(5)))
	mustSolve(t, s, sat.Unsat)
}

func TestRepeatedSolveWithDifferentAssumptions(t *testing.T) {
	s := NewSolver()
	n := logic.NewIntVar("n", 0, 10)
	mustAssert(t, s, logic.Ne(n, logic.NewInt(5)))
	for i := int64(0); i <= 10; i++ {
		st, err := s.Solve(logic.Eq(n, logic.NewInt(i)))
		if err != nil {
			t.Fatal(err)
		}
		want := sat.Sat
		if i == 5 {
			want = sat.Unsat
		}
		if st != want {
			t.Fatalf("n=%d: %v, want %v", i, st, want)
		}
	}
}

func TestSolverStats(t *testing.T) {
	s := NewSolver()
	n := logic.NewIntVar("n", 0, 30)
	m := logic.NewIntVar("m", 0, 30)
	mustAssert(t, s, logic.Eq(logic.Add(n, m), logic.NewInt(30)))
	mustAssert(t, s, logic.Gt(n, m))
	mustSolve(t, s, sat.Sat)
	if s.NumSATVars() == 0 || s.NumSATClauses() == 0 {
		t.Fatal("SAT-level sizes not reported")
	}
	if s.Stats().Propagations == 0 {
		t.Fatal("stats not wired through")
	}
}

func TestCoreEmptyWithoutFailingSolve(t *testing.T) {
	s := NewSolver()
	if core := s.Core(); len(core) != 0 {
		t.Fatalf("Core before any failing solve = %v", core)
	}
	n := logic.NewIntVar("n", 0, 3)
	s.Declare(n)
	mustSolve(t, s, sat.Sat)
	if core := s.Core(); len(core) != 0 {
		t.Fatalf("Core after Sat = %v", core)
	}
}

func TestIteNested(t *testing.T) {
	// Nested ite over enums: encoder must thread value lists through.
	color := logic.NewEnumSort("C7", "r", "g", "b")
	c := logic.NewEnumVar("c", color)
	x := logic.NewBoolVar("x")
	y := logic.NewBoolVar("y")
	pick := logic.Ite(x,
		logic.Ite(y, logic.NewEnum(color, "r"), logic.NewEnum(color, "g")),
		logic.NewEnum(color, "b"))
	s := NewSolver()
	mustAssert(t, s, logic.Eq(c, pick))
	mustAssert(t, s, logic.Eq(c, logic.NewEnum(color, "g")))
	mustSolve(t, s, sat.Sat)
	m, err := s.Model()
	if err != nil {
		t.Fatal(err)
	}
	if !m["x"].B || m["y"].B {
		t.Fatalf("model %v should pick x=true y=false", m)
	}
}

func TestNegativeDomains(t *testing.T) {
	s := NewSolver()
	n := logic.NewIntVar("n", -5, 5)
	mustAssert(t, s, logic.Lt(n, logic.NewInt(-2)))
	mustSolve(t, s, sat.Sat)
	m, err := s.Model()
	if err != nil {
		t.Fatal(err)
	}
	if m["n"].I >= -2 || m["n"].I < -5 {
		t.Fatalf("n = %d", m["n"].I)
	}
	// Sub crossing zero.
	mustAssert(t, s, logic.Eq(logic.Sub(n, logic.NewInt(-5)), logic.NewInt(1)))
	mustSolve(t, s, sat.Sat)
	m, _ = s.Model()
	if m["n"].I != -4 {
		t.Fatalf("n = %d, want -4", m["n"].I)
	}
}
