package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/logic"
	"repro/internal/sat"
	"repro/internal/spec"
	"repro/internal/synth"
)

// ClauseCheck is the validation verdict for one subspecification
// clause against a concrete configuration.
type ClauseCheck struct {
	Req spec.Requirement
	// Holds reports whether the device's concrete configuration
	// satisfies the clause.
	Holds bool
}

// CheckSubspec validates a subspecification block against the
// router's concrete (deployed) configuration: each clause is encoded
// as a term over the router's configuration fields (via the same
// machinery lifting uses) and evaluated under the values the deployed
// configuration actually has.
//
// This implements the workflow the paper's introduction motivates:
// "validating the concrete configuration lines against the
// subspecifications ... is a more feasible task than directly
// validating against the global specifications."
func (e *Explainer) CheckSubspec(router string, block *spec.Block) ([]ClauseCheck, error) {
	return e.CheckSubspecContext(context.Background(), router, block)
}

// CheckSubspecContext is CheckSubspec with cancellation and the
// budget's deadline applied. The sketch it encodes matches the one
// ExplainAll builds, so a prior explanation of the router answers the
// encoding from the session cache.
func (e *Explainer) CheckSubspecContext(ctx context.Context, router string, block *spec.Block) ([]ClauseCheck, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	ctx, cancel := e.Opts.Budget.Apply(ctx)
	defer cancel()
	c, ok := e.Deployment[router]
	if !ok {
		return nil, fmt.Errorf("core: no deployed configuration for %q", router)
	}
	targets := AllTargets(c)
	sketch := config.Deployment{}
	for name, dc := range e.Deployment {
		sketch[name] = dc
	}
	var replaced map[string]string
	if len(targets) > 0 {
		sym, rep, err := Symbolize(c, targets)
		if err != nil {
			return nil, err
		}
		sketch[router] = sym
		replaced = rep
	}
	enc, err := e.encode(ctx, sketch, encodeKey(router, targets))
	if err != nil {
		return nil, err
	}
	assign, err := concreteAssignment(enc, c, targets)
	if err != nil {
		return nil, err
	}
	_ = replaced

	infos := enc.PathInfos()
	out := make([]ClauseCheck, 0, len(block.Reqs))
	for _, req := range block.Reqs {
		term, err := e.clauseTerm(infos, router, req)
		if err != nil {
			return nil, fmt.Errorf("core: clause %s: %w", req, err)
		}
		holds, err := logic.EvalBool(term, assign)
		if err != nil {
			return nil, fmt.Errorf("core: clause %s: %w", req, err)
		}
		out = append(out, ClauseCheck{Req: req, Holds: holds})
	}
	return out, nil
}

// NecessityCheck is the verdict of checking one subspecification
// clause against the router's SEED specification rather than its
// concrete configuration: Necessary means every completion of the
// device that satisfies the seed satisfies the clause — the necessity
// half of the lifting criterion, applied to a given block (for
// example a hand-edited or externally proposed subspecification).
type NecessityCheck struct {
	Req       spec.Requirement
	Necessary bool
}

// CheckSubspecNecessary reports, clause by clause, whether the block
// is entailed by the router's seed specification.
func (e *Explainer) CheckSubspecNecessary(router string, block *spec.Block) ([]NecessityCheck, error) {
	return e.CheckSubspecNecessaryContext(context.Background(), router, block)
}

// CheckSubspecNecessaryContext is CheckSubspecNecessary with
// cancellation and the budget's deadline applied. It encodes the same
// sketch as ExplainAll and runs on the session's pooled warm seed
// solver, so after an explanation of the router each clause costs one
// assumption-driven solve on the solver that answered the lift
// queries — no re-encoding and no fresh Tseitin translation.
func (e *Explainer) CheckSubspecNecessaryContext(ctx context.Context, router string, block *spec.Block) ([]NecessityCheck, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	ctx, cancel := e.Opts.Budget.Apply(ctx)
	defer cancel()
	c, ok := e.Deployment[router]
	if !ok {
		return nil, fmt.Errorf("core: no deployed configuration for %q", router)
	}
	targets := AllTargets(c)
	sketch := config.Deployment{}
	for name, dc := range e.Deployment {
		sketch[name] = dc
	}
	if len(targets) > 0 {
		sym, _, err := Symbolize(c, targets)
		if err != nil {
			return nil, err
		}
		sketch[router] = sym
	}
	key := encodeKey(router, targets)
	enc, err := e.encode(ctx, sketch, key)
	if err != nil {
		return nil, err
	}
	seedSolver, release, err := e.checkoutSolver("seed|"+key, seedSolverBuild(enc))
	if err != nil {
		return nil, err
	}
	defer release()
	var lats []time.Duration
	defer func() { e.addLiftQueries(lats) }()
	infos := enc.PathInfos()
	out := make([]NecessityCheck, 0, len(block.Reqs))
	for _, req := range block.Reqs {
		term, err := e.clauseTerm(infos, router, req)
		if err != nil {
			return nil, fmt.Errorf("core: clause %s: %w", req, err)
		}
		st, err := timedSolve(ctx, seedSolver, &lats, logic.Not(term))
		if err != nil {
			return nil, err
		}
		if st == sat.Unsat {
			if err := e.verifyUnsat(seedSolver); err != nil {
				return nil, err
			}
		}
		out = append(out, NecessityCheck{Req: req, Necessary: st == sat.Unsat})
	}
	return out, nil
}

// SatisfiesSubspec reports whether every clause holds.
func (e *Explainer) SatisfiesSubspec(router string, block *spec.Block) (bool, error) {
	return e.SatisfiesSubspecContext(context.Background(), router, block)
}

// SatisfiesSubspecContext is SatisfiesSubspec with cancellation.
func (e *Explainer) SatisfiesSubspecContext(ctx context.Context, router string, block *spec.Block) (bool, error) {
	checks, err := e.CheckSubspecContext(ctx, router, block)
	if err != nil {
		return false, err
	}
	for _, ch := range checks {
		if !ch.Holds {
			return false, nil
		}
	}
	return true, nil
}

// concreteAssignment maps each symbolized field's hole variable to the
// value the concrete configuration has, using the sorts the encoder
// assigned.
func concreteAssignment(enc *synth.Encoding, c *config.Config, targets []Target) (logic.Assignment, error) {
	assign := logic.Assignment{}
	for _, t := range targets {
		name := t.HoleName()
		v, ok := enc.HoleVars[name]
		if !ok {
			// The field sits on a route map no candidate path crosses;
			// it cannot influence any clause term.
			continue
		}
		val, err := concreteValue(v, c, t)
		if err != nil {
			return nil, err
		}
		assign[name] = val
	}
	return assign, nil
}

func concreteValue(v *logic.Var, c *config.Config, t Target) (logic.Value, error) {
	rm := c.RouteMaps[t.Map]
	if rm == nil {
		return logic.Value{}, fmt.Errorf("core: no route-map %q", t.Map)
	}
	var cl *config.Clause
	for _, cand := range rm.Clauses {
		if cand.Seq == t.Seq {
			cl = cand
		}
	}
	if cl == nil {
		return logic.Value{}, fmt.Errorf("core: no clause %d in %q", t.Seq, t.Map)
	}
	switch t.Field {
	case FieldAction:
		return logic.EnumValue(v.S, cl.Action.String()), nil
	case FieldMatch:
		m := cl.Matches[t.Index]
		switch m.Kind {
		case config.MatchPrefixList:
			pl := c.PrefixLists[m.PrefixList]
			if pl == nil || len(pl.Entries) != 1 || pl.Entries[0].Action != config.Permit {
				return logic.Value{}, fmt.Errorf("core: prefix-list %q is not a single-permit list; cannot map to the encoding", m.PrefixList)
			}
			return logic.EnumValue(v.S, pl.Entries[0].Prefix.String()), nil
		case config.MatchCommunity:
			return logic.EnumValue(v.S, "c"+m.Community.String()), nil
		case config.MatchNextHopIs:
			return logic.EnumValue(v.S, m.NextHop), nil
		}
	case FieldSet:
		s := cl.Sets[t.Index]
		switch s.Kind {
		case config.SetLocalPref:
			rank, err := synth.EncodeLP(s.LocalPref)
			if err != nil {
				return logic.Value{}, err
			}
			return logic.IntValue(rank), nil
		case config.SetCommunity:
			return logic.EnumValue(v.S, "c"+s.Community.String()), nil
		case config.SetMED:
			if s.MED < 0 || int64(s.MED) > synth.LPRankHi {
				return logic.Value{}, fmt.Errorf("core: MED %d outside the encoded domain", s.MED)
			}
			return logic.IntValue(int64(s.MED)), nil
		case config.SetNextHopIP:
			if _, ok := v.S.ValueIndex(s.NextHopIP); !ok {
				return logic.Value{}, fmt.Errorf("core: next-hop %q outside the encoded vocabulary", s.NextHopIP)
			}
			return logic.EnumValue(v.S, s.NextHopIP), nil
		}
	}
	return logic.Value{}, fmt.Errorf("core: unsupported field %v", t.Field)
}

// FormatChecks renders clause checks for CLI output.
func FormatChecks(checks []ClauseCheck) string {
	var sb strings.Builder
	for _, ch := range checks {
		mark := "ok  "
		if !ch.Holds {
			mark = "FAIL"
		}
		fmt.Fprintf(&sb, "%s %s\n", mark, ch.Req)
	}
	return sb.String()
}
