// Solver reuse: guarded (retractable) assertions and warm clones.
//
// The explanation pipeline issues dozens of near-identical queries per
// router — vacuity, necessity, sufficiency — over one seed encoding.
// Rebuilding a solver per query throws away the Tseitin encoding,
// learnt clauses, saved phases, and branching activity every time.
// The two primitives here let one solver serve a whole query family:
//
//   - AssertGuarded/Retract scope a constraint to part of a solver's
//     lifetime without ever deleting clauses, so everything the solver
//     learns stays sound.
//   - Clone snapshots a warm solver so each worker of a parallel
//     candidate sweep starts with the shared state instead of cold.
package smt

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/sat"
)

// Guard names one retractable assertion. Guards are handed out by
// AssertGuarded and are only meaningful on the solver (or clones of
// the solver) that issued them.
type Guard struct {
	lit sat.Lit
}

// AssertGuarded adds the Bool-sorted constraint t under a fresh guard:
// the emitted clause is (guard -> t), and the guard literal is assumed
// by every Solve until Retract is called, so the constraint is in
// force exactly like a plain Assert — but removably.
//
// Because retraction asserts the guard's negation instead of deleting
// the clause, the clause database only ever grows; every clause the
// solver learns while the guard is active remains a consequence of
// the database and stays sound after retraction. This is what makes
// it safe to keep one warm solver across query families that need
// temporary constraints (the lift stage's sufficiency enumeration).
func (s *Solver) AssertGuarded(t logic.Term) (Guard, error) {
	if !t.Sort().IsBool() {
		return Guard{}, fmt.Errorf("smt: asserting term of sort %v", t.Sort())
	}
	l, err := s.litOf(t)
	if err != nil {
		return Guard{}, err
	}
	g := sat.PosLit(s.newSatVar())
	s.addSatClause(g.Neg(), l)
	s.guards = append(s.guards, g)
	return Guard{lit: g}, nil
}

// Retract permanently disables a guarded assertion: the guard's
// negation is asserted (satisfying the guarded clause forever) and the
// guard stops being assumed. Retracting a guard that is not active is
// a no-op beyond the unit assertion, so retracting twice is harmless.
func (s *Solver) Retract(g Guard) {
	s.addSatClause(g.lit.Neg())
	for i, l := range s.guards {
		if l == g.lit {
			s.guards = append(s.guards[:i], s.guards[i+1:]...)
			break
		}
	}
}

// ActiveGuards reports how many guarded assertions are currently in
// force.
func (s *Solver) ActiveGuards() int { return len(s.guards) }

// Clone returns a warm, independent copy of the solver: the underlying
// SAT state (problem clauses, learnt clauses, activity, phases) is
// snapshotted via sat.Solver.Clone, and the encoding layer — declared
// variables, Tseitin memo tables, active guards — is carried over so
// the clone answers repeat queries without re-encoding anything.
//
// The variable encodings and value lists are shared by pointer: they
// are immutable after construction, and the literals they hold are
// valid in the cloned SAT solver because cloning preserves variable
// numbering. The interner is shared too (it is concurrency-safe).
// Everything mutable is copied, so original and clone may afterwards
// be driven by different goroutines — each individually still being
// non-concurrency-safe.
// A clone carries the portfolio configuration but not the team itself:
// it snapshots worker 0 (the base, which holds every problem clause)
// and rebuilds its own diversified team lazily at its first solve.
func (s *Solver) Clone() *Solver {
	c := &Solver{
		sat:        s.sat.Clone(),
		satWorkers: s.satWorkers,
		in:         s.in,
		vars:       make(map[string]*logic.Var, len(s.vars)),
		enc:        make(map[string]*varEncoding, len(s.enc)),
		boolMemo:   make(map[logic.Term]sat.Lit, len(s.boolMemo)),
		valMemo:    make(map[logic.Term]*valueList, len(s.valMemo)),
		litTrue:    s.litTrue,
		litFalse:   s.litFalse,
		asserted:   append([]logic.Term(nil), s.asserted...),
		guards:     append([]sat.Lit(nil), s.guards...),
	}
	for k, v := range s.vars {
		c.vars[k] = v
	}
	for k, v := range s.enc {
		c.enc[k] = v
	}
	for k, v := range s.boolMemo {
		c.boolMemo[k] = v
	}
	for k, v := range s.valMemo {
		c.valMemo[k] = v
	}
	return c
}
