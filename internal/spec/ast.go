// Package spec implements the path-requirement specification language
// the paper adopts from NetComplete for global intents and reuses,
// unchanged, for per-device subspecifications ("we use the same
// language for subspecifications as for the global specification").
//
// The surface syntax follows the paper's figures:
//
//	// No transit traffic (Figure 1a)
//	Req1 {
//	    !(P1->...->P2)
//	    !(P2->...->P1)
//	}
//
//	// Path preference for customer to D1 (Figure 3)
//	Req2 {
//	    (C->R3->R1->P1->...->D1)
//	    >> (C->R3->R2->P2->...->D1)
//	}
//
//	// Subspecification at R3 (Figure 4)
//	R3 {
//	    preference {
//	        (R3->R1->P1->...->D1) >> (R3->R2->P2->...->D1)
//	    }
//	    !(R3->R1->R2->P2->...->D1)
//	    !(R3->R2->R1->P1->...->D1)
//	}
//
// A block header may carry an interface scope, as in Figure 5's
// "R2 to P2 { ... }".
package spec

import "strings"

// Wildcard is the path element that matches any (possibly empty)
// sequence of nodes, written "..." in the surface syntax.
const Wildcard = "..."

// Path is a pattern over network nodes: a sequence of node names and
// wildcards. A concrete path (no wildcards) denotes itself; wildcards
// match zero or more intermediate nodes.
type Path []string

// NewPath builds a path pattern from elements.
func NewPath(elems ...string) Path { return Path(elems) }

// String renders the path in surface syntax, e.g. "P1->...->P2".
func (p Path) String() string { return strings.Join(p, "->") }

// IsConcrete reports whether the path contains no wildcards.
func (p Path) IsConcrete() bool {
	for _, e := range p {
		if e == Wildcard {
			return false
		}
	}
	return true
}

// First returns the first non-wildcard element, or "".
func (p Path) First() string {
	for _, e := range p {
		if e != Wildcard {
			return e
		}
	}
	return ""
}

// Last returns the last non-wildcard element, or "".
func (p Path) Last() string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] != Wildcard {
			return p[i]
		}
	}
	return ""
}

// Equal reports element-wise equality.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Nodes returns the distinct non-wildcard node names in order of first
// appearance.
func (p Path) Nodes() []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range p {
		if e != Wildcard && !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	return out
}

// Requirement is one clause of a specification block: either a
// forbidden path or an ordered path preference.
type Requirement interface {
	// String renders the requirement in surface syntax.
	String() string
	// Mentions reports whether the requirement involves the node.
	Mentions(node string) bool

	isRequirement()
}

// Forbid states that no traffic may follow any path matching the
// pattern: "!(P1->...->P2)".
type Forbid struct {
	Path Path
}

// String implements Requirement.
func (f *Forbid) String() string { return "!(" + f.Path.String() + ")" }

// Mentions implements Requirement.
func (f *Forbid) Mentions(node string) bool { return pathMentions(f.Path, node) }

func (f *Forbid) isRequirement() {}

// Allow states that traffic from the pattern's first node must reach
// its last node along a matching path: "+(P1->...->C)". It is the
// requirement the administrator adds at the end of the paper's
// Scenario 1 ("allow routes from Provider 1 to the customer network").
type Allow struct {
	Path Path
}

// String implements Requirement.
func (a *Allow) String() string { return "+(" + a.Path.String() + ")" }

// Mentions implements Requirement.
func (a *Allow) Mentions(node string) bool { return pathMentions(a.Path, node) }

func (a *Allow) isRequirement() {}

// Preference states an ordered preference over paths toward a common
// destination: "(p1) >> (p2) >> (p3)" means traffic follows the first
// available path in the list.
type Preference struct {
	Paths []Path
}

// String implements Requirement.
func (p *Preference) String() string {
	parts := make([]string, len(p.Paths))
	for i, path := range p.Paths {
		parts[i] = "(" + path.String() + ")"
	}
	return strings.Join(parts, " >> ")
}

// Mentions implements Requirement.
func (p *Preference) Mentions(node string) bool {
	for _, path := range p.Paths {
		if pathMentions(path, node) {
			return true
		}
	}
	return false
}

func (p *Preference) isRequirement() {}

func pathMentions(p Path, node string) bool {
	for _, e := range p {
		if e == node {
			return true
		}
	}
	return false
}

// Block is one named specification block. For global intents the name
// is a requirement label ("Req1"); for subspecifications it is the
// device name, optionally scoped to a peer interface ("R2 to P2").
type Block struct {
	Name string
	// Scope is the peer of the interface the block is scoped to, or ""
	// for a whole-device or global block.
	Scope string
	Reqs  []Requirement
}

// Title renders the block header.
func (b *Block) Title() string {
	if b.Scope != "" {
		return b.Name + " to " + b.Scope
	}
	return b.Name
}

// Allows returns the allow requirements in order.
func (b *Block) Allows() []*Allow {
	var out []*Allow
	for _, r := range b.Reqs {
		if a, ok := r.(*Allow); ok {
			out = append(out, a)
		}
	}
	return out
}

// Forbids returns the forbid requirements in order.
func (b *Block) Forbids() []*Forbid {
	var out []*Forbid
	for _, r := range b.Reqs {
		if f, ok := r.(*Forbid); ok {
			out = append(out, f)
		}
	}
	return out
}

// Preferences returns the preference requirements in order.
func (b *Block) Preferences() []*Preference {
	var out []*Preference
	for _, r := range b.Reqs {
		if p, ok := r.(*Preference); ok {
			out = append(out, p)
		}
	}
	return out
}

// IsEmpty reports whether the block has no requirements — the "R3 can
// do anything" case from the paper's Scenario 3.
func (b *Block) IsEmpty() bool { return len(b.Reqs) == 0 }

// Spec is a sequence of blocks: a whole specification document.
type Spec struct {
	Blocks []*Block
}

// Block returns the block with the given name (ignoring scope), or
// nil.
func (s *Spec) Block(name string) *Block {
	for _, b := range s.Blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// Requirements returns all requirements of all blocks, flattened.
func (s *Spec) Requirements() []Requirement {
	var out []Requirement
	for _, b := range s.Blocks {
		out = append(out, b.Reqs...)
	}
	return out
}

// Nodes returns the distinct node names mentioned anywhere in the
// spec, in order of first appearance.
func (s *Spec) Nodes() []string {
	seen := map[string]bool{}
	var out []string
	add := func(p Path) {
		for _, n := range p.Nodes() {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	for _, b := range s.Blocks {
		for _, r := range b.Reqs {
			switch q := r.(type) {
			case *Forbid:
				add(q.Path)
			case *Allow:
				add(q.Path)
			case *Preference:
				for _, p := range q.Paths {
					add(p)
				}
			}
		}
	}
	return out
}
