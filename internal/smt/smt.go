// Package smt decides formulas of the internal/logic term language by
// reduction to propositional satisfiability (internal/sat).
//
// The logic fragment emitted by the network synthesizer is finite
// domain: every integer variable carries an inclusive range and every
// enum variable ranges over a declared value set. The encoder therefore
// represents every non-boolean term as a "value list" — the finite set
// of values the term can take, each guarded by a propositional literal,
// with an exactly-one invariant — and bit-blasts boolean structure with
// the Tseitin transformation. This mirrors what Z3 ends up doing on
// NetComplete's encodings, at laptop scale and with zero dependencies.
//
// Usage:
//
//	s := smt.NewSolver()
//	s.Assert(f)                  // f : Bool-sorted logic.Term
//	st, err := s.Solve()         // Sat / Unsat
//	m, err := s.Model()          // logic.Assignment on Sat
//
// Solve accepts assumption terms; when the result is Unsat under
// assumptions, Core returns an unsatisfiable subset of them.
package smt

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/drat"
	"repro/internal/logic"
	"repro/internal/sat"
)

// MaxValueListSize caps the size of any value list the encoder will
// build. Arithmetic over two variables multiplies domains, so the cap
// guards against accidentally exponential encodings; hitting it is
// reported as an error rather than an OOM.
const MaxValueListSize = 1 << 14

// Solver encodes and decides logic terms.
type Solver struct {
	// sat is the base SAT solver every clause is encoded into. With
	// portfolio mode off it runs every search; with it on it becomes
	// worker 0 of the team below.
	sat *sat.Solver

	// satWorkers is the configured team size (WithSatWorkers); team is
	// the racing portfolio, built lazily at the first solve so the seed
	// encoding is cloned once instead of fanned out clause by clause.
	// All reads and writes go through the backend helpers in
	// portfolio.go, never through sat/team directly past this point.
	satWorkers int
	team       *sat.Portfolio

	// in canonicalizes every term entering the solver, so the memo
	// tables below can key directly on the canonical pointer.
	in *logic.Interner

	// declared variables by name.
	vars map[string]*logic.Var
	enc  map[string]*varEncoding

	// Tseitin memo tables keyed by canonical (interned) term pointer:
	// a memo probe is one map lookup, with no structural hashing or
	// deep-equality scan.
	boolMemo map[logic.Term]sat.Lit
	valMemo  map[logic.Term]*valueList

	litTrue  sat.Lit // a literal constrained true
	litFalse sat.Lit

	asserted []logic.Term

	// guards holds the literals of the active (not yet retracted)
	// guarded assertions, in creation order; SolveContext assumes them
	// all, so guarded constraints are in force exactly while active.
	guards []sat.Lit

	// assumption bookkeeping for core extraction.
	lastAssumed []logic.Term
	lastLits    []sat.Lit

	// lastStatus remembers the outcome of the most recent solve so the
	// proof layer can refuse to "verify" a verdict that never happened.
	lastStatus sat.Status

	// chks incrementally re-validates proof traces (see proof.go), one
	// checker per portfolio worker keyed by worker index (0 without a
	// team): each worker's trace is self-contained, so each needs its
	// own cursor into it. Lazily (re)built, and deliberately not
	// carried by Clone — a clone re-replays its forked trace from the
	// start on first verification.
	chks       map[int]*drat.Checker
	chkCursors map[int]int

	// busy guards against overlapping SolveContext calls: a Solver is
	// not safe for concurrent use, and the per-worker-clone discipline
	// of the lift stage makes accidental sharing an easy bug to write
	// and a hard one to see. The CAS costs nothing per solve and turns
	// a silent data race into a deterministic panic.
	busy int32
}

// varEncoding is the propositional encoding of one declared variable.
type varEncoding struct {
	v *logic.Var
	// boolLit is set for Bool variables.
	boolLit sat.Lit
	// vl is set for Int and Enum variables.
	vl *valueList
}

// valueList represents a non-boolean term as its finite value set.
// Exactly one of lits is true in any model; vals[i] is the term's value
// when lits[i] holds. For enum-sorted terms vals holds value *indices*
// into the sort's Values slice.
type valueList struct {
	sort *logic.Sort
	vals []int64
	lits []sat.Lit
}

// Option configures a Solver at construction time.
type Option func(*Solver)

// WithProof attaches a DRAT-style proof trace to the underlying SAT
// solver. Every clause the encoder emits and every lemma the solver
// derives is recorded, so Unsat verdicts can be independently
// re-validated (VerifyLastUnsat) and cores minimized against the
// checker (CheckedCore). Logging must be requested at construction:
// the trace has to contain the very first clause, or the checker could
// not reproduce any derivation.
func WithProof() Option {
	return func(s *Solver) {
		if err := s.sat.SetProof(sat.NewTrace()); err != nil {
			// The solver is pristine here by construction.
			panic(err)
		}
	}
}

// NewSolver creates an empty solver.
func NewSolver(opts ...Option) *Solver {
	s := &Solver{
		sat:      sat.NewSolver(),
		in:       logic.Default(),
		vars:     make(map[string]*logic.Var),
		enc:      make(map[string]*varEncoding),
		boolMemo: make(map[logic.Term]sat.Lit),
		valMemo:  make(map[logic.Term]*valueList),
	}
	for _, o := range opts {
		o(s)
	}
	vt := s.sat.NewVar()
	s.litTrue = sat.PosLit(vt)
	s.litFalse = sat.NegLit(vt)
	s.sat.AddClause(s.litTrue)
	return s
}

// Stats exposes the underlying SAT solver statistics. In portfolio
// mode this is the team-wide sum (every worker's search effort), in
// the single-solver Stats shape so harvest arithmetic (Stats.Sub
// checkpoints) keeps working unchanged.
func (s *Solver) Stats() sat.Stats {
	if s.team != nil {
		return s.team.StatsSum()
	}
	return s.sat.Stats
}

// UseInterner directs the solver to canonicalize incoming terms
// through in instead of the package-default interner. Call before the
// first Assert/Declare — the memo tables key on canonical pointers, so
// switching universes mid-stream would silently miss earlier entries.
func (s *Solver) UseInterner(in *logic.Interner) {
	if in != nil {
		s.in = in
	}
}

// SetConflictBudget bounds the number of conflicts any single Solve
// call may spend before coming back Unknown. Zero or negative removes
// the bound. This is the SAT-level half of an engine.Budget. In
// portfolio mode every worker gets the budget (each search is bounded
// individually; the race returns Unknown when all workers exhaust it).
func (s *Solver) SetConflictBudget(n int64) {
	if s.team != nil {
		s.team.SetConflictBudget(n)
		return
	}
	s.sat.ConflictBudget = n
}

// NumSATVars reports how many propositional variables the encoding has
// allocated so far.
func (s *Solver) NumSATVars() int { return s.sat.NumVars() }

// NumSATClauses reports how many propositional clauses the encoding
// has emitted so far.
func (s *Solver) NumSATClauses() int { return s.sat.NumClauses() }

// Declare registers a variable. Declaring is optional — variables are
// auto-declared on first use — but declaring up front makes Model
// include variables that appear in no asserted constraint. Redeclaring
// a name with a different sort or domain is an error.
func (s *Solver) Declare(v *logic.Var) error {
	if old, ok := s.vars[v.Name]; ok {
		if !logic.SameSort(old.S, v.S) || old.Lo != v.Lo || old.Hi != v.Hi {
			return fmt.Errorf("smt: variable %q redeclared with different sort or domain", v.Name)
		}
		return nil
	}
	s.vars[v.Name] = v
	e := &varEncoding{v: v}
	switch {
	case v.S.IsBool():
		e.boolLit = sat.PosLit(s.newSatVar())
	case v.S.IsInt():
		n := v.Hi - v.Lo + 1
		if n > MaxValueListSize {
			return fmt.Errorf("smt: domain of %q has %d values, exceeding the cap of %d", v.Name, n, MaxValueListSize)
		}
		vals := make([]int64, 0, n)
		for x := v.Lo; x <= v.Hi; x++ {
			vals = append(vals, x)
		}
		e.vl = s.freshValueList(logic.Int, vals)
	case v.S.IsEnum():
		vals := make([]int64, len(v.S.Values))
		for i := range vals {
			vals[i] = int64(i)
		}
		e.vl = s.freshValueList(v.S, vals)
	default:
		return fmt.Errorf("smt: variable %q has unsupported sort %v", v.Name, v.S)
	}
	s.enc[v.Name] = e
	return nil
}

// freshValueList allocates one selector literal per value and
// constrains exactly one of them to hold.
func (s *Solver) freshValueList(sort *logic.Sort, vals []int64) *valueList {
	lits := make([]sat.Lit, len(vals))
	for i := range lits {
		lits[i] = sat.PosLit(s.newSatVar())
	}
	s.exactlyOne(lits)
	return &valueList{sort: sort, vals: vals, lits: lits}
}

// exactlyOne emits at-least-one and at-most-one constraints. AMO uses
// the pairwise encoding below 6 literals and the sequential (ladder)
// encoding above, which stays linear in clauses and auxiliaries.
func (s *Solver) exactlyOne(lits []sat.Lit) {
	s.addSatClause(lits...)
	s.atMostOne(lits)
}

func (s *Solver) atMostOne(lits []sat.Lit) {
	if len(lits) <= 1 {
		return
	}
	if len(lits) <= 6 {
		for i := 0; i < len(lits); i++ {
			for j := i + 1; j < len(lits); j++ {
				s.addSatClause(lits[i].Neg(), lits[j].Neg())
			}
		}
		return
	}
	// Sequential encoding: aux[i] means "some lit among 0..i is true".
	// The ladder auxiliaries are pure plumbing — the encoder never
	// refers to them again (unlike Tseitin literals, which are memoized
	// and reused) — so they are fair game for bounded variable
	// elimination during inprocessing.
	aux := make([]sat.Lit, len(lits)-1)
	for i := range aux {
		v := s.newSatVar()
		aux[i] = sat.PosLit(v)
		s.markSatEliminable(v)
	}
	s.addSatClause(lits[0].Neg(), aux[0])
	for i := 1; i < len(lits)-1; i++ {
		s.addSatClause(lits[i].Neg(), aux[i])
		s.addSatClause(aux[i-1].Neg(), aux[i])
		s.addSatClause(lits[i].Neg(), aux[i-1].Neg())
	}
	s.addSatClause(lits[len(lits)-1].Neg(), aux[len(lits)-2].Neg())
}

// Assert adds a Bool-sorted constraint to the solver.
func (s *Solver) Assert(t logic.Term) error {
	if !t.Sort().IsBool() {
		return fmt.Errorf("smt: asserting term of sort %v", t.Sort())
	}
	l, err := s.litOf(t)
	if err != nil {
		return err
	}
	s.addSatClause(l)
	s.asserted = append(s.asserted, t)
	return nil
}

// AssertAll asserts every term.
func (s *Solver) AssertAll(ts []logic.Term) error {
	for _, t := range ts {
		if err := s.Assert(t); err != nil {
			return err
		}
	}
	return nil
}

// Solve decides the asserted constraints under the given assumption
// terms. On Unsat with assumptions, Core identifies a responsible
// subset.
func (s *Solver) Solve(assumptions ...logic.Term) (sat.Status, error) {
	return s.SolveContext(context.Background(), assumptions...)
}

// SolveContext is Solve with cancellation: the context is threaded
// into the underlying SAT search, so a cancelled or expired context
// aborts a running solve promptly. On cancellation the status is
// Unknown and the error is the context's error.
//
// Active guarded assertions (AssertGuarded) are assumed automatically,
// before the caller's assumptions.
//
// A Solver is not safe for concurrent use: overlapping SolveContext
// calls panic deterministically rather than racing (Clone one solver
// per worker instead).
func (s *Solver) SolveContext(ctx context.Context, assumptions ...logic.Term) (sat.Status, error) {
	if !atomic.CompareAndSwapInt32(&s.busy, 0, 1) {
		panic("smt: overlapping SolveContext calls on one Solver; a Solver is not concurrency-safe — Clone one per worker")
	}
	defer atomic.StoreInt32(&s.busy, 0)
	s.lastAssumed = assumptions
	s.lastLits = s.lastLits[:0]
	// Reset the recorded verdict before anything can fail: an early
	// error return below must not leave a stale Unsat from a previous
	// solve paired with the new (inconsistent) assumption state, where
	// Core()/VerifyLastUnsat would mis-attribute the old verdict.
	s.lastStatus = sat.Unknown
	for _, a := range assumptions {
		if !a.Sort().IsBool() {
			return sat.Unknown, fmt.Errorf("smt: assumption of sort %v", a.Sort())
		}
		l, err := s.litOf(a)
		if err != nil {
			return sat.Unknown, err
		}
		s.lastLits = append(s.lastLits, l)
	}
	var st sat.Status
	var err error
	if len(s.guards) == 0 {
		st, err = s.satSolveContext(ctx, s.lastLits...)
	} else {
		all := make([]sat.Lit, 0, len(s.guards)+len(s.lastLits))
		all = append(all, s.guards...)
		all = append(all, s.lastLits...)
		st, err = s.satSolveContext(ctx, all...)
	}
	s.lastStatus = st
	return st, err
}

// Core returns assumption terms responsible for the last Unsat result,
// mapped back from the SAT-level core. The result is a subset of the
// assumptions passed to the failing Solve call, without duplicates:
// the same term may be passed as an assumption more than once (or two
// distinct assumption terms may encode to one literal), and a core
// should name each culprit once.
func (s *Solver) Core() []logic.Term {
	core := s.satCore()
	inCore := make(map[sat.Lit]bool, len(core))
	for _, c := range core {
		inCore[c] = true
	}
	seen := make(map[logic.Term]bool, len(core))
	var out []logic.Term
	for i, l := range s.lastLits {
		if inCore[l] && !seen[s.lastAssumed[i]] {
			seen[s.lastAssumed[i]] = true
			out = append(out, s.lastAssumed[i])
		}
	}
	return out
}

// Model extracts an assignment for every declared variable. Call only
// after Solve returned Sat.
func (s *Solver) Model() (logic.Assignment, error) {
	m := logic.Assignment{}
	for name, e := range s.enc {
		v := e.v
		switch {
		case v.S.IsBool():
			m[name] = logic.BoolValue(s.satValueLit(e.boolLit) == sat.LTrue)
		default:
			found := false
			for i, l := range e.vl.lits {
				if s.satValueLit(l) == sat.LTrue {
					if v.S.IsInt() {
						m[name] = logic.IntValue(e.vl.vals[i])
					} else {
						m[name] = logic.EnumValue(v.S, v.S.Values[e.vl.vals[i]])
					}
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("smt: no value selected for %q in model", name)
			}
		}
	}
	return m, nil
}

// Valid reports whether t is valid (true under every assignment)
// given the asserted constraints: it checks that asserted && !t is
// unsatisfiable. Asserted constraints are left untouched.
func (s *Solver) Valid(t logic.Term) (bool, error) {
	st, err := s.Solve(logic.Not(t))
	if err != nil {
		return false, err
	}
	return st == sat.Unsat, nil
}

// Satisfiable reports whether asserted && t has a model.
func (s *Solver) Satisfiable(t logic.Term) (bool, error) {
	st, err := s.Solve(t)
	if err != nil {
		return false, err
	}
	return st == sat.Sat, nil
}
