package engine_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/logic"
	"repro/internal/sat"
	"repro/internal/scenarios"
	"repro/internal/smt"
	"repro/internal/synth"
)

func newSession(t *testing.T) *engine.Session {
	t.Helper()
	sc := scenarios.Scenario1()
	res, err := synth.Synthesize(sc.Net, sc.Sketch, sc.Requirements(), synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return engine.NewSession(sc.Net, sc.Requirements(), res.Deployment, synth.DefaultOptions())
}

func TestSessionEncodeCaches(t *testing.T) {
	s := newSession(t)
	sc := scenarios.Scenario1()
	res, err := synth.Synthesize(sc.Net, sc.Sketch, sc.Requirements(), synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	enc1, err := s.Encode(ctx, res.Deployment, "k")
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := s.Encode(ctx, res.Deployment, "k")
	if err != nil {
		t.Fatal(err)
	}
	if enc1 != enc2 {
		t.Error("same key returned distinct encodings")
	}
	st := s.Stats()
	if st.BaseEncodes != 1 || st.Encodes != 1 || st.CacheHits != 1 {
		t.Errorf("stats = base %d, encodes %d, hits %d; want 1, 1, 1",
			st.BaseEncodes, st.Encodes, st.CacheHits)
	}

	// A different key encodes again but shares the base.
	if _, err := s.Encode(ctx, res.Deployment, "k2"); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.BaseEncodes != 1 || st.Encodes != 2 {
		t.Errorf("after second key: base %d, encodes %d; want 1, 2", st.BaseEncodes, st.Encodes)
	}
	if st.ReusedCandidates == 0 {
		t.Error("derived encode of the unchanged deployment reused no candidates")
	}
}

func TestSessionSingleFlight(t *testing.T) {
	s := newSession(t)
	sc := scenarios.Scenario1()
	res, err := synth.Synthesize(sc.Net, sc.Sketch, sc.Requirements(), synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Encode(context.Background(), res.Deployment, "shared")
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	st := s.Stats()
	if st.BaseEncodes != 1 {
		t.Errorf("BaseEncodes = %d under concurrency, want 1", st.BaseEncodes)
	}
	if st.Encodes != 1 {
		t.Errorf("Encodes = %d for one shared key, want 1 (single flight)", st.Encodes)
	}
	if st.CacheHits != n-1 {
		t.Errorf("CacheHits = %d, want %d", st.CacheHits, n-1)
	}
}

func TestSessionScopedEncoding(t *testing.T) {
	sc := scenarios.Scenario1()
	res, err := synth.Synthesize(sc.Net, sc.Sketch, sc.Requirements(), synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Build a per-router symbolization for each sketchable router.
	sketches := map[string]config.Deployment{}
	for name, sym := range sc.Sketch {
		if sym.Concrete() {
			continue
		}
		sk := config.Deployment{}
		for n, c := range res.Deployment {
			sk[n] = c
		}
		sk[name] = sym
		sketches[name] = sk
	}
	if len(sketches) == 0 {
		t.Fatal("scenario1 has no symbolizable routers")
	}

	scopedSess := engine.NewSession(sc.Net, sc.Requirements(), res.Deployment, synth.DefaultOptions())
	if sb := scopedSess.PrepareScoped(ctx); sb == nil {
		t.Fatal("PrepareScoped returned nil for a concrete deployment")
	}
	coldSess := engine.NewSession(sc.Net, sc.Requirements(), res.Deployment, synth.DefaultOptions())
	coldSess.DisableScopedEncoding()

	for name, sk := range sketches {
		scoped, err := scopedSess.Encode(ctx, sk, "r|"+name)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := coldSess.Encode(ctx, sk, "r|"+name)
		if err != nil {
			t.Fatal(err)
		}
		if len(cold.Constraints) != len(scoped.Constraints) {
			t.Fatalf("%s: %d cold vs %d scoped constraints", name, len(cold.Constraints), len(scoped.Constraints))
		}
		for i := range cold.Constraints {
			if cold.Constraints[i] != scoped.Constraints[i] {
				t.Fatalf("%s: constraint %d differs", name, i)
			}
		}
	}

	st := scopedSess.Stats()
	if st.ScopedEncodes != len(sketches) {
		t.Errorf("ScopedEncodes = %d, want %d", st.ScopedEncodes, len(sketches))
	}
	if st.ScopedGroupsCopied == 0 {
		t.Error("scoped encodes copied no constraint groups")
	}
	// PrepareScoped counts as a base-level encode; it runs once.
	if st.BaseEncodes != 2 {
		t.Errorf("BaseEncodes = %d, want 2 (plain base + scoped recording)", st.BaseEncodes)
	}
	if again := scopedSess.PrepareScoped(ctx); again == nil {
		t.Fatal("second PrepareScoped returned nil")
	}
	if st := scopedSess.Stats(); st.BaseEncodes != 2 {
		t.Errorf("repeat PrepareScoped re-encoded: BaseEncodes = %d", st.BaseEncodes)
	}
	if cst := coldSess.Stats(); cst.ScopedEncodes != 0 {
		t.Errorf("disabled session recorded %d scoped encodes", cst.ScopedEncodes)
	}
}

func TestSessionCancelledEncodeNotCached(t *testing.T) {
	s := newSession(t)
	sc := scenarios.Scenario1()
	res, err := synth.Synthesize(sc.Net, sc.Sketch, sc.Requirements(), synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Encode(cancelled, res.Deployment, "k"); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Encode err = %v, want context.Canceled", err)
	}
	// The failure must not poison the key: a live context succeeds.
	if _, err := s.Encode(context.Background(), res.Deployment, "k"); err != nil {
		t.Fatalf("retry after cancellation failed: %v", err)
	}
}

func TestBudgetApply(t *testing.T) {
	var b engine.Budget
	ctx, cancel := b.Apply(context.Background())
	if _, ok := ctx.Deadline(); ok {
		t.Error("zero budget must not set a deadline")
	}
	cancel()

	when := time.Now().Add(time.Hour)
	b = engine.Budget{Deadline: when}
	ctx, cancel = b.Apply(context.Background())
	defer cancel()
	if d, ok := ctx.Deadline(); !ok || !d.Equal(when) {
		t.Errorf("deadline = %v, %v; want %v", d, ok, when)
	}

	if got := (engine.Budget{}).ModelCap(); got != engine.DefaultMaxModels {
		t.Errorf("default ModelCap = %d, want %d", got, engine.DefaultMaxModels)
	}
	if got := (engine.Budget{MaxModels: 7}).ModelCap(); got != 7 {
		t.Errorf("ModelCap = %d, want 7", got)
	}
}

func TestSessionSolverPool(t *testing.T) {
	s := newSession(t)

	if sv := s.CheckoutSolver("a"); sv != nil {
		t.Fatal("empty pool returned a solver")
	}
	built := smt.NewSolver()
	s.CheckinSolver("a", built)
	got := s.CheckoutSolver("a")
	if got != built {
		t.Fatalf("checkout returned %p, want the checked-in solver %p", got, built)
	}
	// Checkout is exclusive: the slot is empty until checkin.
	if sv := s.CheckoutSolver("a"); sv != nil {
		t.Fatal("second checkout of the same key returned a solver")
	}
	s.CheckinSolver("a", got)
	// Keys are independent.
	if sv := s.CheckoutSolver("b"); sv != nil {
		t.Fatal("foreign key hit the pool")
	}

	st := s.Stats()
	if st.WarmSolverHits != 1 {
		t.Errorf("WarmSolverHits = %d, want 1", st.WarmSolverHits)
	}
	if st.WarmSolverMisses != 3 {
		t.Errorf("WarmSolverMisses = %d, want 3", st.WarmSolverMisses)
	}
}

func TestSessionSolverPoolConcurrent(t *testing.T) {
	s := newSession(t)
	// Hammer one key from many goroutines: every checkout must be
	// exclusive (no solver handed to two goroutines at once).
	s.CheckinSolver("k", smt.NewSolver())
	var wg sync.WaitGroup
	var inUse int32
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sv := s.CheckoutSolver("k")
				if sv == nil {
					continue
				}
				if !atomic.CompareAndSwapInt32(&inUse, 0, 1) {
					t.Error("two goroutines hold the same pooled solver")
					return
				}
				atomic.StoreInt32(&inUse, 0)
				s.CheckinSolver("k", sv)
			}
		}()
	}
	wg.Wait()
}

func TestSessionLiftQueryStats(t *testing.T) {
	s := newSession(t)
	if st := s.Stats(); st.LiftQueries != 0 || st.LiftP50 != 0 || st.LiftP95 != 0 {
		t.Fatalf("zero-query stats not zero: %+v", st)
	}
	var ds []time.Duration
	for i := 1; i <= 100; i++ {
		ds = append(ds, time.Duration(i)*time.Millisecond)
	}
	s.AddLiftQueries(ds[:50])
	s.AddLiftQueries(ds[50:])
	s.AddLiftQueries(nil) // no-op
	st := s.Stats()
	if st.LiftQueries != 100 {
		t.Errorf("LiftQueries = %d, want 100", st.LiftQueries)
	}
	// Nearest-rank over 1..100ms: p50 at index 49 (50ms), p95 at 94 (95ms).
	if st.LiftP50 != 50*time.Millisecond {
		t.Errorf("LiftP50 = %v, want 50ms", st.LiftP50)
	}
	if st.LiftP95 != 95*time.Millisecond {
		t.Errorf("LiftP95 = %v, want 95ms", st.LiftP95)
	}
}

func TestSessionMergesFullSolverStats(t *testing.T) {
	s := newSession(t)
	s.AddSolverStats(sat.Stats{Solves: 2, Conflicts: 3, Propagations: 5, Decisions: 7, Learnt: 1})
	s.AddSolverStats(sat.Stats{Solves: 1, Conflicts: 1, Propagations: 1, Decisions: 1, Learnt: 1})
	st := s.Stats()
	if st.Solves != 3 || st.Conflicts != 4 || st.Propagations != 6 || st.Decisions != 8 || st.Learnt != 2 {
		t.Errorf("merged stats dropped counts: %+v", st)
	}
}

func TestSessionSharedNormCache(t *testing.T) {
	s := newSession(t)
	x := logic.NewIntVar("x", 0, 7)
	y := logic.NewIntVar("y", 0, 7)
	shared := logic.And(logic.Eq(x, logic.NewInt(3)), logic.Lt(y, logic.NewInt(5)))
	seedA := logic.And(shared, logic.NewBoolVar("p"))
	seedB := logic.And(shared, logic.NewBoolVar("q"))

	outA := s.Simplify(seedA)
	st := s.Stats()
	if st.NormCacheEntries == 0 {
		t.Fatal("first Simplify populated no normal-form cache entries")
	}
	missesAfterA := st.NormCacheMisses

	outB := s.Simplify(seedB)
	st = s.Stats()
	if st.NormCacheHits == 0 {
		t.Fatalf("second seed sharing subterms recorded no cache hits: %+v", st)
	}
	if outA == outB {
		t.Fatal("distinct seeds returned the same outcome")
	}

	// A repeat of seedA is answered by the per-seed outcome cache
	// without touching the normalizer at all.
	out2 := s.Simplify(seedA)
	if out2 != outA {
		t.Fatal("repeat seed did not reuse the cached outcome")
	}
	st = s.Stats()
	if st.SimplifyHits != 1 {
		t.Fatalf("SimplifyHits = %d, want 1", st.SimplifyHits)
	}
	if st.NormCacheMisses < missesAfterA {
		t.Fatal("NormCacheMisses went backwards")
	}
}

func TestSessionSimplifyConcurrent(t *testing.T) {
	s := newSession(t)
	x := logic.NewIntVar("x", 0, 15)
	seeds := make([]logic.Term, 16)
	for i := range seeds {
		seeds[i] = logic.And(
			logic.Eq(x, logic.NewInt(int64(i%4))),
			logic.Lt(x, logic.NewInt(int64(4+i%8))),
			logic.NewBoolVar("p"),
		)
	}
	want := make([]*engine.SimplifyOutcome, len(seeds))
	for i, seed := range seeds {
		want[i] = s.Simplify(seed)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := range seeds {
				i := (k*5 + g*3) % len(seeds)
				got := s.Simplify(seeds[i])
				if got.Simplified != want[i].Simplified {
					t.Errorf("goroutine %d seed %d: %s != %s",
						g, i, got.Simplified, want[i].Simplified)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
