package logic

import "sync"

// This file implements hash-consing for terms. An Interner maintains a
// canonical representative for every structurally distinct term; all
// package constructors route through a shared package-default interner,
// so two structurally equal terms built anywhere in the process are the
// same pointer. That gives the hot paths O(1) structural operations:
//
//   - Equal fast-paths to pointer comparison (both directions — two
//     distinct canonical pointers of the same interner are known
//     unequal without a walk);
//   - Hash returns the hash cached on the node at intern time instead
//     of re-traversing the subterm;
//   - consumers (the smt Tseitin memo, the rewrite per-pass memo) key
//     maps directly by Term, relying on pointer identity.
//
// Canonicalization is safe because terms are immutable: nothing in the
// codebase mutates a node after construction, so sharing a node between
// arbitrarily many parents — and between goroutines — cannot be
// observed. The interner's table is sharded by hash and each shard is
// mutex-guarded, so concurrent construction (for example from
// core.Report's worker pool) is safe; a node's hash/owner metadata is
// written exactly once, before the node is published through the shard
// lock, so readers of canonical nodes never race with that write.

// internShards is the number of lock shards of an Interner. Sharding
// keeps concurrent interning from the worker pool off a single mutex.
const internShards = 64

// Interner canonicalizes terms: Intern returns a pointer-identical
// representative for every structurally equal term. The zero value is
// not usable; create interners with NewInterner. Most code should use
// the package-default interner implicitly through the term
// constructors; a separate Interner provides an isolated term universe
// (for tests, or to let a bounded workload's canonical terms be
// garbage-collected by dropping the interner and every term built
// through it).
type Interner struct {
	shards [internShards]internShard
}

type internShard struct {
	mu sync.Mutex
	m  map[uint64][]Term
}

// NewInterner creates an empty interner.
func NewInterner() *Interner {
	in := &Interner{}
	for i := range in.shards {
		in.shards[i].m = make(map[uint64][]Term)
	}
	return in
}

// defaultInterner is the process-wide table the constructors intern
// through. It grows monotonically with the set of distinct terms ever
// built; see DESIGN.md ("Hash-consed terms") for the scoping
// trade-off.
var defaultInterner = NewInterner()

// Default returns the package-default interner used by the term
// constructors.
func Default() *Interner { return defaultInterner }

// Intern canonicalizes t through the package-default interner. Terms
// built by this package's constructors are already canonical, making
// this an O(1) ownership check; hand-built nodes are rebuilt
// bottom-up.
func Intern(t Term) Term { return defaultInterner.Intern(t) }

// Intern returns the canonical representative of t in this interner,
// inserting one if t is structurally new. If t is already canonical in
// this interner it is returned unchanged in O(1). The result is
// structurally Equal to t (and for interned inputs of the same
// interner, Equal if and only if pointer-identical).
func (in *Interner) Intern(t Term) Term {
	switch n := t.(type) {
	case *BoolLit:
		// The two boolean constants are global singletons shared by
		// every interner.
		if n.Val {
			return True
		}
		return False
	case *Var:
		if n.in == in {
			return n
		}
		node := n
		if n.in != nil {
			node = &Var{Name: n.Name, S: n.S, Lo: n.Lo, Hi: n.Hi}
		}
		return in.canon(node, hashVar(n)).(*Var)
	case *IntLit:
		if n.in == in {
			return n
		}
		node := n
		if n.in != nil {
			node = &IntLit{Val: n.Val}
		}
		return in.canon(node, hashInt(n.Val))
	case *EnumLit:
		if n.in == in {
			return n
		}
		node := n
		if n.in != nil {
			node = &EnumLit{S: n.S, Val: n.Val}
		}
		return in.canon(node, hashEnum(n))
	case *Apply:
		if n.in == in {
			return n
		}
		// Canonicalize the arguments first so the shallow probe in
		// canon can compare them by pointer.
		args := n.Args
		var copied []Term
		for i, a := range args {
			ca := in.Intern(a)
			if ca != a && copied == nil {
				copied = make([]Term, len(args))
				copy(copied, args[:i])
			}
			if copied != nil {
				copied[i] = ca
			}
		}
		node := n
		if copied != nil {
			node = &Apply{Op: n.Op, Args: copied}
		} else if n.in != nil {
			node = &Apply{Op: n.Op, Args: args}
		}
		return in.canon(node, hashApply(node))
	}
	return t
}

// canon looks t up in the shard for h, returning the existing
// representative or inserting t (claiming it: its cached hash and
// owner are set, and Apply argument slices are copied so later caller
// mutations of a variadic slice cannot corrupt the table). t must be
// unowned (in == nil) and, for Apply nodes, have canonical arguments.
func (in *Interner) canon(t Term, h uint64) Term {
	sh := &in.shards[h%internShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, c := range sh.m[h] {
		if shallowEqual(c, t) {
			return c
		}
	}
	switch n := t.(type) {
	case *Var:
		n.hash, n.vsig, n.in = h, varBit(n.Name), in
	case *IntLit:
		n.hash, n.in = h, in
	case *EnumLit:
		n.hash, n.in = h, in
	case *Apply:
		n.Args = append([]Term(nil), n.Args...)
		// The arguments are canonical, so their variable signatures
		// are available in O(1); the node's signature is their union.
		var vsig uint64
		for _, a := range n.Args {
			sig, _ := varSigFast(a)
			vsig |= sig
		}
		n.hash, n.vsig, n.in = h, vsig, in
	}
	sh.m[h] = append(sh.m[h], t)
	return t
}

// shallowEqual compares a canonical term c against a candidate t one
// level deep: Apply arguments compare by pointer because both sides'
// arguments are canonical in the same interner. It must decide exactly
// structural equality (Equal) for such inputs — the interning
// invariant "Equal iff pointer-identical" rests on it.
func shallowEqual(c, t Term) bool {
	switch x := c.(type) {
	case *Var:
		y, ok := t.(*Var)
		return ok && x.Name == y.Name && x.Lo == y.Lo && x.Hi == y.Hi && SameSort(x.S, y.S)
	case *IntLit:
		y, ok := t.(*IntLit)
		return ok && x.Val == y.Val
	case *EnumLit:
		y, ok := t.(*EnumLit)
		return ok && x.Val == y.Val && SameSort(x.S, y.S)
	case *Apply:
		y, ok := t.(*Apply)
		if !ok || x.Op != y.Op || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if x.Args[i] != y.Args[i] {
				return false
			}
		}
		return true
	}
	return false
}

// Size reports how many canonical terms the interner holds (for tests
// and capacity diagnostics).
func (in *Interner) Size() int {
	n := 0
	for i := range in.shards {
		sh := &in.shards[i]
		sh.mu.Lock()
		for _, bucket := range sh.m {
			n += len(bucket)
		}
		sh.mu.Unlock()
	}
	return n
}

// owner returns the interner a term is canonical in (nil for unowned
// nodes and the boolean constants).
func owner(t Term) *Interner {
	switch n := t.(type) {
	case *Var:
		return n.in
	case *IntLit:
		return n.in
	case *EnumLit:
		return n.in
	case *Apply:
		return n.in
	}
	return nil
}
