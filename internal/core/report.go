package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/spec"
)

// Report renders a whole-deployment explanation document: for every
// configured router, the seed/simplified sizes and the lifted
// subspecification — the artifact a network operator would read after
// a synthesis run (the paper's "taming complexity" workflow applied to
// every device at once).
func (e *Explainer) Report() (string, error) {
	routers := make([]string, 0, len(e.Deployment))
	for r := range e.Deployment {
		routers = append(routers, r)
	}
	sort.Strings(routers)

	// Routers are independent explanation problems: fan out. Each
	// goroutine builds its own encoder and solvers (none of the shared
	// inputs are mutated), so this is safe and embarrassingly
	// parallel.
	type outcome struct {
		ex  *Explanation
		err error
	}
	results := make([]outcome, len(routers))
	var wg sync.WaitGroup
	for i, router := range routers {
		wg.Add(1)
		go func(i int, router string) {
			defer wg.Done()
			ex, err := e.ExplainAll(router)
			results[i] = outcome{ex: ex, err: err}
		}(i, router)
	}
	wg.Wait()

	var sb strings.Builder
	sb.WriteString("EXPLANATION REPORT\n")
	sb.WriteString("==================\n\n")
	sb.WriteString("Global intent:\n")
	for _, r := range e.Reqs {
		fmt.Fprintf(&sb, "    %s\n", r)
	}
	sb.WriteString("\n")
	for i, router := range routers {
		if results[i].err != nil {
			return "", fmt.Errorf("core: explaining %s: %w", router, results[i].err)
		}
		ex := results[i].ex
		fmt.Fprintf(&sb, "--- %s ---\n", router)
		fmt.Fprintf(&sb, "seed: %d atoms over %d variables; simplified: %d atoms (%.0fx, %d passes)\n",
			ex.SeedSize, len(ex.HoleVars), ex.SimplifiedSize, ex.Reduction(), ex.Passes)
		if ex.Subspec == nil {
			sb.WriteString("(lifting disabled)\n\n")
			continue
		}
		if ex.Subspec.IsEmpty() {
			fmt.Fprintf(&sb, "%s { }   // unconstrained: %s can do anything for this intent\n\n", router, router)
			continue
		}
		sb.WriteString(spec.PrintBlock(ex.Subspec))
		if ex.SubspecComplete {
			sb.WriteString("(necessary and sufficient)\n")
		} else {
			sb.WriteString("(necessary; sufficiency not fully verified)\n")
		}
		sb.WriteString("\n")
	}
	return sb.String(), nil
}
