package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/scenarios"
)

// TestWriteReportMatchesReport pins that the streaming writer produces
// the exact bytes of the buffered report, scoped encoding on or off.
func TestWriteReportMatchesReport(t *testing.T) {
	for _, tc := range []struct {
		name string
		sc   *scenarios.Scenario
	}{
		{"scenario1", scenarios.Scenario1()},
		{"scenario2", scenarios.Scenario2()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dep := synthScenario(t, tc.sc)
			cold := newExplainer(t, tc.sc, dep, nil)
			cold.Session.DisableScopedEncoding()
			want, err := cold.Report()
			if err != nil {
				t.Fatal(err)
			}

			e := newExplainer(t, tc.sc, dep, nil)
			var sb strings.Builder
			n, err := e.WriteReport(context.Background(), &sb)
			if err != nil {
				t.Fatal(err)
			}
			if got := sb.String(); got != want {
				t.Errorf("streamed report differs from cold report.\nstreamed:\n%s\ncold:\n%s", got, want)
			}
			if n != int64(sb.Len()) {
				t.Errorf("WriteReport returned n = %d, wrote %d bytes", n, sb.Len())
			}
			if st := e.Stats(); st.ScopedEncodes == 0 {
				t.Error("streaming report performed no scoped encodes")
			}
			// The streamed run retained its report: an invisible edit is
			// answered on the fast path.
			dr, err := e.ReExplain(Delta{})
			if err != nil {
				t.Fatal(err)
			}
			if !dr.Stats.FastPath {
				t.Error("no-op ReExplain after WriteReport missed the fast path")
			}
			if dr.Report != want {
				t.Error("fast-path report after WriteReport differs")
			}
		})
	}
}

// sectionPrefix checks that got is a clean stream prefix of full: the
// header plus zero or more whole router sections, nothing else.
func sectionPrefix(t *testing.T, got, full, header string) {
	t.Helper()
	if !strings.HasPrefix(full, got) {
		t.Fatalf("output is not a prefix of the full report:\n%q", got)
	}
	if got == "" {
		return
	}
	if !strings.HasPrefix(got, header) {
		t.Fatalf("output does not start with the header:\n%q", got)
	}
	rest := full[len(got):]
	if rest != "" && !strings.HasPrefix(rest, "--- ") && len(got) > len(header) {
		t.Fatalf("output ends mid-section; next bytes %q", rest[:min(len(rest), 40)])
	}
}

// cancelAfterWriter cancels a context once it has seen a given number
// of Write calls, then keeps accepting writes (the pipeline must stop
// on its own) while recording everything.
type cancelAfterWriter struct {
	mu     sync.Mutex
	sb     strings.Builder
	writes int
	after  int
	cancel context.CancelFunc
	closed bool
}

func (w *cancelAfterWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		panic("write after WriteReport returned")
	}
	w.writes++
	if w.writes == w.after {
		w.cancel()
	}
	return w.sb.Write(p)
}

func (w *cancelAfterWriter) seal() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.closed = true
	return w.sb.String()
}

func TestWriteReportCancelledMidStream(t *testing.T) {
	sc := scenarios.Scenario3()
	dep := synthScenario(t, sc)
	e := newExplainer(t, sc, dep, nil)
	full, err := e.Report()
	if err != nil {
		t.Fatal(err)
	}
	header := e.renderHeader()

	before := runtime.NumGoroutine()
	for after := 1; after <= 2; after++ {
		ctx, cancel := context.WithCancel(context.Background())
		w := &cancelAfterWriter{after: after, cancel: cancel}
		_, err := e.WriteReport(ctx, w)
		cancel()
		got := w.seal()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("after %d writes: err = %v, want context.Canceled", after, err)
		}
		sectionPrefix(t, got, full, header)
	}
	// Every pipeline goroutine must have exited before return.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, n)
	}

	// The session is not poisoned: a fresh report still matches.
	again, err := e.Report()
	if err != nil {
		t.Fatal(err)
	}
	if again != full {
		t.Error("report after cancellation differs")
	}
}

// failingWriter errors on the write that would exceed its budget.
type failingWriter struct {
	mu     sync.Mutex
	sb     strings.Builder
	allow  int
	closed bool
}

var errSink = fmt.Errorf("sink full")

func (w *failingWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		panic("write after WriteReport returned")
	}
	if w.allow <= 0 {
		return 0, errSink
	}
	w.allow--
	return w.sb.Write(p)
}

func (w *failingWriter) seal() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.closed = true
	return w.sb.String()
}

func TestWriteReportWriterError(t *testing.T) {
	sc := scenarios.Scenario1()
	dep := synthScenario(t, sc)
	e := newExplainer(t, sc, dep, nil)
	full, err := e.Report()
	if err != nil {
		t.Fatal(err)
	}
	header := e.renderHeader()

	for allow := 0; allow <= 2; allow++ {
		w := &failingWriter{allow: allow}
		n, err := e.WriteReport(context.Background(), w)
		got := w.seal()
		if !errors.Is(err, errSink) {
			t.Fatalf("allow=%d: err = %v, want errSink", allow, err)
		}
		if n != int64(len(got)) {
			t.Errorf("allow=%d: n = %d, wrote %d", allow, n, len(got))
		}
		sectionPrefix(t, got, full, header)
	}

	// A failed stream leaves the last successful report retained.
	var sb strings.Builder
	if _, err := e.WriteReport(context.Background(), &sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != full {
		t.Error("report after writer errors differs")
	}
}
