package core

import (
	"context"
	"sort"
	"testing"

	"repro/internal/config"
	"repro/internal/scenarios"
	"repro/internal/synth"
)

// Lift-stage benchmarks. BenchmarkLiftWarm drives repeated
// whole-network explanations through ONE explainer — the usage pattern
// of iterative workflows (explain, edit, re-validate) — so every form
// of query reuse the session offers applies. BenchmarkLiftCold builds
// a fresh explainer per report, paying the full setup every time. The
// warm/cold gap isolates what reuse buys end to end.

func benchDeployment(b *testing.B, sc *scenarios.Scenario) (config.Deployment, []string) {
	b.Helper()
	res, err := synth.Synthesize(sc.Net, sc.Sketch, sc.Requirements(), synth.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	routers := make([]string, 0, len(res.Deployment))
	for name := range res.Deployment {
		routers = append(routers, name)
	}
	sort.Strings(routers)
	return res.Deployment, routers
}

func explainRouters(b *testing.B, e *Explainer, routers []string) {
	b.Helper()
	ctx := context.Background()
	for _, r := range routers {
		if _, err := e.ExplainAllContext(ctx, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLiftWarm(b *testing.B) {
	for _, sc := range scenarios.All() {
		sc := sc
		b.Run(sc.Name, func(b *testing.B) {
			dep, routers := benchDeployment(b, sc)
			e, err := NewExplainer(sc.Net, sc.Requirements(), dep, DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			// One untimed pass fills the session's caches.
			explainRouters(b, e, routers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				explainRouters(b, e, routers)
			}
		})
	}
}

func BenchmarkLiftCold(b *testing.B) {
	for _, sc := range scenarios.All() {
		sc := sc
		b.Run(sc.Name, func(b *testing.B) {
			dep, routers := benchDeployment(b, sc)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e, err := NewExplainer(sc.Net, sc.Requirements(), dep, DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				explainRouters(b, e, routers)
			}
		})
	}
}
