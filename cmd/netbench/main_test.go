package main

import (
	"strings"
	"testing"
)

// TestRunExitCodes pins the shared cmd convention: unknown -table and
// unknown -format values are usage errors (2) and are rejected before
// any experiment runs.
func TestRunExitCodes(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-table", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown table: exit %d, want 2 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "unknown table") {
		t.Fatalf("stderr missing complaint: %q", errOut.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-format", "yaml", "-table", "seed"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown format: exit %d, want 2 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "unknown format") {
		t.Fatalf("stderr missing complaint: %q", errOut.String())
	}
	if out.Len() != 0 {
		t.Fatalf("usage error ran an experiment anyway: %q", out.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}
